(* Shared -e/--engine flag: every CLI resolves engine names against
   Mfsa_engine.Registry, so mfsa-match, mfsa-live and the benchmark
   driver accept exactly the same set of names. *)

module Registry = Mfsa_engine.Registry

open Cmdliner

let term ?(default = "imfant") () =
  Arg.(
    value & opt string default
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          (Printf.sprintf
             "Matching engine, by registry name (default %s). Pass $(b,help) \
              to list the registered engines. Engines report identical match \
              counts; they differ in execution strategy. Any name can be \
              wrapped as $(b,faulty{seed=..,fail_every=..}:)$(docv) for \
              deterministic fault injection."
             default))

(* [resolve ~prog name] validates [name] against the registry.
   [Ok name] is resolvable (registered, or a well-formed faulty{..}:
   wrapper spec); [Error code] means this function already printed
   (the `help` listing on stdout, or the unknown-engine / malformed-
   spec message on stderr) and the CLI should exit with [code]. *)
let resolve ~prog name =
  if name = "help" then begin
    print_string (Registry.help ());
    Error 0
  end
  else
    match Registry.find_exn name with
    | (module _ : Mfsa_engine.Engine_sig.S) -> Ok name
    | exception Invalid_argument msg ->
        Printf.eprintf "%s: %s\n" prog msg;
        Error 1

(* Shared -e/--engine flag: every CLI resolves engine names against
   Mfsa_engine.Registry, so mfsa-match, mfsa-live and the benchmark
   driver accept exactly the same set of names. *)

module Registry = Mfsa_engine.Registry

open Cmdliner

let term ?(default = "imfant") () =
  Arg.(
    value & opt string default
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          (Printf.sprintf
             "Matching engine, by registry name (default %s). Pass $(b,help) \
              to list the registered engines. Engines report identical match \
              counts; they differ in execution strategy."
             default))

(* [resolve ~prog name] validates [name] against the registry.
   [Ok name] is registered; [Error code] means this function already
   printed (the `help` listing on stdout, or the unknown-engine
   message on stderr) and the CLI should exit with [code]. *)
let resolve ~prog name =
  if name = "help" then begin
    print_string (Registry.help ());
    Error 0
  end
  else if Option.is_none (Registry.find name) then begin
    Printf.eprintf "%s: %s\n" prog (Registry.unknown_message name);
    Error 1
  end
  else Ok name

(* Shared -e/--engine flag: every CLI resolves engine names against
   Mfsa_engine.Registry, so mfsa-match, mfsa-live and the benchmark
   driver accept exactly the same set of names. *)

module Registry = Mfsa_engine.Registry

open Cmdliner

let term ?(default = "imfant") () =
  Arg.(
    value & opt string default
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          (Printf.sprintf
             "Matching engine, by registry name (default %s). Pass $(b,help) \
              to list the registered engines. Engines report identical match \
              counts; they differ in execution strategy. Any name can be \
              wrapped as $(b,faulty{seed=..,fail_every=..}:)$(docv) for \
              deterministic fault injection."
             default))

(* Shared hot-loop tuning flags: engines snapshot Tuning at compile
   time, so the term *applies* the knobs as a side effect — cmdliner
   evaluates every term before the command body runs, i.e. before any
   compile. Yields unit. *)
module Tuning = Mfsa_engine.Tuning

let tuning_term () =
  let no_prefilter =
    Arg.(
      value & flag
      & info [ "no-prefilter" ]
          ~doc:
            "Disable the Aho–Corasick literal prefilter: engines scan every \
             byte instead of skipping regions that cannot start a match. \
             The prefilter only engages when every unanchored rule has a \
             required literal prefix of 2+ bytes, so this flag is a no-op \
             on rulesets where it never built.")
  in
  let stride =
    Arg.(
      value
      & opt (enum [ ("1", 1); ("2", 2) ]) Tuning.default.Tuning.stride
      & info [ "stride" ] ~docv:"N"
          ~doc:
            "Bytes consumed per hybrid-engine step: $(b,2) (the default) \
             steps through lazily built pair-class tables, $(b,1) falls \
             back to plain byte-at-a-time stepping. Engines other than \
             hybrid always step one byte.")
  in
  let cache_size =
    (* Validated at parse time so a bad value is a usage error (exit
       124 with the cmdliner message), not a compile-time raise. *)
    let rows_conv =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 -> Ok n
            | Some _ -> Error (`Msg "cache size must be at least 1")
            | None -> Error (`Msg (Printf.sprintf "invalid cache size %S" s))),
          Format.pp_print_int )
    in
    Arg.(
      value
      & opt rows_conv Tuning.default.Tuning.cache_size
      & info [ "cache-size" ] ~docv:"ROWS"
          ~doc:
            (Printf.sprintf
               "Base capacity of the hybrid engine's configuration cache, in \
                rows (default %d). The cache sizes itself adaptively between \
                1x and 8x this base from the observed hit rate. Snapshotted \
                at compile time, so artifacts emitted with $(b,--emit) \
                record it. Engines other than hybrid (and $(b,auto) when it \
                plans hybrid) ignore it."
               Tuning.default.Tuning.cache_size))
  in
  let apply no_prefilter stride cache_size =
    let cur = Tuning.get () in
    Tuning.set
      { cur with Tuning.prefilter = not no_prefilter; stride; cache_size }
  in
  Term.(const apply $ no_prefilter $ stride $ cache_size)

(* [resolve ~prog name] validates [name] against the registry.
   [Ok name] is resolvable (registered, or a well-formed faulty{..}:
   wrapper spec); [Error code] means this function already printed
   (the `help` listing on stdout, or the unknown-engine / malformed-
   spec message on stderr) and the CLI should exit with [code]. *)
let resolve ~prog name =
  if name = "help" then begin
    print_string (Registry.help ());
    Error 0
  end
  else
    match Registry.find_exn name with
    | (module _ : Mfsa_engine.Engine_sig.S) -> Ok name
    | exception Invalid_argument msg ->
        Printf.eprintf "%s: %s\n" prog msg;
        Error 1

(* ------------------------------------------- SIGPIPE and friends *)

(* Every CLI is pipeline-friendly: `mfsa-report | head` must not die
   of SIGPIPE, and the resulting EPIPE (or the Sys_error the stdlib
   wraps it in on channel flush) is a clean early exit, not an
   internal error. *)

let init () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let epipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error msg ->
      (* "Broken pipe" is how out_channel flushes report EPIPE. *)
      let needle = "roken pipe" in
      let n = String.length msg and k = String.length needle in
      let rec scan i = i + k <= n && (String.sub msg i k = needle || scan (i + 1)) in
      scan 0
  | _ -> false

(* Shared entrypoint: ignore SIGPIPE, evaluate the command, map a
   broken-pipe escape to success, and drain the std channels while
   EPIPE can still be caught (a failed flush discards the buffer, so
   exit's own at_exit flush cannot re-raise). *)
let main cmd =
  init ();
  let code =
    try Cmdliner.Cmd.eval' ~catch:false cmd with
    | e when epipe e -> 0
    | e ->
        let bt = Printexc.get_raw_backtrace () in
        Printf.eprintf "%s: internal error, uncaught exception:\n%s\n"
          (Filename.basename Sys.executable_name)
          (Printexc.to_string e);
        Printexc.print_raw_backtrace stderr bt;
        Cmdliner.Cmd.Exit.internal_error
  in
  (* Format's standard formatters flush from [at_exit], where a
     Sys_error escape cannot be caught, and a failed channel flush
     keeps its buffer, so every later flush re-raises. Drain what the
     pipe still accepts, then point the std fds at /dev/null so the
     at_exit passes land harmlessly. *)
  (try Format.pp_print_flush Format.std_formatter () with Sys_error _ -> ());
  (try Format.pp_print_flush Format.err_formatter () with Sys_error _ -> ());
  (try flush stdout with Sys_error _ -> ());
  (try flush stderr with Sys_error _ -> ());
  (try
     let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
     Unix.dup2 null Unix.stdout;
     Unix.dup2 null Unix.stderr;
     Unix.close null
   with Unix.Unix_error _ | Sys_error _ -> ());
  exit code

(* ------------------------------------------- Unified source handling *)

(* Every CLI resolves "where do the automata come from" the same way:
   an explicit --load file, or a positional ruleset argument sniffed
   for the artifact magic and otherwise read as extended ANML or (with
   --rules) a plain rules file. Referencing the artifact library here
   also guarantees its Source loader hook is linked into every CLI. *)

module Source = Mfsa_engine.Source
module Artifact = Mfsa_artifact.Artifact
module Pipeline = Mfsa_core.Pipeline

let () = Artifact.link ()

let load_term () =
  Arg.(
    value
    & opt (some file) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:
          "Load a compiled binary artifact (written by $(b,mfsa-compile \
           --emit)) instead of compiling rules: startup is O(artifact size), \
           no pipeline run. Only engines with a table loader accept it \
           ($(b,imfant), $(b,hybrid)).")

(* [source_of_ruleset ~rules path] classifies a positional ruleset
   argument. The artifact magic wins over both flags — a .mfsa file is
   never misparsed as ERE rules or ANML — then --rules selects the
   plain rules-file reading, and extended ANML is the default. *)
let source_of_ruleset ~rules path =
  if path <> "-" && Source.is_artifact_file path then
    Ok (Source.Artifact_file path)
  else if rules then Ok (Source.Rules_file path)
  else
    match Mfsa_anml.Anml.read_file path with
    | Ok mfsas -> Ok (Source.Automata mfsas)
    | Error msg -> Error (Printf.sprintf "cannot load %s: %s" path msg)

(* Fold every typed source-level failure into the CLI's one-line
   [Error]: rejected rules (the pipeline's pinned "rule %d (%s): %s"
   wording), bad artifacts, unreadable files, and engine-capability
   errors all land here. *)
let catch_source f =
  match f () with
  | r -> Ok r
  | exception Pipeline.Compile_error e -> Error (Pipeline.error_to_string e)
  | exception Artifact.Error e -> Error (Artifact.error_to_string e)
  | exception Source.Error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* The unified compile: [Registry.compile] with the exception funnel
   above — what the match/serve/bench paths call. *)
let compile_source engine source =
  Result.join (catch_source (fun () -> Registry.compile engine source))

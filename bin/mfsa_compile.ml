(* mfsa-compile: the compilation framework as a CLI (paper Fig. 4).

   Reads a ruleset (one POSIX ERE per line, '#' comments allowed),
   runs the full pipeline with a chosen merging factor and writes the
   extended-ANML output. *)

module Pipeline = Mfsa_core.Pipeline
module Report = Mfsa_core.Report
module Datasets = Mfsa_datasets.Datasets
module Artifact = Mfsa_artifact.Artifact

let setup_logs debug =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if debug then Logs.Debug else Logs.Warning))

let run rules_file dataset m output emit verbose debug homogeneous strategy ()
    =
  setup_logs debug;
  let rules =
    match (rules_file, dataset) with
    | Some path, None -> (
        match Engine_cli.Source.read_rules_file path with
        | rules -> Ok rules
        | exception Engine_cli.Source.Error msg -> Error msg)
    | None, Some abbr -> (
        match Datasets.find abbr with
        | Some d -> Ok d.Datasets.rules
        | None ->
            Error
              (Printf.sprintf
                 "unknown dataset %S (expected BRO, DS9, PEN, PRO, RG1 or TCP)"
                 abbr))
    | Some _, Some _ -> Error "pass either a rules file or --dataset, not both"
    | None, None -> Error "pass a rules file or --dataset (try --help)"
  in
  match rules with
  | Error msg ->
      prerr_endline ("mfsa-compile: " ^ msg);
      1
  | Ok rules -> (
      let strategy =
        if strategy = "prefix" then Mfsa_model.Merge.Prefix
        else Mfsa_model.Merge.Greedy
      in
      match Pipeline.compile ~strategy ~m rules with
      | Error e ->
          prerr_endline ("mfsa-compile: " ^ Pipeline.error_to_string e);
          1
      | Ok c ->
          (* --emit without -o suppresses the ANML dump: the artifact
             is the product. Both together write both. *)
          if emit = None || output <> "-" then begin
            let oc = if output = "-" then stdout else open_out output in
            Fun.protect
              ~finally:(fun () -> if output <> "-" then close_out oc)
              (fun () ->
                if homogeneous then
                  List.iter
                    (fun z ->
                      output_string oc
                        (Mfsa_anml.Homogeneous.to_anml
                           (Mfsa_anml.Homogeneous.of_mfsa z)))
                    c.Pipeline.mfsas
                else output_string oc c.Pipeline.anml)
          end;
          let emit_failed =
            match emit with
            | None -> false
            | Some path -> (
                match Artifact.save path (Artifact.export c.Pipeline.mfsas) with
                | () ->
                    if verbose then
                      Printf.eprintf "artifact:     %s (%d bytes)\n" path
                        (Unix.stat path).Unix.st_size;
                    false
                | exception Artifact.Error e ->
                    prerr_endline
                      ("mfsa-compile: cannot write " ^ path ^ ": "
                      ^ Artifact.error_to_string e);
                    true)
          in
          if verbose then begin
            let before = Report.fsa_totals c.Pipeline.fsas in
            let after = Report.mfsa_totals c.Pipeline.mfsas in
            let cs, ct = Report.compression ~before ~after in
            Printf.eprintf "rules:        %d\n" (Array.length rules);
            Printf.eprintf "mfsas:        %d (M = %s)\n"
              (List.length c.Pipeline.mfsas)
              (if m = 0 then "all" else string_of_int m);
            Printf.eprintf "states:       %d -> %d (%.2f%% compression)\n"
              before.Report.states after.Report.states cs;
            Printf.eprintf "transitions:  %d -> %d (%.2f%% compression)\n"
              before.Report.transitions after.Report.transitions ct;
            let t = c.Pipeline.times in
            Printf.eprintf
              "times:        FE %s | AST->FSA %s | ME-single %s | ME-merging \
               %s | BE %s\n"
              (Report.fmt_time t.Pipeline.frontend)
              (Report.fmt_time t.Pipeline.conversion)
              (Report.fmt_time t.Pipeline.optimization)
              (Report.fmt_time t.Pipeline.merging)
              (Report.fmt_time t.Pipeline.backend)
          end;
          if emit_failed then 1 else 0)

open Cmdliner

let rules_file =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"RULES" ~doc:"Rule file, one POSIX ERE per line ('-' for stdin).")

let dataset =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "dataset" ] ~docv:"ABBR"
        ~doc:"Use a built-in synthetic benchmark dataset (BRO, DS9, PEN, PRO, RG1, TCP).")

let m =
  Arg.(
    value & opt int 0
    & info [ "m"; "merging-factor" ] ~docv:"M"
        ~doc:"Merging factor: rules per MFSA; 0 merges the whole ruleset.")

let output =
  Arg.(
    value & opt string "-"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Extended-ANML output file ('-' for stdout).")

let emit =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~docv:"FILE"
        ~doc:
          "Also write a compiled binary artifact: the merged automata plus \
           every engine-ready table (byte classes, class-indexed \
           transitions, CSR index, activation table, prefilter) under the \
           current tuning flags, loadable in O(size) by $(b,mfsa-match \
           --load), $(b,mfsa-served run --load) and $(b,mfsa-live --load). \
           Without $(b,-o), the ANML dump to stdout is suppressed.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print compression and stage-time statistics to stderr.")

let debug =
  Arg.(value & flag & info [ "debug" ] ~doc:"Enable debug logging of the compilation stages.")

let strategy =
  Arg.(
    value
    & opt (enum [ ("greedy", "greedy"); ("prefix", "prefix") ]) "greedy"
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:"Merge seeding strategy: greedy (any label-equal sub-path, max \
              compression) or prefix (share rule prefixes only).")

let homogeneous =
  Arg.(
    value & flag
    & info [ "homogeneous" ]
        ~doc:"Emit homogeneous (STE-based) ANML, the Automata Processor dialect, instead of the library's loadable transition-based dialect.")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-compile" ~version:"1.0.0"
       ~doc:"Compile a regular-expression ruleset into merged MFSAs (extended ANML)")
    Term.(
      const run $ rules_file $ dataset $ m $ output $ emit $ verbose $ debug
      $ homogeneous $ strategy $ Engine_cli.tuning_term ())

let () = Engine_cli.main cmd

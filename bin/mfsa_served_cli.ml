(* mfsa-served: the networked serving daemon and its control client.

   `mfsa-served run` compiles a ruleset, binds a TCP socket and serves
   the length-prefixed binary protocol (SUBMIT / METRICS / ADMIN /
   PING / SHUTDOWN) until SIGINT/SIGTERM or a remote SHUTDOWN drains
   it. `mfsa-served ctl` is the matching command-line client — enough
   to script a daemon from a shell (the cram test does exactly that)
   without speaking binary by hand.

   Ephemeral ports and --port-file make the pair self-wiring: run
   with --port 0, point ctl (or bench loadgen) at the same file. *)

module Served = Mfsa_served.Served
module Client = Mfsa_served.Client
module Protocol = Mfsa_served.Protocol
module Serve = Mfsa_serve.Serve

let setup_logs quiet =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if quiet then Logs.Error else Logs.Info))

(* Atomic write: the pollers racing us (cram test, ci soak gate) must
   never observe a half-written port number. *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------ run *)

let run_daemon rules_file rules load () engine domains sfa_domains
    sfa_threshold host port port_file pid_file queue admission retries backoff
    read_deadline max_frame deadline quiet =
  setup_logs quiet;
  (* --sfa-domains/--sfa-threshold compose at the engine-name level:
     the daemon serves `sfa{..}:<engine>`, so oversized SUBMIT inputs
     split across domains inside one request while everything else
     (table sharing, replica supervision, metrics) is unchanged. *)
  let engine =
    match (sfa_domains, sfa_threshold) with
    | None, None -> engine
    | d, t ->
        Printf.sprintf "sfa{domains=%d,threshold=%d}:%s"
          (Option.value d ~default:Mfsa_engine.Sfa.default.Mfsa_engine.Sfa.domains)
          (Option.value t
             ~default:Mfsa_engine.Sfa.default.Mfsa_engine.Sfa.threshold)
          engine
  in
  match Engine_cli.resolve ~prog:"mfsa-served" engine with
  | Error code -> code
  | Ok engine -> (
      (* The initial ruleset: a compiled artifact (--load), or rules
         from --rules/-r compiled through the pipeline. *)
      let source =
        match (load, rules_file, rules) with
        | Some _, Some _, _ | Some _, _, _ :: _ ->
            Error "pass --load or --rules/-r, not both"
        | Some path, None, [] -> Ok (Engine_cli.Source.Artifact_file path)
        | None, rules_file, rules -> (
            match
              match rules_file with
              | Some p ->
                  Array.to_list (Engine_cli.Source.read_rules_file p) @ rules
              | None -> rules
            with
            | all -> Ok (Engine_cli.Source.Rules (Array.of_list all))
            | exception Engine_cli.Source.Error msg -> Error msg)
      in
      match source with
      | Error msg ->
          Printf.eprintf "mfsa-served: %s\n" msg;
          1
      | Ok source ->
      let admission =
        match admission with
        | "block" -> Serve.Block
        | "reject" -> Serve.Reject
        | "shed" -> Serve.Shed_oldest
        | s ->
            Printf.eprintf
              "mfsa-served: --admission must be block, reject or shed, got %S\n"
              s;
            exit 124
      in
      let config =
        {
          Served.engine;
          domains;
          host;
          port;
          queue_capacity = queue;
          admission;
          retries;
          backoff;
          read_deadline;
          max_frame;
          batch_deadline = deadline;
        }
      in
      match
        Result.join
          (Engine_cli.catch_source (fun () ->
               Served.create_source ~config source))
      with
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          1
      | Ok t ->
          Option.iter
            (fun p -> write_file p (string_of_int (Served.port t) ^ "\n"))
            port_file;
          Option.iter
            (fun p -> write_file p (string_of_int (Unix.getpid ()) ^ "\n"))
            pid_file;
          Served.handle_signals t;
          Logs.info (fun m ->
              m "mfsa-served: listening on %s:%d (%d rules, engine %s, %d \
                 domains)"
                host (Served.port t) (Served.n_rules t) engine domains);
          Served.serve t;
          Logs.info (fun m -> m "mfsa-served: drained");
          0)

(* ------------------------------------------------------------ ctl *)

let print_events per_input =
  Array.iteri
    (fun i events ->
      Printf.printf "input %d: %d matches\n" i (List.length events);
      List.iter
        (fun { Protocol.rule; end_pos } ->
          Printf.printf "  rule %d end %d\n" rule end_pos)
        events)
    per_input

let ctl_command c cmd args =
  match (cmd, args) with
  | "ping", [] -> Result.map (fun () -> print_string "pong\n") (Client.ping c)
  | "submit", (_ :: _ as inputs) ->
      Result.map print_events (Client.submit c (Array.of_list inputs))
  | "submit", [] -> Error "submit wants at least one INPUT"
  | "metrics", [] ->
      Result.map print_string (Client.metrics c Protocol.Prometheus)
  | "metrics", [ "json" ] ->
      Result.map print_string (Client.metrics c Protocol.Json)
  | "add", [ pattern ] ->
      Result.map
        (fun (rule, generation) ->
          Printf.printf "added rule %d (gen %d)\n" rule generation)
        (Client.add_rule c pattern)
  | "add", _ -> Error "add wants exactly one PATTERN"
  | "remove", [ id ] -> (
      match int_of_string_opt id with
      | None -> Error (Printf.sprintf "remove wants a rule id, got %S" id)
      | Some id ->
          Result.map
            (fun generation -> Printf.printf "removed (gen %d)\n" generation)
            (Client.remove_rule c id))
  | "rules", [] ->
      Result.map
        (fun (generation, rules) ->
          Printf.printf "gen %d: %d rules\n" generation (List.length rules);
          List.iter
            (fun (id, p) -> Printf.printf "rule %d  %s\n" id p)
            rules)
        (Client.list_rules c)
  | "shutdown", [] ->
      Result.map (fun () -> print_string "server draining\n") (Client.shutdown c)
  | cmd, _ ->
      Error
        (Printf.sprintf
           "unknown or misused command %S (expected ping, submit INPUT..., \
            metrics [json], add PATTERN, remove ID, rules, shutdown)"
           cmd)

let run_ctl host port port_file deadline cmd args =
  let port =
    match (port, port_file) with
    | Some p, _ -> Ok p
    | None, Some f -> (
        match
          let ic = open_in f in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> int_of_string_opt (String.trim (input_line ic)))
        with
        | Some p -> Ok p
        | None | (exception End_of_file) ->
            Error (Printf.sprintf "%s does not contain a port number" f)
        | exception Sys_error msg -> Error msg)
    | None, None -> Error "pass --port or --port-file"
  in
  match port with
  | Error msg ->
      Printf.eprintf "mfsa-served ctl: %s\n" msg;
      1
  | Ok port -> (
      match Client.connect ~read_deadline:deadline ~host ~port () with
      | Error msg ->
          Printf.eprintf "mfsa-served ctl: %s\n" msg;
          1
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match ctl_command c cmd args with
              | Ok () -> 0
              | Error msg ->
                  Printf.eprintf "mfsa-served ctl: %s\n" msg;
                  1))

(* ------------------------------------------------------- cmdliner *)

open Cmdliner

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind / connect address.")

let port_file op =
  Arg.(
    value
    & opt (some string) None
    & info [ "port-file" ] ~docv:"FILE"
        ~doc:
          (Printf.sprintf
             "File the bound TCP port is %s — with $(b,--port 0) this is how \
              clients find an ephemeral-port daemon."
             op))

let run_cmd =
  let rules_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:
            "Initial ruleset, one POSIX-ERE rule per line (blank lines and \
             $(b,#) comments skipped); rule ids are line order.")
  in
  let rules =
    Arg.(
      value & opt_all string []
      & info [ "r"; "rule" ] ~docv:"RE"
          ~doc:"Additional initial rule (repeatable, after $(b,--rules).)")
  in
  let load = Engine_cli.load_term () in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains per generation pool.")
  in
  let sfa_domains =
    (* Validated at parse time so a bad value is a one-line usage
       error, not an Invalid_argument backtrace at compile time. *)
    let domains_conv =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 && n <= Mfsa_engine.Sfa.max_domains -> Ok n
            | Some _ ->
                Error
                  (`Msg
                     (Printf.sprintf "sfa domains must be in [1,%d]"
                        Mfsa_engine.Sfa.max_domains))
            | None -> Error (`Msg (Printf.sprintf "invalid domain count %S" s))),
          Format.pp_print_int )
    in
    Arg.(
      value
      & opt (some domains_conv) None
      & info [ "sfa-domains" ] ~docv:"N"
          ~doc:
            "Wrap the engine as $(b,sfa{domains=N,..}:<engine>): single \
             inputs at or above the split threshold are chunked across \
             $(docv) domains and matched in parallel (imfant and hybrid \
             only).")
  in
  let sfa_threshold =
    let threshold_conv =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 -> Ok n
            | Some _ -> Error (`Msg "sfa threshold must be at least 1 byte")
            | None ->
                Error (`Msg (Printf.sprintf "invalid byte count %S" s))),
          Format.pp_print_int )
    in
    Arg.(
      value
      & opt (some threshold_conv) None
      & info [ "sfa-threshold" ] ~docv:"BYTES"
          ~doc:
            (Printf.sprintf
               "Minimum input size, in bytes, before the SFA wrapper splits \
                an input across domains (default %d); shorter inputs run \
                sequentially. Implies $(b,--sfa-domains) %d when that flag \
                is absent."
               Mfsa_engine.Sfa.default.Mfsa_engine.Sfa.threshold
               Mfsa_engine.Sfa.default.Mfsa_engine.Sfa.domains))
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to bind; 0 (the default) binds an ephemeral port.")
  in
  let pid_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "pid-file" ] ~docv:"FILE" ~doc:"File the daemon pid is written to.")
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:"Pool submission-queue capacity (default 2 × domains).")
  in
  let admission =
    Arg.(
      value & opt string "block"
      & info [ "admission" ] ~docv:"POLICY"
          ~doc:
            "Full-queue policy: $(b,block) (backpressure), $(b,reject) or \
             $(b,shed) (evict the oldest queued job of another batch).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts a job gets after a transient or poison fault.")
  in
  let backoff =
    Arg.(
      value & opt float 0.001
      & info [ "backoff" ] ~docv:"SECONDS" ~doc:"Base retry backoff.")
  in
  let read_deadline =
    Arg.(
      value & opt float 30.
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection read deadline; an idle connection is answered \
             with a $(b,deadline) error and closed. 0 disables it.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Protocol.default_max_payload
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted frame payload.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-SUBMIT serving deadline handed to the pool; expiry maps to \
             a $(b,timeout) protocol error.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Log errors only (no startup banner).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the serving daemon until SIGINT/SIGTERM or a \
                          remote SHUTDOWN drains it")
    Term.(
      const run_daemon $ rules_file $ rules $ load
      $ Engine_cli.tuning_term () $ Engine_cli.term () $ domains
      $ sfa_domains $ sfa_threshold
      $ host $ port $ port_file "written to" $ pid_file $ queue $ admission
      $ retries $ backoff $ read_deadline $ max_frame $ deadline $ quiet)

let ctl_cmd =
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Daemon TCP port.")
  in
  let deadline =
    Arg.(
      value & opt float 30.
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:"How long to wait for each response.")
  in
  let command =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"COMMAND"
          ~doc:
            "One of $(b,ping), $(b,submit) $(i,INPUT...), $(b,metrics) \
             [$(b,json)], $(b,add) $(i,PATTERN), $(b,remove) $(i,ID), \
             $(b,rules), $(b,shutdown).")
  in
  let args =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARG")
  in
  Cmd.v
    (Cmd.info "ctl" ~doc:"Send one command to a running daemon")
    Term.(
      const run_ctl $ host $ port $ port_file "read from" $ deadline $ command
      $ args)

let cmd =
  Cmd.group
    (Cmd.info "mfsa-served" ~version:"1.0.0"
       ~doc:
         "The networked MFSA serving daemon: batched matching, live admin \
          and Prometheus metrics over one TCP socket")
    [ run_cmd; ctl_cmd ]

let () = Engine_cli.main cmd

(* mfsa-dataset: dump the synthetic benchmark rulesets and streams to
   files, for use with mfsa-compile / mfsa-match or external tools. *)

module Datasets = Mfsa_datasets.Datasets
module Stream_gen = Mfsa_datasets.Stream_gen

let run abbr scale rules_out stream_out stream_kb =
  match Datasets.find ~scale abbr with
  | None ->
      Printf.eprintf
        "mfsa-dataset: unknown dataset %S (expected BRO, DS9, PEN, PRO, RG1 or TCP)\n"
        abbr;
      1
  | Some d ->
      (match rules_out with
      | None -> Array.iter print_endline d.Datasets.rules
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              Array.iter (fun r -> output_string oc (r ^ "\n")) d.Datasets.rules));
      (match stream_out with
      | None -> ()
      | Some path ->
          let stream =
            Stream_gen.generate ~seed:d.Datasets.seed
              ~payload:d.Datasets.payload ~size:(stream_kb * 1024)
              d.Datasets.rules
          in
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc stream));
      0

open Cmdliner

let abbr =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ABBR" ~doc:"Dataset abbreviation (BRO, DS9, PEN, PRO, RG1, TCP).")

let scale =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"S" ~doc:"Ruleset size multiplier (1.0 = paper size).")

let rules_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "r"; "rules" ] ~docv:"FILE"
        ~doc:"Write the rules to $(docv) (default: stdout).")

let stream_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "stream" ] ~docv:"FILE"
        ~doc:"Also generate the dataset's input stream into $(docv).")

let stream_kb =
  Arg.(
    value & opt int 1024
    & info [ "stream-kb" ] ~docv:"KB" ~doc:"Stream size in KiB (default 1024, the paper's 1 MiB).")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-dataset" ~version:"1.0.0"
       ~doc:"Dump the synthetic benchmark rulesets and input streams")
    Term.(const run $ abbr $ scale $ rules_out $ stream_out $ stream_kb)

let () = Engine_cli.main cmd

(* mfsa-match: the iMFAnt engine as a CLI (paper §V).

   Loads an extended-ANML file produced by mfsa-compile and matches an
   input stream, printing per-rule match counts and, optionally, every
   match event — the engine-side half of the compile → file → execute
   path. *)

module Anml = Mfsa_anml.Anml
module Mfsa = Mfsa_model.Mfsa
module Im = Mfsa_engine.Imfant
module Hybrid = Mfsa_engine.Hybrid
module Pool = Mfsa_engine.Pool
module Report = Mfsa_core.Report

let now () = Mfsa_util.Clock.now ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run one MFSA's rules through an alternative per-rule engine by
   projecting each rule's FSA back out of the merged automaton. *)
let run_alternative engine_kind z input =
  let n = z.Mfsa.n_fsas in
  let counts = Array.make n 0 in
  (match engine_kind with
  | `Dfa ->
      for j = 0 to n - 1 do
        let eng = Mfsa_engine.Dfa_engine.compile (Mfsa.project z j) in
        counts.(j) <- Mfsa_engine.Dfa_engine.count eng input
      done
  | `Decomposed ->
      let fsas = Array.init n (Mfsa.project z) in
      let t = Mfsa_engine.Decomposed.compile fsas in
      List.iter
        (fun e ->
          counts.(e.Mfsa_engine.Decomposed.rule) <-
            counts.(e.Mfsa_engine.Decomposed.rule) + 1)
        (Mfsa_engine.Decomposed.run t input));
  counts

let run anml_path input_path threads list_events stats engine =
  match Anml.read_file anml_path with
  | Error msg ->
      Printf.eprintf "mfsa-match: cannot load %s: %s\n" anml_path msg;
      1
  | Ok mfsas when engine = "hybrid" ->
      let input = read_file input_path in
      let engines = Array.of_list (List.map Hybrid.compile mfsas) in
      let t0 = now () in
      let result =
        Pool.run ~threads
          ~jobs:(Array.map (fun eng () -> Hybrid.run eng input) engines)
      in
      let elapsed = now () -. t0 in
      let total = ref 0 in
      Array.iteri
        (fun gi events ->
          let z = Hybrid.mfsa engines.(gi) in
          let counts = Array.make z.Mfsa.n_fsas 0 in
          List.iter
            (fun e ->
              counts.(e.Hybrid.fsa) <- counts.(e.Hybrid.fsa) + 1;
              if list_events then
                Printf.printf "match mfsa=%d rule=%d pattern=%s end=%d\n" gi
                  e.Hybrid.fsa z.Mfsa.patterns.(e.Hybrid.fsa) e.Hybrid.end_pos)
            events;
          Array.iteri
            (fun j c ->
              total := !total + c;
              Printf.printf "rule %d.%d  %-40s %d matches\n" gi j
                z.Mfsa.patterns.(j) c)
            counts;
          if stats then begin
            let s = Hybrid.stats engines.(gi) in
            Printf.printf
              "mfsa %d: cache hit rate %.4f, %d configs (%d interned, %d \
               flushes), ~%d KiB\n"
              gi
              (if s.Hybrid.steps = 0 then 0.
               else
                 float_of_int s.Hybrid.hits /. float_of_int s.Hybrid.steps)
              s.Hybrid.resident_configs s.Hybrid.configs_interned
              s.Hybrid.flushes
              (s.Hybrid.cache_bytes / 1024)
          end)
        result.Pool.values;
      Printf.printf "total: %d matches over %d bytes in %s (hybrid engine, %d thread%s)\n"
        !total (String.length input)
        (Report.fmt_time elapsed)
        threads
        (if threads = 1 then "" else "s");
      0
  | Ok mfsas when engine <> "imfant" ->
      let kind =
        match engine with
        | "dfa" -> Ok `Dfa
        | "decomposed" -> Ok `Decomposed
        | other -> Error other
      in
      (match kind with
      | Error other ->
          Printf.eprintf
            "mfsa-match: unknown engine %S (expected imfant, hybrid, dfa or \
             decomposed)\n"
            other;
          1
      | Ok kind ->
          let input = read_file input_path in
          let t0 = now () in
          let total = ref 0 in
          List.iteri
            (fun gi z ->
              let counts = run_alternative kind z input in
              Array.iteri
                (fun j c ->
                  total := !total + c;
                  Printf.printf "rule %d.%d  %-40s %d matches\n" gi j
                    z.Mfsa.patterns.(j) c)
                counts)
            mfsas;
          Printf.printf "total: %d matches over %d bytes in %s (%s engine)\n"
            !total (String.length input)
            (Report.fmt_time (now () -. t0))
            engine;
          0)
  | Ok mfsas ->
      let input = read_file input_path in
      let engines = Array.of_list (List.map Im.compile mfsas) in
      let t0 = now () in
      let result =
        Pool.run ~threads
          ~jobs:
            (Array.map
               (fun eng () ->
                 if stats then
                   let events, s = Im.run_with_stats eng input in
                   (events, Some s)
                 else (Im.run eng input, None))
               engines)
      in
      let elapsed = now () -. t0 in
      let total = ref 0 in
      Array.iteri
        (fun gi (events, s) ->
          let z = Im.mfsa engines.(gi) in
          let counts = Array.make z.Mfsa.n_fsas 0 in
          List.iter
            (fun e ->
              counts.(e.Im.fsa) <- counts.(e.Im.fsa) + 1;
              if list_events then
                Printf.printf "match mfsa=%d rule=%d pattern=%s end=%d\n" gi
                  e.Im.fsa z.Mfsa.patterns.(e.Im.fsa) e.Im.end_pos)
            events;
          Array.iteri
            (fun j c ->
              total := !total + c;
              Printf.printf "rule %d.%d  %-40s %d matches\n" gi j
                z.Mfsa.patterns.(j) c)
            counts;
          match s with
          | Some s ->
              Printf.printf "mfsa %d: avg active FSAs %.2f, max %d\n" gi
                s.Im.avg_active s.Im.max_active
          | None -> ())
        result.Pool.values;
      Printf.printf "total: %d matches over %d bytes in %s (%d thread%s)\n"
        !total (String.length input)
        (Report.fmt_time elapsed)
        threads
        (if threads = 1 then "" else "s");
      0

open Cmdliner

let anml_path =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"ANML" ~doc:"Extended-ANML file produced by mfsa-compile.")

let input_path =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"STREAM" ~doc:"Input stream file to match against.")

let threads =
  Arg.(
    value & opt int 1
    & info [ "t"; "threads" ] ~docv:"T" ~doc:"Worker threads for the MFSA pool.")

let list_events =
  Arg.(value & flag & info [ "l"; "list" ] ~doc:"Print every match event.")

let stats =
  Arg.(
    value & flag
    & info [ "s"; "stats" ] ~doc:"Report active-FSA statistics (paper Table II).")

let engine =
  Arg.(
    value & opt string "imfant"
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:"Matching engine: imfant (default, the merged-automaton engine), \
              hybrid (lazy-DFA configuration cache over the same automaton), \
              dfa (per-rule scanning DFAs projected from the MFSA) or \
              decomposed (literal pre-filter + confirmation). The alternative \
              engines exist for comparison; match counts are identical.")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-match" ~version:"1.0.0"
       ~doc:"Execute compiled MFSAs against an input stream with iMFAnt")
    Term.(const run $ anml_path $ input_path $ threads $ list_events $ stats $ engine)

let () = exit (Cmd.eval' cmd)

(* mfsa-match: the MFSA engines as a CLI (paper §V).

   Loads an extended-ANML file produced by mfsa-compile (or, with
   --rules, compiles a plain rules file in-process) and matches an
   input stream with any registered engine, printing per-rule match
   counts and, optionally, every match event — the engine-side half of
   the compile → file → execute path. With --metrics the run is
   instead served through the domain-parallel Serve layer and the only
   output is a metrics dump (Prometheus text or JSON) covering the
   compile pipeline, the engines and the service — the scrape target
   the CI observability gate validates. *)

module Anml = Mfsa_anml.Anml
module Mfsa = Mfsa_model.Mfsa
module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Pool = Mfsa_engine.Pool
module Pipeline = Mfsa_core.Pipeline
module Report = Mfsa_core.Report
module Serve = Mfsa_serve.Serve
module Obs = Mfsa_obs.Obs
module Snapshot = Mfsa_obs.Snapshot

let now () = Mfsa_util.Clock.now ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --metrics: serve the input through one Serve instance per automaton
   (threads worker domains each) and print nothing but the merged
   metric snapshot — process-wide registry (compile spans when --rules
   compiled here) plus every service's full view, tagged mfsa=<i>.
   The serving path carries the fault-tolerance knobs: --deadline,
   --retries and --admission; a batch that times out or is rejected
   still dumps the metrics (the timeout/rejection counters included)
   but exits non-zero with the typed error on stderr. An artifact
   source builds the services from the persisted tables directly. *)
let run_metrics resolved input threads engine fmt ~deadline ~retries ~admission
    =
  let failed = ref None in
  let services =
    match resolved with
    | Engine_cli.Source.Compiled_automata zs ->
        List.map
          (fun z -> Serve.create ~engine ~domains:threads ~admission ~retries z)
          zs
    | Engine_cli.Source.Compiled_tables tbs ->
        List.map
          (fun tb ->
            Serve.create_tables ~engine ~domains:threads ~admission ~retries tb)
          tbs
  in
  let snaps =
    List.mapi
      (fun gi srv ->
        Fun.protect
          ~finally:(fun () -> Serve.shutdown srv)
          (fun () ->
            (match Serve.try_match_batch ?deadline srv [| input |] with
            | Ok _ -> ()
            | Error e ->
                if !failed = None then failed := Some (Serve.error_to_string e)
            | exception Serve.Job_error { slot; error } ->
                if !failed = None then
                  failed :=
                    Some
                      (Printf.sprintf "job %d failed: %s" slot
                         (Printexc.to_string error)));
            Snapshot.with_labels
              [ ("mfsa", string_of_int gi) ]
              (Serve.snapshot srv)))
      services
  in
  let merged = Snapshot.merge (Obs.snapshot Obs.default :: snaps) in
  print_string
    (match fmt with
    | `Prometheus -> Snapshot.to_prometheus merged
    | `Json -> Snapshot.to_json merged ^ "\n");
  match !failed with
  | None -> 0
  | Some msg ->
      Printf.eprintf "mfsa-match: %s\n" msg;
      1

(* The positionals: [RULESET STREAM] normally, just [STREAM] under
   --load (the artifact replaces the ruleset argument). *)
let classify_paths ~load ~rules paths =
  match (load, paths) with
  | Some artifact, [ input ] ->
      Ok (Engine_cli.Source.Artifact_file artifact, input)
  | Some _, _ -> Error "with --load, pass exactly one positional: the STREAM"
  | None, [ ruleset; input ] ->
      Result.map
        (fun source -> (source, input))
        (Engine_cli.source_of_ruleset ~rules ruleset)
  | None, _ -> Error "pass a RULESET (ANML, rules or artifact) and a STREAM"

let run paths load threads list_events stats rules metrics deadline retries
    admission () engine =
  match Engine_cli.resolve ~prog:"mfsa-match" engine with
  | Error code -> code
  | Ok engine -> (
      match classify_paths ~load ~rules paths with
      | Error msg ->
          Printf.eprintf "mfsa-match: %s\n" msg;
          1
      | Ok (source, input_path) when metrics <> None -> (
          (* Pre-check the engine's artifact capability exactly like
             the direct path would, then resolve the source once and
             build one service per automaton. *)
          match
            Result.join
              (Engine_cli.catch_source (fun () ->
                   match (source, Registry.can_load_tables engine) with
                   | ( ( Engine_cli.Source.Artifact_file _
                       | Engine_cli.Source.Artifact_bytes _ ),
                       false ) ->
                       Error (Registry.no_table_loader engine)
                   | _ -> Ok (Engine_cli.Source.resolve source)))
          with
          | Error msg ->
              Printf.eprintf "mfsa-match: %s\n" msg;
              1
          | Ok resolved ->
              let input = read_file input_path in
              run_metrics resolved input threads engine (Option.get metrics)
                ~deadline ~retries ~admission)
      | Ok (source, input_path) -> (
          let input = read_file input_path in
          (* A restricted engine (ac) refuses rulesets outside its
             domain at compile time, and an engine without a table
             loader refuses artifacts — user errors, not internal
             ones. *)
          match Engine_cli.compile_source engine source with
          | Error msg ->
              Printf.eprintf "mfsa-match: %s\n" msg;
              1
          | Ok engines ->
          let engines = Array.of_list engines in
          let t0 = now () in
          let result =
            Pool.run ~threads
              ~jobs:(Array.map (fun eng () -> Engine_sig.run eng input) engines)
          in
          let elapsed = now () -. t0 in
          let total = ref 0 in
          Array.iteri
            (fun gi events ->
              let z = Engine_sig.mfsa engines.(gi) in
              let counts = Array.make z.Mfsa.n_fsas 0 in
              List.iter
                (fun e ->
                  counts.(e.Engine_sig.fsa) <- counts.(e.Engine_sig.fsa) + 1;
                  if list_events then
                    Printf.printf "match mfsa=%d rule=%d pattern=%s end=%d\n" gi
                      e.Engine_sig.fsa
                      z.Mfsa.patterns.(e.Engine_sig.fsa)
                      e.Engine_sig.end_pos)
                events;
              Array.iteri
                (fun j c ->
                  total := !total + c;
                  Printf.printf "rule %d.%d  %-40s %d matches\n" gi j
                    z.Mfsa.patterns.(j) c)
                counts;
              if stats then
                Printf.printf "mfsa %d stats: %s\n" gi
                  (String.concat ", "
                     (List.map
                        (fun (k, v) -> k ^ "=" ^ v)
                        (Snapshot.to_kv ~drop_labels:[ "engine" ]
                           (Engine_sig.stats engines.(gi))))))
            result.Pool.values;
          Printf.printf
            "total: %d matches over %d bytes in %s (%s engine, %d thread%s)\n"
            !total (String.length input)
            (Report.fmt_time elapsed)
            engine threads
            (if threads = 1 then "" else "s");
          0))

open Cmdliner

let paths =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"RULESET STREAM"
        ~doc:
          "Normally two files: the compiled ruleset (extended ANML from \
           mfsa-compile, a binary artifact from mfsa-compile --emit — \
           recognised by magic — or, with $(b,--rules), plain rules) and the \
           input stream. With $(b,--load) just the stream.")

let rules =
  Arg.(
    value & flag
    & info [ "rules" ]
        ~doc:
          "Treat $(docv) as a plain rules file (one pattern per line) and \
           compile it in-process instead of loading extended ANML — the \
           compile-stage latency spans then appear in $(b,--metrics) output."
        ~docv:"ANML")

let metrics =
  let fmt =
    Arg.enum [ ("prom", `Prometheus); ("json", `Json) ]
  in
  Arg.(
    value
    & opt ~vopt:(Some `Prometheus) (some fmt) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Serve the stream through the domain-parallel service (one worker \
           per $(b,--threads)) and print only a metrics dump in $(docv) \
           format ($(b,prom), the default, or $(b,json)): compile-stage \
           spans, engine counters and per-domain service histograms.")

let threads =
  Arg.(
    value & opt int 1
    & info [ "t"; "threads" ] ~docv:"T" ~doc:"Worker threads for the MFSA pool.")

let list_events =
  Arg.(value & flag & info [ "l"; "list" ] ~doc:"Print every match event.")

let stats =
  Arg.(
    value & flag
    & info [ "s"; "stats" ]
        ~doc:
          "Report per-MFSA engine statistics (each engine reports its own: \
           active-FSA pressure for imfant, cache behaviour for hybrid, table \
           sizes for dfa, ...).")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Per-batch deadline for the $(b,--metrics) serving path, in \
           seconds. An expired deadline cancels the batch's unexecuted jobs \
           and exits non-zero after dumping the metrics (the \
           mfsa_serve_timeouts_total counter records it).")

let retries =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts a job gets on a transient or replica-poisoning \
           fault before the failure surfaces — the retry budget of the \
           $(b,--metrics) serving path (pair with a $(b,faulty{..}:)-wrapped \
           $(b,--engine) to exercise it).")

let admission =
  let policy =
    Arg.enum
      [
        ("block", Serve.Block); ("reject", Serve.Reject);
        ("shed", Serve.Shed_oldest);
      ]
  in
  Arg.(
    value
    & opt policy Serve.Block
    & info [ "admission" ] ~docv:"POLICY"
        ~doc:
          "What a full submission queue does to a $(b,--metrics) batch: \
           $(b,block) the submitter (backpressure, the default), \
           $(b,reject) the batch, or $(b,shed) the oldest queued job of \
           another batch.")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-match" ~version:"1.0.0"
       ~doc:"Execute compiled MFSAs against an input stream")
    Term.(
      const run $ paths $ Engine_cli.load_term () $ threads $ list_events
      $ stats $ rules $ metrics $ deadline $ retries $ admission
      $ Engine_cli.tuning_term () $ Engine_cli.term ())

let () = Engine_cli.main cmd

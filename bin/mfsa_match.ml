(* mfsa-match: the MFSA engines as a CLI (paper §V).

   Loads an extended-ANML file produced by mfsa-compile and matches an
   input stream with any registered engine, printing per-rule match
   counts and, optionally, every match event — the engine-side half of
   the compile → file → execute path. *)

module Anml = Mfsa_anml.Anml
module Mfsa = Mfsa_model.Mfsa
module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Pool = Mfsa_engine.Pool
module Report = Mfsa_core.Report

let now () = Mfsa_util.Clock.now ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run anml_path input_path threads list_events stats engine =
  match Engine_cli.resolve ~prog:"mfsa-match" engine with
  | Error code -> code
  | Ok engine -> (
      match Anml.read_file anml_path with
      | Error msg ->
          Printf.eprintf "mfsa-match: cannot load %s: %s\n" anml_path msg;
          1
      | Ok mfsas ->
          let input = read_file input_path in
          let engines =
            Array.of_list (List.map (Registry.compile_exn engine) mfsas)
          in
          let t0 = now () in
          let result =
            Pool.run ~threads
              ~jobs:(Array.map (fun eng () -> Engine_sig.run eng input) engines)
          in
          let elapsed = now () -. t0 in
          let total = ref 0 in
          Array.iteri
            (fun gi events ->
              let z = Engine_sig.mfsa engines.(gi) in
              let counts = Array.make z.Mfsa.n_fsas 0 in
              List.iter
                (fun e ->
                  counts.(e.Engine_sig.fsa) <- counts.(e.Engine_sig.fsa) + 1;
                  if list_events then
                    Printf.printf "match mfsa=%d rule=%d pattern=%s end=%d\n" gi
                      e.Engine_sig.fsa
                      z.Mfsa.patterns.(e.Engine_sig.fsa)
                      e.Engine_sig.end_pos)
                events;
              Array.iteri
                (fun j c ->
                  total := !total + c;
                  Printf.printf "rule %d.%d  %-40s %d matches\n" gi j
                    z.Mfsa.patterns.(j) c)
                counts;
              if stats then
                Printf.printf "mfsa %d stats: %s\n" gi
                  (String.concat ", "
                     (List.map
                        (fun (k, v) -> k ^ "=" ^ v)
                        (Engine_sig.stats engines.(gi)))))
            result.Pool.values;
          Printf.printf
            "total: %d matches over %d bytes in %s (%s engine, %d thread%s)\n"
            !total (String.length input)
            (Report.fmt_time elapsed)
            engine threads
            (if threads = 1 then "" else "s");
          0)

open Cmdliner

let anml_path =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"ANML" ~doc:"Extended-ANML file produced by mfsa-compile.")

let input_path =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"STREAM" ~doc:"Input stream file to match against.")

let threads =
  Arg.(
    value & opt int 1
    & info [ "t"; "threads" ] ~docv:"T" ~doc:"Worker threads for the MFSA pool.")

let list_events =
  Arg.(value & flag & info [ "l"; "list" ] ~doc:"Print every match event.")

let stats =
  Arg.(
    value & flag
    & info [ "s"; "stats" ]
        ~doc:
          "Report per-MFSA engine statistics (each engine reports its own: \
           active-FSA pressure for imfant, cache behaviour for hybrid, table \
           sizes for dfa, ...).")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-match" ~version:"1.0.0"
       ~doc:"Execute compiled MFSAs against an input stream")
    Term.(
      const run $ anml_path $ input_path $ threads $ list_events $ stats
      $ Engine_cli.term ())

let () = exit (Cmd.eval' cmd)

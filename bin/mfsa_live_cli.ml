(* mfsa-live: the live-update subsystem as a CLI.

   Drives a Live.t handle from a small command script (a file, or
   stdin), exercising the zero-downtime update path end to end:
   incremental rule adds, O(1)-amortised removals, explicit
   compaction, generation-pinned streaming sessions. One command per
   line; blank lines and lines starting with '#' are skipped.

   The -e flag accepts any Registry name, including the
   faulty{..}:<engine> fault-injection wrapper — note live sessions
   stream through the wrapped engine's session API, which injects no
   faults (Faulty models per-request serving failures). *)

module Live = Mfsa_live.Live
module Snapshot = Mfsa_obs.Snapshot

(* [pats] remembers every pattern ever added (the live handle forgets
   removed rules), so events from a session still pinned to an older
   generation keep their labels. [metrics_every] > 0 dumps the metric
   snapshot after every N executed commands — a poor man's scrape
   loop for script-driven runs. *)
type st = {
  lv : Live.t;
  mutable sess : Live.session option;
  pats : (int, string) Hashtbl.t;
  metrics_every : int;
  mutable executed : int;
}

let print_metrics st = print_string (Snapshot.to_prometheus (Live.metrics st.lv))

let print_events st evs =
  List.iter
    (fun e ->
      Printf.printf "match rule=%d pattern=%s end=%d\n" e.Live.rule
        (Option.value ~default:"?" (Hashtbl.find_opt st.pats e.Live.rule))
        e.Live.end_pos)
    evs

(* The session is created lazily at the first streaming command, so it
   pins the generation current at that point, exactly like an engine
   process that opens its stream after loading the day's rules. *)
let session st =
  match st.sess with
  | Some s -> s
  | None ->
      let s = Live.session st.lv in
      st.sess <- Some s;
      s

let exec st line =
  let cmd, arg =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
  in
  match (cmd, arg) with
  | "add", "" -> print_string "error: add wants a pattern\n"
  | "add", pattern -> (
      match Live.add_rule st.lv pattern with
      | Ok id ->
          Hashtbl.replace st.pats id pattern;
          Printf.printf "added rule %d (gen %d)\n" id (Live.generation st.lv)
      | Error e ->
          Printf.printf "error: %s\n" (Mfsa_core.Pipeline.error_to_string e))
  | "remove", id -> (
      match int_of_string_opt id with
      | None -> Printf.printf "error: remove wants a rule id, got %S\n" id
      | Some id ->
          if Live.remove_rule st.lv id then
            Printf.printf "removed rule %d (gen %d)\n" id (Live.generation st.lv)
          else Printf.printf "error: no live rule %d\n" id)
  | "match", input ->
      let evs = Live.run st.lv input in
      print_events st evs;
      Printf.printf "%d matches (gen %d)\n" (List.length evs)
        (Live.generation st.lv)
  | "feed", chunk ->
      let s = session st in
      print_events st (Live.feed s chunk);
      Printf.printf "fed %d bytes (session gen %d, pos %d)\n"
        (String.length chunk)
        (Live.session_generation s)
        (Live.position s)
  | "finish", "" ->
      let s = session st in
      print_events st (Live.finish s);
      Printf.printf "stream finished at %d bytes\n" (Live.position s)
  | "reset", "" ->
      let s = session st in
      Live.reset s;
      Printf.printf "session reset (gen %d)\n" (Live.session_generation s)
  | "compact", "" ->
      Live.compact st.lv;
      Printf.printf "compacted (gen %d)\n" (Live.generation st.lv)
  | "rules", "" ->
      List.iter
        (fun (id, p) -> Printf.printf "rule %d  %s\n" id p)
        (Live.rules st.lv)
  | "stats", "" ->
      let s = Live.stats st.lv in
      Printf.printf
        "gen %d: %d rules, %d states, %d transitions (%d dead), %d compactions\n"
        s.Live.generation s.Live.live_rules s.Live.states s.Live.transitions
        s.Live.dead_transitions s.Live.compactions
  | "metrics", "" -> print_metrics st
  | _ ->
      Printf.printf
        "error: unknown command %S (expected add/remove/match/feed/finish/\
         reset/compact/rules/stats/metrics)\n"
        line

let run script gc_threshold rules load metrics_every () engine =
  match Engine_cli.resolve ~prog:"mfsa-live" engine with
  | Error code -> code
  | Ok engine -> (
  if gc_threshold < 0. || gc_threshold > 1. then (
    Printf.eprintf "mfsa-live: --gc-threshold must be within [0, 1], got %g\n"
      gc_threshold;
    exit 124);
  (* --load adopts a compiled artifact as generation 0 (rule id j =
     merged FSA j); -r rules compile through the pipeline. *)
  let source =
    match (load, rules) with
    | Some path, [] -> Ok (Engine_cli.Source.Artifact_file path)
    | Some _, _ :: _ -> Error "pass --load or -r rules, not both"
    | None, rules -> Ok (Engine_cli.Source.Rules (Array.of_list rules))
  in
  match
    match source with
    | Error msg -> Error msg
    | Ok source -> (
        match
          Engine_cli.catch_source (fun () ->
              Live.of_source ~engine ~gc_threshold source)
        with
        | Error msg -> Error msg
        | Ok (Error e) -> Error (Mfsa_core.Pipeline.error_to_string e)
        | Ok (Ok lv) -> Ok lv)
  with
  | Error msg ->
      Printf.eprintf "mfsa-live: %s\n" msg;
      1
  | Ok lv ->
      let st =
        {
          lv;
          sess = None;
          pats = Hashtbl.create 64;
          metrics_every;
          executed = 0;
        }
      in
      List.iter (fun (id, p) -> Hashtbl.replace st.pats id p) (Live.rules lv);
      let ic = match script with Some p -> open_in p | None -> stdin in
      Fun.protect
        ~finally:(fun () -> if script <> None then close_in ic)
        (fun () ->
          (try
             while true do
               let line = String.trim (input_line ic) in
               if line <> "" && line.[0] <> '#' then begin
                 exec st line;
                 st.executed <- st.executed + 1;
                 if st.metrics_every > 0 && st.executed mod st.metrics_every = 0
                 then print_metrics st
               end
             done
           with End_of_file -> ());
          0))

open Cmdliner

let script =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"SCRIPT"
        ~doc:"Command script, one command per line (default: stdin).")

let gc_threshold =
  Arg.(
    value
    & opt float 0.25
    & info [ "g"; "gc-threshold" ] ~docv:"FRAC"
        ~doc:
          "Dead-transition fraction that triggers automatic compaction after \
           a removal; 0 compacts on every removal, 1 only on explicit \
           $(b,compact).")

let rules =
  Arg.(
    value & opt_all string []
    & info [ "r"; "rule" ] ~docv:"RE" ~doc:"Initial rule (repeatable).")

let load =
  Arg.(
    value
    & opt (some file) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:
          "Adopt a compiled binary artifact (from $(b,mfsa-compile --emit)) \
           as the initial generation: rule ids are the artifact's merged-FSA \
           order, and the first generation's engine comes up from the \
           persisted tables without recompiling. Mutually exclusive with \
           $(b,-r).")

let metrics_every =
  Arg.(
    value & opt int 0
    & info [ "metrics-every" ] ~docv:"N"
        ~doc:
          "Print a Prometheus metrics dump (the $(b,metrics) command's \
           output, tagged with the current generation) after every $(docv) \
           executed commands; 0 (the default) disables the periodic dump.")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-live" ~version:"1.0.0"
       ~doc:"Drive a live MFSA ruleset: incremental adds, retirement, \
             compaction and generation-pinned streaming")
    Term.(
      const run $ script $ gc_threshold $ rules $ load $ metrics_every
      $ Engine_cli.tuning_term () $ Engine_cli.term ())

let () = Engine_cli.main cmd

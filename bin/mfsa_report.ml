(* mfsa-report: regenerate the paper's evaluation artefacts (Tables I
   and II, Figures 1 and 7-10) on the synthetic datasets. *)

module E = Mfsa_core.Experiments

let experiments =
  [
    ("fig1", E.fig1); ("table1", E.table1); ("fig7", E.fig7); ("fig8", E.fig8);
    ("table2", E.table2); ("fig9", E.fig9); ("fig10", E.fig10);
    ("ablation-ccsplit", E.ablation_ccsplit);
    ("ablation-cluster", E.ablation_cluster);
    ("ablation-strategy", E.ablation_strategy);
    ("ablation-bisim", E.ablation_bisim); ("baselines", E.baselines);
    ("complexity", E.complexity);
  ]

let write_artefact dir name text =
  let path = Filename.concat dir (name ^ ".txt") in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
  Printf.eprintf "wrote %s\n" path

let run names scale stream_kb reps paper out_dir =
  let cfg =
    if paper then E.paper_scale
    else
      let base = E.default () in
      {
        base with
        E.scale = Option.value ~default:base.E.scale scale;
        stream_kb = Option.value ~default:base.E.stream_kb stream_kb;
        reps = Option.value ~default:base.E.reps reps;
      }
  in
  let emit name text =
    match out_dir with
    | Some dir -> write_artefact dir name text
    | None ->
        print_string text;
        print_newline ()
  in
  match names with
  | [] ->
      (match out_dir with
      | Some _ -> List.iter (fun (name, f) -> emit name (f cfg)) experiments
      | None -> print_string (E.run_all cfg));
      0
  | names ->
      let rec go = function
        | [] -> 0
        | name :: rest -> (
            match List.assoc_opt (String.lowercase_ascii name) experiments with
            | Some f ->
                emit (String.lowercase_ascii name) (f cfg);
                go rest
            | None ->
                Printf.eprintf
                  "mfsa-report: unknown experiment %S (expected %s)\n" name
                  (String.concat ", " (List.map fst experiments));
                1)
      in
      go names

open Cmdliner

let names =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Artefacts to regenerate (fig1, table1, fig7, fig8, table2, fig9, fig10); all when omitted.")

let scale =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"S" ~doc:"Ruleset size multiplier (1.0 = paper size).")

let stream_kb =
  Arg.(
    value
    & opt (some int) None
    & info [ "stream-kb" ] ~docv:"KB" ~doc:"Input stream size in KiB (paper: 1024).")

let reps =
  Arg.(
    value
    & opt (some int) None
    & info [ "reps" ] ~docv:"N" ~doc:"Repetitions for timing experiments.")

let paper =
  Arg.(
    value & flag
    & info [ "paper-scale" ]
        ~doc:"Run at the paper's full scale (300-rule datasets, 1 MiB streams; expect hours).")

let out_dir =
  Arg.(
    value
    & opt (some dir) None
    & info [ "o"; "out" ] ~docv:"DIR"
        ~doc:"Write each artefact to $(docv)/<name>.txt instead of stdout.")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-report" ~version:"1.0.0"
       ~doc:"Reproduce the paper's evaluation tables and figures")
    Term.(const run $ names $ scale $ stream_kb $ reps $ paper $ out_dir)

let () = Engine_cli.main cmd

(* mfsa-inspect: examine a compiled extended-ANML ruleset — sizes,
   sharing structure, per-rule projections, Graphviz rendering. *)

module Anml = Mfsa_anml.Anml
module Mfsa = Mfsa_model.Mfsa
module Nfa = Mfsa_automata.Nfa
module Bitset = Mfsa_util.Bitset

let print_summary mfsas =
  Printf.printf "MFSAs: %d\n" (List.length mfsas);
  List.iteri
    (fun gi z ->
      let nt = Mfsa.n_transitions z in
      let shared =
        Array.to_list z.Mfsa.bel
        |> List.filter (fun b -> Bitset.cardinal b > 1)
        |> List.length
      in
      let cc_count, cc_len = Mfsa.cc_stats z in
      Printf.printf
        "mfsa %d: %d rules, %d states, %d transitions (%d shared by 2+ rules), \
         %d character classes (total length %d)\n"
        gi z.Mfsa.n_fsas z.Mfsa.n_states nt shared cc_count cc_len;
      Array.iteri
        (fun j pattern ->
          let own = ref 0 in
          Array.iter (fun b -> if Bitset.mem b j then incr own) z.Mfsa.bel;
          Printf.printf "  rule %d.%d %-40s %d transitions%s%s\n" gi j pattern
            !own
            (if z.Mfsa.anchored_start.(j) then " [^]" else "")
            (if z.Mfsa.anchored_end.(j) then " [$]" else ""))
        z.Mfsa.patterns)
    mfsas

let print_sharing z =
  (* Histogram: how many transitions are shared by k rules. *)
  let hist = Hashtbl.create 16 in
  Array.iter
    (fun b ->
      let k = Bitset.cardinal b in
      Hashtbl.replace hist k (1 + Option.value ~default:0 (Hashtbl.find_opt hist k)))
    z.Mfsa.bel;
  Printf.printf "sharing histogram (rules per transition -> transitions):\n";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Printf.printf "  %3d -> %d\n" k v)

(* A binary artifact is header metadata, not rules: report the
   directory (version, section sizes, per-automaton counts, the tuning
   snapshot) instead of attempting to parse it as extended ANML. *)
let print_artifact path =
  let module A = Engine_cli.Artifact in
  match A.describe path with
  | exception A.Error e ->
      Printf.eprintf "mfsa-inspect: %s: %s\n" path (A.error_to_string e);
      1
  | info ->
      let t = info.A.in_tuning in
      Printf.printf "artifact: version %d, %d bytes, %d MFSA(s)\n"
        info.A.in_version info.A.in_bytes info.A.in_mfsas;
      Printf.printf "tuning: classes=%b prefilter=%b stride=%d cache=%d\n"
        t.Mfsa_engine.Tuning.classes t.Mfsa_engine.Tuning.prefilter
        t.Mfsa_engine.Tuning.stride t.Mfsa_engine.Tuning.cache_size;
      Array.iteri
        (fun i rules ->
          Printf.printf
            "mfsa %d: %d rules, %d states, %d byte classes%s\n" i rules
            info.A.in_states.(i) info.A.in_classes.(i)
            (if info.A.in_prefiltered.(i) then ", prefilter" else ""))
        info.A.in_rules;
      List.iter
        (fun s -> Printf.printf "section %-8s %d bytes\n" s.A.si_name s.A.si_bytes)
        info.A.in_sections;
      0

let run path dot project sharing coo =
  if Engine_cli.Source.is_artifact_file path then print_artifact path
  else
  match Anml.read_file path with
  | Error msg ->
      Printf.eprintf "mfsa-inspect: %s\n" msg;
      1
  | Ok mfsas -> (
      match (dot, project) with
      | true, _ ->
          List.iter (fun z -> print_string (Mfsa.to_dot z)) mfsas;
          0
      | false, None when coo ->
          List.iteri
            (fun gi z ->
              Printf.printf "mfsa %d (paper Fig. 2 layout):\n" gi;
              Format.printf "%a" Mfsa.pp_coo z)
            mfsas;
          0
      | false, Some j -> (
          let rec find gi = function
            | [] ->
                Printf.eprintf "mfsa-inspect: no rule %d in the document\n" j;
                1
            | z :: rest ->
                if j < z.Mfsa.n_fsas then begin
                  let p = Mfsa.project z j in
                  Printf.printf "rule %d.%d: %s\n" gi j z.Mfsa.patterns.(j);
                  Format.printf "%a@." Nfa.pp p;
                  0
                end
                else find (gi + 1) rest
          in
          (* Rule indices are document-global. *)
          let rec descend j gi = function
            | [] -> find gi []
            | z :: rest ->
                if j < z.Mfsa.n_fsas then find gi (z :: rest)
                else descend (j - z.Mfsa.n_fsas) (gi + 1) rest
          in
          match descend j 0 mfsas with code -> code)
      | false, None ->
          print_summary mfsas;
          if sharing then List.iter print_sharing mfsas;
          0)

open Cmdliner

let path =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"ANML" ~doc:"Extended-ANML file produced by mfsa-compile.")

let dot =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of the summary.")

let project =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "project" ] ~docv:"RULE"
        ~doc:"Print the projection of one rule (document-global index) as a plain FSA.")

let sharing =
  Arg.(
    value & flag
    & info [ "sharing" ] ~doc:"Print the transition-sharing histogram per MFSA.")

let coo =
  Arg.(
    value & flag
    & info [ "coo" ]
        ~doc:"Print the COO vectors (bel/row/col/idx) in the paper's Fig. 2 layout.")

let cmd =
  Cmd.v
    (Cmd.info "mfsa-inspect" ~version:"1.0.0"
       ~doc:"Inspect a compiled MFSA ruleset")
    Term.(const run $ path $ dot $ project $ sharing $ coo)

let () = Engine_cli.main cmd

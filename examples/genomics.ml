(* Genome analysis: protein-motif scanning, the paper's second
   motivating domain (§I).

   PROSITE-style motifs — bracket classes of amino acids with bounded
   gaps — are compiled into one MFSA and scanned over a synthetic
   protein database; per-motif hit counts are verified against the
   reference simulator.

   Run with: dune exec examples/genomics.exe *)

module Pipeline = Mfsa_core.Pipeline
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Imfant = Mfsa_engine.Imfant
module Sim = Mfsa_automata.Simulate
module Prng = Mfsa_util.Prng

(* Real PROSITE patterns transliterated to ERE ("x(2,4)" = ".{2,4}").
   E.g. PS00016 (RGD cell-attachment) and kinase-like motifs. *)
let motifs =
  [|
    ("RGD cell attachment", "RGD");
    ("PKC phosphorylation", "[ST].[RK]");
    ("CK2 phosphorylation", "[ST].{2}[DE]");
    ("N-glycosylation", "N[^P][ST][^P]");
    ("Zinc finger C2H2", "C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H");
    ("EF-hand calcium", "D.[DNS][ILVFYW][DENSTG][DNQGHRK][LIVMC][DENQSTAGC].{2}[DE][LIVMFYW]");
    ("Leucine zipper", "L.{6}L.{6}L.{6}L");
    ("Walker A (P-loop)", "[AG].{4}GK[ST]");
  |]

let amino = "ACDEFGHIKLMNPQRSTVWY"

(* A synthetic proteome: random residues with a few motif instances
   spliced in so every motif has hits to find. *)
let synthetic_proteome g size =
  let buf = Buffer.create size in
  let plant = [ "RGD"; "SAK"; "TGGDE"; "NASA"; "AGAGAGGKS"; "LABCDEFLGHIJKLLMNOPQRL" ] in
  while Buffer.length buf < size do
    if Prng.chance g 0.01 then
      Buffer.add_string buf (List.nth plant (Prng.int g (List.length plant)))
    else Buffer.add_char buf amino.[Prng.int g (String.length amino)]
  done;
  Buffer.sub buf 0 size

let () =
  let g = Prng.create 2024 in
  let proteome = synthetic_proteome g 131_072 in
  Printf.printf "Scanning a %d-residue synthetic proteome for %d PROSITE-style motifs.\n\n"
    (String.length proteome) (Array.length motifs);

  let patterns = Array.map snd motifs in
  let compiled = Pipeline.compile_exn ~m:0 patterns in
  let z = List.hd compiled.Pipeline.mfsas in
  let engine = Imfant.compile z in
  let counts = Imfant.count_per_fsa engine proteome in

  Printf.printf "%-24s %-44s %8s\n" "motif" "pattern" "hits";
  Printf.printf "%s\n" (String.make 78 '-');
  Array.iteri
    (fun i (name, pattern) ->
      Printf.printf "%-24s %-44s %8d\n" name pattern counts.(i))
    motifs;

  (* Verify a few motifs against the reference simulator. *)
  List.iter
    (fun i ->
      let expected = Sim.count_matches compiled.Pipeline.fsas.(i) proteome in
      assert (expected = counts.(i)))
    [ 0; 1; 3; 6 ];
  Printf.printf "\nVerified against the reference simulator. ";

  let before = Mfsa_core.Report.fsa_totals compiled.Pipeline.fsas in
  Printf.printf "MFSA: %d states for %d states of separate FSAs (%.1f%% compression).\n"
    z.Mfsa.n_states before.Mfsa_core.Report.states
    (Mfsa.states_compression ~before:before.Mfsa_core.Report.states
       ~after:z.Mfsa.n_states)

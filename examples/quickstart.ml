(* Quickstart: compile a tiny ruleset into one MFSA, execute it with
   iMFAnt, and inspect what merging did.

   Run with: dune exec examples/quickstart.exe *)

module Pipeline = Mfsa_core.Pipeline
module Report = Mfsa_core.Report
module Mfsa = Mfsa_model.Mfsa
module Imfant = Mfsa_engine.Imfant

let () =
  (* 1. A ruleset: three POSIX EREs with a shared sub-pattern. *)
  let rules = [| "hello world"; "hello there"; "good(bye| night)" |] in

  (* 2. Compile: front-end → FSAs → single-FSA optimisation → merge
     (M = 0 merges the whole ruleset into one MFSA) → ANML. *)
  let compiled = Pipeline.compile_exn ~m:0 rules in
  let z = List.hd compiled.Pipeline.mfsas in

  let before = Report.fsa_totals compiled.Pipeline.fsas in
  Printf.printf "Compiled %d rules.\n" (Array.length rules);
  Printf.printf "Separate FSAs: %d states, %d transitions.\n"
    before.Report.states before.Report.transitions;
  Printf.printf "Merged MFSA:   %d states, %d transitions (%.1f%% state compression).\n\n"
    z.Mfsa.n_states (Mfsa.n_transitions z)
    (Mfsa.states_compression ~before:before.Report.states ~after:z.Mfsa.n_states);

  (* 3. Execute against an input with iMFAnt. One pass over the input
     matches all three rules simultaneously. *)
  let input = "she said hello there and then goodbye to the hello world program" in
  let engine = Imfant.compile z in
  let matches = Imfant.run engine input in
  Printf.printf "Input: %S\n\nMatches (rule, end offset):\n" input;
  List.iter
    (fun { Imfant.fsa; end_pos } ->
      Printf.printf "  rule %d %-20s ends at byte %d\n" fsa
        (Printf.sprintf "(%s)" z.Mfsa.patterns.(fsa))
        end_pos)
    matches;

  (* 4. The compiled ruleset is also available as extended ANML —
     write it out to feed mfsa-match or another engine later. *)
  print_newline ();
  print_string "Extended-ANML output (first lines):\n";
  String.split_on_char '\n' compiled.Pipeline.anml
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter print_endline;
  print_endline "..."

(* The paper's future-work directions, implemented and measured:
   partial character-class merging (§VI-A) and similarity-driven rule
   clustering (§VIII).

   A ruleset with partially-overlapping classes and interleaved rule
   families is merged four ways — {plain, cc-split} × {sequential,
   clustered} — and the example reports what each extension buys,
   then verifies that all four automata match identically.

   Run with: dune exec examples/future_work.exe *)

module Pipeline = Mfsa_core.Pipeline
module Report = Mfsa_core.Report
module Cluster = Mfsa_core.Cluster
module Merge = Mfsa_model.Merge
module Mfsa = Mfsa_model.Mfsa
module Ccsplit = Mfsa_model.Ccsplit
module Imfant = Mfsa_engine.Imfant
module Nfa = Mfsa_automata.Nfa

(* Two interleaved families (clustering bait) whose classes overlap
   only partially ([abce] vs [bcd]: shared atom [bc] — the paper's own
   §VI-A example). *)
let rules =
  [|
    "login[abce]+user"; "GET /v1/[0-9a-f]{4}"; "login[bcd]+root";
    "GET /v2/[0-9a-f]{4}"; "login[abce]*admin"; "GET /v1/[0-9]{2}x";
    "login[bcd]*guest"; "GET /v2/[0-9]{2}y";
  |]

let describe name zs =
  let states = List.fold_left (fun acc z -> acc + z.Mfsa.n_states) 0 zs in
  let transitions = List.fold_left (fun acc z -> acc + Mfsa.n_transitions z) 0 zs in
  Printf.printf "  %-28s %4d states %5d transitions (%d MFSA%s)\n" name states
    transitions (List.length zs)
    (if List.length zs = 1 then "" else "s");
  (states, transitions)

let matches_of zs groups input =
  (* Per original rule index, the sorted match ends. *)
  let result = Hashtbl.create 16 in
  List.iter2
    (fun z group ->
      let events = Imfant.run (Imfant.compile z) input in
      List.iteri
        (fun local original ->
          Hashtbl.replace result original
            (List.filter_map
               (fun e -> if e.Imfant.fsa = local then Some e.Imfant.end_pos else None)
               events))
        group)
    zs groups;
  List.init (Array.length rules) (fun i ->
      Option.value ~default:[] (Hashtbl.find_opt result i))

let () =
  let m = 4 in
  let fsas = Result.get_ok (Pipeline.build_fsas rules) in
  let sequential_groups =
    List.init ((Array.length rules + m - 1) / m) (fun g ->
        List.init (min m (Array.length rules - (g * m))) (fun k -> (g * m) + k))
  in
  let clustered_groups = Cluster.group ~m (Array.map Fun.id rules) in

  Printf.printf "%d rules, merging factor %d:\n\n" (Array.length rules) m;
  let plain_seq = Merge.merge_groups ~m fsas in
  let _ = describe "sequential, plain" plain_seq in
  let split_seq = Merge.merge_groups ~m (Ccsplit.split fsas) in
  let _ = describe "sequential, cc-split" split_seq in
  let clustered = Cluster.merge_clustered ~m fsas in
  let s_clu, _ = describe "clustered, plain" clustered in
  let clustered_split =
    List.map
      (fun g ->
        Merge.merge (Ccsplit.split (Array.of_list (List.map (fun i -> fsas.(i)) g))))
      clustered_groups
  in
  let s_both, _ = describe "clustered, cc-split" clustered_split in

  let before = Report.fsa_totals fsas in
  Printf.printf
    "\nSeparate FSAs: %d states. Both extensions together reach %.1f%% state\n\
     compression vs %.1f%% for clustering alone.\n"
    before.Report.states
    (Mfsa.states_compression ~before:before.Report.states ~after:s_both)
    (Mfsa.states_compression ~before:before.Report.states ~after:s_clu);

  (* All four configurations must match identically. *)
  let input =
    "x loginbbcuser y GET /v1/0af3 loginccroot GET /v2/17y loginadmin"
  in
  let reference = matches_of plain_seq sequential_groups input in
  List.iter
    (fun (name, zs, groups) ->
      let got = matches_of zs groups input in
      if got <> reference then begin
        Printf.printf "MISMATCH in %s!\n" name;
        exit 1
      end)
    [
      ("cc-split", split_seq, sequential_groups);
      ("clustered", clustered, clustered_groups);
      ("clustered+cc-split", clustered_split, clustered_groups);
    ];
  Printf.printf
    "\nAll four configurations produce identical matches on the test input\n\
     (%d match events) — the extensions change the representation, never\n\
     the recognised languages.\n"
    (List.fold_left (fun acc l -> acc + List.length l) 0 reference)

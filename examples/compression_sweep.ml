(* Merging-factor sweep: how compression and execution trade off as M
   grows — the knob at the centre of the paper's evaluation (§VI).

   For one synthetic dataset the example sweeps M over the paper's
   values, reporting states, transitions, compression percentages,
   compile time and single-thread execution time, and showing where
   the compression plateau (paper §VI-A) sets in.

   Run with: dune exec examples/compression_sweep.exe [-- ABBR] *)

module Pipeline = Mfsa_core.Pipeline
module Report = Mfsa_core.Report
module Merge = Mfsa_model.Merge
module Imfant = Mfsa_engine.Imfant
module Datasets = Mfsa_datasets.Datasets
module Stream_gen = Mfsa_datasets.Stream_gen

let () =
  let abbr = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BRO" in
  let ds =
    match Datasets.find ~scale:0.3 abbr with
    | Some ds -> ds
    | None ->
        Printf.eprintf "unknown dataset %s (BRO, DS9, PEN, PRO, RG1, TCP)\n" abbr;
        exit 1
  in
  let fsas = Result.get_ok (Pipeline.build_fsas ds.Datasets.rules) in
  let before = Report.fsa_totals fsas in
  let stream = Stream_gen.generate ~seed:ds.Datasets.seed ~size:65_536 ds.Datasets.rules in
  Printf.printf
    "Dataset %s: %d rules, %d states / %d transitions as separate FSAs.\n\n"
    ds.Datasets.abbr (Array.length fsas) before.Report.states
    before.Report.transitions;
  Printf.printf "%5s %8s %8s %9s %9s %12s %12s\n" "M" "states" "trans"
    "states%" "trans%" "merge time" "exec time";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun m ->
      let t0 = Unix.gettimeofday () in
      let zs = Merge.merge_groups ~m fsas in
      let merge_time = Unix.gettimeofday () -. t0 in
      let after = Report.mfsa_totals zs in
      let cs, ct = Report.compression ~before ~after in
      let engines = List.map Imfant.compile zs in
      let t1 = Unix.gettimeofday () in
      let matches =
        List.fold_left (fun acc e -> acc + Imfant.count e stream) 0 engines
      in
      let exec_time = Unix.gettimeofday () -. t1 in
      ignore matches;
      Printf.printf "%5s %8d %8d %8.1f%% %8.1f%% %12s %12s\n"
        (if m = 0 then "all" else string_of_int m)
        after.Report.states after.Report.transitions cs ct
        (Report.fmt_time merge_time) (Report.fmt_time exec_time))
    [ 1; 2; 5; 10; 20; 50; 0 ];
  print_newline ();
  print_endline
    "Reading the table: states%/trans% grow with M and plateau once the\n\
     alphabet is saturated (paper §VI-A); execution time falls as one\n\
     merged pass replaces many — until activation-set bookkeeping (paper\n\
     Table II) starts to push back on some datasets."

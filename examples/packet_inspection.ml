(* Deep packet inspection: the paper's motivating workload (§I).

   A Snort-like signature ruleset is compiled at several merging
   factors and matched against synthetic HTTP-ish traffic; the example
   reports the matches found and how the MFSA compares with running
   one iNFAnt engine per signature — the paper's Fig. 9 experiment in
   miniature.

   Run with: dune exec examples/packet_inspection.exe *)

module Pipeline = Mfsa_core.Pipeline
module Report = Mfsa_core.Report
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Imfant = Mfsa_engine.Imfant
module Infant = Mfsa_engine.Infant
module Stream_gen = Mfsa_datasets.Stream_gen

let signatures =
  [|
    (* Shared request-line prefixes make these highly mergeable. *)
    "GET /cgi-bin/php\\?";
    "GET /cgi-bin/test-cgi";
    "GET /admin/config\\.php";
    "GET /admin/login\\.php";
    "POST /cgi-bin/formmail";
    "POST /admin/upload";
    "User-Agent: sqlmap";
    "User-Agent: nikto";
    "\\.\\./\\.\\./etc/passwd";
    "cmd\\.exe\\?/c\\+dir";
    "union select [a-z0-9_,]+ from";
    "<script>alert\\(";
  |]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  (* Synthetic traffic with attack fragments planted in it. *)
  let traffic = Stream_gen.generate ~seed:99 ~density:0.08 ~size:262_144 signatures in
  Printf.printf "Inspecting %d KiB of synthetic traffic against %d signatures.\n\n"
    (String.length traffic / 1024)
    (Array.length signatures);

  let fsas = Result.get_ok (Pipeline.build_fsas signatures) in

  (* Baseline: one iNFAnt engine per signature (the M = 1 column). *)
  let infants = Array.map Infant.compile fsas in
  let baseline_counts, baseline_time =
    time (fun () -> Array.map (fun e -> Infant.count e traffic) infants)
  in

  (* MFSA: one merged automaton, one pass (the M = all column). *)
  let z = Merge.merge fsas in
  let engine = Imfant.compile z in
  let mfsa_counts, mfsa_time =
    time (fun () -> Imfant.count_per_fsa engine traffic)
  in

  Printf.printf "%-28s %10s %10s\n" "signature" "iNFAnt" "iMFAnt";
  Printf.printf "%s\n" (String.make 50 '-');
  Array.iteri
    (fun i pattern ->
      Printf.printf "%-28s %10d %10d%s\n"
        (if String.length pattern > 28 then String.sub pattern 0 28 else pattern)
        baseline_counts.(i) mfsa_counts.(i)
        (if baseline_counts.(i) <> mfsa_counts.(i) then "  <-- MISMATCH!" else ""))
    signatures;
  assert (baseline_counts = mfsa_counts);

  let before = Report.fsa_totals fsas in
  Printf.printf "\n%d separate FSAs: %d states | merged MFSA: %d states\n"
    (Array.length signatures) before.Report.states z.Mfsa.n_states;
  Printf.printf "%d signatures x %d KiB in one pass: %.2f ms (separate engines: %.2f ms, %.2fx)\n"
    (Array.length signatures)
    (String.length traffic / 1024)
    (mfsa_time *. 1e3) (baseline_time *. 1e3)
    (baseline_time /. mfsa_time);

  (* Active-set telemetry, as in the paper's Table II. *)
  let _, stats = Imfant.run_with_stats engine traffic in
  Printf.printf "Average active signatures per byte: %.2f (max %d)\n"
    stats.Imfant.avg_active stats.Imfant.max_active

(* Streaming intrusion detection: the deployment model behind the
   paper's DPI motivation — traffic arrives packet by packet, matches
   must be found even when a signature spans a packet boundary, and
   the detector cannot buffer the whole stream.

   The example compiles a signature ruleset once, then feeds synthetic
   "packets" of irregular sizes through an iMFAnt session, reporting
   alerts as they complete; a whole-stream run confirms nothing was
   missed at the boundaries.

   Run with: dune exec examples/streaming_ids.exe *)

module Pipeline = Mfsa_core.Pipeline
module Imfant = Mfsa_engine.Imfant
module Merge = Mfsa_model.Merge
module Mfsa = Mfsa_model.Mfsa
module Prng = Mfsa_util.Prng

let signatures =
  [| "wget http://"; "/etc/shadow"; "eval\\(base64"; "nc -l -p [0-9]+"; "rm -rf /" |]

let () =
  let compiled = Pipeline.compile_exn ~m:0 signatures in
  let z = List.hd compiled.Pipeline.mfsas in
  let engine = Imfant.compile z in

  (* Synthetic traffic with signatures planted across packet cuts. *)
  let traffic =
    "GET /index.html HTTP/1.1 ... cmd=wget%20http://evil cat /etc/shadow \
     payload eval(base64 data nc -l -p 4444 cleanup rm -rf / done"
  in
  let g = Prng.create 11 in
  let packets =
    (* Split the traffic at random points into 6-20 byte packets. *)
    let rec cut i acc =
      if i >= String.length traffic then List.rev acc
      else
        let len = min (Prng.int_in g 6 20) (String.length traffic - i) in
        cut (i + len) (String.sub traffic i len :: acc)
    in
    cut 0 []
  in
  Printf.printf "Monitoring %d signatures over %d packets (%d bytes total)\n\n"
    (Array.length signatures) (List.length packets) (String.length traffic);

  let session = Imfant.session engine in
  let alerts = ref 0 in
  List.iteri
    (fun pkt_index packet ->
      let events = Imfant.feed session packet in
      List.iter
        (fun { Imfant.fsa; end_pos } ->
          incr alerts;
          Printf.printf "ALERT in packet %2d at stream offset %3d: %s\n"
            pkt_index end_pos z.Mfsa.patterns.(fsa))
        events)
    packets;
  let flushed = Imfant.finish session in
  alerts := !alerts + List.length flushed;

  (* Cross-check against a whole-stream run. *)
  let expected = Imfant.count engine traffic in
  Printf.printf "\n%d alerts streamed; whole-stream run finds %d. %s\n" !alerts
    expected
    (if !alerts = expected then "No boundary losses."
     else "MISMATCH — boundary handling broken!");
  assert (!alerts = expected)

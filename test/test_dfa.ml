(* Unit and property tests for the deterministic substrate: subset
   construction, Hopcroft minimisation, D²FA default-transition
   compression, 2-stride tables and the scanning DFA engine. *)

module Nfa = Mfsa_automata.Nfa
module Dfa = Mfsa_automata.Dfa
module D2fa = Mfsa_automata.D2fa
module Stride = Mfsa_automata.Stride
module Sim = Mfsa_automata.Simulate
module P = Mfsa_frontend.Parser
module De = Mfsa_engine.Dfa_engine
module In = Mfsa_engine.Infant

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fsa_of_rule rule =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule rule))))

let fsa_of src = fsa_of_rule (P.parse_exn src)

let dfa_of src = Dfa.determinize (fsa_of src)

let words = [ ""; "a"; "b"; "ab"; "ba"; "abc"; "abd"; "aab"; "abab"; "cab"; "aaab" ]

(* ----------------------------------------------------- Determinize *)

let test_determinize_agrees () =
  List.iter
    (fun re ->
      let nfa = fsa_of re in
      let dfa = Dfa.determinize nfa in
      List.iter
        (fun w ->
          check Alcotest.bool
            (Printf.sprintf "%S accepts %S" re w)
            (Sim.accepts nfa w) (Dfa.accepts dfa w))
        words)
    [ "ab"; "a|b"; "a*"; "(ab|ad)c?"; "[ab]+"; "a{2,3}b"; "" ]

let test_determinize_is_deterministic () =
  let d = dfa_of "(a|b)*abb" in
  (* Totality and determinism are structural in the table; check a
     walk stays in range. *)
  let q = ref d.Dfa.start in
  String.iter
    (fun c ->
      q := Dfa.step d !q c;
      check Alcotest.bool "state in range" true (!q >= 0 && !q < d.Dfa.n_states))
    "abxybba"

let test_determinize_rejects_eps () =
  Alcotest.check_raises "eps rejected"
    (Invalid_argument "Dfa.determinize: automaton must be ε-free") (fun () ->
      ignore (Dfa.determinize (Mfsa_automata.Thompson.build_pattern "a|b")))

let test_dfa_match_ends () =
  let d = dfa_of "ab" in
  check Alcotest.(list int) "same as simulator" (Sim.match_ends (fsa_of "ab") "abxab")
    (Dfa.match_ends d "abxab")

let test_dfa_create_validates () =
  Alcotest.check_raises "bad table size"
    (Invalid_argument "Dfa.create: transition table must have n_states * 256 entries")
    (fun () ->
      ignore
        (Dfa.create ~n_states:2 ~next:(Array.make 256 0) ~start:0
           ~finals:[| false; false |] ~pattern:"" ()))

let test_to_nfa_roundtrip () =
  List.iter
    (fun re ->
      let d = dfa_of re in
      let back = Dfa.to_nfa d in
      List.iter
        (fun w ->
          check Alcotest.bool
            (Printf.sprintf "%S on %S" re w)
            (Dfa.accepts d w) (Sim.accepts back w))
        words)
    [ "ab|cd"; "a*b"; "[abc]{2}" ]

(* -------------------------------------------------------- Minimize *)

let test_minimize_shrinks () =
  (* (a|b)(a|b) determinises into separate branches that minimise
     into a chain. *)
  let d = dfa_of "(a|b)(a|b)" in
  let m = Dfa.minimize d in
  check Alcotest.bool "no larger" true (m.Dfa.n_states <= d.Dfa.n_states);
  List.iter
    (fun w ->
      check Alcotest.bool ("lang " ^ w) (Dfa.accepts d w) (Dfa.accepts m w))
    words

let test_minimize_canonical () =
  (* Two syntactically different REs of the same language minimise to
     the same state count. *)
  let m1 = Dfa.minimize (dfa_of "(ab|ac)") in
  let m2 = Dfa.minimize (dfa_of "a(b|c)") in
  check Alcotest.int "same minimal size" m1.Dfa.n_states m2.Dfa.n_states

let test_minimize_drops_unreachable () =
  let d = dfa_of "abc" in
  let m = Dfa.minimize d in
  check Alcotest.int "reachable only" (Dfa.n_reachable m) m.Dfa.n_states

let test_minimize_known_size () =
  (* The minimal DFA of (a|b)*abb over a 2-letter live alphabet has 4
     live states plus the sink absorbing the other 254 bytes. *)
  let m = Dfa.minimize (dfa_of "(a|b)*abb") in
  check Alcotest.int "textbook size + sink" 5 m.Dfa.n_states

let test_minimize_empty_language () =
  let a =
    Nfa.create ~n_states:2
      ~transitions:[ { Nfa.src = 0; label = Nfa.label_sym 'a'; dst = 1 } ]
      ~start:0 ~finals:[] ~pattern:"" ()
  in
  let m = Dfa.minimize (Dfa.determinize a) in
  check Alcotest.int "one sink state" 1 m.Dfa.n_states;
  check Alcotest.bool "rejects" false (Dfa.accepts m "a")

let prop_minimize_preserves_language =
  qtest
    (QCheck2.Test.make ~count:100 ~name:"dfa: minimize preserves the language"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
       (fun (rules, input) ->
         let nfa = fsa_of_rule (List.hd rules) in
         let d = Dfa.determinize nfa in
         let m = Dfa.minimize d in
         Dfa.accepts d input = Dfa.accepts m input
         && m.Dfa.n_states <= d.Dfa.n_states))

let prop_determinize_equals_nfa =
  qtest
    (QCheck2.Test.make ~count:100 ~name:"dfa: determinize = NFA acceptance"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
       (fun (rules, input) ->
         let nfa = fsa_of_rule (List.hd rules) in
         Dfa.accepts (Dfa.determinize nfa) input = Sim.accepts nfa input))

(* ------------------------------------------------------------ D2FA *)

let test_d2fa_compresses () =
  let d = Dfa.minimize (dfa_of "abcdef|abcxyz|abcqrs") in
  let c = D2fa.compress d in
  let full = d.Dfa.n_states * 256 in
  check Alcotest.bool "stores fewer than the full table" true
    (D2fa.n_stored_transitions c < full);
  check Alcotest.bool "substantial reduction" true
    (D2fa.n_stored_transitions c * 2 < full)

let test_d2fa_agrees () =
  List.iter
    (fun re ->
      let d = Dfa.minimize (dfa_of re) in
      let c = D2fa.compress d in
      List.iter
        (fun w ->
          check Alcotest.bool
            (Printf.sprintf "%S accepts %S" re w)
            (Dfa.accepts d w) (D2fa.accepts c w);
          check
            Alcotest.(list int)
            (Printf.sprintf "%S ends %S" re w)
            (Dfa.match_ends d w) (D2fa.match_ends c w))
        words)
    [ "ab"; "(a|b)*abb"; "a[bc]d"; "abc|abd" ]

let test_d2fa_default_chains_bounded () =
  let d = Dfa.minimize (dfa_of "(ab|cd)*(ef|gh)") in
  let c = D2fa.compress d in
  (* Defaults point to strictly smaller BFS depth, so chains are
     bounded by the automaton depth (< n_states). *)
  check Alcotest.bool "acyclic chains" true (D2fa.max_default_chain c < d.Dfa.n_states)

let prop_d2fa_equals_dfa =
  qtest
    (QCheck2.Test.make ~count:100 ~name:"d2fa: compression is lossless"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
       (fun (rules, input) ->
         let d = Dfa.minimize (Dfa.determinize (fsa_of_rule (List.hd rules))) in
         let c = D2fa.compress d in
         Dfa.accepts d input = D2fa.accepts c input
         && D2fa.n_stored_transitions c <= d.Dfa.n_states * 256))

(* ---------------------------------------------------------- Stride *)

let test_stride_byte_classes () =
  let d = dfa_of "[ab]c" in
  let class_of, k = Stride.byte_classes d in
  check Alcotest.bool "few classes" true (k <= 4);
  check Alcotest.int "a and b equivalent" class_of.(Char.code 'a')
    class_of.(Char.code 'b');
  check Alcotest.bool "a and c differ" true
    (class_of.(Char.code 'a') <> class_of.(Char.code 'c'))

let test_stride_accepts () =
  List.iter
    (fun re ->
      let d = dfa_of re in
      let s = Stride.build d in
      List.iter
        (fun w ->
          check Alcotest.bool
            (Printf.sprintf "%S accepts %S" re w)
            (Dfa.accepts d w) (Stride.accepts s w))
        words)
    [ "ab"; "abc"; "a*"; "(ab)*"; "a|bc" ]

let test_stride_match_ends () =
  List.iter
    (fun (re, w) ->
      let d = dfa_of re in
      let s = Stride.build d in
      check
        Alcotest.(list int)
        (Printf.sprintf "%S on %S" re w)
        (Dfa.match_ends d w) (Stride.match_ends s w))
    [
      ("ab", "abxabab"); ("ab", "xabxx"); ("a", "aaa"); ("abc", "zabcz");
      ("ab", "ab"); ("ab", "b"); ("ab", "");
    ]

let test_stride_table_size () =
  let d = dfa_of "[ab]c" in
  let s = Stride.build d in
  check Alcotest.int "n * k^2 entries"
    (d.Dfa.n_states * s.Stride.n_classes * s.Stride.n_classes)
    (Stride.n_table_entries s)

let prop_stride_equals_dfa =
  qtest
    (QCheck2.Test.make ~count:100 ~name:"stride: 2-stride = 1-stride matching"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
       (fun (rules, input) ->
         let rule = List.hd rules in
         let rule = { rule with Mfsa_frontend.Ast.anchored_start = false; anchored_end = false } in
         let d = Dfa.determinize (fsa_of_rule rule) in
         let s = Stride.build d in
         Stride.accepts s input = Dfa.accepts d input
         && Stride.match_ends s input = Dfa.match_ends d input))

(* ------------------------------------------------------ Dfa_engine *)

let test_engine_agrees_with_infant () =
  List.iter
    (fun (re, inputs) ->
      let nfa = fsa_of re in
      let de = De.compile nfa in
      let infant = In.compile nfa in
      List.iter
        (fun w ->
          check
            Alcotest.(list int)
            (Printf.sprintf "%S on %S" re w)
            (In.run infant w) (De.run de w))
        inputs)
    [
      ("ab", [ "abxab"; ""; "ab"; "ba" ]);
      ("a*", [ "aaa"; "bab"; "xx" ]);
      ("a(b|c)d", [ "abdacd"; "ad" ]);
      ("[0-9]+", [ "ab12cd345"; "9" ]);
    ]

let test_engine_anchors () =
  let de = De.compile (fsa_of "^ab") in
  check Alcotest.(list int) "start anchor" [ 2 ] (De.run de "abab");
  let de = De.compile (fsa_of "ab$") in
  check Alcotest.(list int) "end anchor" [ 4 ] (De.run de "abab")

let test_engine_count_and_size () =
  let de = De.compile (fsa_of "ab") in
  check Alcotest.int "count" 2 (De.count de "abab");
  check Alcotest.bool "has states" true (De.n_states de > 0);
  let unmin = De.compile ~minimize:false (fsa_of "(a|b)(a|b)") in
  check Alcotest.bool "minimize shrinks or equals" true
    (De.n_states (De.compile (fsa_of "(a|b)(a|b)")) <= De.n_states unmin)

let prop_engine_equals_infant =
  qtest
    (QCheck2.Test.make ~count:150 ~name:"dfa engine = iNFAnt matching"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
       (fun (rules, input) ->
         let nfa = fsa_of_rule (List.hd rules) in
         De.run (De.compile nfa) input = In.run (In.compile nfa) input))

let () =
  Alcotest.run "dfa"
    [
      ( "determinize",
        [
          Alcotest.test_case "agrees with NFA" `Quick test_determinize_agrees;
          Alcotest.test_case "total and in-range" `Quick test_determinize_is_deterministic;
          Alcotest.test_case "rejects eps" `Quick test_determinize_rejects_eps;
          Alcotest.test_case "match ends" `Quick test_dfa_match_ends;
          Alcotest.test_case "create validates" `Quick test_dfa_create_validates;
          Alcotest.test_case "to_nfa roundtrip" `Quick test_to_nfa_roundtrip;
          prop_determinize_equals_nfa;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "shrinks" `Quick test_minimize_shrinks;
          Alcotest.test_case "canonical size" `Quick test_minimize_canonical;
          Alcotest.test_case "drops unreachable" `Quick test_minimize_drops_unreachable;
          Alcotest.test_case "textbook example" `Quick test_minimize_known_size;
          Alcotest.test_case "empty language" `Quick test_minimize_empty_language;
          prop_minimize_preserves_language;
        ] );
      ( "d2fa",
        [
          Alcotest.test_case "compresses" `Quick test_d2fa_compresses;
          Alcotest.test_case "agrees with DFA" `Quick test_d2fa_agrees;
          Alcotest.test_case "default chains bounded" `Quick test_d2fa_default_chains_bounded;
          prop_d2fa_equals_dfa;
        ] );
      ( "stride",
        [
          Alcotest.test_case "byte classes" `Quick test_stride_byte_classes;
          Alcotest.test_case "accepts" `Quick test_stride_accepts;
          Alcotest.test_case "match ends" `Quick test_stride_match_ends;
          Alcotest.test_case "table size" `Quick test_stride_table_size;
          prop_stride_equals_dfa;
        ] );
      ( "engine",
        [
          Alcotest.test_case "agrees with iNFAnt" `Quick test_engine_agrees_with_infant;
          Alcotest.test_case "anchors" `Quick test_engine_anchors;
          Alcotest.test_case "count and size" `Quick test_engine_count_and_size;
          prop_engine_equals_infant;
        ] );
    ]

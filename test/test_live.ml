(* Tests for the live-ruleset subsystem: incremental merge
   (Merge.merge_into / Builder), retirement + compaction, and the
   generation-versioned Live handle.

   The correctness anchor throughout: after any interleaving of adds
   and removes, the live matcher's match set equals that of a fresh
   Ruleset.compile over the surviving rules — same (rule, end_pos)
   multiset, rule ids stable across updates. *)

module Nfa = Mfsa_automata.Nfa
module Sim = Mfsa_automata.Simulate
module P = Mfsa_frontend.Parser
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Builder = Mfsa_model.Builder
module Im = Mfsa_engine.Imfant
module Ruleset = Mfsa_core.Ruleset
module Live = Mfsa_live.Live
module Ast = Mfsa_frontend.Ast
module Gen = QCheck2.Gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let pair_events evs = List.map (fun e -> (e.Live.rule, e.Live.end_pos)) evs

(* Fresh-compile oracle: the surviving rules, matched by a one-shot
   Ruleset, reported against the live layer's stable ids. *)
let reference survivors input =
  match survivors with
  | [] -> []
  | _ ->
      let ids = Array.of_list (List.map fst survivors) in
      let rs =
        Ruleset.compile_exn (Array.of_list (List.map snd survivors))
      in
      Ruleset.run rs input
      |> List.map (fun e -> (ids.(e.Ruleset.rule), e.Ruleset.end_pos))

let sorted = List.sort compare

let assert_anchor ?(msg = "live = fresh compile of survivors") lv input =
  check
    Alcotest.(list (pair int int))
    msg
    (sorted (reference (Live.rules lv) input))
    (sorted (pair_events (Live.run lv input)))

(* ------------------------------------------------- Merge.merge_into *)

let test_merge_into_equals_cascade () =
  let pats = [| "hello world"; "hello there"; "he(l|n)p"; "wor[a-z]d" |] in
  let fsas = Array.map fsa_of pats in
  let direct = Merge.merge fsas in
  let incremental =
    Array.fold_left
      (fun z a ->
        match z with
        | None -> Some (Merge.merge [| a |])
        | Some z -> Some (Merge.merge_into z a z.Mfsa.n_fsas))
      None fsas
    |> Option.get
  in
  check Alcotest.int "same fsa count" direct.Mfsa.n_fsas
    incremental.Mfsa.n_fsas;
  check
    Alcotest.(array string)
    "same patterns" direct.Mfsa.patterns incremental.Mfsa.patterns;
  check Alcotest.int "same states" direct.Mfsa.n_states incremental.Mfsa.n_states;
  check Alcotest.int "same transitions" (Mfsa.n_transitions direct)
    (Mfsa.n_transitions incremental);
  let input = "say hello there or hello world and ask for henp or help" in
  let events z =
    List.map (fun e -> (e.Im.fsa, e.Im.end_pos)) (Im.run (Im.compile z) input)
  in
  check
    Alcotest.(list (pair int int))
    "same matches" (events direct) (events incremental)

let test_merge_into_rejects () =
  let z = Merge.merge [| fsa_of "abc" |] in
  Alcotest.check_raises "wrong id"
    (Invalid_argument
       "Merge.merge_into: identifier 3 must be the next free one (1)")
    (fun () -> ignore (Merge.merge_into z (fsa_of "x") 3));
  Alcotest.check_raises "eps arcs"
    (Invalid_argument "Merge.merge_into: automata must be ε-free") (fun () ->
      ignore (Merge.merge_into z (Mfsa_automata.Thompson.build_pattern "a|b") 1))

(* ------------------------------------------------------ Mfsa.retire *)

let battery =
  [ ""; "a"; "ab"; "abc"; "abd"; "abcd"; "xyz"; "ba"; "aabbcc"; "zabcz" ]

let assert_iso ~msg (a : Nfa.t) (p : Nfa.t) =
  check Alcotest.int (msg ^ ": state count") a.Nfa.n_states p.Nfa.n_states;
  check Alcotest.int
    (msg ^ ": transition count")
    (Nfa.n_transitions a) (Nfa.n_transitions p);
  List.iter
    (fun s ->
      check Alcotest.bool
        (Printf.sprintf "%s: lang on %S" msg s)
        (Sim.accepts a s) (Sim.accepts p s))
    battery

let test_retire_preserves_survivor_projections () =
  let pats = [| "abc"; "abd"; "a(b|c)*"; "xyz" |] in
  let fsas = Array.map fsa_of pats in
  let z = Merge.merge fsas in
  (* Retire rule 1: survivors 0, 2, 3 shift to ids 0, 1, 2. *)
  let z' = Option.get (Mfsa.retire z 1) in
  check Alcotest.int "one fewer fsa" 3 z'.Mfsa.n_fsas;
  check
    Alcotest.(array string)
    "patterns shifted" [| "abc"; "a(b|c)*"; "xyz" |] z'.Mfsa.patterns;
  check Alcotest.bool "still valid" true (Mfsa.validate z' = Ok ());
  check Alcotest.bool "no larger" true (z'.Mfsa.n_states <= z.Mfsa.n_states);
  List.iteri
    (fun j' j ->
      assert_iso
        ~msg:(Printf.sprintf "survivor %d" j)
        fsas.(j) (Mfsa.project z' j'))
    [ 0; 2; 3 ];
  (* Retiring everything but one leaves that rule's automaton. *)
  let last =
    List.fold_left
      (fun z _ -> Option.get (Mfsa.retire z 0))
      z' [ (); () ]
  in
  check Alcotest.int "single fsa left" 1 last.Mfsa.n_fsas;
  assert_iso ~msg:"last survivor" fsas.(3) (Mfsa.project last 0);
  check Alcotest.bool "last one cannot retire" true (Mfsa.retire last 0 = None);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mfsa.retire: FSA id out of range") (fun () ->
      ignore (Mfsa.retire z 4))

(* --------------------------------------------------------- Builder *)

let builder_matches b input =
  match Builder.freeze b with
  | None -> []
  | Some (z, slot_of_id) ->
      Im.run (Im.compile z) input
      |> List.map (fun e -> (slot_of_id.(e.Im.fsa), e.Im.end_pos))

let test_builder_retire_compact_roundtrip () =
  let b = Builder.create () in
  let s0 = Builder.add b (fsa_of "hello world") in
  let s1 = Builder.add b (fsa_of "hello there") in
  let s2 = Builder.add b (fsa_of "help") in
  check Alcotest.(list int) "slots in order" [ 0; 1; 2 ] [ s0; s1; s2 ];
  let input = "hello there, hello world, help!" in
  let before = builder_matches b input in
  Builder.retire b s1;
  check Alcotest.int "live count drops" 2 (Builder.n_live b);
  check Alcotest.bool "garbage appeared" true (Builder.dead_transitions b > 0);
  let after_retire = builder_matches b input in
  check
    Alcotest.(list (pair int int))
    "retired slot's matches gone"
    (List.filter (fun (s, _) -> s <> s1) before)
    after_retire;
  let nt_dirty = Builder.n_transitions b in
  let map = Builder.compact b in
  check Alcotest.(list int) "relocation map" [ 0; -1; 1 ]
    (Array.to_list map);
  check Alcotest.int "no dead left" 0 (Builder.dead_transitions b);
  check Alcotest.bool "transitions dropped" true
    (Builder.n_transitions b < nt_dirty);
  let after_compact = builder_matches b input in
  check
    Alcotest.(list (pair int int))
    "same matches under new slots"
    (List.map (fun (s, e) -> (map.(s), e)) after_retire)
    after_compact;
  (* A later add reuses the structure and keeps matching correctly. *)
  let s3 = Builder.add b (fsa_of "hello world!") in
  check Alcotest.int "next slot after compact" 2 s3;
  check Alcotest.bool "new rule matches" true
    (List.exists (fun (s, _) -> s = s3) (builder_matches b (input ^ " hello world!")))

let test_builder_resurrects_dead_structure () =
  let b = Builder.create () in
  let s0 = Builder.add b (fsa_of "abcd") in
  Builder.retire b s0;
  check Alcotest.int "all dead" (Builder.n_transitions b)
    (Builder.dead_transitions b);
  (* The same automaton merges back onto the dead skeleton: no new
     states or transitions, nothing dead anymore. *)
  let nt = Builder.n_transitions b and ns = Builder.n_states b in
  let s1 = Builder.add b (fsa_of "abcd") in
  check Alcotest.int "no new transitions" nt (Builder.n_transitions b);
  check Alcotest.int "no new states" ns (Builder.n_states b);
  check Alcotest.int "no dead left" 0 (Builder.dead_transitions b);
  check
    Alcotest.(list (pair int int))
    "matches back" [ (s1, 4) ]
    (builder_matches b "abcd")

(* ------------------------------------------------------ Live basics *)

let test_live_add_and_match () =
  let lv = Live.create () in
  check Alcotest.int "gen 0" 0 (Live.generation lv);
  check Alcotest.(list (pair int int)) "empty run" [] (pair_events (Live.run lv "abc"));
  let r0 = Live.add_rule_exn lv "hello world" in
  let r1 = Live.add_rule_exn lv "hello there" in
  let r2 = Live.add_rule_exn lv "he(l|n)p" in
  check Alcotest.(list int) "stable ids in order" [ 0; 1; 2 ] [ r0; r1; r2 ];
  check Alcotest.int "three updates" 3 (Live.generation lv);
  check Alcotest.int "three rules" 3 (Live.n_rules lv);
  assert_anchor lv "say hello there or hello world and ask for henp or help"

let test_live_remove_is_immediate_and_ids_stable () =
  let lv =
    Result.get_ok
      (Live.of_rules [| "hello world"; "hello there"; "he(l|n)p" |])
  in
  let input = "say hello there or hello world and ask for henp" in
  check Alcotest.bool "rule 1 matches before" true
    (List.mem_assoc 1 (pair_events (Live.run lv input)));
  check Alcotest.bool "removed" true (Live.remove_rule lv 1);
  check Alcotest.bool "rule 1 gone" false
    (List.mem_assoc 1 (pair_events (Live.run lv input)));
  check Alcotest.bool "other ids unchanged" true
    (List.mem_assoc 0 (pair_events (Live.run lv input))
    && List.mem_assoc 2 (pair_events (Live.run lv input)));
  assert_anchor lv input;
  check Alcotest.bool "double remove refused" false (Live.remove_rule lv 1);
  check Alcotest.bool "unknown id refused" false (Live.remove_rule lv 99);
  (* New rules never reuse a retired id. *)
  let r3 = Live.add_rule_exn lv "hel+o" in
  check Alcotest.int "fresh id" 3 r3;
  assert_anchor lv input

let test_live_remove_last_rule () =
  let lv = Result.get_ok (Live.of_rules [| "abc" |]) in
  check Alcotest.bool "removed" true (Live.remove_rule lv 0);
  check Alcotest.int "no rules" 0 (Live.n_rules lv);
  check Alcotest.(list (pair int int)) "no matches" []
    (pair_events (Live.run lv "abcabc"));
  let r = Live.add_rule_exn lv "abc" in
  check Alcotest.int "id not reused" 1 r;
  check Alcotest.(list (pair int int)) "matches again"
    [ (1, 3); (1, 6) ]
    (pair_events (Live.run lv "abcabc"))

let test_live_bad_rule_leaves_ruleset_untouched () =
  let lv = Result.get_ok (Live.of_rules [| "abc" |]) in
  let gen = Live.generation lv in
  (match Live.add_rule lv "(broken" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  check Alcotest.int "generation unchanged" gen (Live.generation lv);
  check Alcotest.int "rules unchanged" 1 (Live.n_rules lv);
  assert_anchor lv "abcabc";
  (* The _exn form raises the typed error, not an anonymous Failure —
     serving layers match on it to reject the update and keep the old
     generation live, exactly as just verified above. *)
  (match Live.add_rule_exn lv "(broken" with
  | exception Mfsa_core.Pipeline.Compile_error e ->
      check Alcotest.string "typed message" "at offset 0: unmatched '('"
        e.Mfsa_core.Pipeline.message
  | _ -> Alcotest.fail "expected Compile_error");
  check Alcotest.int "generation still unchanged" gen (Live.generation lv);
  assert_anchor lv "abcabc";
  (* Both rejections are on the books, tagged with the generation. *)
  let module S = Mfsa_obs.Snapshot in
  let m = Live.metrics lv in
  check
    Alcotest.(option (float 1e-9))
    "rejected counter" (Some 2.)
    (S.number ~labels:[ ("result", "rejected"); ("generation", string_of_int gen) ]
       m "mfsa_live_updates_total");
  check
    Alcotest.(option (float 1e-9))
    "ok counter" (Some 1.)
    (S.number ~labels:[ ("result", "ok"); ("generation", string_of_int gen) ]
       m "mfsa_live_updates_total")

let test_live_gc_threshold () =
  (* Threshold 0: every removal compacts; no garbage survives. *)
  let eager =
    Result.get_ok (Live.of_rules ~gc_threshold:0. [| "abcx"; "abcy"; "abcz" |])
  in
  ignore (Live.remove_rule eager 1);
  let s = Live.stats eager in
  check Alcotest.int "eager: compacted once" 1 s.Live.compactions;
  check Alcotest.int "eager: no dead transitions" 0 s.Live.dead_transitions;
  assert_anchor eager "abcx abcy abcz";
  (* Threshold 1: removals never compact on their own. *)
  let lazy_lv =
    Result.get_ok (Live.of_rules ~gc_threshold:1. [| "abcx"; "abcy"; "abcz" |])
  in
  ignore (Live.remove_rule lazy_lv 0);
  ignore (Live.remove_rule lazy_lv 1);
  let s = Live.stats lazy_lv in
  check Alcotest.int "lazy: never compacted" 0 s.Live.compactions;
  check Alcotest.bool "lazy: garbage accumulates" true (s.Live.dead_transitions > 0);
  assert_anchor lazy_lv "abcx abcy abcz";
  (* Forced compaction drops it and preserves matching. *)
  Live.compact lazy_lv;
  let s = Live.stats lazy_lv in
  check Alcotest.int "forced compaction" 1 s.Live.compactions;
  check Alcotest.int "garbage gone" 0 s.Live.dead_transitions;
  assert_anchor lazy_lv "abcx abcy abcz";
  Alcotest.check_raises "threshold range"
    (Invalid_argument "Live.create: gc_threshold must be within [0, 1]")
    (fun () -> ignore (Live.create ~gc_threshold:1.5 ()))

let test_live_snapshot_pins_generation () =
  let lv = Result.get_ok (Live.of_rules [| "abc"; "xyz" |]) in
  let snap = Live.snapshot lv in
  ignore (Live.remove_rule lv 0);
  let input = "abc xyz" in
  (* The snapshot still matches the removed rule; the handle does not. *)
  check Alcotest.bool "snapshot keeps rule 0" true
    (List.exists
       (fun e -> e.Live.rule = 0)
       (Live.snapshot_run snap input));
  check Alcotest.bool "handle dropped rule 0" false
    (List.exists (fun e -> e.Live.rule = 0) (Live.run lv input));
  check Alcotest.int "snapshot generation" 0 (Live.snapshot_generation snap);
  check Alcotest.int "current generation" 1
    (Live.snapshot_generation (Live.snapshot lv))

(* ----------------------------------------------- Live streaming *)

let feed_all s chunks =
  List.concat_map (fun c -> Live.feed s c) chunks @ Live.finish s

let test_session_generation_swap () =
  let lv = Result.get_ok (Live.of_rules [| "abc" |]) in
  let s = Live.session lv in
  check Alcotest.int "session pinned at open" 0 (Live.session_generation s);
  (* Mid-stream updates do not disturb the session... *)
  let m1 = Live.feed s "ab" in
  let r1 = Live.add_rule_exn lv "bca" in
  let m2 = Live.feed s "cab" in
  check Alcotest.(list (pair int int)) "old generation matches"
    [ (0, 3) ]
    (pair_events (m1 @ m2));
  check Alcotest.bool "new rule invisible before reset" true
    (not (List.exists (fun e -> e.Live.rule = r1) m2));
  check Alcotest.int "still the opening generation" 0
    (Live.session_generation s);
  (* ...and reset swaps to the current one. *)
  Live.reset s;
  check Alcotest.int "reset re-pins" (Live.generation lv)
    (Live.session_generation s);
  check Alcotest.int "position rewinds" 0 (Live.position s);
  let m = feed_all s [ "ab"; "cab"; "ca" ] in
  check
    Alcotest.(list (pair int int))
    "both rules on new generation"
    [ (0, 3); (0, 6); (1, 4); (1, 7) ]
    (sorted (pair_events m))

let test_session_on_empty_ruleset () =
  let lv = Live.create () in
  let s = Live.session lv in
  check Alcotest.(list (pair int int)) "no matches" []
    (pair_events (feed_all s [ "abc"; "def" ]));
  check Alcotest.int "position tracked" 6 (Live.position s);
  ignore (Live.add_rule_exn lv "def");
  Live.reset s;
  check Alcotest.(list (pair int int)) "matches after reset"
    [ (0, 6) ]
    (pair_events (feed_all s [ "abc"; "def" ]))

(* ----------------------------------------------- Engine selection *)

let test_live_hybrid_engine () =
  let rules = [| "hello world"; "he(l|n)p"; "lo w" |] in
  let mk engine = Result.get_ok (Live.of_rules ~engine rules) in
  let li = mk "imfant" in
  let lh = mk "hybrid" in
  Alcotest.(check string) "engine name" "hybrid" (Live.engine lh);
  (match Live.of_rules ~engine:"warp" rules with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown engine accepted");
  let input = "say hello world and ask for help" in
  check
    Alcotest.(list (pair int int))
    "hybrid run = imfant run"
    (pair_events (Live.run li input))
    (pair_events (Live.run lh input));
  assert_anchor lh input;
  (* Updates keep the engine choice: the new generation's snapshot
     matches identically. *)
  ignore (Live.add_rule_exn lh "wor+ld");
  assert_anchor lh input;
  ignore (Live.remove_rule lh 0);
  assert_anchor lh input;
  (* Streaming through the hybrid-backed session. *)
  let s = Live.session lh in
  let fed = pair_events (feed_all s [ "say hello wo"; "rld and ask for help" ]) in
  let flushed = pair_events (Live.finish s) in
  check
    Alcotest.(list (pair int int))
    "hybrid streaming = whole-string run"
    (sorted (pair_events (Live.run lh input)))
    (sorted (fed @ flushed))

(* ------------------------------------------------- Property tests *)

(* Apply a random interleaving of adds and removes driven by [moves]:
   even draws add the next unused rule, odd draws remove a random live
   one (falling back to the other action when the pool/ruleset is
   exhausted). *)
let apply_ops lv pool moves =
  let pool = ref pool in
  List.iter
    (fun v ->
      let live = Live.rules lv in
      let add () =
        match !pool with
        | [] -> ()
        | p :: rest ->
            pool := rest;
            (* Generated rules always parse: ignore the id. *)
            ignore (Live.add_rule_exn lv p)
      in
      let remove () =
        match live with
        | [] -> add ()
        | _ ->
            let id, _ = List.nth live (v / 2 mod List.length live) in
            ignore (Live.remove_rule lv id)
      in
      if v mod 2 = 0 && !pool <> [] then add () else remove ())
    moves

let ops_gen =
  Gen.quad
    (Gen_re.ruleset ~max_rules:5 ())
    (Gen_re.ruleset ~max_rules:5 ())
    (Gen.list_size (Gen.int_range 1 8) (Gen.int_range 0 1000))
    Gen_re.input

let print_ops (initial, extra, moves, input) =
  Printf.sprintf "initial=%s extra=%s moves=[%s] input=%S"
    (String.concat ";" (List.map Gen_re.print_rule initial))
    (String.concat ";" (List.map Gen_re.print_rule extra))
    (String.concat ";" (List.map string_of_int moves))
    input

let patterns_of rules = List.map (fun r -> r.Ast.pattern) rules

(* The anchor invariant: any interleaving of adds and removes ends up
   matching exactly like a fresh compile of the survivors. *)
let prop_interleaving_equals_fresh_compile =
  QCheck2.Test.make ~count:60
    ~name:"ANCHOR: add/remove interleaving = fresh compile of survivors"
    ~print:print_ops ops_gen
    (fun (initial, extra, moves, input) ->
      let gc_threshold =
        match moves with v :: _ -> float_of_int (v mod 5) /. 4. | [] -> 0.25
      in
      let lv =
        Result.get_ok
          (Live.of_rules ~gc_threshold
             (Array.of_list (patterns_of initial)))
      in
      apply_ops lv (patterns_of extra) moves;
      sorted (reference (Live.rules lv) input)
      = sorted (pair_events (Live.run lv input)))

(* Chunked feeding across a generation boundary: an arbitrary split of
   the input fed after a reset behaves exactly like a one-shot run on
   the new generation. *)
let prop_chunked_feed_across_generations =
  QCheck2.Test.make ~count:60
    ~name:"feed of arbitrary splits across reset = one-shot run"
    ~print:print_ops ops_gen
    (fun (initial, extra, moves, input) ->
      let lv =
        Result.get_ok (Live.of_rules (Array.of_list (patterns_of initial)))
      in
      let s = Live.session lv in
      (* Stream on the opening generation, one-shot oracle on it too. *)
      let opening = pair_events (feed_all s [ input ]) in
      let opening_ok = sorted opening = sorted (pair_events (Live.run lv input)) in
      (* Mutate, then reset: the session must match the new generation
         exactly, however the input is split into chunks. *)
      apply_ops lv (patterns_of extra) moves;
      Live.reset s;
      let n = String.length input in
      let cuts =
        List.sort_uniq Int.compare
          (0 :: n :: List.map (fun v -> if n = 0 then 0 else v mod (n + 1)) moves)
      in
      let rec chunks = function
        | a :: (b :: _ as rest) -> String.sub input a (b - a) :: chunks rest
        | _ -> []
      in
      let streamed = pair_events (feed_all s (chunks cuts)) in
      opening_ok
      && sorted streamed = sorted (pair_events (Live.run lv input))
      && sorted streamed = sorted (reference (Live.rules lv) input))

let () =
  Alcotest.run "live"
    [
      ( "merge-into",
        [
          Alcotest.test_case "incremental = cascaded merge" `Quick
            test_merge_into_equals_cascade;
          Alcotest.test_case "rejections" `Quick test_merge_into_rejects;
        ] );
      ( "retire",
        [
          Alcotest.test_case "survivor projections preserved" `Quick
            test_retire_preserves_survivor_projections;
        ] );
      ( "builder",
        [
          Alcotest.test_case "retire + compact roundtrip" `Quick
            test_builder_retire_compact_roundtrip;
          Alcotest.test_case "dead structure is resurrected" `Quick
            test_builder_resurrects_dead_structure;
        ] );
      ( "live",
        [
          Alcotest.test_case "add and match" `Quick test_live_add_and_match;
          Alcotest.test_case "remove is immediate, ids stable" `Quick
            test_live_remove_is_immediate_and_ids_stable;
          Alcotest.test_case "remove last rule" `Quick test_live_remove_last_rule;
          Alcotest.test_case "bad rule rejected atomically" `Quick
            test_live_bad_rule_leaves_ruleset_untouched;
          Alcotest.test_case "gc threshold" `Quick test_live_gc_threshold;
          Alcotest.test_case "snapshots pin generations" `Quick
            test_live_snapshot_pins_generation;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "generation swap on reset" `Quick
            test_session_generation_swap;
          Alcotest.test_case "empty ruleset" `Quick test_session_on_empty_ruleset;
          Alcotest.test_case "hybrid engine selection" `Quick
            test_live_hybrid_engine;
        ] );
      ( "properties",
        [
          qtest prop_interleaving_equals_fresh_compile;
          qtest prop_chunked_feed_across_generations;
        ] );
    ]

(* End-to-end integration: every execution path must agree on
   realistic workloads — the six synthetic datasets (scaled down) with
   planted-fragment streams. This is the system-level counterpart of
   the per-module property tests: one mismatch anywhere in front-end,
   middle-end, merging, serialisation or engines shows up here. *)

module Datasets = Mfsa_datasets.Datasets
module Stream_gen = Mfsa_datasets.Stream_gen
module Pipeline = Mfsa_core.Pipeline
module Ruleset = Mfsa_core.Ruleset
module Merge = Mfsa_model.Merge
module Mfsa = Mfsa_model.Mfsa
module Im = Mfsa_engine.Imfant
module In = Mfsa_engine.Infant
module De = Mfsa_engine.Dfa_engine
module Dc = Mfsa_engine.Decomposed
module H = Mfsa_anml.Homogeneous
module Anml = Mfsa_anml.Anml

let check = Alcotest.check

let scale = 0.05
let stream_size = 8192

type ctx = {
  name : string;
  fsas : Mfsa_automata.Nfa.t array;
  rules : string array;
  stream : string;
}

let contexts =
  lazy
    (List.map
       (fun ds ->
         {
           name = ds.Datasets.abbr;
           fsas = Result.get_ok (Pipeline.build_fsas ds.Datasets.rules);
           rules = ds.Datasets.rules;
           stream =
             Stream_gen.generate ~seed:ds.Datasets.seed ~density:0.1
               ~payload:ds.Datasets.payload ~size:stream_size ds.Datasets.rules;
         })
       (Datasets.all ~scale ()))

(* Reference: per-rule iNFAnt counts. *)
let reference ctx =
  Array.map (fun a -> In.count (In.compile a) ctx.stream) ctx.fsas

let test_imfant_matches_baseline () =
  List.iter
    (fun ctx ->
      let expected = reference ctx in
      let z = Merge.merge ctx.fsas in
      let counts = Im.count_per_fsa (Im.compile z) ctx.stream in
      check Alcotest.(array int) (ctx.name ^ ": iMFAnt per-rule counts") expected
        counts;
      check Alcotest.bool (ctx.name ^ ": stream produces matches") true
        (Array.fold_left ( + ) 0 expected > 0))
    (Lazy.force contexts)

let test_grouped_merging_matches_baseline () =
  List.iter
    (fun ctx ->
      let expected = Array.fold_left ( + ) 0 (reference ctx) in
      List.iter
        (fun m ->
          let total =
            Merge.merge_groups ~m ctx.fsas
            |> List.fold_left (fun acc z -> acc + Im.count (Im.compile z) ctx.stream) 0
          in
          check Alcotest.int
            (Printf.sprintf "%s: total matches at M=%d" ctx.name m)
            expected total)
        [ 3; 7; 0 ])
    (Lazy.force contexts)

let test_anml_roundtrip_at_scale () =
  List.iter
    (fun ctx ->
      let zs = Merge.merge_groups ~m:5 ctx.fsas in
      match Anml.read (Anml.write zs) with
      | Error e -> Alcotest.failf "%s: %s" ctx.name e
      | Ok zs' ->
          List.iter2
            (fun z z' ->
              check Alcotest.int
                (ctx.name ^ ": reloaded counts")
                (Im.count (Im.compile z) ctx.stream)
                (Im.count (Im.compile z') ctx.stream))
            zs zs')
    (Lazy.force contexts)

let test_homogeneous_at_scale () =
  List.iter
    (fun ctx ->
      let z = Merge.merge ctx.fsas in
      check Alcotest.int
        (ctx.name ^ ": STE executor count")
        (Im.count (Im.compile z) ctx.stream)
        (H.count (H.of_mfsa z) ctx.stream))
    (Lazy.force contexts)

let test_dfa_engine_at_scale () =
  List.iter
    (fun ctx ->
      let expected = reference ctx in
      Array.iteri
        (fun j a ->
          check Alcotest.int
            (Printf.sprintf "%s rule %d: DFA count" ctx.name j)
            expected.(j)
            (De.count (De.compile a) ctx.stream))
        ctx.fsas)
    (Lazy.force contexts)

let test_decomposed_at_scale () =
  List.iter
    (fun ctx ->
      let expected = Array.fold_left ( + ) 0 (reference ctx) in
      check Alcotest.int
        (ctx.name ^ ": decomposed count")
        expected
        (Dc.count (Dc.compile ctx.fsas) ctx.stream))
    (Lazy.force contexts)

let test_ruleset_facade_at_scale () =
  List.iter
    (fun ctx ->
      let expected = reference ctx in
      List.iter
        (fun (label, rs) ->
          check
            Alcotest.(array int)
            (Printf.sprintf "%s: %s" ctx.name label)
            expected
            (Ruleset.count_per_rule rs ctx.stream))
        [
          ("facade m=0", Ruleset.compile_exn ~m:0 ctx.rules);
          ("facade m=4 clustered", Ruleset.compile_exn ~m:4 ~cluster:true ctx.rules);
          ("facade ccsplit", Ruleset.compile_exn ~ccsplit:true ctx.rules);
        ])
    (Lazy.force contexts)

let test_streaming_at_scale () =
  List.iter
    (fun ctx ->
      let z = Merge.merge ctx.fsas in
      let eng = Im.compile z in
      let expected = Im.count eng ctx.stream in
      let s = Im.session eng in
      let n = String.length ctx.stream in
      let fed = ref 0 in
      let chunk_size = 777 in
      let i = ref 0 in
      while !i < n do
        let len = min chunk_size (n - !i) in
        fed := !fed + List.length (Im.feed s (String.sub ctx.stream !i len));
        i := !i + len
      done;
      let flushed = List.length (Im.finish s) in
      check Alcotest.int (ctx.name ^ ": chunked count") expected (!fed + flushed))
    (Lazy.force contexts)

let () =
  Alcotest.run "integration"
    [
      ( "datasets-at-scale",
        [
          Alcotest.test_case "iMFAnt = per-rule baseline" `Quick
            test_imfant_matches_baseline;
          Alcotest.test_case "grouped merging" `Quick
            test_grouped_merging_matches_baseline;
          Alcotest.test_case "ANML roundtrip" `Quick test_anml_roundtrip_at_scale;
          Alcotest.test_case "homogeneous executor" `Quick test_homogeneous_at_scale;
          Alcotest.test_case "DFA engine" `Quick test_dfa_engine_at_scale;
          Alcotest.test_case "decomposed engine" `Quick test_decomposed_at_scale;
          Alcotest.test_case "ruleset facade" `Quick test_ruleset_facade_at_scale;
          Alcotest.test_case "streaming sessions" `Quick test_streaming_at_scale;
        ] );
    ]

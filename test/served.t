The serving daemon end to end over loopback: start on an ephemeral
port, submit batches, scrape metrics, drive a live admin update, and
drain gracefully on SHUTDOWN.

  $ cat > rules.txt <<'EOF'
  > abc
  > a.c
  > # a comment, skipped
  > q+
  > EOF

  $ mfsa-served run --rules rules.txt --port 0 --port-file port -q 2>daemon.err &
  > echo $! > daemon.pid

  $ for i in $(seq 1 100); do [ -s port ] && break; sleep 0.1; done

Liveness:

  $ mfsa-served ctl --port-file port ping
  pong

A batch; events carry stable rule ids (line order) and byte offsets:

  $ mfsa-served ctl --port-file port submit xxabcxx aXcq nomatch
  input 0: 2 matches
    rule 0 end 5
    rule 1 end 5
  input 1: 2 matches
    rule 1 end 3
    rule 2 end 4
  input 2: 1 matches
    rule 1 end 6

Prometheus exposition over the wire — the process gauges, the
daemon's own series and the pool's counters all in one scrape:

  $ mfsa-served ctl --port-file port metrics | grep -c '^mfsa_process_start_time_seconds'
  1
  $ mfsa-served ctl --port-file port metrics | grep '^mfsa_served_requests_total{op="submit"}'
  mfsa_served_requests_total{op="submit"} 1
  $ mfsa-served ctl --port-file port metrics | grep '^mfsa_serve_inputs_total'
  mfsa_serve_inputs_total{generation="0"} 3

Remote admin: add a rule, see it serve, list and remove it:

  $ mfsa-served ctl --port-file port add 'nomat.h'
  added rule 3 (gen 1)
  $ mfsa-served ctl --port-file port submit nomatch
  input 0: 2 matches
    rule 1 end 6
    rule 3 end 7
  $ mfsa-served ctl --port-file port rules
  gen 1: 4 rules
  rule 0  abc
  rule 1  a.c
  rule 2  q+
  rule 3  nomat.h
  $ mfsa-served ctl --port-file port remove 3
  removed (gen 2)
  $ mfsa-served ctl --port-file port remove 99
  mfsa-served ctl: unknown-rule: no live rule 99
  [1]

Graceful remote drain; the daemon exits 0:

  $ mfsa-served ctl --port-file port shutdown
  server draining
  $ wait $(cat daemon.pid)
  $ cat daemon.err

The hot-loop tuning flags: a daemon compiled with the prefilter off
and single-byte stepping serves the same matches:

  $ mfsa-served run --rules rules.txt --no-prefilter --stride 1 \
  >   --port 0 --port-file port2 -q 2>daemon2.err &
  > echo $! > daemon2.pid
  $ for i in $(seq 1 100); do [ -s port2 ] && break; sleep 0.1; done
  $ mfsa-served ctl --port-file port2 submit xxabcxx aXcq
  input 0: 2 matches
    rule 0 end 5
    rule 1 end 5
  input 1: 2 matches
    rule 1 end 3
    rule 2 end 4
  $ mfsa-served ctl --port-file port2 shutdown
  server draining
  $ wait $(cat daemon2.pid)
  $ cat daemon2.err

--sfa-domains wraps the daemon's engine as sfa{..}:<engine>, so each
input at or above --sfa-threshold is chunked across domains inside
one request; threshold 1 forces the parallel path even for these tiny
inputs, and the matches are identical:

  $ mfsa-served run --rules rules.txt --sfa-domains 2 --sfa-threshold 1 \
  >   --port 0 --port-file port3 -q 2>daemon3.err &
  > echo $! > daemon3.pid
  $ for i in $(seq 1 100); do [ -s port3 ] && break; sleep 0.1; done
  $ mfsa-served ctl --port-file port3 submit xxabcxx aXcq
  input 0: 2 matches
    rule 0 end 5
    rule 1 end 5
  input 1: 2 matches
    rule 1 end 3
    rule 2 end 4

The scrape carries the wrapper's split/join series:

  $ mfsa-served ctl --port-file port3 metrics | grep '^mfsa_sfa_domains' | sed 's/{.*}//' | sort -u
  mfsa_sfa_domains 2

  $ mfsa-served ctl --port-file port3 shutdown
  server draining
  $ wait $(cat daemon3.pid)
  $ cat daemon3.err

Bad values for the sfa flags are one-line usage errors, not crashes:

  $ mfsa-served run --rules rules.txt --sfa-domains 0 2>&1 | head -1
  mfsa-served: option '--sfa-domains': sfa domains must be in [1,64]

  $ mfsa-served run --rules rules.txt --sfa-threshold 0 2>&1 | head -1
  mfsa-served: option '--sfa-threshold': sfa threshold must be at least 1 byte

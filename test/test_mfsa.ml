(* Unit tests for the MFSA model and the merging algorithm, including
   the paper's worked examples (Figures 2, 3 and 6). *)

module Nfa = Mfsa_automata.Nfa
module Sim = Mfsa_automata.Simulate
module P = Mfsa_frontend.Parser
module C = Mfsa_charset.Charclass
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module Bitset = Mfsa_util.Bitset

let check = Alcotest.check

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let match_ends_of engine ~fsa input =
  List.filter_map
    (fun e -> if e.Im.fsa = fsa then Some e.Im.end_pos else None)
    (Im.run engine input)

(* ----------------------------------------------------- Mfsa model *)

let test_of_fsa () =
  let a = fsa_of "ab" in
  let z = Mfsa.of_fsa a in
  check Alcotest.int "one fsa" 1 z.Mfsa.n_fsas;
  check Alcotest.int "states copied" a.Nfa.n_states z.Mfsa.n_states;
  check Alcotest.int "transitions copied" (Nfa.n_transitions a) (Mfsa.n_transitions z);
  check Alcotest.bool "validates" true (Mfsa.validate z = Ok ());
  Array.iter
    (fun b -> check Alcotest.(list int) "belonging is {0}" [ 0 ] (Bitset.to_list b))
    z.Mfsa.bel

let test_of_fsa_rejects_eps () =
  let a = Mfsa_automata.Thompson.build_pattern "a|b" in
  Alcotest.check_raises "eps rejected"
    (Invalid_argument "Mfsa.of_fsa: automaton must be ε-free") (fun () ->
      ignore (Mfsa.of_fsa a))

let test_create_validates () =
  let mk ?(n_states = 2) ?(transitions = [ (0, C.singleton 'a', 1, [ 0 ]) ])
      ?(inits = [ (0, 0) ]) ?(finals = [ (0, 1) ]) () =
    Mfsa.create ~n_states ~n_fsas:1 ~transitions ~inits ~finals
      ~patterns:[| "a" |] ()
  in
  check Alcotest.bool "well-formed" true (Mfsa.validate (mk ()) = Ok ());
  Alcotest.check_raises "bad state"
    (Invalid_argument "Mfsa.create: destination state 5 out of range [0,2)")
    (fun () -> ignore (mk ~transitions:[ (0, C.singleton 'a', 5, [ 0 ]) ] ()));
  Alcotest.check_raises "empty class"
    (Invalid_argument "Mfsa.create: empty character class") (fun () ->
      ignore (mk ~transitions:[ (0, C.empty, 1, [ 0 ]) ] ()));
  Alcotest.check_raises "empty belonging"
    (Invalid_argument "Mfsa.create: empty belonging set") (fun () ->
      ignore (mk ~transitions:[ (0, C.singleton 'a', 1, []) ] ()));
  Alcotest.check_raises "missing initial"
    (Invalid_argument "Mfsa.create: FSA 0 has no initial state") (fun () ->
      ignore (mk ~inits:[] ()));
  Alcotest.check_raises "double initial"
    (Invalid_argument "Mfsa.create: FSA 0 has two initial states") (fun () ->
      ignore (mk ~inits:[ (0, 0); (0, 1) ] ()))

let test_compression_metric () =
  check (Alcotest.float 1e-9) "half" 50. (Mfsa.states_compression ~before:10 ~after:5);
  check (Alcotest.float 1e-9) "none" 0. (Mfsa.states_compression ~before:10 ~after:10);
  check (Alcotest.float 1e-9) "empty" 0. (Mfsa.states_compression ~before:0 ~after:0)

let test_pp_coo () =
  let z = Merge.merge [| fsa_of "ab"; fsa_of "ac" |] in
  let out = Format.asprintf "%a" Mfsa.pp_coo z in
  let lines = String.split_on_char '\n' (String.trim out) in
  check Alcotest.int "four table rows" 4 (List.length lines);
  List.iter2
    (fun label line ->
      check Alcotest.bool (label ^ " row present") true
        (String.length line > 4 && String.sub line 0 3 = label))
    [ "bel"; "row"; "col"; "idx" ]
    lines;
  (* The shared a-transition shows both belongings. *)
  check Alcotest.bool "shared belonging rendered" true
    (let rec contains i =
       i + 3 <= String.length out
       && (String.sub out i 3 = "0,1" || contains (i + 1))
     in
     contains 0)

let test_cc_stats () =
  let z = Mfsa.of_fsa (fsa_of "[ab]c") in
  check Alcotest.(pair int int) "one CC of length 2" (1, 2) (Mfsa.cc_stats z)

(* --------------------------------------------------------- Merging *)

let test_merge_identical () =
  (* Outcome (c) of §III-A: identical automata only update belongings. *)
  let a = fsa_of "abc" and b = fsa_of "abc" in
  let z = Merge.merge [| a; b |] in
  check Alcotest.int "no state growth" a.Nfa.n_states z.Mfsa.n_states;
  check Alcotest.int "no transition growth" (Nfa.n_transitions a) (Mfsa.n_transitions z);
  Array.iter
    (fun bel -> check Alcotest.(list int) "bel = {0,1}" [ 0; 1 ] (Bitset.to_list bel))
    z.Mfsa.bel

let test_merge_disjoint () =
  (* Outcome (a): nothing shared, the incoming FSA is copied intact. *)
  let a = fsa_of "abc" and b = fsa_of "xyz" in
  let z = Merge.merge [| a; b |] in
  check Alcotest.int "states add up" (a.Nfa.n_states + b.Nfa.n_states) z.Mfsa.n_states;
  check Alcotest.int "transitions add up"
    (Nfa.n_transitions a + Nfa.n_transitions b)
    (Mfsa.n_transitions z);
  Array.iter
    (fun bel -> check Alcotest.int "singleton belongings" 1 (Bitset.cardinal bel))
    z.Mfsa.bel

let test_merge_shared_prefix () =
  (* Outcome (b): the common prefix "ab" is stored once. *)
  let a = fsa_of "abc" and b = fsa_of "abd" in
  let z = Merge.merge [| a; b |] in
  check Alcotest.bool "fewer than the sum" true
    (z.Mfsa.n_states < a.Nfa.n_states + b.Nfa.n_states);
  let shared =
    Array.to_list z.Mfsa.bel |> List.filter (fun b -> Bitset.cardinal b = 2)
  in
  check Alcotest.int "two shared transitions" 2 (List.length shared)

let test_merge_stats () =
  let stats = ref { Merge.seeds = 0; chains = 0; merged_transitions = 0; merged_states = 0 } in
  let z = Merge.merge ~stats [| fsa_of "abc"; fsa_of "abd" |] in
  ignore z;
  check Alcotest.bool "found a seed" true (!stats.Merge.seeds >= 1);
  check Alcotest.int "two merged transitions" 2 !stats.Merge.merged_transitions;
  check Alcotest.bool "merged states counted" true (!stats.Merge.merged_states >= 3)

let test_merge_rejects () =
  Alcotest.check_raises "empty set" (Invalid_argument "Merge.merge: empty FSA set")
    (fun () -> ignore (Merge.merge [||]));
  Alcotest.check_raises "eps"
    (Invalid_argument "Merge.merge: automata must be ε-free") (fun () ->
      ignore (Merge.merge [| Mfsa_automata.Thompson.build_pattern "a|b" |]))

let test_merge_groups_partitioning () =
  let fsas = Array.init 7 (fun i -> fsa_of (String.make (i + 1) 'a')) in
  let groups = Merge.merge_groups ~m:3 fsas in
  check Alcotest.int "ceil(7/3) groups" 3 (List.length groups);
  check Alcotest.(list int) "group sizes" [ 3; 3; 1 ]
    (List.map (fun z -> z.Mfsa.n_fsas) groups);
  check Alcotest.int "m=0 means all" 1 (List.length (Merge.merge_groups ~m:0 fsas));
  check Alcotest.int "m>n means all" 1 (List.length (Merge.merge_groups ~m:100 fsas));
  check Alcotest.int "m=1 means none" 7 (List.length (Merge.merge_groups ~m:1 fsas));
  Alcotest.check_raises "negative m"
    (Invalid_argument "Merge.merge_groups: negative merging factor") (fun () ->
      ignore (Merge.merge_groups ~m:(-1) fsas));
  (* The edge cases must also assign the right rules to each group, in
     the original order. *)
  let pats = List.map (fun z -> Array.to_list z.Mfsa.patterns) in
  let all = List.init 7 (fun i -> String.make (i + 1) 'a') in
  check
    Alcotest.(list (list string))
    "m=0 packs everything into one MFSA, in order" [ all ]
    (pats (Merge.merge_groups ~m:0 fsas));
  check
    Alcotest.(list (list string))
    "m>n behaves exactly like m=0" [ all ]
    (pats (Merge.merge_groups ~m:100 fsas));
  check
    Alcotest.(list (list string))
    "m=1 keeps each rule alone, in order"
    (List.map (fun p -> [ p ]) all)
    (pats (Merge.merge_groups ~m:1 fsas));
  List.iter
    (fun z ->
      check Alcotest.bool "singleton groups are trivial MFSAs" true
        (z.Mfsa.n_fsas = 1 && Mfsa.validate z = Ok ()))
    (Merge.merge_groups ~m:1 fsas);
  Alcotest.check_raises "empty set"
    (Invalid_argument "Merge.merge_groups: empty FSA set") (fun () ->
      ignore (Merge.merge_groups ~m:3 [||]))

let test_merge_preserves_patterns_and_anchors () =
  let a = fsa_of "abc" in
  let anch =
    Mfsa_automata.Multiplicity.fuse
      (Mfsa_automata.Epsilon.remove
         (Mfsa_automata.Thompson.build (P.parse_exn "^abd$")))
  in
  let z = Merge.merge [| a; anch |] in
  check Alcotest.(array string) "patterns" [| "abc"; "^abd$" |] z.Mfsa.patterns;
  check Alcotest.(array bool) "anchored starts" [| false; true |] z.Mfsa.anchored_start;
  check Alcotest.(array bool) "anchored ends" [| false; true |] z.Mfsa.anchored_end

(* Projection must recover each input automaton up to isomorphism; we
   check language agreement on a battery of strings plus state count. *)
let assert_projection_faithful fsas z =
  Array.iteri
    (fun j a ->
      let p = Mfsa.project z j in
      check Alcotest.int
        (Printf.sprintf "fsa %d state count" j)
        a.Nfa.n_states p.Nfa.n_states;
      check Alcotest.int
        (Printf.sprintf "fsa %d transition count" j)
        (Nfa.n_transitions a) (Nfa.n_transitions p);
      List.iter
        (fun s ->
          check Alcotest.bool
            (Printf.sprintf "fsa %d lang on %S" j s)
            (Sim.accepts a s) (Sim.accepts p s))
        [ ""; "a"; "ab"; "abc"; "abd"; "xyz"; "abcd"; "ba"; "aabbcc" ])
    fsas

let test_project () =
  let fsas = [| fsa_of "abc"; fsa_of "abd"; fsa_of "xyz"; fsa_of "a(b|c)*" |] in
  let z = Merge.merge fsas in
  assert_projection_faithful fsas z;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mfsa.project: FSA id out of range") (fun () ->
      ignore (Mfsa.project z 4))

(* Incrementally extending a frozen MFSA must keep every projection
   faithful, exactly as the one-shot merge does. *)
let test_merge_into_projections () =
  let fsas = [| fsa_of "abc"; fsa_of "abd"; fsa_of "xyz"; fsa_of "a(b|c)*" |] in
  let z =
    Array.fold_left
      (fun z a ->
        match z with
        | None -> Some (Mfsa.of_fsa a)
        | Some z -> Some (Merge.merge_into z a z.Mfsa.n_fsas))
      None fsas
    |> Option.get
  in
  check Alcotest.bool "validates" true (Mfsa.validate z = Ok ());
  assert_projection_faithful fsas z

(* Retirement + compaction must leave the survivors' projections
   isomorphic to the original inputs (shifted down by one id). *)
let test_retire_projections () =
  let fsas = [| fsa_of "abc"; fsa_of "abd"; fsa_of "xyz"; fsa_of "a(b|c)*" |] in
  let z = Merge.merge fsas in
  let z' = Option.get (Mfsa.retire z 1) in
  check Alcotest.bool "validates after retire" true (Mfsa.validate z' = Ok ());
  assert_projection_faithful [| fsas.(0); fsas.(2); fsas.(3) |] z';
  (* The original automaton is untouched. *)
  assert_projection_faithful fsas z

(* ------------------------------------------- Paper worked examples *)

let test_paper_figure2 () =
  (* Fig. 2: a1 recognises a[gj](lm|cd), a2 recognises kja[gj]cd; the
     merged MFSA shares the a-[gj] prefix sub-path and the cd tail. *)
  let a1 = fsa_of "a[gj](lm|cd)" and a2 = fsa_of "kja[gj]cd" in
  let z = Merge.merge [| a1; a2 |] in
  check Alcotest.bool "compression happened" true
    (z.Mfsa.n_states < a1.Nfa.n_states + a2.Nfa.n_states);
  let eng = Im.compile z in
  (* Language 1 strings *)
  check Alcotest.(list int) "aglm matches a1" [ 4 ] (match_ends_of eng ~fsa:0 "aglm");
  check Alcotest.(list int) "ajcd matches a1" [ 4 ] (match_ends_of eng ~fsa:0 "ajcd");
  (* Language 2 strings *)
  check Alcotest.(list int) "kjagcd matches a2" [ 6 ] (match_ends_of eng ~fsa:1 "kjagcd");
  (* The cross-language string of §III-B must NOT match: *)
  check Alcotest.(list int) "kjaglm matches nothing for a2" []
    (match_ends_of eng ~fsa:1 "kjaglm");
  check Alcotest.int "kjaglm: a1 only matches nothing extra" 0
    (List.length (match_ends_of eng ~fsa:0 "kjag"))

let test_paper_figure3 () =
  (* Fig. 3: a1 = bcdegh, a2 = def. s1 = degh must yield no match
     (a2 dies at the g branch); s2 = bcdef must match a2 (via the
     shared de sub-path) and not a1. *)
  let a1 = fsa_of "bcdegh" and a2 = fsa_of "def" in
  let z = Merge.merge [| a1; a2 |] in
  let eng = Im.compile z in
  check Alcotest.int "degh: no matches at all" 0 (List.length (Im.run eng "degh"));
  check Alcotest.(list int) "bcdef matches a2 at 5" [ 5 ]
    (match_ends_of eng ~fsa:1 "bcdef");
  check Alcotest.(list int) "bcdef does not match a1" []
    (match_ends_of eng ~fsa:0 "bcdef");
  check Alcotest.(list int) "bcdegh matches a1 at 6" [ 6 ]
    (match_ends_of eng ~fsa:0 "bcdegh")

let test_paper_figure5a () =
  (* Fig. 5a: expanded loops maximise mergeable transitions. Merging
     "fgab" with "(fg)+ab" shares the whole f-g-a-b chain when the
     plus is expanded into fg(fg)*, and strictly less when the loop is
     kept compressed. *)
  let fsa_with ~expand_plus src =
    Mfsa_automata.Multiplicity.fuse
      (Mfsa_automata.Epsilon.remove
         (Mfsa_automata.Thompson.build
            (Mfsa_automata.Loops.expand_rule ~expand_plus (P.parse_exn src))))
  in
  let merged_transitions ~expand_plus =
    let stats =
      ref { Merge.seeds = 0; chains = 0; merged_transitions = 0; merged_states = 0 }
    in
    ignore
      (Merge.merge ~stats [| fsa_with ~expand_plus "fgab"; fsa_with ~expand_plus "(fg)+ab" |]);
    !stats.Merge.merged_transitions
  in
  let expanded = merged_transitions ~expand_plus:true in
  let compressed = merged_transitions ~expand_plus:false in
  check Alcotest.bool
    (Printf.sprintf "expanded (%d) shares more than compressed (%d)" expanded
       compressed)
    true (expanded > compressed);
  (* Language is identical either way. *)
  let eng ep = Im.compile (Merge.merge [| fsa_with ~expand_plus:ep "fgab"; fsa_with ~expand_plus:ep "(fg)+ab" |]) in
  List.iter
    (fun input ->
      check Alcotest.int
        (Printf.sprintf "same matches on %S" input)
        (List.length (Im.run (eng true) input))
        (List.length (Im.run (eng false) input)))
    [ "fgab"; "fgfgab"; "fgfgfgab"; "fab"; "gab" ]

let test_paper_figure6 () =
  (* Fig. 6 / §V: merging (ad|cb)ab and a(b|c); input acbab yields
     three matches: ac and ab for a2 (ends 2 and 5), cbab for a1
     (end 5). *)
  let a1 = fsa_of "(ad|cb)ab" and a2 = fsa_of "a(b|c)" in
  let z = Merge.merge [| a1; a2 |] in
  let eng = Im.compile z in
  check Alcotest.(list int) "a1 matches cbab" [ 5 ] (match_ends_of eng ~fsa:0 "acbab");
  check Alcotest.(list int) "a2 matches ac and ab" [ 2; 5 ]
    (match_ends_of eng ~fsa:1 "acbab");
  check Alcotest.int "exactly three events" 3 (List.length (Im.run eng "acbab"))

let test_paper_section3b_unwanted_language () =
  (* §III-B: without the activation function z1,2 of Fig. 2 would
     recognise s = kjaglm which belongs to neither language. With it,
     no FSA reports a match on that string. *)
  let a1 = fsa_of "a[gj](lm|cd)" and a2 = fsa_of "kja[gj]cd" in
  let z = Merge.merge [| a1; a2 |] in
  let eng = Im.compile z in
  let events = Im.run eng "kjaglm" in
  (* a1 legitimately matches the suffix aglm (unanchored matching!),
     ending at 6; a2 must not match. *)
  List.iter
    (fun e ->
      check Alcotest.int "only FSA 0 may match (unanchored suffix)" 0 e.Im.fsa)
    events

(* Merged matching must agree with per-FSA matching on handpicked
   regression rulesets (the property suite covers random ones). *)
let assert_equivalent rules inputs =
  let fsas = Array.of_list (List.map fsa_of rules) in
  let z = Merge.merge fsas in
  let eng = Im.compile z in
  List.iter
    (fun input ->
      Array.iteri
        (fun j a ->
          check
            Alcotest.(list int)
            (Printf.sprintf "%S on %S" a.Nfa.pattern input)
            (Sim.match_ends a input)
            (match_ends_of eng ~fsa:j input))
        fsas)
    inputs

let test_equivalence_regressions () =
  assert_equivalent [ "abc"; "abd"; "bcd" ] [ "abcd"; "abdbcd"; "aabbcc"; "" ];
  assert_equivalent [ "a*"; "a+b" ] [ "aaab"; "b"; "ab" ];
  assert_equivalent [ "[ab]c"; "ac|bc" ] [ "ac"; "bc"; "abacbc" ];
  assert_equivalent [ "ab"; "ba" ] [ "abab"; "baba" ];
  assert_equivalent [ "a{2,3}"; "aa" ] [ "aaaa"; "a" ];
  assert_equivalent [ "x(y|z)*"; "xy"; "xz" ] [ "xyzzy"; "xx" ]

let test_merge_prefix_strategy () =
  (* Prefix seeding shares strictly less than greedy, but matching is
     identical; activation sets are rule-intrinsic. *)
  let fsas () = [| fsa_of "xabc"; fsa_of "yabc"; fsa_of "xabd" |] in
  let greedy = Merge.merge ~strategy:Merge.Greedy (fsas ()) in
  let prefix = Merge.merge ~strategy:Merge.Prefix (fsas ()) in
  check Alcotest.bool "greedy compresses at least as much" true
    (greedy.Mfsa.n_states <= prefix.Mfsa.n_states);
  (* x-rules share the xab prefix under both; the y-rule's interior
     abc is only merged by greedy. *)
  check Alcotest.bool "prefix smaller than plain sum" true
    (prefix.Mfsa.n_states < 15);
  List.iter
    (fun input ->
      let run z =
        Im.run (Im.compile z) input
        |> List.map (fun e -> (e.Im.fsa, e.Im.end_pos))
        |> List.sort compare
      in
      check
        Alcotest.(list (pair int int))
        (Printf.sprintf "same matches on %S" input)
        (run greedy) (run prefix))
    [ "xabc"; "yabc"; "xabd"; "zabc"; "xab"; "xabcyabcxabd" ]

let test_merge_many_same_prefix () =
  (* A family of rules sharing one long prefix compresses to roughly
     prefix + per-rule tails. *)
  let rules = List.init 10 (fun i -> Printf.sprintf "longprefix%c" (Char.chr (97 + i))) in
  let fsas = Array.of_list (List.map fsa_of rules) in
  let z = Merge.merge fsas in
  let sum = Array.fold_left (fun acc a -> acc + a.Nfa.n_states) 0 fsas in
  check Alcotest.bool "compresses at least 3x" true (z.Mfsa.n_states * 3 < sum);
  assert_projection_faithful fsas z

let () =
  Alcotest.run "mfsa"
    [
      ( "model",
        [
          Alcotest.test_case "of_fsa" `Quick test_of_fsa;
          Alcotest.test_case "of_fsa rejects eps" `Quick test_of_fsa_rejects_eps;
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "compression metric" `Quick test_compression_metric;
          Alcotest.test_case "cc stats" `Quick test_cc_stats;
          Alcotest.test_case "Fig. 2 COO layout" `Quick test_pp_coo;
        ] );
      ( "merge",
        [
          Alcotest.test_case "identical automata" `Quick test_merge_identical;
          Alcotest.test_case "disjoint automata" `Quick test_merge_disjoint;
          Alcotest.test_case "shared prefix" `Quick test_merge_shared_prefix;
          Alcotest.test_case "stats" `Quick test_merge_stats;
          Alcotest.test_case "rejects bad input" `Quick test_merge_rejects;
          Alcotest.test_case "merge_groups partitioning" `Quick test_merge_groups_partitioning;
          Alcotest.test_case "patterns and anchors" `Quick test_merge_preserves_patterns_and_anchors;
          Alcotest.test_case "projection" `Quick test_project;
          Alcotest.test_case "incremental merge projections" `Quick
            test_merge_into_projections;
          Alcotest.test_case "retirement projections" `Quick
            test_retire_projections;
          Alcotest.test_case "many shared prefixes" `Quick test_merge_many_same_prefix;
          Alcotest.test_case "prefix strategy" `Quick test_merge_prefix_strategy;
        ] );
      ( "paper-examples",
        [
          Alcotest.test_case "figure 2" `Quick test_paper_figure2;
          Alcotest.test_case "figure 3" `Quick test_paper_figure3;
          Alcotest.test_case "figure 5a" `Quick test_paper_figure5a;
          Alcotest.test_case "figure 6" `Quick test_paper_figure6;
          Alcotest.test_case "§III-B unwanted language" `Quick
            test_paper_section3b_unwanted_language;
          Alcotest.test_case "equivalence regressions" `Quick test_equivalence_regressions;
        ] );
    ]

(* Tests for the first-class engine API: registry surface, cross-engine
   agreement through Engine_sig, stats, and the streaming contract —
   including the buffered re-scan sessions of the per-rule engines. *)

module P = Mfsa_frontend.Parser
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Tables = Mfsa_engine.Tables
module Gen = QCheck2.Gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let merge_rules rules = Merge.merge (Array.of_list (List.map fsa_of rules))

(* Within-position event order is engine-specific; compare sorted. *)
let events l =
  List.sort compare
    (List.map (fun e -> (e.Engine_sig.fsa, e.Engine_sig.end_pos)) l)

let builtins = [ "imfant"; "hybrid"; "infant"; "dfa"; "decomposed"; "auto" ]

let contains haystack needle =
  let len = String.length needle in
  let rec scan i =
    i + len <= String.length haystack
    && (String.sub haystack i len = needle || scan (i + 1))
  in
  scan 0

(* ------------------------------------------------- Registry surface *)

let test_names () =
  let names = Registry.names () in
  List.iter
    (fun n ->
      if not (List.mem n names) then
        Alcotest.failf "built-in %S missing from Registry.names" n)
    builtins;
  check Alcotest.(list string) "sorted" (List.sort compare names) names;
  List.iter
    (fun n ->
      (match Registry.find n with
      | Some (module E : Engine_sig.S) ->
          check Alcotest.string "find name matches" n E.name
      | None -> Alcotest.failf "find %S = None" n);
      match Registry.doc n with
      | Some d -> check Alcotest.bool "doc non-empty" true (d <> "")
      | None -> Alcotest.failf "doc %S = None" n)
    names

let test_unknown () =
  check Alcotest.bool "find" true (Option.is_none (Registry.find "warp"));
  (match Registry.find_exn "warp" with
  | exception Invalid_argument msg ->
      check Alcotest.bool "message names the engine" true (contains msg "warp")
  | _ -> Alcotest.fail "find_exn accepted an unknown name");
  (match Registry.compile_automaton "warp" (merge_rules [ "a" ]) with
  | Error msg ->
      check Alcotest.string "shared message" (Registry.unknown_message "warp")
        msg
  | Ok _ -> Alcotest.fail "compile accepted an unknown name")

let test_help_lists_all () =
  let help = Registry.help () in
  List.iter
    (fun n -> if not (contains help n) then Alcotest.failf "help misses %S" n)
    (Registry.names ())

(* A test-only engine that never matches: registering it makes it
   selectable everywhere (latest wins on re-registration). *)
module Null_engine : Engine_sig.S = struct
  let name = "test-null"
  let doc = "test-only engine that never matches"

  type compiled = Mfsa.t

  let compile z = z
  let of_tables = Some (fun (tb : Tables.t) -> tb.Tables.z)
  let to_tables _ = None
  let mfsa z = z
  let run _ _ = []
  let count _ _ = 0
  let count_per_fsa (z : Mfsa.t) _ = Array.make z.Mfsa.n_fsas 0
  let stats _ =
    [
      Mfsa_obs.Snapshot.counter_i
        ~labels:[ ("engine", name) ]
        "mfsa_engine_matches_total" 0;
    ]

  let reset_stats _ = ()

  let reset_counters _ = ()

  type session = { mutable pos : int }

  let session _ = { pos = 0 }

  let feed s chunk =
    s.pos <- s.pos + String.length chunk;
    []

  let finish _ = []
  let reset s = s.pos <- 0
  let position s = s.pos
end

let test_register_custom () =
  Registry.register (module Null_engine);
  let z = merge_rules [ "ab"; "a" ] in
  let eng = Registry.compile_automaton_exn "test-null" z in
  check Alcotest.string "packed name" "test-null" (Engine_sig.name eng);
  check Alcotest.int "no matches" 0 (Engine_sig.count eng "abab");
  let s = Engine_sig.session eng in
  ignore (Engine_sig.feed s "abab");
  check Alcotest.int "position" 4 (Engine_sig.position s);
  check Alcotest.bool "listed" true (List.mem "test-null" (Registry.names ()))

(* ------------------------------------------------ Faulty wrapper *)

module Faulty = Mfsa_engine.Faulty

let test_faulty_resolution () =
  (* The wrapper grammar resolves through find/compile but stays out
     of the plain name table. *)
  (match Registry.find "faulty:imfant" with
  | Some (module E : Engine_sig.S) ->
      check Alcotest.string "wrapper keeps the full spec as its name"
        "faulty:imfant" E.name
  | None -> Alcotest.fail "faulty:imfant did not resolve");
  check Alcotest.bool "wrappers not listed" false
    (List.exists
       (fun n -> contains n "faulty")
       (Registry.names ()));
  check Alcotest.string "underlying strips one wrapper" "imfant"
    (Registry.underlying "faulty{seed=3}:imfant");
  check Alcotest.string "underlying strips nested wrappers" "hybrid"
    (Registry.underlying "faulty:faulty{seed=1}:hybrid");
  check Alcotest.string "underlying is identity elsewhere" "dfa"
    (Registry.underlying "dfa");
  (* Nested wrappers compile. *)
  (match Registry.find "faulty{seed=1}:faulty:imfant" with
  | Some _ -> ()
  | None -> Alcotest.fail "nested faulty wrapper did not resolve");
  check Alcotest.bool "help mentions the wrapper grammar" true
    (contains (Registry.help ()) "faulty")

let test_faulty_malformed () =
  let z = merge_rules [ "a" ] in
  List.iter
    (fun (spec, fragment) ->
      match Registry.compile_automaton spec z with
      | Ok _ -> Alcotest.failf "malformed spec %S accepted" spec
      | Error msg ->
          if not (contains msg fragment) then
            Alcotest.failf "error for %S lacks %S: %s" spec fragment msg)
    [
      ("faulty:", "missing inner engine");
      ("faulty{seed=1:imfant", "unterminated");
      ("faulty{seed=one}:imfant", "seed");
      ("faulty{fail=2.0}:imfant", "probability");
      ("faulty{fail_every=-1}:imfant", "non-negative");
      ("faulty{warp=1}:imfant", "unknown parameter");
      ("faulty{seed=1}imfant", "':<engine>'");
      ("faulty:warp", "unknown engine");
    ]

let test_faulty_deterministic_schedule () =
  let z = merge_rules [ "ab" ] in
  let run_schedule () =
    let eng = Registry.compile_automaton_exn "faulty{seed=9,fail_every=3}:imfant" z in
    List.init 12 (fun _ ->
        match Engine_sig.run eng "xabx" with
        | _ -> `Ok
        | exception Faulty.Transient_fault _ -> `Fault)
  in
  let first = run_schedule () in
  check Alcotest.int "every 3rd attempt faults" 4
    (List.length (List.filter (( = ) `Fault) first));
  check Alcotest.bool "same seed, same schedule" true (first = run_schedule ());
  (* Successful attempts behave exactly like the inner engine. *)
  let eng = Registry.compile_automaton_exn "faulty{seed=9,fail_every=2}:imfant" z in
  let reference = events (Engine_sig.run (Registry.compile_automaton_exn "imfant" z) "xabx") in
  check
    Alcotest.(list (pair int int))
    "clean attempt = inner engine" reference
    (events (Engine_sig.run eng "xabx"))

let test_faulty_poison_sticky () =
  let z = merge_rules [ "ab" ] in
  let eng = Registry.compile_automaton_exn "faulty{fail_every=0,poison_every=2}:imfant" z in
  ignore (Engine_sig.run eng "xabx");
  (match Engine_sig.run eng "xabx" with
  | _ -> Alcotest.fail "attempt 2 should poison"
  | exception Faulty.Replica_poisoned _ -> ());
  (* Sticky: every later call fails without advancing the schedule. *)
  (match Engine_sig.run eng "xabx" with
  | _ -> Alcotest.fail "poisoned replica answered"
  | exception Faulty.Replica_poisoned _ -> ());
  let module S = Mfsa_obs.Snapshot in
  let poisoned () =
    S.number
      ~labels:[ ("engine", "faulty{fail_every=0,poison_every=2}:imfant") ]
      (Engine_sig.stats eng) "mfsa_engine_fault_poisoned"
  in
  check Alcotest.(option (float 0.)) "poisoned gauge up" (Some 1.) (poisoned ());
  (* reset_stats restores a fresh replica and replays the schedule —
     the metric-reproducibility contract. *)
  Engine_sig.reset_stats eng;
  check Alcotest.(option (float 0.)) "reset clears poison" (Some 0.)
    (poisoned ());
  (match Engine_sig.run eng "xabx" with
  | _ -> ()
  | exception e ->
      Alcotest.failf "attempt 1 after reset faulted: %s" (Printexc.to_string e))

(* --------------------------------------------- Cross-engine agreement *)

let rules =
  [ "hello world"; "he(l|n)p"; "lo w"; "a(b|c)*d"; "^start"; "end$"; "[0-9]{2}" ]

let inputs =
  [
    "";
    "say hello world and ask for help";
    "start abd acd 42 end";
    "abcbcd12ab";
    "startend";
    "no matches here!";
  ]

let test_all_engines_agree () =
  let z = merge_rules rules in
  let reference = Registry.compile_automaton_exn "imfant" z in
  List.iter
    (fun name ->
      let eng = Registry.compile_automaton_exn name z in
      check Alcotest.string "packed name" name (Engine_sig.name eng);
      List.iter
        (fun input ->
          let expected = events (Engine_sig.run reference input) in
          let got = events (Engine_sig.run eng input) in
          check
            Alcotest.(list (pair int int))
            (Printf.sprintf "%s run on %S" name input)
            expected got;
          check Alcotest.int
            (Printf.sprintf "%s count on %S" name input)
            (List.length expected)
            (Engine_sig.count eng input);
          check
            Alcotest.(array int)
            (Printf.sprintf "%s count_per_fsa on %S" name input)
            (Engine_sig.count_per_fsa reference input)
            (Engine_sig.count_per_fsa eng input))
        inputs)
    builtins

let test_stats_nonempty () =
  let module S = Mfsa_obs.Snapshot in
  let z = merge_rules rules in
  List.iter
    (fun name ->
      let eng = Registry.compile_automaton_exn name z in
      ignore (Engine_sig.run eng "say hello world 42");
      let stats = Engine_sig.stats eng in
      if stats = [] then Alcotest.failf "%s reports no stats" name;
      List.iter
        (fun s ->
          if s.S.name = "" then Alcotest.failf "%s reports an unnamed sample" name;
          if not (String.length s.S.name > 12 && String.sub s.S.name 0 12 = "mfsa_engine_")
          then
            Alcotest.failf "%s sample %s outside the mfsa_engine_ namespace"
              name s.S.name;
          match List.assoc_opt "engine" s.S.labels with
          | Some e when e = name -> ()
          | _ -> Alcotest.failf "%s sample %s lacks engine label" name s.S.name)
        stats;
      Engine_sig.reset_stats eng)
    builtins

(* ------------------------------------------------------- Streaming *)

(* Feeding chunk splits of [input] then finishing must reproduce the
   whole-string run — for the native sessions (imfant, hybrid) and the
   buffered re-scan sessions (infant, dfa, decomposed) alike. The
   ruleset includes an end-anchored FSA, whose events must only appear
   at finish. *)
let splits input =
  let n = String.length input in
  [
    [ input ];
    [ String.sub input 0 (n / 2); String.sub input (n / 2) (n - (n / 2)) ];
    List.init n (fun i -> String.sub input i 1);
  ]

let test_streaming_equivalence () =
  let z = merge_rules rules in
  let anchored_end = z.Mfsa.anchored_end in
  List.iter
    (fun name ->
      let eng = Registry.compile_automaton_exn name z in
      List.iter
        (fun input ->
          let expected = events (Engine_sig.run eng input) in
          List.iter
            (fun chunks ->
              let s = Engine_sig.session eng in
              let fed =
                List.concat_map
                  (fun chunk ->
                    let evs = Engine_sig.feed s chunk in
                    List.iter
                      (fun e ->
                        if anchored_end.(e.Engine_sig.fsa) then
                          Alcotest.failf
                            "%s reported end-anchored FSA %d before finish"
                            name e.Engine_sig.fsa)
                      evs;
                    evs)
                  chunks
              in
              let flushed = Engine_sig.finish s in
              check Alcotest.int
                (Printf.sprintf "%s position after %d chunks" name
                   (List.length chunks))
                (String.length input) (Engine_sig.position s);
              check
                Alcotest.(list (pair int int))
                (Printf.sprintf "%s streaming %S in %d chunks" name input
                   (List.length chunks))
                expected
                (events (fed @ flushed));
              (* The session survives reset and replays identically. *)
              Engine_sig.reset s;
              check Alcotest.int "position after reset" 0
                (Engine_sig.position s);
              let refed = Engine_sig.feed s input in
              let again = events (refed @ Engine_sig.finish s) in
              check
                Alcotest.(list (pair int int))
                (Printf.sprintf "%s replay after reset" name)
                expected again)
            (splits input))
        [ "say hello world and ask for help"; "start abd 42 end" ])
    builtins

(* ------------------------------------------------- Property: agreement *)

let fsa_of_rule rule =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule rule))))

let prop_engines_agree =
  QCheck2.Test.make ~count:40
    ~name:"registry: every engine matches the imfant reference"
    ~print:Gen_re.print_ruleset_input
    (Gen.pair (Gen_re.ruleset ()) Gen_re.input)
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let reference =
        events (Engine_sig.run (Registry.compile_automaton_exn "imfant" z) input)
      in
      List.for_all
        (fun name ->
          events (Engine_sig.run (Registry.compile_automaton_exn name z) input)
          = reference)
        builtins)

let () =
  Alcotest.run "registry"
    [
      ( "surface",
        [
          Alcotest.test_case "built-ins registered" `Quick test_names;
          Alcotest.test_case "unknown names" `Quick test_unknown;
          Alcotest.test_case "help lists every engine" `Quick
            test_help_lists_all;
          Alcotest.test_case "custom engine registration" `Quick
            test_register_custom;
        ] );
      ( "faulty",
        [
          Alcotest.test_case "wrapper resolution" `Quick test_faulty_resolution;
          Alcotest.test_case "malformed specs" `Quick test_faulty_malformed;
          Alcotest.test_case "deterministic schedule" `Quick
            test_faulty_deterministic_schedule;
          Alcotest.test_case "poison is sticky until reset" `Quick
            test_faulty_poison_sticky;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "all engines agree" `Quick test_all_engines_agree;
          Alcotest.test_case "stats non-empty" `Quick test_stats_nonempty;
          qtest prop_engines_agree;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "chunked = whole-string" `Quick
            test_streaming_equivalence;
        ] );
    ]

(* Unit tests for the compilation pipeline (Fig. 4) and the report
   helpers. *)

module Pl = Mfsa_core.Pipeline
module R = Mfsa_core.Report
module Mfsa = Mfsa_model.Mfsa
module Nfa = Mfsa_automata.Nfa
module Anml = Mfsa_anml.Anml
module Im = Mfsa_engine.Imfant

let check = Alcotest.check

let rules = [| "abc"; "abd"; "x[yz]+"; "k{2,3}w" |]

let test_compile_succeeds () =
  let c = Pl.compile_exn ~m:0 rules in
  check Alcotest.int "rules parsed" 4 (Array.length c.Pl.rules);
  check Alcotest.int "fsas built" 4 (Array.length c.Pl.fsas);
  check Alcotest.int "one mfsa at m=0" 1 (List.length c.Pl.mfsas);
  Array.iter
    (fun a -> check Alcotest.bool "eps-free" true (Nfa.is_eps_free a))
    c.Pl.fsas;
  List.iter
    (fun z -> check Alcotest.bool "valid mfsa" true (Mfsa.validate z = Ok ()))
    c.Pl.mfsas;
  check Alcotest.bool "anml generated" true (String.length c.Pl.anml > 0)

let test_compile_merging_factor () =
  let c = Pl.compile_exn ~m:2 rules in
  check Alcotest.int "two mfsas at m=2" 2 (List.length c.Pl.mfsas);
  let c = Pl.compile_exn ~m:1 rules in
  check Alcotest.int "four mfsas at m=1" 4 (List.length c.Pl.mfsas)

let test_compile_times_recorded () =
  let c = Pl.compile_exn rules in
  let t = c.Pl.times in
  List.iter
    (fun (name, v) -> check Alcotest.bool (name ^ " >= 0") true (v >= 0.))
    [
      ("frontend", t.Pl.frontend); ("conversion", t.Pl.conversion);
      ("optimization", t.Pl.optimization); ("merging", t.Pl.merging);
      ("backend", t.Pl.backend);
    ];
  check Alcotest.bool "total is the sum" true
    (abs_float
       (Pl.total t
       -. (t.Pl.frontend +. t.Pl.conversion +. t.Pl.optimization +. t.Pl.merging
          +. t.Pl.backend))
    < 1e-12)

let test_compile_error_reporting () =
  match Pl.compile [| "ok"; "(broken" |] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e ->
      check Alcotest.int "index" 1 e.Pl.rule_index;
      check Alcotest.string "pattern" "(broken" e.Pl.pattern;
      check Alcotest.bool "message mentions paren" true
        (e.Pl.message <> "");
      check Alcotest.bool "to_string works" true
        (String.length (Pl.error_to_string e) > 0)

let test_compile_empty_ruleset () =
  match Pl.compile [||] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e -> check Alcotest.string "message" "empty ruleset" e.Pl.message

let test_compile_exn_raises () =
  Alcotest.check_raises "typed compile error"
    (Pl.Compile_error
       { rule_index = 0; pattern = "("; message = "at offset 0: unmatched '('" })
    (fun () -> ignore (Pl.compile_exn [| "(" |]));
  (* The registered printer renders the error for uncaught contexts. *)
  match Pl.compile_exn [| "(" |] with
  | exception Pl.Compile_error e ->
      check Alcotest.string "printer"
        "Mfsa_core.Pipeline.Compile_error: rule 0 ((): at offset 0: unmatched \
         '('"
        (Printexc.to_string (Pl.Compile_error e))
  | _ -> Alcotest.fail "expected Compile_error"

let test_anml_output_loads_and_runs () =
  let c = Pl.compile_exn ~m:2 rules in
  match Anml.read c.Pl.anml with
  | Error e -> Alcotest.failf "generated ANML unreadable: %s" e
  | Ok zs ->
      check Alcotest.int "same group count" (List.length c.Pl.mfsas) (List.length zs);
      let input = "abcabdxyzkkw" in
      List.iter2
        (fun z z' ->
          check Alcotest.int "same matches"
            (Im.count (Im.compile z) input)
            (Im.count (Im.compile z') input))
        c.Pl.mfsas zs

let test_build_fsa () =
  (match Pl.build_fsa "a(b|c)" with
  | Ok a -> check Alcotest.bool "eps free" true (Nfa.is_eps_free a)
  | Error _ -> Alcotest.fail "expected success");
  match Pl.build_fsa "+bad" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e -> check Alcotest.int "index 0" 0 e.Pl.rule_index

let test_merge_stats_populated () =
  let c = Pl.compile_exn ~m:0 [| "abc"; "abd"; "abe" |] in
  check Alcotest.bool "merged transitions counted" true
    (c.Pl.merge_stats.Mfsa_model.Merge.merged_transitions >= 4)

(* ---------------------------------------------------------- Report *)

let test_totals_and_compression () =
  let c = Pl.compile_exn ~m:0 [| "abc"; "abd" |] in
  let before = R.fsa_totals c.Pl.fsas in
  let after = R.mfsa_totals c.Pl.mfsas in
  check Alcotest.int "fsa states" 8 before.R.states;
  check Alcotest.bool "mfsa smaller" true (after.R.states < before.R.states);
  let cs, ct = R.compression ~before ~after in
  check Alcotest.bool "state compression positive" true (cs > 0.);
  check Alcotest.bool "transition compression positive" true (ct > 0.);
  let z, zt = R.compression ~before:{ R.states = 0; transitions = 0 }
      ~after:{ R.states = 0; transitions = 0 } in
  check (Alcotest.float 1e-9) "zero safe states" 0. z;
  check (Alcotest.float 1e-9) "zero safe transitions" 0. zt

let test_throughput () =
  check (Alcotest.float 1e-9) "eq 11" 2_000_000.
    (R.throughput ~n_mfsa:1 ~m:2 ~data_size:1_000_000 ~exe_time:1.);
  check (Alcotest.float 1e-9) "zero time" 0.
    (R.throughput ~n_mfsa:1 ~m:1 ~data_size:100 ~exe_time:0.)

let test_geomean () =
  check (Alcotest.float 1e-9) "pair" 2. (R.geomean [ 1.; 4. ]);
  check (Alcotest.float 1e-9) "identity" 3. (R.geomean [ 3. ]);
  check (Alcotest.float 1e-9) "empty" 0. (R.geomean []);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Report.geomean: non-positive entry") (fun () ->
      ignore (R.geomean [ 1.; 0. ]))

let test_table_rendering () =
  let t = R.table ~header:[ "a"; "bb" ] [ [ "ccc"; "d" ]; [ "e" ] ] in
  let lines = String.split_on_char '\n' (String.trim t) in
  check Alcotest.int "four lines" 4 (List.length lines);
  check Alcotest.string "header" "a    bb" (List.nth lines 0);
  check Alcotest.string "separator" "---  --" (List.nth lines 1);
  check Alcotest.string "row" "ccc  d" (List.nth lines 2);
  check Alcotest.string "short row" "e" (List.nth lines 3)

let test_formatters () =
  check Alcotest.string "ns" "500 ns" (R.fmt_time 5e-7);
  check Alcotest.string "us" "12.00 us" (R.fmt_time 1.2e-5);
  check Alcotest.string "ms" "3.40 ms" (R.fmt_time 3.4e-3);
  check Alcotest.string "s" "2.50 s" (R.fmt_time 2.5);
  check Alcotest.string "float" "3.14" (R.fmt_float 3.14159)

let () =
  Alcotest.run "pipeline"
    [
      ( "pipeline",
        [
          Alcotest.test_case "compile succeeds" `Quick test_compile_succeeds;
          Alcotest.test_case "merging factor" `Quick test_compile_merging_factor;
          Alcotest.test_case "stage times" `Quick test_compile_times_recorded;
          Alcotest.test_case "error reporting" `Quick test_compile_error_reporting;
          Alcotest.test_case "empty ruleset" `Quick test_compile_empty_ruleset;
          Alcotest.test_case "compile_exn raises" `Quick test_compile_exn_raises;
          Alcotest.test_case "ANML loads and runs" `Quick test_anml_output_loads_and_runs;
          Alcotest.test_case "build_fsa" `Quick test_build_fsa;
          Alcotest.test_case "merge stats" `Quick test_merge_stats_populated;
        ] );
      ( "report",
        [
          Alcotest.test_case "totals and compression" `Quick test_totals_and_compression;
          Alcotest.test_case "throughput" `Quick test_throughput;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
    ]

Deterministic evaluation artefacts pin the dataset generators and the
merging algorithm: any change to either shows up as a diff here.

  $ mfsa-report fig1
  == Fig. 1: average normalised INDEL similarity per dataset ==
  Dataset  Similarity [0,1]
  -------  ----------------
  BRO      0.263
  DS9      0.277
  PEN      0.209
  PRO      0.395
  RG1      0.431
  TCP      0.229
  

The Table I shape (rule counts at the default scale 0.2):

  $ mfsa-report table1 | grep -oE "(BRO|DS9|PEN|PRO|RG1|TCP) +[0-9]+" | tr -s ' '
  BRO 44
  DS9 60
  PEN 60
  PRO 60
  RG1 60
  TCP 60

Compression at M=all is deterministic:

  $ mfsa-report fig7 | grep "^Average"
  Average at M=all: 91.98% states, 62.12% transitions (paper: 71.95% / 38.88%)

(** QCheck generators shared by the property-test suites.

    Regular expressions are generated as ASTs over the tiny alphabet
    [{a, b, c}] (plus a couple of classes) so that random rules collide
    often — collisions are what exercise the merging algorithm and the
    activation function. Inputs are random strings over the same
    alphabet, again to make matches likely. *)

val ast : Mfsa_frontend.Ast.t QCheck2.Gen.t
(** Random AST, size-bounded; quantifier bounds kept small so loop
    expansion stays cheap. *)

val rule : Mfsa_frontend.Ast.rule QCheck2.Gen.t
(** Random rule: an [ast] rendered to its pattern text, with random
    boundary anchors. *)

val ruleset : ?max_rules:int -> unit -> Mfsa_frontend.Ast.rule list QCheck2.Gen.t
(** 2 to [max_rules] (default 8) random rules. *)

val input : string QCheck2.Gen.t
(** Random input over [{a, b, c}], length ≤ 40. *)

val wide_rule : Mfsa_frontend.Ast.rule QCheck2.Gen.t
(** Like {!rule} but over classes spanning the full byte range,
    exercising the 256-symbol tables and binary-byte handling. *)

val wide_input : string QCheck2.Gen.t
(** Random input over all 256 byte values, length ≤ 40. *)

val print_rule : Mfsa_frontend.Ast.rule -> string

val print_ruleset_input :
  Mfsa_frontend.Ast.rule list * string -> string

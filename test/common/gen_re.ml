module Ast = Mfsa_frontend.Ast
module Charclass = Mfsa_charset.Charclass
module Gen = QCheck2.Gen

let ( >>= ) = Gen.( >>= )

let clazz =
  Gen.oneofl
    [
      Charclass.of_string "ab";
      Charclass.of_string "bc";
      Charclass.of_string "abc";
      Charclass.range 'a' 'c';
    ]

let ast =
  (* Cap the tree size: nested bounded quantifiers multiply during
     loop expansion, and ε-removal is quadratic in the automaton, so
     unbounded QCheck sizes produce pathological cases that test
     nothing new but dominate the suite's runtime. *)
  Gen.sized @@ fun n ->
  (Gen.fix (fun self n ->
      let leaf =
        Gen.oneof
          [
            Gen.map (fun c -> Ast.Char c) (Gen.oneofl [ 'a'; 'b'; 'c' ]);
            Gen.map (fun cls -> Ast.Class cls) clazz;
            Gen.return Ast.Empty;
          ]
      in
      if n <= 1 then leaf
      else
        let sub = self (n / 2) in
        Gen.oneof
          [
            leaf;
            Gen.map2 (fun a b -> Ast.Concat (a, b)) sub sub;
            Gen.map2 (fun a b -> Ast.Alt (a, b)) sub sub;
            Gen.map (fun a -> Ast.Star a) sub;
            Gen.map (fun a -> Ast.Plus a) sub;
            Gen.map (fun a -> Ast.Opt a) sub;
            Gen.map2
              (fun a (m, extra) -> Ast.Repeat (a, m, Some (m + extra)))
              sub
              (Gen.pair (Gen.int_range 0 2) (Gen.int_range 0 2));
            Gen.map2
              (fun a m -> Ast.Repeat (a, m, None))
              sub (Gen.int_range 0 2);
          ]))
    (min n 14)

let rule =
  Gen.map3
    (fun ast anchored_start anchored_end ->
      {
        Ast.pattern = Ast.to_string ast;
        ast;
        anchored_start;
        anchored_end;
      })
    ast
    (Gen.frequency [ (4, Gen.return false); (1, Gen.return true) ])
    (Gen.frequency [ (4, Gen.return false); (1, Gen.return true) ])

let ruleset ?(max_rules = 8) () =
  Gen.int_range 2 max_rules >>= fun n -> Gen.list_size (Gen.return n) rule

let input =
  Gen.int_range 0 40 >>= fun n ->
  Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'b'; 'c' ]) (Gen.return n)

let wide_clazz =
  Gen.oneofl
    [
      Charclass.singleton '\x00';
      Charclass.singleton '\xff';
      Charclass.range '\x00' '\x1f';
      Charclass.range '\x80' '\xff';
      Charclass.of_string "a\x00\xff";
      Charclass.dot;
    ]

let wide_ast =
  Gen.sized @@ fun n ->
  (Gen.fix (fun self n ->
       let leaf =
         Gen.oneof
           [
             Gen.map (fun c -> Ast.Char c) (Gen.map Char.chr (Gen.int_range 0 255));
             Gen.map (fun cls -> Ast.Class cls) wide_clazz;
           ]
       in
       if n <= 1 then leaf
       else
         let sub = self (n / 2) in
         Gen.oneof
           [
             leaf;
             Gen.map2 (fun a b -> Ast.Concat (a, b)) sub sub;
             Gen.map2 (fun a b -> Ast.Alt (a, b)) sub sub;
             Gen.map (fun a -> Ast.Star a) sub;
             Gen.map (fun a -> Ast.Opt a) sub;
           ]))
    (min n 10)

let wide_rule =
  Gen.map
    (fun ast ->
      { Ast.pattern = Ast.to_string ast; ast; anchored_start = false; anchored_end = false })
    wide_ast

let wide_input =
  let ( >>= ) = Gen.( >>= ) in
  Gen.int_range 0 40 >>= fun n ->
  Gen.string_size ~gen:(Gen.map Char.chr (Gen.int_range 0 255)) (Gen.return n)

let print_rule r = Printf.sprintf "%S" (Format.asprintf "%a" Ast.pp_rule r)

let print_ruleset_input (rules, input) =
  Printf.sprintf "rules=[%s] input=%S"
    (String.concat "; " (List.map print_rule rules))
    input

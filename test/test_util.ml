(* Unit and property tests for the substrate: Prng, Bitset, Vec,
   Indel. *)

module Prng = Mfsa_util.Prng
module Bitset = Mfsa_util.Bitset
module Vec = Mfsa_util.Vec
module Indel = Mfsa_util.Indel

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------ Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_prng_int_range () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    check Alcotest.bool "in range" true (v >= 0 && v < 10)
  done

let test_prng_int_in () =
  let g = Prng.create 8 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g 5 9 in
    check Alcotest.bool "in [5,9]" true (v >= 5 && v <= 9)
  done;
  check Alcotest.int "degenerate interval" 3 (Prng.int_in g 3 3)

let test_prng_int_rejects () =
  let g = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "reversed" (Invalid_argument "Prng.int_in: hi < lo")
    (fun () -> ignore (Prng.int_in g 4 3))

let test_prng_float () =
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    check Alcotest.bool "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_prng_uniformity () =
  (* Coarse chi-square-free check: each of 10 buckets gets 6-14% of
     10_000 draws. *)
  let g = Prng.create 123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> check Alcotest.bool "roughly uniform" true (c > 600 && c < 1400))
    buckets

let test_prng_chance () =
  let g = Prng.create 5 in
  check Alcotest.bool "p=0 never" false (Prng.chance g 0.);
  check Alcotest.bool "p=1 always" true (Prng.chance g 1.);
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.chance g 0.25 then incr hits
  done;
  check Alcotest.bool "p=0.25 plausible" true (!hits > 2000 && !hits < 3000)

let test_prng_shuffle_permutes () =
  let g = Prng.create 11 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 20 Fun.id) sorted

let test_prng_choose () =
  let g = Prng.create 12 in
  for _ = 1 to 50 do
    check Alcotest.bool "member" true
      (List.mem (Prng.choose g [| 1; 2; 3 |]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Prng.choose g ([||] : int array)))

let test_prng_split_independent () =
  let g = Prng.create 77 in
  let child = Prng.split g in
  let a = Prng.next_int64 child and b = Prng.next_int64 g in
  check Alcotest.bool "parent and child diverge" true (a <> b)

let test_prng_copy () =
  let g = Prng.create 13 in
  ignore (Prng.next_int64 g);
  let h = Prng.copy g in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 g)
    (Prng.next_int64 h)

(* ---------------------------------------------------------- Bitset *)

let test_bitset_basics () =
  let s = Bitset.create 100 in
  check Alcotest.bool "empty" true (Bitset.is_empty s);
  check Alcotest.int "capacity" 100 (Bitset.capacity s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  check Alcotest.bool "mem 0" true (Bitset.mem s 0);
  check Alcotest.bool "mem 63" true (Bitset.mem s 63);
  check Alcotest.bool "mem 99" true (Bitset.mem s 99);
  check Alcotest.bool "not mem 1" false (Bitset.mem s 1);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check Alcotest.bool "removed" false (Bitset.mem s 63);
  check Alcotest.(list int) "to_list sorted" [ 0; 99 ] (Bitset.to_list s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset: index 10 out of range [0,10)") (fun () ->
      Bitset.add s 10);
  check Alcotest.bool "mem out of range is false" false (Bitset.mem s 42);
  check Alcotest.bool "mem negative is false" false (Bitset.mem s (-1))

let test_bitset_word_boundaries () =
  (* 62-bit limbs: exercise indices around multiples of 62. *)
  let s = Bitset.create 200 in
  List.iter (Bitset.add s) [ 61; 62; 63; 123; 124; 185; 186 ];
  List.iter
    (fun i -> check Alcotest.bool (string_of_int i) true (Bitset.mem s i))
    [ 61; 62; 63; 123; 124; 185; 186 ];
  check Alcotest.int "cardinal" 7 (Bitset.cardinal s)

let test_bitset_set_ops () =
  let a = Bitset.of_list 50 [ 1; 2; 3; 10 ] in
  let b = Bitset.of_list 50 [ 3; 10; 20 ] in
  check Alcotest.(list int) "union" [ 1; 2; 3; 10; 20 ]
    (Bitset.to_list (Bitset.union a b));
  check Alcotest.(list int) "inter" [ 3; 10 ] (Bitset.to_list (Bitset.inter a b));
  check Alcotest.(list int) "diff" [ 1; 2 ] (Bitset.to_list (Bitset.diff a b));
  check Alcotest.bool "subset no" false (Bitset.subset a b);
  check Alcotest.bool "subset yes" true
    (Bitset.subset (Bitset.of_list 50 [ 1; 2 ]) a);
  check Alcotest.bool "disjoint no" false (Bitset.disjoint a b);
  check Alcotest.bool "disjoint yes" true
    (Bitset.disjoint a (Bitset.of_list 50 [ 30; 40 ]))

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  Alcotest.check_raises "union mismatch"
    (Invalid_argument "Bitset.union: capacity mismatch (10 vs 20)") (fun () ->
      ignore (Bitset.union a b))

let test_bitset_union_into () =
  let a = Bitset.of_list 30 [ 1; 5 ] in
  let b = Bitset.of_list 30 [ 5; 9 ] in
  check Alcotest.bool "changed" true (Bitset.union_into ~dst:a b);
  check Alcotest.(list int) "merged" [ 1; 5; 9 ] (Bitset.to_list a);
  check Alcotest.bool "idempotent" false (Bitset.union_into ~dst:a b)

let test_bitset_inter_into () =
  let a = Bitset.of_list 30 [ 1; 5; 9 ] in
  Bitset.inter_into ~dst:a (Bitset.of_list 30 [ 5; 9; 11 ]);
  check Alcotest.(list int) "intersected" [ 5; 9 ] (Bitset.to_list a)

let test_bitset_clear_fill () =
  let s = Bitset.of_list 70 [ 0; 69 ] in
  Bitset.clear s;
  check Alcotest.bool "cleared" true (Bitset.is_empty s);
  Bitset.fill s;
  check Alcotest.int "filled" 70 (Bitset.cardinal s);
  check Alcotest.bool "fill stays in range" true (Bitset.mem s 69)

let test_bitset_choose () =
  check Alcotest.(option int) "empty" None (Bitset.choose (Bitset.create 5));
  check Alcotest.(option int) "smallest" (Some 2)
    (Bitset.choose (Bitset.of_list 9 [ 7; 2; 5 ]))

let test_bitset_equal_compare () =
  let a = Bitset.of_list 40 [ 1; 2 ] and b = Bitset.of_list 40 [ 1; 2 ] in
  check Alcotest.bool "equal" true (Bitset.equal a b);
  check Alcotest.int "compare eq" 0 (Bitset.compare a b);
  Bitset.add b 3;
  check Alcotest.bool "not equal" false (Bitset.equal a b);
  check Alcotest.bool "ordered" true (Bitset.compare a b <> 0)

let test_bitset_copy_independent () =
  let a = Bitset.of_list 10 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  check Alcotest.bool "original untouched" false (Bitset.mem a 2)

let test_bitset_pp () =
  check Alcotest.string "pp" "{1,4,7}"
    (Format.asprintf "%a" Bitset.pp (Bitset.of_list 10 [ 7; 1; 4 ]));
  check Alcotest.string "pp empty" "{}"
    (Format.asprintf "%a" Bitset.pp (Bitset.create 10))

let prop_bitset_union_commutes =
  QCheck2.Test.make ~name:"bitset: union commutes, inter distributes"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 30) (int_range 0 99))
        (list_size (int_range 0 30) (int_range 0 99)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      Bitset.equal (Bitset.union a b) (Bitset.union b a)
      && Bitset.equal (Bitset.inter a b) (Bitset.inter b a)
      && Bitset.equal
           (Bitset.diff a b)
           (Bitset.inter a (Bitset.diff (Bitset.of_list 100 (List.init 100 Fun.id)) b)))

let prop_bitset_list_roundtrip =
  QCheck2.Test.make ~name:"bitset: of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 63))
    (fun xs ->
      let sorted = List.sort_uniq Int.compare xs in
      Bitset.to_list (Bitset.of_list 64 xs) = sorted)

(* ------------------------------------------------------------- Vec *)

let test_vec_push_get () =
  let v = Vec.create () in
  check Alcotest.bool "fresh empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 0" 0 (Vec.get v 0);
  check Alcotest.int "get 99" 198 (Vec.get v 99);
  Vec.set v 5 1000;
  check Alcotest.int "set/get" 1000 (Vec.get v 5)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 2 out of range [0,2)")
    (fun () -> ignore (Vec.get v 2));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index -1 out of range [0,2)")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check Alcotest.(option int) "last" (Some 3) (Vec.last v);
  check Alcotest.(option int) "pop" (Some 3) (Vec.pop v);
  check Alcotest.int "shrunk" 2 (Vec.length v);
  ignore (Vec.pop v);
  ignore (Vec.pop v);
  check Alcotest.(option int) "pop empty" None (Vec.pop v);
  check Alcotest.(option int) "last empty" None (Vec.last v)

let test_vec_conversions () =
  let v = Vec.of_array [| 5; 6; 7 |] in
  check Alcotest.(list int) "to_list" [ 5; 6; 7 ] (Vec.to_list v);
  check Alcotest.(array int) "to_array" [| 5; 6; 7 |] (Vec.to_array v);
  let w = Vec.map (fun x -> x * 10) v in
  check Alcotest.(list int) "map" [ 50; 60; 70 ] (Vec.to_list w)

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check Alcotest.int "iteri count" 4 (List.length !acc);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  check Alcotest.(option int) "find" (Some 2) (Vec.find_opt (fun x -> x mod 2 = 0) v);
  check Alcotest.(option int) "find_index" (Some 1)
    (Vec.find_index (fun x -> x mod 2 = 0) v)

let test_vec_append_copy_clear () =
  let a = Vec.of_list [ 1; 2 ] and b = Vec.of_list [ 3 ] in
  Vec.append a b;
  check Alcotest.(list int) "append" [ 1; 2; 3 ] (Vec.to_list a);
  let c = Vec.copy a in
  Vec.clear a;
  check Alcotest.int "cleared" 0 (Vec.length a);
  check Alcotest.(list int) "copy unaffected" [ 1; 2; 3 ] (Vec.to_list c)

let test_vec_sort () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort Int.compare v;
  check Alcotest.(list int) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let test_vec_make () =
  let v = Vec.make 5 'x' in
  check Alcotest.int "length" 5 (Vec.length v);
  check Alcotest.char "filled" 'x' (Vec.get v 4);
  Vec.push v 'y';
  check Alcotest.char "push after make" 'y' (Vec.get v 5)

let prop_vec_list_roundtrip =
  QCheck2.Test.make ~name:"vec: of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list small_int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

(* ----------------------------------------------------------- Indel *)

let test_indel_paper_example () =
  (* §I: lewenstein vs levenshtein, distance 3 over 21, sim 0.8571. *)
  check Alcotest.int "distance" 3 (Indel.distance "lewenstein" "levenshtein");
  let sim = Indel.similarity "lewenstein" "levenshtein" in
  check Alcotest.bool "similarity ~0.857" true (abs_float (sim -. 0.8571) < 0.001)

let test_indel_identical () =
  check Alcotest.int "distance 0" 0 (Indel.distance "abc" "abc");
  check (Alcotest.float 1e-9) "sim 1" 1. (Indel.similarity "abc" "abc")

let test_indel_disjoint () =
  check Alcotest.int "distance = sum of lengths" 7 (Indel.distance "aaa" "bbbb");
  check (Alcotest.float 1e-9) "sim 0" 0. (Indel.similarity "aaa" "bbbb")

let test_indel_empty () =
  check Alcotest.int "vs empty" 3 (Indel.distance "" "abc");
  check (Alcotest.float 1e-9) "both empty sim" 1. (Indel.similarity "" "");
  check (Alcotest.float 1e-9) "both empty normalized" 0. (Indel.normalized "" "")

let test_indel_lcs () =
  check Alcotest.int "lcs" 3 (Indel.lcs "abcde" "ace");
  check Alcotest.int "lcs none" 0 (Indel.lcs "abc" "xyz");
  check Alcotest.int "lcs full" 4 (Indel.lcs "abcd" "abcd")

let test_indel_average () =
  check (Alcotest.float 1e-9) "fewer than two" 0.
    (Indel.average_pairwise_similarity [| "a" |]);
  let v = Indel.average_pairwise_similarity [| "abc"; "abc"; "xyz" |] in
  (* pairs: (abc,abc)=1, (abc,xyz)=0, (abc,xyz)=0 → 1/3 *)
  check Alcotest.bool "exact average" true (abs_float (v -. (1. /. 3.)) < 1e-9)

let test_indel_sampled_average () =
  let strings = Array.init 50 (fun i -> String.make (1 + (i mod 5)) 'a') in
  let full = Indel.average_pairwise_similarity strings in
  let sampled = Indel.average_pairwise_similarity ~sample:400 strings in
  check Alcotest.bool "sampled close to full" true (abs_float (full -. sampled) < 0.1)

let prop_indel_metric_laws =
  QCheck2.Test.make ~name:"indel: symmetry, identity, triangle" ~count:200
    QCheck2.Gen.(
      triple (string_size ~gen:(oneofl [ 'a'; 'b' ]) (int_range 0 12))
        (string_size ~gen:(oneofl [ 'a'; 'b' ]) (int_range 0 12))
        (string_size ~gen:(oneofl [ 'a'; 'b' ]) (int_range 0 12)))
    (fun (a, b, c) ->
      Indel.distance a b = Indel.distance b a
      && Indel.distance a a = 0
      && Indel.distance a c <= Indel.distance a b + Indel.distance b c)

let prop_indel_bounds =
  QCheck2.Test.make ~name:"indel: similarity in [0,1]" ~count:200
    QCheck2.Gen.(
      pair (string_size ~gen:printable (int_range 0 20))
        (string_size ~gen:printable (int_range 0 20)))
    (fun (a, b) ->
      let s = Indel.similarity a b in
      s >= 0. && s <= 1.)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int_in range" `Quick test_prng_int_in;
          Alcotest.test_case "rejects bad bounds" `Quick test_prng_int_rejects;
          Alcotest.test_case "float range" `Quick test_prng_float;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "chance" `Quick test_prng_chance;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "word boundaries" `Quick test_bitset_word_boundaries;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          Alcotest.test_case "union_into" `Quick test_bitset_union_into;
          Alcotest.test_case "inter_into" `Quick test_bitset_inter_into;
          Alcotest.test_case "clear and fill" `Quick test_bitset_clear_fill;
          Alcotest.test_case "choose" `Quick test_bitset_choose;
          Alcotest.test_case "equal and compare" `Quick test_bitset_equal_compare;
          Alcotest.test_case "copy independence" `Quick test_bitset_copy_independent;
          Alcotest.test_case "pp" `Quick test_bitset_pp;
          qtest prop_bitset_union_commutes;
          qtest prop_bitset_list_roundtrip;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push and get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop and last" `Quick test_vec_pop_last;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
          Alcotest.test_case "iter and fold" `Quick test_vec_iter_fold;
          Alcotest.test_case "append, copy, clear" `Quick test_vec_append_copy_clear;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          Alcotest.test_case "make" `Quick test_vec_make;
          qtest prop_vec_list_roundtrip;
        ] );
      ( "indel",
        [
          Alcotest.test_case "paper example" `Quick test_indel_paper_example;
          Alcotest.test_case "identical" `Quick test_indel_identical;
          Alcotest.test_case "disjoint" `Quick test_indel_disjoint;
          Alcotest.test_case "empty strings" `Quick test_indel_empty;
          Alcotest.test_case "lcs" `Quick test_indel_lcs;
          Alcotest.test_case "pairwise average" `Quick test_indel_average;
          Alcotest.test_case "sampled average" `Quick test_indel_sampled_average;
          qtest prop_indel_metric_laws;
          qtest prop_indel_bounds;
        ] );
    ]

(* Unit and property tests for the POSIX ERE parser. *)

module P = Mfsa_frontend.Parser
module Ast = Mfsa_frontend.Ast
module C = Mfsa_charset.Charclass

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let ast = Alcotest.testable Ast.pp Ast.equal

let parse src =
  match P.parse src with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected parse error: %s" (P.error_to_string e)

let parse_ast src = (parse src).Ast.ast

let parse_fails src =
  match P.parse src with
  | Ok r -> Alcotest.failf "expected %S to fail, got %s" src (Ast.to_string r.Ast.ast)
  | Error e -> e

let test_atoms () =
  check ast "char" (Ast.Char 'a') (parse_ast "a");
  check ast "class" (Ast.Class (C.of_string "ab")) (parse_ast "[ab]");
  check ast "dot" (Ast.Class C.dot) (parse_ast ".");
  check ast "empty" Ast.Empty (parse_ast "");
  check ast "empty group" Ast.Empty (parse_ast "()")

let test_concat () =
  check ast "two" (Ast.Concat (Ast.Char 'a', Ast.Char 'b')) (parse_ast "ab");
  check ast "three left-nested"
    (Ast.Concat (Ast.Concat (Ast.Char 'a', Ast.Char 'b'), Ast.Char 'c'))
    (parse_ast "abc")

let test_alternation () =
  check ast "simple" (Ast.Alt (Ast.Char 'a', Ast.Char 'b')) (parse_ast "a|b");
  check ast "alt of concats"
    (Ast.Alt (Ast.Concat (Ast.Char 'a', Ast.Char 'b'), Ast.Char 'c'))
    (parse_ast "ab|c");
  check ast "empty branch" (Ast.Alt (Ast.Char 'a', Ast.Empty)) (parse_ast "a|");
  check ast "leading empty branch" (Ast.Alt (Ast.Empty, Ast.Char 'b')) (parse_ast "|b")

let test_precedence () =
  (* Star binds tighter than concat, concat tighter than alt. *)
  check ast "star over concat"
    (Ast.Concat (Ast.Char 'a', Ast.Star (Ast.Char 'b')))
    (parse_ast "ab*");
  check ast "group changes binding"
    (Ast.Star (Ast.Concat (Ast.Char 'a', Ast.Char 'b')))
    (parse_ast "(ab)*");
  check ast "alt lowest"
    (Ast.Alt (Ast.Char 'a', Ast.Concat (Ast.Char 'b', Ast.Star (Ast.Char 'c'))))
    (parse_ast "a|bc*")

let test_quantifiers () =
  check ast "star" (Ast.Star (Ast.Char 'a')) (parse_ast "a*");
  check ast "plus" (Ast.Plus (Ast.Char 'a')) (parse_ast "a+");
  check ast "opt" (Ast.Opt (Ast.Char 'a')) (parse_ast "a?");
  check ast "repeat exact" (Ast.Repeat (Ast.Char 'a', 3, Some 3)) (parse_ast "a{3}");
  check ast "repeat range" (Ast.Repeat (Ast.Char 'a', 1, Some 4)) (parse_ast "a{1,4}");
  check ast "repeat open" (Ast.Repeat (Ast.Char 'a', 2, None)) (parse_ast "a{2,}");
  check ast "stacked quantifiers" (Ast.Opt (Ast.Star (Ast.Char 'a'))) (parse_ast "a*?");
  check ast "quantified group"
    (Ast.Repeat (Ast.Alt (Ast.Char 'a', Ast.Char 'b'), 2, Some 2))
    (parse_ast "(a|b){2}")

let test_nesting () =
  check ast "nested groups"
    (Ast.Concat (Ast.Char 'x', Ast.Alt (Ast.Char 'a', Ast.Star (Ast.Char 'b'))))
    (parse_ast "x(a|(b)*)")

let test_anchors () =
  let r = parse "^abc$" in
  check Alcotest.bool "start" true r.Ast.anchored_start;
  check Alcotest.bool "end" true r.Ast.anchored_end;
  let r = parse "abc" in
  check Alcotest.bool "no start" false r.Ast.anchored_start;
  check Alcotest.bool "no end" false r.Ast.anchored_end;
  let r = parse "^a" in
  check Alcotest.bool "only start" true r.Ast.anchored_start;
  check Alcotest.bool "only start, no end" false r.Ast.anchored_end

let test_anchor_errors () =
  let e = parse_fails "a^b" in
  check Alcotest.bool "interior caret" true
    (e.P.message = "'^' is only supported at the start of the pattern");
  let e = parse_fails "a$b" in
  check Alcotest.bool "interior dollar" true
    (e.P.message = "'$' is only supported at the end of the pattern");
  check Alcotest.int "interior dollar position" 1 e.P.pos;
  (* Anchors inside a group used to be misreported as "unmatched '('"
     at the group's position; the anchor itself is the error. *)
  let e = parse_fails "(a$)" in
  check Alcotest.string "dollar in group"
    "'$' is only supported at the end of the pattern" e.P.message;
  check Alcotest.int "dollar in group position" 2 e.P.pos;
  let e = parse_fails "(^a)" in
  check Alcotest.string "caret in group"
    "'^' is only supported at the start of the pattern" e.P.message;
  check Alcotest.int "caret in group position" 1 e.P.pos

let test_syntax_errors () =
  let e = parse_fails "(ab" in
  check Alcotest.string "unmatched open" "unmatched '('" e.P.message;
  check Alcotest.int "error position" 0 e.P.pos;
  let e = parse_fails "ab)" in
  check Alcotest.string "unmatched close" "unmatched ')'" e.P.message;
  let e = parse_fails "*a" in
  check Alcotest.string "leading star" "quantifier with nothing to repeat" e.P.message;
  let e = parse_fails "a|*" in
  check Alcotest.string "star after bar" "quantifier with nothing to repeat" e.P.message;
  let e = parse_fails "(+)" in
  check Alcotest.string "quantifier in empty group" "quantifier with nothing to repeat"
    e.P.message

let test_lex_errors_surface () =
  let e = parse_fails "[abc" in
  check Alcotest.string "lex error propagates" "unterminated bracket expression"
    e.P.message

let test_pattern_recorded () =
  check Alcotest.string "pattern field" "a(b|c)*" (parse "a(b|c)*").Ast.pattern

let test_parse_many () =
  (match P.parse_many [ "ab"; "c|d" ] with
  | Ok rules -> check Alcotest.int "two rules" 2 (Array.length rules)
  | Error _ -> Alcotest.fail "expected success");
  match P.parse_many [ "ab"; "(c"; "d" ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (i, e) ->
      check Alcotest.int "failing index" 1 i;
      check Alcotest.string "message" "unmatched '('" e.P.message

let test_ast_helpers () =
  check ast "seq right assoc"
    (Ast.Concat (Ast.Concat (Ast.Char 'a', Ast.Char 'b'), Ast.Char 'c'))
    (Ast.seq [ Ast.Char 'a'; Ast.Char 'b'; Ast.Char 'c' ]);
  check ast "seq empty" Ast.Empty (Ast.seq []);
  check Alcotest.int "size" 6 (Ast.size (parse_ast "ab|c*"));
  Alcotest.check_raises "alt empty" (Invalid_argument "Ast.alt: empty alternation")
    (fun () -> ignore (Ast.alt []))

let test_ast_literals () =
  check Alcotest.(list string) "plain" [ "abc" ] (Ast.literals (parse_ast "abc"));
  check Alcotest.(list string) "split by class" [ "ab"; "cd" ]
    (Ast.literals (parse_ast "ab[xy]cd"));
  check Alcotest.(list string) "alternation branches" [ "ab"; "cd" ]
    (Ast.literals (parse_ast "ab|cd"));
  check Alcotest.(list string) "quantified runs split" [ "a"; "b"; "c" ]
    (Ast.literals (parse_ast "a(b)*c"))

let test_roundtrip_examples () =
  (* to_string must re-parse to a language-equal AST; for these simple
     examples the AST is exactly equal. *)
  List.iter
    (fun src ->
      let a = parse_ast src in
      let re = Ast.to_string a in
      check ast (Printf.sprintf "%s -> %s" src re) a (parse_ast re))
    [ "abc"; "a|b"; "a*b+c?"; "[ab]c{2,3}"; "x(a|b)y"; "a\\.b"; "a{2,}" ]

(* Property: rendering any generated AST and re-parsing yields the
   same recognised language (checked on random inputs via the
   reference simulator). *)
let prop_render_reparse =
  QCheck2.Test.make ~name:"parser: to_string/parse language roundtrip" ~count:150
    ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let rule = List.hd rules in
      let rule = { rule with Ast.anchored_start = false; anchored_end = false } in
      let printed = Ast.to_string rule.Ast.ast in
      match P.parse printed with
      | Error _ -> false
      | Ok reparsed ->
          let module T = Mfsa_automata.Thompson in
          let module S = Mfsa_automata.Simulate in
          let a = T.build rule and b = T.build reparsed in
          S.accepts a input = S.accepts b input)

(* Robustness: arbitrary byte strings must produce Ok or a clean
   Error — never an escaping exception — and successful parses must
   build a well-formed automaton. *)
let prop_no_crash_on_garbage =
  QCheck2.Test.make ~name:"parser: total on arbitrary bytes" ~count:500
    ~print:(Printf.sprintf "%S")
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 30))
    (fun src ->
      match P.parse src with
      | Ok rule -> (
          match Mfsa_automata.Thompson.build rule with
          | _ -> true
          | exception _ -> false)
      | Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "parser"
    [
      ( "parser",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "concatenation" `Quick test_concat;
          Alcotest.test_case "alternation" `Quick test_alternation;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "anchors" `Quick test_anchors;
          Alcotest.test_case "anchor errors" `Quick test_anchor_errors;
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
          Alcotest.test_case "lexical errors surface" `Quick test_lex_errors_surface;
          Alcotest.test_case "pattern recorded" `Quick test_pattern_recorded;
          Alcotest.test_case "parse_many" `Quick test_parse_many;
          Alcotest.test_case "ast helpers" `Quick test_ast_helpers;
          Alcotest.test_case "ast literals" `Quick test_ast_literals;
          Alcotest.test_case "roundtrip examples" `Quick test_roundtrip_examples;
          qtest prop_render_reparse;
          qtest prop_no_crash_on_garbage;
        ] );
    ]

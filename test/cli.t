The compile -> match workflow through the CLIs, end to end.

A small ruleset with a shared prefix:

  $ cat > rules.txt <<RULES
  > hello world
  > hello there
  > # a comment line, skipped
  > he(l|n)p
  > RULES

Compile it into a single merged MFSA (extended ANML):

  $ mfsa-compile rules.txt -m 0 -o ruleset.anml
  $ head -c 54 ruleset.anml; echo
  <?xml version="1.0" encoding="UTF-8"?>
  <automata-netwo

The ANML carries one mfsa with three FSAs:

  $ grep -c "<fsa " ruleset.anml
  3
  $ grep -o 'mfsa-count="[0-9]*"' ruleset.anml
  mfsa-count="1"

Match a stream against the compiled ruleset:

  $ printf 'say hello there or hello world and ask for henp or help' > stream.bin
  $ mfsa-match ruleset.anml stream.bin | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches

Listing individual match events:

  $ mfsa-match ruleset.anml stream.bin --list | grep "^match" | sort
  match mfsa=0 rule=0 pattern=hello world end=30
  match mfsa=0 rule=1 pattern=hello there end=15
  match mfsa=0 rule=2 pattern=he(l|n)p end=47
  match mfsa=0 rule=2 pattern=he(l|n)p end=55

Errors are reported with rule context and a non-zero exit:

  $ printf '(broken\n' > bad.txt
  $ mfsa-compile bad.txt
  mfsa-compile: rule 0 ((broken): at offset 0: unmatched '('
  [1]

  $ mfsa-compile --dataset NOPE
  mfsa-compile: unknown dataset "NOPE" (expected BRO, DS9, PEN, PRO, RG1 or TCP)
  [1]

The built-in synthetic datasets compile directly:

  $ mfsa-compile --dataset BRO -m 10 -o bro.anml
  $ grep -o 'mfsa-count="[0-9]*"' bro.anml
  mfsa-count="22"

Inspecting the compiled ruleset:

  $ mfsa-inspect ruleset.anml
  MFSAs: 1
  mfsa 0: 3 rules, 20 states, 20 transitions (5 shared by 2+ rules), 1 character classes (total length 2)
    rule 0.0 hello world                              11 transitions
    rule 0.1 hello there                              11 transitions
    rule 0.2 he(l|n)p                                 4 transitions

  $ mfsa-inspect ruleset.anml --sharing | tail -3
      1 -> 15
      2 -> 4
      3 -> 1

  $ mfsa-inspect ruleset.anml --dot | head -2
  digraph mfsa {
    rankdir=LR;

Homogeneous (STE-based) ANML output, the Automata Processor dialect:

  $ mfsa-compile rules.txt -m 0 --homogeneous -o stes.anml
  $ head -3 stes.anml
  <?xml version="1.0" encoding="UTF-8"?>
  <automata-network name="mfsa-homogeneous" id="mfsa">
    <state-transition-element id="ste0" symbol-set="[\x64]" belongs="0">
  $ grep -c "state-transition-element" stes.anml
  40

The dataset dumper feeds the same workflow:

  $ mfsa-dataset BRO --scale 0.02 | head -2
  User-Agent: bcg
  HEAD /jgpz
  $ mfsa-dataset BRO --scale 0.02 -r r.txt -s s.bin --stream-kb 1
  $ wc -c < s.bin
  1024
  $ mfsa-compile r.txt -o r.anml && mfsa-match r.anml s.bin | tail -1 | sed 's/in .*(/in TIME (/'
  total: 29 matches over 1024 bytes in TIME (imfant engine, 1 thread)

Every registered engine is reachable through the same -e flag and must
agree with iMFAnt on counts:

  $ for e in dfa decomposed hybrid infant; do mfsa-match ruleset.anml stream.bin --engine $e | grep -v "^total:"; done | sort -u
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches

-e help lists the registry (the same flag and listing as mfsa-live and
the bench driver):

  $ mfsa-match ruleset.anml stream.bin -e help
  decomposed   literal pre-filter + FSA confirmation (Hyperscan-style)
  dfa          per-rule scanning DFAs (subset construction + Hopcroft)
  hybrid       lazy-DFA configuration cache over iMFAnt (RE2-style)
  imfant       transition-centric merged-automaton engine (paper §V, the default)
  infant       per-rule iNFAnt baseline on the FSAs projected out of the MFSA

Every engine reports statistics through the common interface (-s):

  $ mfsa-match ruleset.anml stream.bin -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: states=N, transitions=N, runs=N, bytes=N, avg_active=N, max_active=N

  $ mfsa-match ruleset.anml stream.bin --engine hybrid -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: states=N, steps=N, hit_rate=N, resident_configs=N, configs_interned=N, flushes=N, cache_KiB=N

  $ mfsa-match ruleset.anml stream.bin --engine dfa -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: rules=N, states=N, table_cells=N

  $ mfsa-match ruleset.anml stream.bin --engine decomposed -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: prefiltered=N, fallback=N

Unknown names get the registry's shared message, everywhere:

  $ mfsa-match ruleset.anml stream.bin --engine warp
  mfsa-match: unknown engine "warp" (registered: decomposed, dfa, hybrid, imfant, infant)
  [1]

  $ mfsa-live -e warp < /dev/null
  mfsa-live: unknown engine "warp" (registered: decomposed, dfa, hybrid, imfant, infant)
  [1]

The COO vectors in the paper's Fig. 2 layout:

  $ cat > tiny.txt <<TINY
  > ab
  > ac
  > TINY
  $ mfsa-compile tiny.txt -o tiny.anml && mfsa-inspect tiny.anml --coo
  mfsa 0 (paper Fig. 2 layout):
  bel | 0 | 0,1 | 1 |
  row | 0 | 2   | 0 |
  col | 1 | 0   | 3 |
  idx | b | a   | c |

Merge strategies from the CLI (greedy and prefix seeding make different
sharing choices; on large rulesets greedy compresses far more — see
the ablation-strategy artefact):

  $ mfsa-compile rules.txt --strategy greedy -v -o /dev/null 2>&1 | grep "^states:"
  states:       29 -> 20 (31.03% compression)
  $ mfsa-compile rules.txt --strategy prefix -v -o /dev/null 2>&1 | grep "^states:"
  states:       29 -> 19 (34.48% compression)

Live ruleset updates: incremental adds, retirement and a streaming
session pinned to the generation it opened on.

  $ cat > live.txt <<LIVE
  > add abc
  > add bca
  > # stream on generation 2, then update under it
  > feed abca
  > add cab
  > remove 0
  > feed bca
  > match abcabca
  > reset
  > feed abcabca
  > finish
  > stats
  > compact
  > stats
  > rules
  > LIVE
  $ mfsa-live live.txt
  added rule 0 (gen 1)
  added rule 1 (gen 2)
  match rule=0 pattern=abc end=3
  match rule=1 pattern=bca end=4
  fed 4 bytes (session gen 2, pos 4)
  added rule 2 (gen 3)
  removed rule 0 (gen 4)
  match rule=0 pattern=abc end=6
  match rule=1 pattern=bca end=7
  fed 3 bytes (session gen 2, pos 7)
  match rule=1 pattern=bca end=4
  match rule=2 pattern=cab end=5
  match rule=1 pattern=bca end=7
  3 matches (gen 4)
  session reset (gen 4)
  match rule=1 pattern=bca end=4
  match rule=2 pattern=cab end=5
  match rule=1 pattern=bca end=7
  fed 7 bytes (session gen 4, pos 7)
  stream finished at 7 bytes
  gen 4: 2 rules, 6 states, 5 transitions (1 dead), 0 compactions
  compacted (gen 5)
  gen 5: 2 rules, 5 states, 4 transitions (0 dead), 1 compactions
  rule 1  bca
  rule 2  cab

The same script through another registry engine is indistinguishable:

  $ mfsa-live -e hybrid live.txt > hybrid.out && mfsa-live live.txt > imfant.out && diff hybrid.out imfant.out

A malformed rule is rejected without touching the ruleset; unknown ids
are refused:

  $ printf 'add (broken\nremove 7\nstats\n' | mfsa-live --gc-threshold 0
  error: rule 0 ((broken): at offset 0: unmatched '('
  error: no live rule 7
  gen 0: 0 rules, 0 states, 0 transitions (0 dead), 0 compactions

The compile -> match workflow through the CLIs, end to end.

A small ruleset with a shared prefix:

  $ cat > rules.txt <<RULES
  > hello world
  > hello there
  > # a comment line, skipped
  > he(l|n)p
  > RULES

Compile it into a single merged MFSA (extended ANML):

  $ mfsa-compile rules.txt -m 0 -o ruleset.anml
  $ head -c 54 ruleset.anml; echo
  <?xml version="1.0" encoding="UTF-8"?>
  <automata-netwo

The ANML carries one mfsa with three FSAs:

  $ grep -c "<fsa " ruleset.anml
  3
  $ grep -o 'mfsa-count="[0-9]*"' ruleset.anml
  mfsa-count="1"

Match a stream against the compiled ruleset:

  $ printf 'say hello there or hello world and ask for henp or help' > stream.bin
  $ mfsa-match ruleset.anml stream.bin | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches

Listing individual match events:

  $ mfsa-match ruleset.anml stream.bin --list | grep "^match" | sort
  match mfsa=0 rule=0 pattern=hello world end=30
  match mfsa=0 rule=1 pattern=hello there end=15
  match mfsa=0 rule=2 pattern=he(l|n)p end=47
  match mfsa=0 rule=2 pattern=he(l|n)p end=55

Errors are reported with rule context and a non-zero exit:

  $ printf '(broken\n' > bad.txt
  $ mfsa-compile bad.txt
  mfsa-compile: rule 0 ((broken): at offset 0: unmatched '('
  [1]

  $ mfsa-compile --dataset NOPE
  mfsa-compile: unknown dataset "NOPE" (expected BRO, DS9, PEN, PRO, RG1 or TCP)
  [1]

The built-in synthetic datasets compile directly:

  $ mfsa-compile --dataset BRO -m 10 -o bro.anml
  $ grep -o 'mfsa-count="[0-9]*"' bro.anml
  mfsa-count="22"

Inspecting the compiled ruleset:

  $ mfsa-inspect ruleset.anml
  MFSAs: 1
  mfsa 0: 3 rules, 20 states, 20 transitions (5 shared by 2+ rules), 1 character classes (total length 2)
    rule 0.0 hello world                              11 transitions
    rule 0.1 hello there                              11 transitions
    rule 0.2 he(l|n)p                                 4 transitions

  $ mfsa-inspect ruleset.anml --sharing | tail -3
      1 -> 15
      2 -> 4
      3 -> 1

  $ mfsa-inspect ruleset.anml --dot | head -2
  digraph mfsa {
    rankdir=LR;

Homogeneous (STE-based) ANML output, the Automata Processor dialect:

  $ mfsa-compile rules.txt -m 0 --homogeneous -o stes.anml
  $ head -3 stes.anml
  <?xml version="1.0" encoding="UTF-8"?>
  <automata-network name="mfsa-homogeneous" id="mfsa">
    <state-transition-element id="ste0" symbol-set="[\x64]" belongs="0">
  $ grep -c "state-transition-element" stes.anml
  40

The dataset dumper feeds the same workflow:

  $ mfsa-dataset BRO --scale 0.02 | head -2
  User-Agent: bcg
  HEAD /jgpz
  $ mfsa-dataset BRO --scale 0.02 -r r.txt -s s.bin --stream-kb 1
  $ wc -c < s.bin
  1024
  $ mfsa-compile r.txt -o r.anml && mfsa-match r.anml s.bin | tail -1 | sed 's/in .*(/in TIME (/'
  total: 29 matches over 1024 bytes in TIME (imfant engine, 1 thread)

Every registered engine is reachable through the same -e flag and must
agree with iMFAnt on counts:

  $ for e in dfa decomposed hybrid infant; do mfsa-match ruleset.anml stream.bin --engine $e | grep -v "^total:"; done | sort -u
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches

-e help lists the registry (the same flag and listing as mfsa-live and
the bench driver):

  $ mfsa-match ruleset.anml stream.bin -e help
  ac           Aho–Corasick on literal-only rulesets (restricted: every rule must denote a finite literal set)
  auto         planner meta-engine: picks imfant/hybrid/dfa per ruleset from static features; a churning hybrid demotes to iMFAnt mid-stream
  decomposed   literal pre-filter + FSA confirmation (Hyperscan-style)
  dfa          per-rule scanning DFAs (subset construction + Hopcroft)
  hybrid       lazy-DFA configuration cache over iMFAnt (RE2-style)
  imfant       transition-centric merged-automaton engine (paper §V, the default)
  infant       per-rule iNFAnt baseline on the FSAs projected out of the MFSA
  faulty{..}:<engine>  deterministic fault-injection wrapper (seed=, fail_every=, poison_every=, delay_every=, delay_ms=, fail=, poison=, delay=)
  sfa{..}:<engine>     SFA intra-input parallel wrapper over imfant or hybrid (domains=, threshold= split size in bytes)

Every engine reports statistics through the common interface (-s):

  $ mfsa-match ruleset.anml stream.bin -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: mfsa_engine_active_fsas_avg=N, mfsa_engine_active_fsas_max=N, mfsa_engine_bytes_total=N, mfsa_engine_class_count=N, mfsa_engine_prefilter_skipped_bytes_total=N, mfsa_engine_runs_total=N, mfsa_engine_states=N, mfsa_engine_transitions=N

  $ mfsa-match ruleset.anml stream.bin --engine hybrid -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: mfsa_engine_cache_bytes=N, mfsa_engine_cache_capacity=N, mfsa_engine_cache_evictions_total=N, mfsa_engine_cache_flushes_total=N, mfsa_engine_cache_grows_total=N, mfsa_engine_cache_hit_ratio=N, mfsa_engine_cache_hits_total=N, mfsa_engine_cache_interned_total=N, mfsa_engine_cache_misses_total=N, mfsa_engine_cache_pair_hits_total=N, mfsa_engine_cache_resident_configs=N, mfsa_engine_cache_shrinks_total=N, mfsa_engine_class_count=N, mfsa_engine_demotions_total=N, mfsa_engine_prefilter_skipped_bytes_total=N, mfsa_engine_states=N, mfsa_engine_steps_total=N

  $ mfsa-match ruleset.anml stream.bin --engine dfa -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: mfsa_engine_class_count=N, mfsa_engine_rules=N, mfsa_engine_states=N, mfsa_engine_table_cells=N

  $ mfsa-match ruleset.anml stream.bin --engine decomposed -s | grep "stats:" | sed 's/=[0-9.]*/=N/g'
  mfsa 0 stats: mfsa_engine_rules_fallback=N, mfsa_engine_rules_prefiltered=N

The auto meta-engine plans a concrete engine from static ruleset
features and reports the choice (planned vs active diverge only after
an online demotion) alongside the planned engine's own series:

  $ mfsa-match ruleset.anml stream.bin --engine auto | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches

  $ mfsa-match ruleset.anml stream.bin --engine auto -s | grep -o "mfsa_engine_planner_choice{[^}]*}"
  mfsa_engine_planner_choice{active=hybrid,planned=hybrid}

The hot-loop tuning knobs: --no-prefilter disables the Aho–Corasick
literal prefilter, --stride 1 drops the hybrid engine to plain
byte-at-a-time stepping. Both are pure optimisations — match results
are identical with them off:

  $ mfsa-match ruleset.anml stream.bin --no-prefilter --stride 1 | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches

  $ mfsa-match ruleset.anml stream.bin --engine hybrid --no-prefilter --stride 1 --list | grep "^match" | sort
  match mfsa=0 rule=0 pattern=hello world end=30
  match mfsa=0 rule=1 pattern=hello there end=15
  match mfsa=0 rule=2 pattern=he(l|n)p end=47
  match mfsa=0 rule=2 pattern=he(l|n)p end=55

Only strides 1 and 2 exist:

  $ mfsa-match ruleset.anml stream.bin --stride 3 2>&1 | head -1
  mfsa-match: option '--stride': invalid value '3', expected either '1' or '2'

--cache-size bounds the hybrid's configuration cache (in rows). A
2-row cache forces constant eviction without changing any result,
and the eviction counter proves the cache cycled rather than flushed:

  $ mfsa-match ruleset.anml stream.bin --engine hybrid --cache-size 2 | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches

  $ mfsa-match ruleset.anml stream.bin --engine hybrid --cache-size 2 -s | grep -o "mfsa_engine_cache_flushes_total=[0-9]*"
  mfsa_engine_cache_flushes_total=0

  $ mfsa-match ruleset.anml stream.bin --engine hybrid --cache-size 0 2>&1 | head -1
  mfsa-match: option '--cache-size': cache size must be at least 1

The restricted ac engine serves literal-only rulesets with a single
Aho–Corasick pass, and refuses anything non-literal cleanly:

  $ printf 'hello world\nhello there\n' > lit.txt
  $ mfsa-compile lit.txt -m 0 -o lit.anml && mfsa-match lit.anml stream.bin -e ac | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches

  $ printf 'hel+o\n' > nonlit.txt
  $ mfsa-compile nonlit.txt -m 0 -o nonlit.anml && mfsa-match nonlit.anml stream.bin -e ac
  mfsa-match: ac: rule 0 ("hel+o") is not a finite literal set — use a general engine
  [1]

The full observability export (--metrics) replaces the report with a
Prometheus scrape body; compiling from --rules makes the pipeline
stage spans appear alongside the Serve and engine series.  Latencies
vary run to run, so assert the deterministic series and the shape:

  $ mfsa-match --rules rules.txt stream.bin --metrics > metrics.prom
  $ grep -c '^# TYPE' metrics.prom
  29
  $ grep '^# TYPE mfsa_compile' metrics.prom
  # TYPE mfsa_compile_errors_total counter
  # TYPE mfsa_compile_rules_total counter
  # TYPE mfsa_compile_stage_seconds histogram
  # TYPE mfsa_compile_total counter
  $ grep -E '^mfsa_(compile_rules_total|compile_total|serve_domains|serve_batches_total|serve_inputs_total|engine_runs_total)' metrics.prom
  mfsa_compile_rules_total 3
  mfsa_compile_total 1
  mfsa_engine_runs_total{domain="0",engine="imfant",mfsa="0"} 1
  mfsa_serve_batches_total{mfsa="0"} 1
  mfsa_serve_domains{mfsa="0"} 1
  mfsa_serve_inputs_total{mfsa="0"} 1

Histograms expose cumulative buckets, so every count is bounded by the
+Inf bucket and the _count line agrees with it:

  $ grep 'mfsa_serve_batch_seconds_bucket.*+Inf' metrics.prom
  mfsa_serve_batch_seconds_bucket{mfsa="0",le="+Inf"} 1
  $ grep 'mfsa_serve_batch_seconds_count' metrics.prom
  mfsa_serve_batch_seconds_count{mfsa="0"} 1

The same snapshot as a JSON document:

  $ mfsa-match --rules rules.txt stream.bin --metrics json > metrics.json
  $ head -1 metrics.json
  [
  $ grep -c '"name"' metrics.json
  36
  $ grep '"mfsa_serve_inputs_total"' metrics.json
    {"name": "mfsa_serve_inputs_total", "type": "counter", "labels": {"mfsa": "0"}, "value": 1},

Fault injection through the serving path: the faulty{..} wrapper is
deterministic, so a schedule that fails every attempt exhausts the
--retries budget reproducibly — the run exits non-zero with the typed
job failure, yet still dumps the metrics, retry counter included:

  $ mfsa-match --rules rules.txt stream.bin --metrics --retries 2 \
  >   -e 'faulty{seed=3,fail_every=1}:imfant' > faulty.prom
  mfsa-match: job 0 failed: Mfsa_engine.Faulty.Transient_fault("faulty{seed=3,fail_every=1}:imfant")
  [1]
  $ grep '^mfsa_serve_retries_total' faulty.prom
  mfsa_serve_retries_total{mfsa="0"} 2

A budget that covers the schedule absorbs the faults silently:

  $ mfsa-match --rules rules.txt stream.bin --metrics --retries 2 \
  >   -e 'faulty{seed=3,fail_every=2}:imfant' > faulty2.prom
  $ grep '^mfsa_serve_replica_restarts_total' faulty2.prom
  mfsa_serve_replica_restarts_total{mfsa="0"} 0

Malformed wrapper specs are rejected with the parse error:

  $ mfsa-match ruleset.anml stream.bin -e 'faulty{fail=2.0}:imfant'
  mfsa-match: bad faulty spec "faulty{fail=2.0}:imfant": fail wants a probability in [0,1], got "2.0"
  [1]

The sfa{..} wrapper chunks one oversized input across domains and
joins the chunk boundaries — match events are byte-identical to the
wrapped engine (threshold=1 forces the parallel path even on this
tiny stream; compare with the imfant/hybrid listings above):

  $ mfsa-match ruleset.anml stream.bin -e 'sfa{domains=2,threshold=1}:imfant' --list | grep "^match" | sort
  match mfsa=0 rule=0 pattern=hello world end=30
  match mfsa=0 rule=1 pattern=hello there end=15
  match mfsa=0 rule=2 pattern=he(l|n)p end=47
  match mfsa=0 rule=2 pattern=he(l|n)p end=55

  $ mfsa-match ruleset.anml stream.bin -e 'sfa{domains=3,threshold=1}:hybrid' --list | grep "^match" | sort
  match mfsa=0 rule=0 pattern=hello world end=30
  match mfsa=0 rule=1 pattern=hello there end=15
  match mfsa=0 rule=2 pattern=he(l|n)p end=47
  match mfsa=0 rule=2 pattern=he(l|n)p end=55

Its statistics expose the split/join machinery (2 chunk passes for
one 2-domain run):

  $ mfsa-match ruleset.anml stream.bin -e 'sfa{domains=2,threshold=1}:imfant' -s | grep -o "mfsa_sfa_chunks_total=[0-9]*"
  mfsa_sfa_chunks_total=2

Malformed sfa specs and non-parallelisable inner engines are rejected
with one-line errors too:

  $ mfsa-match ruleset.anml stream.bin -e 'sfa{domains=0}:imfant'
  mfsa-match: bad sfa spec "sfa{domains=0}:imfant": domains wants an integer in [1,64], got "0"
  [1]

  $ mfsa-match ruleset.anml stream.bin -e 'sfa{threshold=0}:imfant'
  mfsa-match: bad sfa spec "sfa{threshold=0}:imfant": threshold wants a positive byte count, got "0"
  [1]

  $ mfsa-match ruleset.anml stream.bin -e 'sfa:dfa'
  mfsa-match: bad sfa spec "sfa:dfa": inner engine must be one of imfant, hybrid, got "dfa"
  [1]

Unknown names get the registry's shared message, everywhere:

  $ mfsa-match ruleset.anml stream.bin --engine warp
  mfsa-match: unknown engine "warp" (registered: ac, auto, decomposed, dfa, hybrid, imfant, infant; any name can be wrapped as faulty{seed=..,fail_every=..}:<engine> for fault injection, and imfant/hybrid as sfa{domains=..,threshold=..}:<engine> for intra-input parallelism)
  [1]

  $ mfsa-live -e warp < /dev/null
  mfsa-live: unknown engine "warp" (registered: ac, auto, decomposed, dfa, hybrid, imfant, infant; any name can be wrapped as faulty{seed=..,fail_every=..}:<engine> for fault injection, and imfant/hybrid as sfa{domains=..,threshold=..}:<engine> for intra-input parallelism)
  [1]

The COO vectors in the paper's Fig. 2 layout:

  $ cat > tiny.txt <<TINY
  > ab
  > ac
  > TINY
  $ mfsa-compile tiny.txt -o tiny.anml && mfsa-inspect tiny.anml --coo
  mfsa 0 (paper Fig. 2 layout):
  bel | 0 | 0,1 | 1 |
  row | 0 | 2   | 0 |
  col | 1 | 0   | 3 |
  idx | b | a   | c |

Merge strategies from the CLI (greedy and prefix seeding make different
sharing choices; on large rulesets greedy compresses far more — see
the ablation-strategy artefact):

  $ mfsa-compile rules.txt --strategy greedy -v -o /dev/null 2>&1 | grep "^states:"
  states:       29 -> 20 (31.03% compression)
  $ mfsa-compile rules.txt --strategy prefix -v -o /dev/null 2>&1 | grep "^states:"
  states:       29 -> 19 (34.48% compression)

Compiled binary artifacts: --emit persists the merged automata plus
every engine-ready table; --load (or just naming the .mfsa file — the
magic is sniffed) brings an engine up in O(size) with no pipeline run,
and the results are indistinguishable from compiling the rules:

  $ mfsa-compile rules.txt --emit ruleset.mfsa
  $ mfsa-match --load ruleset.mfsa stream.bin | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches
  $ mfsa-match ruleset.mfsa stream.bin | grep -v "^total:"
  rule 0.0  hello world                              1 matches
  rule 0.1  hello there                              1 matches
  rule 0.2  he(l|n)p                                 2 matches
  $ mfsa-match --load ruleset.mfsa stream.bin -e hybrid --list | grep "^match" | sort
  match mfsa=0 rule=0 pattern=hello world end=30
  match mfsa=0 rule=1 pattern=hello there end=15
  match mfsa=0 rule=2 pattern=he(l|n)p end=47
  match mfsa=0 rule=2 pattern=he(l|n)p end=55

mfsa-inspect reads the artifact header without reconstructing the
tables — version, tuning snapshot, per-automaton shape and the section
directory:

  $ mfsa-inspect ruleset.mfsa
  artifact: version 2, 12450 bytes, 1 MFSA(s)
  tuning: classes=true prefilter=true stride=2 cache=4096
  mfsa 0: 3 rules, 20 states, 12 byte classes, prefilter
  section META     8 bytes
  section AUTO[0]  350 bytes
  section CLS[0]   308 bytes
  section TBC[0]   136 bytes
  section CSR[0]   1056 bytes
  section INI[0]   28 bytes
  section PFX[0]   10376 bytes

Artifacts feed the live layer too (the loaded rules seed generation 0):

  $ printf 'match say hello there and help\nrules\n' | mfsa-live --load ruleset.mfsa
  match rule=1 pattern=hello there end=15
  match rule=2 pattern=he(l|n)p end=24
  2 matches (gen 0)
  rule 0  hello world
  rule 1  hello there
  rule 2  he(l|n)p

Engines without a table loader refuse an artifact up front, with the
capable engines listed:

  $ mfsa-match --load ruleset.mfsa stream.bin -e decomposed
  mfsa-match: engine "decomposed" cannot load a compiled artifact (engines with a table loader: auto, hybrid, imfant); recompile from rules instead
  [1]

Damage of any kind surfaces as a one-line typed error, never a crash —
a flipped payload bit, a truncated file, a version from the future:

  $ printf 'x' | dd of=ruleset.mfsa bs=1 seek=$(($(wc -c < ruleset.mfsa) - 1)) conv=notrunc status=none
  $ mfsa-match --load ruleset.mfsa stream.bin
  mfsa-match: checksum mismatch in section PFX[0]
  [1]
  $ mfsa-compile rules.txt --emit ruleset.mfsa
  $ head -c 100 ruleset.mfsa > short.mfsa
  $ mfsa-match --load short.mfsa stream.bin
  mfsa-match: truncated artifact (section directory)
  [1]
  $ printf '\011' | dd of=ruleset.mfsa bs=1 seek=8 conv=notrunc status=none
  $ mfsa-inspect ruleset.mfsa
  mfsa-inspect: ruleset.mfsa: unsupported artifact version 9 (this build reads versions 1-2)
  [1]

Live ruleset updates: incremental adds, retirement and a streaming
session pinned to the generation it opened on.

  $ cat > live.txt <<LIVE
  > add abc
  > add bca
  > # stream on generation 2, then update under it
  > feed abca
  > add cab
  > remove 0
  > feed bca
  > match abcabca
  > reset
  > feed abcabca
  > finish
  > stats
  > compact
  > stats
  > rules
  > LIVE
  $ mfsa-live live.txt
  added rule 0 (gen 1)
  added rule 1 (gen 2)
  match rule=0 pattern=abc end=3
  match rule=1 pattern=bca end=4
  fed 4 bytes (session gen 2, pos 4)
  added rule 2 (gen 3)
  removed rule 0 (gen 4)
  match rule=0 pattern=abc end=6
  match rule=1 pattern=bca end=7
  fed 3 bytes (session gen 2, pos 7)
  match rule=1 pattern=bca end=4
  match rule=2 pattern=cab end=5
  match rule=1 pattern=bca end=7
  3 matches (gen 4)
  session reset (gen 4)
  match rule=1 pattern=bca end=4
  match rule=2 pattern=cab end=5
  match rule=1 pattern=bca end=7
  fed 7 bytes (session gen 4, pos 7)
  stream finished at 7 bytes
  gen 4: 2 rules, 6 states, 5 transitions (1 dead), 0 compactions
  compacted (gen 5)
  gen 5: 2 rules, 5 states, 4 transitions (0 dead), 1 compactions
  rule 1  bca
  rule 2  cab

The same script through another registry engine is indistinguishable:

  $ mfsa-live -e hybrid live.txt > hybrid.out && mfsa-live live.txt > imfant.out && diff hybrid.out imfant.out

A malformed rule is rejected without touching the ruleset; unknown ids
are refused:

  $ printf 'add (broken\nremove 7\nstats\n' | mfsa-live --gc-threshold 0
  error: rule 0 ((broken): at offset 0: unmatched '('
  error: no live rule 7
  gen 0: 0 rules, 0 states, 0 transitions (0 dead), 0 compactions

The metrics command scrapes the live ruleset: every sample carries the
generation it describes, updates are counted by outcome, and engine
series appear once a match has forced the lazy compile:

  $ printf 'add abc\nmatch xabc\nmetrics\n' | mfsa-live | tail -26
  mfsa_engine_states{engine="imfant",generation="1"} 4
  # HELP mfsa_engine_transitions Transitions in the compiled automaton
  # TYPE mfsa_engine_transitions gauge
  mfsa_engine_transitions{engine="imfant",generation="1"} 3
  # HELP mfsa_live_compactions_total Compaction passes run
  # TYPE mfsa_live_compactions_total counter
  mfsa_live_compactions_total{generation="1"} 0
  # HELP mfsa_live_dead_transitions Retired transitions awaiting compaction
  # TYPE mfsa_live_dead_transitions gauge
  mfsa_live_dead_transitions{generation="1"} 0
  # HELP mfsa_live_generation Current ruleset generation
  # TYPE mfsa_live_generation gauge
  mfsa_live_generation{generation="1"} 1
  # HELP mfsa_live_rules Live rules in the current generation
  # TYPE mfsa_live_rules gauge
  mfsa_live_rules{generation="1"} 1
  # HELP mfsa_live_states Builder states, including garbage
  # TYPE mfsa_live_states gauge
  mfsa_live_states{generation="1"} 4
  # HELP mfsa_live_transitions Builder transitions, including dead ones
  # TYPE mfsa_live_transitions gauge
  mfsa_live_transitions{generation="1"} 3
  # HELP mfsa_live_updates_total Ruleset updates by outcome
  # TYPE mfsa_live_updates_total counter
  mfsa_live_updates_total{generation="1",result="ok"} 1
  mfsa_live_updates_total{generation="1",result="rejected"} 0

Metrics export never forces the lazy engine compile itself — before
any match the scrape carries no engine series:

  $ printf 'add abc\nmetrics\n' | mfsa-live | grep -c mfsa_engine
  0
  [1]

--metrics-every dumps the same scrape every N commands, for a
long-running feed:

  $ printf 'add abc\nadd bc\nmatch xabc\n' | mfsa-live --metrics-every 2 | grep '^mfsa_live_generation'
  mfsa_live_generation{generation="2"} 2

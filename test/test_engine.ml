(* Unit tests for the execution engines: iNFAnt, iMFAnt, the domain
   pool and the scheduler projection. *)

module Nfa = Mfsa_automata.Nfa
module Sim = Mfsa_automata.Simulate
module P = Mfsa_frontend.Parser
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module In = Mfsa_engine.Infant
module Im = Mfsa_engine.Imfant
module Pool = Mfsa_engine.Pool
module Schedule = Mfsa_engine.Schedule

let check = Alcotest.check

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

(* ---------------------------------------------------------- Infant *)

let test_infant_agrees_with_simulator () =
  List.iter
    (fun (re, inputs) ->
      let a = fsa_of re in
      let eng = In.compile a in
      List.iter
        (fun s ->
          check
            Alcotest.(list int)
            (Printf.sprintf "%S on %S" re s)
            (Sim.match_ends a s) (In.run eng s))
        inputs)
    [
      ("ab", [ "abcdab"; ""; "ab"; "ba"; "aab" ]);
      ("a+", [ "xaaa"; "aaa"; "bbb" ]);
      ("a(b|c)*d", [ "abcbcd"; "ad"; "abd"; "axd" ]);
      ("[0-9]{2}", [ "a12b345"; "1"; "12" ]);
      (".", [ "ab\ncd" ]);
      ("a*", [ "aaa"; "bab" ]);
    ]

let test_infant_anchored () =
  let a = fsa_of "^ab" in
  let eng = In.compile a in
  check Alcotest.(list int) "start anchor" [ 2 ] (In.run eng "abab");
  check Alcotest.(list int) "no interior" [] (In.run eng "xab");
  let a = fsa_of "ab$" in
  let eng = In.compile a in
  check Alcotest.(list int) "end anchor" [ 4 ] (In.run eng "abab");
  check Alcotest.(list int) "not at end" [] (In.run eng "abx")

let test_infant_count () =
  let eng = In.compile (fsa_of "a") in
  check Alcotest.int "count" 3 (In.count eng "axaxa");
  check Alcotest.int "empty input" 0 (In.count eng "")

let test_infant_rejects_eps () =
  Alcotest.check_raises "eps rejected"
    (Invalid_argument "Infant.compile: automaton must be ε-free") (fun () ->
      ignore (In.compile (Mfsa_automata.Thompson.build_pattern "a|b")))

let test_infant_n_states () =
  let a = fsa_of "abc" in
  check Alcotest.int "n_states" a.Nfa.n_states (In.n_states (In.compile a))

(* ---------------------------------------------------------- Imfant *)

let test_imfant_single_fsa_equals_infant () =
  List.iter
    (fun (re, input) ->
      let a = fsa_of re in
      let infant = In.compile a in
      let imfant = Im.compile (Mfsa.of_fsa a) in
      check
        Alcotest.(list int)
        (Printf.sprintf "%S on %S" re input)
        (In.run infant input)
        (List.map (fun e -> e.Im.end_pos) (Im.run imfant input)))
    [
      ("ab", "abcdabab");
      ("a(b|c)*d", "abcbcdxxad");
      ("[xy]z", "xzyzxz");
      ("a{2,4}", "aaaaaa");
    ]

let test_imfant_match_order () =
  let z = Merge.merge [| fsa_of "ab"; fsa_of "b" |] in
  let eng = Im.compile z in
  let events = Im.run eng "ab" in
  (* Both FSAs match at end position 2 and nothing else. *)
  check Alcotest.(list (pair int int)) "ordered events"
    [ (0, 2); (1, 2) ]
    (List.map (fun e -> (e.Im.fsa, e.Im.end_pos)) events
    |> List.sort (fun (f1, e1) (f2, e2) ->
           if e1 <> e2 then Int.compare e1 e2 else Int.compare f1 f2))

let test_imfant_count_and_per_fsa () =
  let z = Merge.merge [| fsa_of "a"; fsa_of "aa" |] in
  let eng = Im.compile z in
  let input = "aaa" in
  check Alcotest.int "count" 5 (Im.count eng input);
  check Alcotest.(array int) "per fsa" [| 3; 2 |] (Im.count_per_fsa eng input)

let test_imfant_anchors_per_fsa () =
  (* One anchored and one unanchored rule in the same MFSA must keep
     their individual anchor semantics. *)
  let anchored =
    Mfsa_automata.Multiplicity.fuse
      (Mfsa_automata.Epsilon.remove
         (Mfsa_automata.Thompson.build (P.parse_exn "^ab")))
  in
  let z = Merge.merge [| anchored; fsa_of "ab" |] in
  let eng = Im.compile z in
  let per j input =
    List.filter_map
      (fun e -> if e.Im.fsa = j then Some e.Im.end_pos else None)
      (Im.run eng input)
  in
  check Alcotest.(list int) "anchored: pos 0 only" [ 2 ] (per 0 "abab");
  check Alcotest.(list int) "unanchored: everywhere" [ 2; 4 ] (per 1 "abab");
  let end_anchored =
    Mfsa_automata.Multiplicity.fuse
      (Mfsa_automata.Epsilon.remove
         (Mfsa_automata.Thompson.build (P.parse_exn "ab$")))
  in
  let z = Merge.merge [| end_anchored; fsa_of "ab" |] in
  let eng = Im.compile z in
  let per j input =
    List.filter_map
      (fun e -> if e.Im.fsa = j then Some e.Im.end_pos else None)
      (Im.run eng input)
  in
  check Alcotest.(list int) "end-anchored: last only" [ 4 ] (per 0 "abab");
  check Alcotest.(list int) "unanchored: both" [ 2; 4 ] (per 1 "abab")

let test_imfant_stats () =
  let z = Merge.merge [| fsa_of "aaab"; fsa_of "aaac" |] in
  let eng = Im.compile z in
  let _, stats = Im.run_with_stats eng "aaaaaa" in
  check Alcotest.int "positions" 6 stats.Im.positions;
  check Alcotest.bool "avg positive" true (stats.Im.avg_active > 0.);
  check Alcotest.bool "max at least avg" true
    (float_of_int stats.Im.max_active >= stats.Im.avg_active);
  check Alcotest.bool "max bounded by fsas" true (stats.Im.max_active <= 2);
  let _, empty_stats = Im.run_with_stats eng "" in
  check Alcotest.int "empty positions" 0 empty_stats.Im.positions;
  check (Alcotest.float 1e-9) "empty avg" 0. empty_stats.Im.avg_active

let test_imfant_empty_input () =
  let eng = Im.compile (Mfsa.of_fsa (fsa_of "a*")) in
  check Alcotest.int "no matches on empty" 0 (List.length (Im.run eng ""))

let test_imfant_mfsa_accessor () =
  let z = Mfsa.of_fsa (fsa_of "ab") in
  check Alcotest.int "same automaton" z.Mfsa.n_states (Im.mfsa (Im.compile z)).Mfsa.n_states

(* -------------------------------------------------------- Streaming *)

let events_list l = List.map (fun e -> (e.Im.fsa, e.Im.end_pos)) l

let run_chunked eng chunks =
  let s = Im.session eng in
  (* Bind in order: [@] would evaluate [finish] before the feeds. *)
  let fed = List.concat_map (fun c -> Im.feed s c) chunks in
  let flushed = Im.finish s in
  events_list (fed @ flushed)

let test_stream_boundary_spanning () =
  let eng = Im.compile (Merge.merge [| fsa_of "hello"; fsa_of "lo wo" |]) in
  let whole = events_list (Im.run eng "say hello world") in
  check Alcotest.(list (pair int int)) "split mid-match" whole
    (run_chunked eng [ "say hel"; "lo wor"; "ld" ]);
  check Alcotest.(list (pair int int)) "byte at a time" whole
    (run_chunked eng (List.init 15 (String.sub "say hello world" |> fun f i -> f i 1)))

let test_stream_positions_are_global () =
  let eng = Im.compile (Merge.merge [| fsa_of "ab" |]) in
  let s = Im.session eng in
  check Alcotest.(list (pair int int)) "first chunk" [ (0, 2) ]
    (events_list (Im.feed s "ab"));
  check Alcotest.int "position" 2 (Im.position s);
  check Alcotest.(list (pair int int)) "second chunk offsets continue" [ (0, 4) ]
    (events_list (Im.feed s "ab"));
  check Alcotest.(list (pair int int)) "finish empty for unanchored" []
    (events_list (Im.finish s))

let test_stream_end_anchored () =
  let anchored =
    Mfsa_automata.Multiplicity.fuse
      (Mfsa_automata.Epsilon.remove
         (Mfsa_automata.Thompson.build (P.parse_exn "ab$")))
  in
  let eng = Im.compile (Merge.merge [| anchored |]) in
  let s = Im.session eng in
  check Alcotest.(list (pair int int)) "no mid-stream report" []
    (events_list (Im.feed s "abab"));
  check Alcotest.(list (pair int int)) "flushed at finish" [ (0, 4) ]
    (events_list (Im.finish s));
  (* If the stream had continued past the match, nothing reports. *)
  let s = Im.session eng in
  ignore (Im.feed s "ab");
  ignore (Im.feed s "x");
  check Alcotest.(list (pair int int)) "invalidated by continuation" []
    (events_list (Im.finish s))

let test_stream_reset () =
  let eng = Im.compile (Merge.merge [| fsa_of "ab" |]) in
  let s = Im.session eng in
  ignore (Im.feed s "ab");
  Im.reset s;
  check Alcotest.int "position reset" 0 (Im.position s);
  check Alcotest.(list (pair int int)) "fresh run" [ (0, 2) ]
    (events_list (Im.feed s "ab"))

let prop_stream_chunking_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"streaming: any chunking = whole-string run"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let fsas =
           Array.of_list
             (List.map
                (fun r ->
                  Mfsa_automata.Multiplicity.fuse
                    (Mfsa_automata.Epsilon.remove
                       (Mfsa_automata.Thompson.build
                          (Mfsa_automata.Simplify.char_classes_rule
                             (Mfsa_automata.Loops.expand_rule r)))))
                rules)
         in
         let eng = Im.compile (Merge.merge fsas) in
         let whole = events_list (Im.run eng input) in
         (* Split deterministically at a third and two thirds. *)
         let n = String.length input in
         let cut a b = String.sub input a (b - a) in
         let chunks = [ cut 0 (n / 3); cut (n / 3) (2 * n / 3); cut (2 * n / 3) n ] in
         let sort = List.sort compare in
         sort (run_chunked eng chunks) = sort whole))

(* ------------------------------------------------------------ Pool *)

let test_pool_runs_all_jobs () =
  let jobs = Array.init 20 (fun i () -> i * i) in
  let r = Pool.run ~threads:4 ~jobs in
  check Alcotest.(array int) "values in order" (Array.init 20 (fun i -> i * i)) r.Pool.values;
  check Alcotest.int "job times recorded" 20 (Array.length r.Pool.job_times);
  check Alcotest.bool "makespan positive" true (r.Pool.makespan >= 0.)

let test_pool_single_thread () =
  let order = ref [] in
  let jobs = Array.init 5 (fun i () -> order := i :: !order) in
  ignore (Pool.run ~threads:1 ~jobs);
  check Alcotest.(list int) "sequential order" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_pool_more_threads_than_jobs () =
  let r = Pool.run ~threads:64 ~jobs:(Array.init 3 (fun i () -> i)) in
  check Alcotest.(array int) "all done" [| 0; 1; 2 |] r.Pool.values

let test_pool_zero_jobs () =
  let r = Pool.run ~threads:2 ~jobs:([||] : (unit -> int) array) in
  check Alcotest.int "no values" 0 (Array.length r.Pool.values)

let test_pool_rejects_bad_threads () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Pool.run: need at least one thread") (fun () ->
      ignore (Pool.run ~threads:0 ~jobs:[| (fun () -> ()) |]))

(* The documented contract for raising jobs: the pool drains — every
   other job still executes exactly once — and only then is the
   exception re-raised on the caller. *)
let test_pool_propagates_exception () =
  let ran = Array.make 8 0 in
  let jobs =
    Array.init 8 (fun i () ->
        if i = 3 then failwith "boom"
        else begin
          ran.(i) <- ran.(i) + 1;
          i
        end)
  in
  (match Pool.run ~threads:2 ~jobs with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> check Alcotest.string "propagated" "boom" msg);
  Array.iteri
    (fun i n ->
      check Alcotest.int
        (Printf.sprintf "job %d ran %s" i
           (if i = 3 then "zero times (it raised)" else "once despite the abort"))
        (if i = 3 then 0 else 1)
        n)
    ran;
  (* Same contract when the raising job is the last one handed out. *)
  let tail_ran = ref 0 in
  (match
     Pool.run ~threads:3
       ~jobs:[| (fun () -> incr tail_ran); (fun () -> incr tail_ran);
                (fun () -> failwith "late") |]
   with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> check Alcotest.string "late propagated" "late" msg);
  check Alcotest.int "earlier jobs all ran" 2 !tail_ran

let test_pool_matches_match_sequential () =
  (* Pool execution of MFSAs returns the same counts as sequential. *)
  let rules = [| "abc"; "abd"; "xy"; "a+" |] in
  let fsas = Array.map fsa_of rules in
  let zs = Array.of_list (Merge.merge_groups ~m:2 fsas) in
  let input = "abcabdxyaaa" in
  let engines = Array.map Im.compile zs in
  let sequential = Array.map (fun e -> Im.count e input) engines in
  let pooled = Pool.run ~threads:3 ~jobs:(Array.map (fun e () -> Im.count e input) engines) in
  check Alcotest.(array int) "same counts" sequential pooled.Pool.values

(* -------------------------------------------------------- Schedule *)

let test_schedule_single_thread_sums () =
  check (Alcotest.float 1e-9) "sum" 6. (Schedule.project ~threads:1 [| 1.; 2.; 3. |])

let test_schedule_full_parallel () =
  check (Alcotest.float 1e-9) "max" 3. (Schedule.project ~threads:3 [| 1.; 2.; 3. |]);
  check (Alcotest.float 1e-9) "extra threads idle" 3.
    (Schedule.project ~threads:100 [| 1.; 2.; 3. |])

let test_schedule_greedy_order () =
  (* Jobs 4,3,3 on 2 workers, taken in order: w1←4, w2←3, w2←3 → 6. *)
  check (Alcotest.float 1e-9) "greedy in order" 6.
    (Schedule.project ~threads:2 [| 4.; 3.; 3. |]);
  (* 3,3,4: w1←3, w2←3, w1←4 → 7: in-order greedy is not optimal. *)
  check (Alcotest.float 1e-9) "order sensitivity" 7.
    (Schedule.project ~threads:2 [| 3.; 3.; 4. |])

let test_schedule_empty_and_errors () =
  check (Alcotest.float 1e-9) "empty" 0. (Schedule.project ~threads:4 [||]);
  Alcotest.check_raises "bad threads"
    (Invalid_argument "Schedule.project: need at least one thread") (fun () ->
      ignore (Schedule.project ~threads:0 [| 1. |]));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Schedule.project: negative duration") (fun () ->
      ignore (Schedule.project ~threads:1 [| -1. |]))

let test_schedule_speedup () =
  check (Alcotest.float 1e-9) "perfect 2x" 2.
    (Schedule.speedup ~threads:2 [| 1.; 1.; 1.; 1. |]);
  check (Alcotest.float 1e-9) "empty" 1. (Schedule.speedup ~threads:8 [||])

let test_schedule_best_threads () =
  (* 4 equal jobs: 2 threads reach makespan 2 = target. *)
  check Alcotest.int "reaches with 2" 2
    (Schedule.best_threads_within ~tolerance:0.0 ~target:2. [| 1.; 1.; 1.; 1. |]);
  check Alcotest.int "unreachable caps at n" 4
    (Schedule.best_threads_within ~tolerance:0.0 ~target:0.5 [| 1.; 1.; 1.; 1. |])

let test_schedule_monotone () =
  let times = Array.init 50 (fun i -> float_of_int (1 + (i mod 7))) in
  let prev = ref infinity in
  List.iter
    (fun t ->
      let m = Schedule.project ~threads:t times in
      check Alcotest.bool (Printf.sprintf "T=%d no slower" t) true (m <= !prev +. 1e-9);
      prev := m)
    [ 1; 2; 4; 8; 16; 32 ]

let () =
  Alcotest.run "engine"
    [
      ( "infant",
        [
          Alcotest.test_case "agrees with simulator" `Quick test_infant_agrees_with_simulator;
          Alcotest.test_case "anchors" `Quick test_infant_anchored;
          Alcotest.test_case "count" `Quick test_infant_count;
          Alcotest.test_case "rejects eps" `Quick test_infant_rejects_eps;
          Alcotest.test_case "n_states" `Quick test_infant_n_states;
        ] );
      ( "imfant",
        [
          Alcotest.test_case "single-FSA equals iNFAnt" `Quick
            test_imfant_single_fsa_equals_infant;
          Alcotest.test_case "match ordering" `Quick test_imfant_match_order;
          Alcotest.test_case "count and per-fsa" `Quick test_imfant_count_and_per_fsa;
          Alcotest.test_case "per-FSA anchors" `Quick test_imfant_anchors_per_fsa;
          Alcotest.test_case "active-set stats" `Quick test_imfant_stats;
          Alcotest.test_case "empty input" `Quick test_imfant_empty_input;
          Alcotest.test_case "mfsa accessor" `Quick test_imfant_mfsa_accessor;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "boundary spanning" `Quick test_stream_boundary_spanning;
          Alcotest.test_case "global positions" `Quick test_stream_positions_are_global;
          Alcotest.test_case "end-anchored at finish" `Quick test_stream_end_anchored;
          Alcotest.test_case "reset" `Quick test_stream_reset;
          prop_stream_chunking_invariant;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs all jobs" `Quick test_pool_runs_all_jobs;
          Alcotest.test_case "single thread order" `Quick test_pool_single_thread;
          Alcotest.test_case "more threads than jobs" `Quick test_pool_more_threads_than_jobs;
          Alcotest.test_case "zero jobs" `Quick test_pool_zero_jobs;
          Alcotest.test_case "rejects bad thread count" `Quick test_pool_rejects_bad_threads;
          Alcotest.test_case "propagates exceptions" `Quick test_pool_propagates_exception;
          Alcotest.test_case "pooled matches = sequential" `Quick
            test_pool_matches_match_sequential;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "single thread sums" `Quick test_schedule_single_thread_sums;
          Alcotest.test_case "full parallelism" `Quick test_schedule_full_parallel;
          Alcotest.test_case "greedy order" `Quick test_schedule_greedy_order;
          Alcotest.test_case "empty and errors" `Quick test_schedule_empty_and_errors;
          Alcotest.test_case "speedup" `Quick test_schedule_speedup;
          Alcotest.test_case "best thread utilisation" `Quick test_schedule_best_threads;
          Alcotest.test_case "monotone in threads" `Quick test_schedule_monotone;
        ] );
    ]

(* The networked serving daemon: wire-protocol round-trips, framing
   error paths, and the server end-to-end over loopback — result
   fidelity vs in-process execution, concurrent clients, live admin
   visibility across generation swaps, deadlines, graceful shutdown
   and fault-injected serving. *)

module P = Mfsa_served.Protocol
module Served = Mfsa_served.Served
module Client = Mfsa_served.Client
module Live = Mfsa_live.Live
module Serve = Mfsa_serve.Serve

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

let event =
  Alcotest.testable
    (fun ppf e -> Format.fprintf ppf "{rule=%d; end=%d}" e.P.rule e.P.end_pos)
    ( = )

let events = Alcotest.list event

let results = Alcotest.array events

(* ------------------------------------------------- Protocol units *)

let all_error_codes =
  [
    P.Bad_magic; P.Bad_version; P.Bad_opcode; P.Frame_too_large; P.Malformed;
    P.Deadline; P.Closed; P.Rejected; P.Timeout; P.Compile_failed;
    P.Unknown_rule; P.Job_failed;
  ]

let test_error_code_roundtrip () =
  List.iter
    (fun c ->
      match P.error_code_of_int (P.error_code_to_int c) with
      | Some c' ->
          check Alcotest.string "code" (P.error_code_to_string c)
            (P.error_code_to_string c')
      | None -> Alcotest.failf "code %s lost" (P.error_code_to_string c))
    all_error_codes;
  check Alcotest.bool "unknown wire value rejected" true
    (P.error_code_of_int 77 = None)

let header_of frame = String.sub (P.encode_frame frame) 0 P.header_len

let test_header_errors () =
  let good = header_of { P.opcode = 0x01; payload = "" } in
  (match P.decode_header good with
  | Ok (op, len) ->
      check Alcotest.int "opcode" 1 op;
      check Alcotest.int "len" 0 len
  | Error e -> Alcotest.failf "good header rejected: %s" (P.err_to_string e));
  let corrupt i c =
    let b = Bytes.of_string good in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (match P.decode_header (corrupt 0 'X') with
  | Error { P.code = P.Bad_magic; _ } -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (match P.decode_header (corrupt 4 '\002') with
  | Error { P.code = P.Bad_version; _ } -> ()
  | _ -> Alcotest.fail "bad version accepted");
  match P.decode_header "MFSA" with
  | Error { P.code = P.Malformed; _ } -> ()
  | _ -> Alcotest.fail "short header accepted"

let test_trailing_bytes_malformed () =
  let { P.opcode; payload } = P.request_to_frame (P.Submit [| "ab" |]) in
  match P.request_of_frame { P.opcode; payload = payload ^ "\000" } with
  | Error { P.code = P.Malformed; _ } -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (P.err_to_string e)

let test_truncated_payload_malformed () =
  let { P.opcode; payload } = P.request_to_frame (P.Admin (P.Add "abcdef")) in
  match
    P.request_of_frame
      { P.opcode; payload = String.sub payload 0 (String.length payload - 2) }
  with
  | Error { P.code = P.Malformed; _ } -> ()
  | _ -> Alcotest.fail "truncated payload accepted"

let test_unknown_opcode () =
  match P.request_of_frame { P.opcode = 0x7E; payload = "" } with
  | Error { P.code = P.Bad_opcode; _ } -> ()
  | _ -> Alcotest.fail "unknown opcode accepted"

(* ----------------------------------------- Round-trip properties *)

let gen_bytes = QCheck2.Gen.(small_string ~gen:char)

let gen_request =
  let open QCheck2.Gen in
  oneof
    [
      return P.Ping;
      map (fun l -> P.Submit (Array.of_list l)) (small_list gen_bytes);
      map (fun b -> P.Metrics (if b then P.Prometheus else P.Json)) bool;
      map (fun s -> P.Admin (P.Add s)) gen_bytes;
      map (fun i -> P.Admin (P.Remove i)) small_nat;
      return (P.Admin P.List_rules);
      return P.Shutdown;
    ]

let gen_event =
  QCheck2.Gen.map2
    (fun rule end_pos -> { P.rule; end_pos })
    QCheck2.Gen.small_nat QCheck2.Gen.small_nat

let gen_response =
  let open QCheck2.Gen in
  oneof
    [
      return P.Pong;
      map
        (fun l -> P.Results (Array.of_list l))
        (small_list (small_list gen_event));
      map (fun s -> P.Metrics_data s) gen_bytes;
      map2 (fun rule generation -> P.Added { rule; generation }) small_nat
        small_nat;
      map (fun generation -> P.Removed { generation }) small_nat;
      map2
        (fun generation rules -> P.Rule_list { generation; rules })
        small_nat
        (small_list (pair small_nat gen_bytes));
      return P.Bye;
      map2
        (fun code message -> P.Error { code; message })
        (oneofl all_error_codes) gen_bytes;
    ]

let prop_request_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"request_of_frame . request_to_frame = id"
    gen_request (fun r -> P.request_of_frame (P.request_to_frame r) = Ok r)

let prop_response_roundtrip =
  QCheck2.Test.make ~count:500
    ~name:"response_of_frame . response_to_frame = id" gen_response (fun r ->
      P.response_of_frame (P.response_to_frame r) = Ok r)

(* A whole frame also survives the byte level: encode_frame, then
   decode_header + payload split must reproduce the frame. *)
let prop_frame_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"encode_frame survives the byte level"
    gen_request (fun r ->
      let f = P.request_to_frame r in
      let wire = P.encode_frame f in
      match P.decode_header (String.sub wire 0 P.header_len) with
      | Ok (opcode, len) ->
          opcode = f.P.opcode
          && len = String.length f.P.payload
          && String.sub wire P.header_len len = f.P.payload
      | Error _ -> false)

(* ------------------------------------------------------ Server e2e *)

let rules = [| "abc"; "a.c"; "q+" |]

let host = "127.0.0.1"

let with_server ?config rules f =
  let t = Result.get_ok (Served.create ?config rules) in
  let th = Thread.create Served.serve t in
  Fun.protect
    ~finally:(fun () ->
      Served.stop t;
      Thread.join th)
    (fun () -> f t)

let connect ?read_deadline t =
  Result.get_ok (Client.connect ?read_deadline ~host ~port:(Served.port t) ())

let with_client ?config ?read_deadline rules f =
  with_server ?config rules (fun t ->
      let c = connect ?read_deadline t in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f t c))

let expected_of ?(rules = rules) input =
  let lv = Result.get_ok (Live.of_rules rules) in
  List.map
    (fun e -> { P.rule = e.Live.rule; end_pos = e.Live.end_pos })
    (Live.run lv input)

let test_ping () = with_client rules (fun _ c -> Result.get_ok (Client.ping c))

let test_submit_matches_live () =
  with_client rules (fun _ c ->
      let inputs = [| "xxabcxx"; "aXcq"; ""; "qqq" |] in
      let got = Result.get_ok (Client.submit c inputs) in
      check results "wire results = in-process Live.run"
        (Array.map expected_of inputs)
        got)

let test_empty_ruleset () =
  with_client [||] (fun _ c ->
      let got = Result.get_ok (Client.submit c [| "anything"; "" |]) in
      check results "no rules, no events" [| []; [] |] got)

let test_sequential_requests_one_connection () =
  with_client rules (fun _ c ->
      for i = 1 to 20 do
        let input = String.concat "" (List.init i (fun _ -> "abcq")) in
        let got = Result.get_ok (Client.submit c [| input |]) in
        check results "pipelined request" [| expected_of input |] got
      done)

let test_concurrent_clients_identical () =
  with_server rules (fun t ->
      let inputs = [| "zabcz"; "aacq"; "abcabc" |] in
      let expected = Array.map expected_of inputs in
      let failures = Atomic.make 0 in
      let worker () =
        let c = connect t in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            for _ = 1 to 25 do
              match Client.submit c inputs with
              | Ok got when got = expected -> ()
              | _ -> Atomic.incr failures
            done)
      in
      let threads = List.init 4 (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      check Alcotest.int "every concurrent result byte-identical" 0
        (Atomic.get failures))

(* Remote admin vs in-flight traffic: while one client adds a rule,
   every concurrently served batch must equal either the old or the
   new generation's sequential results — never a mixture — and a
   batch submitted after the ADMIN response must see the new rule. *)
let test_admin_add_generations () =
  with_server rules (fun t ->
      let input = "habcq" in
      let old_expected = expected_of input in
      let new_rules = Array.append rules [| "h.b" |] in
      let new_expected = expected_of ~rules:new_rules input in
      check Alcotest.bool "the added rule changes this input's results" true
        (old_expected <> new_expected);
      let mixtures = Atomic.make 0 in
      let stop = Atomic.make false in
      let submitter () =
        let c = connect t in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            while not (Atomic.get stop) do
              match Client.submit c [| input |] with
              | Ok [| got |] ->
                  if got <> old_expected && got <> new_expected then
                    Atomic.incr mixtures
              | _ -> Atomic.incr mixtures
            done)
      in
      let threads = List.init 2 (fun _ -> Thread.create submitter ()) in
      let c = connect t in
      let rule, generation = Result.get_ok (Client.add_rule c "h.b") in
      Atomic.set stop true;
      List.iter Thread.join threads;
      check Alcotest.int "stable id continues the sequence" 3 rule;
      check Alcotest.int "generation advanced" 1 generation;
      check Alcotest.int "no mixed-generation result" 0 (Atomic.get mixtures);
      let got = Result.get_ok (Client.submit c [| input |]) in
      check results "post-admin submit sees the new rule" [| new_expected |] got;
      Client.close c)

let test_admin_remove_and_list () =
  with_client rules (fun _ c ->
      let generation, listed = Result.get_ok (Client.list_rules c) in
      check Alcotest.int "initial generation" 0 generation;
      check
        Alcotest.(list (pair int string))
        "listing is (id, pattern) in id order"
        [ (0, "abc"); (1, "a.c"); (2, "q+") ]
        listed;
      let generation = Result.get_ok (Client.remove_rule c 1) in
      check Alcotest.int "remove advances the generation" 1 generation;
      (match Client.remove_rule c 1 with
      | Error msg ->
          check Alcotest.bool "typed unknown-rule error" true
            (String.length msg >= 12 && String.sub msg 0 12 = "unknown-rule")
      | Ok _ -> Alcotest.fail "double remove accepted");
      let got = Result.get_ok (Client.submit c [| "azc" |]) in
      check results "removed rule no longer matches" [| [] |] got)

let test_compile_error_is_typed () =
  with_client rules (fun _ c ->
      match Client.add_rule c "a(" with
      | Error msg ->
          check Alcotest.bool "compile-failed error" true
            (String.length msg >= 14 && String.sub msg 0 14 = "compile-failed")
      | Ok _ -> Alcotest.fail "malformed pattern accepted")

let test_metrics_exposition () =
  with_client rules (fun _ c ->
      ignore (Result.get_ok (Client.submit c [| "abc" |]));
      let body = Result.get_ok (Client.metrics c P.Prometheus) in
      let has needle =
        let n = String.length needle and m = String.length body in
        let rec go i = i + n <= m && (String.sub body i n = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun series ->
          check Alcotest.bool (series ^ " present") true (has series))
        [
          "mfsa_process_start_time_seconds";
          "mfsa_process_connections_active";
          "mfsa_served_requests_total";
          "mfsa_served_connections_total";
          "mfsa_live_generation";
          "mfsa_serve_inputs_total";
          "# TYPE";
        ];
      let json = Result.get_ok (Client.metrics c P.Json) in
      check Alcotest.bool "json body is an array" true
        (String.length json > 0 && json.[0] = '['))

let test_remote_shutdown_drains () =
  let t = Result.get_ok (Served.create rules) in
  let served = Thread.create Served.serve t in
  let c = Result.get_ok (Client.connect ~host ~port:(Served.port t) ()) in
  Result.get_ok (Client.shutdown c);
  Client.close c;
  (* serve must return on its own — no Served.stop from this side. *)
  Thread.join served;
  match Client.connect ~host ~port:(Served.port t) () with
  | Ok c2 -> (
      Client.close c2;
      Alcotest.fail "listener still accepting after drain")
  | Error _ -> ()

let test_submit_after_stop_rejected () =
  with_client rules (fun t c ->
      Served.stop t;
      (* The connection drains: the in-flight stop closes the read
         side, so the submit either gets the typed Closed error or
         finds the connection gone. Both are clean outcomes; what must
         not happen is a hang or an untyped failure. *)
      match Client.submit c [| "abc" |] with
      | Error _ -> ()
      | Ok _ -> () (* raced the drain and won: also fine *))

(* --------------------------------------------- Framing error paths *)

let raw_connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, Served.port t));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  fd

let send_all fd s = ignore (Unix.write_substring fd s 0 (String.length s) : int)

let test_oversize_frame_rejected () =
  let config = { Served.default_config with max_frame = 1024 } in
  with_server ~config rules (fun t ->
      let fd = raw_connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let b = Buffer.create 16 in
          Buffer.add_string b "MFSA\001\002";
          Buffer.add_int32_be b 2048l;
          send_all fd (Buffer.contents b);
          (match P.read_frame fd with
          | P.Frame f -> (
              match P.response_of_frame f with
              | Ok (P.Error { P.code = P.Frame_too_large; _ }) -> ()
              | r ->
                  Alcotest.failf "wanted frame-too-large, got %s"
                    (match r with Ok _ -> "another response" | Error e ->
                       P.err_to_string e))
          | _ -> Alcotest.fail "no error frame");
          check Alcotest.bool "connection closed after framing error" true
            (P.read_frame fd = P.Eof)))

let test_bad_magic_rejected () =
  with_server rules (fun t ->
      let fd = raw_connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send_all fd "XXXX\001\001\000\000\000\000";
          match P.read_frame fd with
          | P.Frame f -> (
              match P.response_of_frame f with
              | Ok (P.Error { P.code = P.Bad_magic; _ }) -> ()
              | _ -> Alcotest.fail "wanted bad-magic error")
          | _ -> Alcotest.fail "no error frame"))

let test_read_deadline_expires () =
  let config = { Served.default_config with read_deadline = 0.2 } in
  with_server ~config rules (fun t ->
      let fd = raw_connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (* Send nothing: the server must time the connection out and
             answer with the typed Deadline error before closing. *)
          match P.read_frame fd with
          | P.Frame f -> (
              match P.response_of_frame f with
              | Ok (P.Error { P.code = P.Deadline; _ }) -> ()
              | _ -> Alcotest.fail "wanted deadline error")
          | P.Eof -> () (* close-without-reply is acceptable on some stacks *)
          | P.Fail e -> Alcotest.failf "read failed: %s" (P.err_to_string e)))

(* ------------------------------------------------- Fault injection *)

let test_faulty_engine_serves_clean_results () =
  let config =
    {
      Served.default_config with
      engine = "faulty{seed=5,fail_every=40,poison_every=130}:imfant";
      retries = 6;
      backoff = 0.0002;
    }
  in
  with_client ~config rules (fun _ c ->
      let inputs = [| "abcq"; "azc"; "qabc"; "noise" |] in
      let expected = Array.map expected_of inputs in
      for _ = 1 to 10 do
        let got = Result.get_ok (Client.submit c inputs) in
        check results "faulty engine + retries = clean baseline" expected got
      done)

let () =
  Alcotest.run "served"
    [
      ( "protocol",
        [
          Alcotest.test_case "error codes round-trip" `Quick
            test_error_code_roundtrip;
          Alcotest.test_case "header errors" `Quick test_header_errors;
          Alcotest.test_case "trailing bytes" `Quick
            test_trailing_bytes_malformed;
          Alcotest.test_case "truncated payload" `Quick
            test_truncated_payload_malformed;
          Alcotest.test_case "unknown opcode" `Quick test_unknown_opcode;
          qtest prop_request_roundtrip;
          qtest prop_response_roundtrip;
          qtest prop_frame_roundtrip;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "submit = Live.run" `Quick
            test_submit_matches_live;
          Alcotest.test_case "empty ruleset" `Quick test_empty_ruleset;
          Alcotest.test_case "sequential requests" `Quick
            test_sequential_requests_one_connection;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients_identical;
          Alcotest.test_case "admin add vs in-flight" `Quick
            test_admin_add_generations;
          Alcotest.test_case "admin remove + list" `Quick
            test_admin_remove_and_list;
          Alcotest.test_case "compile error typed" `Quick
            test_compile_error_is_typed;
          Alcotest.test_case "metrics exposition" `Quick
            test_metrics_exposition;
          Alcotest.test_case "remote shutdown drains" `Quick
            test_remote_shutdown_drains;
          Alcotest.test_case "submit after stop" `Quick
            test_submit_after_stop_rejected;
        ] );
      ( "framing",
        [
          Alcotest.test_case "oversize frame" `Quick
            test_oversize_frame_rejected;
          Alcotest.test_case "bad magic" `Quick test_bad_magic_rejected;
          Alcotest.test_case "read deadline" `Quick test_read_deadline_expires;
        ] );
      ( "faults",
        [
          Alcotest.test_case "faulty engine, clean results" `Quick
            test_faulty_engine_serves_clean_results;
        ] );
    ]

(* Unit and property tests for the 256-byte character classes. *)

module C = Mfsa_charset.Charclass

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let cls = Alcotest.testable C.pp C.equal

let test_empty_full () =
  check Alcotest.bool "empty is empty" true (C.is_empty C.empty);
  check Alcotest.bool "full is full" true (C.is_full C.full);
  check Alcotest.int "empty cardinal" 0 (C.cardinal C.empty);
  check Alcotest.int "full cardinal" 256 (C.cardinal C.full);
  check Alcotest.bool "full has NUL" true (C.mem C.full '\000');
  check Alcotest.bool "full has 0xff" true (C.mem C.full '\255')

let test_singleton () =
  let s = C.singleton 'x' in
  check Alcotest.bool "mem" true (C.mem s 'x');
  check Alcotest.bool "not mem" false (C.mem s 'y');
  check Alcotest.int "cardinal" 1 (C.cardinal s);
  check Alcotest.(option char) "is_singleton" (Some 'x') (C.is_singleton s);
  check Alcotest.(option char) "not singleton" None
    (C.is_singleton (C.of_string "xy"))

let test_range () =
  let r = C.range 'a' 'f' in
  check Alcotest.int "cardinal" 6 (C.cardinal r);
  check Alcotest.bool "lo" true (C.mem r 'a');
  check Alcotest.bool "hi" true (C.mem r 'f');
  check Alcotest.bool "outside" false (C.mem r 'g');
  check cls "degenerate range" (C.singleton 'q') (C.range 'q' 'q');
  Alcotest.check_raises "reversed" (Invalid_argument "Charclass.range: hi < lo")
    (fun () -> ignore (C.range 'f' 'a'))

let test_boolean_algebra () =
  let a = C.of_string "abc" and b = C.of_string "bcd" in
  check cls "union" (C.of_string "abcd") (C.union a b);
  check cls "inter" (C.of_string "bc") (C.inter a b);
  check cls "diff" (C.singleton 'a') (C.diff a b);
  check cls "complement twice" a (C.complement (C.complement a));
  check cls "de morgan"
    (C.complement (C.union a b))
    (C.inter (C.complement a) (C.complement b))

let test_add_remove () =
  let s = C.add C.empty 'k' in
  check Alcotest.bool "added" true (C.mem s 'k');
  check Alcotest.bool "removed" false (C.mem (C.remove s 'k') 'k')

let test_subset_disjoint () =
  check Alcotest.bool "subset" true (C.subset (C.of_string "ab") (C.of_string "abc"));
  check Alcotest.bool "not subset" false (C.subset (C.of_string "ax") (C.of_string "abc"));
  check Alcotest.bool "disjoint" true (C.disjoint (C.of_string "ab") (C.of_string "xy"));
  check Alcotest.bool "not disjoint" false (C.disjoint (C.of_string "ab") (C.of_string "bx"));
  check Alcotest.bool "empty subset of all" true (C.subset C.empty C.empty)

let test_iter_fold_choose () =
  let s = C.of_string "cab" in
  let collected = ref [] in
  C.iter (fun c -> collected := c :: !collected) s;
  check Alcotest.(list char) "iter ascending" [ 'a'; 'b'; 'c' ] (List.rev !collected);
  check Alcotest.int "fold count" 3 (C.fold (fun _ n -> n + 1) s 0);
  check Alcotest.(option char) "choose" (Some 'a') (C.choose s);
  check Alcotest.(option char) "choose empty" None (C.choose C.empty);
  check Alcotest.(list char) "to_list" [ 'a'; 'b'; 'c' ] (C.to_list s)

let test_to_ranges () =
  let s = C.union (C.range 'a' 'c') (C.singleton 'k') in
  check
    Alcotest.(list (pair char char))
    "two ranges"
    [ ('a', 'c'); ('k', 'k') ]
    (C.to_ranges s);
  check cls "of_ranges inverse" s (C.of_ranges (C.to_ranges s));
  check Alcotest.(list (pair char char)) "empty" [] (C.to_ranges C.empty);
  check
    Alcotest.(list (pair char char))
    "full is one range"
    [ ('\000', '\255') ]
    (C.to_ranges C.full)

let test_posix () =
  check Alcotest.int "digit" 10 (C.cardinal (Option.get (C.posix "digit")));
  check Alcotest.int "alpha" 52 (C.cardinal (Option.get (C.posix "alpha")));
  check Alcotest.int "alnum" 62 (C.cardinal (Option.get (C.posix "alnum")));
  check Alcotest.int "xdigit" 22 (C.cardinal (Option.get (C.posix "xdigit")));
  check Alcotest.int "upper" 26 (C.cardinal (Option.get (C.posix "upper")));
  check Alcotest.int "space" 6 (C.cardinal (Option.get (C.posix "space")));
  check Alcotest.bool "punct has no letters" false
    (C.mem (Option.get (C.posix "punct")) 'a');
  check Alcotest.bool "unknown" true (C.posix "bogus" = None);
  (* alnum ∪ punct = graph *)
  check cls "graph decomposition"
    (Option.get (C.posix "graph"))
    (C.union (Option.get (C.posix "alnum")) (Option.get (C.posix "punct")))

let test_dot () =
  check Alcotest.bool "dot has a" true (C.mem C.dot 'a');
  check Alcotest.bool "dot lacks newline" false (C.mem C.dot '\n');
  check Alcotest.int "dot cardinal" 255 (C.cardinal C.dot)

let test_pp () =
  check Alcotest.string "singleton" "x" (C.to_spec (C.singleton 'x'));
  check Alcotest.string "range" "[a-f]" (C.to_spec (C.range 'a' 'f'));
  check Alcotest.string "two-element" "[ab]" (C.to_spec (C.of_string "ab"));
  check Alcotest.string "escaped single" "\\]" (C.to_spec (C.singleton ']'));
  check Alcotest.string "non-printable" "[\\x00-\\x03]"
    (C.to_spec (C.range '\000' '\003'))

let test_equal_compare_hash () =
  let a = C.of_string "mn" and b = C.of_string "nm" in
  check Alcotest.bool "order-insensitive equal" true (C.equal a b);
  check Alcotest.int "compare equal" 0 (C.compare a b);
  check Alcotest.int "hash equal" (C.hash a) (C.hash b);
  check Alcotest.bool "different" false (C.equal a (C.of_string "mo"))

let byte = QCheck2.Gen.map Char.chr (QCheck2.Gen.int_range 0 255)

let gen_class =
  QCheck2.Gen.map C.of_list (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 24) byte)

let prop_union_cardinal =
  QCheck2.Test.make ~name:"charclass: |a∪b| = |a|+|b|-|a∩b|" ~count:300
    (QCheck2.Gen.pair gen_class gen_class) (fun (a, b) ->
      C.cardinal (C.union a b) = C.cardinal a + C.cardinal b - C.cardinal (C.inter a b))

let prop_mem_union =
  QCheck2.Test.make ~name:"charclass: membership distributes over ops" ~count:300
    (QCheck2.Gen.triple gen_class gen_class byte) (fun (a, b, c) ->
      C.mem (C.union a b) c = (C.mem a c || C.mem b c)
      && C.mem (C.inter a b) c = (C.mem a c && C.mem b c)
      && C.mem (C.diff a b) c = (C.mem a c && not (C.mem b c))
      && C.mem (C.complement a) c = not (C.mem a c))

let prop_ranges_roundtrip =
  QCheck2.Test.make ~name:"charclass: to_ranges/of_ranges roundtrip" ~count:300
    gen_class (fun a -> C.equal a (C.of_ranges (C.to_ranges a)))

let () =
  Alcotest.run "charclass"
    [
      ( "charclass",
        [
          Alcotest.test_case "empty and full" `Quick test_empty_full;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "boolean algebra" `Quick test_boolean_algebra;
          Alcotest.test_case "add and remove" `Quick test_add_remove;
          Alcotest.test_case "subset and disjoint" `Quick test_subset_disjoint;
          Alcotest.test_case "iteration" `Quick test_iter_fold_choose;
          Alcotest.test_case "to_ranges" `Quick test_to_ranges;
          Alcotest.test_case "posix classes" `Quick test_posix;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "pretty-printing" `Quick test_pp;
          Alcotest.test_case "equal, compare, hash" `Quick test_equal_compare_hash;
          qtest prop_union_cardinal;
          qtest prop_mem_union;
          qtest prop_ranges_roundtrip;
        ] );
    ]

(* Unit tests for the POSIX ERE lexer. *)

module L = Mfsa_frontend.Lexer
module C = Mfsa_charset.Charclass

let check = Alcotest.check

let token = Alcotest.testable L.pp_token (fun a b -> a = b)

let tokens src =
  match L.tokenize src with
  | Ok toks -> Array.to_list (Array.map (fun (l : L.located) -> l.L.token) toks)
  | Error e -> Alcotest.failf "unexpected lex error at %d: %s" e.L.pos e.L.message

let positions src =
  match L.tokenize src with
  | Ok toks -> Array.to_list (Array.map (fun (l : L.located) -> l.L.pos) toks)
  | Error e -> Alcotest.failf "unexpected lex error at %d: %s" e.L.pos e.L.message

let lex_fails src =
  match L.tokenize src with
  | Ok _ -> Alcotest.failf "expected %S to fail lexing" src
  | Error e -> e

let test_literals () =
  check (Alcotest.list token) "plain" [ L.Char 'a'; L.Char 'b' ] (tokens "ab");
  check (Alcotest.list token) "digits and punct"
    [ L.Char '1'; L.Char '-'; L.Char ','; L.Char '=' ]
    (tokens "1-,=")

let test_operators () =
  check (Alcotest.list token) "all operators"
    [ L.Lparen; L.Char 'a'; L.Bar; L.Char 'b'; L.Rparen; L.Star; L.Plus; L.Quest; L.Dot ]
    (tokens "(a|b)*+?.")

let test_anchors () =
  check (Alcotest.list token) "anchors" [ L.Caret; L.Char 'a'; L.Dollar ] (tokens "^a$")

let test_positions () =
  check (Alcotest.list Alcotest.int) "byte offsets" [ 0; 1; 5; 6 ] (positions "a[bc]d*")

let test_escapes () =
  check (Alcotest.list token) "control escapes"
    [ L.Char '\n'; L.Char '\t'; L.Char '\r'; L.Char '\000' ]
    (tokens "\\n\\t\\r\\0");
  check (Alcotest.list token) "meta escapes"
    [ L.Char '.'; L.Char '*'; L.Char '\\'; L.Char '(' ]
    (tokens "\\.\\*\\\\\\(");
  check (Alcotest.list token) "hex escape" [ L.Char 'A'; L.Char '\255' ]
    (tokens "\\x41\\xff")

let test_escape_errors () =
  let e = lex_fails "\\" in
  check Alcotest.string "dangling" "dangling backslash" e.L.message;
  let e = lex_fails "\\x4" in
  check Alcotest.bool "short hex" true
    (e.L.message = "\\x escape requires two hexadecimal digits");
  let e = lex_fails "\\q" in
  check Alcotest.string "unknown escape" "unknown escape sequence '\\q'" e.L.message

let test_class_shorthands () =
  check (Alcotest.list token) "\\d" [ L.Class (C.range '0' '9') ] (tokens "\\d");
  (match tokens "\\w" with
  | [ L.Class c ] ->
      check Alcotest.bool "w has underscore" true (C.mem c '_');
      check Alcotest.int "w cardinal" 63 (C.cardinal c)
  | _ -> Alcotest.fail "expected one class token");
  match (tokens "\\D", tokens "\\S") with
  | [ L.Class d ], [ L.Class s ] ->
      check Alcotest.bool "D complements d" false (C.mem d '5');
      check Alcotest.bool "S complements s" false (C.mem s ' ')
  | _ -> Alcotest.fail "expected class tokens"

let test_brackets_basic () =
  check (Alcotest.list token) "set" [ L.Class (C.of_string "abc") ] (tokens "[cba]");
  check (Alcotest.list token) "range" [ L.Class (C.range '0' '9') ] (tokens "[0-9]");
  check (Alcotest.list token) "multi-range"
    [ L.Class (C.union (C.range 'a' 'f') (C.range 'A' 'F')) ]
    (tokens "[a-fA-F]")

let test_brackets_negation () =
  match tokens "[^ab]" with
  | [ L.Class c ] ->
      check Alcotest.bool "excludes a" false (C.mem c 'a');
      check Alcotest.bool "includes c" true (C.mem c 'c');
      check Alcotest.int "cardinal" 254 (C.cardinal c)
  | _ -> Alcotest.fail "expected one class token"

let test_brackets_special_members () =
  check (Alcotest.list token) "leading ]" [ L.Class (C.of_string "]a") ] (tokens "[]a]");
  check (Alcotest.list token) "negated leading ]"
    [ L.Class (C.complement (C.singleton ']')) ]
    (tokens "[^]]");
  check (Alcotest.list token) "trailing hyphen" [ L.Class (C.of_string "a-") ]
    (tokens "[a-]");
  check (Alcotest.list token) "escapes inside" [ L.Class (C.of_string "\n\t") ]
    (tokens "[\\n\\t]");
  check (Alcotest.list token) "shorthand inside"
    [ L.Class (C.add (C.range '0' '9') 'x') ]
    (tokens "[\\dx]")

let test_brackets_posix () =
  check (Alcotest.list token) "posix digit" [ L.Class (C.range '0' '9') ]
    (tokens "[[:digit:]]");
  check (Alcotest.list token) "posix mixed"
    [ L.Class (C.add (Option.get (C.posix "alpha")) '_') ]
    (tokens "[[:alpha:]_]")

let test_brackets_errors () =
  let e = lex_fails "[abc" in
  check Alcotest.string "unterminated" "unterminated bracket expression" e.L.message;
  let e = lex_fails "[z-a]" in
  check Alcotest.string "reversed" "reversed range 'z-a'" e.L.message;
  let e = lex_fails "[[:bogus:]]" in
  check Alcotest.string "unknown posix" "unknown POSIX class name 'bogus'" e.L.message;
  let e = lex_fails "[^\\x00-\\xff]" in
  check Alcotest.string "empty after negation" "empty character class" e.L.message

let test_repetitions () =
  check (Alcotest.list token) "{m}" [ L.Char 'a'; L.Repeat (3, Some 3) ] (tokens "a{3}");
  check (Alcotest.list token) "{m,}" [ L.Char 'a'; L.Repeat (2, None) ] (tokens "a{2,}");
  check (Alcotest.list token) "{m,n}" [ L.Char 'a'; L.Repeat (2, Some 5) ]
    (tokens "a{2,5}");
  check (Alcotest.list token) "{0,0}" [ L.Char 'a'; L.Repeat (0, Some 0) ]
    (tokens "a{0,0}")

let test_repetition_fallback () =
  (* POSIX: a '{' that does not start a valid bound is a literal. *)
  check (Alcotest.list token) "bare brace" [ L.Char 'a'; L.Char '{'; L.Char 'b' ]
    (tokens "a{b");
  check (Alcotest.list token) "unclosed bound"
    [ L.Char 'a'; L.Char '{'; L.Char '1'; L.Char 'x' ]
    (tokens "a{1x");
  check (Alcotest.list token) "stray closers" [ L.Char '}'; L.Char ']' ] (tokens "}]")

let test_repetition_errors () =
  let e = lex_fails "a{5,2}" in
  check Alcotest.string "reversed bounds" "repetition bounds reversed: {5,2}" e.L.message;
  let e = lex_fails (Printf.sprintf "a{%d}" (L.max_bound + 1)) in
  check Alcotest.bool "bound too large" true
    (e.L.message = Printf.sprintf "repetition bound %d exceeds the maximum %d"
                      (L.max_bound + 1) L.max_bound)

let test_empty_pattern () =
  check (Alcotest.list token) "empty" [] (tokens "")

let () =
  Alcotest.run "lexer"
    [
      ( "lexer",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "anchors" `Quick test_anchors;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "escape errors" `Quick test_escape_errors;
          Alcotest.test_case "class shorthands" `Quick test_class_shorthands;
          Alcotest.test_case "brackets: basics" `Quick test_brackets_basic;
          Alcotest.test_case "brackets: negation" `Quick test_brackets_negation;
          Alcotest.test_case "brackets: special members" `Quick test_brackets_special_members;
          Alcotest.test_case "brackets: POSIX names" `Quick test_brackets_posix;
          Alcotest.test_case "brackets: errors" `Quick test_brackets_errors;
          Alcotest.test_case "repetitions" `Quick test_repetitions;
          Alcotest.test_case "repetition fallback" `Quick test_repetition_fallback;
          Alcotest.test_case "repetition errors" `Quick test_repetition_errors;
          Alcotest.test_case "empty pattern" `Quick test_empty_pattern;
        ] );
    ]

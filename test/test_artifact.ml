(* Compiled-artifact persistence: round-trip fidelity, corruption
   handling and the committed-fixture compatibility gate.

   The load path must be behaviourally indistinguishable from a fresh
   compile — same match counts from every table-capable engine on any
   input — while a damaged file of any kind (truncated, bit-flipped,
   future-versioned, not an artifact at all) must surface as a typed
   [Artifact.Error], never an escape of some internal exception. *)

module Artifact = Mfsa_artifact.Artifact
module Pipeline = Mfsa_core.Pipeline
module Registry = Mfsa_engine.Registry
module Engine_sig = Mfsa_engine.Engine_sig
module Source = Mfsa_engine.Source
module Tables = Mfsa_engine.Tables
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge

let rules =
  [| "hello world"; "hello there"; "he(l|n)p"; "ab[cd]e*f"; "^start"; "end$" |]

let stream = "say hello there or hello world and ask for henp or help"

let compile patterns = (Pipeline.compile_exn patterns).Pipeline.mfsas
let artifact patterns = Artifact.to_string (Artifact.export (compile patterns))
let counts engines input = List.map (fun e -> Engine_sig.count e input) engines

let contains s needle =
  let n = String.length s and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub s i k = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------ round trips *)

let test_round_trip_counts () =
  let mfsas = compile rules in
  let art = Artifact.to_string (Artifact.export mfsas) in
  let loaded = Artifact.of_string art in
  List.iter
    (fun engine ->
      let direct = List.map (Registry.compile_automaton_exn engine) mfsas in
      let reloaded = List.map (Registry.compile_tables_exn engine) loaded in
      Alcotest.(check (list int))
        (engine ^ ": reload = compile")
        (counts direct stream) (counts reloaded stream))
    (Registry.table_capable_names ())

let test_round_trip_structure () =
  let mfsas = compile rules in
  let loaded = Artifact.of_string (Artifact.to_string (Artifact.export mfsas)) in
  Alcotest.(check int) "bundle count" (List.length mfsas) (List.length loaded);
  List.iter2
    (fun z (tb : Tables.t) ->
      let z' = tb.Tables.z in
      Alcotest.(check int) "states" z.Mfsa.n_states z'.Mfsa.n_states;
      Alcotest.(check int) "fsas" z.Mfsa.n_fsas z'.Mfsa.n_fsas;
      Alcotest.(check int) "transitions" (Mfsa.n_transitions z)
        (Mfsa.n_transitions z');
      Alcotest.(check (array string)) "patterns" z.Mfsa.patterns z'.Mfsa.patterns;
      Alcotest.(check bool) "csr persisted" true (tb.Tables.csr <> None))
    mfsas loaded

let test_save_load_file () =
  let path = Filename.temp_file "mfsa_artifact" ".mfsa" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let mfsas = compile rules in
      Artifact.save path (Artifact.export mfsas);
      let loaded = Artifact.load path in
      let direct = List.map (Registry.compile_automaton_exn "imfant") mfsas in
      let reloaded = List.map (Registry.compile_tables_exn "imfant") loaded in
      Alcotest.(check (list int))
        "file round trip" (counts direct stream) (counts reloaded stream);
      Alcotest.(check bool) "sniffer accepts" true (Source.is_artifact_file path))

let test_describe () =
  let art = artifact rules in
  let info = Artifact.describe_string art in
  Alcotest.(check int) "version" Artifact.version info.Artifact.in_version;
  Alcotest.(check int) "bytes" (String.length art) info.Artifact.in_bytes;
  Alcotest.(check int) "mfsas" 1 info.Artifact.in_mfsas;
  Alcotest.(check (array int))
    "rules" [| Array.length rules |] info.Artifact.in_rules;
  Alcotest.(check bool) "has sections" true (info.Artifact.in_sections <> [])

(* ------------------------------------------------------- corruption *)

let typed_error what f =
  match f () with
  | (_ : Tables.t list) ->
      Alcotest.failf "%s: expected a typed Artifact error" what
  | exception Artifact.Error e -> e
  | exception e ->
      Alcotest.failf "%s: escaped with %s instead of Artifact.Error" what
        (Printexc.to_string e)

let test_bad_magic () =
  (match typed_error "garbage" (fun () -> Artifact.of_string "not an artifact")
   with
  | Artifact.Bad_magic -> ()
  | e -> Alcotest.failf "wanted Bad_magic, got %s" (Artifact.error_to_string e));
  let art = Bytes.of_string (artifact rules) in
  Bytes.set art 0 'X';
  match
    typed_error "flipped magic" (fun () ->
        Artifact.of_string (Bytes.to_string art))
  with
  | Artifact.Bad_magic -> ()
  | e -> Alcotest.failf "wanted Bad_magic, got %s" (Artifact.error_to_string e)

let test_bad_version () =
  let art = Bytes.of_string (artifact rules) in
  (* The u32 version word sits right after the 8-byte magic. *)
  Bytes.set_int32_le art 8 99l;
  match
    typed_error "future version" (fun () ->
        Artifact.of_string (Bytes.to_string art))
  with
  | Artifact.Bad_version 99 -> ()
  | e ->
      Alcotest.failf "wanted Bad_version 99, got %s" (Artifact.error_to_string e)

let test_truncated () =
  let art = artifact rules in
  List.iter
    (fun keep ->
      match
        typed_error
          (Printf.sprintf "truncated to %d bytes" keep)
          (fun () -> Artifact.of_string (String.sub art 0 keep))
      with
      | Artifact.Truncated _ | Artifact.Bad_magic -> ()
      | e ->
          Alcotest.failf "truncation to %d: wanted Truncated, got %s" keep
            (Artifact.error_to_string e))
    [ 4; 12; 40; String.length art / 2; String.length art - 1 ]

let test_checksum () =
  let art = Bytes.of_string (artifact rules) in
  (* Flip one payload byte (the last byte lives in the final section);
     the checksum pass must catch it before structural parsing. *)
  let last = Bytes.length art - 1 in
  Bytes.set art last (Char.chr (Char.code (Bytes.get art last) lxor 0x40));
  match
    typed_error "bit flip" (fun () -> Artifact.of_string (Bytes.to_string art))
  with
  | Artifact.Checksum _ -> ()
  | e -> Alcotest.failf "wanted Checksum, got %s" (Artifact.error_to_string e)

let test_io_error () =
  match Artifact.load "/nonexistent/artifact.mfsa" with
  | (_ : Tables.t list) -> Alcotest.fail "expected Io error"
  | exception Artifact.Error (Artifact.Io _) -> ()
  | exception e -> Alcotest.failf "wanted Io, got %s" (Printexc.to_string e)

(* ------------------------------------------------------- capability *)

let test_capability_gate () =
  let art = artifact rules in
  List.iter
    (fun engine ->
      let can = Registry.can_load_tables engine in
      match Registry.compile engine (Source.Artifact_bytes art) with
      | Ok engines ->
          Alcotest.(check bool)
            (engine ^ " loaded without claiming the capability")
            true can;
          Alcotest.(check bool) (engine ^ " produced engines") true
            (engines <> [])
      | Error msg ->
          Alcotest.(check bool) (engine ^ " rejected despite capability") false
            can;
          Alcotest.(check bool)
            (engine ^ " error names the fix")
            true
            (contains msg "recompile from rules"))
    [ "imfant"; "hybrid"; "infant"; "dfa"; "decomposed" ]

(* ---------------------------------------------------------- fixture *)

(* test/fixtures/artifact_v1.mfsa is a committed version-1 artifact of
   the three-rule CLI-walkthrough ruleset. A format change that cannot
   read it any more must bump [Artifact.version] and consciously
   handle (or reject) version 1 — this test is the tripwire. *)
let fixture_path = "fixtures/artifact_v1.mfsa"

let test_fixture_loads () =
  let loaded = Artifact.load fixture_path in
  let engines = List.map (Registry.compile_tables_exn "imfant") loaded in
  Alcotest.(check (list int)) "fixture counts" [ 4 ] (counts engines stream);
  let info = Artifact.describe fixture_path in
  Alcotest.(check int) "fixture version" 1 info.Artifact.in_version

(* ------------------------------------------------------- properties *)

let fsa_of_rule rule =
  let module A = Mfsa_automata in
  A.Multiplicity.fuse
    (A.Epsilon.remove
       (A.Thompson.build
          (A.Simplify.char_classes_rule (A.Loops.expand_rule rule))))

let prop_round_trip =
  QCheck2.Test.make ~count:60
    ~name:"PERSIST: load(save(compile rs)) = compile rs, every engine"
    ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
    (fun (rs, input) ->
      let z = Merge.merge (Array.of_list (List.map fsa_of_rule rs)) in
      let loaded =
        Artifact.of_string (Artifact.to_string (Artifact.export [ z ]))
      in
      List.for_all
        (fun engine ->
          let direct = [ Registry.compile_automaton_exn engine z ] in
          let reloaded = List.map (Registry.compile_tables_exn engine) loaded in
          counts direct input = counts reloaded input)
        (Registry.table_capable_names ()))

let prop_corrupt_byte_is_typed =
  let base = artifact [| "abc"; "ab[cd]" |] in
  QCheck2.Test.make ~count:120
    ~name:"PERSIST: any single-byte corruption yields a typed error"
    QCheck2.Gen.(pair small_nat (int_range 1 255))
    (fun (pos, flip) ->
      let art = Bytes.of_string base in
      let pos = pos mod Bytes.length art in
      Bytes.set art pos (Char.chr (Char.code (Bytes.get art pos) lxor flip));
      match Artifact.of_string (Bytes.to_string art) with
      | (_ : Tables.t list) -> true (* flip in slack bytes may be benign *)
      | exception Artifact.Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "artifact"
    [
      ( "round-trip",
        [
          Alcotest.test_case "counts per engine" `Quick test_round_trip_counts;
          Alcotest.test_case "structure" `Quick test_round_trip_structure;
          Alcotest.test_case "file save/load" `Quick test_save_load_file;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "checksum" `Quick test_checksum;
          Alcotest.test_case "io error" `Quick test_io_error;
        ] );
      ( "capability",
        [ Alcotest.test_case "engine gate" `Quick test_capability_gate ] );
      ( "fixture",
        [ Alcotest.test_case "version 1 loads" `Quick test_fixture_loads ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_round_trip;
          QCheck_alcotest.to_alcotest prop_corrupt_byte_is_typed;
        ] );
    ]

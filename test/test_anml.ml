(* Unit tests for the XML substrate and the extended-ANML back-end. *)

module Xml = Mfsa_anml.Xml
module Anml = Mfsa_anml.Anml
module C = Mfsa_charset.Charclass
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module P = Mfsa_frontend.Parser

let check = Alcotest.check

let cls = Alcotest.testable C.pp C.equal

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let parse_xml src =
  match Xml.parse src with
  | Ok t -> t
  | Error e -> Alcotest.failf "unexpected XML error: %s" (Xml.error_to_string e)

(* ------------------------------------------------------------- Xml *)

let test_xml_element () =
  match parse_xml "<a x=\"1\" y=\"two\"><b/><c>text</c></a>" with
  | Xml.Element ("a", attrs, kids) ->
      check Alcotest.(list (pair string string)) "attrs" [ ("x", "1"); ("y", "two") ] attrs;
      check Alcotest.int "two element children" 2
        (List.length (List.filter (function Xml.Element _ -> true | _ -> false) kids))
  | _ -> Alcotest.fail "expected element"

let test_xml_helpers () =
  let t = parse_xml "<root a=\"v\"><x/><y/><x k=\"1\"/></root>" in
  check Alcotest.(option string) "attr" (Some "v") (Xml.attr t "a");
  check Alcotest.(option string) "missing attr" None (Xml.attr t "zz");
  check Alcotest.int "children" 3 (List.length (Xml.children t));
  check Alcotest.int "find_all" 2 (List.length (Xml.find_all t "x"));
  check Alcotest.(option string) "tag" (Some "root") (Xml.tag t)

let test_xml_declaration_comments () =
  let t =
    parse_xml
      "<?xml version=\"1.0\"?>\n<!-- hello -->\n<r><!-- inner --><k/></r>"
  in
  check Alcotest.(option string) "root found" (Some "r") (Xml.tag t);
  check Alcotest.int "comment skipped" 1 (List.length (Xml.children t))

let test_xml_entities () =
  match parse_xml "<r a=\"&lt;&amp;&gt;&quot;&apos;\">x&amp;y&#65;&#x42;</r>" with
  | Xml.Element (_, [ (_, v) ], kids) ->
      check Alcotest.string "attr entities" "<&>\"'" v;
      (match kids with
      | [ Xml.Text s ] -> check Alcotest.string "text entities" "x&yAB" s
      | _ -> Alcotest.fail "expected one text child")
  | _ -> Alcotest.fail "expected element"

let test_xml_errors () =
  let fails src =
    match Xml.parse src with
    | Ok _ -> Alcotest.failf "expected %S to fail" src
    | Error e -> e
  in
  check Alcotest.bool "unterminated" true
    (String.length (fails "<a><b></a>").Xml.message > 0);
  check Alcotest.bool "trailing" true
    ((fails "<a/><b/>").Xml.message = "trailing content after the root element");
  check Alcotest.bool "bad entity" true
    (String.length (fails "<a>&bogus;</a>").Xml.message > 0);
  let e = fails "<a\nx></a>" in
  check Alcotest.int "line tracking" 2 e.Xml.line

let test_xml_roundtrip () =
  let t =
    Xml.Element
      ( "net",
        [ ("name", "a<b&c\"d") ],
        [ Xml.Element ("leaf", [ ("v", "1") ], []); Xml.Text "payload & more" ] )
  in
  let printed = Xml.to_string t in
  match parse_xml printed with
  | Xml.Element ("net", [ ("name", n) ], kids) ->
      check Alcotest.string "attr escaped and restored" "a<b&c\"d" n;
      check Alcotest.int "children survive" 2 (List.length kids)
  | _ -> Alcotest.fail "bad roundtrip"

let test_xml_compact_output () =
  let t = Xml.Element ("a", [], [ Xml.Element ("b", [], []) ]) in
  check Alcotest.string "no indent" "<a><b/></a>" (Xml.to_string ~indent:false t)

let prop_xml_total_on_garbage =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"xml: total on arbitrary bytes" ~count:500
       ~print:(Printf.sprintf "%S")
       QCheck2.Gen.(
         string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 60))
       (fun src ->
         match Xml.parse src with Ok _ | Error _ -> true | exception _ -> false))

(* ---------------------------------------------------- symbol codec *)

let test_symbols_codec_examples () =
  check Alcotest.string "singleton" "61" (Anml.symbols_to_string (C.singleton 'a'));
  check Alcotest.string "range" "61-66" (Anml.symbols_to_string (C.range 'a' 'f'));
  check Alcotest.string "mixed" "0a,61-63"
    (Anml.symbols_to_string (C.add (C.range 'a' 'c') '\n'));
  check cls "parse singleton" (C.singleton 'a') (Anml.symbols_of_string "61");
  check cls "parse mixed" (C.add (C.range 'a' 'c') '\n')
    (Anml.symbols_of_string "0a,61-63")

let test_symbols_codec_errors () =
  List.iter
    (fun bad ->
      match Anml.symbols_of_string bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected %S to be rejected" bad)
    [ ""; "xyz"; "6"; "61-"; "66-61"; "61-66-6a" ]

let byte = QCheck2.Gen.map Char.chr (QCheck2.Gen.int_range 0 255)

let prop_symbols_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"anml: symbols codec roundtrip" ~count:300
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 32) byte)
       (fun bytes ->
         let cls = C.of_list bytes in
         C.equal cls (Anml.symbols_of_string (Anml.symbols_to_string cls))))

(* ------------------------------------------------------------ Anml *)

let mfsa_example () =
  Merge.merge [| fsa_of "a[gj](lm|cd)"; fsa_of "kja[gj]cd"; fsa_of "^ab$" |]

let test_anml_write_read_roundtrip () =
  let z = mfsa_example () in
  let doc = Anml.write [ z ] in
  match Anml.read doc with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok [ z' ] ->
      check Alcotest.int "states" z.Mfsa.n_states z'.Mfsa.n_states;
      check Alcotest.int "fsas" z.Mfsa.n_fsas z'.Mfsa.n_fsas;
      check Alcotest.int "transitions" (Mfsa.n_transitions z) (Mfsa.n_transitions z');
      check Alcotest.(array string) "patterns" z.Mfsa.patterns z'.Mfsa.patterns;
      check Alcotest.(array bool) "anchors" z.Mfsa.anchored_start z'.Mfsa.anchored_start;
      check Alcotest.bool "validates" true (Mfsa.validate z' = Ok ())
  | Ok l -> Alcotest.failf "expected 1 mfsa, got %d" (List.length l)

let test_anml_execution_equivalence () =
  (* Reloaded automata must produce identical matches. *)
  let z = mfsa_example () in
  let doc = Anml.write [ z ] in
  let z' = match Anml.read doc with Ok [ z' ] -> z' | _ -> Alcotest.fail "read" in
  let e = Im.compile z and e' = Im.compile z' in
  List.iter
    (fun input ->
      check Alcotest.int
        (Printf.sprintf "matches on %S" input)
        (Im.count e input) (Im.count e' input))
    [ "aglm"; "kjagcd"; "ab"; "kjaglm"; "abajcd" ]

let test_anml_multiple_mfsas () =
  let zs = Merge.merge_groups ~m:2 [| fsa_of "ab"; fsa_of "cd"; fsa_of "ef" |] in
  let doc = Anml.write ~name:"test-net" zs in
  match Anml.read doc with
  | Ok zs' -> check Alcotest.int "count preserved" (List.length zs) (List.length zs')
  | Error e -> Alcotest.failf "read failed: %s" e

let test_anml_read_errors () =
  (match Anml.read "<wrong/>" with
  | Error e -> check Alcotest.string "root check"
      "Anml.read: expected an <automata-network> root" e
  | Ok _ -> Alcotest.fail "expected error");
  (match Anml.read "not xml at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected xml error");
  match
    Anml.read
      "<automata-network><mfsa states=\"1\" fsas=\"1\"><fsa id=\"0\" \
       initial=\"5\" pattern=\"x\" anchored-start=\"false\" \
       anchored-end=\"false\"/></mfsa></automata-network>"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range initial state must be rejected"

let test_anml_adversarial_documents () =
  (* Malformed documents must produce Error, never raise or produce a
     structurally invalid MFSA. *)
  let doc body =
    "<automata-network>" ^ body ^ "</automata-network>"
  in
  let mfsa ?(states = "2") ?(fsas = "1")
      ?(fsa = "<fsa id=\"0\" initial=\"0\" pattern=\"x\" \
               anchored-start=\"false\" anchored-end=\"false\"/>")
      ?(body = "") () =
    doc
      (Printf.sprintf "<mfsa states=%S fsas=%S>%s%s</mfsa>" states fsas fsa
         body)
  in
  List.iter
    (fun (name, document) ->
      match Anml.read document with
      | Error _ -> ()
      | Ok zs ->
          List.iter
            (fun z ->
              match Mfsa.validate z with
              | Ok () -> ()
              | Error e -> Alcotest.failf "%s: invalid MFSA accepted: %s" name e)
            zs)
    [
      ("missing states attr", doc "<mfsa fsas=\"1\"/>");
      ("non-integer states", mfsa ~states:"many" ());
      ("zero fsas", mfsa ~fsas:"0" ());
      ("fsa id out of range",
       mfsa ~fsa:"<fsa id=\"7\" initial=\"0\" pattern=\"x\" \
                  anchored-start=\"false\" anchored-end=\"false\"/>" ());
      ("initial out of range",
       mfsa ~fsa:"<fsa id=\"0\" initial=\"9\" pattern=\"x\" \
                  anchored-start=\"false\" anchored-end=\"false\"/>" ());
      ("missing fsa element", mfsa ~fsa:"" ());
      ("bad boolean",
       mfsa ~fsa:"<fsa id=\"0\" initial=\"0\" pattern=\"x\" \
                  anchored-start=\"yep\" anchored-end=\"false\"/>" ());
      ("transition bad state",
       mfsa ~body:"<transition from=\"0\" to=\"5\" symbols=\"61\" belongs=\"0\"/>" ());
      ("transition bad symbols",
       mfsa ~body:"<transition from=\"0\" to=\"1\" symbols=\"zz\" belongs=\"0\"/>" ());
      ("transition empty belongs",
       mfsa ~body:"<transition from=\"0\" to=\"1\" symbols=\"61\" belongs=\"\"/>" ());
      ("transition belongs out of range",
       mfsa ~body:"<transition from=\"0\" to=\"1\" symbols=\"61\" belongs=\"3\"/>" ());
      ("final out of range", mfsa ~body:"<final state=\"9\" fsas=\"0\"/>" ());
      ("truncated document", "<automata-network><mfsa states=\"1\"");
    ]

let test_anml_file_io () =
  let z = mfsa_example () in
  let path = Filename.temp_file "mfsa_test" ".anml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Anml.write_file path [ z ];
      match Anml.read_file path with
      | Ok [ z' ] -> check Alcotest.int "states" z.Mfsa.n_states z'.Mfsa.n_states
      | Ok _ -> Alcotest.fail "wrong count"
      | Error e -> Alcotest.failf "read_file: %s" e);
  match Anml.read_file "/nonexistent/path.anml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must error"

let test_anml_binary_symbols () =
  (* Classes containing bytes that are special in XML or non-printable
     must survive the file format. *)
  let a = fsa_of "\\x00[<>&\"]\\xff" in
  let z = Mfsa.of_fsa a in
  let doc = Anml.write [ z ] in
  match Anml.read doc with
  | Ok [ z' ] ->
      let e = Im.compile z and e' = Im.compile z' in
      let input = "\x00<\xff rest \x00>\xff" in
      check Alcotest.int "binary matches" (Im.count e input) (Im.count e' input);
      check Alcotest.bool "some match exists" true (Im.count e input > 0)
  | _ -> Alcotest.fail "roundtrip failed"

(* ----------------------------------------------------- Homogeneous *)

module H = Mfsa_anml.Homogeneous

let test_homogeneous_structure () =
  let z = mfsa_example () in
  let h = H.of_mfsa z in
  check Alcotest.int "one STE per transition" (Mfsa.n_transitions z)
    (H.n_elements h);
  check Alcotest.int "mfsa accessor" z.Mfsa.n_states (H.mfsa h).Mfsa.n_states

let test_homogeneous_anml_well_formed () =
  let h = H.of_mfsa (mfsa_example ()) in
  match Xml.parse (H.to_anml h) with
  | Error e -> Alcotest.failf "unparseable ANML: %s" (Xml.error_to_string e)
  | Ok root ->
      check Alcotest.(option string) "root" (Some "automata-network") (Xml.tag root);
      let stes = Xml.find_all root "state-transition-element" in
      check Alcotest.int "all STEs present" (H.n_elements h) (List.length stes);
      List.iter
        (fun ste ->
          check Alcotest.bool "symbol-set present" true
            (Xml.attr ste "symbol-set" <> None))
        stes;
      check Alcotest.bool "has start elements" true
        (List.exists (fun ste -> Xml.attr ste "start" = Some "all-input") stes);
      check Alcotest.bool "has report elements" true
        (List.exists
           (fun ste -> Xml.find_all ste "report-on-match" <> [])
           stes)

let test_homogeneous_runs_like_imfant () =
  let z = mfsa_example () in
  let h = H.of_mfsa z in
  let eng = Im.compile z in
  List.iter
    (fun input ->
      let expected =
        Im.run eng input |> List.map (fun e -> (e.Im.fsa, e.Im.end_pos))
      in
      let got = H.run h input |> List.map (fun e -> (e.H.fsa, e.H.end_pos)) in
      check
        Alcotest.(list (pair int int))
        (Printf.sprintf "matches on %S" input)
        (List.sort compare expected) (List.sort compare got);
      check Alcotest.int "count agrees" (Im.count eng input) (H.count h input))
    [ "aglm"; "kjagcd"; "ab"; "kjaglm"; ""; "ajcdab" ]

let prop_homogeneous_equals_imfant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"homogeneous STE execution = iMFAnt"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let fsas =
           Array.of_list
             (List.map
                (fun r ->
                  Mfsa_automata.Multiplicity.fuse
                    (Mfsa_automata.Epsilon.remove
                       (Mfsa_automata.Thompson.build
                          (Mfsa_automata.Simplify.char_classes_rule
                             (Mfsa_automata.Loops.expand_rule r)))))
                rules)
         in
         let z = Merge.merge fsas in
         let expected =
           Im.run (Im.compile z) input
           |> List.map (fun e -> (e.Im.fsa, e.Im.end_pos))
           |> List.sort compare
         in
         let got =
           H.run (H.of_mfsa z) input
           |> List.map (fun e -> (e.H.fsa, e.H.end_pos))
           |> List.sort compare
         in
         expected = got))

let () =
  Alcotest.run "anml"
    [
      ( "xml",
        [
          Alcotest.test_case "element parsing" `Quick test_xml_element;
          Alcotest.test_case "helpers" `Quick test_xml_helpers;
          Alcotest.test_case "declaration and comments" `Quick test_xml_declaration_comments;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
          Alcotest.test_case "compact output" `Quick test_xml_compact_output;
          prop_xml_total_on_garbage;
        ] );
      ( "symbols",
        [
          Alcotest.test_case "codec examples" `Quick test_symbols_codec_examples;
          Alcotest.test_case "codec errors" `Quick test_symbols_codec_errors;
          prop_symbols_roundtrip;
        ] );
      ( "homogeneous",
        [
          Alcotest.test_case "structure" `Quick test_homogeneous_structure;
          Alcotest.test_case "well-formed ANML" `Quick test_homogeneous_anml_well_formed;
          Alcotest.test_case "runs like iMFAnt" `Quick test_homogeneous_runs_like_imfant;
          prop_homogeneous_equals_imfant;
        ] );
      ( "anml",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_anml_write_read_roundtrip;
          Alcotest.test_case "execution equivalence" `Quick test_anml_execution_equivalence;
          Alcotest.test_case "multiple mfsas" `Quick test_anml_multiple_mfsas;
          Alcotest.test_case "read errors" `Quick test_anml_read_errors;
          Alcotest.test_case "adversarial documents" `Quick
            test_anml_adversarial_documents;
          Alcotest.test_case "file io" `Quick test_anml_file_io;
          Alcotest.test_case "binary symbols" `Quick test_anml_binary_symbols;
        ] );
    ]

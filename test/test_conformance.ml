(* Conformance vectors: a table of (pattern, input, expected match
   ends) covering POSIX ERE semantics corner cases, executed through
   every matching path in the library — the reference simulator, the
   iNFAnt engine, the scanning-DFA engine, and iMFAnt over the
   single-rule MFSA. All four must agree with the table and with each
   other. *)

module Sim = Mfsa_automata.Simulate
module P = Mfsa_frontend.Parser
module In = Mfsa_engine.Infant
module De = Mfsa_engine.Dfa_engine
module Im = Mfsa_engine.Imfant
module Mfsa = Mfsa_model.Mfsa

let check = Alcotest.check

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

(* (pattern, input, expected unanchored match end positions) *)
let vectors =
  [
    (* Literals and concatenation *)
    ("a", "a", [ 1 ]);
    ("a", "b", []);
    ("a", "aaa", [ 1; 2; 3 ]);
    ("abc", "abc", [ 3 ]);
    ("abc", "xabcx", [ 4 ]);
    ("abc", "ababc", [ 5 ]);
    ("abc", "ab", []);
    ("aa", "aaaa", [ 2; 3; 4 ]);
    (* Alternation *)
    ("a|b", "ab", [ 1; 2 ]);
    ("a|b", "cc", []);
    ("abc|abd", "abcabd", [ 3; 6 ]);
    ("ab|abc", "abc", [ 2; 3 ]);
    ("|a", "a", [ 1 ]);
    ("(a|)b", "ab", [ 2 ]);
    ("(a|)b", "b", [ 1 ]);
    (* Star, plus, optional *)
    ("a*b", "b", [ 1 ]);
    ("a*b", "aaab", [ 4 ]);
    ("a*", "aa", [ 1; 2 ]);
    ("a+", "aa", [ 1; 2 ]);
    ("a+b", "ab", [ 2 ]);
    ("a+b", "b", []);
    ("a?b", "ab", [ 2 ]);
    ("a?b", "b", [ 1 ]);
    ("a?b", "aab", [ 3 ]);
    ("(ab)*c", "c", [ 1 ]);
    ("(ab)*c", "ababc", [ 5 ]);
    ("(ab)+c", "abc", [ 3 ]);
    ("(ab)+c", "c", []);
    ("(a*)*b", "aab", [ 3 ]);
    ("(a+)+b", "aab", [ 3 ]);
    (* Bounded repetition *)
    ("a{3}", "aaaa", [ 3; 4 ]);
    ("a{3}", "aa", []);
    ("a{2,}", "aaaa", [ 2; 3; 4 ]);
    ("a{0,2}b", "aab", [ 3 ]);
    ("a{0,2}b", "aaab", [ 4 ]); (* suffix aab *)
    ("a{1,2}b", "b", []);
    ("(ab){2}", "abab", [ 4 ]);
    ("(ab){1,2}", "abab", [ 2; 4 ]);
    ("a{0}b", "b", [ 1 ]);
    (* Classes and dot *)
    ("[abc]", "b", [ 1 ]);
    ("[abc]", "d", []);
    ("[^a]", "ab", [ 2 ]);
    ("[a-c]x", "bx", [ 2 ]);
    ("[-a]", "-", [ 1 ]);
    ("[]a]", "]", [ 1 ]);
    (".", "a\nb", [ 1; 3 ]);
    (".a", "aa", [ 2 ]);
    (".*x", "abx", [ 3 ]);
    ("a.*b", "a123b", [ 5 ]);
    ("a.*b", "ab", [ 2 ]);
    ("a[^b]*b", "axxyb", [ 5 ]);
    ("[[:digit:]]+", "a12b", [ 2; 3 ]);
    ("[[:upper:]][[:lower:]]", "Ab", [ 2 ]);
    ("\\d\\d", "a42", [ 3 ]);
    ("\\w+", "_x", [ 1; 2 ]);
    ("\\s", "a b", [ 2 ]);
    (* Escapes *)
    ("\\.", "a.b", [ 2 ]);
    ("\\*", "a*b", [ 2 ]);
    ("\\\\", "\\", [ 1 ]);
    ("\\x41", "A", [ 1 ]);
    ("\\n", "a\nb", [ 2 ]);
    ("\\t\\r", "\t\r", [ 2 ]);
    (* Grouping and precedence *)
    ("ab|cd", "abcd", [ 2; 4 ]);
    ("a(b|c)d", "abdacd", [ 3; 6 ]);
    ("(a|b)(c|d)", "ad", [ 2 ]);
    ("((a))", "a", [ 1 ]);
    ("(a(b(c)))", "abc", [ 3 ]);
    ("x(a|b)*y", "xy", [ 2 ]);
    ("x(a|b)*y", "xabay", [ 5 ]);
    (* Overlapping and nested matches *)
    ("aa|aaa", "aaaa", [ 2; 3; 4 ]);
    ("aba", "ababa", [ 3; 5 ]);
    ("a.a", "aaa", [ 3 ]);
    (* Anchors *)
    ("^a", "aa", [ 1 ]);
    ("^ab", "abab", [ 2 ]);
    ("^a*$", "aaa", [ 3 ]);
    ("a$", "aa", [ 2 ]);
    ("ab$", "abab", [ 4 ]);
    ("^abc$", "abc", [ 3 ]);
    ("^abc$", "xabc", []);
    ("^", "a", []);
    (* Empty-pattern conventions: non-empty matches only *)
    ("", "abc", []);
    ("a*", "bbb", []);
    ("(a|b)*", "ab", [ 1; 2 ]);
    (* Binary bytes *)
    ("\\x00", "\x00", [ 1 ]);
    ("\\xff+", "\xff\xff", [ 1; 2 ]);
    ("[\\x00-\\x02]", "\x01", [ 1 ]);
    (* Longer compositions *)
    ("(ab|a)(c|bc)", "abc", [ 3 ]);
    ("a(bc)?d", "ad", [ 2 ]);
    ("a(bc)?d", "abcd", [ 4 ]);
    ("(a|ab)(c|bcd)(d*)", "abcd", [ 3; 4 ]);
    ("x[ab]{2}y", "xaby", [ 4 ]);
    ("x[ab]{2}y", "xaay", [ 4 ]);
    ("x[ab]{2}y", "xacy", []);
    ("(h|H)(e|E)(l|L)+o", "HeLLo", [ 5 ]);
    ("GET /[a-z]+", "GET /abc", [ 6; 7; 8 ]);
    ("[0-9]{1,3}\\.[0-9]{1,3}", "10.25", [ 4; 5 ]);
  ]

let runners =
  [
    ("simulator", fun a input -> Sim.match_ends a input);
    ("infant", fun a input -> In.run (In.compile a) input);
    ("dfa-engine", fun a input -> De.run (De.compile a) input);
    ( "imfant",
      fun a input ->
        Im.run (Im.compile (Mfsa.of_fsa a)) input
        |> List.map (fun e -> e.Im.end_pos) );
    ( "decomposed",
      fun a input ->
        let module D = Mfsa_engine.Decomposed in
        D.run (D.compile [| a |]) input |> List.map (fun e -> e.D.end_pos) );
  ]

let test_vectors_on (name, run) () =
  List.iter
    (fun (pattern, input, expected) ->
      let a = fsa_of pattern in
      check
        Alcotest.(list int)
        (Printf.sprintf "%s: %S on %S" name pattern input)
        expected (run a input))
    vectors

let test_acceptance_battery () =
  (* Whole-string acceptance for patterns whose unanchored behaviour
     above cannot distinguish fine structure. *)
  List.iter
    (fun (pattern, input, expected) ->
      check Alcotest.bool
        (Printf.sprintf "accepts %S %S" pattern input)
        expected
        (Sim.accepts (fsa_of pattern) input))
    [
      ("a*", "", true);
      ("a+", "", false);
      ("a?", "", true);
      ("", "", true);
      ("()", "", true);
      ("a{0,0}", "", true);
      ("(a|b)*abb", "babb", true);
      ("(a|b)*abb", "ab", false);
      ("(ab|ba)*", "abba", true);
      ("(ab|ba)*", "aba", false);
      ("a(b|c)*d", "abcbcbd", true);
      ("[^\\n]*", "any thing", true);
    ]

let () =
  Alcotest.run "conformance"
    [
      ( "vectors",
        List.map
          (fun runner ->
            Alcotest.test_case (fst runner) `Quick (test_vectors_on runner))
          runners
        @ [ Alcotest.test_case "acceptance battery" `Quick test_acceptance_battery ]
      );
    ]

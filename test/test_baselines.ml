(* Unit and property tests for the comparison baselines and the
   future-work extensions: Aho–Corasick, partial character-class
   merging (Ccsplit) and similarity clustering (Cluster). *)

module AC = Mfsa_engine.Aho_corasick
module Ccsplit = Mfsa_model.Ccsplit
module Cluster = Mfsa_core.Cluster
module Merge = Mfsa_model.Merge
module Mfsa = Mfsa_model.Mfsa
module Im = Mfsa_engine.Imfant
module Nfa = Mfsa_automata.Nfa
module Sim = Mfsa_automata.Simulate
module C = Mfsa_charset.Charclass
module P = Mfsa_frontend.Parser
module Rulegen = Mfsa_datasets.Rulegen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

(* ---------------------------------------------------- Aho-Corasick *)

let test_ac_single_pattern () =
  let t = AC.build [| "ab" |] in
  check Alcotest.(list (pair int int)) "two hits"
    [ (0, 2); (0, 6) ]
    (List.map (fun e -> (e.AC.pattern, e.AC.end_pos)) (AC.run t "abcdab"))

let test_ac_overlapping () =
  let t = AC.build [| "aa" |] in
  check Alcotest.int "overlaps counted" 3 (AC.count t "aaaa")

let test_ac_nested_patterns () =
  (* "he", "she", "his", "hers" — the textbook example. *)
  let t = AC.build [| "he"; "she"; "his"; "hers" |] in
  let events = AC.run t "ushers" in
  check Alcotest.(list (pair int int)) "she, he, hers"
    [ (1, 4); (0, 4); (3, 6) ]
    (List.map (fun e -> (e.AC.pattern, e.AC.end_pos)) events
    |> List.sort (fun (p1, e1) (p2, e2) ->
           if e1 <> e2 then Int.compare e1 e2 else Int.compare p2 p1))

let test_ac_per_pattern () =
  (* "abab": "a" ends at 1,3; "ab" at 2,4; "b" at 2,4. *)
  let t = AC.build [| "a"; "ab"; "b" |] in
  check Alcotest.(array int) "per-pattern counts" [| 2; 2; 2 |]
    (AC.count_per_pattern t "abab")

let test_ac_duplicates () =
  let t = AC.build [| "x"; "x" |] in
  check Alcotest.int "both ids fire" 4 (AC.count t "xx")

let test_ac_empty_pattern_rejected () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Aho_corasick.build: empty pattern") (fun () ->
      ignore (AC.build [| "ok"; "" |]))

let test_ac_binary () =
  let t = AC.build [| "\x00\xff"; "\xff\x00" |] in
  check Alcotest.int "binary patterns" 3 (AC.count t "\x00\xff\x00\xff")

let test_ac_matches_mfsa_on_literals () =
  (* On a literal-only ruleset AC and the MFSA must agree exactly. *)
  let patterns = [| "abc"; "abd"; "bc"; "cab" |] in
  let t = AC.build patterns in
  let fsas = Array.map (fun p -> fsa_of (Rulegen.escape_literal p)) patterns in
  let z = Merge.merge fsas in
  let eng = Im.compile z in
  let input = "abcabdcabcbc" in
  let ac_events =
    AC.run t input |> List.map (fun e -> (e.AC.pattern, e.AC.end_pos))
  in
  let mfsa_events =
    Im.run eng input |> List.map (fun e -> (e.Im.fsa, e.Im.end_pos))
  in
  let norm = List.sort compare in
  check
    Alcotest.(list (pair int int))
    "identical match sets" (norm ac_events) (norm mfsa_events)

let prop_ac_equals_simulator =
  qtest
    (QCheck2.Test.make ~count:200 ~name:"aho-corasick = per-literal oracle"
       QCheck2.Gen.(
         pair
           (list_size (int_range 1 5)
              (string_size ~gen:(oneofl [ 'a'; 'b' ]) (int_range 1 4)))
           (string_size ~gen:(oneofl [ 'a'; 'b' ]) (int_range 0 30)))
       (fun (patterns, input) ->
         let patterns = Array.of_list patterns in
         let t = AC.build patterns in
         let expected j =
           let a = fsa_of (Rulegen.escape_literal patterns.(j)) in
           Sim.match_ends a input
         in
         let events = AC.run t input in
         Array.for_all
           (fun j ->
             List.filter_map
               (fun e -> if e.AC.pattern = j then Some e.AC.end_pos else None)
               events
             = expected j)
           (Array.init (Array.length patterns) Fun.id)))

(* ------------------------------------------------------ Decomposed *)

module D = Mfsa_engine.Decomposed
module In = Mfsa_engine.Infant
module Ast = Mfsa_frontend.Ast

let test_literal_prefix () =
  let lp src = D.literal_prefix (P.parse_exn src).Ast.ast in
  List.iter
    (fun (src, expected) ->
      check Alcotest.string (Printf.sprintf "prefix of %S" src) expected (lp src))
    [
      ("abc", "abc");
      ("abc|abd", "ab");
      ("ab(c|d)e", "ab");
      ("a*bc", "");
      ("ab*c", "a");
      ("ab+c", "ab");
      ("GET /[a-z]+", "GET /");
      ("(ab){2}x", "ababx");
      ("(ab){2}", "abab");
      ("(a|b)cd", "");
      ("[ab]cd", "");
      ("a[bc]d", "a");
      ("(abc)", "abc");
      ("abc?d", "ab");
      ("", "");
    ]

let test_decomposed_classification () =
  let fsas = Array.map fsa_of [| "hello.*x"; "[ab]+"; "wide[0-9]{2}" |] in
  let t = D.compile fsas in
  check Alcotest.int "two prefiltered" 2 (D.n_prefiltered t);
  check Alcotest.int "one fallback" 1 (D.n_fallback t)

let test_decomposed_matches () =
  let patterns = [| "hello.*world"; "GET /[a-z]+"; "[0-9]+x" |] in
  let fsas = Array.map fsa_of patterns in
  let t = D.compile fsas in
  let input = "say hello cruel world GET /abc then 42x" in
  let expected =
    Array.to_list fsas
    |> List.mapi (fun i a ->
           List.map (fun e -> (i, e)) (In.run (In.compile a) input))
    |> List.concat
    |> List.sort (fun (r1, e1) (r2, e2) ->
           if e1 <> e2 then Int.compare e1 e2 else Int.compare r1 r2)
  in
  check
    Alcotest.(list (pair int int))
    "exact match set" expected
    (List.map (fun e -> (e.D.rule, e.D.end_pos)) (D.run t input));
  check Alcotest.int "count" (List.length expected) (D.count t input)

let test_decomposed_overlapping_hits () =
  (* Repeated prefixes must not duplicate events. *)
  let fsas = Array.map fsa_of [| "abab" |] in
  let t = D.compile fsas in
  check
    Alcotest.(list (pair int int))
    "dedup" [ (0, 4); (0, 6) ]
    (List.map (fun e -> (e.D.rule, e.D.end_pos)) (D.run t "ababab"))

let prop_decomposed_equals_infant =
  qtest
    (QCheck2.Test.make ~count:100
       ~name:"decomposed engine = union of per-rule iNFAnt"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let fsas =
           Array.of_list
             (List.map
                (fun r ->
                  Mfsa_automata.Multiplicity.fuse
                    (Mfsa_automata.Epsilon.remove
                       (Mfsa_automata.Thompson.build
                          (Mfsa_automata.Simplify.char_classes_rule
                             (Mfsa_automata.Loops.expand_rule r)))))
                rules)
         in
         let t = D.compile fsas in
         let expected =
           Array.to_list fsas
           |> List.mapi (fun i a ->
                  List.map (fun e -> (i, e)) (In.run (In.compile a) input))
           |> List.concat |> List.sort compare
         in
         List.sort compare
           (List.map (fun e -> (e.D.rule, e.D.end_pos)) (D.run t input))
         = expected))

let prop_literal_prefix_sound =
  qtest
    (QCheck2.Test.make ~count:150
       ~name:"literal_prefix: every accepted string starts with it"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ~max_rules:2 ()) Gen_re.input)
       (fun (rules, input) ->
         let rule = List.hd rules in
         let prefix = D.literal_prefix rule.Ast.ast in
         let a = Mfsa_automata.Thompson.build rule in
         (not (Mfsa_automata.Simulate.accepts a input))
         || String.length input >= String.length prefix
            && String.sub input 0 (String.length prefix) = prefix))

(* --------------------------------------------------------- Ccsplit *)

let test_atoms_paper_example () =
  (* §VI-A: classes [abce] and [bcd] have atoms [bc], [ae], [d]. *)
  let a1 = fsa_of "[abce]" and a2 = fsa_of "[bcd]" in
  let atoms = Ccsplit.atoms [| a1; a2 |] in
  let specs = List.sort String.compare (List.map C.to_spec atoms) in
  check Alcotest.(list string) "three atoms" [ "[ae]"; "[bc]"; "d" ] specs

let test_atoms_disjoint_cover () =
  let fsas = [| fsa_of "[a-f]x"; fsa_of "[d-h]y"; fsa_of "z" |] in
  let atoms = Ccsplit.atoms fsas in
  (* pairwise disjoint *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            check Alcotest.bool "disjoint" true (C.disjoint a b))
        atoms)
    atoms;
  (* cover = union of all used classes *)
  let cover = List.fold_left C.union C.empty atoms in
  check Alcotest.bool "covers a-h,x,y,z" true
    (C.subset (C.of_string "abcdefghxyz") cover)

let test_atoms_empty_ruleset_of_eps () =
  check Alcotest.int "no transitions, no atoms" 0
    (List.length (Ccsplit.atoms [| fsa_of "" |]))

let test_split_improves_merging () =
  (* The paper's motivating case: [abce] vs [bcd] share only [bc];
     plain merging cannot share the transition, split merging can. *)
  let rules () = [| fsa_of "x[abce]y"; fsa_of "x[bcd]y" |] in
  let plain = Merge.merge (rules ()) in
  let split = Merge.merge (Ccsplit.split (rules ())) in
  let shared z =
    Array.to_list z.Mfsa.bel
    |> List.filter (fun b -> Mfsa_util.Bitset.cardinal b = 2)
    |> List.length
  in
  check Alcotest.bool "split shares more transitions" true
    (shared split > shared plain)

let test_split_preserves_language () =
  let fsas = [| fsa_of "[abce]k"; fsa_of "[bcd]k"; fsa_of "a[xy]*" |] in
  let split = Ccsplit.split fsas in
  Array.iteri
    (fun i a ->
      List.iter
        (fun w ->
          check Alcotest.bool
            (Printf.sprintf "fsa %d on %S" i w)
            (Sim.accepts a w)
            (Sim.accepts split.(i) w))
        [ "ak"; "bk"; "ck"; "dk"; "ek"; "a"; "axy"; "k"; "" ])
    fsas

let test_split_rejects_eps () =
  Alcotest.check_raises "eps rejected"
    (Invalid_argument "Ccsplit.split: automata must be ε-free") (fun () ->
      ignore (Ccsplit.split [| Mfsa_automata.Thompson.build_pattern "a|b" |]))

let prop_split_preserves_matching =
  qtest
    (QCheck2.Test.make ~count:100
       ~name:"ccsplit: split ruleset matches like the original"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let fsas =
           Array.of_list
             (List.map
                (fun r ->
                  Mfsa_automata.Multiplicity.fuse
                    (Mfsa_automata.Epsilon.remove
                       (Mfsa_automata.Thompson.build
                          (Mfsa_automata.Simplify.char_classes_rule
                             (Mfsa_automata.Loops.expand_rule r)))))
                rules)
         in
         let z = Merge.merge (Ccsplit.split fsas) in
         let events = Im.run (Im.compile z) input in
         Array.for_all
           (fun j ->
             List.filter_map
               (fun e -> if e.Im.fsa = j then Some e.Im.end_pos else None)
               events
             = Sim.match_ends fsas.(j) input)
           (Array.init (Array.length fsas) Fun.id)))

(* --------------------------------------------------------- Cluster *)

let test_cluster_groups_similar () =
  let patterns = [| "aaaa1"; "bbbb1"; "aaaa2"; "bbbb2" |] in
  let groups = Cluster.group ~m:2 patterns in
  check Alcotest.int "two groups" 2 (List.length groups);
  (* Similar rules (same letter family) must land together. *)
  List.iter
    (fun g ->
      match g with
      | [ i; j ] ->
          check Alcotest.char "family grouped" patterns.(i).[0] patterns.(j).[0]
      | _ -> Alcotest.fail "expected pairs")
    groups

let test_cluster_partition () =
  let patterns = Array.init 11 (fun i -> Printf.sprintf "rule%d" i) in
  let groups = Cluster.group ~m:4 patterns in
  let all = List.concat groups |> List.sort Int.compare in
  check Alcotest.(list int) "exact partition" (List.init 11 Fun.id) all;
  List.iter
    (fun g -> check Alcotest.bool "size bound" true (List.length g <= 4))
    groups

let test_cluster_degenerate () =
  check Alcotest.int "m=0 one group" 1
    (List.length (Cluster.group ~m:0 [| "a"; "b"; "c" |]));
  check Alcotest.int "m>n one group" 1
    (List.length (Cluster.group ~m:10 [| "a"; "b" |]));
  Alcotest.check_raises "empty" (Invalid_argument "Cluster.group: empty ruleset")
    (fun () -> ignore (Cluster.group ~m:2 [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Cluster.group: negative merging factor") (fun () ->
      ignore (Cluster.group ~m:(-2) [| "a" |]))

let test_reorder () =
  let items = [| "x"; "y"; "z"; "w" |] in
  let permuted, groups = Cluster.reorder items [ [ 2; 0 ]; [ 3; 1 ] ] in
  check Alcotest.(array string) "permuted" [| "z"; "x"; "w"; "y" |] permuted;
  check Alcotest.(list (list int)) "renumbered" [ [ 0; 1 ]; [ 2; 3 ] ] groups

let test_cluster_improves_compression () =
  (* Interleave two families; sequential M=2 windows pair dissimilar
     rules, clustering pairs similar ones. *)
  let patterns =
    [| "prefixaaaa"; "wxyz0000"; "prefixbbbb"; "wxyz1111";
       "prefixcccc"; "wxyz2222" |]
  in
  let fsas = Array.map (fun p -> fsa_of p) patterns in
  let sequential = Merge.merge_groups ~m:2 fsas in
  let clustered = Cluster.merge_clustered ~m:2 fsas in
  let states zs = List.fold_left (fun acc z -> acc + z.Mfsa.n_states) 0 zs in
  check Alcotest.bool
    (Printf.sprintf "clustered %d < sequential %d states" (states clustered)
       (states sequential))
    true
    (states clustered < states sequential)

let prop_cluster_preserves_matching =
  qtest
    (QCheck2.Test.make ~count:80
       ~name:"cluster: clustered merging matches like separate FSAs"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let fsas =
           Array.of_list
             (List.map
                (fun r ->
                  Mfsa_automata.Multiplicity.fuse
                    (Mfsa_automata.Epsilon.remove
                       (Mfsa_automata.Thompson.build
                          (Mfsa_automata.Simplify.char_classes_rule
                             (Mfsa_automata.Loops.expand_rule r)))))
                rules)
         in
         let patterns = Array.map (fun a -> a.Nfa.pattern) fsas in
         let groups = Cluster.group ~m:2 patterns in
         let zs = Cluster.merge_clustered ~m:2 fsas in
         List.for_all2
           (fun g z ->
             let events = Im.run (Im.compile z) input in
             List.for_all
               (fun (local, original) ->
                 List.filter_map
                   (fun e -> if e.Im.fsa = local then Some e.Im.end_pos else None)
                   events
                 = Sim.match_ends fsas.(original) input)
               (List.mapi (fun local original -> (local, original)) g))
           groups zs))

let () =
  Alcotest.run "baselines"
    [
      ( "aho-corasick",
        [
          Alcotest.test_case "single pattern" `Quick test_ac_single_pattern;
          Alcotest.test_case "overlapping" `Quick test_ac_overlapping;
          Alcotest.test_case "textbook ushers" `Quick test_ac_nested_patterns;
          Alcotest.test_case "per-pattern counts" `Quick test_ac_per_pattern;
          Alcotest.test_case "duplicate patterns" `Quick test_ac_duplicates;
          Alcotest.test_case "empty pattern rejected" `Quick test_ac_empty_pattern_rejected;
          Alcotest.test_case "binary patterns" `Quick test_ac_binary;
          Alcotest.test_case "agrees with MFSA on literals" `Quick
            test_ac_matches_mfsa_on_literals;
          prop_ac_equals_simulator;
        ] );
      ( "decomposed",
        [
          Alcotest.test_case "literal prefixes" `Quick test_literal_prefix;
          Alcotest.test_case "classification" `Quick test_decomposed_classification;
          Alcotest.test_case "matches" `Quick test_decomposed_matches;
          Alcotest.test_case "overlapping hits dedup" `Quick
            test_decomposed_overlapping_hits;
          prop_decomposed_equals_infant;
          prop_literal_prefix_sound;
        ] );
      ( "ccsplit",
        [
          Alcotest.test_case "paper atom example" `Quick test_atoms_paper_example;
          Alcotest.test_case "atoms disjoint and covering" `Quick test_atoms_disjoint_cover;
          Alcotest.test_case "no transitions" `Quick test_atoms_empty_ruleset_of_eps;
          Alcotest.test_case "split improves merging" `Quick test_split_improves_merging;
          Alcotest.test_case "split preserves language" `Quick test_split_preserves_language;
          Alcotest.test_case "split rejects eps" `Quick test_split_rejects_eps;
          prop_split_preserves_matching;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "groups similar rules" `Quick test_cluster_groups_similar;
          Alcotest.test_case "exact partition" `Quick test_cluster_partition;
          Alcotest.test_case "degenerate cases" `Quick test_cluster_degenerate;
          Alcotest.test_case "reorder" `Quick test_reorder;
          Alcotest.test_case "improves compression" `Quick test_cluster_improves_compression;
          prop_cluster_preserves_matching;
        ] );
    ]

(* The SFA intra-input parallel wrapper: chunk/join equivalence with
   the sequential engines (fixed rulesets, boundary-straddling
   literals, anchors, degenerate inputs), the registry spec grammar,
   the table round trip, streaming sessions through the wrapper, and
   qcheck properties over random rulesets and chunk counts. *)

module P = Mfsa_frontend.Parser
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module Hy = Mfsa_engine.Hybrid
module Sfa = Mfsa_engine.Sfa
module Registry = Mfsa_engine.Registry
module Engine_sig = Mfsa_engine.Engine_sig

let check = Alcotest.check

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let merge_rules rules = Merge.merge (Array.of_list (List.map fsa_of rules))

let im_events l = List.map (fun e -> (e.Im.fsa, e.Im.end_pos)) l

let sfa_events l = List.map (fun e -> (e.Sfa.fsa, e.Sfa.end_pos)) l

let sort = List.sort compare

let contains haystack needle =
  let len = String.length needle in
  let rec scan i =
    i + len <= String.length haystack
    && (String.sub haystack i len = needle || scan (i + 1))
  in
  scan 0

let spec ?(domains = 2) ?(threshold = 1) () = { Sfa.domains; threshold }

(* Reference events are iMFAnt's, sorted (its within-position order is
   transition order; the sfa wrapper's documented order is (end, fsa),
   so sorted-list equality is the right comparison everywhere). *)
let check_equiv ?domains msg z inputs =
  let im = Im.compile z in
  List.iter
    (fun inner ->
      List.iter
        (fun d ->
          let sf = Sfa.compile (spec ~domains:d ()) ~inner z in
          List.iter
            (fun input ->
              check
                Alcotest.(list (pair int int))
                (Printf.sprintf "%s %s d=%d on %S" msg inner d input)
                (sort (im_events (Im.run im input)))
                (sort (sfa_events (Sfa.run sf input))))
            inputs)
        (match domains with Some d -> [ d ] | None -> [ 1; 2; 3; 4 ]))
    [ "imfant"; "hybrid" ]

(* ----------------------------------------------------- Equivalence *)

let test_equals_sequential () =
  check_equiv "plain"
    (merge_rules [ "ab"; "a(b|c)*d"; "[0-9]{2}"; "b" ])
    [ "abcbcd12ab"; ""; "ab"; "999"; "abababab"; "xyzxyzxyzxyz" ]

let test_anchors () =
  check_equiv "anchors"
    (merge_rules [ "^ab"; "ab"; "ab$"; "^ab$"; "^a+b$" ])
    [ "abab"; "ab"; "xab"; "abx"; ""; "aaaaab"; "abxxab" ]

(* A mid-input occurrence of an end-anchored literal must not leak out
   of the chunk whose local end it touches: $ is a property of the
   stream, not the chunk. *)
let test_end_anchor_not_chunk_local () =
  let z = merge_rules [ "abc$" ] in
  let sf = Sfa.compile (spec ~domains:2 ()) ~inner:"imfant" z in
  (* 6 bytes, boundary at 3: "abc" ends exactly at the first chunk's
     local end, then again at the stream end. *)
  check
    Alcotest.(list (pair int int))
    "only the global end reports" [ (0, 6) ]
    (sfa_events (Sfa.run sf "abcabc"));
  check Alcotest.(list (pair int int)) "no match elsewhere" []
    (sfa_events (Sfa.run sf "abcxyz"))

(* The regression at the heart of satellite 2: a literal straddling
   every split point. Slide the literal across every offset of the
   input so that, for every domain count, some placement crosses each
   chunk boundary (and the boundary region is also exercised by ^/$
   variants). *)
let test_literal_straddles_every_boundary () =
  let lit = "abcdef" in
  let z = merge_rules [ lit; "^abc"; "def$" ] in
  let im = Im.compile z in
  let len = 24 in
  List.iter
    (fun inner ->
      List.iter
        (fun d ->
          let sf = Sfa.compile (spec ~domains:d ()) ~inner z in
          for p = 0 to len - String.length lit do
            let input = Bytes.make len 'x' in
            Bytes.blit_string lit 0 input p (String.length lit);
            let input = Bytes.to_string input in
            check
              Alcotest.(list (pair int int))
              (Printf.sprintf "%s d=%d literal at %d" inner d p)
              (sort (im_events (Im.run im input)))
              (sort (sfa_events (Sfa.run sf input)))
          done)
        [ 2; 3; 4 ])
    [ "imfant"; "hybrid" ]

(* More chunks than bytes: trailing chunks are empty windows and the
   carry must still thread through them. *)
let test_input_shorter_than_domains () =
  check_equiv ~domains:8 "short input" (merge_rules [ "ab"; "a$"; "^b" ])
    [ ""; "a"; "ab"; "ba"; "aba" ]

let test_threshold_gates_chunking () =
  let z = merge_rules [ "ab" ] in
  let sf = Sfa.compile (spec ~threshold:4 ()) ~inner:"imfant" z in
  check Alcotest.bool "below threshold" false (Sfa.chunked sf "abc");
  check Alcotest.bool "at threshold" true (Sfa.chunked sf "abab");
  let one = Sfa.compile (spec ~domains:1 ()) ~inner:"imfant" z in
  check Alcotest.bool "1 domain never chunks" false (Sfa.chunked one "abab");
  (* Both paths agree either way. *)
  check
    Alcotest.(list (pair int int))
    "seq path matches" [ (0, 2) ]
    (sfa_events (Sfa.run sf "abc"))

let test_count_and_per_fsa () =
  let z = merge_rules [ "a"; "aa" ] in
  let im = Im.compile z in
  let sf = Sfa.compile (spec ~domains:3 ()) ~inner:"hybrid" z in
  let input = "aaaaaa" in
  check Alcotest.int "count" (Im.count im input) (Sfa.count sf input);
  check
    Alcotest.(array int)
    "per fsa" (Im.count_per_fsa im input)
    (Sfa.count_per_fsa sf input)

let test_run_is_ordered () =
  let sf =
    Sfa.compile (spec ~domains:2 ()) ~inner:"imfant"
      (merge_rules [ "ab"; "b"; "a" ])
  in
  let events = sfa_events (Sfa.run sf "abab") in
  let by_pos =
    List.sort
      (fun (f1, e1) (f2, e2) ->
        if e1 <> e2 then Int.compare e1 e2 else Int.compare f1 f2)
      events
  in
  check Alcotest.(list (pair int int)) "sorted by (end, fsa)" by_pos events

let test_run_span_agrees () =
  let z = merge_rules [ "ab"; "a(b|c)*d" ] in
  let im = Im.compile z in
  let sf = Sfa.compile (spec ~domains:3 ()) ~inner:"imfant" z in
  let input = "abcbcdababacdxxabd" in
  let events, t = Sfa.run_span sf input in
  check
    Alcotest.(list (pair int int))
    "span path equals imfant"
    (sort (im_events (Im.run im input)))
    (sort (sfa_events events));
  check Alcotest.int "one timing per chunk" 3 (Array.length t.Sfa.chunk_s)

let test_rejects_bad_specs () =
  let z = merge_rules [ "a" ] in
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Sfa: domains must be in [1,64], got 0") (fun () ->
      ignore (Sfa.compile { Sfa.domains = 0; threshold = 1 } ~inner:"imfant" z));
  Alcotest.check_raises "zero threshold"
    (Invalid_argument "Sfa: threshold must be positive, got 0") (fun () ->
      ignore (Sfa.compile { Sfa.domains = 2; threshold = 0 } ~inner:"imfant" z));
  Alcotest.check_raises "bad inner"
    (Invalid_argument "Sfa: inner engine must be imfant or hybrid, got \"dfa\"")
    (fun () -> ignore (Sfa.compile (spec ()) ~inner:"dfa" z))

(* ---------------------------------------------------- Spec grammar *)

let test_split_spec () =
  check Alcotest.bool "not sfa-shaped" true
    (Option.is_none (Sfa.split_spec "imfant"));
  check Alcotest.bool "prefix but no separator" true
    (Option.is_none (Sfa.split_spec "sfanatic"));
  (match Sfa.split_spec "sfa:imfant" with
  | Some (Ok (s, "imfant")) ->
      check Alcotest.int "default domains" Sfa.default.Sfa.domains s.Sfa.domains
  | _ -> Alcotest.fail "sfa:imfant should parse with defaults");
  (match Sfa.split_spec "sfa{domains=4,threshold=2}:hybrid" with
  | Some (Ok (s, "hybrid")) ->
      check Alcotest.int "domains" 4 s.Sfa.domains;
      check Alcotest.int "threshold" 2 s.Sfa.threshold
  | _ -> Alcotest.fail "parameterised spec should parse");
  let is_error = function Some (Error _) -> true | _ -> false in
  List.iter
    (fun bad ->
      check Alcotest.bool (Printf.sprintf "%S rejected" bad) true
        (is_error (Sfa.split_spec bad)))
    [
      "sfa:";
      "sfa{domains=0}:imfant";
      "sfa{domains=65}:imfant";
      "sfa{threshold=0}:imfant";
      "sfa{threshold=x}:imfant";
      "sfa{stride=2}:imfant";
      "sfa{domains=2:imfant";
      "sfa{domains=2}imfant";
    ]

let test_registry_integration () =
  let z = merge_rules [ "ab"; "b$" ] in
  let eng =
    Registry.compile_automaton_exn "sfa{domains=2,threshold=1}:imfant" z
  in
  let im = Im.compile z in
  check
    Alcotest.(list (pair int int))
    "packed run equals imfant"
    (sort (im_events (Im.run im "abxab")))
    (sort
       (List.map
          (fun e -> (e.Engine_sig.fsa, e.Engine_sig.end_pos))
          (Engine_sig.run eng "abxab")));
  check Alcotest.string "underlying strips the wrapper" "imfant"
    (Registry.underlying "sfa{domains=2}:imfant");
  check Alcotest.string "underlying strips stacked wrappers" "hybrid"
    (Registry.underlying "sfa:faulty{seed=1}:hybrid");
  (match Registry.compile_automaton "sfa:dfa" z with
  | Error msg ->
      check Alcotest.bool "inner restriction named" true
        (contains msg "imfant")
  | Ok _ -> Alcotest.fail "sfa:dfa must not compile");
  check Alcotest.bool "table capable" true
    (Registry.can_load_tables "sfa{domains=2,threshold=1}:imfant")

let test_tables_round_trip () =
  let z = merge_rules [ "ab"; "a(b|c)*d"; "ab$" ] in
  let im = Im.compile z in
  let sf = Sfa.compile (spec ~domains:3 ()) ~inner:"imfant" z in
  let loaded = Sfa.of_tables (spec ~domains:3 ()) ~inner:"hybrid"
      (Sfa.export_tables sf)
  in
  let input = "abcbcdababdxabcd" in
  check
    Alcotest.(list (pair int int))
    "loaded engine agrees"
    (sort (im_events (Im.run im input)))
    (sort (sfa_events (Sfa.run loaded input)))

(* -------------------------------------------------------- Sessions *)

let sfa_chunked_session sf chunks =
  let s = Sfa.session sf in
  let fed = List.concat_map (fun c -> Sfa.feed s c) chunks in
  let flushed = Sfa.finish s in
  sfa_events (fed @ flushed)

let test_session_equals_whole () =
  let z = merge_rules [ "hello"; "lo wo"; "ld$" ] in
  let im = Im.compile z in
  let whole = sort (im_events (Im.run im "say hello world")) in
  List.iter
    (fun inner ->
      let sf = Sfa.compile (spec ()) ~inner z in
      check
        Alcotest.(list (pair int int))
        (inner ^ " session, split mid-match")
        whole
        (sort (sfa_chunked_session sf [ "say hel"; "lo wor"; "ld" ])))
    [ "imfant"; "hybrid" ]

let test_interleaved_sessions () =
  let z = merge_rules [ "a+b"; "ab$"; "^a" ] in
  let im = Im.compile z in
  let sf = Sfa.compile (spec ()) ~inner:"hybrid" z in
  let in1 = "aabacbdabaab" and in2 = "abbbaaabab" in
  let s1 = Sfa.session sf and s2 = Sfa.session sf in
  let acc1 = ref [] and acc2 = ref [] in
  for i = 0 to max (String.length in1) (String.length in2) - 1 do
    if i < String.length in1 then
      acc1 := List.rev_append (Sfa.feed s1 (String.make 1 in1.[i])) !acc1;
    if i < String.length in2 then
      acc2 := List.rev_append (Sfa.feed s2 (String.make 1 in2.[i])) !acc2
  done;
  check
    Alcotest.(list (pair int int))
    "session 1"
    (sort (im_events (Im.run im in1)))
    (sort (sfa_events (List.rev !acc1 @ Sfa.finish s1)));
  check
    Alcotest.(list (pair int int))
    "session 2"
    (sort (im_events (Im.run im in2)))
    (sort (sfa_events (List.rev !acc2 @ Sfa.finish s2)));
  Sfa.reset s1;
  check Alcotest.int "position reset" 0 (Sfa.position s1)

(* ------------------------------------------------------ Properties *)

let build_ruleset rules =
  Merge.merge
    (Array.of_list
       (List.map
          (fun r ->
            Mfsa_automata.Multiplicity.fuse
              (Mfsa_automata.Epsilon.remove
                 (Mfsa_automata.Thompson.build
                    (Mfsa_automata.Simplify.char_classes_rule
                       (Mfsa_automata.Loops.expand_rule r)))))
          rules))

let print_case (d, (rules, input)) =
  Printf.sprintf "domains=%d %s" d (Gen_re.print_ruleset_input (rules, input))

(* Chunk counts 1–8 (often exceeding the input length) with
   threshold=1, so every non-empty input takes the parallel path. *)
let prop_equals inner seq_run =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150
       ~name:(Printf.sprintf "sfa:%s run = %s run" inner inner)
       ~print:print_case
       QCheck2.Gen.(
         pair (int_range 1 8) (pair (Gen_re.ruleset ()) Gen_re.input))
       (fun (d, (rules, input)) ->
         let z = build_ruleset rules in
         let sf = Sfa.compile (spec ~domains:d ()) ~inner z in
         sort (sfa_events (Sfa.run sf input)) = sort (seq_run z input)))

let prop_sfa_imfant =
  prop_equals "imfant" (fun z input ->
      im_events (Im.run (Im.compile z) input))

let prop_sfa_hybrid =
  prop_equals "hybrid" (fun z input ->
      List.map
        (fun e -> (e.Hy.fsa, e.Hy.end_pos))
        (Hy.run (Hy.compile z) input))

let prop_sessions_equal_imfant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"interleaved sfa sessions = imfant whole-string runs"
       ~print:(fun (rules, (in1, in2)) ->
         Printf.sprintf "%s input2=%S"
           (Gen_re.print_ruleset_input (rules, in1))
           in2)
       QCheck2.Gen.(pair (Gen_re.ruleset ()) (pair Gen_re.input Gen_re.input))
       (fun (rules, (in1, in2)) ->
         let z = build_ruleset rules in
         let im = Im.compile z in
         let sf = Sfa.compile (spec ()) ~inner:"imfant" z in
         let s1 = Sfa.session sf and s2 = Sfa.session sf in
         let acc1 = ref [] and acc2 = ref [] in
         for i = 0 to max (String.length in1) (String.length in2) - 1 do
           if i < String.length in1 then
             acc1 := List.rev_append (Sfa.feed s1 (String.make 1 in1.[i])) !acc1;
           if i < String.length in2 then
             acc2 := List.rev_append (Sfa.feed s2 (String.make 1 in2.[i])) !acc2
         done;
         sort (sfa_events (List.rev !acc1 @ Sfa.finish s1))
         = sort (im_events (Im.run im in1))
         && sort (sfa_events (List.rev !acc2 @ Sfa.finish s2))
            = sort (im_events (Im.run im in2))))

let () =
  Alcotest.run "sfa"
    [
      ( "equivalence",
        [
          Alcotest.test_case "equals sequential engines" `Quick
            test_equals_sequential;
          Alcotest.test_case "per-FSA anchors" `Quick test_anchors;
          Alcotest.test_case "end anchor is global" `Quick
            test_end_anchor_not_chunk_local;
          Alcotest.test_case "literal straddles every boundary" `Quick
            test_literal_straddles_every_boundary;
          Alcotest.test_case "input shorter than domains" `Quick
            test_input_shorter_than_domains;
          Alcotest.test_case "threshold gates chunking" `Quick
            test_threshold_gates_chunking;
          Alcotest.test_case "count and per-fsa" `Quick test_count_and_per_fsa;
          Alcotest.test_case "event ordering" `Quick test_run_is_ordered;
          Alcotest.test_case "span path agrees" `Quick test_run_span_agrees;
          Alcotest.test_case "rejects bad specs" `Quick test_rejects_bad_specs;
        ] );
      ( "registry",
        [
          Alcotest.test_case "spec grammar" `Quick test_split_spec;
          Alcotest.test_case "wrapper through the registry" `Quick
            test_registry_integration;
          Alcotest.test_case "table round trip" `Quick test_tables_round_trip;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "session equals whole" `Quick
            test_session_equals_whole;
          Alcotest.test_case "interleaved sessions" `Quick
            test_interleaved_sessions;
        ] );
      ( "properties",
        [ prop_sfa_imfant; prop_sfa_hybrid; prop_sessions_equal_imfant ] );
    ]

(* Unit and property tests for the high-level Ruleset facade. *)

module R = Mfsa_core.Ruleset
module Pl = Mfsa_core.Pipeline
module Sim = Mfsa_automata.Simulate
module P = Mfsa_frontend.Parser
module Ast = Mfsa_frontend.Ast

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let event = Alcotest.(pair int int)

let events_of rs input =
  List.map (fun e -> (e.R.rule, e.R.end_pos)) (R.run rs input)

let oracle patterns input =
  (* Per-rule reference matching through the single-FSA pipeline. *)
  Array.to_list patterns
  |> List.concat_map (fun (i, p) ->
         match Pl.build_fsa p with
         | Ok a -> List.map (fun e -> (i, e)) (Sim.match_ends a input)
         | Error _ -> [])
  |> List.sort (fun (r1, e1) (r2, e2) ->
         if e1 <> e2 then Int.compare e1 e2 else Int.compare r1 r2)

let indexed patterns = Array.mapi (fun i p -> (i, p)) patterns

let rules = [| "abc"; "abd"; "x[yz]+"; "ab"; "bc" |]

let test_compile_and_run () =
  let rs = R.compile_exn rules in
  check Alcotest.int "n_rules" 5 (R.n_rules rs);
  check Alcotest.int "one mfsa" 1 (R.n_mfsas rs);
  check Alcotest.(array string) "patterns preserved" rules (R.patterns rs);
  let input = "abcabdxyz" in
  check (Alcotest.list event) "matches oracle"
    (oracle (indexed rules) input)
    (events_of rs input)

let test_merging_factor_grouping () =
  let rs = R.compile_exn ~m:2 rules in
  check Alcotest.int "ceil(5/2) mfsas" 3 (R.n_mfsas rs);
  let input = "abcabdxyzbc" in
  check (Alcotest.list event) "grouped still matches oracle"
    (oracle (indexed rules) input)
    (events_of rs input)

let test_clustered_preserves_global_indices () =
  (* Interleaved families: clustering permutes internally, but match
     events must still carry the original indices. *)
  let patterns = [| "aaaa1"; "zzzz1"; "aaaa2"; "zzzz2" |] in
  let rs = R.compile_exn ~m:2 ~cluster:true patterns in
  let input = "xxaaaa1yyzzzz2" in
  check (Alcotest.list event) "clustered matches oracle"
    (oracle (indexed patterns) input)
    (events_of rs input)

let test_ccsplit_preserves_matching () =
  let patterns = [| "x[abce]y"; "x[bcd]y" |] in
  let rs = R.compile_exn ~ccsplit:true patterns in
  let input = "xbyxdyxay" in
  check (Alcotest.list event) "cc-split matches oracle"
    (oracle (indexed patterns) input)
    (events_of rs input)

let test_counts () =
  let rs = R.compile_exn [| "a"; "aa" |] in
  check Alcotest.(array int) "per rule" [| 3; 2 |] (R.count_per_rule rs "aaa");
  check Alcotest.int "total" 5 (R.count rs "aaa")

let test_threads_equivalent () =
  let rs = R.compile_exn ~m:2 rules in
  let input = "abcabdxyzbcab" in
  check (Alcotest.list event) "threads=3 same as threads=1"
    (events_of rs input)
    (List.map (fun e -> (e.R.rule, e.R.end_pos)) (R.run ~threads:3 rs input))

let test_anml_roundtrip () =
  let rs = R.compile_exn ~m:2 rules in
  match R.of_anml (R.to_anml rs) with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok rs' ->
      check Alcotest.int "rules preserved" (R.n_rules rs) (R.n_rules rs');
      check Alcotest.(array string) "patterns preserved" (R.patterns rs)
        (R.patterns rs');
      let input = "abcabdxyz" in
      check (Alcotest.list event) "same matches" (events_of rs input)
        (events_of rs' input)

let test_of_anml_errors () =
  (match R.of_anml "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match R.of_anml "<automata-network mfsa-count=\"0\"></automata-network>" with
  | Error msg ->
      check Alcotest.string "empty document"
        "Ruleset.of_anml: document contains no MFSA" msg
  | Ok _ -> Alcotest.fail "expected error"

let test_compile_errors () =
  (match R.compile [| "ok"; "(bad" |] with
  | Error e -> check Alcotest.int "index" 1 e.Pl.rule_index
  | Ok _ -> Alcotest.fail "expected error");
  Alcotest.check_raises "compile_exn"
    (Pl.Compile_error
       {
         rule_index = 1;
         pattern = "(bad";
         message = "at offset 0: unmatched '('";
       })
    (fun () -> ignore (R.compile_exn [| "ok"; "(bad" |]))

let test_compression_reported () =
  let rs = R.compile_exn [| "prefixed1"; "prefixed2"; "prefixed3" |] in
  let cs, ct = R.compression rs in
  check Alcotest.bool "states compressed" true (cs > 30.);
  check Alcotest.bool "transitions compressed" true (ct > 0.);
  (* ANML-loaded matcher recomputes the baseline lazily. *)
  let rs' = Result.get_ok (R.of_anml (R.to_anml rs)) in
  let cs', _ = R.compression rs' in
  check (Alcotest.float 0.01) "same compression after reload" cs cs'

let test_streaming_facade () =
  let rs = R.compile_exn ~m:2 rules in
  let input = "abcabdxyzbcab" in
  let whole = events_of rs input in
  let s = R.session rs in
  let fed =
    List.concat_map
      (fun chunk -> R.feed s chunk)
      [ "abcab"; "dxy"; "zbcab" ]
  in
  let flushed = R.finish s in
  check (Alcotest.list event) "chunked equals whole" whole
    (List.map (fun e -> (e.R.rule, e.R.end_pos)) (fed @ flushed));
  R.reset s;
  let again = R.feed s input in
  check (Alcotest.list event) "reset replays" whole
    (List.map (fun e -> (e.R.rule, e.R.end_pos)) (again @ R.finish s))

let prop_facade_matches_oracle =
  qtest
    (QCheck2.Test.make ~count:60 ~name:"ruleset facade = per-rule oracle"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (gen_rules, input) ->
         let patterns =
           Array.of_list
             (List.map (fun r -> Format.asprintf "%a" Ast.pp_rule r) gen_rules)
         in
         match R.compile ~m:2 patterns with
         | Error _ -> QCheck2.assume_fail ()
         | Ok rs -> events_of rs input = oracle (indexed patterns) input))

let prop_extensions_match_plain =
  qtest
    (QCheck2.Test.make ~count:50
       ~name:"ruleset: cluster/ccsplit change nothing observable"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (gen_rules, input) ->
         let patterns =
           Array.of_list
             (List.map (fun r -> Format.asprintf "%a" Ast.pp_rule r) gen_rules)
         in
         match R.compile ~m:2 patterns with
         | Error _ -> QCheck2.assume_fail ()
         | Ok plain ->
             let reference = events_of plain input in
             List.for_all
               (fun rs -> events_of rs input = reference)
               [
                 R.compile_exn ~m:2 ~cluster:true patterns;
                 R.compile_exn ~m:2 ~ccsplit:true patterns;
                 R.compile_exn ~m:2 ~cluster:true ~ccsplit:true patterns;
               ]))

let () =
  Alcotest.run "ruleset"
    [
      ( "ruleset",
        [
          Alcotest.test_case "compile and run" `Quick test_compile_and_run;
          Alcotest.test_case "merging factor" `Quick test_merging_factor_grouping;
          Alcotest.test_case "clustered global indices" `Quick
            test_clustered_preserves_global_indices;
          Alcotest.test_case "cc-split" `Quick test_ccsplit_preserves_matching;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "thread equivalence" `Quick test_threads_equivalent;
          Alcotest.test_case "ANML roundtrip" `Quick test_anml_roundtrip;
          Alcotest.test_case "of_anml errors" `Quick test_of_anml_errors;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
          Alcotest.test_case "compression" `Quick test_compression_reported;
          Alcotest.test_case "streaming facade" `Quick test_streaming_facade;
          prop_facade_matches_oracle;
          prop_extensions_match_plain;
        ] );
    ]

(* Hot-loop optimisation tests: byte-class compression, the literal
   prefilter, 2-byte striding — each optimised engine must be
   match-identical to its unoptimised self, batch and streaming. *)

module P = Mfsa_frontend.Parser
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module Hy = Mfsa_engine.Hybrid
module Tuning = Mfsa_engine.Tuning
module Prefilter = Mfsa_engine.Prefilter
module Registry = Mfsa_engine.Registry
module Engine_sig = Mfsa_engine.Engine_sig
module Gen = QCheck2.Gen

let check = Alcotest.check

let fsa_of_rule rule =
  let module A = Mfsa_automata in
  A.Multiplicity.fuse
    (A.Epsilon.remove
       (A.Thompson.build
          (A.Simplify.char_classes_rule (A.Loops.expand_rule rule))))

let fsa_of src = fsa_of_rule (P.parse_exn src)

let mfsa_of srcs = Merge.merge (Array.of_list (List.map fsa_of srcs))

let baseline =
  { Tuning.default with Tuning.classes = false; prefilter = false; stride = 1 }

let event =
  Alcotest.testable
    (fun fmt e ->
      Format.fprintf fmt "{fsa=%d; end_pos=%d}" e.Engine_sig.fsa
        e.Engine_sig.end_pos)
    ( = )

(* Canonical event order for cross-engine comparison: engines agree
   on the event *set* but not on intra-position tie order (iMFAnt
   reports ties in transition-traversal order). *)
let sort_ev =
  List.sort (fun a b ->
      if a.Engine_sig.end_pos <> b.Engine_sig.end_pos then
        compare a.Engine_sig.end_pos b.Engine_sig.end_pos
      else compare a.Engine_sig.fsa b.Engine_sig.fsa)

(* ------------------------------------------------- Byte classes *)

(* Rules "ab" and "a[0-9]": the distinct byte behaviours are 'a',
   'b', the digits, and everything else. Ids are assigned in byte
   order, so the never-mentioned bytes (starting at byte 0) get class
   0, digits class 1, 'a' class 2, 'b' class 3. *)
let test_class_of_byte_pinned () =
  let z = mfsa_of [ "ab"; "a[0-9]" ] in
  let cls = Mfsa.classes z in
  check Alcotest.int "class count" 4 cls.Mfsa.n_classes;
  let id c = Char.code (Bytes.get cls.Mfsa.class_of_byte (Char.code c)) in
  check Alcotest.int "other bytes" 0 (id '\000');
  check Alcotest.int "other bytes (x)" 0 (id 'x');
  check Alcotest.int "digit 0" 1 (id '0');
  check Alcotest.int "digit 9" 1 (id '9');
  check Alcotest.int "a" 2 (id 'a');
  check Alcotest.int "b" 3 (id 'b');
  (* The memo returns the same value and the engine inherits it. *)
  check Alcotest.int "memoised" 4 (Mfsa.classes z).Mfsa.n_classes;
  check Alcotest.int "engine class count" 4 (Im.n_classes (Im.compile z))

let test_classes_tuned_off () =
  let z = mfsa_of [ "ab"; "a[0-9]" ] in
  Tuning.with_tuning baseline (fun () ->
      check Alcotest.int "identity partition" 256 (Im.n_classes (Im.compile z)))

let test_identity_classes () =
  let c = Mfsa.identity_classes in
  check Alcotest.int "256 classes" 256 c.Mfsa.n_classes;
  check Alcotest.int "byte = class" 65
    (Char.code (Bytes.get c.Mfsa.class_of_byte 65))

(* ------------------------------------------------- Prefix sets *)

let prefix_set src = Prefilter.prefix_set (P.parse_exn src).Mfsa_frontend.Ast.ast

let test_prefix_sets () =
  let sl = Alcotest.(option (list string)) in
  check sl "literal" (Some [ "abc" ]) (prefix_set "abc");
  check sl "leading star" None (prefix_set "a*bc");
  check sl "alternation" (Some [ "abx"; "cdx" ]) (prefix_set "(ab|cd)x");
  check sl "plus keeps prefix" (Some [ "hel" ]) (prefix_set "hel+o");
  check sl "1-byte prefix unusable" None (prefix_set "a(b|c*)");
  check sl "class expands" (Some [ "0a"; "1a" ]) (prefix_set "[01]a");
  check sl "nullable" None (prefix_set "(ab)?")

let test_exact_strings () =
  let sl = Alcotest.(option (list string)) in
  let exact src =
    Option.map (List.sort String.compare)
      (Prefilter.exact_strings (P.parse_exn src).Mfsa_frontend.Ast.ast)
  in
  check sl "literal" (Some [ "foo" ]) (exact "foo");
  check sl "alt" (Some [ "bar"; "baz" ]) (exact "ba(r|z)");
  check sl "opt" (Some [ "ab"; "abc" ]) (exact "ab(c)?");
  check sl "star is infinite" None (exact "ab*");
  check sl "unbounded repeat" None (exact "a{2,}")

let test_prefilter_analyze () =
  (* Every rule carries a usable literal — the filter builds. *)
  let z = mfsa_of [ "hello"; "worl+d" ] in
  (match Prefilter.analyze z with
  | None -> Alcotest.fail "expected a prefilter"
  | Some p ->
      check Alcotest.(list int) "candidates"
        [ 2; 13 ]
        (Array.to_list (Prefilter.candidates p "xyhelloxxxxxxworld")));
  (* One rule without a mandatory literal disables the filter. *)
  check Alcotest.bool "no filter" true
    (Prefilter.analyze (mfsa_of [ "hello"; "a*b" ]) = None);
  (* Start-anchored rules need no literal: they run from position 0
     regardless, so they do not block the filter. *)
  check Alcotest.bool "anchored rule no veto" true
    (Prefilter.analyze (mfsa_of [ "hello"; "^a*b" ]) <> None)

(* ------------------------------------------- Optimised = baseline *)

let engines_equal ?(msg = "") z input =
  let base =
    sort_ev
      (Tuning.with_tuning baseline (fun () -> Im.run (Im.compile z) input))
  in
  List.iter
    (fun name ->
      let opt = sort_ev (Engine_sig.run (Registry.compile_automaton_exn name z) input) in
      check (Alcotest.list event)
        (Printf.sprintf "%s optimised = baseline %s" name msg)
        base opt)
    (Registry.general_names ())

let test_known_divergence_candidates () =
  (* Hand-picked shapes that stress each optimisation's edge cases:
     odd input lengths (stride tail), literals at position 0 and at
     the very end (prefilter boundaries), anchors, and overlapping
     literal owners. *)
  List.iter
    (fun (rules, inputs) ->
      let z = mfsa_of rules in
      List.iter (fun i -> engines_equal ~msg:(String.concat "," rules) z i) inputs)
    [
      ( [ "hello"; "help" ],
        [ "hellohelp"; "xhello"; "hellx"; "hel"; ""; "h"; "xxhelloxxhelpx" ] );
      ([ "ab"; "a[0-9]" ], [ "ab"; "a5"; "a"; "ba9ab"; "zzzzz" ]);
      ([ "^ab"; "cd$" ], [ "abcd"; "cdab"; "ab"; "cd"; "abxcd" ]);
      ([ "ab+c"; "abd" ], [ "abbbc"; "abdabc"; "abcabd" ]);
      ([ "aa" ], [ "aaaa"; "aaa" ]);
    ]

let prop_optimised_equals_baseline =
  QCheck2.Test.make ~count:120
    ~name:"every engine, full tuning = untuned imfant"
    ~print:Gen_re.print_ruleset_input
    (Gen.pair (Gen_re.ruleset ()) Gen_re.input)
    (fun (rules, input) ->
      let z = Merge.merge (Array.of_list (List.map fsa_of_rule rules)) in
      let base =
        sort_ev
          (Tuning.with_tuning baseline (fun () -> Im.run (Im.compile z) input))
      in
      List.for_all
        (fun name ->
          let opt =
            sort_ev (Engine_sig.run (Registry.compile_automaton_exn name z) input)
          in
          if base = opt then true
          else
            QCheck2.Test.fail_reportf "%s diverges on %S: %d vs %d events" name
              input (List.length base) (List.length opt))
        (Registry.general_names ()))

(* Wide-alphabet rules: large class counts (possibly past the
   stride-2 gate) and binary bytes through the partition map. *)
let prop_wide_alphabet =
  QCheck2.Test.make ~count:60 ~name:"wide alphabet, full tuning = baseline"
    ~print:Gen_re.print_ruleset_input
    (Gen.pair
       (Gen.list_size (Gen.int_range 2 4) Gen_re.wide_rule)
       Gen_re.wide_input)
    (fun (rules, input) ->
      let z = Merge.merge (Array.of_list (List.map fsa_of_rule rules)) in
      let base =
        sort_ev
          (Tuning.with_tuning baseline (fun () -> Im.run (Im.compile z) input))
      in
      sort_ev (Im.run (Im.compile z) input) = base
      && sort_ev (Hy.run (Hy.compile z) input) = base)

(* Per-optimisation ablation: each knob alone must also agree. *)
let prop_each_knob_alone =
  QCheck2.Test.make ~count:60 ~name:"each optimisation alone = baseline"
    ~print:Gen_re.print_ruleset_input
    (Gen.pair (Gen_re.ruleset ()) Gen_re.input)
    (fun (rules, input) ->
      let z = Merge.merge (Array.of_list (List.map fsa_of_rule rules)) in
      let base =
        sort_ev
          (Tuning.with_tuning baseline (fun () -> Im.run (Im.compile z) input))
      in
      List.for_all
        (fun t ->
          let im =
            sort_ev
              (Tuning.with_tuning t (fun () -> Im.run (Im.compile z) input))
          in
          let hy =
            sort_ev
              (Tuning.with_tuning t (fun () -> Hy.run (Hy.compile z) input))
          in
          im = base && hy = base)
        [
          { baseline with Tuning.classes = true };
          { baseline with Tuning.prefilter = true };
          { baseline with Tuning.stride = 2 };
        ])

(* ------------------------------------------------------ Streaming *)

(* NB: explicit sequencing — OCaml does not define operand order for
   [@], so chaining feeds with it would run them backwards. *)
let chunked_feed session_feed chunks =
  List.fold_left (fun acc c -> acc @ session_feed c) [] chunks

let split_at input cuts =
  let len = String.length input in
  let cuts = List.sort_uniq compare (List.map (fun c -> c mod (len + 1)) cuts) in
  let rec go start = function
    | [] -> if start >= len then [] else [ String.sub input start (len - start) ]
    | c :: rest ->
        if c <= start then go start rest
        else String.sub input start (c - start) :: go c rest
  in
  go 0 cuts

let prop_sessions_chunked =
  QCheck2.Test.make ~count:120
    ~name:"imfant/hybrid sessions: any chunking = batch (full tuning)"
    ~print:(fun ((rules, input), cuts) ->
      Printf.sprintf "%s cuts=[%s]"
        (Gen_re.print_ruleset_input (rules, input))
        (String.concat ";" (List.map string_of_int cuts)))
    (Gen.pair
       (Gen.pair (Gen_re.ruleset ()) Gen_re.input)
       (Gen.list_size (Gen.int_range 0 4) (Gen.int_bound 40)))
    (fun ((rules, input), cuts) ->
      let z = Merge.merge (Array.of_list (List.map fsa_of_rule rules)) in
      let chunks = split_at input cuts in
      let batch =
        sort_ev
          (Tuning.with_tuning baseline (fun () -> Im.run (Im.compile z) input))
      in
      let im = Im.compile z in
      let s = Im.session im in
      let fed_im = chunked_feed (Im.feed s) chunks in
      let got_im = sort_ev (fed_im @ Im.finish s) in
      let hy = Hy.compile z in
      let sh = Hy.session hy in
      let fed_hy = chunked_feed (Hy.feed sh) chunks in
      let got_hy = sort_ev (fed_hy @ Hy.finish sh) in
      if got_im <> batch then
        QCheck2.Test.fail_reportf "imfant session diverges (%d vs %d events)"
          (List.length got_im) (List.length batch)
      else if got_hy <> batch then
        QCheck2.Test.fail_reportf "hybrid session diverges (%d vs %d events)"
          (List.length got_hy) (List.length batch)
      else true)

(* A literal split across the chunk boundary, with the prefilter
   active: the skip logic must not jump over the straddle region. *)
let test_session_straddles_literal () =
  let z = mfsa_of [ "hello" ] in
  let hy = Hy.compile z in
  check Alcotest.bool "prefilter is on" true (Im.prefilter (Hy.imfant hy) <> None);
  List.iter
    (fun (c1, c2) ->
      let s = Hy.session hy in
      let e1 = Hy.feed s c1 in
      let e2 = Hy.feed s c2 in
      let got = e1 @ e2 @ Hy.finish s in
      check (Alcotest.list event)
        (Printf.sprintf "%S + %S" c1 c2)
        [ { Engine_sig.fsa = 0; end_pos = 7 } ]
        got)
    [
      ("xxhel", "loxx");
      ("xxh", "elloxx");
      ("xxhell", "oxx");
      ("x", "xhello");
    ]

let test_skip_counter_moves () =
  let z = mfsa_of [ "needle" ] in
  let im = Im.compile z in
  let input = String.make 4096 'x' ^ "needle" in
  ignore (Im.run im input);
  check Alcotest.bool "imfant skipped bytes" true (Im.skipped_bytes im > 0);
  Im.reset_skipped im;
  check Alcotest.int "reset" 0 (Im.skipped_bytes im);
  let hy = Hy.compile z in
  ignore (Hy.run hy input);
  check Alcotest.bool "hybrid skipped bytes" true
    ((Hy.stats hy).Hy.skipped_bytes > 0)

(* ------------------------------------------------------ ac engine *)

let test_ac_literal_ruleset () =
  let z = mfsa_of [ "foo"; "ba(r|z)" ] in
  let eng = Registry.compile_automaton_exn "ac" z in
  let got = Engine_sig.run eng "xfoobarbaz" in
  check (Alcotest.list event) "events"
    [
      { Engine_sig.fsa = 0; end_pos = 4 };
      { Engine_sig.fsa = 1; end_pos = 7 };
      { Engine_sig.fsa = 1; end_pos = 10 };
    ]
    got;
  (* Agreement with the general engines on its restricted domain. *)
  engines_equal ~msg:"vs ac ruleset" z "xfoobarbazfoofoo";
  check Alcotest.(list int) "count_per_fsa" [ 1; 2 ]
    (Array.to_list (Engine_sig.count_per_fsa eng "xfoobarbaz"))

let test_ac_rejects_nonliteral () =
  match Registry.compile_automaton "ac" (mfsa_of [ "foo"; "a+b" ]) with
  | Ok _ -> Alcotest.fail "ac accepted an infinite rule"
  | Error _ -> ()
  | exception Invalid_argument _ -> ()

let test_ac_anchors_and_sessions () =
  let z = mfsa_of [ "^ab"; "cd$"; "ab" ] in
  let eng = Registry.compile_automaton_exn "ac" z in
  check (Alcotest.list event) "anchors honoured"
    [
      { Engine_sig.fsa = 0; end_pos = 2 };
      { Engine_sig.fsa = 2; end_pos = 2 };
      { Engine_sig.fsa = 2; end_pos = 6 };
      { Engine_sig.fsa = 1; end_pos = 8 };
    ]
    (Engine_sig.run eng "abxxabcd");
  (* Streaming: literal straddles the boundary; end anchor resolves
     only at finish. *)
  let s = Engine_sig.session eng in
  let e1 = Engine_sig.feed s "abxxa" in
  let e2 = Engine_sig.feed s "bcd" in
  let got = e1 @ e2 @ Engine_sig.finish s in
  check (Alcotest.list event) "chunked = batch"
    (Engine_sig.run eng "abxxabcd")
    got

let test_ac_in_registry () =
  check Alcotest.bool "listed" true (List.mem "ac" (Registry.names ()));
  check Alcotest.bool "not general" true
    (not (List.mem "ac" (Registry.general_names ())));
  check Alcotest.bool "documented" true (Registry.doc "ac" <> None)

(* ------------------------------------------------------- Tuning *)

let test_tuning_validation () =
  (match Tuning.set { Tuning.default with Tuning.stride = 3 } with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "stride 3 accepted");
  let before = Tuning.get () in
  (try
     Tuning.with_tuning baseline (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "restored on raise" true (Tuning.get () = before)

let () =
  Alcotest.run "hotloop"
    [
      ( "classes",
        [
          Alcotest.test_case "pinned class map" `Quick test_class_of_byte_pinned;
          Alcotest.test_case "tuned off" `Quick test_classes_tuned_off;
          Alcotest.test_case "identity" `Quick test_identity_classes;
        ] );
      ( "prefilter",
        [
          Alcotest.test_case "prefix sets" `Quick test_prefix_sets;
          Alcotest.test_case "exact strings" `Quick test_exact_strings;
          Alcotest.test_case "analyze" `Quick test_prefilter_analyze;
          Alcotest.test_case "skip counters" `Quick test_skip_counter_moves;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "known edge shapes" `Quick
            test_known_divergence_candidates;
          QCheck_alcotest.to_alcotest prop_optimised_equals_baseline;
          QCheck_alcotest.to_alcotest prop_wide_alphabet;
          QCheck_alcotest.to_alcotest prop_each_knob_alone;
        ] );
      ( "streaming",
        [
          QCheck_alcotest.to_alcotest prop_sessions_chunked;
          Alcotest.test_case "straddling literal" `Quick
            test_session_straddles_literal;
        ] );
      ( "ac",
        [
          Alcotest.test_case "literal ruleset" `Quick test_ac_literal_ruleset;
          Alcotest.test_case "rejects non-literal" `Quick
            test_ac_rejects_nonliteral;
          Alcotest.test_case "anchors + sessions" `Quick
            test_ac_anchors_and_sessions;
          Alcotest.test_case "registry placement" `Quick test_ac_in_registry;
        ] );
      ( "tuning",
        [ Alcotest.test_case "validation" `Quick test_tuning_validation ] );
    ]

(* Tests for the domain-parallel match service: submission-order
   aggregation equal to sequential execution (unit + qcheck over 1–4
   domains), the blocking bounded queue (backpressure, no drops), the
   drain-then-raise exception contract — the same one as Pool.run,
   extended to the persistent worker pool — and the fault-tolerance
   layer: deadlines, retry-with-backoff, replica supervision,
   admission policies, graceful drain, and the shutdown/submit race
   (a submitter admitted before [shutdown] must never strand its jobs
   behind the stop messages). *)

module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Serve = Mfsa_serve.Serve
module Bounded_queue = Mfsa_serve.Bounded_queue
module P = Mfsa_frontend.Parser
module Gen = QCheck2.Gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let merge_rules rules = Merge.merge (Array.of_list (List.map fsa_of rules))

let pairs l = List.map (fun e -> (e.Engine_sig.fsa, e.Engine_sig.end_pos)) l

(* --------------------------------------------------- Bounded queue *)

let test_queue_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Bounded_queue.create: capacity must be >= 1") (fun () ->
      ignore (Bounded_queue.create ~capacity:0))

(* A full queue blocks the producer — it neither drops nor overwrites.
   The third push only returns once a consumer has popped; afterwards
   all three values come out in FIFO order. *)
let test_queue_full_blocks () =
  let q = Bounded_queue.create ~capacity:2 in
  Bounded_queue.push q 1;
  Bounded_queue.push q 2;
  let pushed = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        Bounded_queue.push q 3;
        Atomic.set pushed true)
  in
  (* Give the producer ample time to (wrongly) complete. *)
  Unix.sleepf 0.05;
  check Alcotest.bool "producer blocked on a full queue" false
    (Atomic.get pushed);
  check Alcotest.int "depth capped at capacity" 2 (Bounded_queue.length q);
  check Alcotest.int "fifo head survives" 1 (Bounded_queue.pop q);
  Domain.join producer;
  check Alcotest.bool "producer resumed after a pop" true (Atomic.get pushed);
  check Alcotest.int "second" 2 (Bounded_queue.pop q);
  check Alcotest.int "third (nothing dropped)" 3 (Bounded_queue.pop q);
  check Alcotest.int "drained" 0 (Bounded_queue.length q);
  check Alcotest.int "high-water mark" 2 (Bounded_queue.hwm q);
  check Alcotest.int "capacity" 2 (Bounded_queue.capacity q)

(* Pop blocks on an empty queue until a push arrives. *)
let test_queue_empty_blocks () =
  let q = Bounded_queue.create ~capacity:4 in
  let got = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () -> Atomic.set got (Bounded_queue.pop q))
  in
  Unix.sleepf 0.02;
  check Alcotest.int "consumer still waiting" 0 (Atomic.get got);
  Bounded_queue.push q 7;
  Domain.join consumer;
  check Alcotest.int "woken with the value" 7 (Atomic.get got)

let test_queue_try_push () =
  let q = Bounded_queue.create ~capacity:2 in
  check Alcotest.bool "room" true (Bounded_queue.try_push q 1);
  check Alcotest.bool "room" true (Bounded_queue.try_push q 2);
  check Alcotest.bool "full refuses" false (Bounded_queue.try_push q 3);
  check Alcotest.int "refused push left no trace" 2 (Bounded_queue.length q);
  check Alcotest.int "fifo intact" 1 (Bounded_queue.pop q);
  check Alcotest.bool "room again after a pop" true (Bounded_queue.try_push q 4);
  check Alcotest.int "second" 2 (Bounded_queue.pop q);
  check Alcotest.int "third" 4 (Bounded_queue.pop q)

let test_queue_try_push_evict () =
  let q = Bounded_queue.create ~capacity:3 in
  List.iter (fun v -> Bounded_queue.push q v) [ 10; 21; 12 ];
  (* Room left: behaves as a plain push. *)
  let q2 = Bounded_queue.create ~capacity:4 in
  Bounded_queue.push q2 1;
  (match Bounded_queue.try_push_evict q2 2 ~evictable:(fun _ -> true) with
  | `Pushed -> ()
  | _ -> Alcotest.fail "room available: expected `Pushed");
  (* Full: the *oldest* element satisfying the predicate goes (here
     the odd ones), survivors keep FIFO order, the new element enters
     at the tail. *)
  (match Bounded_queue.try_push_evict q 34 ~evictable:(fun v -> v mod 2 = 1) with
  | `Evicted 21 -> ()
  | `Evicted v -> Alcotest.failf "evicted %d, wanted the oldest odd (21)" v
  | _ -> Alcotest.fail "expected an eviction");
  check Alcotest.int "depth unchanged" 3 (Bounded_queue.length q);
  (* Full and nothing evictable: refused, no change. *)
  (match Bounded_queue.try_push_evict q 44 ~evictable:(fun v -> v mod 2 = 1) with
  | `Full -> ()
  | _ -> Alcotest.fail "no evictable element: expected `Full");
  check Alcotest.int "oldest survivor" 10 (Bounded_queue.pop q);
  check Alcotest.int "next survivor" 12 (Bounded_queue.pop q);
  check Alcotest.int "new element at the tail" 34 (Bounded_queue.pop q)

(* ------------------------------------------------- Serve basics *)

let rules = [ "hello"; "he(l|n)p"; "a(b|c)*d"; "end$" ]

let inputs =
  [| "say hello"; ""; "abd acd end"; "help help"; "no match"; "abcbcbd" |]

let test_batch_matches_sequential () =
  let z = merge_rules rules in
  let im = Im.compile z in
  let expected = Array.map (fun i -> pairs (Im.run im i)) inputs in
  List.iter
    (fun domains ->
      let srv = Serve.create ~domains z in
      check Alcotest.int "domains accessor" domains (Serve.domains srv);
      check Alcotest.string "engine accessor" "imfant" (Serve.engine srv);
      let got = Array.map pairs (Serve.match_batch srv inputs) in
      Array.iteri
        (fun i exp ->
          check
            Alcotest.(list (pair int int))
            (Printf.sprintf "input %d on %d domains" i domains)
            exp got.(i))
        expected;
      check Alcotest.(array (list (pair int int))) "results in order" expected
        got;
      Serve.shutdown srv)
    [ 1; 2; 3 ]

let test_empty_batch () =
  let srv = Serve.create ~domains:2 (merge_rules rules) in
  check Alcotest.int "empty batch" 0 (Array.length (Serve.match_batch srv [||]));
  Serve.shutdown srv

let test_stats_accumulate () =
  let z = merge_rules rules in
  let srv = Serve.create ~domains:2 ~queue_capacity:3 z in
  ignore (Serve.match_batch srv inputs);
  ignore (Serve.match_batch srv [| "hello" |]);
  let s = Serve.stats srv in
  Serve.shutdown srv;
  check Alcotest.int "batches" 2 s.Serve.batches;
  check Alcotest.int "inputs" (Array.length inputs + 1) s.Serve.inputs;
  check Alcotest.int "bytes"
    (Array.fold_left (fun a i -> a + String.length i) 0 inputs + 5)
    s.Serve.bytes;
  check Alcotest.int "jobs sum to inputs"
    (Array.length inputs + 1)
    (Array.fold_left ( + ) 0 s.Serve.per_domain_jobs);
  check Alcotest.int "queue capacity" 3 s.Serve.queue_capacity;
  check Alcotest.bool "hwm within capacity" true
    (s.Serve.queue_hwm >= 1 && s.Serve.queue_hwm <= 3);
  check Alcotest.bool "elapsed positive" true (s.Serve.elapsed > 0.);
  check Alcotest.bool "throughput positive" true
    (Serve.throughput_mbps s > 0.);
  check Alcotest.int "one utilisation figure per domain" 2
    (Array.length (Serve.utilisation s))

(* The elapsed-time bugfix: serving time used to accumulate only when
   a batch settled, so stats taken mid-batch reported elapsed 0 (and
   throughput/utilisation 0 or stale) however long the service had
   been grinding. Submit a long batch from another domain and poll:
   we must observe elapsed > 0 while batches is still 0. *)
let test_elapsed_advances_mid_batch () =
  let z = merge_rules rules in
  let srv = Serve.create ~domains:1 z in
  let input =
    String.concat ""
      (List.init 50_000 (fun _ -> "say hello world and ask for help "))
  in
  let submitter =
    Domain.spawn (fun () -> ignore (Serve.match_batch srv [| input; input |]))
  in
  let deadline = Mfsa_util.Clock.now () +. 30. in
  let rec poll () =
    let s = Serve.stats srv in
    if s.Serve.batches = 0 && s.Serve.elapsed > 0. then `Seen
    else if s.Serve.batches > 0 then `Settled_first
    else if Mfsa_util.Clock.now () > deadline then `Timeout
    else begin
      Domain.cpu_relax ();
      poll ()
    end
  in
  let outcome = poll () in
  Domain.join submitter;
  let settled = Serve.stats srv in
  Serve.shutdown srv;
  (match outcome with
  | `Seen -> ()
  | `Settled_first ->
      Alcotest.fail "batch settled before a mid-batch stats call landed"
  | `Timeout -> Alcotest.fail "elapsed never advanced mid-batch");
  (* After settling, the in-flight term is gone: plain accumulation. *)
  check Alcotest.int "inflight drained" 2 settled.Serve.inputs

let test_snapshot_series () =
  let z = merge_rules rules in
  let srv = Serve.create ~domains:2 z in
  ignore (Serve.match_batch srv inputs);
  let snap = Serve.snapshot srv in
  Serve.shutdown srv;
  let module S = Mfsa_obs.Snapshot in
  check
    Alcotest.(option (float 1e-9))
    "batches" (Some 1.)
    (S.number snap "mfsa_serve_batches_total");
  check
    Alcotest.(option (float 1e-9))
    "inputs"
    (Some (float_of_int (Array.length inputs)))
    (S.number snap "mfsa_serve_inputs_total");
  (* Per-domain series exist for both workers, and the job latency
     histogram counted every input exactly once across domains. *)
  let jobs d =
    Option.get
      (S.number ~labels:[ ("domain", string_of_int d) ] snap
         "mfsa_serve_jobs_total")
  in
  check (Alcotest.float 1e-9) "jobs partitioned"
    (float_of_int (Array.length inputs))
    (jobs 0 +. jobs 1);
  let hist_count d =
    match
      S.find ~labels:[ ("domain", string_of_int d) ] snap
        "mfsa_serve_job_seconds"
    with
    | Some { S.value = S.Histogram h; _ } -> h.S.count
    | _ -> Alcotest.failf "job histogram missing for domain %d" d
  in
  check Alcotest.int "histogram observations = inputs"
    (Array.length inputs)
    (hist_count 0 + hist_count 1);
  (* Replica engine metrics are included, tagged by domain. *)
  check Alcotest.bool "replica stats present" true
    (S.find
       ~labels:[ ("domain", "0"); ("engine", "imfant") ]
       snap "mfsa_engine_runs_total"
    <> None)

let test_create_validates () =
  let z = merge_rules rules in
  List.iter
    (fun mk ->
      match mk () with
      | exception Invalid_argument _ -> ()
      | srv ->
          Serve.shutdown srv;
          Alcotest.fail "bad Serve.create accepted")
    [
      (fun () -> Serve.create ~engine:"warp" z);
      (fun () -> Serve.create ~domains:0 z);
      (fun () -> Serve.create ~queue_capacity:0 z);
    ]

(* ------------------------------------------- Failure and shutdown *)

exception Boom of string

(* A registered engine that raises on poisoned inputs: exercises both
   the open registry (tests can shadow or extend the built-ins) and
   the service's drain-then-raise contract. *)
module Failing_engine : Engine_sig.S = struct
  let name = "test-failing"
  let doc = "test-only imfant that raises on inputs containing 'X'"

  type compiled = Im.t

  let compile = Im.compile
  let mfsa = Im.mfsa
  let of_tables = None
  let to_tables _ = None

  let run c input =
    if String.contains input 'X' then raise (Boom input) else Im.run c input

  let count c input = List.length (run c input)

  let count_per_fsa c input =
    ignore (run c input);
    Im.count_per_fsa c input

  let stats _ =
    [
      Mfsa_obs.Snapshot.gauge_i
        ~labels:[ ("engine", name) ]
        "mfsa_engine_poisoned_bytes" 1;
    ]

  let reset_stats _ = ()

  let reset_counters _ = ()

  type session = Im.session

  let session = Im.session
  let feed = Im.feed
  let finish = Im.finish
  let reset = Im.reset
  let position = Im.position
end

let () = Registry.register (module Failing_engine)

let test_raising_job_drains_pool () =
  let z = merge_rules rules in
  let srv = Serve.create ~engine:"test-failing" ~domains:2 z in
  (match Serve.match_batch srv [| "hello"; "poisoned X"; "abd"; "help" |] with
  | _ -> Alcotest.fail "expected the job's exception"
  | exception Serve.Job_error { slot; error = Boom input } ->
      check Alcotest.int "which slot" 1 slot;
      check Alcotest.string "which job" "poisoned X" input
  | exception Serve.Job_error { error; _ } ->
      Alcotest.failf "Job_error with the wrong payload: %s"
        (Printexc.to_string error));
  (* The pool survives: the healthy jobs of the failed batch ran, and
     the service keeps answering. *)
  let after = Serve.match_batch srv [| "say hello" |] in
  check
    Alcotest.(list (pair int int))
    "still serving after a failure"
    (pairs (Im.run (Im.compile z) "say hello"))
    (pairs after.(0));
  let s = Serve.stats srv in
  check Alcotest.int "every job of both batches executed" 5
    (Array.fold_left ( + ) 0 s.Serve.per_domain_jobs);
  Serve.shutdown srv

let test_shutdown () =
  let srv = Serve.create ~domains:2 (merge_rules rules) in
  ignore (Serve.match_batch srv [| "hello" |]);
  Serve.shutdown srv;
  Serve.shutdown srv;
  (* idempotent *)
  (match Serve.try_match_batch srv [| "hello" |] with
  | Error Serve.Closed -> ()
  | _ -> Alcotest.fail "try_match_batch accepted after shutdown");
  match Serve.match_batch srv [| "hello" |] with
  | exception Serve.Error Serve.Closed -> ()
  | _ -> Alcotest.fail "match_batch accepted after shutdown"

(* ---------------------------------------------- Fault tolerance *)

(* Convenience: the faulty wrapper with transient faults disabled
   unless asked for — the wrapper's default fail_every is 5. *)
let faulty params = Printf.sprintf "faulty{fail_every=0,%s}:imfant" params

let expected_pairs z inputs =
  let im = Im.compile z in
  Array.map (fun i -> pairs (Im.run im i)) inputs

(* Deterministic retry + supervision schedule on one domain: with
   fail_every=2 and poison_every=5 the attempt trace is forced —
   attempts 2 and 4 fail transiently, attempt 5 poisons the replica
   (respawned with a fresh schedule), and the cycle repeats. Six
   inputs therefore need exactly 7 retries and 2 restarts, and the
   results must still be byte-identical to clean sequential
   execution. *)
let test_retries_and_restarts_deterministic () =
  let z = merge_rules rules in
  let srv =
    Serve.create ~engine:"faulty{seed=1,fail_every=2,poison_every=5}:imfant"
      ~domains:1 ~retries:4 ~backoff:0.0001 z
  in
  let got = Array.map pairs (Serve.match_batch srv inputs) in
  let s = Serve.stats srv in
  Serve.shutdown srv;
  check
    Alcotest.(array (list (pair int int)))
    "fault-injected serving = clean sequential" (expected_pairs z inputs) got;
  check Alcotest.int "retries" 7 s.Serve.retries;
  check Alcotest.int "replica restarts" 2 s.Serve.restarts;
  check Alcotest.int "no timeouts" 0 s.Serve.timeouts;
  check Alcotest.int "no rejections" 0 s.Serve.rejected

(* A replica-poisoning fault with retries exhausted must still leave
   the pool healthy: the job fails, but the worker respawned its
   replica and the next batch is served cleanly. *)
let test_poison_without_retries_respawns () =
  let z = merge_rules rules in
  let srv =
    Serve.create ~engine:(faulty "poison_every=1") ~domains:1 ~retries:0 z
  in
  (match Serve.match_batch srv [| "hello" |] with
  | _ -> Alcotest.fail "expected the poison fault to surface"
  | exception Serve.Job_error { slot = 0; error = Mfsa_engine.Faulty.Replica_poisoned _ }
    -> ());
  let s = Serve.stats srv in
  check Alcotest.int "replica respawned anyway" 1 s.Serve.restarts;
  check Alcotest.int "no retry budget, none spent" 0 s.Serve.retries;
  (* The fresh replica restarts the fault schedule, so with
     poison_every=1 the next job poisons again — proof the respawn
     compiled a genuinely fresh engine (the sticky poison flag of the
     old replica would raise from attempt 0 *without* advancing the
     schedule). *)
  (match Serve.match_batch srv [| "hello" |] with
  | _ -> Alcotest.fail "fresh replica replays the schedule"
  | exception Serve.Job_error _ -> ());
  Serve.shutdown srv

let test_deadline_timeout () =
  let z = merge_rules rules in
  let srv =
    Serve.create ~engine:(faulty "delay_every=1,delay_ms=50") ~domains:1 z
  in
  (match
     Serve.try_match_batch ~deadline:0.08 srv
       [| "say hello"; "help"; "abd"; "end" |]
   with
  | Error (Serve.Timeout { settled; pending }) ->
      check Alcotest.bool "some jobs cancelled" true (settled < 4);
      check Alcotest.bool "accounting within the batch" true
        (settled >= 0 && pending >= 0 && settled + pending <= 4)
  | Ok _ -> Alcotest.fail "a 200ms batch beat an 80ms deadline"
  | Error e -> Alcotest.failf "wrong error: %s" (Serve.error_to_string e));
  let s = Serve.stats srv in
  check Alcotest.int "timeout counted" 1 s.Serve.timeouts;
  (* Cancelled jobs drained without wedging anything: the service
     still answers, correctly, without a deadline. *)
  let after = Serve.match_batch srv [| "say hello" |] in
  check
    Alcotest.(list (pair int int))
    "still serving after a timeout"
    (pairs (Im.run (Im.compile z) "say hello"))
    (pairs after.(0));
  Serve.shutdown srv

let test_reject_admission () =
  let z = merge_rules rules in
  let srv =
    Serve.create ~engine:(faulty "delay_every=1,delay_ms=100") ~domains:1
      ~queue_capacity:1 ~admission:Serve.Reject z
  in
  (* Two single-input batches: the first occupies the worker for
     ~100ms, the second fills the capacity-1 queue. Sequenced with
     sleeps because admission applies to them too. *)
  let occupiers = [| "say hello"; "help" |] in
  let slow = Array.map (fun _ -> ref (Ok [||])) occupiers in
  let submitters =
    Array.mapi
      (fun k input ->
        Domain.spawn (fun () ->
            Unix.sleepf (float_of_int k *. 0.03);
            slow.(k) := Serve.try_match_batch srv [| input |]))
      occupiers
  in
  Unix.sleepf 0.08;
  (match Serve.try_match_batch srv [| "abd" |] with
  | Error (Serve.Rejected { queue_capacity = 1; shed = false }) -> ()
  | Ok _ -> Alcotest.fail "admitted into a full queue under Reject"
  | Error e -> Alcotest.failf "wrong error: %s" (Serve.error_to_string e));
  Array.iter Domain.join submitters;
  Array.iteri
    (fun k r ->
      match !r with
      | Ok got ->
          check
            Alcotest.(list (pair int int))
            "the occupying batches were unaffected"
            (expected_pairs z occupiers).(k)
            (pairs got.(0))
      | Error e ->
          Alcotest.failf "occupying batch failed: %s" (Serve.error_to_string e))
    slow;
  let s = Serve.stats srv in
  Serve.shutdown srv;
  check Alcotest.int "rejection counted" 1 s.Serve.rejected

let test_shed_oldest_admission () =
  let z = merge_rules rules in
  let srv =
    Serve.create ~engine:(faulty "delay_every=1,delay_ms=100") ~domains:1
      ~queue_capacity:2 ~admission:Serve.Shed_oldest z
  in
  (* Victim: job 0 executing, jobs 1–2 filling the queue. *)
  let victim = ref (Ok [||]) in
  let submitter =
    Domain.spawn (fun () ->
        victim := Serve.try_match_batch srv [| "say hello"; "help"; "abd" |])
  in
  Unix.sleepf 0.03;
  let winner = [| "end" |] in
  (match Serve.try_match_batch srv winner with
  | Ok r ->
      check
        Alcotest.(array (list (pair int int)))
        "shedding submitter served" (expected_pairs z winner)
        (Array.map pairs r)
  | Error e -> Alcotest.failf "shedding submitter failed: %s"
                 (Serve.error_to_string e));
  Domain.join submitter;
  (match !victim with
  | Error (Serve.Rejected { shed = true; _ }) -> ()
  | Ok _ -> Alcotest.fail "victim settled although a job was shed"
  | Error e -> Alcotest.failf "wrong victim error: %s" (Serve.error_to_string e));
  let s = Serve.stats srv in
  Serve.shutdown srv;
  check Alcotest.int "shed counted as a rejection" 1 s.Serve.rejected

let test_drain () =
  let z = merge_rules rules in
  let srv =
    Serve.create ~engine:(faulty "delay_every=1,delay_ms=100") ~domains:1 z
  in
  let slow_inputs = [| "say hello"; "help" |] in
  let slow = ref (Ok [||]) in
  let submitter =
    Domain.spawn (fun () -> slow := Serve.try_match_batch srv slow_inputs)
  in
  Unix.sleepf 0.03;
  (* A deadline shorter than the in-flight batch: drain reports
     failure but closes the door. *)
  check Alcotest.bool "drain deadline expires" false
    (Serve.drain ~deadline:0.01 srv);
  (match Serve.try_match_batch srv [| "abd" |] with
  | Error Serve.Closed -> ()
  | _ -> Alcotest.fail "draining service admitted a batch");
  (* Unbounded drain finishes the in-flight batch, then stops. *)
  check Alcotest.bool "drain completes" true (Serve.drain srv);
  check Alcotest.bool "drain idempotent" true (Serve.drain srv);
  Domain.join submitter;
  (match !slow with
  | Ok r ->
      check
        Alcotest.(array (list (pair int int)))
        "in-flight batch settled during drain" (expected_pairs z slow_inputs)
        (Array.map pairs r)
  | Error e -> Alcotest.failf "in-flight batch failed: %s"
                 (Serve.error_to_string e))

(* snapshot must be callable while the workers are mid-batch: replica
   engine counters are published by the workers themselves at job
   boundaries (satellite of the cross-domain stats fix), so the call
   waits for a quiescent point instead of racing the owners. *)
let test_snapshot_mid_load () =
  let z = merge_rules rules in
  let srv = Serve.create ~domains:2 z in
  let input =
    String.concat ""
      (List.init 20_000 (fun _ -> "say hello world and ask for help "))
  in
  let submitter =
    Domain.spawn (fun () ->
        ignore (Serve.match_batch srv [| input; input; input; input |]))
  in
  let module S = Mfsa_obs.Snapshot in
  let snap = Serve.snapshot srv in
  List.iter
    (fun d ->
      check Alcotest.bool
        (Printf.sprintf "replica %s series present mid-load" d)
        true
        (S.find
           ~labels:[ ("domain", d); ("engine", "imfant") ]
           snap "mfsa_engine_runs_total"
        <> None))
    [ "0"; "1" ];
  check Alcotest.bool "fault counters exported" true
    (S.number snap "mfsa_serve_retries_total" = Some 0.
    && S.number snap "mfsa_serve_replica_restarts_total" = Some 0.);
  Domain.join submitter;
  Serve.shutdown srv;
  (* After shutdown the replicas have no owner: direct read path. *)
  let snap = Serve.snapshot srv in
  check Alcotest.bool "snapshot after shutdown" true
    (S.find
       ~labels:[ ("domain", "0"); ("engine", "imfant") ]
       snap "mfsa_engine_runs_total"
    <> None)

(* ------------------------------------------- Shutdown/submit race *)

(* The historical deadlock: a submitter passes the closed check,
   shutdown queues the Stop messages, the workers exit, and the
   submitter's jobs — enqueued *behind* the Stops — never settle. The
   fix makes shutdown wait for in-flight submitters before stopping,
   so hammering submit against shutdown must always terminate: every
   submitter gets either its results or [Closed], never a hang. A
   tiny queue and several submitters keep the window wide open. *)
let test_shutdown_submit_stress () =
  let z = merge_rules [ "ab" ] in
  let expected = expected_pairs z [| "xabx" |] in
  let budget = Mfsa_util.Clock.now () +. 120. in
  for i = 1 to 1000 do
    let srv = Serve.create ~domains:2 ~queue_capacity:1 z in
    let outcomes = Array.init 3 (fun _ -> Atomic.make `Pending) in
    let submitters =
      Array.init 3 (fun k ->
          Domain.spawn (fun () ->
              (* Stagger the submitters across the race window. *)
              for _ = 1 to k * 50 do
                Domain.cpu_relax ()
              done;
              let r =
                match Serve.try_match_batch srv [| "xabx" |] with
                | Ok results -> `Ok (Array.map pairs results)
                | Error Serve.Closed -> `Closed
                | Error e -> `Err (Serve.error_to_string e)
              in
              Atomic.set outcomes.(k) r))
    in
    for _ = 1 to (i mod 7) * 20 do
      Domain.cpu_relax ()
    done;
    Serve.shutdown srv;
    (* Watchdog: the submitters must all settle promptly once the
       service is down. Domain.join cannot time out, so poll the
       outcome flags first and fail loudly instead of hanging CI. *)
    let rec wait_all () =
      if Array.for_all (fun o -> Atomic.get o <> `Pending) outcomes then ()
      else if Mfsa_util.Clock.now () > budget then
        Alcotest.failf "iteration %d: submitter deadlocked against shutdown" i
      else begin
        Domain.cpu_relax ();
        wait_all ()
      end
    in
    wait_all ();
    Array.iter Domain.join submitters;
    Array.iter
      (fun o ->
        match Atomic.get o with
        | `Ok got ->
            if got <> expected then
              Alcotest.failf "iteration %d: settled batch lost results" i
        | `Closed -> ()
        | `Err e -> Alcotest.failf "iteration %d: unexpected error %s" i e
        | `Pending -> assert false)
      outcomes
  done

(* ------------------------------------------------------ Property *)

let fsa_of_rule rule =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule rule))))

let print_case ((rules, inputs), domains) =
  Printf.sprintf "%s inputs=[%s] domains=%d"
    (Gen_re.print_ruleset_input (rules, String.concat "|" inputs))
    (String.concat "; " (List.map (Printf.sprintf "%S") inputs))
    domains

(* Property (a): fault injection is invisible to callers. Any faulty
   wrapper whose transients and poisons are covered by the retry
   budget, on any domain count, under a generous deadline, yields
   results byte-identical to clean sequential execution of the
   underlying engine. *)
let print_faulty_case (((rules, inputs), domains), (seed, fail_every, poison_every)) =
  Printf.sprintf
    "%s inputs=[%s] domains=%d seed=%d fail_every=%d poison_every=%d"
    (Gen_re.print_ruleset_input (rules, String.concat "|" inputs))
    (String.concat "; " (List.map (Printf.sprintf "%S") inputs))
    domains seed fail_every poison_every

let prop_faulty_serving_agrees_with_sequential =
  QCheck2.Test.make ~count:20
    ~name:
      "serve: faulty{..}:imfant + retries + deadline = clean sequential run"
    ~print:print_faulty_case
    (Gen.pair
       (Gen.pair
          (Gen.pair (Gen_re.ruleset ())
             (Gen.list_size (Gen.int_range 0 8) Gen_re.input))
          (Gen.int_range 1 3))
       (Gen.triple (Gen.int_range 0 1000) (Gen.int_range 2 4)
          (Gen.oneof [ Gen.return 0; Gen.int_range 5 9 ])))
    (fun (((rules, inputs), domains), (seed, fail_every, poison_every)) ->
      let z = Merge.merge (Array.of_list (List.map fsa_of_rule rules)) in
      let inputs = Array.of_list inputs in
      let engine =
        Printf.sprintf "faulty{seed=%d,fail_every=%d,poison_every=%d}:imfant"
          seed fail_every poison_every
      in
      let srv = Serve.create ~engine ~domains ~retries:6 ~backoff:0.00005 z in
      let got = Serve.try_match_batch ~deadline:60. srv inputs in
      Serve.shutdown srv;
      match got with
      | Ok r -> Array.map pairs r = expected_pairs z inputs
      | Error _ -> false)

(* Property (b): random interleavings of concurrent match_batch
   against drain/shutdown neither deadlock (watchdogged — a hang
   fails the test rather than CI) nor lose results: every batch the
   service accepted comes back byte-identical to sequential, every
   refused one reports Closed. *)
let prop_shutdown_interleavings_safe =
  QCheck2.Test.make ~count:25
    ~name:"serve: match_batch/drain/shutdown interleavings are safe"
    ~print:(fun (clients, batches, spin, domains) ->
      Printf.sprintf "clients=%d batches=%d spin=%d domains=%d" clients
        batches spin domains)
    (Gen.quad (Gen.int_range 1 3) (Gen.int_range 1 3) (Gen.int_range 0 300)
       (Gen.int_range 1 2))
    (fun (clients, batches, spin, domains) ->
      let z = merge_rules [ "ab"; "c+d" ] in
      let inputs = [| "xabx"; "ccd"; "" |] in
      let expected = expected_pairs z inputs in
      let srv = Serve.create ~domains ~queue_capacity:1 z in
      let outcomes = Array.init clients (fun _ -> Atomic.make `Pending) in
      let workers =
        Array.init clients (fun k ->
            Domain.spawn (fun () ->
                let acc = ref `All_ok in
                for b = 1 to batches do
                  for _ = 1 to k * 37 + (b * 11) do
                    Domain.cpu_relax ()
                  done;
                  match Serve.try_match_batch srv inputs with
                  | Ok r ->
                      if Array.map pairs r <> expected then acc := `Lost
                  | Error Serve.Closed -> ()
                  | Error e -> acc := `Err (Serve.error_to_string e)
                done;
                Atomic.set outcomes.(k) !acc))
      in
      for _ = 1 to spin do
        Domain.cpu_relax ()
      done;
      (* Two concurrent closers: one drains, one shuts down — they
         must coordinate, not crash or double-stop. *)
      let closer = Domain.spawn (fun () -> Serve.shutdown srv) in
      ignore (Serve.drain srv : bool);
      let budget = Mfsa_util.Clock.now () +. 60. in
      let rec wait_all () =
        if Array.for_all (fun o -> Atomic.get o <> `Pending) outcomes then true
        else if Mfsa_util.Clock.now () > budget then false
        else begin
          Domain.cpu_relax ();
          wait_all ()
        end
      in
      let settled = wait_all () in
      if not settled then
        QCheck2.Test.fail_report "client deadlocked against shutdown";
      Array.iter Domain.join workers;
      Domain.join closer;
      Array.for_all
        (fun o ->
          match Atomic.get o with
          | `All_ok -> true
          | `Lost | `Err _ | `Pending -> false)
        outcomes)

let prop_serve_agrees_with_sequential =
  QCheck2.Test.make ~count:30
    ~name:"serve: match_batch = sequential Imfant.run, any domain count"
    ~print:print_case
    (Gen.pair
       (Gen.pair (Gen_re.ruleset ())
          (Gen.list_size (Gen.int_range 0 10) Gen_re.input))
       (Gen.int_range 1 4))
    (fun ((rules, inputs), domains) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let im = Im.compile z in
      let expected =
        Array.map (fun i -> pairs (Im.run im i)) (Array.of_list inputs)
      in
      let srv = Serve.create ~domains z in
      let got =
        Array.map pairs (Serve.match_batch srv (Array.of_list inputs))
      in
      Serve.shutdown srv;
      got = expected)

let () =
  Alcotest.run "serve"
    [
      ( "bounded-queue",
        [
          Alcotest.test_case "rejects bad capacity" `Quick
            test_queue_rejects_bad_capacity;
          Alcotest.test_case "full queue blocks, never drops" `Quick
            test_queue_full_blocks;
          Alcotest.test_case "empty queue blocks pop" `Quick
            test_queue_empty_blocks;
          Alcotest.test_case "try_push refuses when full" `Quick
            test_queue_try_push;
          Alcotest.test_case "try_push_evict sheds the oldest evictable"
            `Quick test_queue_try_push_evict;
        ] );
      ( "batches",
        [
          Alcotest.test_case "batch = sequential" `Quick
            test_batch_matches_sequential;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
          Alcotest.test_case "elapsed advances mid-batch" `Quick
            test_elapsed_advances_mid_batch;
          Alcotest.test_case "snapshot series" `Quick test_snapshot_series;
          Alcotest.test_case "create validates" `Quick test_create_validates;
          qtest prop_serve_agrees_with_sequential;
        ] );
      ( "failure",
        [
          Alcotest.test_case "raising job drains the pool" `Quick
            test_raising_job_drains_pool;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "deterministic retries and restarts" `Quick
            test_retries_and_restarts_deterministic;
          Alcotest.test_case "poison without retries respawns the replica"
            `Quick test_poison_without_retries_respawns;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
          Alcotest.test_case "reject admission" `Quick test_reject_admission;
          Alcotest.test_case "shed-oldest admission" `Quick
            test_shed_oldest_admission;
          Alcotest.test_case "graceful drain" `Quick test_drain;
          Alcotest.test_case "snapshot mid-load" `Quick test_snapshot_mid_load;
          qtest prop_faulty_serving_agrees_with_sequential;
        ] );
      ( "shutdown-race",
        [
          Alcotest.test_case "1000 shutdown/submit interleavings" `Quick
            test_shutdown_submit_stress;
          qtest prop_shutdown_interleavings_safe;
        ] );
    ]

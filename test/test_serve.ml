(* Tests for the domain-parallel match service: submission-order
   aggregation equal to sequential execution (unit + qcheck over 1–4
   domains), the blocking bounded queue (backpressure, no drops), and
   the drain-then-raise exception contract — the same one as Pool.run,
   extended to the persistent worker pool. *)

module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Serve = Mfsa_serve.Serve
module Bounded_queue = Mfsa_serve.Bounded_queue
module P = Mfsa_frontend.Parser
module Gen = QCheck2.Gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let merge_rules rules = Merge.merge (Array.of_list (List.map fsa_of rules))

let pairs l = List.map (fun e -> (e.Engine_sig.fsa, e.Engine_sig.end_pos)) l

(* --------------------------------------------------- Bounded queue *)

let test_queue_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Bounded_queue.create: capacity must be >= 1") (fun () ->
      ignore (Bounded_queue.create ~capacity:0))

(* A full queue blocks the producer — it neither drops nor overwrites.
   The third push only returns once a consumer has popped; afterwards
   all three values come out in FIFO order. *)
let test_queue_full_blocks () =
  let q = Bounded_queue.create ~capacity:2 in
  Bounded_queue.push q 1;
  Bounded_queue.push q 2;
  let pushed = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        Bounded_queue.push q 3;
        Atomic.set pushed true)
  in
  (* Give the producer ample time to (wrongly) complete. *)
  Unix.sleepf 0.05;
  check Alcotest.bool "producer blocked on a full queue" false
    (Atomic.get pushed);
  check Alcotest.int "depth capped at capacity" 2 (Bounded_queue.length q);
  check Alcotest.int "fifo head survives" 1 (Bounded_queue.pop q);
  Domain.join producer;
  check Alcotest.bool "producer resumed after a pop" true (Atomic.get pushed);
  check Alcotest.int "second" 2 (Bounded_queue.pop q);
  check Alcotest.int "third (nothing dropped)" 3 (Bounded_queue.pop q);
  check Alcotest.int "drained" 0 (Bounded_queue.length q);
  check Alcotest.int "high-water mark" 2 (Bounded_queue.hwm q);
  check Alcotest.int "capacity" 2 (Bounded_queue.capacity q)

(* Pop blocks on an empty queue until a push arrives. *)
let test_queue_empty_blocks () =
  let q = Bounded_queue.create ~capacity:4 in
  let got = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () -> Atomic.set got (Bounded_queue.pop q))
  in
  Unix.sleepf 0.02;
  check Alcotest.int "consumer still waiting" 0 (Atomic.get got);
  Bounded_queue.push q 7;
  Domain.join consumer;
  check Alcotest.int "woken with the value" 7 (Atomic.get got)

(* ------------------------------------------------- Serve basics *)

let rules = [ "hello"; "he(l|n)p"; "a(b|c)*d"; "end$" ]

let inputs =
  [| "say hello"; ""; "abd acd end"; "help help"; "no match"; "abcbcbd" |]

let test_batch_matches_sequential () =
  let z = merge_rules rules in
  let im = Im.compile z in
  let expected = Array.map (fun i -> pairs (Im.run im i)) inputs in
  List.iter
    (fun domains ->
      let srv = Serve.create ~domains z in
      check Alcotest.int "domains accessor" domains (Serve.domains srv);
      check Alcotest.string "engine accessor" "imfant" (Serve.engine srv);
      let got = Array.map pairs (Serve.match_batch srv inputs) in
      Array.iteri
        (fun i exp ->
          check
            Alcotest.(list (pair int int))
            (Printf.sprintf "input %d on %d domains" i domains)
            exp got.(i))
        expected;
      check Alcotest.(array (list (pair int int))) "results in order" expected
        got;
      Serve.shutdown srv)
    [ 1; 2; 3 ]

let test_empty_batch () =
  let srv = Serve.create ~domains:2 (merge_rules rules) in
  check Alcotest.int "empty batch" 0 (Array.length (Serve.match_batch srv [||]));
  Serve.shutdown srv

let test_stats_accumulate () =
  let z = merge_rules rules in
  let srv = Serve.create ~domains:2 ~queue_capacity:3 z in
  ignore (Serve.match_batch srv inputs);
  ignore (Serve.match_batch srv [| "hello" |]);
  let s = Serve.stats srv in
  Serve.shutdown srv;
  check Alcotest.int "batches" 2 s.Serve.batches;
  check Alcotest.int "inputs" (Array.length inputs + 1) s.Serve.inputs;
  check Alcotest.int "bytes"
    (Array.fold_left (fun a i -> a + String.length i) 0 inputs + 5)
    s.Serve.bytes;
  check Alcotest.int "jobs sum to inputs"
    (Array.length inputs + 1)
    (Array.fold_left ( + ) 0 s.Serve.per_domain_jobs);
  check Alcotest.int "queue capacity" 3 s.Serve.queue_capacity;
  check Alcotest.bool "hwm within capacity" true
    (s.Serve.queue_hwm >= 1 && s.Serve.queue_hwm <= 3);
  check Alcotest.bool "elapsed positive" true (s.Serve.elapsed > 0.);
  check Alcotest.bool "throughput positive" true
    (Serve.throughput_mbps s > 0.);
  check Alcotest.int "one utilisation figure per domain" 2
    (Array.length (Serve.utilisation s))

(* The elapsed-time bugfix: serving time used to accumulate only when
   a batch settled, so stats taken mid-batch reported elapsed 0 (and
   throughput/utilisation 0 or stale) however long the service had
   been grinding. Submit a long batch from another domain and poll:
   we must observe elapsed > 0 while batches is still 0. *)
let test_elapsed_advances_mid_batch () =
  let z = merge_rules rules in
  let srv = Serve.create ~domains:1 z in
  let input =
    String.concat ""
      (List.init 50_000 (fun _ -> "say hello world and ask for help "))
  in
  let submitter =
    Domain.spawn (fun () -> ignore (Serve.match_batch srv [| input; input |]))
  in
  let deadline = Mfsa_util.Clock.now () +. 30. in
  let rec poll () =
    let s = Serve.stats srv in
    if s.Serve.batches = 0 && s.Serve.elapsed > 0. then `Seen
    else if s.Serve.batches > 0 then `Settled_first
    else if Mfsa_util.Clock.now () > deadline then `Timeout
    else begin
      Domain.cpu_relax ();
      poll ()
    end
  in
  let outcome = poll () in
  Domain.join submitter;
  let settled = Serve.stats srv in
  Serve.shutdown srv;
  (match outcome with
  | `Seen -> ()
  | `Settled_first ->
      Alcotest.fail "batch settled before a mid-batch stats call landed"
  | `Timeout -> Alcotest.fail "elapsed never advanced mid-batch");
  (* After settling, the in-flight term is gone: plain accumulation. *)
  check Alcotest.int "inflight drained" 2 settled.Serve.inputs

let test_snapshot_series () =
  let z = merge_rules rules in
  let srv = Serve.create ~domains:2 z in
  ignore (Serve.match_batch srv inputs);
  let snap = Serve.snapshot srv in
  Serve.shutdown srv;
  let module S = Mfsa_obs.Snapshot in
  check
    Alcotest.(option (float 1e-9))
    "batches" (Some 1.)
    (S.number snap "mfsa_serve_batches_total");
  check
    Alcotest.(option (float 1e-9))
    "inputs"
    (Some (float_of_int (Array.length inputs)))
    (S.number snap "mfsa_serve_inputs_total");
  (* Per-domain series exist for both workers, and the job latency
     histogram counted every input exactly once across domains. *)
  let jobs d =
    Option.get
      (S.number ~labels:[ ("domain", string_of_int d) ] snap
         "mfsa_serve_jobs_total")
  in
  check (Alcotest.float 1e-9) "jobs partitioned"
    (float_of_int (Array.length inputs))
    (jobs 0 +. jobs 1);
  let hist_count d =
    match
      S.find ~labels:[ ("domain", string_of_int d) ] snap
        "mfsa_serve_job_seconds"
    with
    | Some { S.value = S.Histogram h; _ } -> h.S.count
    | _ -> Alcotest.failf "job histogram missing for domain %d" d
  in
  check Alcotest.int "histogram observations = inputs"
    (Array.length inputs)
    (hist_count 0 + hist_count 1);
  (* Replica engine metrics are included, tagged by domain. *)
  check Alcotest.bool "replica stats present" true
    (S.find
       ~labels:[ ("domain", "0"); ("engine", "imfant") ]
       snap "mfsa_engine_runs_total"
    <> None)

let test_create_validates () =
  let z = merge_rules rules in
  List.iter
    (fun mk ->
      match mk () with
      | exception Invalid_argument _ -> ()
      | srv ->
          Serve.shutdown srv;
          Alcotest.fail "bad Serve.create accepted")
    [
      (fun () -> Serve.create ~engine:"warp" z);
      (fun () -> Serve.create ~domains:0 z);
      (fun () -> Serve.create ~queue_capacity:0 z);
    ]

(* ------------------------------------------- Failure and shutdown *)

exception Boom of string

(* A registered engine that raises on poisoned inputs: exercises both
   the open registry (tests can shadow or extend the built-ins) and
   the service's drain-then-raise contract. *)
module Failing_engine : Engine_sig.S = struct
  let name = "test-failing"
  let doc = "test-only imfant that raises on inputs containing 'X'"

  type compiled = Im.t

  let compile = Im.compile
  let mfsa = Im.mfsa

  let run c input =
    if String.contains input 'X' then raise (Boom input) else Im.run c input

  let count c input = List.length (run c input)

  let count_per_fsa c input =
    ignore (run c input);
    Im.count_per_fsa c input

  let stats _ =
    [
      Mfsa_obs.Snapshot.gauge_i
        ~labels:[ ("engine", name) ]
        "mfsa_engine_poisoned_bytes" 1;
    ]

  let reset_stats _ = ()

  type session = Im.session

  let session = Im.session
  let feed = Im.feed
  let finish = Im.finish
  let reset = Im.reset
  let position = Im.position
end

let () = Registry.register (module Failing_engine)

let test_raising_job_drains_pool () =
  let z = merge_rules rules in
  let srv = Serve.create ~engine:"test-failing" ~domains:2 z in
  (match Serve.match_batch srv [| "hello"; "poisoned X"; "abd"; "help" |] with
  | _ -> Alcotest.fail "expected the job's exception"
  | exception Boom input -> check Alcotest.string "which job" "poisoned X" input);
  (* The pool survives: the healthy jobs of the failed batch ran, and
     the service keeps answering. *)
  let after = Serve.match_batch srv [| "say hello" |] in
  check
    Alcotest.(list (pair int int))
    "still serving after a failure"
    (pairs (Im.run (Im.compile z) "say hello"))
    (pairs after.(0));
  let s = Serve.stats srv in
  check Alcotest.int "every job of both batches executed" 5
    (Array.fold_left ( + ) 0 s.Serve.per_domain_jobs);
  Serve.shutdown srv

let test_shutdown () =
  let srv = Serve.create ~domains:2 (merge_rules rules) in
  ignore (Serve.match_batch srv [| "hello" |]);
  Serve.shutdown srv;
  Serve.shutdown srv;
  (* idempotent *)
  match Serve.match_batch srv [| "hello" |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "match_batch accepted after shutdown"

(* ------------------------------------------------------ Property *)

let fsa_of_rule rule =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule rule))))

let print_case ((rules, inputs), domains) =
  Printf.sprintf "%s inputs=[%s] domains=%d"
    (Gen_re.print_ruleset_input (rules, String.concat "|" inputs))
    (String.concat "; " (List.map (Printf.sprintf "%S") inputs))
    domains

let prop_serve_agrees_with_sequential =
  QCheck2.Test.make ~count:30
    ~name:"serve: match_batch = sequential Imfant.run, any domain count"
    ~print:print_case
    (Gen.pair
       (Gen.pair (Gen_re.ruleset ())
          (Gen.list_size (Gen.int_range 0 10) Gen_re.input))
       (Gen.int_range 1 4))
    (fun ((rules, inputs), domains) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let im = Im.compile z in
      let expected =
        Array.map (fun i -> pairs (Im.run im i)) (Array.of_list inputs)
      in
      let srv = Serve.create ~domains z in
      let got =
        Array.map pairs (Serve.match_batch srv (Array.of_list inputs))
      in
      Serve.shutdown srv;
      got = expected)

let () =
  Alcotest.run "serve"
    [
      ( "bounded-queue",
        [
          Alcotest.test_case "rejects bad capacity" `Quick
            test_queue_rejects_bad_capacity;
          Alcotest.test_case "full queue blocks, never drops" `Quick
            test_queue_full_blocks;
          Alcotest.test_case "empty queue blocks pop" `Quick
            test_queue_empty_blocks;
        ] );
      ( "batches",
        [
          Alcotest.test_case "batch = sequential" `Quick
            test_batch_matches_sequential;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
          Alcotest.test_case "elapsed advances mid-batch" `Quick
            test_elapsed_advances_mid_batch;
          Alcotest.test_case "snapshot series" `Quick test_snapshot_series;
          Alcotest.test_case "create validates" `Quick test_create_validates;
          qtest prop_serve_agrees_with_sequential;
        ] );
      ( "failure",
        [
          Alcotest.test_case "raising job drains the pool" `Quick
            test_raising_job_drains_pool;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
    ]

(* Unit tests for the synthetic dataset generators and the stream
   generator. *)

module D = Mfsa_datasets.Datasets
module SG = Mfsa_datasets.Stream_gen
module RG = Mfsa_datasets.Rulegen
module P = Mfsa_frontend.Parser
module Prng = Mfsa_util.Prng
module Indel = Mfsa_util.Indel

let check = Alcotest.check

(* --------------------------------------------------------- Rulegen *)

let test_escape_literal_roundtrip () =
  List.iter
    (fun s ->
      let pattern = RG.escape_literal s in
      match P.parse pattern with
      | Error e ->
          Alcotest.failf "escaped %S does not parse: %s" s (P.error_to_string e)
      | Ok rule ->
          let a = Mfsa_automata.Thompson.build rule in
          check Alcotest.bool
            (Printf.sprintf "%S accepted" s)
            true
            (Mfsa_automata.Simulate.accepts a s);
          check Alcotest.bool
            (Printf.sprintf "%S only" s)
            false
            (Mfsa_automata.Simulate.accepts a (s ^ "!")))
    [ "abc"; "a.b*c"; "(x|y)"; "[k]{2}"; "a\\b"; "tab\there"; "\x01\xfe"; "^start$" ]

let test_word_and_vocab () =
  let g = Prng.create 3 in
  let w = RG.word g ~alphabet:"xy" ~len:10 in
  check Alcotest.int "length" 10 (String.length w);
  String.iter (fun c -> check Alcotest.bool "alphabet" true (c = 'x' || c = 'y')) w;
  let v = RG.vocab g ~n:20 ~min_len:3 ~max_len:6 ~alphabet:"ab" in
  check Alcotest.int "count" 20 (Array.length v);
  Array.iter
    (fun w ->
      check Alcotest.bool "length range" true
        (String.length w >= 3 && String.length w <= 6))
    v

let test_mutate () =
  let g = Prng.create 4 in
  let s = "abcdefgh" in
  let m = RG.mutate g ~edits:2 s in
  check Alcotest.bool "within 2 indels" true (Indel.distance s m <= 2);
  check Alcotest.bool "never empty" true (String.length (RG.mutate g ~edits:10 "a") > 0)

(* -------------------------------------------------------- Datasets *)

let all = D.all ~scale:0.1 ()

let test_six_datasets () =
  check Alcotest.int "six datasets" 6 (List.length all);
  check Alcotest.(list string) "paper order"
    [ "BRO"; "DS9"; "PEN"; "PRO"; "RG1"; "TCP" ]
    (List.map (fun d -> d.D.abbr) all)

let test_all_rules_parse () =
  List.iter
    (fun d ->
      Array.iteri
        (fun i rule ->
          match P.parse rule with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "%s rule %d %S: %s" d.D.abbr i rule
                (P.error_to_string e))
        d.D.rules)
    all

let test_determinism () =
  let a = D.bro217 ~scale:0.1 () and b = D.bro217 ~scale:0.1 () in
  check Alcotest.(array string) "same rules" a.D.rules b.D.rules

let test_scaling () =
  let full = D.poweren () and tenth = D.poweren ~scale:0.1 () in
  check Alcotest.int "full size" 300 (Array.length full.D.rules);
  check Alcotest.int "scaled size" 30 (Array.length tenth.D.rules);
  check Alcotest.int "minimum two rules" 2
    (Array.length (D.poweren ~scale:0.0001 ()).D.rules)

let test_table1_shape () =
  (* The generators must land near Table I's per-dataset averages
     (generous ±40% envelope — shape, not absolute numbers). *)
  let targets =
    [ ("BRO", 13.19); ("DS9", 43.08); ("PEN", 15.75); ("PRO", 12.34);
      ("RG1", 43.18); ("TCP", 30.35) ]
  in
  List.iter
    (fun d ->
      let target = List.assoc d.D.abbr targets in
      let fsas =
        match Mfsa_core.Pipeline.build_fsas d.D.rules with
        | Ok f -> f
        | Error e -> Alcotest.failf "%s: %s" d.D.abbr (Mfsa_core.Pipeline.error_to_string e)
      in
      let avg =
        float_of_int
          (Array.fold_left (fun acc a -> acc + a.Mfsa_automata.Nfa.n_states) 0 fsas)
        /. float_of_int (Array.length fsas)
      in
      check Alcotest.bool
        (Printf.sprintf "%s avg states %.1f vs target %.1f" d.D.abbr avg target)
        true
        (avg > target *. 0.6 && avg < target *. 1.4))
    all

let test_similarity_regime () =
  (* Fig. 1: datasets show morphological similarity well above zero
     (paper average 0.34). *)
  List.iter
    (fun d ->
      let sim = Indel.average_pairwise_similarity ~sample:500 d.D.rules in
      check Alcotest.bool
        (Printf.sprintf "%s similarity %.2f in (0.1, 0.8)" d.D.abbr sim)
        true
        (sim > 0.1 && sim < 0.8))
    all

let test_find () =
  (match D.find ~scale:0.1 "bro" with
  | Some d -> check Alcotest.string "case-insensitive" "BRO" d.D.abbr
  | None -> Alcotest.fail "BRO not found");
  check Alcotest.bool "unknown" true (D.find "nope" = None)

(* ------------------------------------------------------ Stream_gen *)

let test_stream_size_and_determinism () =
  let d = D.bro217 ~scale:0.1 () in
  let s1 = SG.generate ~seed:5 ~size:4096 d.D.rules in
  let s2 = SG.generate ~seed:5 ~size:4096 d.D.rules in
  check Alcotest.int "exact size" 4096 (String.length s1);
  check Alcotest.bool "deterministic" true (String.equal s1 s2);
  let s3 = SG.generate ~seed:6 ~size:4096 d.D.rules in
  check Alcotest.bool "seed-sensitive" false (String.equal s1 s3)

let test_stream_contains_fragments () =
  let d = D.bro217 ~scale:0.1 () in
  let stream = SG.generate ~seed:1 ~density:0.2 ~size:65536 d.D.rules in
  let fragments = SG.literals_of_rules d.D.rules in
  check Alcotest.bool "has fragments to plant" true (Array.length fragments > 0);
  (* At least one long planted fragment must appear verbatim. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  let planted =
    Array.exists (fun f -> String.length f >= 4 && contains stream f) fragments
  in
  check Alcotest.bool "some fragment planted" true planted

let test_stream_drives_matches () =
  (* Streams must actually produce matches when run through the
     engines — that is their purpose. *)
  let d = D.bro217 ~scale:0.1 () in
  let fsas = Result.get_ok (Mfsa_core.Pipeline.build_fsas d.D.rules) in
  let z = Mfsa_model.Merge.merge fsas in
  let eng = Mfsa_engine.Imfant.compile z in
  let stream = SG.generate ~seed:2 ~density:0.2 ~size:32768 d.D.rules in
  check Alcotest.bool "matches occur" true (Mfsa_engine.Imfant.count eng stream > 0)

let test_stream_no_literals () =
  let s = SG.generate ~size:100 [| "[xyz]+" |] in
  check Alcotest.int "pure payload still sized" 100 (String.length s)

let test_literals_of_rules () =
  let lits = SG.literals_of_rules [| "abc.*def"; "(not this"; "x" |] in
  (* Unparseable rules skipped; length-1 literals dropped. *)
  check Alcotest.(list string) "extracted" [ "abc"; "def" ]
    (List.sort String.compare (Array.to_list lits))

let () =
  Alcotest.run "datasets"
    [
      ( "rulegen",
        [
          Alcotest.test_case "escape_literal roundtrip" `Quick test_escape_literal_roundtrip;
          Alcotest.test_case "word and vocab" `Quick test_word_and_vocab;
          Alcotest.test_case "mutate" `Quick test_mutate;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "six datasets" `Quick test_six_datasets;
          Alcotest.test_case "all rules parse" `Quick test_all_rules_parse;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "scaling" `Quick test_scaling;
          Alcotest.test_case "Table I shape" `Quick test_table1_shape;
          Alcotest.test_case "Fig. 1 similarity regime" `Quick test_similarity_regime;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "stream",
        [
          Alcotest.test_case "size and determinism" `Quick test_stream_size_and_determinism;
          Alcotest.test_case "fragments planted" `Quick test_stream_contains_fragments;
          Alcotest.test_case "drives matches" `Quick test_stream_drives_matches;
          Alcotest.test_case "no literals" `Quick test_stream_no_literals;
          Alcotest.test_case "literals_of_rules" `Quick test_literals_of_rules;
        ] );
    ]

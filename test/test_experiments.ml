(* Smoke tests for the evaluation harness itself: every artefact
   function must run at a tiny configuration and produce the table it
   promises. These keep the benchmark harness from rotting between
   full runs. *)

module E = Mfsa_core.Experiments

let check = Alcotest.check

let tiny =
  {
    E.scale = 0.02;
    stream_kb = 2;
    reps = 1;
    merge_factors = [ 2; 0 ];
    thread_counts = [ 1; 4 ];
    hw_threads = 4;
  }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let artefacts =
  [
    ("fig1", E.fig1, [ "INDEL"; "BRO"; "TCP" ]);
    ("table1", E.table1, [ "Num. REs"; "Avg. Ns"; "Protomata" ]);
    ("fig7", E.fig7, [ "compression"; "States %"; "paper: 71.95%" ]);
    ("fig8", E.fig8, [ "ME-merging"; "AST to FSA"; "Total" ]);
    ("table2", E.table2, [ "Avg. Nact"; "Max Nact" ]);
    ("fig9", E.fig9, [ "Throughput"; "vs M=1"; "Geomean" ]);
    ("fig10", E.fig10, [ "greedy in-order scheduler"; "Best Perf. M=1" ]);
    ("ablation-ccsplit", E.ablation_ccsplit, [ "cc-split" ]);
    ("ablation-cluster", E.ablation_cluster, [ "clustered" ]);
    ("ablation-strategy", E.ablation_strategy, [ "greedy"; "prefix" ]);
    ("ablation-bisim", E.ablation_bisim, [ "bisimulation"; "reduced" ]);
    ("baselines", E.baselines, [ "D2FA"; "Aho-Corasick"; "2-stride"; "iMFAnt" ]);
  ]

let test_artefact (name, f, markers) () =
  let out = f tiny in
  check Alcotest.bool (name ^ " non-empty") true (String.length out > 0);
  List.iter
    (fun marker ->
      check Alcotest.bool
        (Printf.sprintf "%s mentions %S" name marker)
        true (contains out marker))
    markers

let test_run_all_order () =
  (* run_all stitches the artefacts in paper order. *)
  let out = E.run_all tiny in
  let pos marker =
    let rec go i =
      if i + String.length marker > String.length out then -1
      else if String.sub out i (String.length marker) = marker then i
      else go (i + 1)
    in
    go 0
  in
  let positions =
    List.map pos [ "Fig. 1"; "Table I:"; "Fig. 7"; "Fig. 8"; "Table II"; "Fig. 9"; "Fig. 10" ]
  in
  List.iter (fun p -> check Alcotest.bool "artefact present" true (p >= 0)) positions;
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  check Alcotest.bool "paper order" true (ascending positions)

let test_default_config_env () =
  check Alcotest.bool "default scale positive" true ((E.default ()).E.scale > 0.);
  check Alcotest.int "paper scale full reps" 15 E.paper_scale.E.reps;
  check (Alcotest.float 1e-9) "paper scale is 1.0" 1.0 E.paper_scale.E.scale

let () =
  Alcotest.run "experiments"
    [
      ( "artefacts",
        List.map
          (fun ((name, _, _) as a) -> Alcotest.test_case name `Slow (test_artefact a))
          artefacts
        @ [
            Alcotest.test_case "run_all order" `Slow test_run_all_order;
            Alcotest.test_case "config defaults" `Quick test_default_config_env;
          ] );
    ]

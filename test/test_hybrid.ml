(* Unit and property tests for the lazy-DFA hybrid engine: equivalence
   with iMFAnt (whole-string and streaming), bounded-cache eviction
   under both policies (incremental clock and legacy flush-on-full)
   and the cache instrumentation. *)

module P = Mfsa_frontend.Parser
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Im = Mfsa_engine.Imfant
module Hy = Mfsa_engine.Hybrid

let check = Alcotest.check

let fsa_of src =
  Mfsa_automata.Multiplicity.fuse
    (Mfsa_automata.Epsilon.remove
       (Mfsa_automata.Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule
             (Mfsa_automata.Loops.expand_rule (P.parse_exn src)))))

let merge_rules rules = Merge.merge (Array.of_list (List.map fsa_of rules))

let im_events l = List.map (fun e -> (e.Im.fsa, e.Im.end_pos)) l

let hy_events l = List.map (fun e -> (e.Hy.fsa, e.Hy.end_pos)) l

let sort = List.sort compare

(* Both engines on one automaton; iMFAnt's within-position order is
   transition order, so equality is on the sorted event lists. *)
let check_equiv ?cache_size msg z inputs =
  let im = Im.compile z in
  let hy = Hy.of_imfant ?cache_size im in
  List.iter
    (fun input ->
      check
        Alcotest.(list (pair int int))
        (Printf.sprintf "%s on %S" msg input)
        (sort (im_events (Im.run im input)))
        (sort (hy_events (Hy.run hy input))))
    inputs

(* ------------------------------------------------------- Equivalence *)

let test_equals_imfant () =
  check_equiv "plain"
    (merge_rules [ "ab"; "a(b|c)*d"; "[0-9]{2}"; "b" ])
    [ "abcbcd12ab"; ""; "ab"; "999"; "abababab"; "xyz" ]

let test_anchors () =
  check_equiv "anchors"
    (merge_rules [ "^ab"; "ab"; "ab$"; "^ab$" ])
    [ "abab"; "ab"; "xab"; "abx"; "" ]

let test_overlapping_rules () =
  check_equiv "overlap"
    (merge_rules [ "a"; "aa"; "aaa"; "a+b" ])
    [ "aaaa"; "aaab"; "baaa"; "ab" ]

let test_empty_input () =
  let hy = Hy.compile (merge_rules [ "a*"; "b" ]) in
  check Alcotest.int "no matches on empty" 0 (List.length (Hy.run hy ""))

let test_count_and_per_fsa () =
  let z = merge_rules [ "a"; "aa" ] in
  let im = Im.compile z in
  let hy = Hy.of_imfant im in
  let input = "aaa" in
  check Alcotest.int "count" (Im.count im input) (Hy.count hy input);
  check
    Alcotest.(array int)
    "per fsa" (Im.count_per_fsa im input)
    (Hy.count_per_fsa hy input)

let test_run_is_ordered () =
  (* The hybrid's documented order: end position, then FSA id. *)
  let hy = Hy.compile (merge_rules [ "ab"; "b"; "a" ]) in
  let events = hy_events (Hy.run hy "abab") in
  let by_pos =
    List.sort
      (fun (f1, e1) (f2, e2) ->
        if e1 <> e2 then Int.compare e1 e2 else Int.compare f1 f2)
      events
  in
  check Alcotest.(list (pair int int)) "already sorted" by_pos events

let test_mfsa_accessors () =
  let z = merge_rules [ "ab" ] in
  let im = Im.compile z in
  let hy = Hy.of_imfant im in
  check Alcotest.int "same automaton" z.Mfsa.n_states (Hy.mfsa hy).Mfsa.n_states;
  check Alcotest.int "wrapped imfant" z.Mfsa.n_states
    (Im.mfsa (Hy.imfant hy)).Mfsa.n_states

(* ----------------------------------------------------- Bounded cache *)

let test_rejects_bad_cache_size () =
  Alcotest.check_raises "zero cache"
    (Invalid_argument "Hybrid.of_imfant: cache_size < 1") (fun () ->
      ignore (Hy.compile ~cache_size:0 (merge_rules [ "a" ])))

(* A 2-entry cache on a ruleset whose configuration space is much
   larger: correctness must survive constant eviction. Under the
   default clock policy a full cache displaces single rows and never
   drops the table. *)
let test_tiny_cache_still_matches () =
  let z = merge_rules [ "a+b"; "a(b|c)*d"; "[ab]{3}"; "ab$"; "^a" ] in
  let input = "aabacbdabcabdaaabbbacd" in
  let im = Im.compile z in
  let hy = Hy.of_imfant ~cache_size:2 im in
  (* Several passes: evictions must not corrupt later runs either. *)
  for _ = 1 to 3 do
    check
      Alcotest.(list (pair int int))
      "tiny cache equals imfant"
      (sort (im_events (Im.run im input)))
      (sort (hy_events (Hy.run hy input)))
  done;
  let s = Hy.stats hy in
  check Alcotest.bool "evictions happened" true (s.Hy.evictions > 0);
  check Alcotest.int "clock never flushes" 0 s.Hy.flushes;
  check Alcotest.bool "dynamic configs bounded" true
    (s.Hy.resident_configs <= 2 + 2)

(* The pre-eviction drop-everything policy is kept for ablation: same
   answers, but through whole-table flushes. *)
let test_tiny_cache_flush_policy () =
  let z = merge_rules [ "a+b"; "a(b|c)*d"; "[ab]{3}"; "ab$"; "^a" ] in
  let input = "aabacbdabcabdaaabbbacd" in
  let im = Im.compile z in
  let hy = Hy.of_imfant ~cache_size:2 ~eviction:Hy.Flush im in
  for _ = 1 to 3 do
    check
      Alcotest.(list (pair int int))
      "flush policy equals imfant"
      (sort (im_events (Im.run im input)))
      (sort (hy_events (Hy.run hy input)))
  done;
  let s = Hy.stats hy in
  check Alcotest.bool "flushes happened" true (s.Hy.flushes > 0);
  check Alcotest.int "flush policy never evicts rows" 0 s.Hy.evictions

let test_stats () =
  let z = merge_rules [ "abc" ] in
  let hy = Hy.compile z in
  let input = "abcabcabc" in
  ignore (Hy.run hy input);
  let s1 = Hy.stats hy in
  check Alcotest.int "steps = bytes" (String.length input) s1.Hy.steps;
  check Alcotest.int "hits + misses = steps" s1.Hy.steps
    (s1.Hy.hits + s1.Hy.misses);
  check Alcotest.bool "interned something" true (s1.Hy.configs_interned > 0);
  check Alcotest.bool "resident includes builtins" true
    (s1.Hy.resident_configs >= 2);
  check Alcotest.bool "bytes positive" true (s1.Hy.cache_bytes > 0);
  (* Second identical pass over a warm cache: all hits. *)
  Hy.reset_stats hy;
  ignore (Hy.run hy input);
  let s2 = Hy.stats hy in
  check Alcotest.int "warm pass misses" 0 s2.Hy.misses;
  check Alcotest.int "warm pass hits" s2.Hy.steps s2.Hy.hits;
  check Alcotest.int "warm pass interns nothing" 0 s2.Hy.configs_interned

(* -------------------------------------------------------- Streaming *)

let hy_chunked hy chunks =
  let s = Hy.session hy in
  let fed = List.concat_map (fun c -> Hy.feed s c) chunks in
  let flushed = Hy.finish s in
  hy_events (fed @ flushed)

let test_stream_equals_whole () =
  let hy = Hy.compile (merge_rules [ "hello"; "lo wo" ]) in
  let whole = hy_events (Hy.run hy "say hello world") in
  check Alcotest.(list (pair int int)) "split mid-match" (sort whole)
    (sort (hy_chunked hy [ "say hel"; "lo wor"; "ld" ]));
  check Alcotest.(list (pair int int)) "byte at a time" (sort whole)
    (sort
       (hy_chunked hy
          (List.init 15 (String.sub "say hello world" |> fun f i -> f i 1))))

let test_stream_end_anchored () =
  let hy = Hy.compile (merge_rules [ "ab$" ]) in
  let s = Hy.session hy in
  check Alcotest.(list (pair int int)) "no mid-stream report" []
    (hy_events (Hy.feed s "abab"));
  check Alcotest.(list (pair int int)) "flushed at finish" [ (0, 4) ]
    (hy_events (Hy.finish s));
  let s = Hy.session hy in
  ignore (Hy.feed s "ab");
  ignore (Hy.feed s "x");
  check Alcotest.(list (pair int int)) "invalidated by continuation" []
    (hy_events (Hy.finish s))

let test_stream_start_anchor_respects_position () =
  (* ^ab must fire only when the stream starts with it, regardless of
     chunking — position 0 is a property of the stream, not the
     chunk. *)
  let hy = Hy.compile (merge_rules [ "^ab" ]) in
  let s = Hy.session hy in
  (* Bind in order: [@] would evaluate the second feed first. *)
  let fst_chunk = Hy.feed s "a" in
  let snd_chunk = Hy.feed s "b" in
  check Alcotest.(list (pair int int)) "first chunk matches" [ (0, 2) ]
    (hy_events (fst_chunk @ snd_chunk));
  check Alcotest.(list (pair int int)) "later ab does not" []
    (hy_events (Hy.feed s "ab"));
  Hy.reset s;
  check Alcotest.int "position reset" 0 (Hy.position s);
  check Alcotest.(list (pair int int)) "fresh stream matches again" [ (0, 2) ]
    (hy_events (Hy.feed s "abx"))

(* Concurrent sessions share one cache: an eviction forced by either
   one (or by a whole-string [run] on the same engine) must not leave
   the other's state dangling on a reused slot. A 2-entry cache makes
   evictions constant; the interleaving makes every one of them land
   between another session's steps. *)
let test_concurrent_sessions_survive_flushes () =
  let z = merge_rules [ "a+b"; "a(b|c)*d"; "[ab]{3}"; "ab$"; "^a" ] in
  let im = Im.compile z in
  let hy = Hy.of_imfant ~cache_size:2 im in
  let in1 = "aabacbdabcabdaaabbbacd" in
  let in2 = "abbbcadacdabbaacdbbbaaab" in
  let s1 = Hy.session hy and s2 = Hy.session hy in
  let acc1 = ref [] and acc2 = ref [] in
  for i = 0 to max (String.length in1) (String.length in2) - 1 do
    if i < String.length in1 then
      acc1 := List.rev_append (Hy.feed s1 (String.make 1 in1.[i])) !acc1;
    if i < String.length in2 then
      acc2 := List.rev_append (Hy.feed s2 (String.make 1 in2.[i])) !acc2;
    (* Churn the shared cache from outside both sessions too. *)
    if i mod 5 = 0 then ignore (Hy.run hy "acdbab")
  done;
  let ev1 = hy_events (List.rev !acc1 @ Hy.finish s1) in
  let ev2 = hy_events (List.rev !acc2 @ Hy.finish s2) in
  check
    Alcotest.(list (pair int int))
    "session 1 survives foreign flushes"
    (sort (im_events (Im.run im in1)))
    (sort ev1);
  check
    Alcotest.(list (pair int int))
    "session 2 survives foreign flushes"
    (sort (im_events (Im.run im in2)))
    (sort ev2);
  check Alcotest.bool "evictions happened" true
    ((Hy.stats hy).Hy.evictions > 0)

(* ------------------------------------------------------- Properties *)

let build_ruleset rules =
  Merge.merge
    (Array.of_list
       (List.map
          (fun r ->
            Mfsa_automata.Multiplicity.fuse
              (Mfsa_automata.Epsilon.remove
                 (Mfsa_automata.Thompson.build
                    (Mfsa_automata.Simplify.char_classes_rule
                       (Mfsa_automata.Loops.expand_rule r)))))
          rules))

let prop_run_equals_imfant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"hybrid run = imfant run"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let z = build_ruleset rules in
         let im = Im.compile z in
         let hy = Hy.of_imfant im in
         sort (im_events (Im.run im input)) = sort (hy_events (Hy.run hy input))))

(* The eviction policy is invisible in the match semantics: clock
   eviction on a 2-row cache (every intern past the second displaces
   a row), flush-on-full on the same cache, and a cache big enough
   never to fill all produce iMFAnt's events. *)
let prop_eviction_policies_equal_imfant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"hybrid clock = flush = unbounded = imfant (cache_size=2)"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let z = build_ruleset rules in
         let im = Im.compile z in
         let reference = sort (im_events (Im.run im input)) in
         List.for_all
           (fun (cache_size, eviction) ->
             let hy = Hy.of_imfant ~cache_size ~eviction im in
             sort (hy_events (Hy.run hy input)) = reference)
           [ (2, Hy.Clock); (2, Hy.Flush); (1 lsl 16, Hy.Clock) ]))

let prop_chunked_stream_equals_imfant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"hybrid chunked stream = imfant whole-string run"
       ~print:Gen_re.print_ruleset_input
       QCheck2.Gen.(pair (Gen_re.ruleset ()) Gen_re.input)
       (fun (rules, input) ->
         let z = build_ruleset rules in
         let im = Im.compile z in
         let hy = Hy.of_imfant im in
         let whole = sort (im_events (Im.run im input)) in
         let n = String.length input in
         let cut a b = String.sub input a (b - a) in
         let chunks =
           [ cut 0 (n / 3); cut (n / 3) (2 * n / 3); cut (2 * n / 3) n ]
         in
         sort (hy_chunked hy chunks) = whole))

let prop_interleaved_sessions_tiny_cache =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"two interleaved sessions, one cache_size=2 engine = imfant"
       ~print:(fun (rules, (in1, in2)) ->
         Printf.sprintf "%s input2=%S"
           (Gen_re.print_ruleset_input (rules, in1))
           in2)
       QCheck2.Gen.(pair (Gen_re.ruleset ()) (pair Gen_re.input Gen_re.input))
       (fun (rules, (in1, in2)) ->
         let z = build_ruleset rules in
         let im = Im.compile z in
         let hy = Hy.of_imfant ~cache_size:2 im in
         let s1 = Hy.session hy and s2 = Hy.session hy in
         let acc1 = ref [] and acc2 = ref [] in
         for i = 0 to max (String.length in1) (String.length in2) - 1 do
           if i < String.length in1 then
             acc1 := List.rev_append (Hy.feed s1 (String.make 1 in1.[i])) !acc1;
           if i < String.length in2 then
             acc2 := List.rev_append (Hy.feed s2 (String.make 1 in2.[i])) !acc2
         done;
         sort (hy_events (List.rev !acc1 @ Hy.finish s1))
         = sort (im_events (Im.run im in1))
         && sort (hy_events (List.rev !acc2 @ Hy.finish s2))
            = sort (im_events (Im.run im in2))))

let () =
  Alcotest.run "hybrid"
    [
      ( "equivalence",
        [
          Alcotest.test_case "equals imfant" `Quick test_equals_imfant;
          Alcotest.test_case "per-FSA anchors" `Quick test_anchors;
          Alcotest.test_case "overlapping rules" `Quick test_overlapping_rules;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "count and per-fsa" `Quick test_count_and_per_fsa;
          Alcotest.test_case "event ordering" `Quick test_run_is_ordered;
          Alcotest.test_case "accessors" `Quick test_mfsa_accessors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "rejects bad cache size" `Quick
            test_rejects_bad_cache_size;
          Alcotest.test_case "2-entry cache survives evictions" `Quick
            test_tiny_cache_still_matches;
          Alcotest.test_case "flush policy survives flushes" `Quick
            test_tiny_cache_flush_policy;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "chunking equals whole" `Quick
            test_stream_equals_whole;
          Alcotest.test_case "end-anchored at finish" `Quick
            test_stream_end_anchored;
          Alcotest.test_case "start anchor and reset" `Quick
            test_stream_start_anchor_respects_position;
          Alcotest.test_case "concurrent sessions survive evictions" `Quick
            test_concurrent_sessions_survive_flushes;
        ] );
      ( "properties",
        [
          prop_run_equals_imfant;
          prop_eviction_policies_equal_imfant;
          prop_chunked_stream_equals_imfant;
          prop_interleaved_sessions_tiny_cache;
        ] );
    ]

(* Unit and property tests for the automata middle-end: Nfa, Thompson,
   Loops, Epsilon, Multiplicity, Simulate. *)

module Nfa = Mfsa_automata.Nfa
module Thompson = Mfsa_automata.Thompson
module Epsilon = Mfsa_automata.Epsilon
module Loops = Mfsa_automata.Loops
module Multiplicity = Mfsa_automata.Multiplicity
module Sim = Mfsa_automata.Simulate
module P = Mfsa_frontend.Parser
module Ast = Mfsa_frontend.Ast
module C = Mfsa_charset.Charclass

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let nfa_of src = Thompson.build_pattern src

module Simplify = Mfsa_automata.Simplify

let optimized src =
  Multiplicity.fuse
    (Epsilon.remove
       (Thompson.build
          (Simplify.char_classes_rule (Loops.expand_rule (P.parse_exn src)))))

let accepts_t = Alcotest.bool

(* ------------------------------------------------------------- Nfa *)

let test_nfa_create_validates () =
  Alcotest.check_raises "no states"
    (Invalid_argument "Nfa.create: need at least one state") (fun () ->
      ignore (Nfa.create ~n_states:0 ~transitions:[] ~start:0 ~finals:[] ~pattern:"" ()));
  Alcotest.check_raises "start out of range"
    (Invalid_argument "Nfa.create: start state 3 out of range [0,3)") (fun () ->
      ignore (Nfa.create ~n_states:3 ~transitions:[] ~start:3 ~finals:[] ~pattern:"" ()));
  Alcotest.check_raises "bad transition"
    (Invalid_argument "Nfa.create: destination state 9 out of range [0,2)")
    (fun () ->
      ignore
        (Nfa.create ~n_states:2
           ~transitions:[ { Nfa.src = 0; label = Nfa.label_sym 'a'; dst = 9 } ]
           ~start:0 ~finals:[] ~pattern:"" ()));
  Alcotest.check_raises "empty class"
    (Invalid_argument "Nfa.create: empty character class on a transition")
    (fun () ->
      ignore
        (Nfa.create ~n_states:2
           ~transitions:[ { Nfa.src = 0; label = Nfa.Cls C.empty; dst = 1 } ]
           ~start:0 ~finals:[] ~pattern:"" ()))

let test_nfa_accessors () =
  let a =
    Nfa.create ~n_states:3
      ~transitions:
        [
          { Nfa.src = 0; label = Nfa.label_sym 'a'; dst = 1 };
          { Nfa.src = 1; label = Nfa.Eps; dst = 2 };
          { Nfa.src = 0; label = Nfa.Cls (C.range 'x' 'z'); dst = 2 };
        ]
      ~start:0 ~finals:[ 2 ] ~pattern:"t" ()
  in
  check Alcotest.int "n_transitions" 3 (Nfa.n_transitions a);
  check Alcotest.(list int) "final_states" [ 2 ] (Nfa.final_states a);
  check Alcotest.bool "not eps free" false (Nfa.is_eps_free a);
  let out = Nfa.out a in
  check Alcotest.int "out degree 0" 2 (Array.length out.(0));
  check Alcotest.int "out degree 2" 0 (Array.length out.(2));
  let count, len = Nfa.cc_stats a in
  check Alcotest.(pair int int) "cc stats" (1, 3) (count, len)

let test_nfa_map_states () =
  let a =
    Nfa.create ~n_states:2
      ~transitions:[ { Nfa.src = 0; label = Nfa.label_sym 'a'; dst = 1 } ]
      ~start:0 ~finals:[ 1 ] ~pattern:"a" ()
  in
  let b = Nfa.map_states a (fun q -> q + 3) ~n_states:5 in
  check Alcotest.int "start moved" 3 b.Nfa.start;
  check Alcotest.(list int) "finals moved" [ 4 ] (Nfa.final_states b)

let test_nfa_equal_structure () =
  let a = nfa_of "ab" and b = nfa_of "ab" and c = nfa_of "ac" in
  check Alcotest.bool "same build equal" true (Nfa.equal_structure a b);
  check Alcotest.bool "different labels differ" false (Nfa.equal_structure a c)

let test_nfa_label_helpers () =
  check Alcotest.bool "sym equal" true
    (Nfa.label_equal (Nfa.label_sym 'a') (Nfa.Cls (C.singleton 'a')));
  check Alcotest.bool "eps not sym" false (Nfa.label_equal Nfa.Eps (Nfa.label_sym 'a'));
  check Alcotest.string "dot output nonempty" "digraph"
    (String.sub (Nfa.to_dot (nfa_of "a")) 0 7)

(* -------------------------------------------------------- Thompson *)

let test_thompson_char () =
  let a = nfa_of "a" in
  check accepts_t "accepts a" true (Sim.accepts a "a");
  check accepts_t "rejects b" false (Sim.accepts a "b");
  check accepts_t "rejects aa" false (Sim.accepts a "aa");
  check accepts_t "rejects empty" false (Sim.accepts a "")

let test_thompson_operators () =
  let cases =
    [
      ("ab", [ ("ab", true); ("a", false); ("abb", false) ]);
      ("a|b", [ ("a", true); ("b", true); ("ab", false) ]);
      ("a*", [ ("", true); ("a", true); ("aaaa", true); ("ab", false) ]);
      ("a+", [ ("", false); ("a", true); ("aaa", true) ]);
      ("a?", [ ("", true); ("a", true); ("aa", false) ]);
      ("(ab|c)*", [ ("", true); ("abc", true); ("abab", true); ("ba", false) ]);
      ("[ab]c", [ ("ac", true); ("bc", true); ("cc", false) ]);
      (".", [ ("x", true); ("\n", false) ]);
      ("a{2,3}", [ ("a", false); ("aa", true); ("aaa", true); ("aaaa", false) ]);
      ("a{2,}", [ ("a", false); ("aa", true); ("aaaaa", true) ]);
      ("a{0,1}b", [ ("b", true); ("ab", true); ("aab", false) ]);
      ("a{3}", [ ("aaa", true); ("aa", false) ]);
      ("", [ ("", true); ("a", false) ]);
    ]
  in
  List.iter
    (fun (re, inputs) ->
      let a = nfa_of re in
      List.iter
        (fun (s, expect) ->
          check accepts_t (Printf.sprintf "%S vs %S" re s) expect (Sim.accepts a s))
        inputs)
    cases

let test_thompson_single_final () =
  let a = nfa_of "a(b|c)*" in
  check Alcotest.int "one final state" 1 (List.length (Nfa.final_states a))

let test_thompson_anchors_carried () =
  let a = Thompson.build (P.parse_exn "^ab$") in
  check Alcotest.bool "start" true a.Nfa.anchored_start;
  check Alcotest.bool "end" true a.Nfa.anchored_end;
  check Alcotest.string "pattern" "^ab$" a.Nfa.pattern

(* ----------------------------------------------------------- Loops *)

let expand_pattern src = Loops.expand (P.parse_exn src).Ast.ast

let test_loops_repeat_exact () =
  check Alcotest.bool "a{3} becomes aaa" true
    (Ast.equal (expand_pattern "a{3}")
       (Ast.seq [ Ast.Char 'a'; Ast.Char 'a'; Ast.Char 'a' ]))

let test_loops_repeat_range () =
  check Alcotest.bool "a{1,3} becomes a a? a?" true
    (Ast.equal (expand_pattern "a{1,3}")
       (Ast.seq [ Ast.Char 'a'; Ast.Opt (Ast.Char 'a'); Ast.Opt (Ast.Char 'a') ]))

let test_loops_repeat_open () =
  check Alcotest.bool "a{2,} becomes a a a*" true
    (Ast.equal (expand_pattern "a{2,}")
       (Ast.seq [ Ast.Char 'a'; Ast.Char 'a'; Ast.Star (Ast.Char 'a') ]))

let test_loops_plus_expansion () =
  check Alcotest.bool "a+ becomes a a*" true
    (Ast.equal (expand_pattern "a+") (Ast.Concat (Ast.Char 'a', Ast.Star (Ast.Char 'a'))));
  check Alcotest.bool "plus kept when disabled" true
    (Ast.equal
       (Loops.expand ~expand_plus:false (P.parse_exn "a+").Ast.ast)
       (Ast.Plus (Ast.Char 'a')))

let test_loops_zero () =
  check Alcotest.bool "a{0,0} is empty" true
    (Ast.equal (expand_pattern "a{0,0}") Ast.Empty);
  check Alcotest.bool "a{0} is empty" true (Ast.equal (expand_pattern "a{0}") Ast.Empty)

let test_loops_nested () =
  (* (a{2}){2} = aaaa *)
  let e = expand_pattern "(a{2}){2}" in
  let a = Thompson.build { Ast.pattern = ""; ast = e; anchored_start = false; anchored_end = false } in
  check accepts_t "aaaa" true (Sim.accepts a "aaaa");
  check accepts_t "aaa" false (Sim.accepts a "aaa")

let test_loops_budget () =
  (* Over budget: the mandatory copies must still be produced or the
     call must fail; the residue falls back to a Repeat node. *)
  let big = Ast.Repeat (Ast.Char 'a', 0, Some 100) in
  let e = Loops.expand ~budget:20 big in
  let has_repeat = ref false in
  let rec scan = function
    | Ast.Repeat _ -> has_repeat := true
    | Ast.Concat (a, b) | Ast.Alt (a, b) ->
        scan a;
        scan b
    | Ast.Star a | Ast.Plus a | Ast.Opt a -> scan a
    | Ast.Empty | Ast.Char _ | Ast.Class _ -> ()
  in
  scan e;
  check Alcotest.bool "residue kept" true !has_repeat;
  Alcotest.check_raises "mandatory copies overflow"
    (Invalid_argument
       "Loops.expand: expanding {50,...} over a sub-pattern of size 1 exceeds the budget")
    (fun () -> ignore (Loops.expand ~budget:20 (Ast.Repeat (Ast.Char 'a', 50, None))))

let test_loops_count () =
  check Alcotest.int "loop census" 3 (Loops.loop_count (P.parse_exn "a*b+c{2}d").Ast.ast);
  check Alcotest.int "no loops" 0 (Loops.loop_count (P.parse_exn "abc").Ast.ast)

let prop_loops_preserve_language =
  QCheck2.Test.make ~name:"loops: expansion preserves the language" ~count:200
    ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let rule = List.hd rules in
      let before = Thompson.build rule in
      let after = Thompson.build (Loops.expand_rule rule) in
      Sim.accepts before input = Sim.accepts after input)

(* --------------------------------------------------------- Epsilon *)

let test_epsilon_closure () =
  let a =
    Nfa.create ~n_states:4
      ~transitions:
        [
          { Nfa.src = 0; label = Nfa.Eps; dst = 1 };
          { Nfa.src = 1; label = Nfa.Eps; dst = 2 };
          { Nfa.src = 2; label = Nfa.label_sym 'a'; dst = 3 };
        ]
      ~start:0 ~finals:[ 3 ] ~pattern:"" ()
  in
  check Alcotest.(list int) "closure of 0" [ 0; 1; 2 ] (Epsilon.closure a 0);
  check Alcotest.(list int) "closure of 3" [ 3 ] (Epsilon.closure a 3)

let test_epsilon_removes_all () =
  let a = nfa_of "(ab|c)*d?" in
  check Alcotest.bool "thompson has eps" false (Nfa.is_eps_free a);
  let b = Epsilon.remove a in
  check Alcotest.bool "eps free" true (Nfa.is_eps_free b);
  check Alcotest.int "start renumbered to 0" 0 b.Nfa.start

let test_epsilon_preserves_examples () =
  List.iter
    (fun (re, inputs) ->
      let a = nfa_of re in
      let b = Epsilon.remove a in
      List.iter
        (fun s ->
          check accepts_t
            (Printf.sprintf "%S on %S" re s)
            (Sim.accepts a s) (Sim.accepts b s))
        inputs)
    [
      ("(ab|c)*", [ ""; "ab"; "c"; "abc"; "cab"; "a"; "b" ]);
      ("a?b?c?", [ ""; "a"; "abc"; "ac"; "cb" ]);
      ("a(b|)c", [ "abc"; "ac"; "ab" ]);
      ("(a*)*", [ ""; "a"; "aaa" ]);
    ]

let test_epsilon_shrinks () =
  let a = nfa_of "(ab|c)*" in
  let b = Epsilon.remove a in
  check Alcotest.bool "fewer states" true (b.Nfa.n_states < a.Nfa.n_states)

let test_epsilon_empty_language () =
  (* [^\x00-\xff] cannot be written; craft an automaton with an
     unreachable final state instead. *)
  let a =
    Nfa.create ~n_states:3
      ~transitions:[ { Nfa.src = 0; label = Nfa.label_sym 'a'; dst = 1 } ]
      ~start:0 ~finals:[ 2 ] ~pattern:"dead" ()
  in
  let b = Epsilon.remove a in
  check Alcotest.int "collapsed to start only" 1 b.Nfa.n_states;
  check Alcotest.(list int) "no finals" [] (Nfa.final_states b);
  check accepts_t "accepts nothing" false (Sim.accepts b "a")

let test_epsilon_trims_dead_states () =
  (* In a(b|c), after the 'a' both branches stay live; but a branch
     that can never reach a final must be dropped. *)
  let a =
    Nfa.create ~n_states:4
      ~transitions:
        [
          { Nfa.src = 0; label = Nfa.label_sym 'a'; dst = 1 };
          { Nfa.src = 0; label = Nfa.label_sym 'x'; dst = 3 };
          { Nfa.src = 1; label = Nfa.label_sym 'b'; dst = 2 };
        ]
      ~start:0 ~finals:[ 2 ] ~pattern:"" ()
  in
  let b = Epsilon.remove a in
  check Alcotest.int "dead branch trimmed" 3 b.Nfa.n_states

let test_epsilon_accept_empty () =
  let b = Epsilon.remove (nfa_of "a*") in
  check accepts_t "still accepts empty" true (Sim.accepts b "");
  check accepts_t "still accepts aa" true (Sim.accepts b "aa")

let prop_epsilon_preserves_language =
  QCheck2.Test.make ~name:"epsilon: removal preserves the language" ~count:300
    ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let a = Thompson.build (List.hd rules) in
      let b = Epsilon.remove a in
      Sim.accepts a input = Sim.accepts b input)

let prop_epsilon_match_ends_agree =
  QCheck2.Test.make ~name:"epsilon: unanchored match ends preserved" ~count:300
    ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let a = Thompson.build (List.hd rules) in
      let b = Epsilon.remove a in
      Sim.match_ends a input = Sim.match_ends b input)

(* ---------------------------------------------------- Multiplicity *)

let test_multiplicity_fuses () =
  let a =
    Nfa.create ~n_states:2
      ~transitions:
        [
          { Nfa.src = 0; label = Nfa.label_sym 'k'; dst = 1 };
          { Nfa.src = 0; label = Nfa.label_sym 'h'; dst = 1 };
        ]
      ~start:0 ~finals:[ 1 ] ~pattern:"k|h" ()
  in
  check Alcotest.int "multiplicity 2" 2 (Multiplicity.max_multiplicity a);
  let b = Multiplicity.fuse a in
  check Alcotest.int "one transition" 1 (Nfa.n_transitions b);
  check Alcotest.int "multiplicity 1" 1 (Multiplicity.max_multiplicity b);
  (match b.Nfa.transitions.(0).Nfa.label with
  | Nfa.Cls c -> check Alcotest.bool "class is [hk]" true (C.equal c (C.of_string "kh"))
  | Nfa.Eps -> Alcotest.fail "unexpected eps");
  check accepts_t "k" true (Sim.accepts b "k");
  check accepts_t "h" true (Sim.accepts b "h");
  check accepts_t "x" false (Sim.accepts b "x")

let test_multiplicity_figure5b () =
  (* Fig. 5b: (k|h)bc after optimisation has a [kh] class transition,
     which must NOT merge with a plain k transition of another rule —
     checked here at the label level. *)
  let a = optimized "(k|h)bc" in
  let has_kh =
    Array.exists
      (fun t ->
        match t.Nfa.label with
        | Nfa.Cls c -> C.equal c (C.of_string "kh")
        | Nfa.Eps -> false)
      a.Nfa.transitions
  in
  check Alcotest.bool "fused [kh] label exists" true has_kh;
  check Alcotest.int "no parallel arcs" 1 (Multiplicity.max_multiplicity a)

let test_multiplicity_requires_eps_free () =
  Alcotest.check_raises "eps rejected"
    (Invalid_argument "Multiplicity.fuse: automaton must be ε-free") (fun () ->
      ignore (Multiplicity.fuse (nfa_of "a|b")))

let test_multiplicity_preserves_distinct_arcs () =
  let a = optimized "ab|ac" in
  (* two distinct 'a' destinations may remain; fusing only merges
     same-(src,dst) bundles. *)
  check accepts_t "ab" true (Sim.accepts a "ab");
  check accepts_t "ac" true (Sim.accepts a "ac");
  check accepts_t "aa" false (Sim.accepts a "aa")

let prop_multiplicity_preserves_language =
  QCheck2.Test.make ~name:"multiplicity: fuse preserves the language" ~count:300
    ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let a = Epsilon.remove (Thompson.build (List.hd rules)) in
      let b = Multiplicity.fuse a in
      Sim.accepts a input = Sim.accepts b input
      && Sim.match_ends a input = Sim.match_ends b input)

(* -------------------------------------------------------- Simplify *)

let test_simplify_basic_alt () =
  check Alcotest.bool "(k|h) becomes [hk]" true
    (Ast.equal
       (Simplify.char_classes (P.parse_exn "(k|h)").Ast.ast)
       (Ast.Class (C.of_string "kh")))

let test_simplify_nested_alt () =
  check Alcotest.bool "(a|(b|c)) becomes [abc]" true
    (Ast.equal
       (Simplify.char_classes (P.parse_exn "(a|(b|c))").Ast.ast)
       (Ast.Class (C.of_string "abc")))

let test_simplify_class_branches () =
  check Alcotest.bool "([0-9]|x) becomes class" true
    (Ast.equal
       (Simplify.char_classes (P.parse_exn "([0-9]|x)").Ast.ast)
       (Ast.Class (C.add (C.range '0' '9') 'x')))

let test_simplify_leaves_multibyte () =
  (* (ab|c) is not single-byte; only inner rewrites may happen. *)
  let t = Simplify.char_classes (P.parse_exn "(ab|c)").Ast.ast in
  check Alcotest.bool "alt kept" true
    (match t with Ast.Alt _ -> true | _ -> false)

let test_simplify_single_byte_detection () =
  check Alcotest.bool "char" true (Simplify.single_byte (Ast.Char 'x') <> None);
  check Alcotest.bool "star is not" true
    (Simplify.single_byte (Ast.Star (Ast.Char 'x')) = None);
  check Alcotest.bool "empty is not" true (Simplify.single_byte Ast.Empty = None)

let test_simplify_enables_figure5b_labels () =
  (* After simplification the optimised (k|h)bc carries a [hk] class
     arc (checked again below at the pipeline level). *)
  let a = optimized "(k|h)bc" in
  check Alcotest.bool "[hk] arc present" true
    (Array.exists
       (fun t ->
         match t.Nfa.label with
         | Nfa.Cls c -> C.equal c (C.of_string "kh")
         | Nfa.Eps -> false)
       a.Nfa.transitions)

let prop_simplify_preserves_language =
  QCheck2.Test.make ~name:"simplify: char_classes preserves the language"
    ~count:200 ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let rule = List.hd rules in
      let before = Thompson.build rule in
      let after = Thompson.build (Simplify.char_classes_rule rule) in
      Sim.accepts before input = Sim.accepts after input
      && Sim.match_ends before input = Sim.match_ends after input)

(* ----------------------------------------------------------- Bisim *)

module Bisim = Mfsa_automata.Bisim

let test_bisim_merges_parallel_tails () =
  (* ab|cb has two bisimilar b-tail states after eps-removal. *)
  let a = optimized "ab|cb" in
  let r = Bisim.reduce a in
  check Alcotest.bool "shrinks" true (r.Nfa.n_states < a.Nfa.n_states);
  check Alcotest.int "block count matches" r.Nfa.n_states (Bisim.n_blocks a);
  List.iter
    (fun w ->
      check accepts_t ("lang " ^ w) (Sim.accepts a w) (Sim.accepts r w))
    [ "ab"; "cb"; "bb"; "a"; "b"; "" ]

let test_bisim_identity_on_minimal () =
  (* A plain chain has no bisimilar pairs. *)
  let a = optimized "abc" in
  let r = Bisim.reduce a in
  check Alcotest.int "unchanged" a.Nfa.n_states r.Nfa.n_states

let test_bisim_rejects_eps () =
  Alcotest.check_raises "eps rejected"
    (Invalid_argument "Bisim: automaton must be ε-free") (fun () ->
      ignore (Bisim.reduce (nfa_of "a|b")))

let test_bisim_all_final () =
  (* Degenerate partitions: every state final. *)
  let a =
    Nfa.create ~n_states:2
      ~transitions:[ { Nfa.src = 0; label = Nfa.label_sym 'a'; dst = 1 } ]
      ~start:0 ~finals:[ 0; 1 ] ~pattern:"" ()
  in
  let r = Bisim.reduce a in
  check accepts_t "empty accepted" true (Sim.accepts r "");
  check accepts_t "a accepted" true (Sim.accepts r "a");
  check accepts_t "aa rejected" false (Sim.accepts r "aa")

let prop_bisim_preserves_matching =
  QCheck2.Test.make ~name:"bisim: quotient preserves matching" ~count:200
    ~print:Gen_re.print_ruleset_input
    QCheck2.Gen.(map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let a =
        Multiplicity.fuse
          (Epsilon.remove
             (Thompson.build
                (Simplify.char_classes_rule (Loops.expand_rule (List.hd rules)))))
      in
      let r = Bisim.reduce a in
      r.Nfa.n_states <= a.Nfa.n_states
      && Sim.match_ends a input = Sim.match_ends r input)

(* -------------------------------------------------------- Simulate *)

let test_simulate_match_ends () =
  let a = optimized "ab" in
  check Alcotest.(list int) "two hits" [ 2; 6 ] (Sim.match_ends a "abcdab");
  check Alcotest.(list int) "overlap" [ 2; 3; 4 ] (Sim.match_ends (optimized "a+") "xaaa")

let test_simulate_empty_matches_skipped () =
  check Alcotest.(list int) "a* reports only non-empty" [ 2; 3 ]
    (Sim.match_ends (optimized "a*") "xaa")

let test_simulate_anchored_start () =
  let a = Multiplicity.fuse (Epsilon.remove (Thompson.build (P.parse_exn "^ab"))) in
  check Alcotest.(list int) "only position 0" [ 2 ] (Sim.match_ends a "abab");
  check Alcotest.(list int) "no match elsewhere" [] (Sim.match_ends a "xab")

let test_simulate_anchored_end () =
  let a = Multiplicity.fuse (Epsilon.remove (Thompson.build (P.parse_exn "ab$"))) in
  check Alcotest.(list int) "only final position" [ 4 ] (Sim.match_ends a "abab");
  check Alcotest.(list int) "not at end" [] (Sim.match_ends a "aba")

let test_simulate_count () =
  let a = optimized "a" in
  check Alcotest.int "count equals list length" 3 (Sim.count_matches a "axaxa")

let () =
  Alcotest.run "automata"
    [
      ( "nfa",
        [
          Alcotest.test_case "create validates" `Quick test_nfa_create_validates;
          Alcotest.test_case "accessors" `Quick test_nfa_accessors;
          Alcotest.test_case "map_states" `Quick test_nfa_map_states;
          Alcotest.test_case "equal_structure" `Quick test_nfa_equal_structure;
          Alcotest.test_case "label helpers" `Quick test_nfa_label_helpers;
        ] );
      ( "thompson",
        [
          Alcotest.test_case "single char" `Quick test_thompson_char;
          Alcotest.test_case "all operators" `Quick test_thompson_operators;
          Alcotest.test_case "single final" `Quick test_thompson_single_final;
          Alcotest.test_case "anchors carried" `Quick test_thompson_anchors_carried;
        ] );
      ( "loops",
        [
          Alcotest.test_case "exact repeat" `Quick test_loops_repeat_exact;
          Alcotest.test_case "range repeat" `Quick test_loops_repeat_range;
          Alcotest.test_case "open repeat" `Quick test_loops_repeat_open;
          Alcotest.test_case "plus expansion" `Quick test_loops_plus_expansion;
          Alcotest.test_case "zero repeat" `Quick test_loops_zero;
          Alcotest.test_case "nested repeats" `Quick test_loops_nested;
          Alcotest.test_case "budget" `Quick test_loops_budget;
          Alcotest.test_case "loop census" `Quick test_loops_count;
          qtest prop_loops_preserve_language;
        ] );
      ( "epsilon",
        [
          Alcotest.test_case "closure" `Quick test_epsilon_closure;
          Alcotest.test_case "removes all eps" `Quick test_epsilon_removes_all;
          Alcotest.test_case "preserves examples" `Quick test_epsilon_preserves_examples;
          Alcotest.test_case "shrinks" `Quick test_epsilon_shrinks;
          Alcotest.test_case "empty language" `Quick test_epsilon_empty_language;
          Alcotest.test_case "trims dead states" `Quick test_epsilon_trims_dead_states;
          Alcotest.test_case "keeps empty acceptance" `Quick test_epsilon_accept_empty;
          qtest prop_epsilon_preserves_language;
          qtest prop_epsilon_match_ends_agree;
        ] );
      ( "multiplicity",
        [
          Alcotest.test_case "fuses parallel arcs" `Quick test_multiplicity_fuses;
          Alcotest.test_case "figure 5b labels" `Quick test_multiplicity_figure5b;
          Alcotest.test_case "requires eps-free" `Quick test_multiplicity_requires_eps_free;
          Alcotest.test_case "keeps distinct arcs" `Quick test_multiplicity_preserves_distinct_arcs;
          qtest prop_multiplicity_preserves_language;
        ] );
      ( "bisim",
        [
          Alcotest.test_case "merges parallel tails" `Quick
            test_bisim_merges_parallel_tails;
          Alcotest.test_case "identity on minimal" `Quick test_bisim_identity_on_minimal;
          Alcotest.test_case "rejects eps" `Quick test_bisim_rejects_eps;
          Alcotest.test_case "all-final degenerate" `Quick test_bisim_all_final;
          qtest prop_bisim_preserves_matching;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "basic alternation" `Quick test_simplify_basic_alt;
          Alcotest.test_case "nested alternation" `Quick test_simplify_nested_alt;
          Alcotest.test_case "class branches" `Quick test_simplify_class_branches;
          Alcotest.test_case "multi-byte kept" `Quick test_simplify_leaves_multibyte;
          Alcotest.test_case "single-byte detection" `Quick
            test_simplify_single_byte_detection;
          Alcotest.test_case "enables figure 5b" `Quick
            test_simplify_enables_figure5b_labels;
          qtest prop_simplify_preserves_language;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "match ends" `Quick test_simulate_match_ends;
          Alcotest.test_case "empty matches skipped" `Quick test_simulate_empty_matches_skipped;
          Alcotest.test_case "anchored start" `Quick test_simulate_anchored_start;
          Alcotest.test_case "anchored end" `Quick test_simulate_anchored_end;
          Alcotest.test_case "count" `Quick test_simulate_count;
        ] );
    ]

(* The observability layer: snapshot exporters, the metrics registry,
   and the engine-level reset-reproducibility property the registry
   adapters promise (Engine_sig.S.reset_stats returns the observable
   metric state to that of a fresh compile — for the hybrid this
   includes dropping its configuration cache). *)

module Obs = Mfsa_obs.Obs
module S = Mfsa_obs.Snapshot
module Merge = Mfsa_model.Merge
module Registry = Mfsa_engine.Registry
module Engine_sig = Mfsa_engine.Engine_sig
module Ast = Mfsa_frontend.Ast

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------- Snapshots *)

let test_quantile () =
  (* Two buckets (≤1, ≤2) plus overflow: 3 observations ≤ 1, 1 in
     (1, 2], 1 above 2. *)
  let h =
    { S.bounds = [| 1.; 2. |]; counts = [| 3; 1; 1 |]; sum = 6.; count = 5 }
  in
  check (Alcotest.float 0.) "q=0 -> first bucket" 1. (S.quantile h 0.);
  check (Alcotest.float 0.) "median" 1. (S.quantile h 0.5);
  check (Alcotest.float 0.) "p80 hits second bucket" 2. (S.quantile h 0.8);
  check Alcotest.bool "p99 lands in overflow" true
    (S.quantile h 0.99 = infinity);
  check (Alcotest.float 0.) "clamped above" (S.quantile h 1.) (S.quantile h 7.);
  let empty = { S.bounds = [| 1. |]; counts = [| 0; 0 |]; sum = 0.; count = 0 } in
  check (Alcotest.float 0.) "empty histogram" 0. (S.quantile empty 0.9)

let test_quantile_from_registry () =
  let reg = Obs.create () in
  let h = Obs.histogram ~registry:reg "mfsa_q_seconds" in
  (* 100 observations at ~1 ms, one straggler at ~1 s: the p50 bound
     stays in the millisecond buckets, the max escapes upward. *)
  for _ = 1 to 100 do Obs.observe h 0.001 done;
  Obs.observe h 1.0;
  match S.find (Obs.snapshot reg) "mfsa_q_seconds" with
  | Some { S.value = S.Histogram hist; _ } ->
      let p50 = S.quantile hist 0.5 and p99 = S.quantile hist 0.99 in
      check Alcotest.bool "p50 within 2x of 1ms" true
        (p50 >= 0.001 && p50 <= 0.002);
      check Alcotest.bool "p99 still small" true (p99 <= 0.002);
      check Alcotest.bool "p100 sees the straggler" true
        (S.quantile hist 1. >= 1.0)
  | _ -> Alcotest.fail "histogram sample missing"

(* --------------------------------------------------- Process gauges *)

let test_process_gauges () =
  let reg = Obs.create () in
  let start = Obs.process_start_time ~registry:reg () in
  let t0 = Obs.gauge_value start in
  check Alcotest.bool "start time is a plausible unix time" true
    (t0 > 1.6e9 && t0 <= Unix.gettimeofday ());
  (* Get-or-create: a second registration reads the same value. *)
  check (Alcotest.float 0.) "idempotent"
    t0 (Obs.gauge_value (Obs.process_start_time ~registry:reg ()));
  let active = Obs.process_connections_active ~registry:reg () in
  check (Alcotest.float 0.) "starts at 0" 0. (Obs.gauge_value active);
  Obs.gauge_add active 1.;
  Obs.gauge_add active 1.;
  Obs.gauge_add active (-1.);
  check (Alcotest.float 0.) "gauge_add nets out" 1. (Obs.gauge_value active);
  let text = S.to_prometheus (Obs.snapshot reg) in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "start-time series exported" true
    (has "mfsa_process_start_time_seconds");
  check Alcotest.bool "connections series exported" true
    (has "mfsa_process_connections_active 1")

let test_prometheus_text () =
  let snap =
    [
      S.counter_i ~help:"Things done" ~labels:[ ("engine", "imfant") ]
        "mfsa_things_total" 3;
      S.counter_i ~help:"Things done" ~labels:[ ("engine", "hybrid") ]
        "mfsa_things_total" 4;
      S.gauge ~help:"A level" "mfsa_level" 0.25;
    ]
  in
  let text = S.to_prometheus snap in
  check Alcotest.string "exposition"
    "# HELP mfsa_level A level\n\
     # TYPE mfsa_level gauge\n\
     mfsa_level 0.250000\n\
     # HELP mfsa_things_total Things done\n\
     # TYPE mfsa_things_total counter\n\
     mfsa_things_total{engine=\"hybrid\"} 4\n\
     mfsa_things_total{engine=\"imfant\"} 3\n"
    text

let test_prometheus_histogram () =
  let h =
    S.histogram ~help:"Latency" "mfsa_lat_seconds" ~bounds:[| 0.1; 1.0 |]
      ~counts:[| 2; 1; 1 |] ~sum:1.75
  in
  let text = S.to_prometheus [ h ] in
  check Alcotest.string "histogram exposition"
    "# HELP mfsa_lat_seconds Latency\n\
     # TYPE mfsa_lat_seconds histogram\n\
     mfsa_lat_seconds_bucket{le=\"0.1\"} 2\n\
     mfsa_lat_seconds_bucket{le=\"1\"} 3\n\
     mfsa_lat_seconds_bucket{le=\"+Inf\"} 4\n\
     mfsa_lat_seconds_sum 1.750000\n\
     mfsa_lat_seconds_count 4\n"
    text

let test_prometheus_escaping () =
  let text =
    S.to_prometheus
      [ S.counter_i ~labels:[ ("pattern", "a\"b\\c\nd") ] "mfsa_x_total" 1 ]
  in
  check Alcotest.string "escaped label"
    "# TYPE mfsa_x_total counter\n\
     mfsa_x_total{pattern=\"a\\\"b\\\\c\\nd\"} 1\n"
    text

let test_prometheus_no_duplicate_series () =
  (* Same name + labels from two sources must still be two *lines*
     (merge concatenates); the CI gate asserts real exports never
     contain such duplicates, so the validator below must be able to
     see them. Here: distinct labels produce distinct series and only
     one header per name. *)
  let text =
    S.to_prometheus
      (S.merge
         [
           [ S.counter_i ~labels:[ ("d", "0") ] "mfsa_y_total" 1 ];
           [ S.counter_i ~labels:[ ("d", "1") ] "mfsa_y_total" 2 ];
         ])
  in
  let headers =
    List.filter
      (fun l -> String.length l > 6 && String.sub l 0 6 = "# TYPE")
      (String.split_on_char '\n' text)
  in
  check Alcotest.int "one TYPE header" 1 (List.length headers)

let test_json_shape () =
  let json =
    S.to_json
      [
        S.gauge_i ~labels:[ ("engine", "dfa") ] "mfsa_engine_rules" 7;
        S.histogram "mfsa_h_seconds" ~bounds:[| 1.0 |] ~counts:[| 1; 0 |]
          ~sum:0.5;
      ]
  in
  check Alcotest.string "json"
    "[\n\
    \  {\"name\": \"mfsa_engine_rules\", \"type\": \"gauge\", \"labels\": \
     {\"engine\": \"dfa\"}, \"value\": 7},\n\
    \  {\"name\": \"mfsa_h_seconds\", \"type\": \"histogram\", \"labels\": \
     {}, \"count\": 1, \"sum\": 0.500000, \"buckets\": [{\"le\": \"1\", \
     \"count\": 1}, {\"le\": \"+Inf\", \"count\": 0}]}\n\
     ]\n"
    json

let test_to_kv () =
  let kv =
    S.to_kv ~drop_labels:[ "engine" ]
      [
        S.counter_i ~labels:[ ("engine", "imfant") ] "mfsa_runs_total" 2;
        S.gauge ~labels:[ ("engine", "imfant"); ("d", "0") ] "mfsa_avg" 1.5;
        S.histogram "mfsa_h" ~bounds:[| 1.0 |] ~counts:[| 3; 0 |] ~sum:0.75;
      ]
  in
  check
    Alcotest.(list (pair string string))
    "kv pairs"
    [
      ("mfsa_avg{d=0}", "1.500000");
      ("mfsa_h_count", "3");
      ("mfsa_h_sum", "0.750000");
      ("mfsa_runs_total", "2");
    ]
    kv

let test_combinators () =
  let snap = [ S.counter_i ~labels:[ ("engine", "x") ] "mfsa_c_total" 5 ] in
  let tagged = S.with_labels [ ("engine", "y"); ("gen", "3") ] snap in
  (match tagged with
  | [ s ] ->
      (* Existing keys win; new ones are added. *)
      check
        Alcotest.(list (pair string string))
        "labels"
        [ ("engine", "x"); ("gen", "3") ]
        s.S.labels
  | _ -> Alcotest.fail "one sample expected");
  check
    Alcotest.(option (float 1e-9))
    "number" (Some 5.)
    (S.number snap "mfsa_c_total");
  check Alcotest.bool "equal ignores help" true
    (S.equal snap [ S.counter_i ~help:"doc" ~labels:[ ("engine", "x") ] "mfsa_c_total" 5 ]);
  check Alcotest.bool "equal sees values" false
    (S.equal snap [ S.counter_i ~labels:[ ("engine", "x") ] "mfsa_c_total" 6 ]);
  match S.without_label "engine" snap with
  | [ s ] -> check Alcotest.(list (pair string string)) "dropped" [] s.S.labels
  | _ -> Alcotest.fail "one sample expected"

(* -------------------------------------------------------- Registry *)

let test_registry_roundtrip () =
  let reg = Obs.create () in
  let c = Obs.counter ~registry:reg ~help:"h" "t_total" in
  Obs.inc c;
  Obs.add c 4;
  (* Get-or-create: a second registration is the same underlying
     metric. *)
  Obs.inc (Obs.counter ~registry:reg "t_total");
  check Alcotest.int "counter" 6 (Obs.counter_value c);
  let g = Obs.gauge ~registry:reg ~labels:[ ("d", "0") ] "t_gauge" in
  Obs.set g 2.5;
  check (Alcotest.float 1e-9) "gauge" 2.5 (Obs.gauge_value g);
  let h = Obs.histogram ~registry:reg ~bounds:[| 1.0; 2.0 |] "t_seconds" in
  Obs.observe h 0.5;
  Obs.observe h 1.5;
  Obs.observe h 99.;
  let snap = Obs.snapshot reg in
  (match S.find snap "t_seconds" with
  | Some { S.value = S.Histogram hh; _ } ->
      check Alcotest.(array int) "buckets" [| 1; 1; 1 |] hh.S.counts;
      check Alcotest.int "count" 3 hh.S.count;
      check (Alcotest.float 1e-9) "sum" 101. hh.S.sum
  | _ -> Alcotest.fail "histogram sample missing");
  check Alcotest.(option (float 1e-9)) "snap counter" (Some 6.)
    (S.number snap "t_total");
  Obs.reset reg;
  check Alcotest.int "reset counter" 0 (Obs.counter_value c);
  match S.find (Obs.snapshot reg) "t_seconds" with
  | Some { S.value = S.Histogram hh; _ } ->
      check Alcotest.int "reset histogram" 0 hh.S.count
  | _ -> Alcotest.fail "histogram sample missing after reset"

let test_kind_mismatch () =
  let reg = Obs.create () in
  ignore (Obs.counter ~registry:reg "t_kind");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs: t_kind is already registered as a counter")
    (fun () -> ignore (Obs.gauge ~registry:reg "t_kind"))

let test_disabled_updates () =
  let reg = Obs.create () in
  let c = Obs.counter ~registry:reg "t_off_total" in
  Obs.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled true)
    (fun () -> Obs.inc c);
  check Alcotest.int "no-op while disabled" 0 (Obs.counter_value c);
  Obs.inc c;
  check Alcotest.int "re-enabled" 1 (Obs.counter_value c)

let test_time_observes_on_raise () =
  let reg = Obs.create () in
  let h = Obs.histogram ~registry:reg "t_span_seconds" in
  (match Obs.time h (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  match S.find (Obs.snapshot reg) "t_span_seconds" with
  | Some { S.value = S.Histogram hh; _ } ->
      check Alcotest.int "raising span observed" 1 hh.S.count
  | _ -> Alcotest.fail "histogram sample missing"

(* --------------------------- Engine reset-reproducibility property *)

let fsa_of_rule rule =
  let module A = Mfsa_automata in
  A.Multiplicity.fuse
    (A.Epsilon.remove
       (A.Thompson.build
          (A.Simplify.char_classes_rule (A.Loops.expand_rule rule))))

(* For every registered engine: run a fresh compile on an input and
   snapshot; then reset_stats and run the same input again — the two
   snapshots must be equal. This is what makes per-engine metrics
   meaningful across measurement windows, and for the hybrid it pins
   the adapter contract that reset_stats also drops the configuration
   cache (otherwise the warm second run would report different
   hit/miss/interned counts). *)
let prop_reset_stats_reproducible =
  QCheck2.Test.make ~count:40
    ~name:"every engine: reset_stats + rerun = fresh-compile snapshot"
    ~print:Gen_re.print_ruleset_input
    (QCheck2.Gen.pair (Gen_re.ruleset ()) Gen_re.input)
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      List.for_all
        (fun name ->
          let eng = Registry.compile_automaton_exn name z in
          ignore (Engine_sig.run eng input);
          let fresh = Engine_sig.stats eng in
          Engine_sig.reset_stats eng;
          ignore (Engine_sig.run eng input);
          let rerun = Engine_sig.stats eng in
          if S.equal fresh rerun then true
          else
            QCheck2.Test.fail_reportf "%s diverges:@.%a@.vs@.%a" name S.pp
              fresh S.pp rerun)
        (* [general_names]: restricted engines (ac) reject arbitrary
           generated rulesets at compile time. *)
        (Registry.general_names ()))

let () =
  Alcotest.run "obs"
    [
      ( "snapshot",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus_text;
          Alcotest.test_case "prometheus histogram" `Quick
            test_prometheus_histogram;
          Alcotest.test_case "prometheus escaping" `Quick
            test_prometheus_escaping;
          Alcotest.test_case "series grouping" `Quick
            test_prometheus_no_duplicate_series;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "to_kv" `Quick test_to_kv;
          Alcotest.test_case "combinators" `Quick test_combinators;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "quantile via registry" `Quick
            test_quantile_from_registry;
          Alcotest.test_case "process gauges" `Quick test_process_gauges;
        ] );
      ( "registry",
        [
          Alcotest.test_case "roundtrip" `Quick test_registry_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "disabled updates" `Quick test_disabled_updates;
          Alcotest.test_case "span on raise" `Quick
            test_time_observes_on_raise;
        ] );
      ( "engines",
        [ qtest prop_reset_stats_reproducible ] );
    ]

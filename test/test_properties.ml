(* Cross-module property tests — the system-level invariants.

   The headline property is the MFSA correctness theorem of paper
   §III-B: for any ruleset and any input, the merged MFSA executed by
   iMFAnt produces exactly the matches that the individual FSAs
   produce under iNFAnt — no lost matches and, crucially, no
   false-positive over-matching from the merged paths. *)

module Nfa = Mfsa_automata.Nfa
module Sim = Mfsa_automata.Simulate
module Thompson = Mfsa_automata.Thompson
module Epsilon = Mfsa_automata.Epsilon
module Loops = Mfsa_automata.Loops
module Multiplicity = Mfsa_automata.Multiplicity
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module In = Mfsa_engine.Infant
module Im = Mfsa_engine.Imfant
module Anml = Mfsa_anml.Anml
module Ast = Mfsa_frontend.Ast
module Gen = QCheck2.Gen

let qtest = QCheck_alcotest.to_alcotest

let fsa_of_rule rule =
  Multiplicity.fuse
    (Epsilon.remove
       (Thompson.build
          (Mfsa_automata.Simplify.char_classes_rule (Loops.expand_rule rule))))

let ruleset_and_input =
  Gen.pair (Gen_re.ruleset ()) Gen_re.input

let per_fsa_ends events j =
  List.filter_map (fun e -> if e.Im.fsa = j then Some e.Im.end_pos else None) events

(* The headline theorem. *)
let prop_mfsa_equals_union_of_fsas =
  QCheck2.Test.make ~count:150
    ~name:"HEADLINE: iMFAnt(merge rules) = union of iNFAnt(rule)"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let events = Im.run (Im.compile z) input in
      Array.for_all
        (fun j ->
          let expected = In.run (In.compile fsas.(j)) input in
          per_fsa_ends events j = expected)
        (Array.init (Array.length fsas) Fun.id))

(* Same theorem for every intermediate merging factor. *)
let prop_merge_groups_equivalence =
  QCheck2.Test.make ~count:60
    ~name:"merge_groups: every M produces the same matches"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let reference =
        Array.map (fun a -> Sim.match_ends a input) fsas
      in
      List.for_all
        (fun m ->
          let zs = Merge.merge_groups ~m fsas in
          let collected = Array.make (Array.length fsas) [] in
          List.iteri
            (fun gi z ->
              let base = gi * max 1 m in
              let events = Im.run (Im.compile z) input in
              for j = 0 to z.Mfsa.n_fsas - 1 do
                collected.(base + j) <- per_fsa_ends events j
              done)
            zs;
          (* m = 0 merges everything into a single group. *)
          (if m = 0 then
             match zs with
             | [ z ] ->
                 let events = Im.run (Im.compile z) input in
                 Array.iteri
                   (fun j _ -> collected.(j) <- per_fsa_ends events j)
                   fsas
             | _ -> ());
          collected = reference)
        [ 0; 1; 2; 3 ])

(* iNFAnt must agree with the reference simulator. *)
let prop_infant_equals_simulator =
  QCheck2.Test.make ~count:150 ~name:"iNFAnt = reference simulator"
    ~print:Gen_re.print_ruleset_input
    (Gen.map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let a = fsa_of_rule (List.hd rules) in
      In.run (In.compile a) input = Sim.match_ends a input)

(* The full middle-end preserves each rule's language. *)
let prop_middle_end_preserves_language =
  QCheck2.Test.make ~count:150 ~name:"middle-end pipeline preserves language"
    ~print:Gen_re.print_ruleset_input
    (Gen.map2 (fun r i -> ([ r ], i)) Gen_re.rule Gen_re.input)
    (fun (rules, input) ->
      let rule = List.hd rules in
      let raw = Thompson.build rule in
      let opt = fsa_of_rule rule in
      Sim.match_ends raw input = Sim.match_ends opt input)

(* Projection recovers automata of identical size and language. *)
let prop_projection_faithful =
  QCheck2.Test.make ~count:100 ~name:"project z j ≅ input fsa j"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      Array.for_all
        (fun j ->
          let p = Mfsa.project z j in
          p.Nfa.n_states = fsas.(j).Nfa.n_states
          && Nfa.n_transitions p = Nfa.n_transitions fsas.(j)
          && Sim.match_ends p input = Sim.match_ends fsas.(j) input)
        (Array.init (Array.length fsas) Fun.id))

(* Merging never grows the representation beyond the sum and never
   shrinks below the largest member. *)
let prop_merge_size_bounds =
  QCheck2.Test.make ~count:100 ~name:"merge size bounds"
    ~print:(fun rules ->
      String.concat ";" (List.map Gen_re.print_rule rules))
    (Gen_re.ruleset ())
    (fun rules ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let sum_states = Array.fold_left (fun acc a -> acc + a.Nfa.n_states) 0 fsas in
      let max_states = Array.fold_left (fun acc a -> max acc a.Nfa.n_states) 0 fsas in
      let sum_trans = Array.fold_left (fun acc a -> acc + Nfa.n_transitions a) 0 fsas in
      z.Mfsa.n_states <= sum_states
      && z.Mfsa.n_states >= max_states
      && Mfsa.n_transitions z <= sum_trans
      && Mfsa.validate z = Ok ())

(* The extended-ANML codec is lossless with respect to execution. *)
let prop_anml_roundtrip_execution =
  QCheck2.Test.make ~count:80 ~name:"ANML write/read preserves execution"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      match Anml.read (Anml.write [ z ]) with
      | Error _ -> false
      | Ok [ z' ] ->
          z'.Mfsa.n_states = z.Mfsa.n_states
          && Mfsa.n_transitions z' = Mfsa.n_transitions z
          && Im.run (Im.compile z') input = Im.run (Im.compile z) input
      | Ok _ -> false)

(* End-to-end: the textual pipeline agrees with the per-rule oracle. *)
let prop_pipeline_end_to_end =
  QCheck2.Test.make ~count:60 ~name:"pipeline compile + execute = oracle"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let patterns =
        Array.of_list (List.map (fun r -> Format.asprintf "%a" Ast.pp_rule r) rules)
      in
      match Mfsa_core.Pipeline.compile ~m:0 patterns with
      | Error _ -> QCheck2.assume_fail ()
      | Ok c -> (
          match c.Mfsa_core.Pipeline.mfsas with
          | [ z ] ->
              let events = Im.run (Im.compile z) input in
              Array.for_all
                (fun j ->
                  per_fsa_ends events j
                  = Sim.match_ends c.Mfsa_core.Pipeline.fsas.(j) input)
                (Array.init (Array.length patterns) Fun.id)
          | _ -> false))

(* The engine must agree with the executable specification of the
   formal model (Equations 4-9, Mfsa_model.Activation). *)
let prop_imfant_equals_formal_model =
  QCheck2.Test.make ~count:100
    ~name:"iMFAnt = formal-model interpreter (Eq. 4-9)"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let engine =
        Im.run (Im.compile z) input
        |> List.map (fun e -> (e.Im.fsa, e.Im.end_pos))
        |> List.sort (fun (j1, e1) (j2, e2) ->
               if e1 <> e2 then Int.compare e1 e2 else Int.compare j1 j2)
      in
      engine = Mfsa_model.Activation.run z input)

(* Table II instrumentation: the active count can never exceed the
   number of merged FSAs, and a matched FSA was active. *)
let prop_stats_bounds =
  QCheck2.Test.make ~count:80 ~name:"active-set statistics are bounded"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let _, stats = Im.run_with_stats (Im.compile z) input in
      stats.Im.positions = String.length input
      && stats.Im.max_active <= Array.length fsas
      && stats.Im.avg_active <= float_of_int stats.Im.max_active +. 1e-9
      && stats.Im.avg_active >= 0.)

(* The headline theorem again over the full byte alphabet: binary
   bytes, wide classes and the 256-symbol tables. *)
(* The headline theorem under the conservative merge strategy. *)
let prop_mfsa_equivalence_prefix_strategy =
  QCheck2.Test.make ~count:100
    ~name:"HEADLINE under prefix-aligned merging"
    ~print:Gen_re.print_ruleset_input ruleset_and_input
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge ~strategy:Merge.Prefix fsas in
      let events = Im.run (Im.compile z) input in
      Array.for_all
        (fun j -> per_fsa_ends events j = In.run (In.compile fsas.(j)) input)
        (Array.init (Array.length fsas) Fun.id))

let ( >>= ) = Gen.( >>= )

let prop_mfsa_equivalence_full_alphabet =
  QCheck2.Test.make ~count:100
    ~name:"HEADLINE over full byte alphabet"
    ~print:Gen_re.print_ruleset_input
    (Gen.pair
       (Gen.int_range 2 5 >>= fun n -> Gen.list_size (Gen.return n) Gen_re.wide_rule)
       Gen_re.wide_input)
    (fun (rules, input) ->
      let fsas = Array.of_list (List.map fsa_of_rule rules) in
      let z = Merge.merge fsas in
      let events = Im.run (Im.compile z) input in
      Array.for_all
        (fun j ->
          per_fsa_ends events j = In.run (In.compile fsas.(j)) input)
        (Array.init (Array.length fsas) Fun.id))

(* Reproducibility: merging is a pure function of its inputs. *)
let prop_merge_deterministic =
  QCheck2.Test.make ~count:80 ~name:"merge is deterministic"
    ~print:(fun rules -> String.concat ";" (List.map Gen_re.print_rule rules))
    (Gen_re.ruleset ())
    (fun rules ->
      let fsas () = Array.of_list (List.map fsa_of_rule rules) in
      let z1 = Merge.merge (fsas ()) and z2 = Merge.merge (fsas ()) in
      z1.Mfsa.n_states = z2.Mfsa.n_states
      && z1.Mfsa.row = z2.Mfsa.row
      && z1.Mfsa.col = z2.Mfsa.col
      && Array.for_all2 Mfsa_charset.Charclass.equal z1.Mfsa.idx z2.Mfsa.idx
      && Array.for_all2 Mfsa_util.Bitset.equal z1.Mfsa.bel z2.Mfsa.bel
      && z1.Mfsa.init_of = z2.Mfsa.init_of)

let () =
  Alcotest.run "properties"
    [
      ( "system",
        [
          qtest prop_mfsa_equals_union_of_fsas;
          qtest prop_merge_groups_equivalence;
          qtest prop_infant_equals_simulator;
          qtest prop_middle_end_preserves_language;
          qtest prop_projection_faithful;
          qtest prop_merge_size_bounds;
          qtest prop_anml_roundtrip_execution;
          qtest prop_pipeline_end_to_end;
          qtest prop_imfant_equals_formal_model;
          qtest prop_mfsa_equivalence_full_alphabet;
          qtest prop_mfsa_equivalence_prefix_strategy;
          qtest prop_merge_deterministic;
          qtest prop_stats_bounds;
        ] );
    ]

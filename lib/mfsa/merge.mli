(** Merging a set of FSAs into a single MFSA — the paper's Algorithm 1
    (§III-A).

    FSAs are merged in a cascaded fashion: the first automaton is
    copied into the evolving MFSA as-is; each subsequent automaton [a]
    is compared against the MFSA [z] to find common sub-paths — chains
    of transitions with pairwise-equal labels (single characters and
    character classes are compared uniformly as classes, covering both
    of the paper's tuple sets [X] and [Y]) — which are collected into
    merging structures. The merging structures induce a relabeling of
    [a]'s states onto [z]'s states; the relabeling is kept {e
    injective in both directions} so that each input FSA's morphology
    is preserved exactly (the paper's correctness condition: no
    transition is removed or changed, and [Mfsa.project] recovers an
    isomorphic copy of every input). Relabelled transitions of [a]
    that coincide with an existing [z] transition update its belonging
    vector with [a]'s identifier; the remaining transitions and states
    are appended fresh.

    The three outcomes of the paper's search are all covered: no
    common sub-path (pure copy with disjoint relabeling), partial
    overlap (belonging update on the shared prefix), and identical
    automata (pure belonging update, no growth). *)

type strategy = Builder.strategy =
  | Greedy
      (** Seed a merge chain at any label-equal transition pair — the
          maximal reading of the paper's X/Y tuple sets. Highest
          compression; can merge mid-rule sub-paths, which raises the
          run-time activation pressure (Table II). *)
  | Prefix
      (** Seed chains only at initial states (the incoming FSA's start
          against an existing initial state), producing trie-like
          shared prefixes. Lower compression, lower activation
          pressure — the conservative end of the design space,
          evaluated as an ablation by the benchmark harness. *)

type stats = Builder.stats = {
  seeds : int;  (** Label-equal transition pairs that started a chain. *)
  chains : int;  (** Merging structures (maximal matched chains). *)
  merged_transitions : int;
      (** Transitions of incoming FSAs that landed on an existing MFSA
          transition (belonging update instead of a copy). *)
  merged_states : int;
      (** States of incoming FSAs relabelled onto existing MFSA
          states. *)
}

val merge :
  ?strategy:strategy -> ?stats:stats ref -> Mfsa_automata.Nfa.t array -> Mfsa.t
(** [merge fsas] merges all automata into one MFSA; identifier [j] is
    the index of the automaton in [fsas]. Automata must be ε-free
    ({!Mfsa_automata.Epsilon.remove} first). [strategy] defaults to
    {!Greedy}.
    @raise Invalid_argument on an empty array or ε-arcs. *)

val merge_into :
  ?strategy:strategy ->
  ?stats:stats ref ->
  Mfsa.t ->
  Mfsa_automata.Nfa.t ->
  int ->
  Mfsa.t
(** [merge_into z a j] adds one more compiled FSA to an {e existing}
    MFSA, reusing the cascaded body of Algorithm 1 instead of
    re-merging the whole group: the incoming automaton is searched
    against [z] for common sub-paths, relabelled, and appended, so the
    cost is that of one merge step — independent of how many FSAs [z]
    already holds. [j] is the merged-FSA identifier assigned to [a]
    and must be [z.n_fsas] (identifiers stay the positions of the
    merge sequence). The input MFSA is unchanged.

    This is the one-shot entry point; callers performing many updates
    should hold a persistent {!Builder.t} (as [lib/live] does) to
    avoid re-indexing [z] on every addition.
    @raise Invalid_argument on ε-arcs or [j <> z.n_fsas]. *)

val merge_groups :
  ?strategy:strategy ->
  ?stats:stats ref ->
  m:int ->
  Mfsa_automata.Nfa.t array ->
  Mfsa.t list
(** Partitions the ruleset into ⌈N/M⌉ consecutive groups of (up to)
    [m] automata, as in the paper's evaluation ("sampling the input M
    REs sequentially from the dataset"), and merges each group.
    [m = 0] or [m >= N] merges everything into one MFSA ([M = all]).
    @raise Invalid_argument if [m < 0] or the array is empty. *)

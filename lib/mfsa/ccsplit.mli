(** Partial character-class merging — the optimisation the paper
    sketches as future work in §VI-A: "in CCs [abce] and [bcd] it
    could be possible to merge the common characters [bc] only".

    Algorithm 1 merges two class transitions only when the classes are
    {e equal}. This pass makes partial overlap mergeable by rewriting
    the whole ruleset over the {e atoms} of the Boolean algebra its
    classes generate: the alphabet is partitioned so that two bytes
    fall in the same atom iff they occur in exactly the same set of
    transition classes across all FSAs, and every class transition is
    split into one parallel transition per atom it covers. [abce] and
    [bcd] both contain the atom [bc], so after splitting their [bc]
    parts are label-equal and Algorithm 1 merges them.

    Splitting multiplies transitions (each class covering k atoms
    becomes k arcs), so it is exposed as an optional pre-merging pass
    and evaluated as an ablation in the benchmark harness. Languages
    are unchanged: each split class is the disjoint union of its
    atoms. *)

val atoms : Mfsa_automata.Nfa.t array -> Mfsa_charset.Charclass.t list
(** The alphabet partition induced by every class appearing on any
    transition of the ruleset (bytes appearing on no transition form
    at most one residual atom, which never labels an arc). Atoms are
    pairwise disjoint, non-empty and cover every labelled byte. *)

val split : Mfsa_automata.Nfa.t array -> Mfsa_automata.Nfa.t array
(** Rewrite every FSA over the ruleset's atoms. State numbering is
    unchanged; each automaton's language is preserved. Automata must
    be ε-free. @raise Invalid_argument on ε-arcs. *)

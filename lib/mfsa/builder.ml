module Nfa = Mfsa_automata.Nfa

let log_src =
  Logs.Src.create "mfsa.builder" ~doc:"Evolving MFSA builder (Algorithm 1)"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset
module Vec = Mfsa_util.Vec

type strategy = Greedy | Prefix

type stats = {
  seeds : int;
  chains : int;
  merged_transitions : int;
  merged_states : int;
}

(* The evolving MFSA z of Algorithm 1, with the indexes the search
   needs: [by_label] finds seed candidates in O(1) per label, [out]
   drives the chain-extension loop, and [by_triple] detects that a
   relabelled incoming transition coincides with an existing one.
   Per-slot metadata ([init_of], [finals_of], anchors, patterns) is
   indexed by merged-FSA slot; [init_of] holds -1 for retired slots. *)
type t = {
  strategy : strategy;
  mutable cap : int;  (* belonging-bitset capacity, >= n_slots *)
  mutable n_states : int;
  mutable row : int Vec.t;
  mutable col : int Vec.t;
  mutable idx : Charclass.t Vec.t;
  mutable bel : Bitset.t Vec.t;
  by_label : (Charclass.t, int list ref) Hashtbl.t;
  out : (int, int list ref) Hashtbl.t;
  by_triple : (int * Charclass.t * int, int) Hashtbl.t;
  mutable init_of : int Vec.t;
  mutable finals_of : int list Vec.t;
  mutable anch_s : bool Vec.t;
  mutable anch_e : bool Vec.t;
  mutable pats : string Vec.t;
  mutable live : int;
  mutable dead : int;  (* transitions whose belonging set is empty *)
  mutable seeds : int;
  mutable chains : int;
  mutable merged_transitions : int;
  mutable merged_states : int;
}

let create ?(strategy = Greedy) () =
  {
    strategy;
    cap = 1;
    n_states = 0;
    row = Vec.create ();
    col = Vec.create ();
    idx = Vec.create ();
    bel = Vec.create ();
    by_label = Hashtbl.create 256;
    out = Hashtbl.create 256;
    by_triple = Hashtbl.create 256;
    init_of = Vec.create ();
    finals_of = Vec.create ();
    anch_s = Vec.create ();
    anch_e = Vec.create ();
    pats = Vec.create ();
    live = 0;
    dead = 0;
    seeds = 0;
    chains = 0;
    merged_transitions = 0;
    merged_states = 0;
  }

let n_slots b = Vec.length b.init_of
let n_live b = b.live

let is_live b slot =
  slot >= 0 && slot < n_slots b && Vec.get b.init_of slot >= 0

let n_states b = b.n_states
let n_transitions b = Vec.length b.row
let dead_transitions b = b.dead

let garbage_ratio b =
  let nt = n_transitions b in
  if nt = 0 then 0. else float_of_int b.dead /. float_of_int nt

let stats b =
  {
    seeds = b.seeds;
    chains = b.chains;
    merged_transitions = b.merged_transitions;
    merged_states = b.merged_states;
  }

let multi_add table key v =
  match Hashtbl.find_opt table key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add table key (ref [ v ])

let multi_find table key =
  match Hashtbl.find_opt table key with Some cell -> !cell | None -> []

(* Geometric capacity growth keeps per-add belonging-vector work
   amortised O(1): resizing every bitset is O(T) but happens only when
   the slot count doubles. *)
let ensure_cap b n =
  if n > b.cap then begin
    let cap = ref b.cap in
    while !cap < n do
      cap := !cap * 2
    done;
    b.cap <- !cap;
    Vec.iteri (fun i s -> Vec.set b.bel i (Bitset.resize s !cap)) b.bel
  end

let push_transition b ~src ~cls ~dst ~slot =
  let t = Vec.length b.row in
  Vec.push b.row src;
  Vec.push b.col dst;
  Vec.push b.idx cls;
  let belongs = Bitset.create b.cap in
  Bitset.add belongs slot;
  Vec.push b.bel belongs;
  multi_add b.by_label cls t;
  multi_add b.out src t;
  Hashtbl.add b.by_triple (src, cls, dst) t;
  t

let fresh_state b =
  let q = b.n_states in
  b.n_states <- q + 1;
  q

let class_of_label = function
  | Nfa.Eps -> invalid_arg "Merge: automata must be ε-free"
  | Nfa.Cls c -> c

(* Merge one incoming FSA [a] into the builder under slot [slot].
   Implements the body of Algorithm 1's outer loop: search for common
   sub-paths (lines 5-19), relabel (line 20), generateNew (line 21). *)
let merge_into b (a : Nfa.t) ~slot =
  (* Under the Prefix strategy, chains may only start where both
     automata start: the incoming FSA's initial transitions against
     transitions leaving an already-merged FSA's initial state. *)
  let z_inits =
    lazy
      (let t = Hashtbl.create 8 in
       Vec.iter (fun q -> if q >= 0 then Hashtbl.replace t q ()) b.init_of;
       t)
  in
  let seed_allowed tz ta =
    match b.strategy with
    | Greedy -> true
    | Prefix ->
        a.Nfa.transitions.(ta).Nfa.src = a.Nfa.start
        && Hashtbl.mem (Lazy.force z_inits) (Vec.get b.row tz)
  in
  let a_out = Nfa.out a in
  let nt_a = Array.length a.Nfa.transitions in
  (* The relabeling under construction. [amap]: a-state → z-state;
     [zmap]: z-state → a-state. Keeping both directions single-valued
     is what preserves each FSA's morphology inside the MFSA. *)
  let amap = Hashtbl.create 64 in
  let zmap = Hashtbl.create 64 in
  let matched_a = Array.make (max nt_a 1) false in
  (* Transition pair (tz : p →[C] q, ta : u →[C] v) is admissible iff
     relabeling u↦p and v↦q is consistent with the mapping so far. *)
  let pair_consistent tz ta =
    let p = Vec.get b.row tz and q = Vec.get b.col tz in
    let tr = a.Nfa.transitions.(ta) in
    let u = tr.Nfa.src and v = tr.Nfa.dst in
    let state_ok u p =
      match Hashtbl.find_opt amap u with
      | Some p' -> p' = p
      | None -> not (Hashtbl.mem zmap p)
    in
    (* Self-loop alignment: if u = v the images must coincide too. *)
    state_ok u p && state_ok v q && (u <> v || p = q) && (p <> q || u = v)
  in
  let commit tz ta =
    let p = Vec.get b.row tz and q = Vec.get b.col tz in
    let tr = a.Nfa.transitions.(ta) in
    let bind u p =
      if not (Hashtbl.mem amap u) then begin
        Hashtbl.add amap u p;
        Hashtbl.add zmap p u;
        b.merged_states <- b.merged_states + 1
      end
    in
    bind tr.Nfa.src p;
    bind tr.Nfa.dst q;
    matched_a.(ta) <- true
  in
  (* Chain extension (Algorithm 1 lines 11-16): from a committed pair,
     keep walking matching successor transitions. *)
  let rec extend tz ta =
    let q_z = Vec.get b.col tz in
    let v_a = a.Nfa.transitions.(ta).Nfa.dst in
    let next =
      List.find_map
        (fun ta' ->
          if matched_a.(ta') then None
          else
            let cls_a = class_of_label a.Nfa.transitions.(ta').Nfa.label in
            List.find_map
              (fun tz' ->
                if
                  Charclass.equal (Vec.get b.idx tz') cls_a
                  && pair_consistent tz' ta'
                then Some (tz', ta')
                else None)
              (multi_find b.out q_z))
        (Array.to_list a_out.(v_a))
    in
    match next with
    | Some (tz', ta') ->
        commit tz' ta';
        extend tz' ta'
    | None -> ()
  in
  (* Seed search (Algorithm 1 lines 6-10): first admissible label-equal
     pair for each yet-unmatched incoming transition starts a chain. *)
  for ta = 0 to nt_a - 1 do
    if not matched_a.(ta) then begin
      let cls = class_of_label a.Nfa.transitions.(ta).Nfa.label in
      match
        List.find_opt
          (fun tz -> seed_allowed tz ta && pair_consistent tz ta)
          (List.rev (multi_find b.by_label cls))
      with
      | Some tz ->
          b.seeds <- b.seeds + 1;
          b.chains <- b.chains + 1;
          commit tz ta;
          extend tz ta
      | None -> ()
    end
  done;
  (* Relabel: merged states keep their z image, the rest get fresh
     labels disjoint from the current MFSA states. *)
  let label_of u =
    match Hashtbl.find_opt amap u with
    | Some p -> p
    | None ->
        let p = fresh_state b in
        Hashtbl.add amap u p;
        Hashtbl.add zmap p u;
        p
  in
  (* generateNew: update belonging of coinciding transitions, append
     the others. Landing on a dead transition resurrects it. *)
  Array.iter
    (fun tr ->
      let cls = class_of_label tr.Nfa.label in
      let src = label_of tr.Nfa.src and dst = label_of tr.Nfa.dst in
      match Hashtbl.find_opt b.by_triple (src, cls, dst) with
      | Some t ->
          let belongs = Vec.get b.bel t in
          if Bitset.is_empty belongs then b.dead <- b.dead - 1;
          Bitset.add belongs slot;
          b.merged_transitions <- b.merged_transitions + 1
      | None -> ignore (push_transition b ~src ~cls ~dst ~slot))
    a.Nfa.transitions;
  Vec.set b.init_of slot (label_of a.Nfa.start);
  Vec.set b.finals_of slot (List.map label_of (Nfa.final_states a))

let add b (a : Nfa.t) =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Mfsa builder: automata must be ε-free";
  let slot = n_slots b in
  ensure_cap b (slot + 1);
  Vec.push b.init_of (-1);
  Vec.push b.finals_of [];
  Vec.push b.anch_s a.Nfa.anchored_start;
  Vec.push b.anch_e a.Nfa.anchored_end;
  Vec.push b.pats a.Nfa.pattern;
  b.live <- b.live + 1;
  merge_into b a ~slot;
  slot

let retire b slot =
  if not (is_live b slot) then
    invalid_arg
      (Printf.sprintf "Mfsa builder: slot %d is not live (of %d)" slot
         (n_slots b));
  Vec.iter
    (fun belongs ->
      if Bitset.mem belongs slot then begin
        Bitset.remove belongs slot;
        if Bitset.is_empty belongs then b.dead <- b.dead + 1
      end)
    b.bel;
  Vec.set b.init_of slot (-1);
  Vec.set b.finals_of slot [];
  b.live <- b.live - 1;
  Log.debug (fun m ->
      m "retired slot %d: %d/%d transitions now dead" slot b.dead
        (n_transitions b))

let pow2_above n =
  let cap = ref 1 in
  while !cap < n do
    cap := !cap * 2
  done;
  !cap

let compact b =
  let slots = n_slots b in
  (* Renumber the live slots compactly, in slot order. *)
  let slot_map = Array.make slots (-1) in
  let next = ref 0 in
  for s = 0 to slots - 1 do
    if Vec.get b.init_of s >= 0 then begin
      slot_map.(s) <- !next;
      incr next
    end
  done;
  let cap = pow2_above (max 1 !next) in
  (* States: keep what live structure touches, in increasing order
     (live transitions plus initial/final states of live slots —
     finals included defensively for degenerate automata). *)
  let used = Array.make (max 1 b.n_states) false in
  Vec.iteri
    (fun t belongs ->
      if not (Bitset.is_empty belongs) then begin
        used.(Vec.get b.row t) <- true;
        used.(Vec.get b.col t) <- true
      end)
    b.bel;
  Vec.iter (fun q -> if q >= 0 then used.(q) <- true) b.init_of;
  Vec.iter (List.iter (fun q -> used.(q) <- true)) b.finals_of;
  let state_map = Array.make (max 1 b.n_states) (-1) in
  let n_states = ref 0 in
  Array.iteri
    (fun q u ->
      if u then begin
        state_map.(q) <- !n_states;
        incr n_states
      end)
    used;
  (* Rebuild the COO vectors and the merge indexes from the survivors. *)
  let row = Vec.create ()
  and col = Vec.create ()
  and idx = Vec.create ()
  and bel = Vec.create () in
  Hashtbl.reset b.by_label;
  Hashtbl.reset b.out;
  Hashtbl.reset b.by_triple;
  Vec.iteri
    (fun t belongs ->
      if not (Bitset.is_empty belongs) then begin
        let src = state_map.(Vec.get b.row t)
        and dst = state_map.(Vec.get b.col t)
        and cls = Vec.get b.idx t in
        let remapped = Bitset.create cap in
        Bitset.iter (fun s -> Bitset.add remapped slot_map.(s)) belongs;
        let t' = Vec.length row in
        Vec.push row src;
        Vec.push col dst;
        Vec.push idx cls;
        Vec.push bel remapped;
        multi_add b.by_label cls t';
        multi_add b.out src t';
        Hashtbl.add b.by_triple (src, cls, dst) t'
      end)
    b.bel;
  let init_of = Vec.create ()
  and finals_of = Vec.create ()
  and anch_s = Vec.create ()
  and anch_e = Vec.create ()
  and pats = Vec.create () in
  for s = 0 to slots - 1 do
    if slot_map.(s) >= 0 then begin
      Vec.push init_of state_map.(Vec.get b.init_of s);
      Vec.push finals_of (List.map (fun q -> state_map.(q)) (Vec.get b.finals_of s));
      Vec.push anch_s (Vec.get b.anch_s s);
      Vec.push anch_e (Vec.get b.anch_e s);
      Vec.push pats (Vec.get b.pats s)
    end
  done;
  Log.debug (fun m ->
      m "compacted: %d→%d slots, %d→%d states, %d→%d transitions" slots !next
        b.n_states !n_states (n_transitions b) (Vec.length row));
  b.cap <- cap;
  b.n_states <- !n_states;
  b.row <- row;
  b.col <- col;
  b.idx <- idx;
  b.bel <- bel;
  b.init_of <- init_of;
  b.finals_of <- finals_of;
  b.anch_s <- anch_s;
  b.anch_e <- anch_e;
  b.pats <- pats;
  b.dead <- 0;
  slot_map

let freeze b =
  if b.live = 0 then None
  else begin
    let slots = n_slots b in
    let slot_map = Array.make slots (-1) in
    let slot_of_id = Array.make b.live 0 in
    let next = ref 0 in
    for s = 0 to slots - 1 do
      if Vec.get b.init_of s >= 0 then begin
        slot_map.(s) <- !next;
        slot_of_id.(!next) <- s;
        incr next
      end
    done;
    let n_fsas = b.live in
    let row = Vec.create ()
    and col = Vec.create ()
    and idx = Vec.create ()
    and bel = Vec.create () in
    Vec.iteri
      (fun t belongs ->
        if not (Bitset.is_empty belongs) then begin
          Vec.push row (Vec.get b.row t);
          Vec.push col (Vec.get b.col t);
          Vec.push idx (Vec.get b.idx t);
          let remapped = Bitset.create n_fsas in
          Bitset.iter (fun s -> Bitset.add remapped slot_map.(s)) belongs;
          Vec.push bel remapped
        end)
      b.bel;
    let n_states = max 1 b.n_states in
    let init_of = Array.map (fun s -> Vec.get b.init_of s) slot_of_id in
    let final_sets = Array.init n_states (fun _ -> Bitset.create n_fsas) in
    Array.iteri
      (fun j s ->
        List.iter (fun q -> Bitset.add final_sets.(q) j) (Vec.get b.finals_of s))
      slot_of_id;
    let z =
      Mfsa.of_arrays ~n_states ~n_fsas ~row:(Vec.to_array row)
        ~col:(Vec.to_array col) ~idx:(Vec.to_array idx) ~bel:(Vec.to_array bel)
        ~init_of ~final_sets
        ~anchored_start:(Array.map (fun s -> Vec.get b.anch_s s) slot_of_id)
        ~anchored_end:(Array.map (fun s -> Vec.get b.anch_e s) slot_of_id)
        ~patterns:(Array.map (fun s -> Vec.get b.pats s) slot_of_id)
    in
    Some (z, slot_of_id)
  end

let of_mfsa ?strategy (z : Mfsa.t) =
  let b = create ?strategy () in
  ensure_cap b (max 1 z.Mfsa.n_fsas);
  b.n_states <- z.Mfsa.n_states;
  Array.iteri
    (fun t src ->
      let dst = z.Mfsa.col.(t) and cls = z.Mfsa.idx.(t) in
      Vec.push b.row src;
      Vec.push b.col dst;
      Vec.push b.idx cls;
      Vec.push b.bel (Bitset.resize z.Mfsa.bel.(t) b.cap);
      multi_add b.by_label cls t;
      multi_add b.out src t;
      Hashtbl.add b.by_triple (src, cls, dst) t)
    z.Mfsa.row;
  for j = 0 to z.Mfsa.n_fsas - 1 do
    Vec.push b.init_of z.Mfsa.init_of.(j);
    Vec.push b.finals_of [];
    Vec.push b.anch_s z.Mfsa.anchored_start.(j);
    Vec.push b.anch_e z.Mfsa.anchored_end.(j);
    Vec.push b.pats z.Mfsa.patterns.(j)
  done;
  Array.iteri
    (fun q fs ->
      Bitset.iter (fun j -> Vec.set b.finals_of j (q :: Vec.get b.finals_of j)) fs)
    z.Mfsa.final_sets;
  (* final-state lists in increasing state order, as merge produces *)
  for j = 0 to z.Mfsa.n_fsas - 1 do
    Vec.set b.finals_of j (List.rev (Vec.get b.finals_of j))
  done;
  b.live <- z.Mfsa.n_fsas;
  b

(** The Multi-RE Finite State Automaton (paper §III-B).

    An MFSA is the tuple [z = (Q, Σ, Δ, I, F, J, R)] (paper Eq. 10):
    states [Q = \[0, n_states)], the byte alphabet Σ, a transition
    relation stored in adjacency-matrix Coordinate Format (the [row],
    [col], [idx] vectors of the paper's Fig. 2) extended with the
    belonging vector [bel] recording which merged FSAs each transition
    derives from, the per-FSA initial states [I], the per-FSA final
    state sets [F], and the merged-FSA identifier set
    [R = \[0, n_fsas)]. The activation function [J] is not stored — it
    is the run-time structure maintained by the iMFAnt engine according
    to Equations 4–6.

    Merged-FSA identifiers are the positions of the source FSAs in the
    array handed to {!Merge.merge}. *)

type classes = {
  class_of_byte : bytes;
      (** 256-entry map from byte value to equivalence-class id. *)
  n_classes : int;  (** Number of classes, in [\[1, 256\]]. *)
  class_repr : int array;
      (** [class_repr.(k)] = smallest byte value in class [k]. *)
}
(** The byte-class partition of an automaton's alphabet: two bytes are
    equivalent iff every transition's enabling class either contains
    both or neither, so the engines can index their transition tables
    by class id instead of raw byte — the RE2/Hyperscan table
    compression, computed once per compiled MFSA. *)

type t = private {
  n_states : int;
  n_fsas : int;
  row : int array;  (** Source state per transition. *)
  col : int array;  (** Destination state per transition. *)
  idx : Mfsa_charset.Charclass.t array;  (** Enabling class per transition. *)
  bel : Mfsa_util.Bitset.t array;
      (** [bel.(t)] ⊆ [\[0, n_fsas)]: FSAs transition [t] belongs to. *)
  init_of : int array;  (** [init_of.(j)] = initial state of FSA [j]. *)
  init_sets : Mfsa_util.Bitset.t array;
      (** [init_sets.(q)] = FSAs for which [q] is initial (inverse of
          [init_of]). *)
  final_sets : Mfsa_util.Bitset.t array;
      (** [final_sets.(q)] = FSAs for which [q] is final. *)
  anchored_start : bool array;  (** Per-FSA [^] flag. *)
  anchored_end : bool array;  (** Per-FSA [$] flag. *)
  patterns : string array;  (** Source REs, for provenance/reporting. *)
  classes_memo : classes option Atomic.t;
      (** Byte-class partition, memoised by {!classes}; use the
          accessor, never this field. *)
}

val n_transitions : t -> int

val classes : t -> classes
(** The byte-class partition of [z]'s alphabet, computed from the
    [idx] vector on first use and memoised on the automaton (safe to
    race from multiple domains — the computation is idempotent).
    Class ids are assigned in increasing byte order, so byte 0 is
    always class 0. *)

val identity_classes : classes
(** The trivial partition: 256 singleton classes, [class_of_byte]
    the identity. What engines fall back to when byte-class
    compression is disabled. *)

val of_fsa : Mfsa_automata.Nfa.t -> t
(** The trivial MFSA of a single FSA (merging factor M = 1): every
    transition belongs to FSA 0. Requires an ε-free automaton.
    @raise Invalid_argument otherwise. *)

val create :
  n_states:int ->
  n_fsas:int ->
  transitions:(int * Mfsa_charset.Charclass.t * int * int list) list ->
  inits:(int * int) list ->
  finals:(int * int) list ->
  ?anchored_start:bool array ->
  ?anchored_end:bool array ->
  patterns:string array ->
  unit ->
  t
(** General constructor, mainly for tests and the ANML reader.
    [transitions] are [(src, class, dst, belongs-to)];
    [inits]/[finals] are [(fsa, state)] pairs. Validates every range
    and that each FSA has exactly one initial state.
    @raise Invalid_argument on malformed input. *)

val of_arrays :
  n_states:int ->
  n_fsas:int ->
  row:int array ->
  col:int array ->
  idx:Mfsa_charset.Charclass.t array ->
  bel:Mfsa_util.Bitset.t array ->
  init_of:int array ->
  final_sets:Mfsa_util.Bitset.t array ->
  anchored_start:bool array ->
  anchored_end:bool array ->
  patterns:string array ->
  t
(** Constructor for already-assembled COO vectors (used by the merging
    builder and the ANML reader); computes [init_sets] and validates
    the same invariants as {!create}. The arrays are owned by the
    result and must not be mutated afterwards.
    @raise Invalid_argument on malformed input. *)

val project : t -> int -> Mfsa_automata.Nfa.t
(** [project z j] extracts FSA [j]: the sub-automaton of transitions
    whose belonging contains [j], with states renumbered compactly.
    By the merging procedure's correctness argument (paper §III-A, the
    morphology of initial FSAs is preserved), [project z j] is
    isomorphic to the [j]-th input FSA — the property tests check
    exactly this. @raise Invalid_argument if [j] is out of range. *)

val retire : t -> int -> t option
(** [retire z j] removes merged FSA [j] from the automaton: [j] is
    cleared from every belonging vector and from the initial/final
    structures, transitions whose belonging set became empty are
    dropped, states nothing live touches are compacted away, and the
    surviving identifiers above [j] shift down by one (staying the
    positions of the original merge sequence). [None] when [j] was the
    last FSA — an MFSA is never empty; the live layer represents the
    empty ruleset without an automaton. The input is unchanged.
    Projections of the survivors are preserved: [project (retire z j) k']
    is isomorphic to [project z k] for every surviving [k].
    @raise Invalid_argument if [j] is out of range. *)

val validate : t -> (unit, string) result
(** Structural invariants: vector lengths agree, states and FSA ids in
    range, no empty class, no empty belonging set, [init_sets] is the
    inverse of [init_of]. *)

val states_compression : before:int -> after:int -> float
(** Percentage reduction [(before - after) / before * 100] — the
    %comp metric of paper §VI-A. Returns 0 for [before = 0]. *)

val total_states : t list -> int
val total_transitions : t list -> int

val cc_stats : t -> int * int
(** [(count, total length)] of multi-character classes, as in Table I. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump: per-FSA metadata plus one line per transition. *)

val pp_coo : Format.formatter -> t -> unit
(** The COO table exactly as the paper's Fig. 2 draws it: four rows
    ([bel], [row], [col], [idx]) with one column per transition. *)

val to_dot : t -> string
(** Graphviz rendering; transition labels carry the belonging sets. *)

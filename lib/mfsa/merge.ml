module Nfa = Mfsa_automata.Nfa

let log_src = Logs.Src.create "mfsa.merge" ~doc:"MFSA merging (Algorithm 1)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type strategy = Builder.strategy = Greedy | Prefix

type stats = Builder.stats = {
  seeds : int;
  chains : int;
  merged_transitions : int;
  merged_states : int;
}

let freeze_exn b =
  match Builder.freeze b with
  | Some (z, _) -> z
  | None -> assert false (* every caller adds at least one FSA *)

let merge ?(strategy = Greedy) ?stats fsas =
  let n_fsas = Array.length fsas in
  if n_fsas = 0 then invalid_arg "Merge.merge: empty FSA set";
  Array.iter
    (fun a ->
      if not (Nfa.is_eps_free a) then
        invalid_arg "Merge.merge: automata must be ε-free")
    fsas;
  let b = Builder.create ~strategy () in
  (* The first automaton is copied as-is (Algorithm 1 line 3); adding
     to an empty builder does exactly that, since no seed can be
     found. *)
  Array.iter (fun a -> ignore (Builder.add b a)) fsas;
  Log.debug (fun m ->
      m "merged %d FSAs: %d states, %d transitions (%d seeds, %d shared transitions)"
        n_fsas (Builder.n_states b) (Builder.n_transitions b)
        (Builder.stats b).seeds (Builder.stats b).merged_transitions);
  (match stats with Some cell -> cell := Builder.stats b | None -> ());
  freeze_exn b

let merge_into ?(strategy = Greedy) ?stats z a j =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Merge.merge_into: automata must be ε-free";
  if j <> z.Mfsa.n_fsas then
    invalid_arg
      (Printf.sprintf
         "Merge.merge_into: identifier %d must be the next free one (%d)" j
         z.Mfsa.n_fsas);
  let b = Builder.of_mfsa ~strategy z in
  let slot = Builder.add b a in
  assert (slot = j);
  (match stats with Some cell -> cell := Builder.stats b | None -> ());
  freeze_exn b

let add_stats a b =
  {
    seeds = a.seeds + b.seeds;
    chains = a.chains + b.chains;
    merged_transitions = a.merged_transitions + b.merged_transitions;
    merged_states = a.merged_states + b.merged_states;
  }

let merge_groups ?strategy ?stats ~m fsas =
  let n = Array.length fsas in
  if n = 0 then invalid_arg "Merge.merge_groups: empty FSA set";
  if m < 0 then invalid_arg "Merge.merge_groups: negative merging factor";
  let m = if m = 0 || m > n then n else m in
  let groups = ref [] in
  let i = ref 0 in
  while !i < n do
    let len = min m (n - !i) in
    groups := Array.sub fsas !i len :: !groups;
    i := !i + len
  done;
  List.rev_map
    (fun group ->
      match stats with
      | None -> merge ?strategy group
      | Some acc ->
          let s = ref { seeds = 0; chains = 0; merged_transitions = 0; merged_states = 0 } in
          let z = merge ?strategy ~stats:s group in
          acc := add_stats !acc !s;
          z)
    !groups

module Nfa = Mfsa_automata.Nfa

let log_src = Logs.Src.create "mfsa.merge" ~doc:"MFSA merging (Algorithm 1)"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset
module Vec = Mfsa_util.Vec

type strategy = Greedy | Prefix

type stats = {
  seeds : int;
  chains : int;
  merged_transitions : int;
  merged_states : int;
}

(* The evolving MFSA z of Algorithm 1, with the indexes the search
   needs: [by_label] finds seed candidates in O(1) per label, [out]
   drives the chain-extension loop, and [by_triple] detects that a
   relabelled incoming transition coincides with an existing one. *)
type builder = {
  n_fsas : int;
  mutable n_states : int;
  row : int Vec.t;
  col : int Vec.t;
  idx : Charclass.t Vec.t;
  bel : Bitset.t Vec.t;
  by_label : (Charclass.t, int list ref) Hashtbl.t;
  out : (int, int list ref) Hashtbl.t;
  by_triple : (int * Charclass.t * int, int) Hashtbl.t;
  init_of : int array;
  final_acc : (int * int) Vec.t;  (* (fsa, state) pairs *)
}

let multi_add table key v =
  match Hashtbl.find_opt table key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add table key (ref [ v ])

let multi_find table key =
  match Hashtbl.find_opt table key with Some cell -> !cell | None -> []

let push_transition b ~src ~cls ~dst ~fsa =
  let t = Vec.length b.row in
  Vec.push b.row src;
  Vec.push b.col dst;
  Vec.push b.idx cls;
  let belongs = Bitset.create b.n_fsas in
  Bitset.add belongs fsa;
  Vec.push b.bel belongs;
  multi_add b.by_label cls t;
  multi_add b.out src t;
  Hashtbl.add b.by_triple (src, cls, dst) t;
  t

let fresh_state b =
  let q = b.n_states in
  b.n_states <- q + 1;
  q

let class_of_label = function
  | Nfa.Eps -> invalid_arg "Merge: automata must be ε-free"
  | Nfa.Cls c -> c

(* Merge one incoming FSA [a] (identifier [fsa]) into the builder.
   Implements the body of Algorithm 1's outer loop: search for common
   sub-paths (lines 5-19), relabel (line 20), generateNew (line 21). *)
let merge_into b (a : Nfa.t) ~strategy ~fsa ~seeds ~chains ~merged_transitions
    ~merged_states =
  (* Under the Prefix strategy, chains may only start where both
     automata start: the incoming FSA's initial transitions against
     transitions leaving an already-merged FSA's initial state. *)
  let z_inits =
    lazy
      (let t = Hashtbl.create 8 in
       Array.iter (fun q -> if q >= 0 then Hashtbl.replace t q ()) b.init_of;
       t)
  in
  let seed_allowed tz ta =
    match strategy with
    | Greedy -> true
    | Prefix ->
        a.Nfa.transitions.(ta).Nfa.src = a.Nfa.start
        && Hashtbl.mem (Lazy.force z_inits) (Vec.get b.row tz)
  in
  let a_out = Nfa.out a in
  let nt_a = Array.length a.Nfa.transitions in
  (* The relabeling under construction. [amap]: a-state → z-state;
     [zmap]: z-state → a-state. Keeping both directions single-valued
     is what preserves each FSA's morphology inside the MFSA. *)
  let amap = Hashtbl.create 64 in
  let zmap = Hashtbl.create 64 in
  let matched_a = Array.make (max nt_a 1) false in
  (* Transition pair (tz : p →[C] q, ta : u →[C] v) is admissible iff
     relabeling u↦p and v↦q is consistent with the mapping so far. *)
  let pair_consistent tz ta =
    let p = Vec.get b.row tz and q = Vec.get b.col tz in
    let tr = a.Nfa.transitions.(ta) in
    let u = tr.Nfa.src and v = tr.Nfa.dst in
    let state_ok u p =
      (match Hashtbl.find_opt amap u with
      | Some p' -> p' = p
      | None -> not (Hashtbl.mem zmap p))
    in
    (* Self-loop alignment: if u = v the images must coincide too. *)
    state_ok u p && state_ok v q && (u <> v || p = q) && (p <> q || u = v)
  in
  let commit tz ta =
    let p = Vec.get b.row tz and q = Vec.get b.col tz in
    let tr = a.Nfa.transitions.(ta) in
    let bind u p =
      if not (Hashtbl.mem amap u) then begin
        Hashtbl.add amap u p;
        Hashtbl.add zmap p u;
        incr merged_states
      end
    in
    bind tr.Nfa.src p;
    bind tr.Nfa.dst q;
    matched_a.(ta) <- true
  in
  (* Chain extension (Algorithm 1 lines 11-16): from a committed pair,
     keep walking matching successor transitions. *)
  let rec extend tz ta =
    let q_z = Vec.get b.col tz in
    let v_a = a.Nfa.transitions.(ta).Nfa.dst in
    let next =
      List.find_map
        (fun ta' ->
          if matched_a.(ta') then None
          else
            let cls_a = class_of_label a.Nfa.transitions.(ta').Nfa.label in
            List.find_map
              (fun tz' ->
                if
                  Charclass.equal (Vec.get b.idx tz') cls_a
                  && pair_consistent tz' ta'
                then Some (tz', ta')
                else None)
              (multi_find b.out q_z))
        (Array.to_list a_out.(v_a))
    in
    match next with
    | Some (tz', ta') ->
        commit tz' ta';
        extend tz' ta'
    | None -> ()
  in
  (* Seed search (Algorithm 1 lines 6-10): first admissible label-equal
     pair for each yet-unmatched incoming transition starts a chain. *)
  for ta = 0 to nt_a - 1 do
    if not matched_a.(ta) then begin
      let cls = class_of_label a.Nfa.transitions.(ta).Nfa.label in
      match
        List.find_opt
          (fun tz -> seed_allowed tz ta && pair_consistent tz ta)
          (List.rev (multi_find b.by_label cls))
      with
      | Some tz ->
          incr seeds;
          incr chains;
          commit tz ta;
          extend tz ta
      | None -> ()
    end
  done;
  (* Relabel: merged states keep their z image, the rest get fresh
     labels disjoint from the current MFSA states. *)
  let label_of u =
    match Hashtbl.find_opt amap u with
    | Some p -> p
    | None ->
        let p = fresh_state b in
        Hashtbl.add amap u p;
        Hashtbl.add zmap p u;
        p
  in
  (* generateNew: update belonging of coinciding transitions, append
     the others. *)
  Array.iter
    (fun tr ->
      let cls = class_of_label tr.Nfa.label in
      let src = label_of tr.Nfa.src and dst = label_of tr.Nfa.dst in
      match Hashtbl.find_opt b.by_triple (src, cls, dst) with
      | Some t ->
          Bitset.add (Vec.get b.bel t) fsa;
          incr merged_transitions
      | None -> ignore (push_transition b ~src ~cls ~dst ~fsa))
    a.Nfa.transitions;
  b.init_of.(fsa) <- label_of a.Nfa.start;
  List.iter
    (fun qf -> Vec.push b.final_acc (fsa, label_of qf))
    (Nfa.final_states a)

let merge ?(strategy = Greedy) ?stats fsas =
  let n_fsas = Array.length fsas in
  if n_fsas = 0 then invalid_arg "Merge.merge: empty FSA set";
  Array.iter
    (fun a ->
      if not (Nfa.is_eps_free a) then
        invalid_arg "Merge.merge: automata must be ε-free")
    fsas;
  let b =
    {
      n_fsas;
      n_states = 0;
      row = Vec.create ();
      col = Vec.create ();
      idx = Vec.create ();
      bel = Vec.create ();
      by_label = Hashtbl.create 256;
      out = Hashtbl.create 256;
      by_triple = Hashtbl.create 256;
      init_of = Array.make n_fsas (-1);
      final_acc = Vec.create ();
    }
  in
  let seeds = ref 0
  and chains = ref 0
  and merged_transitions = ref 0
  and merged_states = ref 0 in
  (* The first automaton is copied as-is (Algorithm 1 line 3); running
     merge_into on an empty builder does exactly that, since no seed
     can be found. *)
  Array.iteri
    (fun fsa a ->
      merge_into b a ~strategy ~fsa ~seeds ~chains ~merged_transitions
        ~merged_states)
    fsas;
  Log.debug (fun m ->
      m "merged %d FSAs: %d states, %d transitions (%d seeds, %d shared transitions)"
        n_fsas b.n_states (Vec.length b.row) !seeds !merged_transitions);
  (match stats with
  | Some cell ->
      cell :=
        {
          seeds = !seeds;
          chains = !chains;
          merged_transitions = !merged_transitions;
          merged_states = !merged_states;
        }
  | None -> ());
  let final_sets = Array.init b.n_states (fun _ -> Bitset.create n_fsas) in
  Vec.iter (fun (fsa, q) -> Bitset.add final_sets.(q) fsa) b.final_acc;
  Mfsa.of_arrays ~n_states:(max 1 b.n_states) ~n_fsas
    ~row:(Vec.to_array b.row) ~col:(Vec.to_array b.col)
    ~idx:(Vec.to_array b.idx) ~bel:(Vec.to_array b.bel) ~init_of:b.init_of
    ~final_sets
    ~anchored_start:(Array.map (fun a -> a.Nfa.anchored_start) fsas)
    ~anchored_end:(Array.map (fun a -> a.Nfa.anchored_end) fsas)
    ~patterns:(Array.map (fun a -> a.Nfa.pattern) fsas)

let add_stats a b =
  {
    seeds = a.seeds + b.seeds;
    chains = a.chains + b.chains;
    merged_transitions = a.merged_transitions + b.merged_transitions;
    merged_states = a.merged_states + b.merged_states;
  }

let merge_groups ?strategy ?stats ~m fsas =
  let n = Array.length fsas in
  if n = 0 then invalid_arg "Merge.merge_groups: empty FSA set";
  if m < 0 then invalid_arg "Merge.merge_groups: negative merging factor";
  let m = if m = 0 || m > n then n else m in
  let groups = ref [] in
  let i = ref 0 in
  while !i < n do
    let len = min m (n - !i) in
    groups := Array.sub fsas !i len :: !groups;
    i := !i + len
  done;
  List.rev_map
    (fun group ->
      match stats with
      | None -> merge ?strategy group
      | Some acc ->
          let s = ref { seeds = 0; chains = 0; merged_transitions = 0; merged_states = 0 } in
          let z = merge ?strategy ~stats:s group in
          acc := add_stats !acc !s;
          z)
    !groups

(** The evolving MFSA of Algorithm 1 as a first-class mutable value.

    {!Merge} historically owned this structure privately and consumed
    it in one shot: merge every FSA of a group, freeze, throw the
    builder away. The live-ruleset layer ([lib/live]) needs the same
    structure to {e persist} across updates, so the builder is now a
    module of its own supporting the full dynamic life cycle:

    - {!add} merges one more ε-free FSA into the evolving automaton,
      reusing the cascaded search / relabel / generateNew body of
      Algorithm 1 — adding a rule never re-merges the others;
    - {!retire} clears a merged-FSA identifier (a {e slot}) from every
      belonging vector and from the initial/final structures.
      Transitions whose belonging set becomes empty turn into {e dead}
      structure: they are skipped by {!freeze}, invisible to matching,
      but stay in the merge indexes where a later {!add} may resurrect
      them (shared sub-paths are reusable skeleton, not garbage);
    - {!compact} drops dead transitions and the states nothing live
      touches, renumbering slots and states compactly — the O(T) pass
      that callers amortise behind a garbage threshold;
    - {!freeze} snapshots the current live contents as an immutable,
      validated {!Mfsa.t} for the execution engines.

    Slots are allocated in increasing order by {!add} and never reused
    until a {!compact} renumbers them; belonging bitsets grow
    geometrically so adds stay amortised O(1) in the slot count. *)

type t

type strategy = Greedy | Prefix  (** See {!Merge.strategy}. *)

type stats = {
  seeds : int;
  chains : int;
  merged_transitions : int;
  merged_states : int;
}
(** Cumulative merge statistics over every {!add} so far; the fields
    are those of {!Merge.stats}. *)

val create : ?strategy:strategy -> unit -> t
(** Empty builder. [strategy] (default {!Greedy}) seeds every
    subsequent {!add}. *)

val of_mfsa : ?strategy:strategy -> Mfsa.t -> t
(** Reconstitute a builder from a frozen MFSA: slot [j] holds merged
    FSA [j], all structure live. O(states + transitions). *)

val n_slots : t -> int
(** Slots ever allocated (and not yet compacted away): the next {!add}
    returns [n_slots]. *)

val n_live : t -> int
(** Slots currently holding an FSA ([n_slots] minus retirements). *)

val is_live : t -> int -> bool

val n_states : t -> int

val n_transitions : t -> int
(** Including dead transitions. *)

val dead_transitions : t -> int

val garbage_ratio : t -> float
(** [dead_transitions / n_transitions] (0 when empty): the fraction of
    the structure matching no longer uses, compared against the live
    layer's garbage threshold. *)

val stats : t -> stats

val add : t -> Mfsa_automata.Nfa.t -> int
(** Merge one FSA into the evolving MFSA (the body of Algorithm 1's
    outer loop) and return the slot assigned to it.
    @raise Invalid_argument on an automaton with ε-arcs. *)

val retire : t -> int -> unit
(** Clear the slot from every belonging vector and the initial/final
    structures. Dead transitions are counted, not removed — run
    {!compact} when {!garbage_ratio} crosses the caller's threshold.
    @raise Invalid_argument if the slot is out of range or already
    retired. *)

val compact : t -> int array
(** Drop dead transitions and untouched states, renumber the live
    slots compactly (preserving relative order) and shrink the
    belonging bitsets. Returns the slot relocation map: entry [s] is
    the new slot of old slot [s], or [-1] if [s] was retired. *)

val freeze : t -> (Mfsa.t * int array) option
(** Immutable snapshot of the live contents: dead transitions are
    skipped and live slots become merged-FSA identifiers [0..L-1] in
    slot order. Returns the MFSA plus the identifier-to-slot map
    (entry [j] is the slot merged FSA [j] lives in), or [None] when no
    slot is live. The builder is unchanged and stays usable. *)

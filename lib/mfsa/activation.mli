(** Specification-level interpreter of the MFSA formal model (paper
    §III-B, Equations 4–9).

    This module executes an MFSA by transcribing the formal model
    directly: a run-time configuration is a set of pairs [(q, j)] —
    "FSA [j] is active at state [q]" — so that [J(q)] is the set of
    [j] with [(q, j)] in the configuration. A move over byte [c]
    applies, for every transition [q1 --C--> q2] with [c ∈ C] and
    every [j ∈ (J(q1) ∪ {j | q1 initial for j}) ∩ bel]:

    - Equation 4 (push on initial states), Equation 6 (pop when the
      transition does not belong to [j]) via the set comprehension;
    - Equation 5: a match for [j] is reported when [q2] is final for
      [j];
    - Equation 9: a path contributes only while some [j] stays active
      along it, which the pairwise representation enforces by
      construction.

    It exists as the executable specification: slow, built on
    {!Stdlib.Set}, free of the iMFAnt engine's symbol-first tables and
    bitset state vectors — the property suite checks that
    {!Mfsa_engine.Imfant} agrees with it exactly. *)

val run : Mfsa.t -> string -> (int * int) list
(** [(fsa, end position)] match events under the engine conventions
    (unanchored per-FSA unless flagged, non-empty matches, one report
    per (FSA, end) pair), ordered by end position then FSA id. *)

val count : Mfsa.t -> string -> int

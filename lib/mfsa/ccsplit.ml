module Nfa = Mfsa_automata.Nfa
module Charclass = Mfsa_charset.Charclass

let atoms fsas =
  (* Successive refinement: start from the trivial partition of the
     covered alphabet and split every block against every class. *)
  let classes =
    Array.to_list fsas
    |> List.concat_map (fun a ->
           Array.to_list a.Nfa.transitions
           |> List.filter_map (fun tr ->
                  match tr.Nfa.label with
                  | Nfa.Eps -> None
                  | Nfa.Cls c -> Some c))
    |> List.sort_uniq Charclass.compare
  in
  let covered = List.fold_left Charclass.union Charclass.empty classes in
  let refine partition cls =
    List.concat_map
      (fun block ->
        let inside = Charclass.inter block cls in
        let outside = Charclass.diff block cls in
        List.filter (fun b -> not (Charclass.is_empty b)) [ inside; outside ])
      partition
  in
  if Charclass.is_empty covered then []
  else List.fold_left refine [ covered ] classes

let split fsas =
  Array.iter
    (fun a ->
      if not (Nfa.is_eps_free a) then
        invalid_arg "Ccsplit.split: automata must be ε-free")
    fsas;
  let parts = atoms fsas in
  Array.map
    (fun a ->
      let transitions =
        Array.to_list a.Nfa.transitions
        |> List.concat_map (fun tr ->
               match tr.Nfa.label with
               | Nfa.Eps -> assert false
               | Nfa.Cls c ->
                   List.filter_map
                     (fun atom ->
                       let piece = Charclass.inter c atom in
                       if Charclass.is_empty piece then None
                       else Some { tr with Nfa.label = Nfa.Cls piece })
                     parts)
      in
      Nfa.create ~n_states:a.Nfa.n_states ~transitions ~start:a.Nfa.start
        ~finals:(Nfa.final_states a) ~anchored_start:a.Nfa.anchored_start
        ~anchored_end:a.Nfa.anchored_end ~pattern:a.Nfa.pattern ())
    fsas

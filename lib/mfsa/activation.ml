module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset

module Pair = struct
  type t = int * int (* state, fsa *)

  let compare = compare
end

module Config = Set.Make (Pair)

let run (z : Mfsa.t) input =
  let nt = Mfsa.n_transitions z in
  let len = String.length input in
  let matches = ref [] in
  let config = ref Config.empty in
  for i = 0 to len - 1 do
    let c = input.[i] in
    (* Equation 4's push: FSAs may start at their initial state at
       every position (position 0 only, when start-anchored). *)
    let sources =
      Array.to_list z.Mfsa.init_of
      |> List.mapi (fun j q0 -> (q0, j))
      |> List.filter (fun (_, j) -> (not z.Mfsa.anchored_start.(j)) || i = 0)
      |> Config.of_list
      |> Config.union !config
    in
    let next = ref Config.empty in
    let reported = ref [] in
    for t = 0 to nt - 1 do
      if Charclass.mem z.Mfsa.idx.(t) c then begin
        let q1 = z.Mfsa.row.(t) and q2 = z.Mfsa.col.(t) in
        Config.iter
          (fun (q, j) ->
            (* Equation 6: j survives the move only if the transition
               belongs to it. *)
            if q = q1 && Bitset.mem z.Mfsa.bel.(t) j then begin
              next := Config.add (q2, j) !next;
              (* Equation 5: match when q2 is final for j. *)
              if
                Bitset.mem z.Mfsa.final_sets.(q2) j
                && ((not z.Mfsa.anchored_end.(j)) || i + 1 = len)
              then reported := j :: !reported
            end)
          sources
      end
    done;
    List.sort_uniq Int.compare !reported
    |> List.iter (fun j -> matches := (j, i + 1) :: !matches);
    config := !next
  done;
  List.rev !matches
  |> List.stable_sort (fun (j1, e1) (j2, e2) ->
         if e1 <> e2 then Int.compare e1 e2 else Int.compare j1 j2)

let count z input = List.length (run z input)

module Nfa = Mfsa_automata.Nfa
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset

type classes = {
  class_of_byte : bytes;
  n_classes : int;
  class_repr : int array;
}

type t = {
  n_states : int;
  n_fsas : int;
  row : int array;
  col : int array;
  idx : Charclass.t array;
  bel : Bitset.t array;
  init_of : int array;
  init_sets : Bitset.t array;
  final_sets : Bitset.t array;
  anchored_start : bool array;
  anchored_end : bool array;
  patterns : string array;
  classes_memo : classes option Atomic.t;
}

let n_transitions z = Array.length z.row

let create ~n_states ~n_fsas ~transitions ~inits ~finals ?anchored_start
    ?anchored_end ~patterns () =
  if n_states <= 0 then invalid_arg "Mfsa.create: need at least one state";
  if n_fsas <= 0 then invalid_arg "Mfsa.create: need at least one FSA";
  if Array.length patterns <> n_fsas then
    invalid_arg "Mfsa.create: patterns length must equal n_fsas";
  let check_state what q =
    if q < 0 || q >= n_states then
      invalid_arg
        (Printf.sprintf "Mfsa.create: %s state %d out of range [0,%d)" what q
           n_states)
  in
  let check_fsa j =
    if j < 0 || j >= n_fsas then
      invalid_arg
        (Printf.sprintf "Mfsa.create: FSA id %d out of range [0,%d)" j n_fsas)
  in
  let nt = List.length transitions in
  let row = Array.make (max nt 1) 0 in
  let col = Array.make (max nt 1) 0 in
  let idx = Array.make (max nt 1) Charclass.empty in
  let bel = Array.make (max nt 1) (Bitset.create n_fsas) in
  List.iteri
    (fun i (src, cls, dst, belongs) ->
      check_state "source" src;
      check_state "destination" dst;
      if Charclass.is_empty cls then
        invalid_arg "Mfsa.create: empty character class";
      if belongs = [] then invalid_arg "Mfsa.create: empty belonging set";
      List.iter check_fsa belongs;
      row.(i) <- src;
      col.(i) <- dst;
      idx.(i) <- cls;
      bel.(i) <- Bitset.of_list n_fsas belongs)
    transitions;
  let row = Array.sub row 0 nt
  and col = Array.sub col 0 nt
  and idx = Array.sub idx 0 nt
  and bel = Array.sub bel 0 nt in
  let init_of = Array.make n_fsas (-1) in
  List.iter
    (fun (j, q) ->
      check_fsa j;
      check_state "initial" q;
      if init_of.(j) >= 0 then
        invalid_arg
          (Printf.sprintf "Mfsa.create: FSA %d has two initial states" j);
      init_of.(j) <- q)
    inits;
  Array.iteri
    (fun j q ->
      if q < 0 then
        invalid_arg (Printf.sprintf "Mfsa.create: FSA %d has no initial state" j))
    init_of;
  let init_sets = Array.init n_states (fun _ -> Bitset.create n_fsas) in
  Array.iteri (fun j q -> Bitset.add init_sets.(q) j) init_of;
  let final_sets = Array.init n_states (fun _ -> Bitset.create n_fsas) in
  List.iter
    (fun (j, q) ->
      check_fsa j;
      check_state "final" q;
      Bitset.add final_sets.(q) j)
    finals;
  let anchored_start =
    match anchored_start with
    | Some a when Array.length a = n_fsas -> a
    | Some _ -> invalid_arg "Mfsa.create: anchored_start length mismatch"
    | None -> Array.make n_fsas false
  in
  let anchored_end =
    match anchored_end with
    | Some a when Array.length a = n_fsas -> a
    | Some _ -> invalid_arg "Mfsa.create: anchored_end length mismatch"
    | None -> Array.make n_fsas false
  in
  {
    n_states;
    n_fsas;
    row;
    col;
    idx;
    bel;
    init_of;
    init_sets;
    final_sets;
    anchored_start;
    anchored_end;
    patterns;
    classes_memo = Atomic.make None;
  }

let repr_of class_of n_classes =
  let repr = Array.make n_classes (-1) in
  for c = 255 downto 0 do
    repr.(Char.code (Bytes.get class_of c)) <- c
  done;
  repr

let identity_classes =
  let class_of = Bytes.init 256 Char.chr in
  { class_of_byte = class_of; n_classes = 256; class_repr = repr_of class_of 256 }

let compute_classes z =
  let class_of, n = Charclass.partition (Array.to_list z.idx) in
  { class_of_byte = class_of; n_classes = n; class_repr = repr_of class_of n }

let classes z =
  match Atomic.get z.classes_memo with
  | Some c -> c
  | None ->
      let c = compute_classes z in
      (* Racing computations are idempotent: whichever CAS wins, every
         caller sees an equivalent partition. *)
      if Atomic.compare_and_set z.classes_memo None (Some c) then c
      else (match Atomic.get z.classes_memo with Some c -> c | None -> c)

let of_fsa (a : Nfa.t) =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Mfsa.of_fsa: automaton must be ε-free";
  let transitions =
    Array.to_list a.Nfa.transitions
    |> List.map (fun { Nfa.src; label; dst } ->
           match label with
           | Nfa.Eps -> assert false
           | Nfa.Cls c -> (src, c, dst, [ 0 ]))
  in
  let finals = List.map (fun q -> (0, q)) (Nfa.final_states a) in
  create ~n_states:a.Nfa.n_states ~n_fsas:1 ~transitions
    ~inits:[ (0, a.Nfa.start) ] ~finals
    ~anchored_start:[| a.Nfa.anchored_start |]
    ~anchored_end:[| a.Nfa.anchored_end |]
    ~patterns:[| a.Nfa.pattern |] ()

let project z j =
  if j < 0 || j >= z.n_fsas then invalid_arg "Mfsa.project: FSA id out of range";
  (* Collect the states touched by FSA j's transitions (plus its
     initial state) and renumber them compactly, initial state first. *)
  let renum = Hashtbl.create 64 in
  let count = ref 0 in
  let visit q =
    if not (Hashtbl.mem renum q) then begin
      Hashtbl.add renum q !count;
      incr count
    end
  in
  visit z.init_of.(j);
  let transitions = ref [] in
  for t = 0 to n_transitions z - 1 do
    if Bitset.mem z.bel.(t) j then begin
      visit z.row.(t);
      visit z.col.(t)
    end
  done;
  for t = n_transitions z - 1 downto 0 do
    if Bitset.mem z.bel.(t) j then
      transitions :=
        {
          Nfa.src = Hashtbl.find renum z.row.(t);
          label = Nfa.Cls z.idx.(t);
          dst = Hashtbl.find renum z.col.(t);
        }
        :: !transitions
  done;
  let finals = ref [] in
  Hashtbl.iter
    (fun q q' -> if Bitset.mem z.final_sets.(q) j then finals := q' :: !finals)
    renum;
  Nfa.create ~n_states:(max 1 !count) ~transitions:!transitions
    ~start:(Hashtbl.find renum z.init_of.(j))
    ~finals:!finals ~anchored_start:z.anchored_start.(j)
    ~anchored_end:z.anchored_end.(j) ~pattern:z.patterns.(j) ()

let validate z =
  let nt = n_transitions z in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if
    Array.length z.col <> nt
    || Array.length z.idx <> nt
    || Array.length z.bel <> nt
  then err "COO vectors have inconsistent lengths"
  else if
    Array.length z.init_sets <> z.n_states
    || Array.length z.final_sets <> z.n_states
  then err "state-set vectors have wrong length"
  else if
    Array.length z.init_of <> z.n_fsas
    || Array.length z.anchored_start <> z.n_fsas
    || Array.length z.anchored_end <> z.n_fsas
    || Array.length z.patterns <> z.n_fsas
  then err "per-FSA vectors have wrong length"
  else
    let bad = ref None in
    for t = 0 to nt - 1 do
      if !bad = None then
        if z.row.(t) < 0 || z.row.(t) >= z.n_states then
          bad := Some (Printf.sprintf "transition %d: row out of range" t)
        else if z.col.(t) < 0 || z.col.(t) >= z.n_states then
          bad := Some (Printf.sprintf "transition %d: col out of range" t)
        else if Charclass.is_empty z.idx.(t) then
          bad := Some (Printf.sprintf "transition %d: empty class" t)
        else if Bitset.is_empty z.bel.(t) then
          bad := Some (Printf.sprintf "transition %d: empty belonging" t)
    done;
    (match !bad with
    | None ->
        Array.iteri
          (fun j q ->
            if !bad = None then
              if q < 0 || q >= z.n_states then
                bad := Some (Printf.sprintf "FSA %d: initial state out of range" j)
              else if not (Bitset.mem z.init_sets.(q) j) then
                bad :=
                  Some
                    (Printf.sprintf
                       "FSA %d: init_sets is not the inverse of init_of" j))
          z.init_of
    | Some _ -> ());
    match !bad with None -> Ok () | Some msg -> Error msg

let of_arrays ~n_states ~n_fsas ~row ~col ~idx ~bel ~init_of ~final_sets
    ~anchored_start ~anchored_end ~patterns =
  if n_states <= 0 then invalid_arg "Mfsa.of_arrays: need at least one state";
  if n_fsas <= 0 then invalid_arg "Mfsa.of_arrays: need at least one FSA";
  let init_sets = Array.init n_states (fun _ -> Bitset.create n_fsas) in
  Array.iteri
    (fun j q ->
      if q < 0 || q >= n_states then
        invalid_arg
          (Printf.sprintf "Mfsa.of_arrays: FSA %d initial state out of range" j);
      Bitset.add init_sets.(q) j)
    init_of;
  let z =
    {
      n_states;
      n_fsas;
      row;
      col;
      idx;
      bel;
      init_of;
      init_sets;
      final_sets;
      anchored_start;
      anchored_end;
      patterns;
      classes_memo = Atomic.make None;
    }
  in
  match validate z with
  | Ok () -> z
  | Error msg -> invalid_arg ("Mfsa.of_arrays: " ^ msg)

let retire z j =
  if j < 0 || j >= z.n_fsas then invalid_arg "Mfsa.retire: FSA id out of range";
  if z.n_fsas = 1 then None
  else begin
    let nf = z.n_fsas - 1 in
    let remap_fsa i = if i < j then i else i - 1 in
    (* Belonging sets with j cleared; transitions left empty are dead. *)
    let keep = ref [] in
    for t = n_transitions z - 1 downto 0 do
      let b = Bitset.create nf in
      Bitset.iter (fun i -> if i <> j then Bitset.add b (remap_fsa i)) z.bel.(t);
      if not (Bitset.is_empty b) then keep := (t, b) :: !keep
    done;
    let keep = !keep in
    (* Compaction: renumber the states live structure still touches
       (surviving transitions plus surviving initial/final states). *)
    let used = Array.make z.n_states false in
    List.iter
      (fun (t, _) ->
        used.(z.row.(t)) <- true;
        used.(z.col.(t)) <- true)
      keep;
    Array.iteri (fun i q -> if i <> j then used.(q) <- true) z.init_of;
    Array.iteri
      (fun q fs -> Bitset.iter (fun i -> if i <> j then used.(q) <- true) fs)
      z.final_sets;
    let state_map = Array.make z.n_states (-1) in
    let n_states = ref 0 in
    Array.iteri
      (fun q u ->
        if u then begin
          state_map.(q) <- !n_states;
          incr n_states
        end)
      used;
    let nt = List.length keep in
    let row = Array.make (max nt 1) 0
    and col = Array.make (max nt 1) 0
    and idx = Array.make (max nt 1) Charclass.empty
    and bel = Array.make (max nt 1) (Bitset.create nf) in
    List.iteri
      (fun i (t, b) ->
        row.(i) <- state_map.(z.row.(t));
        col.(i) <- state_map.(z.col.(t));
        idx.(i) <- z.idx.(t);
        bel.(i) <- b)
      keep;
    let row = Array.sub row 0 nt
    and col = Array.sub col 0 nt
    and idx = Array.sub idx 0 nt
    and bel = Array.sub bel 0 nt in
    let init_of = Array.make nf 0 in
    Array.iteri
      (fun i q -> if i <> j then init_of.(remap_fsa i) <- state_map.(q))
      z.init_of;
    let final_sets =
      Array.init (max 1 !n_states) (fun _ -> Bitset.create nf)
    in
    Array.iteri
      (fun q fs ->
        if state_map.(q) >= 0 then
          Bitset.iter
            (fun i -> if i <> j then Bitset.add final_sets.(state_map.(q)) (remap_fsa i))
            fs)
      z.final_sets;
    let drop a =
      Array.init nf (fun i -> a.(if i < j then i else i + 1))
    in
    Some
      (of_arrays ~n_states:(max 1 !n_states) ~n_fsas:nf ~row ~col ~idx ~bel
         ~init_of ~final_sets
         ~anchored_start:(drop z.anchored_start)
         ~anchored_end:(drop z.anchored_end) ~patterns:(drop z.patterns))
  end

let states_compression ~before ~after =
  if before = 0 then 0.
  else float_of_int (before - after) /. float_of_int before *. 100.

let total_states zs = List.fold_left (fun acc z -> acc + z.n_states) 0 zs

let total_transitions zs =
  List.fold_left (fun acc z -> acc + n_transitions z) 0 zs

let cc_stats z =
  Array.fold_left
    (fun (count, total) c ->
      let n = Charclass.cardinal c in
      if n > 1 then (count + 1, total + n) else (count, total))
    (0, 0) z.idx

let pp fmt z =
  Format.fprintf fmt "@[<v>MFSA: %d states, %d transitions, %d FSAs@,"
    z.n_states (n_transitions z) z.n_fsas;
  Array.iteri
    (fun j q ->
      Format.fprintf fmt "FSA %d %S: init %d%s%s@," j z.patterns.(j) q
        (if z.anchored_start.(j) then " ^" else "")
        (if z.anchored_end.(j) then " $" else ""))
    z.init_of;
  for t = 0 to n_transitions z - 1 do
    Format.fprintf fmt "  %d --%a--> %d  bel=%a@," z.row.(t) Charclass.pp
      z.idx.(t) z.col.(t) Bitset.pp z.bel.(t)
  done;
  Format.fprintf fmt "@]"

let pp_coo fmt z =
  let nt = n_transitions z in
  let cell_bel t =
    String.concat "," (List.map string_of_int (Bitset.to_list z.bel.(t)))
  in
  let columns =
    List.init nt (fun t ->
        [
          cell_bel t;
          string_of_int z.row.(t);
          string_of_int z.col.(t);
          Charclass.to_spec z.idx.(t);
        ])
  in
  let width t =
    List.fold_left (fun acc cell -> max acc (String.length cell)) 0
      (List.nth columns t)
  in
  let widths = List.init nt width in
  let line label pick =
    Format.fprintf fmt "%-3s |" label;
    List.iteri
      (fun t w ->
        let cell = pick (List.nth columns t) in
        Format.fprintf fmt " %-*s |" w cell)
      widths;
    Format.pp_print_newline fmt ()
  in
  line "bel" (fun c -> List.nth c 0);
  line "row" (fun c -> List.nth c 1);
  line "col" (fun c -> List.nth c 2);
  line "idx" (fun c -> List.nth c 3)

let to_dot z =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph mfsa {\n  rankdir=LR;\n";
  for q = 0 to z.n_states - 1 do
    let final = not (Bitset.is_empty z.final_sets.(q)) in
    let init = not (Bitset.is_empty z.init_sets.(q)) in
    Buffer.add_string buf
      (Printf.sprintf "  %d [shape=%s%s];\n" q
         (if final then "doublecircle" else "circle")
         (if init then ",style=bold" else ""))
  done;
  for t = 0 to n_transitions z - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %d -> %d [label=\"%s %s\"];\n" z.row.(t) z.col.(t)
         (Charclass.to_spec z.idx.(t))
         (Format.asprintf "%a" Bitset.pp z.bel.(t)))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Builder = Mfsa_model.Builder
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Pipeline = Mfsa_core.Pipeline

let log_src = Logs.Src.create "mfsa.live" ~doc:"Live ruleset updates"

module Log = (val Logs.src_log log_src : Logs.LOG)

type match_event = { rule : int; end_pos : int }

type stats = {
  generation : int;
  live_rules : int;
  states : int;
  transitions : int;
  dead_transitions : int;
  compactions : int;
}

(* A compiled generation. [rule_of_fsa] maps the snapshot's merged-FSA
   identifiers back to stable rule ids; the engine is compiled lazily
   so a burst of updates pays for table construction once, at the
   first match after it. The engine is held packed
   (Engine_sig.t), so any registered engine works here without a
   Live edit. *)
type payload = {
  z : Mfsa.t;
  engine : Engine_sig.t Lazy.t;
  rule_of_fsa : int array;
}

type snapshot = { sgen : int; payload : payload option }

type t = {
  gc_threshold : float;
  engine_name : string;
  builder : Builder.t;
  slot_of : (int, int) Hashtbl.t;  (* stable rule id -> builder slot *)
  rule_of : (int, int) Hashtbl.t;  (* builder slot -> stable rule id *)
  patterns_tbl : (int, string) Hashtbl.t;
  mutable next_id : int;
  mutable gen : int;
  mutable compactions : int;
  mutable updates_ok : int;
  mutable updates_rejected : int;
  mutable snap : snapshot;
}

(* Rebuild the current snapshot from the builder. This is the atomic
   generation swap: [t.snap] flips from one immutable value to the
   next, so readers either see the old generation or the new one,
   never a mixture. *)
let refresh t =
  let payload =
    match Builder.freeze t.builder with
    | None -> None
    | Some (z, slot_of_id) ->
        Some
          {
            z;
            engine = lazy (Registry.compile_automaton_exn t.engine_name z);
            rule_of_fsa =
              Array.map (fun slot -> Hashtbl.find t.rule_of slot) slot_of_id;
          }
  in
  t.snap <- { sgen = t.gen; payload }

let create ?strategy ?(gc_threshold = 0.25) ?(engine = "imfant") () =
  if gc_threshold < 0. || gc_threshold > 1. then
    invalid_arg "Live.create: gc_threshold must be within [0, 1]";
  if Option.is_none (Registry.find engine) then
    invalid_arg ("Live.create: " ^ Registry.unknown_message engine);
  {
    gc_threshold;
    engine_name = engine;
    builder = Builder.create ?strategy ();
    slot_of = Hashtbl.create 64;
    rule_of = Hashtbl.create 64;
    patterns_tbl = Hashtbl.create 64;
    next_id = 0;
    gen = 0;
    compactions = 0;
    updates_ok = 0;
    updates_rejected = 0;
    snap = { sgen = 0; payload = None };
  }

let register t pattern slot =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.slot_of id slot;
  Hashtbl.replace t.rule_of slot id;
  Hashtbl.replace t.patterns_tbl id pattern;
  id

let of_rules ?strategy ?gc_threshold ?engine patterns =
  let t = create ?strategy ?gc_threshold ?engine () in
  match Pipeline.build_fsas patterns with
  | Error e -> Error e
  | Ok fsas ->
      Array.iteri
        (fun i a ->
          let slot = Builder.add t.builder a in
          ignore (register t patterns.(i) slot))
        fsas;
      t.updates_ok <- Array.length patterns;
      refresh t;
      Ok t

(* Unified-source construction. Rules route through [of_rules] (the
   builder wants the individual FSAs, which only the pipeline has);
   an automaton or artifact source is *adopted*: the builder
   reconstitutes around the merged automaton (slot j = merged FSA j,
   stable rule id j), and — for artifacts — the first generation's
   engine comes up eagerly from the persisted tables, no
   re-derivation. Updates after adoption refresh through the normal
   freeze-and-recompile path. *)
let of_source ?strategy ?gc_threshold ?engine source =
  let module Source = Mfsa_engine.Source in
  match source with
  | Source.Rules patterns -> of_rules ?strategy ?gc_threshold ?engine patterns
  | Source.Rules_file path ->
      of_rules ?strategy ?gc_threshold ?engine (Source.read_rules_file path)
  | Source.Automata _ | Source.Artifact_file _ | Source.Artifact_bytes _ ->
      let adopt z eng =
        let t = create ?strategy ?gc_threshold ?engine () in
        let b = Builder.of_mfsa ?strategy z in
        let t = { t with builder = b } in
        Array.iteri (fun j p -> ignore (register t p j : int)) z.Mfsa.patterns;
        t.updates_ok <- z.Mfsa.n_fsas;
        t.snap <-
          {
            sgen = 0;
            payload =
              Some
                {
                  z;
                  engine = eng;
                  rule_of_fsa = Array.init z.Mfsa.n_fsas Fun.id;
                };
          };
        t
      in
      let one what = function
        | [ x ] -> x
        | l ->
            invalid_arg
              (Printf.sprintf
                 "Live.of_source: source yields %d %s; the live layer wants \
                  exactly one (merge with m=0)"
                 (List.length l) what)
      in
      (match Source.resolve source with
      | Source.Compiled_automata zs ->
          let z = one "automata" zs in
          let name = Option.value engine ~default:"imfant" in
          Ok (adopt z (lazy (Registry.compile_automaton_exn name z)))
      | Source.Compiled_tables tbs ->
          let tb = one "table bundles" tbs in
          let name = Option.value engine ~default:"imfant" in
          let eng = Registry.compile_tables_exn name tb in
          Ok (adopt tb.Mfsa_engine.Tables.z (Lazy.from_val eng)))

let add_rule t pattern =
  match Pipeline.build_fsa pattern with
  | Error e ->
      t.updates_rejected <- t.updates_rejected + 1;
      Error e
  | Ok a ->
      let slot = Builder.add t.builder a in
      let id = register t pattern slot in
      t.gen <- t.gen + 1;
      t.updates_ok <- t.updates_ok + 1;
      refresh t;
      Log.debug (fun m ->
          m "gen %d: added rule %d %S (slot %d)" t.gen id pattern slot);
      Ok id

let add_rule_exn t pattern =
  match add_rule t pattern with
  | Ok id -> id
  | Error e -> raise (Pipeline.Compile_error e)

(* Compaction renumbers builder slots; rethread the stable-id maps
   through the relocation map. *)
let compact_now t =
  let slot_map = Builder.compact t.builder in
  Hashtbl.reset t.rule_of;
  let moves =
    Hashtbl.fold (fun id slot acc -> (id, slot_map.(slot)) :: acc) t.slot_of []
  in
  List.iter
    (fun (id, slot') ->
      assert (slot' >= 0);
      Hashtbl.replace t.slot_of id slot';
      Hashtbl.replace t.rule_of slot' id)
    moves;
  t.compactions <- t.compactions + 1

let remove_rule t id =
  match Hashtbl.find_opt t.slot_of id with
  | None -> false
  | Some slot ->
      Builder.retire t.builder slot;
      Hashtbl.remove t.slot_of id;
      Hashtbl.remove t.rule_of slot;
      Hashtbl.remove t.patterns_tbl id;
      if Builder.garbage_ratio t.builder > t.gc_threshold then compact_now t;
      t.gen <- t.gen + 1;
      t.updates_ok <- t.updates_ok + 1;
      refresh t;
      Log.debug (fun m ->
          m "gen %d: removed rule %d (garbage %.2f)" t.gen id
            (Builder.garbage_ratio t.builder));
      true

let compact t =
  compact_now t;
  t.gen <- t.gen + 1;
  refresh t

let generation t = t.gen

let engine t = t.engine_name

let n_rules t = Hashtbl.length t.slot_of

let rules t =
  Hashtbl.fold (fun id p acc -> (id, p) :: acc) t.patterns_tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pattern t id = Hashtbl.find_opt t.patterns_tbl id

let stats t =
  {
    generation = t.gen;
    live_rules = n_rules t;
    states = Builder.n_states t.builder;
    transitions = Builder.n_transitions t.builder;
    dead_transitions = Builder.dead_transitions t.builder;
    compactions = t.compactions;
  }

(* Every sample is tagged with the generation it describes, so a
   scraper watching a rolling deployment can line rule/state counts
   up with the update that produced them. Engine metrics appear only
   once the lazy engine of the current snapshot has actually been
   forced — metrics export must not be the thing that triggers table
   construction. *)
let metrics t =
  let module S = Mfsa_obs.Snapshot in
  let own =
    [
      S.gauge_i ~help:"Current ruleset generation" "mfsa_live_generation" t.gen;
      S.gauge_i ~help:"Live rules in the current generation"
        "mfsa_live_rules" (n_rules t);
      S.gauge_i ~help:"Builder states, including garbage" "mfsa_live_states"
        (Builder.n_states t.builder);
      S.gauge_i ~help:"Builder transitions, including dead ones"
        "mfsa_live_transitions"
        (Builder.n_transitions t.builder);
      S.gauge_i ~help:"Retired transitions awaiting compaction"
        "mfsa_live_dead_transitions"
        (Builder.dead_transitions t.builder);
      S.counter_i ~help:"Compaction passes run" "mfsa_live_compactions_total"
        t.compactions;
      S.counter_i ~help:"Ruleset updates by outcome"
        ~labels:[ ("result", "ok") ]
        "mfsa_live_updates_total" t.updates_ok;
      S.counter_i ~help:"Ruleset updates by outcome"
        ~labels:[ ("result", "rejected") ]
        "mfsa_live_updates_total" t.updates_rejected;
    ]
  in
  let engine =
    match t.snap.payload with
    | Some p when Lazy.is_val p.engine -> Engine_sig.stats (Lazy.force p.engine)
    | _ -> []
  in
  S.with_labels
    [ ("generation", string_of_int t.snap.sgen) ]
    (S.merge [ own; engine ])

(* ------------------------------------------------------- Matching *)

let sort_events =
  List.stable_sort (fun a b ->
      if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
      else Int.compare a.rule b.rule)

let remap payload events =
  List.map
    (fun { Engine_sig.fsa; end_pos } ->
      { rule = payload.rule_of_fsa.(fsa); end_pos })
    events
  |> sort_events

let snapshot t = t.snap

let snapshot_generation s = s.sgen

let snapshot_mfsa s = Option.map (fun p -> p.z) s.payload

let snapshot_rule_ids s =
  match s.payload with None -> [||] | Some p -> Array.copy p.rule_of_fsa

let snapshot_run s input =
  match s.payload with
  | None -> []
  | Some p -> remap p (Engine_sig.run (Lazy.force p.engine) input)

let run t input = snapshot_run t.snap input

let count t input = List.length (run t input)

(* ------------------------------------------------------ Streaming *)

type session = {
  owner : t;
  mutable snap : snapshot;
  mutable inner : Engine_sig.session option;
  mutable empty_pos : int;  (* stream position when the generation is empty *)
}

let make_inner snap =
  Option.map (fun p -> Engine_sig.session (Lazy.force p.engine)) snap.payload

let session (t : t) =
  let snap = t.snap in
  { owner = t; snap; inner = make_inner snap; empty_pos = 0 }

let session_generation s = s.snap.sgen

let position s =
  match s.inner with
  | Some i -> Engine_sig.position i
  | None -> s.empty_pos

let feed s chunk =
  match (s.inner, s.snap.payload) with
  | Some i, Some p -> remap p (Engine_sig.feed i chunk)
  | _ ->
      s.empty_pos <- s.empty_pos + String.length chunk;
      []

let finish s =
  match (s.inner, s.snap.payload) with
  | Some i, Some p -> remap p (Engine_sig.finish i)
  | _ -> []

let reset s =
  let snap = s.owner.snap in
  s.snap <- snap;
  s.inner <- make_inner snap;
  s.empty_pos <- 0

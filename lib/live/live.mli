(** Live ruleset management: incremental updates over a running
    matcher.

    The paper's framework compiles a ruleset once and runs it forever,
    but the deployments it targets (DPI, IDS, WAF) update their rule
    feeds continuously. This module layers a dynamic ruleset over the
    existing pipeline:

    - {!add_rule} compiles one rule and merges its FSA into the
      existing automaton with the cascaded body of Algorithm 1
      ({!Mfsa_model.Builder.add}) — no re-merge of the rules already
      in;
    - {!remove_rule} retires the rule from every belonging vector in
      O(bits); the structural garbage it leaves behind is compacted
      away only when its fraction crosses [gc_threshold], so removal
      cost is O(1) full-compaction passes amortised;
    - every successful update produces a new {e generation}: an
      immutable {!snapshot} (automaton + lazily compiled iMFAnt
      tables) swapped in atomically behind the handle. Callers never
      observe a half-updated automaton; long-lived {!session}s keep
      streaming on the generation they opened and pick up the current
      one on {!reset}.

    Matches are reported against {e stable rule ids} (assigned by
    {!add_rule}, never reused), regardless of how the rules are packed
    into the automaton internally.

    The correctness anchor, checked by the property suite: after any
    interleaving of adds and removes, {!run} equals a fresh
    {!Mfsa_core.Ruleset} compile of the surviving rules.

    {[
      let lv = Live.create () in
      let admin = Live.add_rule_exn lv "GET /admin" in
      let _dots = Live.add_rule_exn lv "\\.\\./\\.\\." in
      ignore (Live.remove_rule lv admin);
      Live.run lv payload
      |> List.iter (fun { Live.rule; end_pos } -> ...)
    ]} *)

type t

type match_event = { rule : int;  (** Stable rule id. *) end_pos : int }

type stats = {
  generation : int;
  live_rules : int;
  states : int;  (** Builder states, including garbage. *)
  transitions : int;  (** Builder transitions, including dead ones. *)
  dead_transitions : int;
  compactions : int;  (** Compaction passes run so far. *)
}

val create :
  ?strategy:Mfsa_model.Merge.strategy ->
  ?gc_threshold:float ->
  ?engine:string ->
  unit ->
  t
(** Empty live ruleset at generation 0. [strategy] (default greedy)
    seeds every merge; [gc_threshold] (default 0.25) is the fraction
    of dead transitions that triggers a compaction pass after a
    removal — 0 compacts on every removal, 1 (almost) never.
    [engine] (default ["imfant"]) names the execution engine — any
    name registered in {!Mfsa_engine.Registry} — compiled by every
    snapshot; matching semantics are identical across engines, so the
    choice is purely a performance trade-off. (The closed
    [`Imfant]/[`Hybrid] variant of earlier releases is replaced by
    these registry names; see the CHANGELOG.)
    @raise Invalid_argument if [gc_threshold] is outside [\[0, 1\]] or
    [engine] is not a registered engine name. *)

val of_rules :
  ?strategy:Mfsa_model.Merge.strategy ->
  ?gc_threshold:float ->
  ?engine:string ->
  string array ->
  (t, Mfsa_core.Pipeline.error) result
(** Bulk initial load: rule [i] of the array gets id [i]. Equivalent
    to {!create} followed by {!add_rule} for each rule, in one
    generation. *)

val of_source :
  ?strategy:Mfsa_model.Merge.strategy ->
  ?gc_threshold:float ->
  ?engine:string ->
  Mfsa_engine.Source.t ->
  (t, Mfsa_core.Pipeline.error) result
(** {!of_rules} from a unified {!Mfsa_engine.Source}. Rules sources
    are {!of_rules} exactly. An automaton or binary-artifact source is
    {e adopted}: merged FSA [j] becomes rule id [j] (its pattern is
    the automaton's stored provenance), the builder reconstitutes
    around the merged structure, and — for artifacts — the first
    generation's engine comes up directly from the persisted tables,
    so a hot-standby process resumes serving in O(artifact size).
    Later updates refresh through the normal compile path. The source
    must yield exactly one automaton (merge with [m = 0]).

    @raise Invalid_argument when the source yields zero or several
    automata, or when [engine] cannot load tables and the source is an
    artifact. Artifact/IO failures propagate as their typed
    exceptions. *)

val add_rule : t -> string -> (int, Mfsa_core.Pipeline.error) result
(** Compile the rule (front-end + single-FSA middle-end) and merge it
    into the automaton incrementally. Returns the rule's stable id and
    advances the generation. A malformed rule leaves the ruleset
    untouched. *)

val add_rule_exn : t -> string -> int
(** @raise Mfsa_core.Pipeline.Compile_error on a malformed rule; the
    ruleset is untouched and the previous generation keeps serving. *)

val remove_rule : t -> int -> bool
(** Retire the rule: matches for it stop with the new generation.
    [false] (and no generation change) if the id is unknown or already
    removed. *)

val generation : t -> int
(** Generations advance by one on every successful update. *)

val engine : t -> string
(** The registered engine name every snapshot compiles. *)

val n_rules : t -> int
(** Live rules. *)

val rules : t -> (int * string) list
(** Live [(id, pattern)] pairs in increasing id order. *)

val pattern : t -> int -> string option

val compact : t -> unit
(** Force a compaction pass regardless of the garbage threshold. *)

val stats : t -> stats

val metrics : t -> Mfsa_obs.Snapshot.t
(** {!stats} plus the update counters as a metric snapshot:
    [mfsa_live_generation], [mfsa_live_rules], [mfsa_live_states],
    [mfsa_live_transitions], [mfsa_live_dead_transitions] gauges,
    the [mfsa_live_compactions_total] counter and
    [mfsa_live_updates_total{result="ok"|"rejected"}] — every sample
    tagged [generation=<current generation>]. Includes the serving
    engine's own metrics if (and only if) the current generation's
    lazy engine has already been forced by a match — exporting
    metrics never triggers engine compilation. *)

(** {2 Matching}

    {!run}/{!count} execute on the current generation. For explicit
    generation pinning — e.g. to keep serving queries on one automaton
    while updates continue — take a {!snapshot}. *)

type snapshot
(** An immutable compiled generation: the automaton and its engine
    tables. Snapshots stay valid (and keep matching their own rule
    set) however the live ruleset evolves afterwards. *)

val snapshot : t -> snapshot

val snapshot_generation : snapshot -> int

val snapshot_mfsa : snapshot -> Mfsa_model.Mfsa.t option
(** The underlying automaton; [None] when the generation has no live
    rules. *)

val snapshot_rule_ids : snapshot -> int array
(** The generation's merged-FSA index → stable rule id map: element
    [fsa] of the array is the stable id that an
    {!Mfsa_engine.Engine_sig.match_event} with that [fsa] field
    reports as — what {!snapshot_run} applies internally, exposed so
    an external executor of {!snapshot_mfsa} (a
    {!Mfsa_serve.Serve} pool compiled from it, say) can translate its
    events to the same stable ids. Empty when the generation has no
    live rules. *)

val snapshot_run : snapshot -> string -> match_event list

val run : t -> string -> match_event list
(** All matches on the current generation, ordered by end position
    (rule id within ties). *)

val count : t -> string -> int

(** {2 Streaming}

    Sessions wrap the selected engine's streaming session
    ({!Mfsa_engine.Engine_sig.S.session}) on the generation current at
    creation ({!session}) or at the last {!reset}. A
    session's generation never changes mid-stream — updates to the
    owner do not disturb it — which is exactly the zero-downtime swap
    discipline: drain the old generation, reset, continue on the new
    one. *)

type session

val session : t -> session
(** Fresh session pinned to the owner's current generation. *)

val feed : session -> string -> match_event list
(** Consume one chunk; completed matches with global stream offsets
    (end-anchored rules report at {!finish}). *)

val finish : session -> match_event list
(** End of stream: pending matches of end-anchored rules. The session
    stays valid for {!reset}. *)

val reset : session -> unit
(** Back to stream position 0 — re-pinned to the owner's {e current}
    generation. *)

val session_generation : session -> int

val position : session -> int
(** Bytes consumed since the last {!reset}. *)

module Charclass = Mfsa_charset.Charclass

let check_eps_free who a =
  if not (Nfa.is_eps_free a) then
    invalid_arg (who ^ ": automaton must be ε-free")

let max_multiplicity a =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun t ->
      let key = (t.Nfa.src, t.Nfa.dst) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    a.Nfa.transitions;
  Hashtbl.fold (fun _ v acc -> max v acc) counts 0

let fuse a =
  check_eps_free "Multiplicity.fuse" a;
  let bundles = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun t ->
      match t.Nfa.label with
      | Nfa.Eps -> assert false
      | Nfa.Cls c ->
          let key = (t.Nfa.src, t.Nfa.dst) in
          (match Hashtbl.find_opt bundles key with
          | None ->
              Hashtbl.add bundles key c;
              order := key :: !order
          | Some acc -> Hashtbl.replace bundles key (Charclass.union acc c)))
    a.Nfa.transitions;
  let transitions =
    List.rev_map
      (fun (src, dst) ->
        { Nfa.src; label = Nfa.Cls (Hashtbl.find bundles (src, dst)); dst })
      !order
  in
  Nfa.create ~n_states:a.Nfa.n_states ~transitions ~start:a.Nfa.start
    ~finals:(Nfa.final_states a) ~anchored_start:a.Nfa.anchored_start
    ~anchored_end:a.Nfa.anchored_end ~pattern:a.Nfa.pattern ()

module Ast = Mfsa_frontend.Ast

let default_budget = 50_000

let loop_count ast =
  let rec go acc = function
    | Ast.Empty | Ast.Char _ | Ast.Class _ -> acc
    | Ast.Concat (a, b) | Ast.Alt (a, b) -> go (go acc a) b
    | Ast.Star a | Ast.Opt a -> go (acc + 1) a
    | Ast.Plus a | Ast.Repeat (a, _, _) -> go (acc + 1) a
  in
  go 0 ast

let expand ?(budget = default_budget) ?(expand_plus = true) ast =
  (* [remaining] is a mutable budget of output nodes. Copies of a
     sub-AST are produced by [repeat_copies]; once the budget is
     exhausted we keep the residual quantifier un-expanded (Thompson
     unrolls it structurally later) rather than failing, except for
     mandatory copies which must exist for correctness. *)
  let remaining = ref budget in
  let spend n = remaining := !remaining - n in
  let rec go t =
    match t with
    | Ast.Empty | Ast.Char _ | Ast.Class _ ->
        spend 1;
        t
    | Ast.Concat (a, b) ->
        spend 1;
        let a = go a in
        let b = go b in
        Ast.Concat (a, b)
    | Ast.Alt (a, b) ->
        spend 1;
        let a = go a in
        let b = go b in
        Ast.Alt (a, b)
    | Ast.Star a ->
        spend 1;
        Ast.Star (go a)
    | Ast.Opt a ->
        spend 1;
        Ast.Opt (go a)
    | Ast.Plus a ->
        let a = go a in
        if expand_plus && !remaining > Ast.size a + 1 then begin
          spend (Ast.size a + 1);
          Ast.Concat (a, Ast.Star a)
        end
        else begin
          spend 1;
          Ast.Plus a
        end
    | Ast.Repeat (a, m, bound) -> (
        let a = go a in
        let step = Ast.size a + 1 in
        if step * max m 1 > !remaining then
          invalid_arg
            (Printf.sprintf
               "Loops.expand: expanding {%d,...} over a sub-pattern of size \
                %d exceeds the budget"
               m (Ast.size a));
        let mandatory = List.init m (fun _ -> a) in
        spend (step * m);
        match bound with
        | None ->
            (* e{m,} = e^m e* *)
            spend step;
            Ast.seq (mandatory @ [ Ast.Star a ])
        | Some n ->
            let optional_wanted = n - m in
            let optional_affordable =
              min optional_wanted (max 0 (!remaining / step))
            in
            spend (step * optional_affordable);
            let optionals =
              List.init optional_affordable (fun _ -> Ast.Opt a)
            in
            let residue =
              let left = optional_wanted - optional_affordable in
              if left = 0 then []
              else [ Ast.Repeat (a, 0, Some left) ]
            in
            Ast.seq (mandatory @ optionals @ residue))
  in
  go ast

let expand_rule ?budget ?expand_plus rule =
  { rule with Ast.ast = expand ?budget ?expand_plus rule.Ast.ast }

(** Single-character alternation simplification (paper §IV-C,
    optimisation 3 and Fig. 5b).

    An alternation whose branches each consume exactly one byte —
    [(k|h)], [(a|\[0-9\])] — denotes a plain character class, but the
    Thompson gadget for it builds two parallel single-byte paths.
    Left that way, the merging algorithm could merge one strand of
    the bundle with another rule and make the MFSA recognise strings
    of neither rule (the Fig. 5b failure). This pass rewrites such
    alternations into a single [Class] node, bottom-up, before
    construction, so the automaton carries one class-labelled
    transition: either mergeable as a whole or not at all.

    Also folds the other class-like shapes that feed the same
    problem: nested single-byte alternations ([(a|(b|c))]) and
    alternations of classes. Languages are unchanged. *)

val char_classes : Mfsa_frontend.Ast.t -> Mfsa_frontend.Ast.t
(** Bottom-up rewrite; returns a language-equivalent AST in which no
    [Alt] node has both branches single-byte. *)

val char_classes_rule : Mfsa_frontend.Ast.rule -> Mfsa_frontend.Ast.rule

val single_byte : Mfsa_frontend.Ast.t -> Mfsa_charset.Charclass.t option
(** [Some cls] iff the AST consumes exactly one byte, drawn from
    [cls]: a [Char], a [Class], or an [Alt] of such. *)

type t = {
  n_states : int;
  n_classes : int;
  class_of : int array;
  next2 : int array;
  mid_final : bool array;
  next1 : int array;
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;
}

let byte_classes (d : Dfa.t) =
  (* Two bytes are equivalent iff their δ-columns coincide. Hash the
     columns to assign class ids. *)
  let table = Hashtbl.create 64 in
  let class_of = Array.make 256 0 in
  let n_classes = ref 0 in
  for c = 0 to 255 do
    let column = Array.init d.Dfa.n_states (fun q -> d.Dfa.next.((q * 256) + c)) in
    match Hashtbl.find_opt table column with
    | Some id -> class_of.(c) <- id
    | None ->
        let id = !n_classes in
        incr n_classes;
        Hashtbl.add table column id;
        class_of.(c) <- id
  done;
  (class_of, !n_classes)

let build (d : Dfa.t) =
  let class_of, k = byte_classes d in
  (* One representative byte per class. *)
  let repr = Array.make k 0 in
  for c = 255 downto 0 do
    repr.(class_of.(c)) <- c
  done;
  let n = d.Dfa.n_states in
  let next1 = Array.make (n * k) 0 in
  let next2 = Array.make (n * k * k) 0 in
  let mid_final = Array.make (n * k * k) false in
  for q = 0 to n - 1 do
    for c1 = 0 to k - 1 do
      let mid = d.Dfa.next.((q * 256) + repr.(c1)) in
      next1.((q * k) + c1) <- mid;
      for c2 = 0 to k - 1 do
        let idx = (((q * k) + c1) * k) + c2 in
        next2.(idx) <- d.Dfa.next.((mid * 256) + repr.(c2));
        mid_final.(idx) <- d.Dfa.finals.(mid)
      done
    done
  done;
  {
    n_states = n;
    n_classes = k;
    class_of;
    next2;
    mid_final;
    next1;
    start = d.Dfa.start;
    finals = Array.copy d.Dfa.finals;
    anchored_start = d.Dfa.anchored_start;
    anchored_end = d.Dfa.anchored_end;
    pattern = d.Dfa.pattern;
  }

let n_table_entries t = Array.length t.next2

let step1 t q c = t.next1.((q * t.n_classes) + t.class_of.(Char.code c))

let pair_index t q c1 c2 =
  (((q * t.n_classes) + t.class_of.(Char.code c1)) * t.n_classes)
  + t.class_of.(Char.code c2)

let accepts t input =
  let len = String.length input in
  let q = ref t.start in
  let i = ref 0 in
  while !i + 1 < len do
    q := t.next2.(pair_index t !q input.[!i] input.[!i + 1]);
    i := !i + 2
  done;
  if !i < len then q := step1 t !q input.[!i];
  t.finals.(!q)

let match_ends t input =
  (* Set-based unanchored matcher, two bytes per step. Matches ending
     at the pair's first byte come from [mid_final]; fresh threads
     starting at the pair's second byte are injected through the
     1-stride table. *)
  let len = String.length input in
  let n = t.n_states in
  let cur = Array.make n false in
  let nxt = Array.make n false in
  let acc = ref [] in
  let emit pos = acc := pos :: !acc in
  let i = ref 0 in
  while !i < len do
    if (not t.anchored_start) || !i = 0 then cur.(t.start) <- true;
    if !i + 1 < len then begin
      let c1 = input.[!i] and c2 = input.[!i + 1] in
      Array.fill nxt 0 n false;
      let matched_mid = ref false and matched_end = ref false in
      for q = 0 to n - 1 do
        if cur.(q) then begin
          let idx = pair_index t q c1 c2 in
          if t.mid_final.(idx) then matched_mid := true;
          let d = t.next2.(idx) in
          if not nxt.(d) then begin
            nxt.(d) <- true;
            if t.finals.(d) then matched_end := true
          end
        end
      done;
      (* Thread starting at the second byte of the pair. *)
      if not t.anchored_start then begin
        let d = step1 t t.start c2 in
        if not nxt.(d) then begin
          nxt.(d) <- true;
          if t.finals.(d) then matched_end := true
        end
        else if t.finals.(d) then matched_end := true
      end;
      if !matched_mid && ((not t.anchored_end) || !i + 1 = len) then emit (!i + 1);
      if !matched_end && ((not t.anchored_end) || !i + 2 = len) then emit (!i + 2);
      Array.blit nxt 0 cur 0 n;
      i := !i + 2
    end
    else begin
      (* Trailing single byte. *)
      let c = input.[!i] in
      let matched = ref false in
      for q = 0 to n - 1 do
        if cur.(q) then begin
          let d = step1 t q c in
          if t.finals.(d) then matched := true
        end
      done;
      if !matched then emit (!i + 1);
      Array.fill cur 0 n false;
      i := !i + 1
    end
  done;
  List.sort_uniq Int.compare !acc

type t = {
  n_states : int;
  default_of : int array;
  labelled : (int * int array * int array) array;
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;
}

(* BFS depth of every state from the start; unreachable states get
   max_int and never receive a default arc. *)
let depths (d : Dfa.t) =
  let depth = Array.make d.Dfa.n_states max_int in
  let queue = Queue.create () in
  depth.(d.Dfa.start) <- 0;
  Queue.add d.Dfa.start queue;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    for c = 0 to 255 do
      let t = d.Dfa.next.((q * 256) + c) in
      if depth.(t) = max_int then begin
        depth.(t) <- depth.(q) + 1;
        Queue.add t queue
      end
    done
  done;
  depth

let row_diff (d : Dfa.t) q r =
  let diff = ref 0 in
  for c = 0 to 255 do
    if d.Dfa.next.((q * 256) + c) <> d.Dfa.next.((r * 256) + c) then incr diff
  done;
  !diff

let compress (d : Dfa.t) =
  let n = d.Dfa.n_states in
  let depth = depths d in
  let default_of = Array.make n (-1) in
  let labelled = Array.make n (0, [||], [||]) in
  for q = 0 to n - 1 do
    (* Candidate defaults: states at strictly smaller depth. Pick the
       one sharing the most outgoing arcs (greedy Becchi–Crowley);
       only adopt it when it actually saves space (shared > 1,
       because the default arc itself costs one entry). *)
    let best = ref (-1) and best_diff = ref 257 in
    if depth.(q) < max_int && depth.(q) > 0 then
      for r = 0 to n - 1 do
        if depth.(r) < depth.(q) then begin
          let diff = row_diff d q r in
          if diff < !best_diff then begin
            best_diff := diff;
            best := r
          end
        end
      done;
    let default = if !best >= 0 && 256 - !best_diff > 1 then !best else -1 in
    default_of.(q) <- default;
    let bytes = ref [] and targets = ref [] in
    for c = 255 downto 0 do
      let t = d.Dfa.next.((q * 256) + c) in
      let keep =
        match default with
        | -1 -> true
        | r -> t <> d.Dfa.next.((r * 256) + c)
      in
      if keep then begin
        bytes := c :: !bytes;
        targets := t :: !targets
      end
    done;
    let bytes = Array.of_list !bytes and targets = Array.of_list !targets in
    labelled.(q) <- (Array.length bytes, bytes, targets)
  done;
  {
    n_states = n;
    default_of;
    labelled;
    start = d.Dfa.start;
    finals = Array.copy d.Dfa.finals;
    anchored_start = d.Dfa.anchored_start;
    anchored_end = d.Dfa.anchored_end;
    pattern = d.Dfa.pattern;
  }

let n_stored_transitions t =
  let total = ref 0 in
  for q = 0 to t.n_states - 1 do
    let count, _, _ = t.labelled.(q) in
    total := !total + count + if t.default_of.(q) >= 0 then 1 else 0
  done;
  !total

(* Binary search in the sorted explicit-arc byte array. *)
let find_arc (count, bytes, targets) c =
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      if bytes.(mid) = c then Some targets.(mid)
      else if bytes.(mid) < c then go (mid + 1) hi
      else go lo (mid - 1)
  in
  go 0 (count - 1)

let rec step t q c =
  match find_arc t.labelled.(q) (Char.code c) with
  | Some target -> target
  | None -> (
      match t.default_of.(q) with
      | -1 ->
          (* A state with no default stores all its arcs, so this is
             unreachable for a total source DFA. *)
          assert false
      | r -> step t r c)

let accepts t input =
  let q = ref t.start in
  String.iter (fun c -> q := step t !q c) input;
  t.finals.(!q)

let match_ends t input =
  let len = String.length input in
  let acc = ref [] in
  let cur = Array.make t.n_states false in
  let nxt = Array.make t.n_states false in
  for i = 0 to len - 1 do
    if (not t.anchored_start) || i = 0 then cur.(t.start) <- true;
    let c = input.[i] in
    Array.fill nxt 0 t.n_states false;
    let matched = ref false in
    for q = 0 to t.n_states - 1 do
      if cur.(q) then begin
        let d = step t q c in
        if not nxt.(d) then begin
          nxt.(d) <- true;
          if t.finals.(d) then matched := true
        end
      end
    done;
    Array.blit nxt 0 cur 0 t.n_states;
    if !matched && ((not t.anchored_end) || i = len - 1) then acc := (i + 1) :: !acc
  done;
  List.rev !acc

let max_default_chain t =
  let memo = Array.make t.n_states (-1) in
  let rec chain q =
    if memo.(q) >= 0 then memo.(q)
    else begin
      let v = match t.default_of.(q) with -1 -> 0 | r -> 1 + chain r in
      memo.(q) <- v;
      v
    end
  in
  let best = ref 0 in
  for q = 0 to t.n_states - 1 do
    best := max !best (chain q)
  done;
  !best

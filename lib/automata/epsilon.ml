module Charclass = Mfsa_charset.Charclass
module Vec = Mfsa_util.Vec

let closure_array a =
  (* For each state, the set of states reachable through ε-arcs only,
     computed by DFS; the closure always contains the state itself. *)
  let eps_out = Array.make a.Nfa.n_states [] in
  Array.iter
    (fun t ->
      if t.Nfa.label = Nfa.Eps then
        eps_out.(t.Nfa.src) <- t.Nfa.dst :: eps_out.(t.Nfa.src))
    a.Nfa.transitions;
  let closures = Array.make a.Nfa.n_states [] in
  let visited = Array.make a.Nfa.n_states false in
  for q = 0 to a.Nfa.n_states - 1 do
    Array.fill visited 0 a.Nfa.n_states false;
    let acc = ref [] in
    let rec dfs s =
      if not visited.(s) then begin
        visited.(s) <- true;
        acc := s :: !acc;
        List.iter dfs eps_out.(s)
      end
    in
    dfs q;
    closures.(q) <- List.sort Int.compare !acc
  done;
  closures

let closure a q =
  if q < 0 || q >= a.Nfa.n_states then
    invalid_arg "Epsilon.closure: state out of range";
  (closure_array a).(q)

let remove a =
  let n = a.Nfa.n_states in
  let closures = closure_array a in
  (* Non-ε transitions indexed by source. *)
  let sym_out = Array.make n [] in
  Array.iter
    (fun t ->
      match t.Nfa.label with
      | Nfa.Eps -> ()
      | Nfa.Cls _ -> sym_out.(t.Nfa.src) <- t :: sym_out.(t.Nfa.src))
    a.Nfa.transitions;
  (* New transition set: q --C--> s whenever r ∈ E(q) and r --C--> s. *)
  let seen = Hashtbl.create 256 in
  let new_out = Array.make n [] in
  for q = 0 to n - 1 do
    List.iter
      (fun r ->
        List.iter
          (fun t ->
            match t.Nfa.label with
            | Nfa.Eps -> assert false
            | Nfa.Cls c ->
                let key = (q, c, t.Nfa.dst) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  new_out.(q) <- (c, t.Nfa.dst) :: new_out.(q)
                end)
          sym_out.(r))
      closures.(q)
  done;
  let new_final = Array.make n false in
  for q = 0 to n - 1 do
    new_final.(q) <- List.exists (fun r -> a.Nfa.finals.(r)) closures.(q)
  done;
  (* Forward reachability from the start over the new transitions. *)
  let reachable = Array.make n false in
  let queue = Queue.create () in
  reachable.(a.Nfa.start) <- true;
  Queue.add a.Nfa.start queue;
  let bfs_order = Vec.create () in
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    Vec.push bfs_order q;
    List.iter
      (fun (_, dst) ->
        if not reachable.(dst) then begin
          reachable.(dst) <- true;
          Queue.add dst queue
        end)
      new_out.(q)
  done;
  (* Backward reachability from final states ("live" states). *)
  let rev_in = Array.make n [] in
  for q = 0 to n - 1 do
    List.iter (fun (_, dst) -> rev_in.(dst) <- q :: rev_in.(dst)) new_out.(q)
  done;
  let live = Array.make n false in
  let rqueue = Queue.create () in
  for q = 0 to n - 1 do
    if new_final.(q) && reachable.(q) then begin
      live.(q) <- true;
      Queue.add q rqueue
    end
  done;
  while not (Queue.is_empty rqueue) do
    let q = Queue.pop rqueue in
    List.iter
      (fun p ->
        if reachable.(p) && not live.(p) then begin
          live.(p) <- true;
          Queue.add p rqueue
        end)
      rev_in.(q)
  done;
  (* Keep live states (plus the start, even when the language is
     empty); renumber in BFS order so start = 0. *)
  let keep q = live.(q) || q = a.Nfa.start in
  let renum = Array.make n (-1) in
  let count = ref 0 in
  Vec.iter
    (fun q ->
      if keep q && renum.(q) < 0 then begin
        renum.(q) <- !count;
        incr count
      end)
    bfs_order;
  let transitions = ref [] in
  for q = 0 to n - 1 do
    if keep q && reachable.(q) then
      List.iter
        (fun (c, dst) ->
          if keep dst && reachable.(dst) then
            transitions :=
              { Nfa.src = renum.(q); label = Nfa.Cls c; dst = renum.(dst) }
              :: !transitions)
        new_out.(q)
  done;
  let finals = ref [] in
  for q = 0 to n - 1 do
    if keep q && reachable.(q) && new_final.(q) then
      finals := renum.(q) :: !finals
  done;
  Nfa.create ~n_states:(max 1 !count) ~transitions:!transitions
    ~start:renum.(a.Nfa.start) ~finals:!finals
    ~anchored_start:a.Nfa.anchored_start ~anchored_end:a.Nfa.anchored_end
    ~pattern:a.Nfa.pattern ()

(** Loop expansion (paper §IV-C, optimisation 2 and Fig. 5a).

    Bounded quantifiers are unrolled so the resulting FSA is a plain
    chain/branch structure: expanded loops expose their per-iteration
    transitions to the merging algorithm, which can then share them
    across rules, whereas a compressed loop structure hides them. The
    paper records loops during FSA generation and expands them on the
    FSA; we perform the equivalent rewrite on the AST, before Thompson
    construction, which yields the same expanded automaton without
    graph surgery:

    - [e{m,n}] → [e e … e (e?){n-m}]  ([m] copies then [n-m] optionals)
    - [e{m,}]  → [e e … e e*]         ([m] copies then a star)
    - [e{0,0}] → ε
    - [e+]     → [e e*]               (lower-bound expansion, so that the
      first iteration is a chain transition mergeable with other rules)

    Expansion multiplies AST size; {!expand} therefore enforces a
    budget on the output size and falls back to leaving the remaining
    loops for Thompson to expand structurally (Thompson performs the
    identical unrolling; the budget only bounds how much *this* pass
    inflates the tree). *)

val default_budget : int
(** Maximum output AST size (nodes); 50_000. *)

val expand : ?budget:int -> ?expand_plus:bool -> Mfsa_frontend.Ast.t -> Mfsa_frontend.Ast.t
(** Rewrites every [Repeat] (and, when [expand_plus], every [Plus])
    reachable in the AST. [expand_plus] defaults to [true].
    @raise Invalid_argument if even a single mandatory copy cannot fit
    in the budget. *)

val expand_rule : ?budget:int -> ?expand_plus:bool -> Mfsa_frontend.Ast.rule -> Mfsa_frontend.Ast.rule

val loop_count : Mfsa_frontend.Ast.t -> int
(** Number of [Repeat]/[Plus]/[Star]/[Opt] nodes — the loop census the
    paper's construction phase records. *)

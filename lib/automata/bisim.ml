module Charclass = Mfsa_charset.Charclass

let check_eps_free a =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Bisim: automaton must be ε-free"

(* Partition refinement: the block array stabilises at the coarsest
   partition in which equivalent states are final-consistent and have
   equal signatures {(label, block of successor)}. *)
let blocks_of (a : Nfa.t) =
  let n = a.Nfa.n_states in
  let out = Nfa.out a in
  let block = Array.init n (fun q -> if a.Nfa.finals.(q) then 1 else 0) in
  (* The loop stops when a refinement round leaves the block count
     unchanged, so the initial count must be the number of blocks
     actually occupied. *)
  let n_blocks =
    ref
      (if Array.exists Fun.id a.Nfa.finals && Array.exists not a.Nfa.finals
       then 2
       else 1)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let table = Hashtbl.create 64 in
    let next_block = Array.make n 0 in
    let next_id = ref 0 in
    for q = 0 to n - 1 do
      let signature =
        Array.to_list out.(q)
        |> List.map (fun ti ->
               let tr = a.Nfa.transitions.(ti) in
               match tr.Nfa.label with
               | Nfa.Eps -> assert false
               | Nfa.Cls c -> (c, block.(tr.Nfa.dst)))
        |> List.sort_uniq compare
      in
      let key = (block.(q), signature) in
      let id =
        match Hashtbl.find_opt table key with
        | Some id -> id
        | None ->
            let id = !next_id in
            incr next_id;
            Hashtbl.add table key id;
            id
      in
      next_block.(q) <- id
    done;
    if !next_id <> !n_blocks then begin
      changed := true;
      n_blocks := !next_id
    end;
    Array.blit next_block 0 block 0 n
  done;
  (block, !n_blocks)

let n_blocks a =
  check_eps_free a;
  snd (blocks_of a)

let reduce a =
  check_eps_free a;
  let block, m = blocks_of a in
  let seen = Hashtbl.create 64 in
  let transitions = ref [] in
  Array.iter
    (fun tr ->
      match tr.Nfa.label with
      | Nfa.Eps -> assert false
      | Nfa.Cls c ->
          let key = (block.(tr.Nfa.src), c, block.(tr.Nfa.dst)) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            transitions :=
              { Nfa.src = block.(tr.Nfa.src); label = tr.Nfa.label;
                dst = block.(tr.Nfa.dst) }
              :: !transitions
          end)
    a.Nfa.transitions;
  let finals = ref [] in
  Array.iteri (fun q f -> if f then finals := block.(q) :: !finals) a.Nfa.finals;
  Nfa.create ~n_states:m ~transitions:!transitions ~start:block.(a.Nfa.start)
    ~finals:(List.sort_uniq Int.compare !finals)
    ~anchored_start:a.Nfa.anchored_start ~anchored_end:a.Nfa.anchored_end
    ~pattern:a.Nfa.pattern ()

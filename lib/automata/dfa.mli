(** Deterministic finite automata over the 256-byte alphabet.

    The DFA side of the paper's Background (§II): deterministic
    traversal has an O(1)-per-byte upper bound but risks exponential
    state explosion, which is why the MFSA work stays on NFAs. This
    module provides the deterministic substrate used by the baseline
    engines and by the compression comparisons of the related work
    (§VII): subset construction from an ε-free NFA, Hopcroft
    minimisation, and the dense transition-table representation the
    engines consume.

    The transition function is total: every state has a successor for
    every byte; a distinguished non-accepting {e sink} state absorbs
    dead inputs (a minimised DFA keeps the sink only when it is
    reachable). *)

type t = private {
  n_states : int;
  (* Row-major table: [next.(q * 256 + c)] is δ(q, c). *)
  next : int array;
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;
}

val create :
  n_states:int ->
  next:int array ->
  start:int ->
  finals:bool array ->
  ?anchored_start:bool ->
  ?anchored_end:bool ->
  pattern:string ->
  unit ->
  t
(** Validates table dimensions and ranges.
    @raise Invalid_argument on malformed input. *)

val step : t -> int -> char -> int
(** [step dfa q c] is δ(q, c). *)

val determinize : Nfa.t -> t
(** Subset construction. The input must be ε-free
    ({!Epsilon.remove} first); anchoring flags and pattern carry over.
    @raise Invalid_argument on ε-arcs. *)

val minimize : t -> t
(** Hopcroft's algorithm. The result is the unique (up to
    isomorphism) minimal DFA for the same language; unreachable states
    are removed first. *)

val accepts : t -> string -> bool
(** Whole-string acceptance. *)

val match_ends : t -> string -> int list
(** Unanchored match end positions under the engine conventions of
    {!Simulate.match_ends} (non-empty matches, one report per end
    position, anchor flags honoured). *)

val n_reachable : t -> int
(** Number of states reachable from the start. *)

val to_nfa : t -> Nfa.t
(** View as an NFA with class-labelled transitions (dead arcs to an
    unreachable sink are dropped). Useful to reuse NFA tooling. *)

module Ast = Mfsa_frontend.Ast
module Parser = Mfsa_frontend.Parser
module Vec = Mfsa_util.Vec

type builder = { mutable next_state : int; transitions : Nfa.transition Vec.t }

let fresh b =
  let q = b.next_state in
  b.next_state <- q + 1;
  q

let arc b src label dst = Vec.push b.transitions { Nfa.src; label; dst }

(* Every fragment has one entry and one exit state, in classic Thompson
   style; [build_frag] returns [(entry, exit)]. *)
let rec build_frag b ast =
  match ast with
  | Ast.Empty ->
      let s = fresh b and f = fresh b in
      arc b s Nfa.Eps f;
      (s, f)
  | Ast.Char c ->
      let s = fresh b and f = fresh b in
      arc b s (Nfa.label_sym c) f;
      (s, f)
  | Ast.Class cls ->
      let s = fresh b and f = fresh b in
      arc b s (Nfa.Cls cls) f;
      (s, f)
  | Ast.Concat (x, y) ->
      let sx, fx = build_frag b x in
      let sy, fy = build_frag b y in
      arc b fx Nfa.Eps sy;
      (sx, fy)
  | Ast.Alt (x, y) ->
      let s = fresh b and f = fresh b in
      let sx, fx = build_frag b x in
      let sy, fy = build_frag b y in
      arc b s Nfa.Eps sx;
      arc b s Nfa.Eps sy;
      arc b fx Nfa.Eps f;
      arc b fy Nfa.Eps f;
      (s, f)
  | Ast.Star x ->
      let s = fresh b and f = fresh b in
      let sx, fx = build_frag b x in
      arc b s Nfa.Eps sx;
      arc b s Nfa.Eps f;
      arc b fx Nfa.Eps sx;
      arc b fx Nfa.Eps f;
      (s, f)
  | Ast.Plus x ->
      let s = fresh b and f = fresh b in
      let sx, fx = build_frag b x in
      arc b s Nfa.Eps sx;
      arc b fx Nfa.Eps sx;
      arc b fx Nfa.Eps f;
      (s, f)
  | Ast.Opt x ->
      let s = fresh b and f = fresh b in
      let sx, fx = build_frag b x in
      arc b s Nfa.Eps sx;
      arc b s Nfa.Eps f;
      arc b fx Nfa.Eps f;
      (s, f)
  | Ast.Repeat (x, m, bound) ->
      (* Structural unrolling for loops that Loops.expand left behind
         (e.g. residues beyond its budget). *)
      let expanded =
        let mandatory = List.init m (fun _ -> x) in
        match bound with
        | None -> Ast.seq (mandatory @ [ Ast.Star x ])
        | Some n ->
            let optionals = List.init (n - m) (fun _ -> Ast.Opt x) in
            Ast.seq (mandatory @ optionals)
      in
      build_frag b expanded

let build rule =
  let b = { next_state = 0; transitions = Vec.create () } in
  let start, final = build_frag b rule.Ast.ast in
  Nfa.create ~n_states:b.next_state
    ~transitions:(Vec.to_list b.transitions)
    ~start ~finals:[ final ] ~anchored_start:rule.Ast.anchored_start
    ~anchored_end:rule.Ast.anchored_end ~pattern:rule.Ast.pattern ()

let build_pattern pattern = build (Parser.parse_exn pattern)

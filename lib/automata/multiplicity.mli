(** Simplification of arcs with multiplicity greater than one (paper
    §IV-C, optimisation 3 and Fig. 5b).

    The multiplicity of a state pair [(q, s)] is the number of parallel
    transitions between them (single-character alternations such as
    [k|h]). Merging a single strand of such a bundle into another rule
    would let the MFSA recognise strings of neither rule, so before
    merging every parallel bundle is fused into one transition labelled
    by the union character class: the class [\[kh\]] is then either
    equal to another rule's class (mergeable) or different (not
    mergeable), restoring the all-or-nothing comparison Algorithm 1
    relies on. *)

val fuse : Nfa.t -> Nfa.t
(** Requires an ε-free automaton ({!Epsilon.remove} output); fuses all
    parallel arcs. State numbering is unchanged.
    @raise Invalid_argument if the automaton still has ε-arcs. *)

val max_multiplicity : Nfa.t -> int
(** Largest parallel-bundle size in the automaton; [fuse] output always
    reports 1 (or 0 for an automaton with no transitions). *)

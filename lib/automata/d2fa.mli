(** Default-transition DFA compression (D²FA) — the classic DFA
    memory-reduction technique the paper positions itself against
    (§II, §VII; Kumar et al., SIGCOMM 2006; Becchi & Crowley).

    Many DFA states have near-identical outgoing rows. D²FA picks,
    per state, a {e default transition} to a similar state and stores
    only the bytes whose target differs from the default state's; the
    matcher follows default arcs, consuming no input, until an
    explicit arc for the current byte is found. The structure trades
    per-byte traversal bound for space — the opposite end of the
    design space from the MFSA, which compresses across rules rather
    than within one automaton. The benchmark harness uses it as the
    compression baseline in the ablation study.

    This implementation uses the Becchi–Crowley refinement: a state's
    default may only point to a state with strictly smaller BFS depth,
    which bounds default-chain length by the automaton depth and
    guarantees ⌈no cycles⌉ among default arcs. *)

type t = private {
  n_states : int;
  default_of : int array;  (** Default target per state; -1 = none. *)
  labelled : (int * int array * int array) array;
      (** Per state: (count, sorted byte values, targets) of the
          explicitly stored arcs. *)
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;
}

val compress : Dfa.t -> t
(** Build the D²FA from a (total) DFA. *)

val n_stored_transitions : t -> int
(** Explicit arcs plus one per default arc — the memory-footprint
    metric default-transition papers report. *)

val step : t -> int -> char -> int
(** Resolve a move, following default arcs as needed. *)

val accepts : t -> string -> bool
(** Whole-string acceptance; must agree exactly with the source DFA. *)

val match_ends : t -> string -> int list
(** Engine-convention unanchored matching (see
    {!Simulate.match_ends}). *)

val max_default_chain : t -> int
(** Longest chain of default arcs (the traversal-overhead bound). *)

(** Multi-stride DFA (k = 2) — the other classic single-automaton
    acceleration the paper's related work surveys (§VII: multi-stride
    DFAs consume k symbols per traversal at the price of squaring the
    alphabet).

    The construction first computes the DFA's {e byte equivalence
    classes} (bytes are equivalent when every state moves to the same
    target on both — the alphabet-reduction step that makes
    multi-striding affordable), then builds the stride-2 table over
    class pairs: one lookup consumes two input bytes. A parallel
    bit-table records whether the {e intermediate} state (after the
    first of the two bytes) is accepting, so no match is lost at odd
    offsets. Used as a throughput baseline in the ablation benches. *)

type t = private {
  n_states : int;
  n_classes : int;
  class_of : int array;  (** byte → equivalence class, length 256. *)
  (* [next2.((q * k + c1) * k + c2)] is δ(δ(q,c1),c2) with k = n_classes. *)
  next2 : int array;
  mid_final : bool array;
      (** Same indexing: was δ(q,c1) accepting? *)
  next1 : int array;
      (** 1-stride view over classes, for odd phases and trailing
          bytes: [next1.(q * k + c)] = δ(q, c). *)
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;
}

val byte_classes : Dfa.t -> int array * int
(** [(class_of, n_classes)]: the coarsest byte partition such that
    equivalent bytes act identically on every state. *)

val build : Dfa.t -> t
(** Stride-2 construction over the reduced alphabet. *)

val accepts : t -> string -> bool
(** Whole-string acceptance; agrees with the source DFA. *)

val match_ends : t -> string -> int list
(** Engine-convention unanchored matching; agrees with
    {!Dfa.match_ends} on the source DFA (mid-pair matches included). *)

val n_table_entries : t -> int
(** Size of the stride-2 table — the cost multi-stride papers track. *)

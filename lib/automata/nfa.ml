module Charclass = Mfsa_charset.Charclass

type label = Eps | Cls of Charclass.t

type transition = { src : int; label : label; dst : int }

type t = {
  n_states : int;
  transitions : transition array;
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;
}

let label_sym c = Cls (Charclass.singleton c)

let label_equal a b =
  match (a, b) with
  | Eps, Eps -> true
  | Cls x, Cls y -> Charclass.equal x y
  | (Eps | Cls _), _ -> false

let pp_label fmt = function
  | Eps -> Format.pp_print_string fmt "ε"
  | Cls c -> Charclass.pp fmt c

let create ~n_states ~transitions ~start ~finals ?(anchored_start = false)
    ?(anchored_end = false) ~pattern () =
  if n_states <= 0 then invalid_arg "Nfa.create: need at least one state";
  let check_state what q =
    if q < 0 || q >= n_states then
      invalid_arg
        (Printf.sprintf "Nfa.create: %s state %d out of range [0,%d)" what q
           n_states)
  in
  check_state "start" start;
  List.iter (check_state "final") finals;
  List.iter
    (fun { src; label; dst } ->
      check_state "source" src;
      check_state "destination" dst;
      match label with
      | Eps -> ()
      | Cls c ->
          if Charclass.is_empty c then
            invalid_arg "Nfa.create: empty character class on a transition")
    transitions;
  let fin = Array.make n_states false in
  List.iter (fun q -> fin.(q) <- true) finals;
  {
    n_states;
    transitions = Array.of_list transitions;
    start;
    finals = fin;
    anchored_start;
    anchored_end;
    pattern;
  }

let n_transitions a = Array.length a.transitions

let final_states a =
  let acc = ref [] in
  for q = a.n_states - 1 downto 0 do
    if a.finals.(q) then acc := q :: !acc
  done;
  !acc

let is_eps_free a =
  Array.for_all (fun t -> t.label <> Eps) a.transitions

let out a =
  let degree = Array.make a.n_states 0 in
  Array.iter (fun t -> degree.(t.src) <- degree.(t.src) + 1) a.transitions;
  let index = Array.init a.n_states (fun q -> Array.make degree.(q) 0) in
  let next = Array.make a.n_states 0 in
  Array.iteri
    (fun i t ->
      index.(t.src).(next.(t.src)) <- i;
      next.(t.src) <- next.(t.src) + 1)
    a.transitions;
  index

let cc_stats a =
  Array.fold_left
    (fun (count, total) t ->
      match t.label with
      | Eps -> (count, total)
      | Cls c ->
          let n = Charclass.cardinal c in
          if n > 1 then (count + 1, total + n) else (count, total))
    (0, 0) a.transitions

let map_states a f ~n_states =
  let transitions =
    Array.to_list a.transitions
    |> List.map (fun t -> { t with src = f t.src; dst = f t.dst })
  in
  let finals =
    List.filter_map
      (fun q -> if a.finals.(q) then Some (f q) else None)
      (List.init a.n_states Fun.id)
  in
  create ~n_states ~transitions ~start:(f a.start) ~finals
    ~anchored_start:a.anchored_start ~anchored_end:a.anchored_end
    ~pattern:a.pattern ()

let transition_key t =
  let label_key =
    match t.label with Eps -> "" | Cls c -> Charclass.to_spec c
  in
  (t.src, label_key, t.dst)

let equal_structure a b =
  a.n_states = b.n_states && a.start = b.start && a.finals = b.finals
  && a.anchored_start = b.anchored_start
  && a.anchored_end = b.anchored_end
  && Array.length a.transitions = Array.length b.transitions
  &&
  let sorted x =
    let keys = Array.map transition_key x.transitions in
    Array.sort compare keys;
    keys
  in
  sorted a = sorted b

let pp fmt a =
  Format.fprintf fmt "@[<v>NFA %S: %d states, %d transitions, start %d@,"
    a.pattern a.n_states (Array.length a.transitions) a.start;
  Format.fprintf fmt "finals: %a@,"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (final_states a);
  Array.iter
    (fun t -> Format.fprintf fmt "  %d --%a--> %d@," t.src pp_label t.label t.dst)
    a.transitions;
  Format.fprintf fmt "@]"

let to_dot a =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph nfa {\n  rankdir=LR;\n";
  Buffer.add_string buf
    (Printf.sprintf "  start [shape=point]; start -> %d;\n" a.start);
  Array.iteri
    (fun q final ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [shape=%s];\n" q
           (if final then "doublecircle" else "circle")))
    a.finals;
  Array.iter
    (fun t ->
      let lbl =
        match t.label with
        | Eps -> "&epsilon;"
        | Cls c -> Charclass.to_spec c
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=%S];\n" t.src t.dst lbl))
    a.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

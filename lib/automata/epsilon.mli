(** ε-arc removal (paper §IV-C, optimisation 1).

    Thompson gadgets use ε-arcs to wire fragments; ANML does not
    support ε-moves and they add no information to the merging
    procedure, so this pass eliminates them: with [E(q)] the ε-closure
    of [q], the ε-free automaton has a transition [q --c--> s] whenever
    some [r ∈ E(q)] has [r --c--> s], and [q] is final whenever [E(q)]
    intersects [F]. Unreachable states and dead states (states from
    which no final state is reachable) are then trimmed and the
    remaining states renumbered in BFS order from the start state,
    giving each rule a canonical compact FSA for the merging stage. *)

val closure : Nfa.t -> int -> int list
(** ε-closure of one state (includes the state itself), ascending. *)

val remove : Nfa.t -> Nfa.t
(** Returns an equivalent ε-free, trimmed, renumbered automaton with
    [start = 0]. The result recognises the same language. Exact
    duplicate transitions [(q, C, s)] are deduplicated. *)

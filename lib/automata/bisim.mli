(** NFA state reduction by forward bisimulation.

    DFA minimisation does not apply to NFAs, but the quotient by
    {e forward bisimulation} — repeatedly merging states that agree on
    finality and have identical (label, successor-block) signatures —
    is language-preserving and cheap, and automata toolchains (e.g.
    Becchi's, which produced the paper's datasets) routinely apply
    such reductions before further processing. Thompson + ε-removal
    leaves many bisimilar states (parallel alternation tails, expanded
    loop copies), so this pass typically shrinks rule automata before
    merging.

    The pass is exposed as an optional pre-merging step and measured
    as an ablation in the benchmark harness; it is not on the default
    pipeline path, so the Table I statistics stay comparable with the
    paper's. *)

val reduce : Nfa.t -> Nfa.t
(** Quotient the automaton by the coarsest forward bisimulation.
    Requires an ε-free automaton; the result recognises exactly the
    same language, with [n_states] no larger than the input's.
    Duplicate transitions between merged states are fused.
    @raise Invalid_argument on ε-arcs. *)

val n_blocks : Nfa.t -> int
(** Number of bisimulation classes (the size [reduce] would produce),
    without building the quotient. *)

(** Thompson-like construction: AST → ε-NFA (paper §IV-B).

    Each AST operator maps to a fixed gadget; the construction walks
    the tree depth-first, encoding leaves as two-state sub-FSAs and
    wiring them together at the parent operators, exactly the
    depth-first procedure the paper describes. The result is
    non-deterministic, uses ε-arcs freely (they are removed by the
    {!Epsilon} pass), and has a single start and a single final state. *)

val build : Mfsa_frontend.Ast.rule -> Nfa.t
(** [Repeat] nodes still present in the AST (i.e. not rewritten by
    {!Loops.expand}) are unrolled structurally during construction, so
    the output never contains counters. *)

val build_pattern : string -> Nfa.t
(** Convenience: parse with {!Parser} then {!build}.
    @raise Mfsa_frontend.Parser.Parse_error on bad patterns. *)

module Ast = Mfsa_frontend.Ast
module Charclass = Mfsa_charset.Charclass

let rec single_byte = function
  | Ast.Char c -> Some (Charclass.singleton c)
  | Ast.Class cls -> Some cls
  | Ast.Alt (a, b) -> (
      match (single_byte a, single_byte b) with
      | Some ca, Some cb -> Some (Charclass.union ca cb)
      | _ -> None)
  | Ast.Empty | Ast.Concat _ | Ast.Star _ | Ast.Plus _ | Ast.Opt _
  | Ast.Repeat _ ->
      None

let rec char_classes t =
  match t with
  | Ast.Empty | Ast.Char _ | Ast.Class _ -> t
  | Ast.Alt (a, b) -> (
      let a = char_classes a and b = char_classes b in
      match (single_byte a, single_byte b) with
      | Some ca, Some cb -> Ast.Class (Charclass.union ca cb)
      | _ -> Ast.Alt (a, b))
  | Ast.Concat (a, b) -> Ast.Concat (char_classes a, char_classes b)
  | Ast.Star a -> Ast.Star (char_classes a)
  | Ast.Plus a -> Ast.Plus (char_classes a)
  | Ast.Opt a -> Ast.Opt (char_classes a)
  | Ast.Repeat (a, m, n) -> Ast.Repeat (char_classes a, m, n)

let char_classes_rule rule = { rule with Ast.ast = char_classes rule.Ast.ast }

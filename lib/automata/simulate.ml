module Charclass = Mfsa_charset.Charclass

(* Shared simulation core: walk the input maintaining the set of
   states reachable by consuming at least one byte, injecting the
   start-state closure before every step (or only at position 0 when
   start-anchored). [on_match] receives each end position once. *)
let simulate a input ~anchored_start ~on_match =
  let n = a.Nfa.n_states in
  let closures = Array.init n (fun q -> Epsilon.closure a q) in
  let sym_out = Array.make n [] in
  Array.iter
    (fun t ->
      match t.Nfa.label with
      | Nfa.Eps -> ()
      | Nfa.Cls c -> sym_out.(t.Nfa.src) <- (c, t.Nfa.dst) :: sym_out.(t.Nfa.src))
    a.Nfa.transitions;
  let cur = Array.make n false in
  let next = Array.make n false in
  let len = String.length input in
  for i = 0 to len - 1 do
    if (not anchored_start) || i = 0 then
      List.iter (fun q -> cur.(q) <- true) closures.(a.Nfa.start);
    let c = input.[i] in
    Array.fill next 0 n false;
    for q = 0 to n - 1 do
      if cur.(q) then
        List.iter
          (fun (cls, dst) ->
            if Charclass.mem cls c then
              List.iter (fun r -> next.(r) <- true) closures.(dst))
          sym_out.(q)
    done;
    Array.blit next 0 cur 0 n;
    let matched = ref false in
    for q = 0 to n - 1 do
      if cur.(q) && a.Nfa.finals.(q) then matched := true
    done;
    if !matched then on_match (i + 1)
  done

let accepts a input =
  if String.length input = 0 then
    List.exists (fun q -> a.Nfa.finals.(q)) (Epsilon.closure a a.Nfa.start)
  else begin
    let found = ref false in
    let len = String.length input in
    simulate a input ~anchored_start:true ~on_match:(fun e ->
        if e = len then found := true);
    !found
  end

let match_ends a input =
  let acc = ref [] in
  let len = String.length input in
  simulate a input ~anchored_start:a.Nfa.anchored_start ~on_match:(fun e ->
      if (not a.Nfa.anchored_end) || e = len then acc := e :: !acc);
  List.rev !acc

let count_matches a input =
  let count = ref 0 in
  let len = String.length input in
  simulate a input ~anchored_start:a.Nfa.anchored_start ~on_match:(fun e ->
      if (not a.Nfa.anchored_end) || e = len then incr count);
  !count

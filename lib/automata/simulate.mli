(** Reference simulator — the testing oracle.

    A straightforward set-based NFA simulation that works on any
    automaton, ε-arcs included. It is deliberately simple and slow; the
    property-test suites use it as ground truth for every middle-end
    transformation ({!Epsilon}, {!Loops}, {!Multiplicity}) and for the
    iNFAnt/iMFAnt engines.

    Matching conventions (shared with the engines):
    - matching is {e unanchored} unless the rule carried [^]/[$]: a
      match may start at any input position;
    - only non-empty matches are reported;
    - a match is identified by its {e end position} (the index just
      past its last byte); a given end position is reported once. *)

val accepts : Nfa.t -> string -> bool
(** Whole-string acceptance: does the automaton's language contain
    exactly this string? Ignores the anchoring flags. *)

val match_ends : Nfa.t -> string -> int list
(** End positions (ascending, each in [\[1, length\]]) of all matches
    under the conventions above, honouring [anchored_start] /
    [anchored_end]. *)

val count_matches : Nfa.t -> string -> int
(** [List.length (match_ends a s)] without building the list. *)

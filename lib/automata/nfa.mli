(** Finite state automata over the 256-byte alphabet.

    The FSA tuple [(Q, Σ, δ, q0, F)] of the paper's §II, with the
    transition function stored as an explicit transition list. Labels
    are either ε or a character class; single characters are singleton
    classes, so label equality — the primitive the merging algorithm is
    built on (paper §III-A, sets [X] and [Y]) — is uniformly class
    equality. States are the integers [0 .. n_states-1]. *)

type label =
  | Eps
  | Cls of Mfsa_charset.Charclass.t
      (** Non-empty set of enabling bytes. *)

type transition = { src : int; label : label; dst : int }

type t = private {
  n_states : int;
  transitions : transition array;
  start : int;
  finals : bool array;  (** [finals.(q)] iff [q ∈ F]; length [n_states]. *)
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;  (** Source RE this automaton was compiled from. *)
}

val label_sym : char -> label
(** Singleton-class label. *)

val label_equal : label -> label -> bool

val pp_label : Format.formatter -> label -> unit

val create :
  n_states:int ->
  transitions:transition list ->
  start:int ->
  finals:int list ->
  ?anchored_start:bool ->
  ?anchored_end:bool ->
  pattern:string ->
  unit ->
  t
(** Validates ranges (states within [\[0, n_states)], non-empty
    classes). @raise Invalid_argument on malformed input. *)

val n_transitions : t -> int

val final_states : t -> int list

val is_eps_free : t -> bool

val out : t -> int array array
(** [out a] is the adjacency index: [(out a).(q)] lists the indices
    into [a.transitions] of the transitions leaving [q]. O(Q + T) to
    build; callers should reuse it. *)

val cc_stats : t -> int * int
(** [(count, total_length)] over transitions whose class has more than
    one member — the "number of CCs / length of CCs" statistics of the
    paper's Table I. *)

val map_states : t -> (int -> int) -> n_states:int -> t
(** [map_states a f ~n_states] renames every state through [f] (which
    must be injective into [\[0, n_states)]). *)

val equal_structure : t -> t -> bool
(** Structural identity: same state count, start, finals and transition
    set (order-insensitive). Used by tests; not language equivalence. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)

val to_dot : t -> string
(** Graphviz rendering for debugging. *)

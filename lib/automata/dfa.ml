module Charclass = Mfsa_charset.Charclass
module Vec = Mfsa_util.Vec

type t = {
  n_states : int;
  next : int array;
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  pattern : string;
}

let create ~n_states ~next ~start ~finals ?(anchored_start = false)
    ?(anchored_end = false) ~pattern () =
  if n_states <= 0 then invalid_arg "Dfa.create: need at least one state";
  if Array.length next <> n_states * 256 then
    invalid_arg "Dfa.create: transition table must have n_states * 256 entries";
  if Array.length finals <> n_states then
    invalid_arg "Dfa.create: finals must have n_states entries";
  if start < 0 || start >= n_states then
    invalid_arg "Dfa.create: start state out of range";
  Array.iter
    (fun q ->
      if q < 0 || q >= n_states then
        invalid_arg "Dfa.create: transition target out of range")
    next;
  { n_states; next; start; finals; anchored_start; anchored_end; pattern }

let step t q c = t.next.((q * 256) + Char.code c)

let determinize (a : Nfa.t) =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Dfa.determinize: automaton must be ε-free";
  (* Subset construction. NFA state sets are canonicalised as sorted
     int lists; the table grows as new subsets are discovered. The
     empty subset is the sink, always state 0 of the result. *)
  let out = Nfa.out a in
  let index = Hashtbl.create 64 in
  let subsets = Vec.create () in
  let intern subset =
    match Hashtbl.find_opt index subset with
    | Some id -> id
    | None ->
        let id = Vec.length subsets in
        Hashtbl.add index subset id;
        Vec.push subsets subset;
        id
  in
  let sink = intern [] in
  let start = intern [ a.Nfa.start ] in
  let rows = Vec.create () in
  Vec.push rows (Array.make 256 sink) (* sink loops to itself *);
  let worklist = Queue.create () in
  Queue.add start worklist;
  Vec.push rows (Array.make 256 sink);
  let processed = Hashtbl.create 64 in
  Hashtbl.add processed sink ();
  while not (Queue.is_empty worklist) do
    let id = Queue.pop worklist in
    if not (Hashtbl.mem processed id) then begin
      Hashtbl.add processed id ();
      let subset = Vec.get subsets id in
      (* successor sets per byte, accumulated as sorted unique lists *)
      let succ = Array.make 256 [] in
      List.iter
        (fun q ->
          Array.iter
            (fun ti ->
              let tr = a.Nfa.transitions.(ti) in
              match tr.Nfa.label with
              | Nfa.Eps -> assert false
              | Nfa.Cls cls ->
                  Charclass.iter
                    (fun c ->
                      let i = Char.code c in
                      succ.(i) <- tr.Nfa.dst :: succ.(i))
                    cls)
            out.(q))
        subset;
      let row = Vec.get rows id in
      Array.iteri
        (fun i dsts ->
          let target = List.sort_uniq Int.compare dsts in
          let tid = intern target in
          (* New subsets need a row and a worklist entry. *)
          if tid = Vec.length rows then begin
            Vec.push rows (Array.make 256 sink);
            Queue.add tid worklist
          end
          else if tid > Vec.length rows then assert false
          else if not (Hashtbl.mem processed tid) then Queue.add tid worklist;
          row.(i) <- tid)
        succ
    end
  done;
  let n = Vec.length subsets in
  let next = Array.make (n * 256) sink in
  Vec.iteri
    (fun id row -> Array.blit row 0 next (id * 256) 256)
    rows;
  let finals = Array.make n false in
  Vec.iteri
    (fun id subset -> finals.(id) <- List.exists (fun q -> a.Nfa.finals.(q)) subset)
    subsets;
  create ~n_states:n ~next ~start ~finals ~anchored_start:a.Nfa.anchored_start
    ~anchored_end:a.Nfa.anchored_end ~pattern:a.Nfa.pattern ()

let reachable t =
  let seen = Array.make t.n_states false in
  let queue = Queue.create () in
  seen.(t.start) <- true;
  Queue.add t.start queue;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    for c = 0 to 255 do
      let d = t.next.((q * 256) + c) in
      if not seen.(d) then begin
        seen.(d) <- true;
        Queue.add d queue
      end
    done
  done;
  seen

let n_reachable t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (reachable t)

(* Hopcroft's partition-refinement minimisation, restricted to the
   reachable sub-automaton. *)
let minimize t =
  let seen = reachable t in
  (* Compact the reachable states first. *)
  let renum = Array.make t.n_states (-1) in
  let count = ref 0 in
  for q = 0 to t.n_states - 1 do
    if seen.(q) then begin
      renum.(q) <- !count;
      incr count
    end
  done;
  let n = !count in
  let next = Array.make (n * 256) 0 in
  let finals = Array.make n false in
  for q = 0 to t.n_states - 1 do
    if seen.(q) then begin
      let q' = renum.(q) in
      finals.(q') <- t.finals.(q);
      for c = 0 to 255 do
        next.((q' * 256) + c) <- renum.(t.next.((q * 256) + c))
      done
    end
  done;
  let start = renum.(t.start) in
  (* Partition refinement: block id per state; split blocks by
     (successor block per byte) signatures until stable. Simpler than
     textbook Hopcroft's worklist but O(n^2 * 256) worst case, which
     is fine at this library's automaton sizes. *)
  let block = Array.make n 0 in
  for q = 0 to n - 1 do
    block.(q) <- (if finals.(q) then 1 else 0)
  done;
  let n_blocks = ref (if Array.exists Fun.id finals && Array.exists not finals then 2 else 1) in
  (if !n_blocks = 1 && Array.exists Fun.id finals then
     (* all states final: single block id 1 -> normalise to 0 *)
     Array.fill block 0 n 0);
  let changed = ref true in
  while !changed do
    changed := false;
    let signature = Hashtbl.create 64 in
    let new_block = Array.make n 0 in
    let next_id = ref 0 in
    for q = 0 to n - 1 do
      let sig_q =
        ( block.(q),
          Array.init 256 (fun c -> block.(next.((q * 256) + c))) )
      in
      let id =
        match Hashtbl.find_opt signature sig_q with
        | Some id -> id
        | None ->
            let id = !next_id in
            incr next_id;
            Hashtbl.add signature sig_q id;
            id
      in
      new_block.(q) <- id
    done;
    if !next_id <> !n_blocks then begin
      changed := true;
      n_blocks := !next_id
    end;
    Array.blit new_block 0 block 0 n
  done;
  let m = !n_blocks in
  let mnext = Array.make (m * 256) 0 in
  let mfinals = Array.make m false in
  for q = 0 to n - 1 do
    let b = block.(q) in
    mfinals.(b) <- finals.(q);
    for c = 0 to 255 do
      mnext.((b * 256) + c) <- block.(next.((q * 256) + c))
    done
  done;
  create ~n_states:m ~next:mnext ~start:block.(start) ~finals:mfinals
    ~anchored_start:t.anchored_start ~anchored_end:t.anchored_end
    ~pattern:t.pattern ()

let accepts t input =
  let q = ref t.start in
  String.iter (fun c -> q := step t !q c) input;
  t.finals.(!q)

let match_ends t input =
  (* Unanchored matching with a DFA requires one active state per
     possible match start; maintain the set of live states like the
     NFA engines do (a product construction would avoid this but blow
     up the state count). *)
  let len = String.length input in
  let acc = ref [] in
  let cur = Array.make t.n_states false in
  let nxt = Array.make t.n_states false in
  for i = 0 to len - 1 do
    if (not t.anchored_start) || i = 0 then cur.(t.start) <- true;
    let c = input.[i] in
    Array.fill nxt 0 t.n_states false;
    let matched = ref false in
    for q = 0 to t.n_states - 1 do
      if cur.(q) then begin
        let d = step t q c in
        if not nxt.(d) then begin
          nxt.(d) <- true;
          if t.finals.(d) then matched := true
        end
      end
    done;
    Array.blit nxt 0 cur 0 t.n_states;
    if !matched && ((not t.anchored_end) || i = len - 1) then acc := (i + 1) :: !acc
  done;
  List.rev !acc

let to_nfa t =
  (* Group arcs by (src, dst) into classes; drop arcs into a
     non-accepting all-absorbing sink. *)
  let is_sink q =
    (not t.finals.(q))
    && (let all_self = ref true in
        for c = 0 to 255 do
          if t.next.((q * 256) + c) <> q then all_self := false
        done;
        !all_self)
  in
  let transitions = ref [] in
  for q = 0 to t.n_states - 1 do
    let by_dst = Hashtbl.create 16 in
    for c = 0 to 255 do
      let d = t.next.((q * 256) + c) in
      if not (is_sink d) then
        Hashtbl.replace by_dst d
          (Charclass.add
             (Option.value ~default:Charclass.empty (Hashtbl.find_opt by_dst d))
             (Char.chr c))
    done;
    Hashtbl.iter
      (fun d cls ->
        transitions := { Nfa.src = q; label = Nfa.Cls cls; dst = d } :: !transitions)
      by_dst
  done;
  let finals = ref [] in
  Array.iteri (fun q f -> if f then finals := q :: !finals) t.finals;
  Nfa.create ~n_states:t.n_states ~transitions:!transitions ~start:t.start
    ~finals:!finals ~anchored_start:t.anchored_start
    ~anchored_end:t.anchored_end ~pattern:t.pattern ()

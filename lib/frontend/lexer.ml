module Charclass = Mfsa_charset.Charclass
module Vec = Mfsa_util.Vec

type token =
  | Char of char
  | Class of Charclass.t
  | Dot
  | Star
  | Plus
  | Quest
  | Repeat of int * int option
  | Lparen
  | Rparen
  | Bar
  | Caret
  | Dollar

type located = { token : token; pos : int }

type error = { pos : int; message : string }

exception Lex_error of error

let max_bound = 1000

let fail pos fmt =
  Format.kasprintf (fun message -> raise (Lex_error { pos; message })) fmt

type cursor = { src : string; mutable i : int }

let peek cu = if cu.i < String.length cu.src then Some cu.src.[cu.i] else None

let advance cu = cu.i <- cu.i + 1

let expect cu c =
  match peek cu with
  | Some x when x = c -> advance cu
  | _ -> fail cu.i "expected '%c'" c

let hex_value pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail pos "invalid hexadecimal digit '%c'" c

(* Escape sequences shared by the top level and bracket interiors.
   Returns either a literal byte or a shorthand class. *)
let lex_escape cu =
  let pos = cu.i in
  advance cu (* consume '\\' *);
  match peek cu with
  | None -> fail pos "dangling backslash"
  | Some c -> (
      advance cu;
      match c with
      | 'n' -> `Char '\n'
      | 't' -> `Char '\t'
      | 'r' -> `Char '\r'
      | 'f' -> `Char '\012'
      | 'v' -> `Char '\011'
      | 'a' -> `Char '\007'
      | 'e' -> `Char '\027'
      | '0' -> `Char '\000'
      | 'x' -> (
          match (peek cu, cu.i + 1 < String.length cu.src) with
          | Some h1, true ->
              let h2 = cu.src.[cu.i + 1] in
              let v = (hex_value cu.i h1 * 16) + hex_value (cu.i + 1) h2 in
              advance cu;
              advance cu;
              `Char (Char.chr v)
          | _ -> fail pos "\\x escape requires two hexadecimal digits")
      | 'd' -> `Class (Charclass.range '0' '9')
      | 'D' -> `Class (Charclass.complement (Charclass.range '0' '9'))
      | 'w' ->
          `Class
            (Charclass.union
               (Charclass.singleton '_')
               (Option.get (Charclass.posix "alnum")))
      | 'W' ->
          `Class
            (Charclass.complement
               (Charclass.union
                  (Charclass.singleton '_')
                  (Option.get (Charclass.posix "alnum"))))
      | 's' -> `Class (Option.get (Charclass.posix "space"))
      | 'S' -> `Class (Charclass.complement (Option.get (Charclass.posix "space")))
      | ('a' .. 'z' | 'A' .. 'Z') as c ->
          fail pos "unknown escape sequence '\\%c'" c
      | c -> `Char c)

(* [[:name:]] inside a bracket expression; cursor is on the first ':'. *)
let lex_posix_class cu =
  let pos = cu.i in
  advance cu (* ':' *);
  let start = cu.i in
  let rec scan () =
    match peek cu with
    | Some ('a' .. 'z') ->
        advance cu;
        scan ()
    | _ -> ()
  in
  scan ();
  let name = String.sub cu.src start (cu.i - start) in
  expect cu ':';
  expect cu ']';
  match Charclass.posix name with
  | Some cls -> cls
  | None -> fail pos "unknown POSIX class name '%s'" name

(* Bracket expression; cursor is just past '['. *)
let lex_bracket cu open_pos =
  let negated =
    match peek cu with
    | Some '^' ->
        advance cu;
        true
    | _ -> false
  in
  let acc = ref Charclass.empty in
  let add cls = acc := Charclass.union !acc cls in
  (* A ']' directly after '[' or '[^' is a literal member. *)
  (match peek cu with
  | Some ']' ->
      advance cu;
      add (Charclass.singleton ']')
  | _ -> ());
  let rec items () =
    match peek cu with
    | None -> fail open_pos "unterminated bracket expression"
    | Some ']' -> advance cu
    | Some '[' when cu.i + 1 < String.length cu.src && cu.src.[cu.i + 1] = ':'
      ->
        advance cu;
        add (lex_posix_class cu);
        items ()
    | Some c ->
        let lo =
          if c = '\\' then
            match lex_escape cu with
            | `Char c -> `Char c
            | `Class cls -> `Class cls
          else begin
            advance cu;
            `Char c
          end
        in
        (match lo with
        | `Class cls ->
            add cls;
            items ()
        | `Char lo_c -> (
            (* Possible range: lo-hi, unless '-' is last before ']'. *)
            match (peek cu, cu.i + 1 < String.length cu.src) with
            | Some '-', true when cu.src.[cu.i + 1] <> ']' ->
                advance cu (* '-' *);
                let hi_pos = cu.i in
                let hi =
                  match peek cu with
                  | Some '\\' -> (
                      match lex_escape cu with
                      | `Char c -> c
                      | `Class _ ->
                          fail hi_pos "character class cannot bound a range")
                  | Some c ->
                      advance cu;
                      c
                  | None -> fail open_pos "unterminated bracket expression"
                in
                if hi < lo_c then
                  fail hi_pos "reversed range '%c-%c'" lo_c hi;
                add (Charclass.range lo_c hi);
                items ()
            | _ ->
                add (Charclass.singleton lo_c);
                items ()))
  in
  items ();
  let cls = if negated then Charclass.complement !acc else !acc in
  if Charclass.is_empty cls then fail open_pos "empty character class";
  cls

(* {m}, {m,}, {m,n}; cursor is just past '{'. A '{' not followed by a
   well-formed bound is treated as a literal, as POSIX prescribes. *)
let lex_repeat cu open_pos =
  let read_int () =
    let start = cu.i in
    let rec scan () =
      match peek cu with
      | Some '0' .. '9' ->
          advance cu;
          scan ()
      | _ -> ()
    in
    scan ();
    if cu.i = start then None
    else Some (int_of_string (String.sub cu.src start (cu.i - start)))
  in
  match read_int () with
  | None -> None
  | Some m -> (
      if m > max_bound then
        fail open_pos "repetition bound %d exceeds the maximum %d" m max_bound;
      match peek cu with
      | Some '}' ->
          advance cu;
          Some (Repeat (m, Some m))
      | Some ',' -> (
          advance cu;
          match read_int () with
          | None -> (
              match peek cu with
              | Some '}' ->
                  advance cu;
                  Some (Repeat (m, None))
              | _ -> None)
          | Some n -> (
              if n > max_bound then
                fail open_pos "repetition bound %d exceeds the maximum %d" n
                  max_bound;
              if n < m then
                fail open_pos "repetition bounds reversed: {%d,%d}" m n;
              match peek cu with
              | Some '}' ->
                  advance cu;
                  Some (Repeat (m, Some n))
              | _ -> None))
      | _ -> None)

let tokenize_exn src =
  let cu = { src; i = 0 } in
  let out = Vec.create () in
  let emit pos token = Vec.push out { token; pos } in
  let rec loop () =
    match peek cu with
    | None -> ()
    | Some c ->
        let pos = cu.i in
        (match c with
        | '.' ->
            advance cu;
            emit pos Dot
        | '*' ->
            advance cu;
            emit pos Star
        | '+' ->
            advance cu;
            emit pos Plus
        | '?' ->
            advance cu;
            emit pos Quest
        | '(' ->
            advance cu;
            emit pos Lparen
        | ')' ->
            advance cu;
            emit pos Rparen
        | '|' ->
            advance cu;
            emit pos Bar
        | '^' ->
            advance cu;
            emit pos Caret
        | '$' ->
            advance cu;
            emit pos Dollar
        | '[' ->
            advance cu;
            emit pos (Class (lex_bracket cu pos))
        | '{' -> (
            advance cu;
            let saved = cu.i in
            match lex_repeat cu pos with
            | Some tok -> emit pos tok
            | None ->
                cu.i <- saved;
                emit pos (Char '{'))
        | '\\' -> (
            match lex_escape cu with
            | `Char c -> emit pos (Char c)
            | `Class cls -> emit pos (Class cls))
        | '}' | ']' ->
            (* POSIX: stray closers are literals. *)
            advance cu;
            emit pos (Char c)
        | c ->
            advance cu;
            emit pos (Char c));
        loop ()
  in
  loop ();
  Vec.to_array out

let tokenize src =
  match tokenize_exn src with
  | toks -> Ok toks
  | exception Lex_error e -> Error e

let pp_token fmt = function
  | Char c -> Format.fprintf fmt "Char %C" c
  | Class cls -> Format.fprintf fmt "Class %a" Charclass.pp cls
  | Dot -> Format.pp_print_string fmt "Dot"
  | Star -> Format.pp_print_string fmt "Star"
  | Plus -> Format.pp_print_string fmt "Plus"
  | Quest -> Format.pp_print_string fmt "Quest"
  | Repeat (m, Some n) -> Format.fprintf fmt "Repeat{%d,%d}" m n
  | Repeat (m, None) -> Format.fprintf fmt "Repeat{%d,}" m
  | Lparen -> Format.pp_print_string fmt "Lparen"
  | Rparen -> Format.pp_print_string fmt "Rparen"
  | Bar -> Format.pp_print_string fmt "Bar"
  | Caret -> Format.pp_print_string fmt "Caret"
  | Dollar -> Format.pp_print_string fmt "Dollar"

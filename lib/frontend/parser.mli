(** Syntactic analysis for POSIX extended regular expressions.

    Second stage of the front-end (paper §IV-A): a recursive-descent
    parser over the token stream produced by {!Lexer}, implementing the
    ERE grammar

    {v
      pattern  ::= '^'? alt '$'?
      alt      ::= concat ('|' concat)*
      concat   ::= postfix*
      postfix  ::= atom ('*' | '+' | '?' | '{m,n}')*
      atom     ::= char | class | '.' | '(' alt ')'
    v}

    Anchors are accepted only at the pattern boundaries and surface as
    rule flags (see {!Ast.rule}); an interior anchor is a parse error,
    matching the regular (anchor-free) automata the paper compiles. *)

type error = { pos : int; message : string }

exception Parse_error of error

val parse : string -> (Ast.rule, error) result
(** Lex and parse one pattern. *)

val parse_exn : string -> Ast.rule
(** @raise Parse_error on lexical or syntactic errors. *)

val parse_many : string list -> (Ast.rule array, int * error) result
(** Parse a whole ruleset; on failure reports the index of the first
    offending rule together with its error. *)

val error_to_string : error -> string

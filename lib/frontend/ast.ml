module Charclass = Mfsa_charset.Charclass

type t =
  | Empty
  | Char of char
  | Class of Charclass.t
  | Concat of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option

type rule = {
  pattern : string;
  ast : t;
  anchored_start : bool;
  anchored_end : bool;
}

let rec equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Char x, Char y -> Char.equal x y
  | Class x, Class y -> Charclass.equal x y
  | Concat (x1, x2), Concat (y1, y2) | Alt (x1, x2), Alt (y1, y2) ->
      equal x1 y1 && equal x2 y2
  | Star x, Star y | Plus x, Plus y | Opt x, Opt y -> equal x y
  | Repeat (x, ml, mh), Repeat (y, nl, nh) ->
      ml = nl && mh = nh && equal x y
  | (Empty | Char _ | Class _ | Concat _ | Alt _ | Star _ | Plus _ | Opt _
    | Repeat _), _ ->
      false

let seq = function
  | [] -> Empty
  | x :: rest -> List.fold_left (fun acc e -> Concat (acc, e)) x rest

let alt = function
  | [] -> invalid_arg "Ast.alt: empty alternation"
  | x :: rest -> List.fold_left (fun acc e -> Alt (acc, e)) x rest

let rec size = function
  | Empty | Char _ | Class _ -> 1
  | Concat (a, b) | Alt (a, b) -> 1 + size a + size b
  | Star a | Plus a | Opt a | Repeat (a, _, _) -> 1 + size a

let literals ast =
  (* Walk left-to-right accumulating runs of consecutive [Char] nodes;
     any other node breaks the run. *)
  let runs = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      runs := Buffer.contents buf :: !runs;
      Buffer.clear buf
    end
  in
  let rec go = function
    | Empty -> ()
    | Char c -> Buffer.add_char buf c
    | Class _ -> flush ()
    | Concat (a, b) ->
        go a;
        go b
    | Alt (a, b) ->
        flush ();
        go a;
        flush ();
        go b;
        flush ()
    | Star a | Opt a ->
        flush ();
        go a;
        flush ()
    | Plus a | Repeat (a, _, _) ->
        flush ();
        go a;
        flush ()
  in
  go ast;
  flush ();
  List.rev !runs

let escape_char buf c =
  match c with
  | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '*' | '+' | '?' | '.' | '^'
  | '$' | '\\' ->
      Buffer.add_char buf '\\';
      Buffer.add_char buf c
  | c when Char.code c >= 32 && Char.code c <= 126 -> Buffer.add_char buf c
  | '\n' -> Buffer.add_string buf "\\n"
  | '\t' -> Buffer.add_string buf "\\t"
  | '\r' -> Buffer.add_string buf "\\r"
  | c -> Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))

let rec render buf t =
  (* Precedence: Alt < Concat < postfix. Parenthesise when a lower-
     precedence construct appears where a higher one is expected. *)
  match t with
  | Alt (a, b) ->
      render buf a;
      Buffer.add_char buf '|';
      render buf b
  | t -> render_concat buf t

and render_concat buf = function
  | Concat (a, b) ->
      render_concat buf a;
      render_concat buf b
  | Empty -> ()
  | t -> render_postfix buf t

and render_postfix buf = function
  | Star a ->
      render_atom buf a;
      Buffer.add_char buf '*'
  | Plus a ->
      render_atom buf a;
      Buffer.add_char buf '+'
  | Opt a ->
      render_atom buf a;
      Buffer.add_char buf '?'
  | Repeat (a, m, n) ->
      render_atom buf a;
      (match n with
      | Some n when n = m -> Buffer.add_string buf (Printf.sprintf "{%d}" m)
      | Some n -> Buffer.add_string buf (Printf.sprintf "{%d,%d}" m n)
      | None -> Buffer.add_string buf (Printf.sprintf "{%d,}" m))
  | t -> render_atom buf t

and render_atom buf = function
  | Char c -> escape_char buf c
  | Class c ->
      if Charclass.equal c Charclass.dot then Buffer.add_char buf '.'
      else Buffer.add_string buf (Charclass.to_spec c)
  | Empty -> Buffer.add_string buf "()"
  | t ->
      Buffer.add_char buf '(';
      render buf t;
      Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 64 in
  render buf t;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let pp_rule fmt r =
  Format.fprintf fmt "%s%a%s"
    (if r.anchored_start then "^" else "")
    pp r.ast
    (if r.anchored_end then "$" else "")

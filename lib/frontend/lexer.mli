(** Lexical analysis for POSIX extended regular expressions.

    First stage of the front-end (paper §IV-A): the pattern text is
    tokenised, with bracket expressions ([\[...\]], including ranges,
    negation, POSIX named classes and escapes) and bounded repetitions
    ([{m}], [{m,}], [{m,n}]) resolved into single tokens. Perl-style
    class shorthands ([\d \D \w \W \s \S]) are accepted as they pervade
    the deep-packet-inspection rulesets the paper evaluates on. *)

type token =
  | Char of char  (** Literal byte (possibly via an escape). *)
  | Class of Mfsa_charset.Charclass.t
      (** A bracket expression or class shorthand. *)
  | Dot  (** [.] — any byte but newline. *)
  | Star
  | Plus
  | Quest
  | Repeat of int * int option  (** [{m,n}]; [None] = unbounded. *)
  | Lparen
  | Rparen
  | Bar
  | Caret
  | Dollar

type located = { token : token; pos : int  (** Byte offset in the pattern. *) }

type error = { pos : int; message : string }

exception Lex_error of error

val tokenize : string -> (located array, error) result
(** Tokenise a whole pattern. Errors report the offending byte offset:
    unterminated brackets or repetitions, bad escapes, empty classes,
    reversed ranges, unknown POSIX class names, repetition bounds with
    [n < m] or values above {!max_bound}. *)

val max_bound : int
(** Largest accepted repetition bound (guards against pathological
    [{m,n}] blow-up downstream); 1000, as in common RE engines. *)

val pp_token : Format.formatter -> token -> unit

(** Abstract syntax trees for POSIX extended regular expressions.

    The front-end (paper §IV-A) turns each input RE into one {!rule};
    the middle-end consumes the rule's {!t} to build the FSA. Anchors
    are only permitted at the pattern boundaries and are recorded as
    rule-level flags, which is how the execution engines consume them. *)

type t =
  | Empty  (** ε — matches the empty string. *)
  | Char of char  (** A literal byte. *)
  | Class of Mfsa_charset.Charclass.t
      (** A character class, including ['.'] and bracket expressions. *)
  | Concat of t * t
  | Alt of t * t
  | Star of t  (** [e*] *)
  | Plus of t  (** [e+] *)
  | Opt of t  (** [e?] *)
  | Repeat of t * int * int option
      (** [Repeat (e, m, Some n)] is [e{m,n}]; [Repeat (e, m, None)] is
          [e{m,}]. Invariant (enforced by the parser): [0 <= m] and
          [m <= n] when bounded. *)

type rule = {
  pattern : string;  (** The source text the rule was parsed from. *)
  ast : t;
  anchored_start : bool;  (** Pattern began with [^]. *)
  anchored_end : bool;  (** Pattern ended with [$]. *)
}

val equal : t -> t -> bool

val seq : t list -> t
(** Right-nested concatenation; [seq \[\] = Empty]. *)

val alt : t list -> t
(** Right-nested alternation. @raise Invalid_argument on []. *)

val size : t -> int
(** Number of AST nodes; used for complexity accounting and to bound
    loop expansion. *)

val literals : t -> string list
(** Maximal literal character runs appearing in the AST, in left-to-
    right order. Feeds the INDEL similarity estimate (paper Fig. 1) and
    the synthetic stream generator. *)

val pp : Format.formatter -> t -> unit
(** Re-renders the AST as a parsable ERE (parenthesised
    conservatively). *)

val to_string : t -> string

val pp_rule : Format.formatter -> rule -> unit

module Charclass = Mfsa_charset.Charclass

type error = { pos : int; message : string }

exception Parse_error of error

let fail pos fmt =
  Format.kasprintf (fun message -> raise (Parse_error { pos; message })) fmt

type state = { toks : Lexer.located array; mutable i : int; src_len : int }

let peek st = if st.i < Array.length st.toks then Some st.toks.(st.i) else None

let advance st = st.i <- st.i + 1


(* postfix ::= atom ('*' | '+' | '?' | repeat)* *)
let rec parse_postfix st atom =
  match peek st with
  | Some { token = Lexer.Star; _ } ->
      advance st;
      parse_postfix st (Ast.Star atom)
  | Some { token = Lexer.Plus; _ } ->
      advance st;
      parse_postfix st (Ast.Plus atom)
  | Some { token = Lexer.Quest; _ } ->
      advance st;
      parse_postfix st (Ast.Opt atom)
  | Some { token = Lexer.Repeat (m, n); _ } ->
      advance st;
      parse_postfix st (Ast.Repeat (atom, m, n))
  | _ -> atom

(* atom ::= char | class | '.' | '(' alt ')' *)
and parse_atom st =
  match peek st with
  | Some { token = Lexer.Char c; _ } ->
      advance st;
      Some (Ast.Char c)
  | Some { token = Lexer.Class cls; _ } ->
      advance st;
      Some (Ast.Class cls)
  | Some { token = Lexer.Dot; _ } ->
      advance st;
      Some (Ast.Class Charclass.dot)
  | Some { token = Lexer.Lparen; pos } -> (
      advance st;
      let inner = parse_alt st in
      match peek st with
      | Some { token = Lexer.Rparen; _ } ->
          advance st;
          Some inner
      (* An anchor is what stopped the group: blame the anchor at its
         own position, not the '(' — "unmatched '('" would point the
         user at the wrong character. *)
      | Some { token = Lexer.Caret; pos } ->
          fail pos "'^' is only supported at the start of the pattern"
      | Some { token = Lexer.Dollar; pos } ->
          fail pos "'$' is only supported at the end of the pattern"
      | _ -> fail pos "unmatched '('")
  | Some { token = Lexer.Star | Lexer.Plus | Lexer.Quest | Lexer.Repeat _; pos }
    ->
      fail pos "quantifier with nothing to repeat"
  | Some
      {
        token = Lexer.Rparen | Lexer.Bar | Lexer.Caret | Lexer.Dollar;
        _;
      }
  | None ->
      None

and parse_alt st =
  let first = parse_concat st in
  let rec go acc =
    match peek st with
    | Some { token = Lexer.Bar; _ } ->
        advance st;
        let next = parse_concat st in
        go (Ast.Alt (acc, next))
    | _ -> acc
  in
  go first

(* concat ::= postfix* ; an empty concatenation is ε. Each postfix
   operator binds to the atom immediately before it. *)
and parse_concat st =
  let rec go acc =
    match parse_atom st with
    | None -> acc
    | Some atom ->
        let repeated = parse_postfix st atom in
        go (repeated :: acc)
  in
  match go [] with [] -> Ast.Empty | items -> Ast.seq (List.rev items)

let parse_tokens src toks =
  let st = { toks; i = 0; src_len = String.length src } in
  let anchored_start =
    match peek st with
    | Some { token = Lexer.Caret; _ } ->
        advance st;
        true
    | _ -> false
  in
  let ast = parse_alt st in
  let anchored_end =
    match peek st with
    | Some { token = Lexer.Dollar; _ } when st.i = Array.length st.toks - 1 ->
        advance st;
        true
    | _ -> false
  in
  (match peek st with
  | Some { token = Lexer.Rparen; pos } -> fail pos "unmatched ')'"
  | Some { token = Lexer.Caret; pos } ->
      fail pos "'^' is only supported at the start of the pattern"
  | Some { token = Lexer.Dollar; pos } ->
      fail pos "'$' is only supported at the end of the pattern"
  | Some { pos; _ } -> fail pos "unexpected token"
  | None -> ());
  { Ast.pattern = src; ast; anchored_start; anchored_end }

let parse_exn src =
  match Lexer.tokenize src with
  | Error { Lexer.pos; message } -> raise (Parse_error { pos; message })
  | Ok toks -> parse_tokens src toks

let parse src =
  match parse_exn src with
  | rule -> Ok rule
  | exception Parse_error e -> Error e

let parse_many patterns =
  let rules = ref [] in
  let rec go i = function
    | [] -> Ok (Array.of_list (List.rev !rules))
    | p :: rest -> (
        match parse p with
        | Ok r ->
            rules := r :: !rules;
            go (i + 1) rest
        | Error e -> Error (i, e))
  in
  go 0 patterns

let error_to_string { pos; message } =
  Printf.sprintf "at offset %d: %s" pos message

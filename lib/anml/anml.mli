(** Extended-ANML back-end (paper §IV-E).

    The last compilation stage lowers MFSAs into an Automata Network
    Markup Language representation for the execution engine. As in the
    paper, the standard is extended so that every transition carries
    the identifiers of the REs it belongs to ([belongs] attribute),
    which the iMFAnt activation function requires; per-FSA initial
    states, anchoring flags and source patterns are recorded on [fsa]
    elements, and final states with their FSA sets on [final]
    elements. Character classes are serialised as hexadecimal byte
    ranges ([symbols="61,63-66"]), keeping files byte-exact for the
    full 256-symbol alphabet. A document holds one automata network
    with any number of MFSAs, so a whole compiled ruleset lives in one
    file.

    The module provides both directions: generation (the compiler
    back-end proper) and parsing (engine-side pre-processing), so
    compile → file → load → execute is a fully supported path. *)

val symbols_to_string : Mfsa_charset.Charclass.t -> string
(** Hex-range encoding, e.g. ["0a,61-7a"]. *)

val symbols_of_string : string -> Mfsa_charset.Charclass.t
(** @raise Invalid_argument on malformed encodings. *)

val mfsa_to_xml : Mfsa_model.Mfsa.t -> Xml.t
(** One [<mfsa>] element. *)

val mfsa_of_xml : Xml.t -> (Mfsa_model.Mfsa.t, string) result

val write : ?name:string -> Mfsa_model.Mfsa.t list -> string
(** Serialise a ruleset to an extended-ANML document. *)

val read : string -> (Mfsa_model.Mfsa.t list, string) result
(** Parse a document produced by {!write} (or compatible). *)

val write_file : ?name:string -> string -> Mfsa_model.Mfsa.t list -> unit
(** [write_file path mfsas]. *)

val read_file : string -> (Mfsa_model.Mfsa.t list, string) result

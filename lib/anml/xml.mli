(** Minimal XML reader/writer — the substrate under the ANML back-end.

    ANML is an XML dialect; the sealed build environment has no XML
    library, so this module implements the subset ANML needs:
    elements, attributes, self-closing tags, character data, XML
    declarations, comments, and the five predefined entities. It does
    not support namespaces, DTDs, processing instructions beyond the
    declaration, or CDATA sections — none of which ANML uses. *)

type t = Element of string * (string * string) list * t list | Text of string

type error = { line : int; col : int; message : string }

exception Xml_error of error

val parse : string -> (t, error) result
(** Parse a document; returns the root element. Whitespace-only text
    nodes are dropped. *)

val parse_exn : string -> t

val to_string : ?indent:bool -> t -> string
(** Serialise, escaping attribute values and character data. With
    [~indent:true] (default) children are pretty-printed. *)

val attr : t -> string -> string option
(** Attribute lookup on an element; [None] on [Text]. *)

val attr_exn : t -> string -> string
(** @raise Not_found when absent. *)

val children : t -> t list
(** Child elements (text nodes skipped); [] on [Text]. *)

val find_all : t -> string -> t list
(** Child elements with the given tag name. *)

val tag : t -> string option

val escape : string -> string
(** Entity-escape text content (ampersand, angle brackets, quotes). *)

val error_to_string : error -> string

module Mfsa = Mfsa_model.Mfsa
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset
module Vec = Mfsa_util.Vec

type t = {
  z : Mfsa.t;
  (* STE i corresponds to MFSA transition i. *)
  successors : int array array;  (* STEs whose source is this STE's dst *)
  start_all : Bitset.t array;  (* FSAs that may push here at position 0 *)
  start_unanchored : Bitset.t array;  (* … at any position *)
  report : Bitset.t array;  (* FSAs final at the STE's destination *)
  by_symbol : int array array;  (* byte -> STEs whose symbol set has it *)
}

type match_event = { fsa : int; end_pos : int }

let of_mfsa (z : Mfsa.t) =
  let nt = Mfsa.n_transitions z in
  let by_src = Array.make z.Mfsa.n_states [] in
  for e = nt - 1 downto 0 do
    by_src.(z.Mfsa.row.(e)) <- e :: by_src.(z.Mfsa.row.(e))
  done;
  let successors =
    Array.init nt (fun e -> Array.of_list by_src.(z.Mfsa.col.(e)))
  in
  let start_all =
    Array.init nt (fun e ->
        Bitset.inter z.Mfsa.bel.(e) z.Mfsa.init_sets.(z.Mfsa.row.(e)))
  in
  let start_unanchored =
    Array.init nt (fun e ->
        let s = Bitset.copy start_all.(e) in
        Array.iteri
          (fun j anchored -> if anchored && Bitset.mem s j then Bitset.remove s j)
          z.Mfsa.anchored_start;
        s)
  in
  let report =
    Array.init nt (fun e ->
        Bitset.inter z.Mfsa.bel.(e) z.Mfsa.final_sets.(z.Mfsa.col.(e)))
  in
  let by_symbol = Array.init 256 (fun _ -> Vec.create ()) in
  Array.iteri
    (fun e cls ->
      Charclass.iter (fun c -> Vec.push by_symbol.(Char.code c) e) cls)
    z.Mfsa.idx;
  {
    z;
    successors;
    start_all;
    start_unanchored;
    report;
    by_symbol = Array.map Vec.to_array by_symbol;
  }

let n_elements t = Array.length t.successors

let mfsa t = t.z

(* ---------------------------------------------------------- writer *)

let symbol_set cls =
  (* ANML symbol-set syntax: a bracket expression over hex escapes. *)
  let ranges = Charclass.to_ranges cls in
  let buf = Buffer.create 32 in
  Buffer.add_char buf '[';
  List.iter
    (fun (lo, hi) ->
      if lo = hi then Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code lo))
      else
        Buffer.add_string buf
          (Printf.sprintf "\\x%02x-\\x%02x" (Char.code lo) (Char.code hi)))
    ranges;
  Buffer.add_char buf ']';
  Buffer.contents buf

let to_anml t =
  let z = t.z in
  let nt = n_elements t in
  let elements =
    List.init nt (fun e ->
        let start =
          if not (Bitset.is_empty t.start_unanchored.(e)) then
            [ ("start", "all-input") ]
          else if not (Bitset.is_empty t.start_all.(e)) then
            [ ("start", "start-of-data") ]
          else []
        in
        let children =
          List.map
            (fun s ->
              Xml.Element
                ("activate-on-match", [ ("element", Printf.sprintf "ste%d" s) ], []))
            (Array.to_list t.successors.(e))
          @
          if Bitset.is_empty t.report.(e) then []
          else
            [
              Xml.Element
                ( "report-on-match",
                  [
                    ( "reportcode",
                      String.concat " "
                        (List.map string_of_int (Bitset.to_list t.report.(e))) );
                  ],
                  [] );
            ]
        in
        Xml.Element
          ( "state-transition-element",
            [
              ("id", Printf.sprintf "ste%d" e);
              ("symbol-set", symbol_set z.Mfsa.idx.(e));
              ( "belongs",
                String.concat " "
                  (List.map string_of_int (Bitset.to_list z.Mfsa.bel.(e))) );
            ]
            @ start,
            children ))
  in
  "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
  ^ Xml.to_string
      (Xml.Element
         ( "automata-network",
           [ ("name", "mfsa-homogeneous"); ("id", "mfsa") ],
           elements ))

(* -------------------------------------------------------- executor *)

(* STE semantics with the activation function: an STE fires on byte c
   when c is in its symbol set and it is either start-enabled or was
   activated by a predecessor STE that fired on the previous byte;
   its activation set is (inherited ∪ start) ∩ belongs. *)
let execute t input ~on_match =
  let z = t.z in
  let nt = n_elements t in
  let nf = z.Mfsa.n_fsas in
  (* Per-STE activation sets inherited from the previous cycle. *)
  let cur = Array.init nt (fun _ -> Bitset.create nf) in
  let cur_active = Array.make nt false in
  let nxt = Array.init nt (fun _ -> Bitset.create nf) in
  let nxt_active = Array.make nt false in
  let scratch = Bitset.create nf in
  let reported = Bitset.create nf in
  let cur = ref cur and nxt = ref nxt in
  let cur_active = ref cur_active and nxt_active = ref nxt_active in
  let len = String.length input in
  for i = 0 to len - 1 do
    let c = Char.code input.[i] in
    Bitset.clear reported;
    let enabled = t.by_symbol.(c) in
    for k = 0 to Array.length enabled - 1 do
      let e = enabled.(k) in
      let start = if i = 0 then t.start_all.(e) else t.start_unanchored.(e) in
      if !cur_active.(e) || not (Bitset.is_empty start) then begin
        Bitset.clear scratch;
        if !cur_active.(e) then ignore (Bitset.union_into ~dst:scratch !cur.(e));
        ignore (Bitset.union_into ~dst:scratch start);
        (* Inherited sets were intersected with bel at activation
           time; the start contribution is pre-intersected too, so
           only the bel mask for safety on the inherited part. *)
        Bitset.inter_into ~dst:scratch z.Mfsa.bel.(e);
        if not (Bitset.is_empty scratch) then begin
          (* Fire: report and activate successors. *)
          Bitset.iter
            (fun j ->
              if
                Bitset.mem t.report.(e) j
                && (not (Bitset.mem reported j))
                && ((not z.Mfsa.anchored_end.(j)) || i + 1 = len)
              then begin
                Bitset.add reported j;
                on_match j (i + 1)
              end)
            scratch;
          let succ = t.successors.(e) in
          for s = 0 to Array.length succ - 1 do
            let u = succ.(s) in
            (* Pre-intersect with the successor's belonging so dead
               activations are dropped eagerly. *)
            let contribution = Bitset.inter scratch z.Mfsa.bel.(u) in
            if not (Bitset.is_empty contribution) then begin
              if not !nxt_active.(u) then begin
                !nxt_active.(u) <- true;
                Bitset.clear !nxt.(u)
              end;
              ignore (Bitset.union_into ~dst:!nxt.(u) contribution)
            end
          done
        end
      end
    done;
    let tmp = !cur and tmp_a = !cur_active in
    cur := !nxt;
    cur_active := !nxt_active;
    nxt := tmp;
    nxt_active := tmp_a;
    Array.fill !nxt_active 0 nt false
  done

let run t input =
  let acc = ref [] in
  execute t input ~on_match:(fun fsa e -> acc := { fsa; end_pos = e } :: !acc);
  List.rev !acc

let count t input =
  let n = ref 0 in
  execute t input ~on_match:(fun _ _ -> incr n);
  !n

type t = Element of string * (string * string) list * t list | Text of string

type error = { line : int; col : int; message : string }

exception Xml_error of error

type cursor = { src : string; mutable i : int; mutable line : int; mutable col : int }

let fail cu fmt =
  Format.kasprintf
    (fun message -> raise (Xml_error { line = cu.line; col = cu.col; message }))
    fmt

let peek cu = if cu.i < String.length cu.src then Some cu.src.[cu.i] else None

let advance cu =
  (match peek cu with
  | Some '\n' ->
      cu.line <- cu.line + 1;
      cu.col <- 1
  | Some _ -> cu.col <- cu.col + 1
  | None -> ());
  cu.i <- cu.i + 1

let looking_at cu s =
  let n = String.length s in
  cu.i + n <= String.length cu.src && String.sub cu.src cu.i n = s

let skip cu n =
  for _ = 1 to n do
    advance cu
  done

let skip_ws cu =
  let rec go () =
    match peek cu with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cu;
        go ()
    | _ -> ()
  in
  go ()

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' -> true
  | _ -> false

let read_name cu =
  let start = cu.i in
  while (match peek cu with Some c -> is_name_char c | None -> false) do
    advance cu
  done;
  if cu.i = start then fail cu "expected a name";
  String.sub cu.src start (cu.i - start)

let decode_entity cu =
  (* Cursor sits on '&'. *)
  let start = cu.i in
  advance cu;
  let stop = ref None in
  while !stop = None do
    match peek cu with
    | Some ';' ->
        stop := Some cu.i;
        advance cu
    | Some _ when cu.i - start < 12 -> advance cu
    | _ -> fail cu "unterminated entity reference"
  done;
  let name = String.sub cu.src (start + 1) (Option.get !stop - start - 1) in
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ when String.length name > 2 && name.[0] = '#' && name.[1] = 'x' ->
      String.make 1
        (Char.chr (int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))))
  | _ when String.length name > 1 && name.[0] = '#' ->
      String.make 1
        (Char.chr (int_of_string (String.sub name 1 (String.length name - 1))))
  | _ -> fail cu "unknown entity &%s;" name

let read_attr_value cu =
  let quote =
    match peek cu with
    | Some (('"' | '\'') as q) ->
        advance cu;
        q
    | _ -> fail cu "expected a quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cu with
    | None -> fail cu "unterminated attribute value"
    | Some c when c = quote -> advance cu
    | Some '&' ->
        Buffer.add_string buf (decode_entity cu);
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance cu;
        go ()
  in
  go ();
  Buffer.contents buf

let skip_misc cu =
  (* Declarations and comments before/between elements. *)
  let rec go () =
    skip_ws cu;
    if looking_at cu "<?" then begin
      while not (looking_at cu "?>") do
        if peek cu = None then fail cu "unterminated declaration";
        advance cu
      done;
      skip cu 2;
      go ()
    end
    else if looking_at cu "<!--" then begin
      while not (looking_at cu "-->") do
        if peek cu = None then fail cu "unterminated comment";
        advance cu
      done;
      skip cu 3;
      go ()
    end
  in
  go ()

let rec parse_element cu =
  if peek cu <> Some '<' then fail cu "expected '<'";
  advance cu;
  let name = read_name cu in
  let rec attrs acc =
    skip_ws cu;
    match peek cu with
    | Some '/' | Some '>' -> List.rev acc
    | Some c when is_name_char c ->
        let key = read_name cu in
        skip_ws cu;
        (match peek cu with
        | Some '=' -> advance cu
        | _ -> fail cu "expected '=' after attribute name %s" key);
        skip_ws cu;
        let value = read_attr_value cu in
        attrs ((key, value) :: acc)
    | _ -> fail cu "malformed start tag for <%s>" name
  in
  let attributes = attrs [] in
  match peek cu with
  | Some '/' ->
      advance cu;
      (match peek cu with
      | Some '>' -> advance cu
      | _ -> fail cu "expected '>' after '/'");
      Element (name, attributes, [])
  | Some '>' ->
      advance cu;
      let children = parse_content cu name in
      Element (name, attributes, children)
  | _ -> fail cu "malformed start tag for <%s>" name

and parse_content cu parent =
  let items = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    let text = Buffer.contents buf in
    Buffer.clear buf;
    if String.trim text <> "" then items := Text text :: !items
  in
  let rec go () =
    match peek cu with
    | None -> fail cu "unterminated element <%s>" parent
    | Some '<' ->
        if looking_at cu "</" then begin
          flush_text ();
          skip cu 2;
          let name = read_name cu in
          if name <> parent then
            fail cu "mismatched closing tag </%s> for <%s>" name parent;
          skip_ws cu;
          match peek cu with
          | Some '>' -> advance cu
          | _ -> fail cu "malformed closing tag </%s>" name
        end
        else if looking_at cu "<!--" then begin
          while not (looking_at cu "-->") do
            if peek cu = None then fail cu "unterminated comment";
            advance cu
          done;
          skip cu 3;
          go ()
        end
        else begin
          flush_text ();
          items := parse_element cu :: !items;
          go ()
        end
    | Some '&' ->
        Buffer.add_string buf (decode_entity cu);
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance cu;
        go ()
  in
  go ();
  List.rev !items

let parse_exn src =
  let cu = { src; i = 0; line = 1; col = 1 } in
  skip_misc cu;
  let root = parse_element cu in
  skip_misc cu;
  (match peek cu with
  | None -> ()
  | Some _ -> fail cu "trailing content after the root element");
  root

let parse src =
  match parse_exn src with
  | t -> Ok t
  | exception Xml_error e -> Error e

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c when Char.code c < 32 && c <> '\n' && c <> '\t' ->
          Buffer.add_string buf (Printf.sprintf "&#x%02x;" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = true) t =
  let buf = Buffer.create 1024 in
  let rec go depth t =
    let pad = if indent then String.make (2 * depth) ' ' else "" in
    match t with
    | Text s -> Buffer.add_string buf (pad ^ escape s ^ if indent then "\n" else "")
    | Element (name, attrs, children) ->
        Buffer.add_string buf (pad ^ "<" ^ name);
        List.iter
          (fun (k, v) -> Buffer.add_string buf (" " ^ k ^ "=\"" ^ escape v ^ "\""))
          attrs;
        if children = [] then
          Buffer.add_string buf ("/>" ^ if indent then "\n" else "")
        else begin
          Buffer.add_string buf (">" ^ if indent then "\n" else "");
          List.iter (go (depth + 1)) children;
          Buffer.add_string buf (pad ^ "</" ^ name ^ ">" ^ if indent then "\n" else "")
        end
  in
  go 0 t;
  Buffer.contents buf

let attr t key =
  match t with
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ -> None

let attr_exn t key =
  match attr t key with Some v -> v | None -> raise Not_found

let children = function
  | Element (_, _, kids) ->
      List.filter (function Element _ -> true | Text _ -> false) kids
  | Text _ -> []

let find_all t name =
  List.filter
    (function Element (n, _, _) -> n = name | Text _ -> false)
    (children t)

let tag = function Element (n, _, _) -> Some n | Text _ -> None

let error_to_string { line; col; message } =
  Printf.sprintf "line %d, column %d: %s" line col message

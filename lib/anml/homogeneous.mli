(** Homogeneous automata — real ANML's State Transition Elements.

    The ANML standard the paper lowers to (§IV-E) describes
    {e homogeneous} automata, the Micron Automata Processor model used
    by ANMLZoo: computation elements are STEs, each carrying a symbol
    set, an activation list (its successor STEs), a start attribute
    and a report attribute; all incoming connections of an STE match
    the same symbol set. Transition-labelled automata are converted by
    making one STE per transition: the STE for [q1 --C--> q2] holds
    symbol set [C], activates every STE whose transition leaves [q2],
    starts if [q1] is initial, and reports if [q2] is final.

    For MFSAs the conversion carries the paper's extension: each STE
    keeps its transition's belonging vector, the start attribute
    becomes the per-FSA set that may push at the source state
    (Equation 4) and the report attribute the per-FSA set final at
    the destination (Equation 5). The module includes an STE-level
    executor implementing the activation function on the homogeneous
    form; the property suite checks it produces exactly the iMFAnt
    matches, and {!to_anml} renders the network in standard ANML
    syntax ([<state-transition-element>], [<activate-on-match>],
    [<report-on-match>]) plus the [belongs] extension attribute. *)

type t

type match_event = { fsa : int; end_pos : int }

val of_mfsa : Mfsa_model.Mfsa.t -> t
(** One STE per MFSA transition. *)

val n_elements : t -> int
(** STE count = MFSA transition count. *)

val mfsa : t -> Mfsa_model.Mfsa.t

val to_anml : t -> string
(** Standard-ANML rendering of the network ([<automata-network>] of
    [<state-transition-element>]s). This is a {e write-only} view for
    AP-style toolchains; the library's loadable format remains
    {!Anml}. *)

val run : t -> string -> match_event list
(** Execute on the homogeneous form (STE activation semantics with
    the per-STE activation function). Specified to agree exactly with
    {!Mfsa_engine.Imfant.run} on the source MFSA. *)

val count : t -> string -> int

module Mfsa = Mfsa_model.Mfsa
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset

let symbols_to_string cls =
  Charclass.to_ranges cls
  |> List.map (fun (lo, hi) ->
         if lo = hi then Printf.sprintf "%02x" (Char.code lo)
         else Printf.sprintf "%02x-%02x" (Char.code lo) (Char.code hi))
  |> String.concat ","

let symbols_of_string s =
  let parse_byte part =
    if String.length part <> 2 then
      invalid_arg ("Anml.symbols_of_string: bad byte " ^ part)
    else
      match int_of_string_opt ("0x" ^ part) with
      | Some v when v >= 0 && v <= 255 -> Char.chr v
      | _ -> invalid_arg ("Anml.symbols_of_string: bad byte " ^ part)
  in
  if String.trim s = "" then
    invalid_arg "Anml.symbols_of_string: empty symbol set"
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           match String.index_opt part '-' with
           | Some i ->
               let lo = parse_byte (String.sub part 0 i) in
               let hi =
                 parse_byte (String.sub part (i + 1) (String.length part - i - 1))
               in
               if hi < lo then
                 invalid_arg ("Anml.symbols_of_string: reversed range " ^ part);
               (lo, hi)
           | None ->
               let b = parse_byte part in
               (b, b))
    |> Charclass.of_ranges

let ids_to_string set = String.concat " " (List.map string_of_int (Bitset.to_list set))

let ids_of_string ~n s =
  String.split_on_char ' ' (String.trim s)
  |> List.filter (fun x -> x <> "")
  |> List.map (fun x ->
         match int_of_string_opt x with
         | Some v -> v
         | None -> invalid_arg ("Anml: bad identifier " ^ x))
  |> Bitset.of_list n

let mfsa_to_xml (z : Mfsa.t) =
  let fsas =
    List.init z.Mfsa.n_fsas (fun j ->
        Xml.Element
          ( "fsa",
            [
              ("id", string_of_int j);
              ("initial", string_of_int z.Mfsa.init_of.(j));
              ("pattern", z.Mfsa.patterns.(j));
              ("anchored-start", string_of_bool z.Mfsa.anchored_start.(j));
              ("anchored-end", string_of_bool z.Mfsa.anchored_end.(j));
            ],
            [] ))
  in
  let finals =
    List.filter_map
      (fun q ->
        if Bitset.is_empty z.Mfsa.final_sets.(q) then None
        else
          Some
            (Xml.Element
               ( "final",
                 [
                   ("state", string_of_int q);
                   ("fsas", ids_to_string z.Mfsa.final_sets.(q));
                 ],
                 [] )))
      (List.init z.Mfsa.n_states Fun.id)
  in
  let transitions =
    List.init (Mfsa.n_transitions z) (fun t ->
        Xml.Element
          ( "transition",
            [
              ("from", string_of_int z.Mfsa.row.(t));
              ("to", string_of_int z.Mfsa.col.(t));
              ("symbols", symbols_to_string z.Mfsa.idx.(t));
              ("belongs", ids_to_string z.Mfsa.bel.(t));
            ],
            [] ))
  in
  Xml.Element
    ( "mfsa",
      [
        ("states", string_of_int z.Mfsa.n_states);
        ("fsas", string_of_int z.Mfsa.n_fsas);
      ],
      fsas @ finals @ transitions )

let attr_or_fail el key ctx =
  match Xml.attr el key with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Anml: missing %s on <%s>" key ctx)

let int_attr el key ctx =
  match int_of_string_opt (attr_or_fail el key ctx) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Anml: non-integer %s on <%s>" key ctx)

let bool_attr el key ctx =
  match bool_of_string_opt (attr_or_fail el key ctx) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Anml: non-boolean %s on <%s>" key ctx)

let mfsa_of_xml_exn el =
  (match Xml.tag el with
  | Some "mfsa" -> ()
  | _ -> invalid_arg "Anml: expected an <mfsa> element");
  let n_states = int_attr el "states" "mfsa" in
  let n_fsas = int_attr el "fsas" "mfsa" in
  let init_of = Array.make (max n_fsas 1) (-1) in
  let anchored_start = Array.make (max n_fsas 1) false in
  let anchored_end = Array.make (max n_fsas 1) false in
  let patterns = Array.make (max n_fsas 1) "" in
  List.iter
    (fun f ->
      let j = int_attr f "id" "fsa" in
      if j < 0 || j >= n_fsas then invalid_arg "Anml: fsa id out of range";
      init_of.(j) <- int_attr f "initial" "fsa";
      patterns.(j) <- attr_or_fail f "pattern" "fsa";
      anchored_start.(j) <- bool_attr f "anchored-start" "fsa";
      anchored_end.(j) <- bool_attr f "anchored-end" "fsa")
    (Xml.find_all el "fsa");
  let final_sets = Array.init (max n_states 1) (fun _ -> Bitset.create n_fsas) in
  List.iter
    (fun f ->
      let q = int_attr f "state" "final" in
      if q < 0 || q >= n_states then invalid_arg "Anml: final state out of range";
      ignore
        (Bitset.union_into ~dst:final_sets.(q)
           (ids_of_string ~n:n_fsas (attr_or_fail f "fsas" "final"))))
    (Xml.find_all el "final");
  let trs = Xml.find_all el "transition" in
  let nt = List.length trs in
  let row = Array.make (max nt 1) 0 in
  let col = Array.make (max nt 1) 0 in
  let idx = Array.make (max nt 1) Charclass.empty in
  let bel = Array.make (max nt 1) (Bitset.create n_fsas) in
  List.iteri
    (fun i tr ->
      row.(i) <- int_attr tr "from" "transition";
      col.(i) <- int_attr tr "to" "transition";
      idx.(i) <- symbols_of_string (attr_or_fail tr "symbols" "transition");
      bel.(i) <- ids_of_string ~n:n_fsas (attr_or_fail tr "belongs" "transition"))
    trs;
  Mfsa.of_arrays ~n_states ~n_fsas ~row:(Array.sub row 0 nt)
    ~col:(Array.sub col 0 nt) ~idx:(Array.sub idx 0 nt)
    ~bel:(Array.sub bel 0 nt) ~init_of ~final_sets ~anchored_start
    ~anchored_end ~patterns

let mfsa_of_xml el =
  match mfsa_of_xml_exn el with
  | z -> Ok z
  | exception Invalid_argument msg -> Error msg

let write ?(name = "mfsa-ruleset") mfsas =
  let root =
    Xml.Element
      ( "automata-network",
        [ ("name", name); ("mfsa-count", string_of_int (List.length mfsas)) ],
        List.map mfsa_to_xml mfsas )
  in
  "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" ^ Xml.to_string root

let read src =
  match Xml.parse src with
  | Error e -> Error (Xml.error_to_string e)
  | Ok root -> (
      match Xml.tag root with
      | Some "automata-network" -> (
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | el :: rest -> (
                match mfsa_of_xml el with
                | Ok z -> go (z :: acc) rest
                | Error msg -> Error msg)
          in
          try go [] (Xml.find_all root "mfsa")
          with Invalid_argument msg -> Error msg)
      | _ -> Error "Anml.read: expected an <automata-network> root")

let write_file ?name path mfsas =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write ?name mfsas))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | src -> read src
  | exception Sys_error msg -> Error msg

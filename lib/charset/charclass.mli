(** Character classes over the fixed 256-byte alphabet.

    iNFAnt/iMFAnt work on the standard 256-character alphabet (paper
    §V), and the middle-end fuses parallel arcs into character-class
    transitions (paper §IV-C, Fig. 5b). A [t] is an immutable set of
    bytes with full boolean algebra, plus the POSIX-bracket primitives
    the front-end needs ([\[:alpha:\]], ranges, negation). *)

type t

val empty : t
val full : t

val singleton : char -> t

val range : char -> char -> t
(** [range lo hi] contains every byte in [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val of_list : char list -> t
val of_string : string -> t
(** Set of the bytes occurring in the string. *)

val add : t -> char -> t
val remove : t -> char -> t
val mem : t -> char -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

val is_empty : t -> bool
val is_full : t -> bool
val is_singleton : t -> char option
(** [Some c] iff the class contains exactly [c]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val cardinal : t -> int
val subset : t -> t -> bool
val disjoint : t -> t -> bool

val iter : (char -> unit) -> t -> unit
val fold : (char -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> char list
val choose : t -> char option
(** Smallest member, if any. *)

val to_ranges : t -> (char * char) list
(** Maximal runs of consecutive members, in increasing order; the
    canonical form used by the ANML back-end and pretty-printer. *)

val of_ranges : (char * char) list -> t

(** Named POSIX bracket classes, as required by POSIX ERE (paper
    §IV-A). *)

val posix : string -> t option
(** [posix "alpha"] etc. Recognises alnum, alpha, blank, cntrl, digit,
    graph, lower, print, punct, space, upper, xdigit. [None] for
    unknown names. *)

val dot : t
(** The class matched by ['.'] in a RE: every byte except newline. *)

val partition : t list -> bytes * int
(** [partition cls] is the coarsest partition of the 256-byte alphabet
    such that every class in [cls] is a union of partition blocks:
    two bytes land in the same block iff they agree on membership in
    every listed class. Returns [(class_of_byte, n_classes)] where
    [class_of_byte] is a 256-entry map from byte value to block id in
    [0, n_classes); ids are assigned in increasing byte order (byte 0
    is always block 0). This is the RE2/Hyperscan byte-class reduction
    the engines use to shrink their transition tables. *)

val pp : Format.formatter -> t -> unit
(** Renders as a bracket expression, e.g. [\[a-ck\]]; single characters
    render bare; [full] renders as [.]-style [\[\\x00-\\xff\]]. *)

val to_spec : t -> string
(** [Format.asprintf "%a" pp]. *)

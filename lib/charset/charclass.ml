(* A class is an immutable 256-bit vector stored as a 32-byte string:
   bit [c] of the vector (byte [c/8], bit [c mod 8]) tells whether byte
   [c] is in the class. Strings give structural equality/compare/hash
   for free and O(1) membership, which is what the engines need. *)

type t = string

let width = 32

let empty = String.make width '\000'
let full = String.make width '\255'

let mem t c =
  let i = Char.code c in
  Char.code t.[i lsr 3] land (1 lsl (i land 7)) <> 0

let map2 op a b =
  String.init width (fun i -> Char.chr (op (Char.code a.[i]) (Char.code b.[i]) land 0xff))

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b
let complement a = map2 (fun x _ -> lnot x land 0xff) a empty

let set_bit bytes c =
  let i = Char.code c in
  Bytes.set bytes (i lsr 3)
    (Char.chr (Char.code (Bytes.get bytes (i lsr 3)) lor (1 lsl (i land 7))))

let singleton c =
  let b = Bytes.make width '\000' in
  set_bit b c;
  Bytes.unsafe_to_string b

let range lo hi =
  if hi < lo then invalid_arg "Charclass.range: hi < lo";
  let b = Bytes.make width '\000' in
  for i = Char.code lo to Char.code hi do
    set_bit b (Char.chr i)
  done;
  Bytes.unsafe_to_string b

let of_list cs =
  let b = Bytes.make width '\000' in
  List.iter (set_bit b) cs;
  Bytes.unsafe_to_string b

let of_string s =
  let b = Bytes.make width '\000' in
  String.iter (set_bit b) s;
  Bytes.unsafe_to_string b

let add t c = union t (singleton c)
let remove t c = diff t (singleton c)

let is_empty t = String.equal t empty
let is_full t = String.equal t full

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash

let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b land (b - 1)) (acc + 1) in
  go b 0

let cardinal t =
  let acc = ref 0 in
  String.iter (fun b -> acc := !acc + popcount_byte (Char.code b)) t;
  !acc

let is_singleton t =
  if cardinal t <> 1 then None
  else
    let found = ref '\000' in
    for i = 0 to 255 do
      if mem t (Char.chr i) then found := Char.chr i
    done;
    Some !found

let subset a b = String.equal (diff a b) empty

let disjoint a b = is_empty (inter a b)

let iter f t =
  for i = 0 to 255 do
    let c = Char.chr i in
    if mem t c then f c
  done

let fold f t init =
  let acc = ref init in
  iter (fun c -> acc := f c !acc) t;
  !acc

let to_list t = List.rev (fold (fun c acc -> c :: acc) t [])

let choose t =
  let exception Found of char in
  try
    iter (fun c -> raise (Found c)) t;
    None
  with Found c -> Some c

let to_ranges t =
  let ranges = ref [] in
  let start = ref None in
  for i = 0 to 255 do
    let here = mem t (Char.chr i) in
    match (!start, here) with
    | None, true -> start := Some i
    | Some s, false ->
        ranges := (Char.chr s, Char.chr (i - 1)) :: !ranges;
        start := None
    | _ -> ()
  done;
  (match !start with
  | Some s -> ranges := (Char.chr s, Char.chr 255) :: !ranges
  | None -> ());
  List.rev !ranges

let of_ranges rs = List.fold_left (fun acc (lo, hi) -> union acc (range lo hi)) empty rs

let posix name =
  let r lo hi = range lo hi in
  match name with
  | "alnum" -> Some (union (r 'a' 'z') (union (r 'A' 'Z') (r '0' '9')))
  | "alpha" -> Some (union (r 'a' 'z') (r 'A' 'Z'))
  | "blank" -> Some (of_list [ ' '; '\t' ])
  | "cntrl" -> Some (union (r '\000' '\031') (singleton '\127'))
  | "digit" -> Some (r '0' '9')
  | "graph" -> Some (r '!' '~')
  | "lower" -> Some (r 'a' 'z')
  | "print" -> Some (r ' ' '~')
  | "punct" ->
      Some
        (diff (r '!' '~') (union (r 'a' 'z') (union (r 'A' 'Z') (r '0' '9'))))
  | "space" -> Some (of_list [ ' '; '\t'; '\n'; '\011'; '\012'; '\r' ])
  | "upper" -> Some (r 'A' 'Z')
  | "xdigit" -> Some (union (r '0' '9') (union (r 'a' 'f') (r 'A' 'F')))
  | _ -> None

let dot = remove full '\n'

let partition classes =
  (* Two bytes are equivalent iff they agree on membership in every
     listed class; the signature of a byte is its membership bit
     vector over the distinct classes. Duplicate classes are deduped
     first so the signature width tracks the number of distinct
     labels, not the transition count. *)
  let uniq = Hashtbl.create 16 in
  List.iter
    (fun c -> if not (Hashtbl.mem uniq c) then Hashtbl.add uniq c (Hashtbl.length uniq))
    classes;
  let n = Hashtbl.length uniq in
  let sig_width = (n + 7) lsr 3 in
  let sigs = Array.init 256 (fun _ -> Bytes.make sig_width '\000') in
  Hashtbl.iter
    (fun cls id ->
      iter
        (fun c ->
          let s = sigs.(Char.code c) in
          Bytes.set s (id lsr 3)
            (Char.chr (Char.code (Bytes.get s (id lsr 3)) lor (1 lsl (id land 7)))))
        cls)
    uniq;
  (* Class ids are assigned in byte order, so byte 0 always lands in
     class 0 and the mapping is deterministic for a given input. *)
  let ids = Hashtbl.create 64 in
  let class_of = Bytes.make 256 '\000' in
  for c = 0 to 255 do
    let s = Bytes.unsafe_to_string sigs.(c) in
    let id =
      match Hashtbl.find_opt ids s with
      | Some id -> id
      | None ->
          let id = Hashtbl.length ids in
          Hashtbl.add ids s id;
          id
    in
    Bytes.set class_of c (Char.chr id)
  done;
  (class_of, Hashtbl.length ids)

let pp_char fmt c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ' ' -> Format.pp_print_char fmt c
  | '-' | ']' | '\\' | '^' -> Format.fprintf fmt "\\%c" c
  | c when Char.code c >= 33 && Char.code c <= 126 -> Format.pp_print_char fmt c
  | c -> Format.fprintf fmt "\\x%02x" (Char.code c)

let pp fmt t =
  match is_singleton t with
  | Some c -> pp_char fmt c
  | None ->
      Format.fprintf fmt "[";
      List.iter
        (fun (lo, hi) ->
          if lo = hi then pp_char fmt lo
          else if Char.code hi = Char.code lo + 1 then
            Format.fprintf fmt "%a%a" pp_char lo pp_char hi
          else Format.fprintf fmt "%a-%a" pp_char lo pp_char hi)
        (to_ranges t);
      Format.fprintf fmt "]"

let to_spec t = Format.asprintf "%a" pp t

(** Similarity-driven grouping of rules before merging — the paper's
    second future-work direction (§VIII: "a systematic similarity RE
    analysis for possible clustering techniques").

    The paper's evaluation samples the M rules of each MFSA
    {e sequentially} from the dataset. Since merging exploits
    morphological similarity, grouping mutually-similar rules should
    compress better at the same merging factor. This module provides
    a greedy agglomerative grouping by normalised INDEL similarity
    (the Fig. 1 metric): repeatedly seed a group with the first
    unassigned rule and fill it with the most similar remaining rules
    until the group reaches M. The benchmark harness evaluates it as
    an ablation against sequential sampling. *)

val group : m:int -> string array -> int list list
(** [group ~m patterns] partitions indices [0 .. n-1] into groups of
    (up to) [m], greedily by pairwise INDEL similarity of the pattern
    texts. [m = 0] (or [m >= n]) yields a single group; groups
    preserve no particular order beyond the greedy construction.
    @raise Invalid_argument if [m < 0] or [patterns] is empty. *)

val reorder : 'a array -> int list list -> 'a array * int list list
(** [reorder items groups] permutes [items] so that each group's
    members are contiguous and in group order, returning the permuted
    array together with the groups re-expressed over the new indices —
    ready for {!Mfsa_model.Merge.merge_groups}, which cuts consecutive
    windows. *)

val merge_clustered :
  m:int -> Mfsa_automata.Nfa.t array -> Mfsa_model.Mfsa.t list
(** Convenience: cluster by the automata's source patterns, reorder,
    and merge each group (equivalent to [Merge.merge] per group). *)

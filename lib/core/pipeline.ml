module Parser = Mfsa_frontend.Parser
module Ast = Mfsa_frontend.Ast
module Thompson = Mfsa_automata.Thompson
module Epsilon = Mfsa_automata.Epsilon
module Loops = Mfsa_automata.Loops
module Multiplicity = Mfsa_automata.Multiplicity
module Simplify = Mfsa_automata.Simplify
module Merge = Mfsa_model.Merge
module Anml = Mfsa_anml.Anml

let log_src = Logs.Src.create "mfsa.pipeline" ~doc:"MFSA compilation framework"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stage_times = {
  frontend : float;
  conversion : float;
  optimization : float;
  merging : float;
  backend : float;
}

let total t =
  t.frontend +. t.conversion +. t.optimization +. t.merging +. t.backend

type compiled = {
  rules : Ast.rule array;
  fsas : Mfsa_automata.Nfa.t array;
  mfsas : Mfsa_model.Mfsa.t list;
  merge_stats : Merge.stats;
  times : stage_times;
  anml : string;
}

type error = { rule_index : int; pattern : string; message : string }

let error_to_string { rule_index; pattern; message } =
  Printf.sprintf "rule %d (%s): %s" rule_index pattern message

exception Stop of error

let now () = Mfsa_util.Clock.now ()

let timed cell f =
  let t0 = now () in
  let r = f () in
  cell := !cell +. (now () -. t0);
  r

let rule_error i pattern = function
  | Parser.Parse_error { pos; message } ->
      { rule_index = i; pattern; message = Printf.sprintf "at offset %d: %s" pos message }
  | Invalid_argument message -> { rule_index = i; pattern; message }
  | e -> raise e

let compile_stages patterns =
  let fe = ref 0. and conv = ref 0. and opt = ref 0. in
  (* Front-end: lexical and syntactic analyses of every rule. *)
  let parse i pattern =
    match timed fe (fun () -> Parser.parse_exn pattern) with
    | rule -> rule
    | exception e -> raise (Stop (rule_error i pattern e))
  in
  let rules = Array.mapi parse patterns in
  (* Middle-end, per rule: loop expansion (optimisation), Thompson
     construction (conversion), ε-removal and multiplicity fusion
     (optimisation). *)
  let build i rule =
    match
      let expanded =
        timed opt (fun () -> Simplify.char_classes_rule (Loops.expand_rule rule))
      in
      let nfa = timed conv (fun () -> Thompson.build expanded) in
      timed opt (fun () -> Multiplicity.fuse (Epsilon.remove nfa))
    with
    | fsa -> fsa
    | exception e -> raise (Stop (rule_error i patterns.(i) e))
  in
  let fsas = Array.mapi build rules in
  (rules, fsas, !fe, !conv, !opt)

let build_fsas patterns =
  match compile_stages patterns with
  | _, fsas, _, _, _ -> Ok fsas
  | exception Stop e -> Error e

let build_fsa pattern =
  match build_fsas [| pattern |] with
  | Ok [| fsa |] -> Ok fsa
  | Ok _ -> assert false
  | Error e -> Error e

let compile ?strategy ?(m = 0) patterns =
  if Array.length patterns = 0 then
    Error { rule_index = 0; pattern = ""; message = "empty ruleset" }
  else
    match compile_stages patterns with
    | exception Stop e -> Error e
    | rules, fsas, fe, conv, opt ->
        let stats =
          ref
            {
              Merge.seeds = 0;
              chains = 0;
              merged_transitions = 0;
              merged_states = 0;
            }
        in
        let t0 = now () in
        let mfsas = Merge.merge_groups ?strategy ~stats ~m fsas in
        let merging = now () -. t0 in
        let t1 = now () in
        let anml = Anml.write mfsas in
        let backend = now () -. t1 in
        Log.info (fun l ->
            l
              "compiled %d rules into %d MFSA(s): FE %.3fms, AST->FSA %.3fms, \
               ME-single %.3fms, ME-merging %.3fms, BE %.3fms"
              (Array.length patterns) (List.length mfsas) (fe *. 1e3)
              (conv *. 1e3) (opt *. 1e3) (merging *. 1e3) (backend *. 1e3));
        Ok
          {
            rules;
            fsas;
            mfsas;
            merge_stats = !stats;
            times =
              {
                frontend = fe;
                conversion = conv;
                optimization = opt;
                merging;
                backend;
              };
            anml;
          }

let compile_exn ?strategy ?m patterns =
  match compile ?strategy ?m patterns with
  | Ok c -> c
  | Error e -> failwith (error_to_string e)

module Parser = Mfsa_frontend.Parser
module Ast = Mfsa_frontend.Ast
module Thompson = Mfsa_automata.Thompson
module Epsilon = Mfsa_automata.Epsilon
module Loops = Mfsa_automata.Loops
module Multiplicity = Mfsa_automata.Multiplicity
module Simplify = Mfsa_automata.Simplify
module Merge = Mfsa_model.Merge
module Anml = Mfsa_anml.Anml

let log_src = Logs.Src.create "mfsa.pipeline" ~doc:"MFSA compilation framework"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stage_times = {
  frontend : float;
  conversion : float;
  optimization : float;
  merging : float;
  backend : float;
}

let total t =
  t.frontend +. t.conversion +. t.optimization +. t.merging +. t.backend

type compiled = {
  rules : Ast.rule array;
  fsas : Mfsa_automata.Nfa.t array;
  mfsas : Mfsa_model.Mfsa.t list;
  merge_stats : Merge.stats;
  times : stage_times;
  anml : string;
}

type error = { rule_index : int; pattern : string; message : string }

let error_to_string { rule_index; pattern; message } =
  Printf.sprintf "rule %d (%s): %s" rule_index pattern message

exception Compile_error of error

let () =
  Printexc.register_printer (function
    | Compile_error e ->
        Some ("Mfsa_core.Pipeline.Compile_error: " ^ error_to_string e)
    | _ -> None)

exception Stop of error

let now () = Mfsa_util.Clock.now ()

let timed cell f =
  let t0 = now () in
  let r = f () in
  cell := !cell +. (now () -. t0);
  r

(* --------------------------------------------------- Stage tracing *)

(* One latency histogram per compile stage, in the process-wide
   registry: every compile — batch, or a single rule arriving through
   a Live update — adds one observation per stage, so production
   deployments see where compile time goes without the bench harness.
   The lumped stage_times quantities keep the paper's Fig. 8 grouping;
   the spans split the middle-end into its three passes. *)
let stage_span =
  let h stage =
    Mfsa_obs.Obs.histogram ~registry:Mfsa_obs.Obs.default
      ~help:"Compile-pipeline stage latency in seconds, per compile call"
      ~labels:[ ("stage", stage) ]
      "mfsa_compile_stage_seconds"
  in
  let frontend = h "frontend"
  and expansion = h "loop_expansion"
  and thompson = h "thompson"
  and epsilon = h "epsilon_removal"
  and multiplicity = h "multiplicity"
  and merge = h "merge"
  and emit = h "emit" in
  fun stage ->
    match stage with
    | `Frontend -> frontend
    | `Expansion -> expansion
    | `Thompson -> thompson
    | `Epsilon -> epsilon
    | `Multiplicity -> multiplicity
    | `Merge -> merge
    | `Emit -> emit

let compiles_total =
  Mfsa_obs.Obs.counter ~registry:Mfsa_obs.Obs.default
    ~help:"Successful pipeline compile calls" "mfsa_compile_total"

let compile_rules_total =
  Mfsa_obs.Obs.counter ~registry:Mfsa_obs.Obs.default
    ~help:"Rules successfully taken through the per-rule stages"
    "mfsa_compile_rules_total"

let compile_errors_total =
  Mfsa_obs.Obs.counter ~registry:Mfsa_obs.Obs.default
    ~help:"Compile calls rejected with a rule error"
    "mfsa_compile_errors_total"

let rule_error i pattern = function
  | Parser.Parse_error { pos; message } ->
      { rule_index = i; pattern; message = Printf.sprintf "at offset %d: %s" pos message }
  | Invalid_argument message -> { rule_index = i; pattern; message }
  | e -> raise e

let compile_stages patterns =
  let fe = ref 0.
  and exp = ref 0.
  and conv = ref 0.
  and eps = ref 0.
  and mult = ref 0. in
  (* Front-end: lexical and syntactic analyses of every rule. *)
  let parse i pattern =
    match timed fe (fun () -> Parser.parse_exn pattern) with
    | rule -> rule
    | exception e ->
        Mfsa_obs.Obs.inc compile_errors_total;
        raise (Stop (rule_error i pattern e))
  in
  let rules = Array.mapi parse patterns in
  (* Middle-end, per rule: loop expansion (optimisation), Thompson
     construction (conversion), ε-removal and multiplicity fusion
     (optimisation). *)
  let build i rule =
    match
      let expanded =
        timed exp (fun () -> Simplify.char_classes_rule (Loops.expand_rule rule))
      in
      let nfa = timed conv (fun () -> Thompson.build expanded) in
      let nfa = timed eps (fun () -> Epsilon.remove nfa) in
      timed mult (fun () -> Multiplicity.fuse nfa)
    with
    | fsa -> fsa
    | exception e ->
        Mfsa_obs.Obs.inc compile_errors_total;
        raise (Stop (rule_error i patterns.(i) e))
  in
  let fsas = Array.mapi build rules in
  Mfsa_obs.Obs.add compile_rules_total (Array.length patterns);
  Mfsa_obs.Obs.observe (stage_span `Frontend) !fe;
  Mfsa_obs.Obs.observe (stage_span `Expansion) !exp;
  Mfsa_obs.Obs.observe (stage_span `Thompson) !conv;
  Mfsa_obs.Obs.observe (stage_span `Epsilon) !eps;
  Mfsa_obs.Obs.observe (stage_span `Multiplicity) !mult;
  (rules, fsas, !fe, !conv, !exp +. !eps +. !mult)

let build_fsas patterns =
  match compile_stages patterns with
  | _, fsas, _, _, _ -> Ok fsas
  | exception Stop e -> Error e

let build_fsa pattern =
  match build_fsas [| pattern |] with
  | Ok [| fsa |] -> Ok fsa
  | Ok _ -> assert false
  | Error e -> Error e

let compile ?strategy ?(m = 0) patterns =
  if Array.length patterns = 0 then
    Error { rule_index = 0; pattern = ""; message = "empty ruleset" }
  else
    match compile_stages patterns with
    | exception Stop e -> Error e
    | rules, fsas, fe, conv, opt ->
        let stats =
          ref
            {
              Merge.seeds = 0;
              chains = 0;
              merged_transitions = 0;
              merged_states = 0;
            }
        in
        let t0 = now () in
        let mfsas = Merge.merge_groups ?strategy ~stats ~m fsas in
        let merging = now () -. t0 in
        let t1 = now () in
        let anml = Anml.write mfsas in
        let backend = now () -. t1 in
        Mfsa_obs.Obs.observe (stage_span `Merge) merging;
        Mfsa_obs.Obs.observe (stage_span `Emit) backend;
        Mfsa_obs.Obs.inc compiles_total;
        Log.info (fun l ->
            l
              "compiled %d rules into %d MFSA(s): FE %.3fms, AST->FSA %.3fms, \
               ME-single %.3fms, ME-merging %.3fms, BE %.3fms"
              (Array.length patterns) (List.length mfsas) (fe *. 1e3)
              (conv *. 1e3) (opt *. 1e3) (merging *. 1e3) (backend *. 1e3));
        Ok
          {
            rules;
            fsas;
            mfsas;
            merge_stats = !stats;
            times =
              {
                frontend = fe;
                conversion = conv;
                optimization = opt;
                merging;
                backend;
              };
            anml;
          }

let compile_exn ?strategy ?m patterns =
  match compile ?strategy ?m patterns with
  | Ok c -> c
  | Error e -> raise (Compile_error e)

(* Install the rule-compilation half of {!Mfsa_engine.Source}'s hook
   pair: any executable linked against this library can hand
   [Source.Rules]/[Rules_file] to [Registry.compile] and get the full
   pipeline, [Compile_error] propagation included. *)
let () = Mfsa_engine.Source.set_rule_compiler (fun patterns -> (compile_exn patterns).mfsas)

module Nfa = Mfsa_automata.Nfa
module Mfsa = Mfsa_model.Mfsa

type totals = { states : int; transitions : int }

let fsa_totals fsas =
  Array.fold_left
    (fun acc a ->
      {
        states = acc.states + a.Nfa.n_states;
        transitions = acc.transitions + Nfa.n_transitions a;
      })
    { states = 0; transitions = 0 }
    fsas

let mfsa_totals mfsas =
  List.fold_left
    (fun acc z ->
      {
        states = acc.states + z.Mfsa.n_states;
        transitions = acc.transitions + Mfsa.n_transitions z;
      })
    { states = 0; transitions = 0 }
    mfsas

let pct before after =
  if before = 0 then 0.
  else float_of_int (before - after) /. float_of_int before *. 100.

let compression ~before ~after =
  (pct before.states after.states, pct before.transitions after.transitions)

let throughput ~n_mfsa ~m ~data_size ~exe_time =
  if exe_time <= 0. then 0.
  else float_of_int (n_mfsa * m * data_size) /. exe_time

let geomean = function
  | [] -> 0.
  | xs ->
      List.iter
        (fun x -> if x <= 0. then invalid_arg "Report.geomean: non-positive entry")
        xs;
      let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
      exp (log_sum /. float_of_int (List.length xs))

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    let line =
      String.concat "  "
        (List.mapi
           (fun c w ->
             let cell = Option.value ~default:"" (List.nth_opt row c) in
             cell ^ String.make (max 0 (w - String.length cell)) ' ')
           widths)
    in
    (* Keep trailing alignment spaces off the line ends. *)
    let rec rstrip i = if i > 0 && line.[i - 1] = ' ' then rstrip (i - 1) else i in
    String.sub line 0 (rstrip (String.length line))
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
  ^ "\n"

let fmt_time s =
  if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let fmt_float x = Printf.sprintf "%.2f" x

(** The multi-level compilation framework (paper §IV, Fig. 4).

    Drives a ruleset through the five stages: front-end (lexical and
    syntactic analysis), AST-to-FSA conversion (Thompson-like
    construction), single-FSA middle-end optimisation (loop expansion,
    ε-removal, multiplicity fusion), MFSA merging with factor [M], and
    extended-ANML generation. Each stage's wall-clock time is recorded
    — the quantities broken down in the paper's Fig. 8.

    Every compile also feeds the process-wide metrics registry
    ({!Mfsa_obs.Obs.default}): one observation per stage in the
    [mfsa_compile_stage_seconds{stage=...}] latency histogram (stages
    [frontend], [loop_expansion], [thompson], [epsilon_removal],
    [multiplicity], [merge], [emit]) plus the [mfsa_compile_total],
    [mfsa_compile_rules_total] and [mfsa_compile_errors_total]
    counters — so live-update deployments see compile cost at run
    time, not only under the bench harness. *)

type stage_times = {
  frontend : float;  (** Lexing + parsing, seconds (Fig. 8 "FE"). *)
  conversion : float;  (** Thompson construction ("AST to FSA"). *)
  optimization : float;
      (** Loop expansion + ε-removal + multiplicity fusion
          ("ME-single"). *)
  merging : float;  (** Algorithm 1 over all groups ("ME-merging"). *)
  backend : float;  (** ANML generation ("BE"). *)
}

val total : stage_times -> float

type compiled = {
  rules : Mfsa_frontend.Ast.rule array;
  fsas : Mfsa_automata.Nfa.t array;  (** Optimised single FSAs. *)
  mfsas : Mfsa_model.Mfsa.t list;  (** ⌈N/M⌉ merged automata. *)
  merge_stats : Mfsa_model.Merge.stats;
  times : stage_times;
  anml : string;  (** The generated extended-ANML document. *)
}

type error = { rule_index : int; pattern : string; message : string }

val error_to_string : error -> string

exception Compile_error of error
(** The typed form of a rule rejection, raised by the [_exn] entry
    points here, in {!Mfsa_core.Ruleset} and in {!Mfsa_live.Live}.
    Serving layers match on it to reject an update while keeping the
    previous generation live; a printer is registered with
    {!Printexc}, so an uncaught one still names the rule. (These
    used to raise bare [Failure], which nothing upstream could
    distinguish from an internal error.) *)

val compile :
  ?strategy:Mfsa_model.Merge.strategy ->
  ?m:int ->
  string array ->
  (compiled, error) result
(** [compile ~m patterns] runs the whole framework. [m] is the merging
    factor (default 0 = merge the entire ruleset into one MFSA, the
    paper's "M = all"); [strategy] picks the merge seeding
    (default {!Mfsa_model.Merge.Greedy}). *)

val compile_exn :
  ?strategy:Mfsa_model.Merge.strategy -> ?m:int -> string array -> compiled
(** @raise Compile_error on a rejected rule. *)

val build_fsa : string -> (Mfsa_automata.Nfa.t, error) result
(** Single-rule convenience: front-end + conversion + single-FSA
    optimisation. *)

val build_fsas : string array -> (Mfsa_automata.Nfa.t array, error) result
(** The per-rule part of the pipeline (everything before merging). *)

(** High-level ruleset matching — the library's front door.

    Wraps the whole system for the common consumer: compile a ruleset
    once (choosing the merging factor and, optionally, the clustering
    and partial-CC-merging extensions), then match streams; matches
    are reported against the {e original rule indices} regardless of
    how rules were grouped and merged internally. Engines are compiled
    lazily once and reused across calls; multi-MFSA rulesets can be
    executed on a domain pool.

    {[
      let rs = Ruleset.compile_exn [| "GET /admin"; "\\.\\./\\.\\." |] in
      Ruleset.run rs payload
      |> List.iter (fun { Ruleset.rule; end_pos } -> ...)
    ]} *)

type t

type match_event = { rule : int;  (** Index into the compiled rules. *) end_pos : int }

val compile :
  ?m:int ->
  ?cluster:bool ->
  ?ccsplit:bool ->
  ?strategy:Mfsa_model.Merge.strategy ->
  string array ->
  (t, Pipeline.error) result
(** [compile rules] builds the matcher. [m] is the merging factor
    (default 0 = one MFSA for the whole ruleset); [cluster] (default
    false) groups rules by INDEL similarity instead of sequentially
    (paper §VIII); [ccsplit] (default false) enables partial
    character-class merging (paper §VI-A); [strategy] picks the merge
    seeding (default greedy). *)

val compile_exn :
  ?m:int ->
  ?cluster:bool ->
  ?ccsplit:bool ->
  ?strategy:Mfsa_model.Merge.strategy ->
  string array ->
  t
(** @raise Pipeline.Compile_error on the first offending rule. *)

val n_rules : t -> int

val patterns : t -> string array
(** The rules, in original order. *)

val n_mfsas : t -> int

val run : ?threads:int -> t -> string -> match_event list
(** All matches, ordered by end position (rule index within ties).
    [threads] (default 1) distributes the MFSAs over a domain pool —
    results are identical at any thread count. *)

val count_per_rule : ?threads:int -> t -> string -> int array
(** Match counts per original rule. *)

val count : ?threads:int -> t -> string -> int

val to_anml : t -> string
(** Serialise the compiled automata (extended ANML). Note the document
    stores the {e merged} ruleset: reloading with {!of_anml} recovers
    the same matcher, including the rule order. *)

val of_anml : string -> (t, string) result
(** Load a matcher from a document written by {!to_anml}. *)

(** {2 Streaming}

    Chunked matching with cross-boundary state, wrapping
    {!Mfsa_engine.Imfant.session} for every merged automaton and
    mapping matches back to original rule indices. *)

type session

val session : t -> session

val feed : session -> string -> match_event list
(** Consume a chunk; completed matches, with global stream offsets. *)

val finish : session -> match_event list
(** End of stream: pending matches of end-anchored rules. *)

val reset : session -> unit

val compression : t -> float * float
(** [(states %, transitions %)] the merge achieved over the rules'
    separate optimised FSAs. *)

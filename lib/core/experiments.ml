module Datasets = Mfsa_datasets.Datasets
module Stream_gen = Mfsa_datasets.Stream_gen
module Indel = Mfsa_util.Indel
module Nfa = Mfsa_automata.Nfa
module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Infant = Mfsa_engine.Infant
module Imfant = Mfsa_engine.Imfant
module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Schedule = Mfsa_engine.Schedule

type config = {
  scale : float;
  stream_kb : int;
  reps : int;
  merge_factors : int list;
  thread_counts : int list;
  hw_threads : int;
}

let paper_scale =
  {
    scale = 1.0;
    stream_kb = 1024;
    reps = 15;
    merge_factors = [ 2; 5; 10; 20; 50; 100; 0 ];
    thread_counts = [ 1; 2; 4; 8; 16; 32; 64; 128 ];
    hw_threads = 8;
  }

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let default () =
  {
    scale = env_float "MFSA_SCALE" 0.2;
    stream_kb = env_int "MFSA_STREAM_KB" 64;
    reps = env_int "MFSA_REPS" 3;
    merge_factors = [ 2; 5; 10; 20; 50; 0 ];
    thread_counts = [ 1; 2; 4; 8; 16; 32; 64; 128 ];
    hw_threads = env_int "MFSA_HW_THREADS" 8;
  }

let m_label m = if m = 0 then "all" else string_of_int m

let now () = Mfsa_util.Clock.now ()

(* Per-dataset compiled context, built once and shared by the
   experiments that need it. *)
type ctx = {
  ds : Datasets.t;
  fsas : Nfa.t array;
  stream : string;
}

let contexts cfg =
  List.map
    (fun ds ->
      let fsas =
        match Pipeline.build_fsas ds.Datasets.rules with
        | Ok fsas -> fsas
        | Error e ->
            failwith
              (Printf.sprintf "dataset %s failed to compile: %s" ds.Datasets.abbr
                 (Pipeline.error_to_string e))
      in
      let stream =
        Stream_gen.generate ~seed:ds.Datasets.seed
          ~payload:ds.Datasets.payload ~size:(cfg.stream_kb * 1024)
          ds.Datasets.rules
      in
      { ds; fsas; stream })
    (Datasets.all ~scale:cfg.scale ())

let header title = Printf.sprintf "== %s ==\n" title

(* ------------------------------------------------------------ Fig 1 *)

let fig1 cfg =
  let rows =
    List.map
      (fun ds ->
        let sim =
          Indel.average_pairwise_similarity ~sample:20_000 ~seed:1 ds.Datasets.rules
        in
        [ ds.Datasets.abbr; Printf.sprintf "%.3f" sim ])
      (Datasets.all ~scale:cfg.scale ())
  in
  header "Fig. 1: average normalised INDEL similarity per dataset"
  ^ Report.table ~header:[ "Dataset"; "Similarity [0,1]" ] rows

(* ---------------------------------------------------------- Table I *)

let table1 cfg =
  let rows =
    List.map
      (fun { ds; fsas; _ } ->
        let n = Array.length fsas in
        let t = Report.fsa_totals fsas in
        let _cc_count, cc_len =
          Array.fold_left
            (fun (c, l) a ->
              let c', l' = Nfa.cc_stats a in
              (c + c', l + l'))
            (0, 0) fsas
        in
        [
          ds.Datasets.name;
          ds.Datasets.abbr;
          string_of_int n;
          string_of_int t.Report.states;
          string_of_int t.Report.transitions;
          string_of_int cc_len;
          Printf.sprintf "%.2f" (float_of_int t.Report.states /. float_of_int n);
          Printf.sprintf "%.2f" (float_of_int t.Report.transitions /. float_of_int n);
        ])
      (contexts cfg)
  in
  header "Table I: dataset characteristics"
  ^ Report.table
      ~header:
        [ "Dataset"; "Abbr."; "Num. REs"; "Tot. Ns"; "Tot. Nt"; "Tot. Ncc";
          "Avg. Ns"; "Avg. Nt" ]
      rows

(* ------------------------------------------------------------ Fig 7 *)

let fig7 cfg =
  let ctxs = contexts cfg in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header "Fig. 7: state and transition compression % by merging factor");
  let rows =
    List.concat_map
      (fun { ds; fsas; _ } ->
        let before = Report.fsa_totals fsas in
        List.map
          (fun m ->
            let after = Report.mfsa_totals (Merge.merge_groups ~m fsas) in
            let cs, ct = Report.compression ~before ~after in
            [
              ds.Datasets.abbr; m_label m;
              Printf.sprintf "%.2f" cs; Printf.sprintf "%.2f" ct;
            ])
          cfg.merge_factors)
      ctxs
  in
  Buffer.add_string buf
    (Report.table ~header:[ "Dataset"; "M"; "States %"; "Transitions %" ] rows);
  (* The paper headlines the M=all averages (71.95% / 38.88%). *)
  let all_cs, all_ct =
    List.fold_left
      (fun (acs, act) { fsas; _ } ->
        let before = Report.fsa_totals fsas in
        let after = Report.mfsa_totals (Merge.merge_groups ~m:0 fsas) in
        let cs, ct = Report.compression ~before ~after in
        (cs :: acs, ct :: act))
      ([], []) ctxs
  in
  let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  Buffer.add_string buf
    (Printf.sprintf
       "Average at M=all: %.2f%% states, %.2f%% transitions (paper: 71.95%% / 38.88%%)\n"
       (avg all_cs) (avg all_ct));
  Buffer.contents buf

(* ------------------------------------------------------------ Fig 8 *)

let fig8 cfg =
  let rows =
    List.concat_map
      (fun ds ->
        List.map
          (fun m ->
            (* Average the stage times over the configured repetitions,
               recompiling from scratch each time as the paper does. *)
            let acc = ref { Pipeline.frontend = 0.; conversion = 0.; optimization = 0.; merging = 0.; backend = 0. } in
            for _ = 1 to cfg.reps do
              match Pipeline.compile ~m ds.Datasets.rules with
              | Ok c ->
                  let t = c.Pipeline.times in
                  acc :=
                    {
                      Pipeline.frontend = !acc.Pipeline.frontend +. t.Pipeline.frontend;
                      conversion = !acc.Pipeline.conversion +. t.Pipeline.conversion;
                      optimization = !acc.Pipeline.optimization +. t.Pipeline.optimization;
                      merging = !acc.Pipeline.merging +. t.Pipeline.merging;
                      backend = !acc.Pipeline.backend +. t.Pipeline.backend;
                    }
              | Error e -> raise (Pipeline.Compile_error e)
            done;
            let r = float_of_int cfg.reps in
            let avg x = x /. r in
            [
              ds.Datasets.abbr; m_label m;
              Report.fmt_time (avg !acc.Pipeline.frontend);
              Report.fmt_time (avg !acc.Pipeline.conversion);
              Report.fmt_time (avg !acc.Pipeline.optimization);
              Report.fmt_time (avg !acc.Pipeline.merging);
              Report.fmt_time (avg !acc.Pipeline.backend);
              Report.fmt_time
                (avg
                   (!acc.Pipeline.frontend +. !acc.Pipeline.conversion
                   +. !acc.Pipeline.optimization +. !acc.Pipeline.merging
                   +. !acc.Pipeline.backend));
            ])
          cfg.merge_factors)
      (Datasets.all ~scale:cfg.scale ())
  in
  header
    (Printf.sprintf "Fig. 8: compilation stage times (average of %d reps)" cfg.reps)
  ^ Report.table
      ~header:[ "Dataset"; "M"; "FE"; "AST to FSA"; "ME-single"; "ME-merging"; "BE"; "Total" ]
      rows

(* --------------------------------------------------------- Table II *)

let table2 cfg =
  let rows =
    List.map
      (fun { ds; fsas; stream } ->
        let z =
          match Merge.merge_groups ~m:0 fsas with
          | [ z ] -> z
          | _ -> assert false
        in
        let eng = Imfant.compile z in
        let _, stats = Imfant.run_with_stats eng stream in
        [
          ds.Datasets.abbr;
          Printf.sprintf "%.2f" stats.Imfant.avg_active;
          string_of_int stats.Imfant.max_active;
        ])
      (contexts cfg)
  in
  header "Table II: active FSAs during MFSA traversal (M = all)"
  ^ Report.table ~header:[ "Abbr."; "Avg. Nact"; "Max Nact" ] rows

(* ------------------------------------------------- Fig 9 machinery *)

(* Measure one engine run, averaged over reps. *)
let time_runs reps f =
  let total = ref 0. in
  for _ = 1 to reps do
    let t0 = now () in
    f ();
    total := !total +. (now () -. t0)
  done;
  !total /. float_of_int (max 1 reps)

(* Best-of-N: the minimum over the reps. Robust against GC and
   scheduler jitter, which matters when two engines within a few
   percent of each other are being ranked (the planner gate). *)
let best_of_runs reps f =
  let best = ref infinity in
  for _ = 1 to max 1 reps do
    let t0 = now () in
    f ();
    let t = now () -. t0 in
    if t < !best then best := t
  done;
  !best

(* Per-automaton single-thread execution times for a given merging
   factor; M = 1 uses the iNFAnt baseline engine on the plain FSAs,
   matching the paper's single-FSA configuration. *)
let automaton_times cfg ~m { fsas; stream; _ } =
  if m = 1 then
    Array.to_list fsas
    |> List.map (fun a ->
           let eng = Infant.compile a in
           time_runs cfg.reps (fun () -> ignore (Infant.count eng stream)))
  else
    Merge.merge_groups ~m fsas
    |> List.map (fun z ->
           let eng = Imfant.compile z in
           time_runs cfg.reps (fun () -> ignore (Imfant.count eng stream)))

let fig9 cfg =
  let ctxs = contexts cfg in
  let ms = 1 :: cfg.merge_factors in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header
       (Printf.sprintf
          "Fig. 9: single-thread execution time and throughput vs M (%d KiB stream, %d reps)"
          cfg.stream_kb cfg.reps));
  let best_improvements = ref [] in
  let rows =
    List.concat_map
      (fun ctx ->
        let n_rules = Array.length ctx.fsas in
        let data_size = String.length ctx.stream in
        let baseline = ref 0. in
        let best = ref 0. in
        let rows =
          List.map
            (fun m ->
              let times = automaton_times cfg ~m ctx in
              let total = List.fold_left ( +. ) 0. times in
              if m = 1 then baseline := total;
              let th =
                Report.throughput ~n_mfsa:1 ~m:n_rules ~data_size ~exe_time:total
              in
              let improvement = if m = 1 then 1.0 else !baseline /. total in
              if improvement > !best then best := improvement;
              [
                ctx.ds.Datasets.abbr; m_label m;
                Report.fmt_time total;
                Printf.sprintf "%.1f MB/s of RE-work" (th /. 1e6);
                Printf.sprintf "%.2fx" improvement;
              ])
            ms
        in
        best_improvements := !best :: !best_improvements;
        rows)
      ctxs
  in
  Buffer.add_string buf
    (Report.table
       ~header:[ "Dataset"; "M"; "Exec time"; "Throughput (Eq. 11)"; "vs M=1" ]
       rows);
  Buffer.add_string buf
    (Printf.sprintf
       "Geomean of best per-dataset improvement: %.2fx (paper: 5.99x)\n"
       (Report.geomean !best_improvements));
  Buffer.contents buf

(* ----------------------------------------------------------- Fig 10 *)

let fig10 cfg =
  let ctxs = contexts cfg in
  (* Fig. 10 studies how merging redistributes work across threads, so
     the number of MFSAs per ruleset (⌈N/M⌉) is the quantity to
     preserve: at reduced ruleset scale the paper's absolute M values
     would collapse every configuration to a single group. Scale M by
     the ruleset scale (labelled "50→10" below) to keep the group
     structure the paper measures. *)
  let eff m =
    if m = 0 || cfg.scale >= 1.0 then m
    else max 2 (int_of_float (Float.round (float_of_int m *. cfg.scale)))
  in
  let label m =
    if m = 0 || cfg.scale >= 1.0 then m_label m
    else Printf.sprintf "%s>%s" (m_label m) (m_label (eff m))
  in
  let ms = 1 :: cfg.merge_factors in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (header
       "Fig. 10: multi-thread scaling (greedy-scheduler projection from measured per-automaton times)");
  Buffer.add_string buf
    (Printf.sprintf
       "Note: this host exposes a single core; per-automaton times are measured\n\
        for real and the T-thread makespan is projected by replaying the pool's\n\
        greedy in-order scheduler (DESIGN.md substitution 3). As on the\n\
        paper's i7-6700, scaling saturates at the modelled hardware limit of\n\
        %d threads.\n\n" cfg.hw_threads);
  let speedups = ref [] in
  List.iter
    (fun ctx ->
      let times_by_m =
        List.map
          (fun m ->
            let m' = if m = 1 then 1 else eff m in
            (m, Array.of_list (automaton_times cfg ~m:m' ctx)))
          ms
      in
      let rows =
        List.map
          (fun (m, times) ->
            (if m = 1 then "1" else label m)
            :: List.map
                 (fun t ->
                   Report.fmt_time
                     (Schedule.project ~threads:(min t cfg.hw_threads) times))
                 cfg.thread_counts)
          times_by_m
      in
      Buffer.add_string buf (Printf.sprintf "--- %s ---\n" ctx.ds.Datasets.abbr);
      Buffer.add_string buf
        (Report.table
           ~header:("M \\ T" :: List.map string_of_int cfg.thread_counts)
           rows);
      (* Markers: best multi-threaded single-FSA vs best MFSA config. *)
      let best_over_t times =
        List.fold_left
          (fun acc t ->
            min acc (Schedule.project ~threads:(min t cfg.hw_threads) times))
          infinity cfg.thread_counts
      in
      let m1_times = List.assoc 1 times_by_m in
      let best_m1 = best_over_t m1_times in
      let best_mfsa, best_m =
        List.fold_left
          (fun (best, bm) (m, times) ->
            if m = 1 then (best, bm)
            else
              let v = best_over_t times in
              if v < best then (v, m) else (best, bm))
          (infinity, 1) times_by_m
      in
      let speedup = best_m1 /. best_mfsa in
      speedups := speedup :: !speedups;
      (* Best thread utilisation: least threads for an MFSA config to
         reach the top single-FSA performance. *)
      let best_util =
        List.fold_left
          (fun acc (m, times) ->
            if m = 1 then acc
            else
              let t = Schedule.best_threads_within ~tolerance:0.05 ~target:best_m1 times in
              if Schedule.project ~threads:t times <= best_m1 *. 1.05 then
                match acc with
                | Some (t', _) when t' <= t -> acc
                | _ -> Some (t, m)
              else acc)
          None times_by_m
      in
      Buffer.add_string buf
        (Printf.sprintf
           "Best Perf. M=1: %s | Best Perf. M=%s: %s (speedup %.2fx)%s\n\n"
           (Report.fmt_time best_m1) (label best_m) (Report.fmt_time best_mfsa)
           speedup
           (match best_util with
           | Some (t, m) ->
               Printf.sprintf " | Best Th. Ut.: M=%s with %d thread%s" (label m)
                 t
                 (if t = 1 then "" else "s")
           | None -> "")))
    ctxs;
  Buffer.add_string buf
    (Printf.sprintf
       "Geomean best-MFSA vs best-parallel-FSAs speedup: %.2fx (paper: 4.05x)\n"
       (Report.geomean !speedups));
  Buffer.contents buf

(* ------------------------------------------------------- Ablations *)

let ablation_ccsplit cfg =
  let rows =
    List.map
      (fun { ds; fsas; _ } ->
        let before = Report.fsa_totals fsas in
        let plain = Report.mfsa_totals (Merge.merge_groups ~m:0 fsas) in
        let split =
          Report.mfsa_totals
            (Merge.merge_groups ~m:0 (Mfsa_model.Ccsplit.split fsas))
        in
        let pcs, pct = Report.compression ~before ~after:plain in
        let scs, sct = Report.compression ~before ~after:split in
        [
          ds.Datasets.abbr;
          Printf.sprintf "%.2f" pcs; Printf.sprintf "%.2f" pct;
          Printf.sprintf "%.2f" scs; Printf.sprintf "%.2f" sct;
        ])
      (contexts cfg)
  in
  header
    "Ablation: partial character-class merging (paper §VI-A future work), M = all"
  ^ Report.table
      ~header:
        [ "Dataset"; "States % (plain)"; "Trans % (plain)";
          "States % (cc-split)"; "Trans % (cc-split)" ]
      rows
  ^ "Note: splitting classes into shared atoms unlocks partial-overlap\n\
     sharing (states) at the cost of extra parallel arcs (transitions).\n"

let ablation_cluster cfg =
  let ms = [ 5; 10; 20 ] in
  let rows =
    List.concat_map
      (fun { ds; fsas; _ } ->
        let before = Report.fsa_totals fsas in
        List.map
          (fun m ->
            let seq = Report.mfsa_totals (Merge.merge_groups ~m fsas) in
            let clu = Report.mfsa_totals (Cluster.merge_clustered ~m fsas) in
            let scs, _ = Report.compression ~before ~after:seq in
            let ccs, _ = Report.compression ~before ~after:clu in
            [
              ds.Datasets.abbr; string_of_int m;
              Printf.sprintf "%.2f" scs; Printf.sprintf "%.2f" ccs;
              Printf.sprintf "%+.2f" (ccs -. scs);
            ])
          ms)
      (contexts cfg)
  in
  header "Ablation: INDEL-similarity clustering vs sequential sampling (paper §VIII)"
  ^ Report.table
      ~header:
        [ "Dataset"; "M"; "States % (sequential)"; "States % (clustered)"; "Delta" ]
      rows

(* ------------------------------------------------------- Baselines *)

let is_literal_rule pattern =
  match Mfsa_frontend.Parser.parse pattern with
  | Error _ -> false
  | Ok rule ->
      let rec literal = function
        | Mfsa_frontend.Ast.Char _ -> true
        | Mfsa_frontend.Ast.Concat (a, b) -> literal a && literal b
        | Mfsa_frontend.Ast.Empty | Mfsa_frontend.Ast.Class _
        | Mfsa_frontend.Ast.Alt _ | Mfsa_frontend.Ast.Star _
        | Mfsa_frontend.Ast.Plus _ | Mfsa_frontend.Ast.Opt _
        | Mfsa_frontend.Ast.Repeat _ ->
            false
      in
      (not rule.Mfsa_frontend.Ast.anchored_start)
      && (not rule.Mfsa_frontend.Ast.anchored_end)
      && literal rule.Mfsa_frontend.Ast.ast

let literal_text pattern =
  match Mfsa_frontend.Parser.parse pattern with
  | Ok rule -> String.concat "" (Mfsa_frontend.Ast.literals rule.Mfsa_frontend.Ast.ast)
  | Error _ -> ""

let baselines cfg =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (header "Baselines: MFSA vs per-rule DFA / D2FA / 2-stride / Aho-Corasick");
  (* Representation sizes and execution times per dataset. *)
  let rows =
    List.map
      (fun { ds; fsas; stream } ->
        let nfa_states = (Report.fsa_totals fsas).Report.states in
        let z =
          match Merge.merge_groups ~m:0 fsas with [ z ] -> z | _ -> assert false
        in
        let dfas = Array.map (fun a -> Mfsa_automata.Dfa.determinize a) fsas in
        let dfas = Array.map Mfsa_automata.Dfa.minimize dfas in
        let dfa_states =
          Array.fold_left (fun acc d -> acc + d.Mfsa_automata.Dfa.n_states) 0 dfas
        in
        let d2fa_trans =
          Array.fold_left
            (fun acc d ->
              acc
              + Mfsa_automata.D2fa.n_stored_transitions
                  (Mfsa_automata.D2fa.compress d))
            0 dfas
        in
        (* Single-thread execution over the stream. *)
        let imfant = Imfant.compile z in
        let t_imfant = time_runs cfg.reps (fun () -> ignore (Imfant.count imfant stream)) in
        let scan_engines =
          Array.map (fun a -> Mfsa_engine.Dfa_engine.compile a) fsas
        in
        let t_dfa =
          time_runs cfg.reps (fun () ->
              Array.iter
                (fun e -> ignore (Mfsa_engine.Dfa_engine.count e stream))
                scan_engines)
        in
        [
          ds.Datasets.abbr;
          string_of_int nfa_states;
          string_of_int z.Mfsa_model.Mfsa.n_states;
          string_of_int dfa_states;
          string_of_int d2fa_trans;
          Report.fmt_time t_imfant;
          Report.fmt_time t_dfa;
        ])
      (contexts cfg)
  in
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "NFA states"; "MFSA states"; "min-DFA states";
           "D2FA stored arcs"; "iMFAnt (M=all)"; "per-rule DFA" ]
       rows);
  (* Decomposition-based matching (Hyperscan-style, paper §I): literal
     pre-filter + anchored confirmation, exact on the whole ruleset. *)
  Buffer.add_string buf
    "\nDecomposition baseline (literal pre-filter + FSA confirmation, §I):\n";
  let dec_rows =
    List.map
      (fun { ds; fsas; stream } ->
        let t = Mfsa_engine.Decomposed.compile fsas in
        let z =
          match Merge.merge_groups ~m:0 fsas with [ z ] -> z | _ -> assert false
        in
        let imfant = Imfant.compile z in
        let n_im = Imfant.count imfant stream in
        let n_dec = Mfsa_engine.Decomposed.count t stream in
        let t_dec =
          time_runs cfg.reps (fun () ->
              ignore (Mfsa_engine.Decomposed.count t stream))
        in
        let t_im =
          time_runs cfg.reps (fun () -> ignore (Imfant.count imfant stream))
        in
        [
          ds.Datasets.abbr;
          string_of_int (Mfsa_engine.Decomposed.n_prefiltered t);
          string_of_int (Mfsa_engine.Decomposed.n_fallback t);
          string_of_int n_dec;
          (if n_dec = n_im then "yes" else "NO");
          Report.fmt_time t_dec;
          Report.fmt_time t_im;
        ])
      (contexts cfg)
  in
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "prefiltered"; "fallback"; "matches"; "= iMFAnt";
           "decomposed"; "iMFAnt (M=all)" ]
       dec_rows);
  Buffer.add_string buf "\n";
  (* Literal-only sub-ruleset: Aho-Corasick is applicable and exact. *)
  Buffer.add_string buf "\nLiteral-only sub-rulesets (Aho-Corasick applicable):\n";
  let lit_rows =
    List.filter_map
      (fun { ds; stream; _ } ->
        let literal_rules =
          Array.to_list ds.Datasets.rules
          |> List.filter is_literal_rule
          |> List.map literal_text
          |> List.filter (fun s -> s <> "")
          |> Array.of_list
        in
        if Array.length literal_rules < 2 then None
        else begin
          let fsas =
            match Pipeline.build_fsas
                    (Array.map
                       (fun s -> Mfsa_datasets.Rulegen.escape_literal s)
                       literal_rules)
            with
            | Ok fsas -> fsas
            | Error _ -> [||]
          in
          if Array.length fsas = 0 then None
          else begin
            let z =
              match Merge.merge_groups ~m:0 fsas with
              | [ z ] -> z
              | _ -> assert false
            in
            let imfant = Imfant.compile z in
            let ac = Mfsa_engine.Aho_corasick.build literal_rules in
            let n_im = Imfant.count imfant stream in
            let n_ac = Mfsa_engine.Aho_corasick.count ac stream in
            let t_im = time_runs cfg.reps (fun () -> ignore (Imfant.count imfant stream)) in
            let t_ac =
              time_runs cfg.reps (fun () ->
                  ignore (Mfsa_engine.Aho_corasick.count ac stream))
            in
            Some
              [
                ds.Datasets.abbr;
                string_of_int (Array.length literal_rules);
                string_of_int n_im;
                string_of_int n_ac;
                Report.fmt_time t_im;
                Report.fmt_time t_ac;
              ]
          end
        end)
      (contexts cfg)
  in
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "lit. rules"; "iMFAnt matches"; "AC matches";
           "iMFAnt"; "Aho-Corasick" ]
       lit_rows);
  (* 2-stride speedup on one representative single rule per dataset. *)
  Buffer.add_string buf
    "\n2-stride vs 1-stride DFA, anchored scan of the stream (first rule of each dataset):\n";
  let stride_rows =
    List.map
      (fun { ds; fsas; stream } ->
        let d = Mfsa_automata.Dfa.minimize (Mfsa_automata.Dfa.determinize fsas.(0)) in
        let s2 = Mfsa_automata.Stride.build d in
        let t1 =
          time_runs cfg.reps (fun () -> ignore (Mfsa_automata.Dfa.accepts d stream))
        in
        let t2 =
          time_runs cfg.reps (fun () ->
              ignore (Mfsa_automata.Stride.accepts s2 stream))
        in
        [
          ds.Datasets.abbr;
          string_of_int d.Mfsa_automata.Dfa.n_states;
          string_of_int s2.Mfsa_automata.Stride.n_classes;
          Report.fmt_time t1;
          Report.fmt_time t2;
          Printf.sprintf "%.2fx" (t1 /. t2);
        ])
      (contexts cfg)
  in
  Buffer.add_string buf
    (Report.table
       ~header:[ "Dataset"; "DFA states"; "byte classes"; "1-stride"; "2-stride"; "speedup" ]
       stride_rows);
  Buffer.contents buf

(* -------------------------------------------------- Bisim ablation *)

let ablation_bisim cfg =
  let rows =
    List.map
      (fun { ds; fsas; stream } ->
        let reduced = Array.map Mfsa_automata.Bisim.reduce fsas in
        let before = Report.fsa_totals fsas in
        let before_reduced = Report.fsa_totals reduced in
        let measure fsas =
          let z =
            match Merge.merge_groups ~m:0 fsas with
            | [ z ] -> z
            | _ -> assert false
          in
          let eng = Imfant.compile z in
          let t = time_runs cfg.reps (fun () -> ignore (Imfant.count eng stream)) in
          (z.Mfsa.n_states, t)
        in
        let plain_states, plain_t = measure fsas in
        let red_states, red_t = measure reduced in
        [
          ds.Datasets.abbr;
          string_of_int before.Report.states;
          string_of_int before_reduced.Report.states;
          string_of_int plain_states;
          string_of_int red_states;
          Report.fmt_time plain_t;
          Report.fmt_time red_t;
        ])
      (contexts cfg)
  in
  header
    "Ablation: bisimulation NFA reduction before merging (extension, not in the paper)"
  ^ Report.table
      ~header:
        [ "Dataset"; "FSA states"; "reduced"; "MFSA states"; "MFSA (reduced)";
          "exec"; "exec (reduced)" ]
      rows

(* ----------------------------------------------- Strategy ablation *)

let ablation_strategy cfg =
  let rows =
    List.map
      (fun { ds; fsas; stream } ->
        let before = Report.fsa_totals fsas in
        let measure strategy =
          let z =
            match Merge.merge_groups ~strategy ~m:0 fsas with
            | [ z ] -> z
            | _ -> assert false
          in
          let eng = Imfant.compile z in
          let cs, _ = Report.compression ~before ~after:(Report.mfsa_totals [ z ]) in
          let t = time_runs cfg.reps (fun () -> ignore (Imfant.count eng stream)) in
          let _, stats = Imfant.run_with_stats eng stream in
          (cs, stats.Imfant.avg_active, t)
        in
        let gcs, gact, gt = measure Mfsa_model.Merge.Greedy in
        let pcs, pact, pt = measure Mfsa_model.Merge.Prefix in
        [
          ds.Datasets.abbr;
          Printf.sprintf "%.1f%%" gcs; Printf.sprintf "%.2f" gact; Report.fmt_time gt;
          Printf.sprintf "%.1f%%" pcs; Printf.sprintf "%.2f" pact; Report.fmt_time pt;
        ])
      (contexts cfg)
  in
  header "Ablation: merge aggressiveness (greedy vs prefix-aligned seeding), M = all"
  ^ Report.table
      ~header:
        [ "Dataset"; "greedy st%"; "g avg act"; "g exec";
          "prefix st%"; "p avg act"; "p exec" ]
      rows
  ^ "Greedy merges any label-equal sub-path (max compression, more live
     partial matches); prefix-aligned seeding only shares rule prefixes.
"

(* ----------------------------------------------- Engine comparison *)

type engine_row = {
  er_dataset : string;
  er_engine : string;
  er_time : float;
  er_mbps : float;
  er_hit_rate : float option;
  er_matches : int;
  er_agree : bool;
  er_stats : Mfsa_obs.Snapshot.t;
}

(* Engine order: the reference engine first, then the rest of the
   requested names in their given order. *)
let engine_list = function
  | Some names -> names
  | None ->
      "imfant"
      :: List.filter (fun n -> n <> "imfant") (Registry.general_names ())

(* One M=all automaton per dataset, every requested registry engine
   compiled on it and timed on the same stream. iMFAnt is the
   agreement reference (always measured, listed only when requested).
   Each engine is warmed by the agreement check — for the hybrid that
   first pass populates the configuration cache — then only its
   *counters* are reset ({!Engine_sig.reset_counters}, which keeps
   the caches warm, unlike [reset_stats] which would flush them and
   charge the rebuild to the first timed rep). After timing, the
   counters are reset once more and one extra untimed pass supplies
   the reported stats, so the snapshot — in particular the hybrid's
   cache hit rate — reflects exactly one steady-state pass rather
   than an average smeared across warm-up and [reps] repetitions. *)
let steady_stats inst stream =
  Engine_sig.reset_counters inst;
  ignore (Engine_sig.count inst stream);
  Engine_sig.stats inst

let engine_measurements ?engines cfg =
  let engines = engine_list engines in
  List.map
    (fun { ds; fsas; stream } ->
      let z =
        match Merge.merge_groups ~m:0 fsas with
        | [ z ] -> z
        | _ -> assert false
      in
      let reference = Registry.compile_automaton_exn "imfant" z in
      let per_ref = Engine_sig.count_per_fsa reference stream in
      Engine_sig.reset_counters reference;
      let t_ref =
        time_runs cfg.reps (fun () -> ignore (Engine_sig.count reference stream))
      in
      let stats_ref = steady_stats reference stream in
      let rows =
        List.map
          (fun name ->
            if name = "imfant" then (name, t_ref, per_ref, stats_ref, true)
            else begin
              let inst = Registry.compile_automaton_exn name z in
              let per = Engine_sig.count_per_fsa inst stream in
              let agree = per = per_ref in
              Engine_sig.reset_counters inst;
              let t =
                time_runs cfg.reps (fun () ->
                    ignore (Engine_sig.count inst stream))
              in
              (name, t, per, steady_stats inst stream, agree)
            end)
          engines
      in
      (ds, String.length stream, t_ref, rows))
    (contexts cfg)

(* [None] when the engine exports no cache-hit gauge at all — a
   cache-less engine has no hit rate, which is not the same thing as
   a 0% one. *)
let stat_hit_rate stats =
  Mfsa_obs.Snapshot.number stats "mfsa_engine_cache_hit_ratio"

let engine_rows ?engines cfg =
  List.concat_map
    (fun (ds, size, _t_ref, rows) ->
      let mbps t = float_of_int size /. 1e6 /. t in
      List.map
        (fun (name, t, per, stats, agree) ->
          {
            er_dataset = ds.Datasets.abbr;
            er_engine = name;
            er_time = t;
            er_mbps = mbps t;
            er_hit_rate = stat_hit_rate stats;
            er_matches = Array.fold_left ( + ) 0 per;
            er_agree = agree;
            er_stats =
              Mfsa_obs.Snapshot.with_labels
                [ ("dataset", ds.Datasets.abbr) ]
                stats;
          })
        rows)
    (engine_measurements ?engines cfg)

let engine_compare ?engines cfg =
  let ms = engine_measurements ?engines cfg in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header
       (Printf.sprintf
          "Engine comparison over the registry, M = all (%d KiB stream, %d reps)"
          cfg.stream_kb cfg.reps));
  let speedups = Hashtbl.create 8 in
  let rows =
    List.concat_map
      (fun (ds, size, t_ref, engine_rows) ->
        let mbps t = float_of_int size /. 1e6 /. t in
        List.map
          (fun (name, t, per, stats, agree) ->
            if name <> "imfant" then
              Hashtbl.replace speedups name
                ((t_ref /. t)
                :: Option.value ~default:[] (Hashtbl.find_opt speedups name));
            [
              ds.Datasets.abbr; name; Report.fmt_time t;
              Printf.sprintf "%.1f" (mbps t);
              (match stat_hit_rate stats with
              | None -> "-"
              | Some hr -> Printf.sprintf "%.4f" hr);
              string_of_int (Array.fold_left ( + ) 0 per);
              Printf.sprintf "%.2fx" (t_ref /. t);
              (if agree then "ok" else "DIVERGED");
            ])
          engine_rows)
      ms
  in
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "Engine"; "Exec time"; "MB/s"; "Hit rate"; "Matches";
           "vs imfant"; "Agreement" ]
       rows);
  Hashtbl.fold (fun name sp acc -> (name, sp) :: acc) speedups []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, sp) ->
         Buffer.add_string buf
           (Printf.sprintf "Geomean %s speedup over imfant: %.2fx\n" name
              (Report.geomean sp)));
  Buffer.contents buf

(* ------------------------------------------- Hot-loop ablation *)

(* The on/off matrix of the three hot-loop optimisations (byte-class
   compression, literal prefilter, 2-byte stride) over the merged
   (M = all) automaton of every dataset, engines imfant and hybrid.
   Every cell's per-FSA match counts must equal the all-off baseline's
   — the matrix is first a correctness gate, then a perf artefact. *)

type hotloop_row = {
  hr_dataset : string;
  hr_engine : string;  (* "imfant" | "hybrid" *)
  hr_config : string;  (* "base" | "classes" | "prefilter" | "stride2" | "all" *)
  hr_time : float;  (* seconds per pass *)
  hr_mbps : float;
  hr_matches : int;
  hr_agree : bool;  (* per-FSA counts = all-off imfant baseline *)
  hr_class_count : int;
  hr_skip_rate : float;
      (* prefilter-skipped bytes / bytes scanned during the timed
         passes (0 when the prefilter is off or never fires) *)
}

let hotloop_configs =
  let base =
    {
      Mfsa_engine.Tuning.default with
      Mfsa_engine.Tuning.classes = false;
      prefilter = false;
      stride = 1;
    }
  in
  [
    ("base", base);
    ("classes", { base with Mfsa_engine.Tuning.classes = true });
    ("prefilter", { base with Mfsa_engine.Tuning.prefilter = true });
    ("stride2", { base with Mfsa_engine.Tuning.stride = 2 });
    ("all", { base with Mfsa_engine.Tuning.classes = true; prefilter = true; stride = 2 });
  ]

let hotloop_rows cfg =
  let module Tuning = Mfsa_engine.Tuning in
  let module Hybrid = Mfsa_engine.Hybrid in
  List.concat_map
    (fun { ds; fsas; stream } ->
      let z =
        match Merge.merge_groups ~m:0 fsas with
        | [ z ] -> z
        | _ -> assert false
      in
      let size = String.length stream in
      let mbps t = float_of_int size /. 1e6 /. t in
      let per_ref =
        Tuning.with_tuning (List.assoc "base" hotloop_configs) (fun () ->
            Imfant.count_per_fsa (Imfant.compile z) stream)
      in
      List.concat_map
        (fun (cname, tuning) ->
          Tuning.with_tuning tuning (fun () ->
              let im = Imfant.compile z in
              let per_im = Imfant.count_per_fsa im stream in
              Imfant.reset_skipped im;
              let t_im =
                time_runs cfg.reps (fun () -> ignore (Imfant.count im stream))
              in
              let im_skip =
                float_of_int (Imfant.skipped_bytes im)
                /. float_of_int (max 1 (size * cfg.reps))
              in
              let hy = Hybrid.compile z in
              (* Warm pass: populate the configuration cache (and the
                 agreement data) before timing, like engine-compare. *)
              let per_hy = Hybrid.count_per_fsa hy stream in
              Hybrid.reset_stats hy;
              let t_hy =
                time_runs cfg.reps (fun () -> ignore (Hybrid.count hy stream))
              in
              let hy_skip =
                float_of_int (Hybrid.stats hy).Hybrid.skipped_bytes
                /. float_of_int (max 1 (size * cfg.reps))
              in
              [
                {
                  hr_dataset = ds.Datasets.abbr;
                  hr_engine = "imfant";
                  hr_config = cname;
                  hr_time = t_im;
                  hr_mbps = mbps t_im;
                  hr_matches = Array.fold_left ( + ) 0 per_im;
                  hr_agree = per_im = per_ref;
                  hr_class_count = Imfant.n_classes im;
                  hr_skip_rate = im_skip;
                };
                {
                  hr_dataset = ds.Datasets.abbr;
                  hr_engine = "hybrid";
                  hr_config = cname;
                  hr_time = t_hy;
                  hr_mbps = mbps t_hy;
                  hr_matches = Array.fold_left ( + ) 0 per_hy;
                  hr_agree = per_hy = per_ref;
                  hr_class_count = Hybrid.n_classes hy;
                  hr_skip_rate = hy_skip;
                };
              ]))
        hotloop_configs)
    (contexts cfg)

let hotloop_report cfg rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header
       (Printf.sprintf
          "Hot-loop ablation: classes / prefilter / stride2 on-off matrix \
           (%d KiB stream, %d reps)"
          cfg.stream_kb cfg.reps));
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "Engine"; "Config"; "MB/s"; "Classes"; "Skip rate";
           "Matches"; "Agreement" ]
       (List.map
          (fun r ->
            [
              r.hr_dataset; r.hr_engine; r.hr_config;
              Printf.sprintf "%.1f" r.hr_mbps;
              string_of_int r.hr_class_count;
              Printf.sprintf "%.3f" r.hr_skip_rate;
              string_of_int r.hr_matches;
              (if r.hr_agree then "ok" else "DIVERGED");
            ])
          rows));
  (* Geomean speedup of all-on over all-off, per engine. *)
  List.iter
    (fun eng ->
      let ratios =
        List.filter_map
          (fun r ->
            if r.hr_engine = eng && r.hr_config = "all" then
              List.find_opt
                (fun b ->
                  b.hr_engine = eng && b.hr_config = "base"
                  && b.hr_dataset = r.hr_dataset)
                rows
              |> Option.map (fun b -> r.hr_mbps /. b.hr_mbps)
            else None)
          rows
      in
      if ratios <> [] then
        Buffer.add_string buf
          (Printf.sprintf "Geomean %s all-on speedup over all-off: %.2fx\n" eng
             (Report.geomean ratios)))
    [ "imfant"; "hybrid" ];
  Buffer.contents buf

let hotloop cfg = hotloop_report cfg (hotloop_rows cfg)

(* --------------------------------------------- Planner and churn *)

(* Two artefacts behind BENCH_planner.json and the CI planner gate:

   - the planner comparison: the [auto] meta-engine against each of
     the concrete engines it plans between (imfant, hybrid, dfa) on
     every dataset at M = all — auto must agree with the iMFAnt
     reference everywhere and land within 10% of the best concrete
     engine's throughput;

   - the churn ablation: the hybrid engine under a deliberately tiny
     configuration cache, incremental clock eviction against the old
     flush-on-full policy, with iMFAnt as the cache-less floor. On
     the churn-heavy dataset (DS9) the flush policy collapses —
     every overflow throws the whole table away mid-stream — while
     clock eviction keeps the resident working set and the adaptive
     band grows the capacity; on cache-friendly datasets (BRO, PEN)
     the two policies coincide because the cache never fills. *)

type planner_row = {
  pl_dataset : string;
  pl_engine : string;  (* "auto" or a concrete engine *)
  pl_planned : string option;  (* auto rows: the static plan *)
  pl_active : string option;  (* auto rows: engine active after the run *)
  pl_time : float;
  pl_mbps : float;
  pl_matches : int;
  pl_agree : bool;
  pl_vs_best : float;  (* best concrete time / this row's time *)
}

type churn_row = {
  cr_dataset : string;
  cr_policy : string;  (* "clock" | "flush" | "imfant" *)
  cr_cache_rows : int;  (* configured base capacity; 0 for imfant *)
  cr_time : float;
  cr_mbps : float;
  cr_hit_rate : float;  (* steady-state; 0 for imfant *)
  cr_flushes : int;
  cr_evictions : int;
  cr_grows : int;
  cr_capacity : int;  (* adaptive capacity after the steady pass *)
  cr_resident : int;  (* configurations resident after the steady pass *)
  cr_matches : int;
  cr_agree : bool;
}

let planner_engines = [ "imfant"; "hybrid"; "dfa"; "auto" ]

(* The static feature vector the planner sees per dataset, with its
   decision — what the thresholds in {!Mfsa_engine.Planner} were
   fitted against, kept in the report (and BENCH_planner.json) so a
   drifting dataset generator shows up as a feature change, not just
   as an unexplained plan flip. *)
let planner_features cfg =
  let module Planner = Mfsa_engine.Planner in
  List.map
    (fun { ds; fsas; _ } ->
      let z =
        match Merge.merge_groups ~m:0 fsas with
        | [ z ] -> z
        | _ -> assert false
      in
      let f = Planner.features_of_mfsa z in
      (ds.Datasets.abbr, f, Planner.choose f))
    (contexts cfg)

let planner_rows cfg =
  List.concat_map
    (fun { ds; fsas; stream } ->
      let z =
        match Merge.merge_groups ~m:0 fsas with
        | [ z ] -> z
        | _ -> assert false
      in
      let size = String.length stream in
      let mbps t = float_of_int size /. 1e6 /. t in
      let per_ref =
        Engine_sig.count_per_fsa
          (Registry.compile_automaton_exn "imfant" z)
          stream
      in
      let measured =
        List.map
          (fun name ->
            let inst = Registry.compile_automaton_exn name z in
            let per = Engine_sig.count_per_fsa inst stream in
            Engine_sig.reset_counters inst;
            let t =
              best_of_runs cfg.reps (fun () ->
                  ignore (Engine_sig.count inst stream))
            in
            (name, inst, t, per))
          planner_engines
      in
      let best =
        List.fold_left
          (fun acc (name, _, t, _) -> if name = "auto" then acc else min acc t)
          infinity measured
      in
      List.map
        (fun (name, inst, t, per) ->
          let planned, active =
            if name <> "auto" then (None, None)
            else
              match
                Mfsa_obs.Snapshot.find (Engine_sig.stats inst)
                  "mfsa_engine_planner_choice"
              with
              | Some s ->
                  ( List.assoc_opt "planned" s.Mfsa_obs.Snapshot.labels,
                    List.assoc_opt "active" s.Mfsa_obs.Snapshot.labels )
              | None -> (None, None)
          in
          {
            pl_dataset = ds.Datasets.abbr;
            pl_engine = name;
            pl_planned = planned;
            pl_active = active;
            pl_time = t;
            pl_mbps = mbps t;
            pl_matches = Array.fold_left ( + ) 0 per;
            pl_agree = per = per_ref;
            pl_vs_best = best /. t;
          })
        measured)
    (contexts cfg)

(* Small enough that a churning configuration space overflows it at
   bench scale, large enough that the cache-friendly datasets never
   notice the bound. *)
let churn_cache_rows = 4096

let churn_rows cfg =
  let module Hybrid = Mfsa_engine.Hybrid in
  List.concat_map
    (fun { ds; fsas; stream } ->
      let z =
        match Merge.merge_groups ~m:0 fsas with
        | [ z ] -> z
        | _ -> assert false
      in
      let size = String.length stream in
      let mbps t = float_of_int size /. 1e6 /. t in
      let im = Imfant.compile z in
      let per_ref = Imfant.count_per_fsa im stream in
      let t_im =
        best_of_runs cfg.reps (fun () -> ignore (Imfant.count im stream))
      in
      let im_row =
        {
          cr_dataset = ds.Datasets.abbr;
          cr_policy = "imfant";
          cr_cache_rows = 0;
          cr_time = t_im;
          cr_mbps = mbps t_im;
          cr_hit_rate = 0.;
          cr_flushes = 0;
          cr_evictions = 0;
          cr_grows = 0;
          cr_capacity = 0;
          cr_resident = 0;
          cr_matches = Array.fold_left ( + ) 0 per_ref;
          cr_agree = true;
        }
      in
      let policy_row (pname, cache_size, eviction) =
        let hy = Hybrid.of_imfant ~cache_size ~eviction im in
        let per = Hybrid.count_per_fsa hy stream in
        (* Cold-start adaptation counters: the warm-up pass is where a
           clock cache grows toward the working set (and a flush cache
           drops its table), so flushes/evictions/grows are read here,
           before the counter reset — a warm steady pass on a
           well-sized cache legitimately shows none. *)
        let warm = Hybrid.stats hy in
        Hybrid.reset_stats hy;
        let t =
          best_of_runs cfg.reps (fun () -> ignore (Hybrid.count hy stream))
        in
        (* Steady-state rate gauges: one more pass on the warm cache
           with freshly zeroed counters, so the hit rate is not
           smeared across the reps. *)
        Hybrid.reset_stats hy;
        ignore (Hybrid.count hy stream);
        let st = Hybrid.stats hy in
        {
          cr_dataset = ds.Datasets.abbr;
          cr_policy = pname;
          cr_cache_rows = cache_size;
          cr_time = t;
          cr_mbps = mbps t;
          cr_hit_rate =
            (if st.Hybrid.steps = 0 then 0.
             else float_of_int st.Hybrid.hits /. float_of_int st.Hybrid.steps);
          cr_flushes = warm.Hybrid.flushes + st.Hybrid.flushes;
          cr_evictions = warm.Hybrid.evictions + st.Hybrid.evictions;
          cr_grows = warm.Hybrid.grows + st.Hybrid.grows;
          cr_capacity = st.Hybrid.capacity;
          cr_resident = st.Hybrid.resident_configs;
          cr_matches = Array.fold_left ( + ) 0 per;
          cr_agree = per = per_ref;
        }
      in
      im_row
      :: List.map policy_row
           [
             ("clock", churn_cache_rows, Hybrid.Clock);
             ("flush", churn_cache_rows, Hybrid.Flush);
             ("unbounded", 1 lsl 20, Hybrid.Clock);
           ])
    (contexts cfg)

let planner_report cfg feats prows crows =
  let module Planner = Mfsa_engine.Planner in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (header "Planner features: what the static decision sees, per dataset");
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "States"; "FSAs"; "Transitions"; "Classes"; "Density";
           "Literal share"; "Prefilter"; "Plan" ]
       (List.map
          (fun (abbr, f, choice) ->
            [
              abbr;
              string_of_int f.Planner.f_states;
              string_of_int f.Planner.f_fsas;
              string_of_int f.Planner.f_transitions;
              string_of_int f.Planner.f_classes;
              Printf.sprintf "%.4f" f.Planner.f_density;
              Printf.sprintf "%.3f" f.Planner.f_literal_share;
              string_of_bool f.Planner.f_prefilter;
              choice;
            ])
          feats));
  Buffer.add_string buf
    (header
       (Printf.sprintf
          "Engine planner: auto vs concrete engines, M = all (%d KiB stream, \
           %d reps)"
          cfg.stream_kb cfg.reps));
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "Engine"; "Planned"; "Active"; "MB/s"; "vs best";
           "Matches"; "Agreement" ]
       (List.map
          (fun r ->
            [
              r.pl_dataset; r.pl_engine;
              Option.value ~default:"-" r.pl_planned;
              Option.value ~default:"-" r.pl_active;
              Printf.sprintf "%.1f" r.pl_mbps;
              Printf.sprintf "%.2fx" r.pl_vs_best;
              string_of_int r.pl_matches;
              (if r.pl_agree then "ok" else "DIVERGED");
            ])
          prows));
  let auto_ratios =
    List.filter_map
      (fun r -> if r.pl_engine = "auto" then Some r.pl_vs_best else None)
      prows
  in
  if auto_ratios <> [] then
    Buffer.add_string buf
      (Printf.sprintf
         "Geomean auto vs best concrete engine: %.2fx (min %.2fx)\n"
         (Report.geomean auto_ratios)
         (List.fold_left min infinity auto_ratios));
  Buffer.add_string buf
    (header
       (Printf.sprintf
          "Churn ablation: hybrid at the default %d-row cache, clock vs \
           flush eviction"
          churn_cache_rows));
  Buffer.add_string buf
    (Report.table
       ~header:
         [ "Dataset"; "Policy"; "MB/s"; "Hit rate"; "Flushes"; "Evictions";
           "Grows"; "Capacity"; "Resident"; "Agreement" ]
       (List.map
          (fun r ->
            [
              r.cr_dataset; r.cr_policy;
              Printf.sprintf "%.1f" r.cr_mbps;
              (if r.cr_policy = "imfant" then "-"
               else Printf.sprintf "%.4f" r.cr_hit_rate);
              string_of_int r.cr_flushes;
              string_of_int r.cr_evictions;
              string_of_int r.cr_grows;
              string_of_int r.cr_capacity;
              string_of_int r.cr_resident;
              (if r.cr_agree then "ok" else "DIVERGED");
            ])
          crows));
  List.iter
    (fun ds_abbr ->
      let find p =
        List.find_opt
          (fun r -> r.cr_dataset = ds_abbr && r.cr_policy = p)
          crows
      in
      match (find "clock", find "flush", find "imfant") with
      | Some c, Some f, Some i ->
          Buffer.add_string buf
            (Printf.sprintf
               "churn %s: clock %.2fx over flush, %.2fx over imfant \
                (evictions %d, flushes %d)\n"
               ds_abbr
               (f.cr_time /. c.cr_time)
               (i.cr_time /. c.cr_time)
               c.cr_evictions c.cr_flushes)
      | _ -> ())
    (List.sort_uniq compare (List.map (fun r -> r.cr_dataset) crows));
  Buffer.contents buf

let planner cfg =
  planner_report cfg (planner_features cfg) (planner_rows cfg) (churn_rows cfg)

(* ------------------------------------------------------ Complexity *)

let complexity cfg =
  let ds = Datasets.bro217 ~scale:1.0 () in
  let all_fsas =
    match Pipeline.build_fsas ds.Datasets.rules with
    | Ok fsas -> fsas
    | Error e -> raise (Pipeline.Compile_error e)
  in
  let sizes = [ 13; 27; 54; 108; 217 ] in
  let points =
    List.map
      (fun n ->
        let fsas = Array.sub all_fsas 0 n in
        let t0 = now () in
        for _ = 1 to cfg.reps do
          ignore (Merge.merge fsas)
        done;
        let dt = (now () -. t0) /. float_of_int cfg.reps in
        (n, dt))
      sizes
  in
  (* Least-squares slope of log t against log n. *)
  let logs = List.map (fun (n, t) -> (log (float_of_int n), log t)) points in
  let k = float_of_int (List.length logs) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. logs in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. logs in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. logs in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. logs in
  let slope = ((k *. sxy) -. (sx *. sy)) /. ((k *. sxx) -. (sx *. sx)) in
  header "Merging cost growth (paper §III-A, Eq. 3)"
  ^ Report.table
      ~header:[ "Ruleset size M"; "Merge time" ]
      (List.map (fun (n, t) -> [ string_of_int n; Report.fmt_time t ]) points)
  ^ Printf.sprintf
      "Fitted growth exponent: time ~ M^%.2f (the paper models Algorithm 1 \
       as O(M^4) on average; the per-label and per-triple indexes bring \
       this implementation's measured growth far below that)\n"
      slope

let run_all cfg =
  String.concat "\n"
    [
      fig1 cfg; table1 cfg; fig7 cfg; fig8 cfg; table2 cfg; fig9 cfg; fig10 cfg;
      ablation_ccsplit cfg; ablation_cluster cfg; ablation_strategy cfg;
      ablation_bisim cfg; baselines cfg; engine_compare cfg; complexity cfg;
    ]

(** Evaluation metrics and table formatting for the benchmark harness.

    Implements the paper's derived quantities: the compression
    percentages of §VI-A, the throughput of Equation 11, geometric
    means, and plain-text table rendering used to print every Table /
    Figure reproduction. *)

type totals = { states : int; transitions : int }

val fsa_totals : Mfsa_automata.Nfa.t array -> totals
val mfsa_totals : Mfsa_model.Mfsa.t list -> totals

val compression : before:totals -> after:totals -> float * float
(** [(states %, transitions %)] per §VI-A:
    [(Σ before - Σ after) / Σ before × 100]. *)

val throughput : n_mfsa:int -> m:int -> data_size:int -> exe_time:float -> float
(** Equation 11: [#MFSA · M · Dsize / Exe_time_tot], in bytes of
    RE-stream work per second. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list; requires positive entries. *)

val table : header:string list -> string list list -> string
(** Fixed-width plain-text table with a separator under the header.
    Column widths fit the widest cell. *)

val fmt_time : float -> string
(** Human-scaled seconds: ["1.23 ms"], ["4.56 s"], … *)

val fmt_float : float -> string
(** Two decimals. *)

module Mfsa = Mfsa_model.Mfsa
module Merge = Mfsa_model.Merge
module Ccsplit = Mfsa_model.Ccsplit
module Imfant = Mfsa_engine.Imfant
module Pool = Mfsa_engine.Pool
module Anml = Mfsa_anml.Anml

type match_event = { rule : int; end_pos : int }

type t = {
  patterns : string array;  (* original order *)
  groups : int list list;  (* per MFSA: global rule index per local id *)
  mfsas : Mfsa.t list;
  engines : Imfant.t array Lazy.t;
  before : Report.totals option;  (* separate-FSA totals, when known *)
}

let make ~patterns ~groups ~mfsas ~before =
  {
    patterns;
    groups;
    mfsas;
    engines = lazy (Array.of_list (List.map Imfant.compile mfsas));
    before;
  }

let sequential_groups ~m n =
  let m = if m = 0 || m > n then n else m in
  List.init ((n + m - 1) / m) (fun g ->
      List.init (min m (n - (g * m))) (fun k -> (g * m) + k))

let compile ?(m = 0) ?(cluster = false) ?(ccsplit = false) ?strategy patterns =
  match Pipeline.build_fsas patterns with
  | Error e -> Error e
  | Ok fsas ->
      let before = Report.fsa_totals fsas in
      let fsas = if ccsplit then Ccsplit.split fsas else fsas in
      let groups =
        if cluster then Cluster.group ~m patterns
        else sequential_groups ~m (Array.length patterns)
      in
      let mfsas =
        List.map
          (fun g ->
            Merge.merge ?strategy (Array.of_list (List.map (fun i -> fsas.(i)) g)))
          groups
      in
      Ok (make ~patterns ~groups ~mfsas ~before:(Some before))

let compile_exn ?m ?cluster ?ccsplit ?strategy patterns =
  match compile ?m ?cluster ?ccsplit ?strategy patterns with
  | Ok t -> t
  | Error e -> raise (Pipeline.Compile_error e)

let n_rules t = Array.length t.patterns

let patterns t = Array.copy t.patterns

let n_mfsas t = List.length t.mfsas

let collect t per_engine =
  (* Map each engine's local FSA ids back to global rule indices. *)
  let engines = Lazy.force t.engines in
  List.concat
    (List.mapi
       (fun gi group ->
         let local_to_global = Array.of_list group in
         per_engine engines.(gi)
         |> List.map (fun e ->
                { rule = local_to_global.(e.Imfant.fsa); end_pos = e.Imfant.end_pos }))
       t.groups)

let run ?(threads = 1) t input =
  let events =
    if threads <= 1 || n_mfsas t = 1 then
      collect t (fun engine -> Imfant.run engine input)
    else begin
      let engines = Lazy.force t.engines in
      let result =
        Pool.run ~threads ~jobs:(Array.map (fun e () -> Imfant.run e input) engines)
      in
      List.concat
        (List.mapi
           (fun gi group ->
             let local_to_global = Array.of_list group in
             result.Pool.values.(gi)
             |> List.map (fun e ->
                    {
                      rule = local_to_global.(e.Imfant.fsa);
                      end_pos = e.Imfant.end_pos;
                    }))
           t.groups)
    end
  in
  List.stable_sort
    (fun a b ->
      if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
      else Int.compare a.rule b.rule)
    events

let count_per_rule ?threads t input =
  let counts = Array.make (n_rules t) 0 in
  List.iter
    (fun { rule; _ } -> counts.(rule) <- counts.(rule) + 1)
    (run ?threads t input);
  counts

let count ?threads t input = List.length (run ?threads t input)

let to_anml t = Anml.write ~name:"mfsa-ruleset" t.mfsas

let of_anml doc =
  match Anml.read doc with
  | Error msg -> Error msg
  | Ok [] -> Error "Ruleset.of_anml: document contains no MFSA"
  | Ok mfsas ->
      (* Rule indices follow document order: group by group, local id
         by local id. Rulesets compiled without clustering keep their
         original order through the round trip. *)
      let counter = ref 0 in
      let groups =
        List.map
          (fun z ->
            List.init z.Mfsa.n_fsas (fun _ ->
                let v = !counter in
                incr counter;
                v))
          mfsas
      in
      let patterns =
        Array.concat (List.map (fun z -> z.Mfsa.patterns) mfsas)
      in
      Ok (make ~patterns ~groups ~mfsas ~before:None)

type session = { owner : t; sessions : Imfant.session array }

let session t =
  { owner = t; sessions = Array.map Imfant.session (Lazy.force t.engines) }

let remap t per_session =
  List.concat
    (List.mapi
       (fun gi group ->
         let local_to_global = Array.of_list group in
         per_session gi
         |> List.map (fun e ->
                {
                  rule = local_to_global.(e.Imfant.fsa);
                  end_pos = e.Imfant.end_pos;
                }))
       t.groups)
  |> List.stable_sort (fun a b ->
         if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
         else Int.compare a.rule b.rule)

let feed s chunk =
  (* Feed every session first, then remap: feeding inside the remap
     callback would re-run per group. *)
  let results = Array.map (fun session -> Imfant.feed session chunk) s.sessions in
  remap s.owner (fun gi -> results.(gi))

let finish s =
  let results = Array.map Imfant.finish s.sessions in
  remap s.owner (fun gi -> results.(gi))

let reset s = Array.iter Imfant.reset s.sessions

let compression t =
  let after =
    List.fold_left
      (fun acc z ->
        {
          Report.states = acc.Report.states + z.Mfsa.n_states;
          transitions = acc.Report.transitions + Mfsa.n_transitions z;
        })
      { Report.states = 0; transitions = 0 }
      t.mfsas
  in
  let before =
    match t.before with
    | Some b -> Some b
    | None -> (
        (* ANML-loaded matcher: recompile the stored patterns. *)
        match Pipeline.build_fsas t.patterns with
        | Ok fsas -> Some (Report.fsa_totals fsas)
        | Error _ -> None)
  in
  match before with
  | Some before -> Report.compression ~before ~after
  | None -> (0., 0.)

module Indel = Mfsa_util.Indel
module Nfa = Mfsa_automata.Nfa
module Merge = Mfsa_model.Merge

let group ~m patterns =
  let n = Array.length patterns in
  if n = 0 then invalid_arg "Cluster.group: empty ruleset";
  if m < 0 then invalid_arg "Cluster.group: negative merging factor";
  let m = if m = 0 || m > n then n else m in
  if m >= n then [ List.init n Fun.id ]
  else begin
    let assigned = Array.make n false in
    let groups = ref [] in
    let next_seed = ref 0 in
    while !next_seed < n do
      if assigned.(!next_seed) then incr next_seed
      else begin
        let seed = !next_seed in
        assigned.(seed) <- true;
        (* Fill the group with the unassigned rules most similar to
           the seed. A full agglomerative linkage would be O(n^3);
           seed-similarity is the standard cheap proxy and enough for
           the ablation. *)
        let candidates =
          List.init n Fun.id
          |> List.filter (fun i -> not assigned.(i))
          |> List.map (fun i -> (Indel.similarity patterns.(seed) patterns.(i), i))
          |> List.sort (fun (sa, ia) (sb, ib) ->
                 if sa <> sb then Float.compare sb sa else Int.compare ia ib)
        in
        let members =
          seed :: (List.filteri (fun k _ -> k < m - 1) candidates |> List.map snd)
        in
        List.iter (fun i -> assigned.(i) <- true) members;
        groups := List.sort Int.compare members :: !groups
      end
    done;
    List.rev !groups
  end

let reorder items groups =
  let order = List.concat groups in
  let permuted = Array.of_list (List.map (fun i -> items.(i)) order) in
  let new_groups =
    let counter = ref 0 in
    List.map
      (fun g ->
        List.map
          (fun _ ->
            let v = !counter in
            incr counter;
            v)
          g)
      groups
  in
  (permuted, new_groups)

let merge_clustered ~m fsas =
  let patterns = Array.map (fun a -> a.Nfa.pattern) fsas in
  let groups = group ~m patterns in
  List.map
    (fun g -> Merge.merge (Array.of_list (List.map (fun i -> fsas.(i)) g)))
    groups

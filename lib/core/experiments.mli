(** Reproduction harness for every table and figure of the paper's
    evaluation (§VI). Each function renders one artefact as plain
    text; {!run_all} prints the full evaluation in paper order.

    The experiments run on the synthetic datasets of
    {!Mfsa_datasets.Datasets} (DESIGN.md substitution 1). Default
    sizes are scaled down so the whole suite finishes in minutes on
    one core; set the [MFSA_SCALE], [MFSA_STREAM_KB] and [MFSA_REPS]
    environment variables (or build a {!config} directly) to approach
    the paper's full scale (scale 1.0, 1024 KiB, 30/15 repetitions —
    see EXPERIMENTS.md). *)

type config = {
  scale : float;  (** Ruleset size multiplier (1.0 = paper size). *)
  stream_kb : int;  (** Input stream size in KiB (paper: 1024). *)
  reps : int;  (** Repetitions averaged for timing experiments. *)
  merge_factors : int list;
      (** The M sweep; 0 encodes the paper's "all". *)
  thread_counts : int list;  (** The T sweep of Fig. 10. *)
  hw_threads : int;
      (** Modelled hardware-thread limit for the Fig. 10 projection
          (the paper's i7-6700 exposes 8); scaling saturates here. *)
}

val default : unit -> config
(** Scaled-down defaults, overridable via environment variables. *)

val paper_scale : config
(** The paper's configuration (expect hours of runtime). *)

val fig1 : config -> string
(** Average normalised INDEL similarity per dataset (Fig. 1). *)

val table1 : config -> string
(** Dataset characteristics: rules, states, transitions, character
    classes (Table I). *)

val fig7 : config -> string
(** State and transition compression % per dataset and merging factor
    (Fig. 7). *)

val fig8 : config -> string
(** Compilation-stage time breakdown per dataset and merging factor
    (Fig. 8). *)

val table2 : config -> string
(** Average and maximum number of active FSAs during M=all traversal
    (Table II). *)

val fig9 : config -> string
(** Single-threaded execution time and throughput improvement over
    M=1 per dataset and merging factor (Fig. 9), with the geometric
    means the paper headlines. *)

val fig10 : config -> string
(** Multi-threaded scaling: projected greedy-scheduler latency per
    dataset, merging factor and thread count, with best-performance
    and best-thread-utilisation markers (Fig. 10). *)

val ablation_ccsplit : config -> string
(** Ablation of the paper's §VI-A future-work optimisation: state and
    transition compression at M=all with and without the partial
    character-class merging pre-pass ({!Mfsa_model.Ccsplit}). *)

val ablation_cluster : config -> string
(** Ablation of the paper's §VIII clustering direction: compression
    with sequential sampling (the paper's grouping) versus
    INDEL-similarity clustering ({!Cluster}) at several merging
    factors. *)

val baselines : config -> string
(** Comparison against the classical alternatives of §II/§VII on each
    dataset: per-rule scanning DFAs (subset construction + Hopcroft),
    D²FA default-transition compression, 2-stride DFAs, and — on the
    literal-only sub-ruleset — Aho–Corasick. Reports representation
    sizes and single-thread execution times next to the MFSA's. *)

val ablation_bisim : config -> string
(** Ablation of an optional pre-merging pass not in the paper:
    bisimulation-based NFA state reduction ({!Mfsa_automata.Bisim})
    applied to every rule before Algorithm 1 — per-rule size
    reduction, and compression/execution at M=all with and without
    it. *)

val ablation_strategy : config -> string
(** Ablation of merge aggressiveness: greedy anywhere-seeding (the
    default, maximal compression) versus prefix-aligned seeding
    (trie-like, conservative) at M=all — compression, run-time
    active-set pressure (Table II's metric) and execution time side
    by side. This probes the compression/activation trade-off behind
    the paper's DS9/PRO anomalies (§VI-C1). *)

type engine_row = {
  er_dataset : string;  (** Dataset abbreviation. *)
  er_engine : string;  (** A {!Mfsa_engine.Registry} engine name. *)
  er_time : float;  (** Seconds per pass over the stream. *)
  er_mbps : float;  (** Stream megabytes per second. *)
  er_hit_rate : float option;
      (** Warm cache hit rate, read from the engine's
          [mfsa_engine_cache_hit_ratio] gauge; [None] for engines
          that report none (cache-less engines have no hit rate). *)
  er_matches : int;  (** Total match events on the stream. *)
  er_agree : bool;
      (** Per-FSA match counts identical to the iMFAnt reference. *)
  er_stats : Mfsa_obs.Snapshot.t;
      (** The engine's full warm metric snapshot, tagged with a
          [dataset] label — exported verbatim into [BENCH_obs.json]. *)
}

val engine_rows : ?engines:string list -> config -> engine_row list
(** Machine-readable form of {!engine_compare}: one row per engine
    per dataset, M = all. [engines] defaults to every
    {!Mfsa_engine.Registry} name. Consumed by the benchmark driver's
    JSON export. *)

val engine_compare : ?engines:string list -> config -> string
(** Every requested {!Mfsa_engine.Registry} engine (default: all
    registered) on every dataset at M = all: execution time,
    throughput, warm cache hit rate where the engine reports one, and
    a per-dataset agreement check of the per-FSA match counts against
    the iMFAnt reference (rows disagreeing are marked [DIVERGED] —
    grepped for by the CI smoke gate). *)

type hotloop_row = {
  hr_dataset : string;  (** Dataset abbreviation. *)
  hr_engine : string;  (** ["imfant"] or ["hybrid"]. *)
  hr_config : string;
      (** Tuning configuration label: ["base"] (all optimisations
          off), ["classes"], ["prefilter"], ["stride2"] (one knob
          each), or ["all"]. *)
  hr_time : float;  (** Seconds per pass over the stream. *)
  hr_mbps : float;  (** Stream megabytes per second. *)
  hr_matches : int;  (** Total match events on the stream. *)
  hr_agree : bool;
      (** Per-FSA match counts identical to the all-off iMFAnt
          baseline — every cell of the matrix must agree. *)
  hr_class_count : int;
      (** Byte-class alphabet size the engine compiled with (256 when
          class compression is off). *)
  hr_skip_rate : float;
      (** Fraction of scanned bytes the literal prefilter let the
          engine skip during the timed passes; 0 when the prefilter is
          off or unusable for the ruleset. *)
}

val hotloop_rows : config -> hotloop_row list
(** The hot-loop optimisation on/off matrix: for every dataset at
    M = all, each tuning configuration ({!hotloop_row.hr_config}) is
    compiled and timed for both the iMFAnt and hybrid engines.
    Machine-readable form of {!hotloop}; consumed by the benchmark
    driver's [BENCH_hotloop.json] export. *)

val hotloop_report : config -> hotloop_row list -> string
(** Render precomputed {!hotloop_rows} without re-running the matrix
    (the benchmark driver both prints the table and exports the same
    rows as JSON). *)

val hotloop : config -> string
(** [hotloop_report cfg (hotloop_rows cfg)] — MB/s, class count, prefilter
    skip rate and a baseline-agreement column per cell (disagreeing
    cells are marked [DIVERGED] — grepped for by the CI gate) — plus
    the per-engine geomean speedup of the all-on configuration over
    all-off. *)

type planner_row = {
  pl_dataset : string;  (** Dataset abbreviation. *)
  pl_engine : string;
      (** ["auto"] or one of the concrete engines it plans between
          (["imfant"], ["hybrid"], ["dfa"]). *)
  pl_planned : string option;
      (** Auto rows: the engine the static features selected. [None]
          on concrete rows. *)
  pl_active : string option;
      (** Auto rows: the engine active after the run — differs from
          [pl_planned] when the churn monitor demoted a hybrid plan
          mid-stream. *)
  pl_time : float;  (** Seconds per pass over the stream. *)
  pl_mbps : float;  (** Stream megabytes per second. *)
  pl_matches : int;  (** Total match events on the stream. *)
  pl_agree : bool;
      (** Per-FSA match counts identical to the iMFAnt reference. *)
  pl_vs_best : float;
      (** Best concrete engine's time divided by this row's — 1.0 is
          the per-dataset winner; the acceptance bar holds auto's rows
          at >= 0.9 (within 10% of the best concrete engine). *)
}

type churn_row = {
  cr_dataset : string;  (** Dataset abbreviation. *)
  cr_policy : string;
      (** ["clock"] (incremental second-chance eviction), ["flush"]
          (the pre-eviction drop-everything policy), ["unbounded"]
          (a cache large enough never to fill — the working-set
          reference), or ["imfant"] (the cache-less floor). *)
  cr_cache_rows : int;
      (** Configured base cache capacity in rows (0 for imfant). *)
  cr_time : float;  (** Seconds per pass over the stream. *)
  cr_mbps : float;  (** Stream megabytes per second. *)
  cr_hit_rate : float;
      (** Steady-state memo hit rate of one warm pass (0 for
          imfant). *)
  cr_flushes : int;
      (** Whole-table drops, cumulative over the cold warm-up pass
          plus one steady pass — the warm-up is where a flush cache
          drops its table. *)
  cr_evictions : int;
      (** Single-row evictions, cumulative over warm-up plus one
          steady pass — under clock eviction a well-sized cache
          evicts while growing toward the working set, then stops. *)
  cr_grows : int;
      (** Adaptive capacity doublings, cumulative over warm-up plus
          one steady pass. *)
  cr_capacity : int;  (** Adaptive capacity after the steady pass. *)
  cr_resident : int;
      (** Configurations resident after the steady pass — under
          ["unbounded"], the ruleset's working-set size on this
          stream. *)
  cr_matches : int;  (** Total match events on the stream. *)
  cr_agree : bool;  (** Per-FSA counts identical to iMFAnt's. *)
}

val planner_features :
  config -> (string * Mfsa_engine.Planner.features * string) list
(** Per dataset at M = all: the static feature vector
    {!Mfsa_engine.Planner.features_of_mfsa} extracts and the engine
    {!Mfsa_engine.Planner.choose} picks from it — the data the
    planner thresholds were fitted against, exported as the
    ["features"] array of [BENCH_planner.json]. *)

val planner_rows : config -> planner_row list
(** The [auto] meta-engine against each concrete engine it plans
    between, per dataset at M = all — machine-readable half of
    {!planner}, exported as the ["planner"] array of
    [BENCH_planner.json]. *)

val churn_rows : config -> churn_row list
(** The eviction-policy ablation: the hybrid engine at the default
    configuration-cache size ([4096] rows), clock versus flush
    eviction, with an unbounded-cache reference (the working-set
    size) and iMFAnt as the cache-less floor — the ["churn"] array of
    [BENCH_planner.json]. On rulesets whose working set overflows the
    base cache (DS9, TCP, RG1) flush-on-full collapses mid-stream
    while clock eviction grows the capacity under eviction pressure
    and keeps the working set resident; on cache-friendly ones (BRO,
    PEN) the cache never fills and the policies coincide. *)

val planner_report :
  config ->
  (string * Mfsa_engine.Planner.features * string) list ->
  planner_row list ->
  churn_row list ->
  string
(** Render precomputed planner features, comparison and churn rows
    (tables plus the geomean/min auto-vs-best and per-dataset
    clock-vs-flush summary lines the CI gate greps). *)

val planner : config -> string
(** [planner_report] over {!planner_features}, {!planner_rows} and
    {!churn_rows}. *)

val complexity : config -> string
(** Empirical validation of the merging cost model (paper §III-A,
    Eq. 3): wall-clock time of Algorithm 1 over growing prefixes of
    the BRO ruleset, with the fitted log-log slope. The paper
    approximates the average complexity as O(M⁴) under Nfs ≈ M; the
    per-label and per-triple hash indexes bring this implementation's
    measured growth far below the model's bound. *)

val run_all : config -> string
(** Every artefact in paper order — the Figs. 1 and 7-10 and Tables I
    and II reproductions followed by the ablations and baselines —
    separated by headers. *)

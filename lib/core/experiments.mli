(** Reproduction harness for every table and figure of the paper's
    evaluation (§VI). Each function renders one artefact as plain
    text; {!run_all} prints the full evaluation in paper order.

    The experiments run on the synthetic datasets of
    {!Mfsa_datasets.Datasets} (DESIGN.md substitution 1). Default
    sizes are scaled down so the whole suite finishes in minutes on
    one core; set the [MFSA_SCALE], [MFSA_STREAM_KB] and [MFSA_REPS]
    environment variables (or build a {!config} directly) to approach
    the paper's full scale (scale 1.0, 1024 KiB, 30/15 repetitions —
    see EXPERIMENTS.md). *)

type config = {
  scale : float;  (** Ruleset size multiplier (1.0 = paper size). *)
  stream_kb : int;  (** Input stream size in KiB (paper: 1024). *)
  reps : int;  (** Repetitions averaged for timing experiments. *)
  merge_factors : int list;
      (** The M sweep; 0 encodes the paper's "all". *)
  thread_counts : int list;  (** The T sweep of Fig. 10. *)
  hw_threads : int;
      (** Modelled hardware-thread limit for the Fig. 10 projection
          (the paper's i7-6700 exposes 8); scaling saturates here. *)
}

val default : unit -> config
(** Scaled-down defaults, overridable via environment variables. *)

val paper_scale : config
(** The paper's configuration (expect hours of runtime). *)

val fig1 : config -> string
(** Average normalised INDEL similarity per dataset (Fig. 1). *)

val table1 : config -> string
(** Dataset characteristics: rules, states, transitions, character
    classes (Table I). *)

val fig7 : config -> string
(** State and transition compression % per dataset and merging factor
    (Fig. 7). *)

val fig8 : config -> string
(** Compilation-stage time breakdown per dataset and merging factor
    (Fig. 8). *)

val table2 : config -> string
(** Average and maximum number of active FSAs during M=all traversal
    (Table II). *)

val fig9 : config -> string
(** Single-threaded execution time and throughput improvement over
    M=1 per dataset and merging factor (Fig. 9), with the geometric
    means the paper headlines. *)

val fig10 : config -> string
(** Multi-threaded scaling: projected greedy-scheduler latency per
    dataset, merging factor and thread count, with best-performance
    and best-thread-utilisation markers (Fig. 10). *)

val ablation_ccsplit : config -> string
(** Ablation of the paper's §VI-A future-work optimisation: state and
    transition compression at M=all with and without the partial
    character-class merging pre-pass ({!Mfsa_model.Ccsplit}). *)

val ablation_cluster : config -> string
(** Ablation of the paper's §VIII clustering direction: compression
    with sequential sampling (the paper's grouping) versus
    INDEL-similarity clustering ({!Cluster}) at several merging
    factors. *)

val baselines : config -> string
(** Comparison against the classical alternatives of §II/§VII on each
    dataset: per-rule scanning DFAs (subset construction + Hopcroft),
    D²FA default-transition compression, 2-stride DFAs, and — on the
    literal-only sub-ruleset — Aho–Corasick. Reports representation
    sizes and single-thread execution times next to the MFSA's. *)

val ablation_bisim : config -> string
(** Ablation of an optional pre-merging pass not in the paper:
    bisimulation-based NFA state reduction ({!Mfsa_automata.Bisim})
    applied to every rule before Algorithm 1 — per-rule size
    reduction, and compression/execution at M=all with and without
    it. *)

val ablation_strategy : config -> string
(** Ablation of merge aggressiveness: greedy anywhere-seeding (the
    default, maximal compression) versus prefix-aligned seeding
    (trie-like, conservative) at M=all — compression, run-time
    active-set pressure (Table II's metric) and execution time side
    by side. This probes the compression/activation trade-off behind
    the paper's DS9/PRO anomalies (§VI-C1). *)

type engine_row = {
  er_dataset : string;  (** Dataset abbreviation. *)
  er_engine : string;  (** A {!Mfsa_engine.Registry} engine name. *)
  er_time : float;  (** Seconds per pass over the stream. *)
  er_mbps : float;  (** Stream megabytes per second. *)
  er_hit_rate : float option;
      (** Warm cache hit rate, read from the engine's
          [mfsa_engine_cache_hit_ratio] gauge; [None] for engines
          that report none (cache-less engines have no hit rate). *)
  er_matches : int;  (** Total match events on the stream. *)
  er_agree : bool;
      (** Per-FSA match counts identical to the iMFAnt reference. *)
  er_stats : Mfsa_obs.Snapshot.t;
      (** The engine's full warm metric snapshot, tagged with a
          [dataset] label — exported verbatim into [BENCH_obs.json]. *)
}

val engine_rows : ?engines:string list -> config -> engine_row list
(** Machine-readable form of {!engine_compare}: one row per engine
    per dataset, M = all. [engines] defaults to every
    {!Mfsa_engine.Registry} name. Consumed by the benchmark driver's
    JSON export. *)

val engine_compare : ?engines:string list -> config -> string
(** Every requested {!Mfsa_engine.Registry} engine (default: all
    registered) on every dataset at M = all: execution time,
    throughput, warm cache hit rate where the engine reports one, and
    a per-dataset agreement check of the per-FSA match counts against
    the iMFAnt reference (rows disagreeing are marked [DIVERGED] —
    grepped for by the CI smoke gate). *)

type hotloop_row = {
  hr_dataset : string;  (** Dataset abbreviation. *)
  hr_engine : string;  (** ["imfant"] or ["hybrid"]. *)
  hr_config : string;
      (** Tuning configuration label: ["base"] (all optimisations
          off), ["classes"], ["prefilter"], ["stride2"] (one knob
          each), or ["all"]. *)
  hr_time : float;  (** Seconds per pass over the stream. *)
  hr_mbps : float;  (** Stream megabytes per second. *)
  hr_matches : int;  (** Total match events on the stream. *)
  hr_agree : bool;
      (** Per-FSA match counts identical to the all-off iMFAnt
          baseline — every cell of the matrix must agree. *)
  hr_class_count : int;
      (** Byte-class alphabet size the engine compiled with (256 when
          class compression is off). *)
  hr_skip_rate : float;
      (** Fraction of scanned bytes the literal prefilter let the
          engine skip during the timed passes; 0 when the prefilter is
          off or unusable for the ruleset. *)
}

val hotloop_rows : config -> hotloop_row list
(** The hot-loop optimisation on/off matrix: for every dataset at
    M = all, each tuning configuration ({!hotloop_row.hr_config}) is
    compiled and timed for both the iMFAnt and hybrid engines.
    Machine-readable form of {!hotloop}; consumed by the benchmark
    driver's [BENCH_hotloop.json] export. *)

val hotloop_report : config -> hotloop_row list -> string
(** Render precomputed {!hotloop_rows} without re-running the matrix
    (the benchmark driver both prints the table and exports the same
    rows as JSON). *)

val hotloop : config -> string
(** [hotloop_report cfg (hotloop_rows cfg)] — MB/s, class count, prefilter
    skip rate and a baseline-agreement column per cell (disagreeing
    cells are marked [DIVERGED] — grepped for by the CI gate) — plus
    the per-engine geomean speedup of the all-on configuration over
    all-off. *)

val complexity : config -> string
(** Empirical validation of the merging cost model (paper §III-A,
    Eq. 3): wall-clock time of Algorithm 1 over growing prefixes of
    the BRO ruleset, with the fitted log-log slope. The paper
    approximates the average complexity as O(M⁴) under Nfs ≈ M; the
    per-label and per-triple hash indexes bring this implementation's
    measured growth far below the model's bound. *)

val run_all : config -> string
(** Every artefact in paper order — the Figs. 1 and 7-10 and Tables I
    and II reproductions followed by the ablations and baselines —
    separated by headers. *)

(* Words are OCaml native ints used as 62-bit limbs: every value stays
   immediate (no boxing), and masking the two top bits away keeps all
   word-level operations well-defined. *)

let bits_per_word = 62

type t = { n : int; words : int array }

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (max 1 (word_count n)) 0 }

let capacity t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let resize t n =
  if n < 0 then invalid_arg "Bitset.resize: negative capacity";
  let r = create n in
  let k = min (Array.length r.words) (Array.length t.words) in
  Array.blit t.words 0 r.words 0 k;
  (* When shrinking, drop the elements >= n by masking the word that
     straddles the new boundary (words never carry bits >= capacity,
     so nothing else can leak). *)
  let full = n / bits_per_word and rem = n mod bits_per_word in
  if full < Array.length r.words then
    r.words.(full) <-
      (if rem = 0 then 0 else r.words.(full) land ((1 lsl rem) - 1));
  r

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0,%d)" i t.n)

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  if i < 0 || i >= t.n then false
  else
    let w = i / bits_per_word and b = i mod bits_per_word in
    t.words.(w) land (1 lsl b) <> 0

let singleton n i =
  let t = create n in
  add t i;
  t

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.n = b.n && a.words = b.words

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c else Stdlib.compare a.words b.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let same_universe a b op =
  if a.n <> b.n then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch (%d vs %d)" op a.n b.n)

let map2 op a b =
  let r = { n = a.n; words = Array.copy a.words } in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- op r.words.(i) b.words.(i)
  done;
  r

let union a b = same_universe a b "union"; map2 ( lor ) a b
let inter a b = same_universe a b "inter"; map2 ( land ) a b
let diff a b = same_universe a b "diff"; map2 (fun x y -> x land lnot y) a b

let union_into ~dst src =
  same_universe dst src "union_into";
  let changed = ref false in
  for i = 0 to Array.length dst.words - 1 do
    let w = dst.words.(i) lor src.words.(i) in
    if w <> dst.words.(i) then begin
      dst.words.(i) <- w;
      changed := true
    end
  done;
  !changed

let inter_into ~dst src =
  same_universe dst src "inter_into";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let disjoint a b =
  same_universe a b "disjoint";
  let rec go i =
    i >= Array.length a.words || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

let subset a b =
  same_universe a b "subset";
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  for i = 0 to t.n - 1 do
    let w = i / bits_per_word and b = i mod bits_per_word in
    t.words.(w) <- t.words.(w) lor (1 lsl b)
  done

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let hash t = Hashtbl.hash t.words

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf fmt ",";
      Format.fprintf fmt "%d" i)
    t;
  Format.fprintf fmt "}"

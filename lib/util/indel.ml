let lcs a b =
  let la = String.length a and lb = String.length b in
  if la = 0 || lb = 0 then 0
  else begin
    (* Two-row dynamic program: prev.(j) = LCS of a[0..i-1] and
       b[0..j-1]. O(|a|*|b|) time, O(|b|) space. *)
    let prev = Array.make (lb + 1) 0 in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      for j = 1 to lb do
        if a.[i - 1] = b.[j - 1] then cur.(j) <- prev.(j - 1) + 1
        else cur.(j) <- max prev.(j) cur.(j - 1)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let distance a b = String.length a + String.length b - (2 * lcs a b)

let normalized a b =
  let total = String.length a + String.length b in
  if total = 0 then 0. else float_of_int (distance a b) /. float_of_int total

let similarity a b = 1. -. normalized a b

let average_pairwise_similarity ?sample ?(seed = 42) strings =
  let n = Array.length strings in
  if n < 2 then 0.
  else
    let total_pairs = n * (n - 1) / 2 in
    match sample with
    | Some k when k < total_pairs ->
        let g = Prng.create seed in
        let acc = ref 0. in
        for _ = 1 to k do
          let i = Prng.int g n in
          let j =
            let j = Prng.int g (n - 1) in
            if j >= i then j + 1 else j
          in
          acc := !acc +. similarity strings.(i) strings.(j)
        done;
        !acc /. float_of_int k
    | _ ->
        let acc = ref 0. in
        for i = 0 to n - 2 do
          for j = i + 1 to n - 1 do
            acc := !acc +. similarity strings.(i) strings.(j)
          done
        done;
        !acc /. float_of_int total_pairs

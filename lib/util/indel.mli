(** Insertion–deletion (INDEL) string distance and the normalised
    similarity ratio used by the paper's Figure 1.

    The INDEL distance is the Levenshtein distance restricted to
    insertions and deletions (no substitutions); equivalently
    [distance a b = |a| + |b| - 2 * lcs a b]. The paper's normalised
    similarity between two rules is [1 - distance/(|a|+|b|)], e.g.
    ["lewenstein"] vs ["levenshtein"] has distance 3 over length 21,
    similarity 0.8571… (paper §I). *)

val lcs : string -> string -> int
(** Length of a longest common subsequence. *)

val distance : string -> string -> int
(** INDEL distance: the minimum number of single-character insertions
    and deletions turning one string into the other. *)

val normalized : string -> string -> float
(** [distance a b /. (|a| + |b|)]; [0.] when both strings are empty. *)

val similarity : string -> string -> float
(** [1. -. normalized a b]; 1 for identical strings, 0 for strings
    sharing no character. *)

val average_pairwise_similarity :
  ?sample:int -> ?seed:int -> string array -> float
(** Mean of [similarity a b] over unordered pairs of distinct entries,
    the quantity plotted in the paper's Fig. 1. With [~sample:k] at most
    [k] random pairs (seeded by [seed], default 42) are averaged, which
    keeps large rulesets tractable. Returns [0.] for fewer than two
    strings. *)

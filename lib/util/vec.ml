type 'a t = { mutable len : int; mutable data : 'a array }

let create () = { len = 0; data = [||] }

let make n x = { len = n; data = Array.make (max n 1) x }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of range [0,%d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let data = Array.make ncap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let clear t = t.len <- 0

let copy t = { len = t.len; data = Array.copy t.data }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let append dst src = iter (push dst) src

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let map f t =
  let r = create () in
  iter (fun x -> push r (f x)) t;
  r

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let find_opt p t =
  let rec go i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else go (i + 1)
  in
  go 0

let find_index p t =
  let rec go i =
    if i >= t.len then None else if p t.data.(i) then Some i else go (i + 1)
  in
  go 0

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let to_list t = List.rev (fold_left (fun acc x -> x :: acc) [] t)

let of_array a = { len = Array.length a; data = Array.copy a }

let to_array t = Array.sub t.data 0 t.len

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len

(** Deterministic pseudo-random number generation.

    A small, self-contained splitmix64 generator. Every stochastic
    component of the library (dataset synthesis, stream generation,
    property-test corpora) draws from an explicit [t] so that whole
    experiments are reproducible from a single seed and independent of
    the global {!Stdlib.Random} state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the splitmix64 step function. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val byte : t -> char
(** Uniform byte. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on
    an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split g] advances [g] and returns a statistically independent
    child generator; useful to give each dataset/worker its own
    stream. *)

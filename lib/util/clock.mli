(** Monotonic time for benchmarks and job timing.

    [Unix.gettimeofday] is wall-clock time: NTP steps and manual
    clock changes move it, skewing measured durations. {!now} reads
    [CLOCK_MONOTONIC] (via a tiny C stub — OCaml 5.1's [Unix] has no
    [clock_gettime]), which only ever advances. The absolute value is
    meaningless; only differences are. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary fixed point. *)

val elapsed : (unit -> 'a) -> float * 'a
(** [elapsed f] runs [f] and returns its monotonic duration and
    result. *)

(** Fixed-capacity dense bitsets.

    Used throughout the MFSA implementation for sets of merged-FSA
    identifiers: the belonging vector [bel] attached to every MFSA
    transition and the activation sets [J(q)] maintained by the iMFAnt
    engine (paper §III-B, Eq. 4–6). Capacity is fixed at creation; all
    binary operations require operands of equal capacity. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** Size of the universe the set ranges over. *)

val copy : t -> t

val resize : t -> int -> t
(** [resize s n] is a set of capacity [n] holding the elements of [s]
    that are smaller than [n]; [s] is unchanged. Used by the live
    ruleset layer when the merged-FSA universe grows or shrinks.
    @raise Invalid_argument if [n < 0]. *)

val singleton : int -> int -> t
(** [singleton n i] is [{i}] over universe [\[0, n)]. *)

val of_list : int -> int list -> t

val add : t -> int -> unit
(** In-place insertion. @raise Invalid_argument if out of range. *)

val remove : t -> int -> unit

val mem : t -> int -> bool

val is_empty : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (lexicographic on the underlying words); suitable for
    use in [Map]/[Set] functors. *)

val cardinal : t -> int

val union : t -> t -> t
(** Functional union; operands unchanged. *)

val inter : t -> t -> t

val diff : t -> t -> t

val union_into : dst:t -> t -> bool
(** [union_into ~dst src] adds [src] into [dst] in place; returns
    [true] iff [dst] changed. This is the engine's hot path when an
    already-active state receives a second activation set. *)

val inter_into : dst:t -> t -> unit

val disjoint : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val clear : t -> unit
(** Remove all elements in place. *)

val fill : t -> unit
(** Add every element of the universe in place. *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Elements in increasing order. *)

val choose : t -> int option
(** Smallest element, if any. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Renders as [{1,4,7}]. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

(* splitmix64 finaliser (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the top bits, which are the best-mixed ones, and reduce. The
     modulo bias is negligible for the bounds used in this library
     (bound << 2^62). *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next_int64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float g 1.0 < p

let byte g = Char.chr (int g 256)

let choose g arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int g (Array.length arr))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split g =
  let s = next_int64 g in
  { state = mix s }

external now : unit -> (float[@unboxed])
  = "mfsa_clock_monotonic_bytecode" "mfsa_clock_monotonic_native"
[@@noalloc]

let elapsed f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

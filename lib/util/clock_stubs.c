/* Monotonic wall-clock for the timing substrate.
 *
 * OCaml 5.1's Unix library exposes gettimeofday only, which follows
 * NTP steps and manual clock changes; job timings and makespans need
 * CLOCK_MONOTONIC. The stub returns seconds as an unboxed double so
 * the fast path allocates nothing. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

double mfsa_clock_monotonic_native(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double) ts.tv_sec + (double) ts.tv_nsec * 1e-9;
}

CAMLprim value mfsa_clock_monotonic_bytecode(value unit)
{
  return caml_copy_double(mfsa_clock_monotonic_native(unit));
}

(** Growable vectors.

    OCaml 5.1's standard library has no [Dynarray] (it arrived in 5.2),
    so this is the project's growable-array substrate. Used for the COO
    transition vectors ([row]/[col]/[idx]/[bel], paper Fig. 2) and for
    all automaton construction phases, which append heavily. *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit

val copy : 'a t -> 'a t

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val map : ('a -> 'b) -> 'a t -> 'b t

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val find_opt : ('a -> bool) -> 'a t -> 'a option

val find_index : ('a -> bool) -> 'a t -> int option

val of_list : 'a list -> 'a t

val to_list : 'a t -> 'a list

val of_array : 'a array -> 'a t

val to_array : 'a t -> 'a array

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort. *)

module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Pool = Mfsa_engine.Pool
module Obs = Mfsa_obs.Obs
module Snapshot = Mfsa_obs.Snapshot

let now () = Mfsa_util.Clock.now ()

(* One queued input. [batch] is the rendezvous its result is
   aggregated into: workers fill [results.(slot)], decrement
   [remaining] and wake the submitter when the batch settles. *)
type batch = {
  results : Engine_sig.match_event list array;
  mutable failed : exn option;
  mutable remaining : int;
}

type job = { input : string; slot : int; batch : batch }

type msg = Job of job | Stop

type stats = {
  domains : int;
  batches : int;
  inputs : int;
  bytes : int;
  elapsed : float;
  queue_hwm : int;
  queue_capacity : int;
  per_domain_jobs : int array;
  per_domain_busy : float array;
}

type t = {
  engine_name : string;
  n_domains : int;
  queue : msg Bounded_queue.t;
  mutable workers : unit Domain.t array;
  replicas : Engine_sig.t array;  (* replica [i] belongs to worker [i] *)
  (* Written by each worker for itself, read by [stats]; all writes
     happen under [m], so stats snapshots are consistent. *)
  per_domain_jobs : int array;
  per_domain_busy : float array;
  (* Per-instance registry: two services in one process never collide
     on a series. Histogram updates are atomic, so workers observe
     without taking [m]. *)
  reg : Obs.t;
  batch_h : Obs.histogram;
  job_h : Obs.histogram array;
  m : Mutex.t;
  settled : Condition.t;  (* some batch's [remaining] reached 0 *)
  mutable batches : int;
  mutable inputs : int;
  mutable bytes : int;
  mutable elapsed : float;
  (* Batches currently inside [match_batch], and the sum of their
     start times: [stats] charges them [now - t0] each, so elapsed
     (and everything derived from it) moves while a long batch is
     still in flight instead of sticking at the last settled value. *)
  mutable inflight : int;
  mutable inflight_t0 : float;
  mutable closed : bool;
}

(* Worker [i]: greedily pull the next job and run it on this domain's
   private replica. Exceptions are captured into the job's batch — the
   pool always drains; a poisoned input never wedges the service. *)
let worker t i replica () =
  let continue = ref true in
  while !continue do
    match Bounded_queue.pop t.queue with
    | Stop -> continue := false
    | Job j ->
        let t0 = now () in
        let outcome =
          match Engine_sig.run replica j.input with
          | events -> Ok events
          | exception e -> Error e
        in
        let dt = now () -. t0 in
        Obs.observe t.job_h.(i) dt;
        Mutex.lock t.m;
        t.per_domain_jobs.(i) <- t.per_domain_jobs.(i) + 1;
        t.per_domain_busy.(i) <- t.per_domain_busy.(i) +. dt;
        (match outcome with
        | Ok events -> j.batch.results.(j.slot) <- events
        | Error e -> if j.batch.failed = None then j.batch.failed <- Some e);
        j.batch.remaining <- j.batch.remaining - 1;
        if j.batch.remaining = 0 then Condition.broadcast t.settled;
        Mutex.unlock t.m
  done

let create ?(engine = "imfant") ?domains ?queue_capacity z =
  let n_domains =
    match domains with Some d -> d | None -> Pool.available_parallelism ()
  in
  if n_domains < 1 then invalid_arg "Serve.create: need at least one domain";
  let queue_capacity =
    match queue_capacity with Some c -> c | None -> 2 * n_domains
  in
  if queue_capacity < 1 then
    invalid_arg "Serve.create: queue_capacity must be >= 1";
  (* One replica per domain, compiled up front on the calling domain;
     each is handed to exactly one worker and never shared. *)
  let replicas =
    Array.init n_domains (fun _ -> Registry.compile_exn engine z)
  in
  let reg = Obs.create () in
  let batch_h =
    Obs.histogram ~registry:reg
      ~help:"Batch latency in seconds, submission to last result"
      "mfsa_serve_batch_seconds"
  in
  let job_h =
    Array.init n_domains (fun i ->
        Obs.histogram ~registry:reg
          ~help:"Single-input execution latency in seconds, per worker domain"
          ~labels:[ ("domain", string_of_int i) ]
          "mfsa_serve_job_seconds")
  in
  let t =
    {
      engine_name = engine;
      n_domains;
      queue = Bounded_queue.create ~capacity:queue_capacity;
      workers = [||];
      replicas;
      per_domain_jobs = Array.make n_domains 0;
      per_domain_busy = Array.make n_domains 0.;
      reg;
      batch_h;
      job_h;
      m = Mutex.create ();
      settled = Condition.create ();
      batches = 0;
      inputs = 0;
      bytes = 0;
      elapsed = 0.;
      inflight = 0;
      inflight_t0 = 0.;
      closed = false;
    }
  in
  t.workers <-
    Array.init n_domains (fun i -> Domain.spawn (worker t i replicas.(i)));
  t

let engine t = t.engine_name

let domains t = t.n_domains

let match_batch t inputs =
  let t0 = now () in
  Mutex.lock t.m;
  let closed = t.closed in
  let n = Array.length inputs in
  if (not closed) && n > 0 then begin
    (* Register the batch as in flight under the same lock as the
       closed check, so [stats] charges it from its first moment. *)
    t.inflight <- t.inflight + 1;
    t.inflight_t0 <- t.inflight_t0 +. t0
  end;
  Mutex.unlock t.m;
  if closed then invalid_arg "Serve.match_batch: service is shut down";
  if n = 0 then [||]
  else begin
    let batch =
      { results = Array.make n []; failed = None; remaining = n }
    in
    Array.iteri
      (fun slot input -> Bounded_queue.push t.queue (Job { input; slot; batch }))
      inputs;
    Mutex.lock t.m;
    while batch.remaining > 0 do
      Condition.wait t.settled t.m
    done;
    let dt = now () -. t0 in
    t.batches <- t.batches + 1;
    t.inputs <- t.inputs + n;
    t.bytes <-
      t.bytes + Array.fold_left (fun acc s -> acc + String.length s) 0 inputs;
    t.elapsed <- t.elapsed +. dt;
    t.inflight <- t.inflight - 1;
    t.inflight_t0 <- t.inflight_t0 -. t0;
    Mutex.unlock t.m;
    Obs.observe t.batch_h dt;
    match batch.failed with Some e -> raise e | None -> batch.results
  end

let stats t =
  Mutex.lock t.m;
  (* Read the clock under the lock: every registered t0 is <= [now],
     so the in-flight contribution can never be negative. *)
  let now = now () in
  let s =
    {
      domains = t.n_domains;
      batches = t.batches;
      inputs = t.inputs;
      bytes = t.bytes;
      (* Settled batch time plus [now - t0] for each batch still in
         flight: a stats call mid-batch sees serving time (and so
         throughput and utilisation denominators) advance, instead of
         the pre-fix behaviour of reporting the last settled value —
         0 until the very first batch returned. *)
      elapsed =
        t.elapsed +. (float_of_int t.inflight *. now) -. t.inflight_t0;
      queue_hwm = Bounded_queue.hwm t.queue;
      queue_capacity = Bounded_queue.capacity t.queue;
      per_domain_jobs = Array.copy t.per_domain_jobs;
      per_domain_busy = Array.copy t.per_domain_busy;
    }
  in
  Mutex.unlock t.m;
  s

let throughput_mbps (s : stats) =
  if s.elapsed <= 0. then 0. else float_of_int s.bytes /. 1e6 /. s.elapsed

let utilisation (s : stats) =
  Array.map
    (fun busy -> if s.elapsed <= 0. then 0. else busy /. s.elapsed)
    s.per_domain_busy

let snapshot t =
  let module S = Snapshot in
  let s = stats t in
  let own =
    [
      S.gauge_i ~help:"Worker domains" "mfsa_serve_domains" s.domains;
      S.counter_i ~help:"Batches completed" "mfsa_serve_batches_total"
        s.batches;
      S.counter_i ~help:"Inputs processed" "mfsa_serve_inputs_total" s.inputs;
      S.counter_i ~help:"Input bytes processed" "mfsa_serve_bytes_total"
        s.bytes;
      S.counter ~help:"Wall-clock serving seconds, in-flight batches included"
        "mfsa_serve_elapsed_seconds_total" s.elapsed;
      S.gauge ~help:"Aggregate throughput over the serving time, MB/s"
        "mfsa_serve_throughput_mbps" (throughput_mbps s);
      S.gauge_i ~help:"Submission-queue depth high-water mark"
        "mfsa_serve_queue_depth_hwm" s.queue_hwm;
      S.gauge_i ~help:"Submission-queue capacity" "mfsa_serve_queue_capacity"
        s.queue_capacity;
    ]
  in
  let util = utilisation s in
  let per_domain =
    List.concat
      (List.init s.domains (fun i ->
           let d = [ ("domain", string_of_int i) ] in
           [
             S.counter_i ~help:"Jobs executed, per worker domain" ~labels:d
               "mfsa_serve_jobs_total" s.per_domain_jobs.(i);
             S.counter ~help:"Seconds spent executing jobs, per worker domain"
               ~labels:d "mfsa_serve_busy_seconds_total" s.per_domain_busy.(i);
             S.gauge ~help:"Busy fraction of the serving time, per worker domain"
               ~labels:d "mfsa_serve_utilisation" util.(i);
           ]))
  in
  let engines =
    List.concat
      (List.init s.domains (fun i ->
           S.with_labels
             [ ("domain", string_of_int i) ]
             (Engine_sig.stats t.replicas.(i))))
  in
  S.merge [ own; per_domain; Obs.snapshot t.reg; engines ]

let shutdown t =
  Mutex.lock t.m;
  let was_closed = t.closed in
  t.closed <- true;
  Mutex.unlock t.m;
  if not was_closed then begin
    (* Stops queue FIFO behind any still-queued jobs, so in-flight
       batches drain before the workers exit. *)
    for _ = 1 to t.n_domains do
      Bounded_queue.push t.queue Stop
    done;
    Array.iter Domain.join t.workers
  end

module Engine_sig = Mfsa_engine.Engine_sig
module Registry = Mfsa_engine.Registry
module Faulty = Mfsa_engine.Faulty
module Pool = Mfsa_engine.Pool
module Obs = Mfsa_obs.Obs
module Snapshot = Mfsa_obs.Snapshot

let now () = Mfsa_util.Clock.now ()

(* Granularity of the polling waits used where a deadline (or a
   best-effort wake-up) rules out a plain Condition.wait — OCaml's
   Condition has no timed wait. 0.2 ms: coarse enough to stay cheap,
   fine enough for millisecond deadlines. *)
let poll_interval = 0.0002

type admission = Block | Reject | Shed_oldest

type error =
  | Closed
  | Rejected of { queue_capacity : int; shed : bool }
  | Timeout of { settled : int; pending : int }

exception Error of error

exception Job_error of { slot : int; error : exn }

let error_to_string = function
  | Closed -> "service is shut down"
  | Rejected { queue_capacity; shed } ->
      if shed then
        Printf.sprintf
          "batch shed: a queued job was evicted under Shed_oldest (queue \
           capacity %d)"
          queue_capacity
      else
        Printf.sprintf "batch rejected: submission queue full (capacity %d)"
          queue_capacity
  | Timeout { settled; pending } ->
      Printf.sprintf "batch deadline expired (%d settled, %d still pending)"
        settled pending

(* One queued input. [batch] is the rendezvous its result is
   aggregated into: workers fill [results.(slot)], decrement
   [remaining] and wake the submitter when the batch settles. A
   cancelled batch (deadline expired, rejected mid-submission, or a
   job shed) is drained without execution: workers just decrement. *)
type batch = {
  results : Engine_sig.match_event list array;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
  mutable remaining : int;
  mutable cancelled : bool;
  mutable shed : bool;  (* a queued job was evicted under Shed_oldest *)
}

type job = { input : string; slot : int; batch : batch }

type msg =
  | Job of job
  | Ping  (* wake an idle worker so it publishes its replica stats *)
  | Stop

type stats = {
  domains : int;
  batches : int;
  inputs : int;
  bytes : int;
  elapsed : float;
  queue_hwm : int;
  queue_capacity : int;
  per_domain_jobs : int array;
  per_domain_busy : float array;
  timeouts : int;
  rejected : int;
  retries : int;
  restarts : int;
}

type t = {
  engine_name : string;
  spawn : unit -> Engine_sig.t;
      (* Fresh replica factory: what [create]d the initial replicas,
         and what supervision respawns poisoned ones from. Closes over
         an automaton (compile path) or a persisted table bundle
         (artifact path) — both immutable, so calling it from any
         worker domain is safe. *)
  n_domains : int;
  admission : admission;
  retries : int;  (* extra attempts per job on transient/poison faults *)
  backoff : float;  (* base backoff seconds, doubled per retry *)
  is_transient : exn -> bool;
  is_poison : exn -> bool;
  queue : msg Bounded_queue.t;
  mutable workers : unit Domain.t array;
  (* Replica [i] belongs to worker [i], which is the only domain that
     may touch it (run, stats, recompile-on-poison) while workers are
     alive; the array cell itself is updated under [m]. *)
  replicas : Engine_sig.t array;
  per_domain_jobs : int array;
  per_domain_busy : float array;
  (* Per-instance registry: two services in one process never collide
     on a series. Counter/histogram updates are atomic, so workers
     observe without taking [m]. *)
  reg : Obs.t;
  batch_h : Obs.histogram;
  job_h : Obs.histogram array;
  timeouts_c : Obs.counter;
  rejected_c : Obs.counter;
  retries_c : Obs.counter;
  restarts_c : Obs.counter;
  m : Mutex.t;
  settled : Condition.t;
  (* broadcast when: a batch's [remaining] hits 0, [inflight] drops,
     a worker publishes stats, or the workers are joined *)
  mutable batches : int;
  mutable inputs : int;
  mutable bytes : int;
  mutable elapsed : float;
  mutable inflight : int;
  mutable inflight_t0 : float;
  mutable closed : bool;  (* no new batches admitted *)
  mutable stopping : bool;  (* somebody is pushing Stops / joining *)
  mutable joined : bool;  (* workers have exited and been joined *)
  (* Worker-published replica stats: [stat_gen] is bumped by each
     snapshot request; worker [i] publishes its replica's stats into
     [stat_cells.(i)] and advances [stat_done.(i)] whenever it sees
     its cell is behind, at a quiescent point between jobs. *)
  mutable stat_gen : int;
  stat_done : int array;
  stat_cells : Snapshot.t array;
}

(* ------------------------------------------------------- Workers *)

let recompile_replica t i =
  let fresh = t.spawn () in
  Mutex.lock t.m;
  t.replicas.(i) <- fresh;
  Mutex.unlock t.m;
  Obs.inc t.restarts_c;
  fresh

(* Publish this worker's replica stats if a snapshot is waiting on a
   fresher generation than the one we last published. The stats call
   itself runs unlocked — we own the replica — and only the handover
   of the result takes [m]. *)
let maybe_publish_stats t i replica =
  Mutex.lock t.m;
  let want = t.stat_gen in
  let stale = t.stat_done.(i) < want in
  Mutex.unlock t.m;
  if stale then begin
    let s = Engine_sig.stats !replica in
    Mutex.lock t.m;
    t.stat_cells.(i) <- s;
    if t.stat_done.(i) < want then t.stat_done.(i) <- want;
    Condition.broadcast t.settled;
    Mutex.unlock t.m
  end

(* Run one job with bounded retry and replica supervision. A poison
   fault marks the replica dead; we respawn it (freshly compiled
   engine) before deciding whether the job itself gets another
   attempt, so even a non-retried poison leaves the worker healthy
   for the next job. The backtrace is captured at the failure point
   and travels with the exception to the submitter. *)
let execute t i replica input =
  let rec attempt n =
    match Engine_sig.run !replica input with
    | events -> Ok events
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        let poison = t.is_poison e in
        if poison then replica := recompile_replica t i;
        if (poison || t.is_transient e) && n < t.retries then begin
          Obs.inc t.retries_c;
          if t.backoff > 0. then
            Unix.sleepf (t.backoff *. (2. ** float_of_int n));
          attempt (n + 1)
        end
        else Error (e, bt)
  in
  attempt 0

let worker t i () =
  let replica = ref t.replicas.(i) in
  let continue = ref true in
  while !continue do
    (match Bounded_queue.pop t.queue with
    | Stop -> continue := false
    | Ping -> ()
    | Job j ->
        Mutex.lock t.m;
        let cancelled = j.batch.cancelled in
        Mutex.unlock t.m;
        let outcome =
          if cancelled then None
          else begin
            let t0 = now () in
            let r = execute t i replica j.input in
            let dt = now () -. t0 in
            Obs.observe t.job_h.(i) dt;
            Some (r, dt)
          end
        in
        Mutex.lock t.m;
        (match outcome with
        | None -> ()  (* cancelled: drained, not executed *)
        | Some (r, dt) ->
            t.per_domain_jobs.(i) <- t.per_domain_jobs.(i) + 1;
            t.per_domain_busy.(i) <- t.per_domain_busy.(i) +. dt;
            (match r with
            | Ok events -> j.batch.results.(j.slot) <- events
            | Error (e, bt) ->
                if j.batch.failed = None then
                  j.batch.failed <- Some (j.slot, e, bt)));
        j.batch.remaining <- j.batch.remaining - 1;
        if j.batch.remaining = 0 then Condition.broadcast t.settled;
        Mutex.unlock t.m);
    if !continue then maybe_publish_stats t i replica
  done

(* -------------------------------------------------------- Create *)

let default_transient = function Faulty.Transient_fault _ -> true | _ -> false

let default_poison = function Faulty.Replica_poisoned _ -> true | _ -> false

let create_spawn ~engine ~domains ~queue_capacity ~admission ~retries ~backoff
    ~is_transient ~is_poison spawn =
  let n_domains =
    match domains with Some d -> d | None -> Pool.available_parallelism ()
  in
  if n_domains < 1 then invalid_arg "Serve.create: need at least one domain";
  let queue_capacity =
    match queue_capacity with Some c -> c | None -> 2 * n_domains
  in
  if queue_capacity < 1 then
    invalid_arg "Serve.create: queue_capacity must be >= 1";
  if retries < 0 then invalid_arg "Serve.create: retries must be >= 0";
  if backoff < 0. then invalid_arg "Serve.create: backoff must be >= 0";
  (* One replica per domain, compiled up front on the calling domain;
     each is handed to exactly one worker and never shared. *)
  let replicas = Array.init n_domains (fun _ -> spawn ()) in
  let reg = Obs.create () in
  let batch_h =
    Obs.histogram ~registry:reg
      ~help:"Batch latency in seconds, submission to last result"
      "mfsa_serve_batch_seconds"
  in
  let job_h =
    Array.init n_domains (fun i ->
        Obs.histogram ~registry:reg
          ~help:"Single-input execution latency in seconds, per worker domain"
          ~labels:[ ("domain", string_of_int i) ]
          "mfsa_serve_job_seconds")
  in
  let timeouts_c =
    Obs.counter ~registry:reg ~help:"Batches whose deadline expired"
      "mfsa_serve_timeouts_total"
  in
  let rejected_c =
    Obs.counter ~registry:reg
      ~help:"Batches refused admission (queue full under Reject, or shed)"
      "mfsa_serve_rejected_total"
  in
  let retries_c =
    Obs.counter ~registry:reg
      ~help:"Job attempts retried after a transient or poison fault"
      "mfsa_serve_retries_total"
  in
  let restarts_c =
    Obs.counter ~registry:reg
      ~help:"Worker replicas respawned with a freshly compiled engine"
      "mfsa_serve_replica_restarts_total"
  in
  let t =
    {
      engine_name = engine;
      spawn;
      n_domains;
      admission;
      retries;
      backoff;
      is_transient;
      is_poison;
      queue = Bounded_queue.create ~capacity:queue_capacity;
      workers = [||];
      replicas;
      per_domain_jobs = Array.make n_domains 0;
      per_domain_busy = Array.make n_domains 0.;
      reg;
      batch_h;
      job_h;
      timeouts_c;
      rejected_c;
      retries_c;
      restarts_c;
      m = Mutex.create ();
      settled = Condition.create ();
      batches = 0;
      inputs = 0;
      bytes = 0;
      elapsed = 0.;
      inflight = 0;
      inflight_t0 = 0.;
      closed = false;
      stopping = false;
      joined = false;
      stat_gen = 0;
      stat_done = Array.make n_domains 0;
      stat_cells = Array.make n_domains [];
    }
  in
  t.workers <- Array.init n_domains (fun i -> Domain.spawn (worker t i));
  t

(* One full pipeline run, not one per replica: the first compile's
   table bundle (immutable post-export) seeds every replica — and
   every supervision respawn — through the engine's of_tables
   capability in O(size). Engines without the table round trip (the
   per-rule baselines, faulty wrappers) keep the compile-per-replica
   behaviour; for them the capability pair is deliberately absent. *)
let create ?(engine = "imfant") ?domains ?queue_capacity ?(admission = Block)
    ?(retries = 0) ?(backoff = 0.001) ?(is_transient = default_transient)
    ?(is_poison = default_poison) z =
  let spawn =
    let from_source () = Registry.compile_automaton_exn engine z in
    if not (Registry.can_load_tables engine) then from_source
    else
      match Engine_sig.to_tables (from_source ()) with
      | Some tb -> fun () -> Registry.compile_tables_exn engine tb
      | None -> from_source
  in
  create_spawn ~engine ~domains ~queue_capacity ~admission ~retries ~backoff
    ~is_transient ~is_poison spawn

(* Replicas adopted from a persisted table bundle: the bundle is
   immutable, so sharing it read-only across worker domains is safe —
   only the per-replica scratch (created by of_tables) is private.
   Capability is checked here, on the calling domain, not inside a
   worker mid-respawn. *)
let create_tables ?(engine = "imfant") ?domains ?queue_capacity
    ?(admission = Block) ?(retries = 0) ?(backoff = 0.001)
    ?(is_transient = default_transient) ?(is_poison = default_poison) tb =
  ignore (Registry.compile_tables_exn engine tb : Engine_sig.t);
  create_spawn ~engine ~domains ~queue_capacity ~admission ~retries ~backoff
    ~is_transient ~is_poison (fun () -> Registry.compile_tables_exn engine tb)

(* The unified-source entry: a rules/automata source compiles one
   replica per spawn; an artifact source loads its table bundle once
   and every spawn adopts it through the engine's of_tables
   capability. *)
let create_source ?(engine = "imfant") ?domains ?queue_capacity
    ?(admission = Block) ?(retries = 0) ?(backoff = 0.001)
    ?(is_transient = default_transient) ?(is_poison = default_poison) source =
  let one what = function
    | [ x ] -> x
    | l ->
        invalid_arg
          (Printf.sprintf
             "Serve.create_source: source yields %d %s; serving wants exactly \
              one (merge with m=0, or serve each separately)"
             (List.length l) what)
  in
  match Mfsa_engine.Source.resolve source with
  | Mfsa_engine.Source.Compiled_automata zs ->
      create ~engine ?domains ?queue_capacity ~admission ~retries ~backoff
        ~is_transient ~is_poison (one "automata" zs)
  | Mfsa_engine.Source.Compiled_tables tbs ->
      create_tables ~engine ?domains ?queue_capacity ~admission ~retries
        ~backoff ~is_transient ~is_poison (one "table bundles" tbs)

let engine t = t.engine_name

let domains t = t.n_domains

(* --------------------------------------------------- Submission *)

(* Enqueue the batch's jobs under the service's admission policy,
   bounded by [dl] (absolute monotonic deadline). Returns the number
   of jobs that made it into the queue, paired with the reason for
   stopping early, if any. *)
let submit t batch inputs dl =
  let n = Array.length inputs in
  let expired () = match dl with Some d -> now () >= d | None -> false in
  let job slot = Job { input = inputs.(slot); slot; batch } in
  (* Shed victims must be settled on behalf of their (gone or waiting)
     submitter: the whole victim batch is cancelled and marked shed. *)
  let settle_victim = function
    | Job v ->
        Mutex.lock t.m;
        v.batch.cancelled <- true;
        v.batch.shed <- true;
        v.batch.remaining <- v.batch.remaining - 1;
        Condition.broadcast t.settled;
        Mutex.unlock t.m
    | Ping | Stop -> ()  (* unreachable: the predicate never picks these *)
  in
  let evictable = function
    | Job v -> v.batch != batch  (* never shed our own jobs *)
    | Ping | Stop -> false
  in
  let rec push_one slot =
    if slot >= n then (n, None)
    else
      match t.admission with
      | Block when dl = None ->
          Bounded_queue.push t.queue (job slot);
          push_one (slot + 1)
      | Block ->
          let rec poll () =
            if Bounded_queue.try_push t.queue (job slot) then
              push_one (slot + 1)
            else if expired () then (slot, Some `Deadline)
            else begin
              Unix.sleepf poll_interval;
              poll ()
            end
          in
          poll ()
      | Reject ->
          if Bounded_queue.try_push t.queue (job slot) then push_one (slot + 1)
          else (slot, Some `Queue_full)
      | Shed_oldest ->
          let rec poll () =
            match Bounded_queue.try_push_evict t.queue (job slot) ~evictable with
            | `Pushed -> push_one (slot + 1)
            | `Evicted v ->
                settle_victim v;
                push_one (slot + 1)
            | `Full ->
                (* Everything queued is our own batch: wait for the
                   workers to drain it rather than self-shedding. *)
                if expired () then (slot, Some `Deadline)
                else begin
                  Unix.sleepf poll_interval;
                  poll ()
                end
          in
          poll ()
  in
  push_one 0

(* A batch abandoned before it settled: mark it cancelled so workers
   drain (not execute) its queued jobs, account for the slots that
   never entered the queue, and report how far it got. *)
let cancel_batch t batch ~total ~queued =
  Mutex.lock t.m;
  batch.cancelled <- true;
  let settled = total - batch.remaining in
  batch.remaining <- batch.remaining - (total - queued);
  let pending = batch.remaining in
  if batch.remaining = 0 then Condition.broadcast t.settled;
  Mutex.unlock t.m;
  (settled, pending)

let finish_inflight t t0 =
  t.elapsed <- t.elapsed +. (now () -. t0);
  t.inflight <- t.inflight - 1;
  t.inflight_t0 <- t.inflight_t0 -. t0;
  Condition.broadcast t.settled

let try_match_batch ?deadline t inputs =
  let t0 = now () in
  let dl = Option.map (fun d -> t0 +. d) deadline in
  let n = Array.length inputs in
  Mutex.lock t.m;
  if t.closed then begin
    Mutex.unlock t.m;
    Result.Error Closed
  end
  else if n = 0 then begin
    Mutex.unlock t.m;
    Ok [||]
  end
  else begin
    (* Register the batch as in flight under the same lock as the
       closed check: [drain]/[shutdown] wait for [inflight] to reach
       zero before pushing Stops, so a submitter that passed this
       point can never enqueue jobs behind a Stop. *)
    t.inflight <- t.inflight + 1;
    t.inflight_t0 <- t.inflight_t0 +. t0;
    Mutex.unlock t.m;
    let batch =
      {
        results = Array.make n [];
        failed = None;
        remaining = n;
        cancelled = false;
        shed = false;
      }
    in
    let queued, stopped = submit t batch inputs dl in
    match stopped with
    | Some reason ->
        let settled, pending = cancel_batch t batch ~total:n ~queued in
        let err =
          match reason with
          | `Deadline ->
              Obs.inc t.timeouts_c;
              Timeout { settled; pending }
          | `Queue_full ->
              Obs.inc t.rejected_c;
              Rejected
                { queue_capacity = Bounded_queue.capacity t.queue; shed = false }
        in
        Mutex.lock t.m;
        finish_inflight t t0;
        Mutex.unlock t.m;
        Result.Error err
    | None -> (
        Mutex.lock t.m;
        let rec wait () =
          if batch.shed then `Shed
          else if batch.remaining > 0 then
            match dl with
            | None ->
                Condition.wait t.settled t.m;
                wait ()
            | Some d ->
                if now () >= d then `Deadline
                else begin
                  (* No timed Condition.wait in the stdlib: poll. *)
                  Mutex.unlock t.m;
                  Unix.sleepf poll_interval;
                  Mutex.lock t.m;
                  wait ()
                end
          else `Settled
        in
        match wait () with
        | `Settled ->
            let dt = now () -. t0 in
            t.batches <- t.batches + 1;
            t.inputs <- t.inputs + n;
            t.bytes <-
              t.bytes
              + Array.fold_left (fun acc s -> acc + String.length s) 0 inputs;
            finish_inflight t t0;
            let failed = batch.failed in
            Mutex.unlock t.m;
            Obs.observe t.batch_h dt;
            (match failed with
            | Some (slot, e, bt) ->
                Printexc.raise_with_backtrace (Job_error { slot; error = e }) bt
            | None -> Ok batch.results)
        | `Deadline ->
            Mutex.unlock t.m;
            let settled, pending = cancel_batch t batch ~total:n ~queued:n in
            Obs.inc t.timeouts_c;
            Mutex.lock t.m;
            finish_inflight t t0;
            Mutex.unlock t.m;
            Result.Error (Timeout { settled; pending })
        | `Shed ->
            (* Another submitter's Shed_oldest push evicted one of our
               queued jobs (and cancelled the batch for us). *)
            Mutex.unlock t.m;
            Obs.inc t.rejected_c;
            Mutex.lock t.m;
            finish_inflight t t0;
            Mutex.unlock t.m;
            Result.Error
              (Rejected
                 { queue_capacity = Bounded_queue.capacity t.queue; shed = true }))
  end

let match_batch ?deadline t inputs =
  match try_match_batch ?deadline t inputs with
  | Ok results -> results
  | Result.Error e -> raise (Error e)

(* ---------------------------------------------------------- Stats *)

let stats t =
  Mutex.lock t.m;
  (* Read the clock under the lock: every registered t0 is <= [now],
     so the in-flight contribution can never be negative. *)
  let now = now () in
  let s =
    {
      domains = t.n_domains;
      batches = t.batches;
      inputs = t.inputs;
      bytes = t.bytes;
      elapsed =
        t.elapsed +. (float_of_int t.inflight *. now) -. t.inflight_t0;
      queue_hwm = Bounded_queue.hwm t.queue;
      queue_capacity = Bounded_queue.capacity t.queue;
      per_domain_jobs = Array.copy t.per_domain_jobs;
      per_domain_busy = Array.copy t.per_domain_busy;
      timeouts = Obs.counter_value t.timeouts_c;
      rejected = Obs.counter_value t.rejected_c;
      retries = Obs.counter_value t.retries_c;
      restarts = Obs.counter_value t.restarts_c;
    }
  in
  Mutex.unlock t.m;
  s

let throughput_mbps (s : stats) =
  if s.elapsed <= 0. then 0. else float_of_int s.bytes /. 1e6 /. s.elapsed

let utilisation (s : stats) =
  Array.map
    (fun busy -> if s.elapsed <= 0. then 0. else busy /. s.elapsed)
    s.per_domain_busy

(* Replica engine stats, without racing the workers: bump the request
   generation, nudge idle workers with best-effort Pings, and wait for
   each worker to publish its own replica's snapshot at a quiescent
   point. Once the workers are joined the replicas have no owner left
   and are read directly. *)
let replica_snapshots t =
  Mutex.lock t.m;
  if t.joined then begin
    let cells = Array.map Engine_sig.stats t.replicas in
    Mutex.unlock t.m;
    cells
  end
  else begin
    t.stat_gen <- t.stat_gen + 1;
    let g = t.stat_gen in
    Mutex.unlock t.m;
    let rec wait () =
      Mutex.lock t.m;
      let missing =
        (not t.joined) && Array.exists (fun d -> d < g) t.stat_done
      in
      if missing then begin
        Mutex.unlock t.m;
        (* Best-effort wake-up for idle workers; a full queue means
           they are busy and will publish after their current job. *)
        ignore (Bounded_queue.try_push t.queue Ping : bool);
        Unix.sleepf poll_interval;
        wait ()
      end
      else begin
        let cells =
          if t.joined then Array.map Engine_sig.stats t.replicas
          else Array.copy t.stat_cells
        in
        Mutex.unlock t.m;
        cells
      end
    in
    wait ()
  end

let snapshot t =
  let module S = Snapshot in
  let s = stats t in
  let own =
    [
      S.gauge_i ~help:"Worker domains" "mfsa_serve_domains" s.domains;
      S.counter_i ~help:"Batches completed" "mfsa_serve_batches_total"
        s.batches;
      S.counter_i ~help:"Inputs processed" "mfsa_serve_inputs_total" s.inputs;
      S.counter_i ~help:"Input bytes processed" "mfsa_serve_bytes_total"
        s.bytes;
      S.counter ~help:"Wall-clock serving seconds, in-flight batches included"
        "mfsa_serve_elapsed_seconds_total" s.elapsed;
      S.gauge ~help:"Aggregate throughput over the serving time, MB/s"
        "mfsa_serve_throughput_mbps" (throughput_mbps s);
      S.gauge_i ~help:"Submission-queue depth high-water mark"
        "mfsa_serve_queue_depth_hwm" s.queue_hwm;
      S.gauge_i ~help:"Submission-queue capacity" "mfsa_serve_queue_capacity"
        s.queue_capacity;
    ]
  in
  let util = utilisation s in
  let per_domain =
    List.concat
      (List.init s.domains (fun i ->
           let d = [ ("domain", string_of_int i) ] in
           [
             S.counter_i ~help:"Jobs executed, per worker domain" ~labels:d
               "mfsa_serve_jobs_total" s.per_domain_jobs.(i);
             S.counter ~help:"Seconds spent executing jobs, per worker domain"
               ~labels:d "mfsa_serve_busy_seconds_total" s.per_domain_busy.(i);
             S.gauge ~help:"Busy fraction of the serving time, per worker domain"
               ~labels:d "mfsa_serve_utilisation" util.(i);
           ]))
  in
  let engines =
    let cells = replica_snapshots t in
    List.concat
      (List.init s.domains (fun i ->
           S.with_labels [ ("domain", string_of_int i) ] cells.(i)))
  in
  S.merge [ own; per_domain; Obs.snapshot t.reg; engines ]

(* ------------------------------------------------------- Shutdown *)

let drain ?deadline t =
  let dl = Option.map (fun d -> now () +. d) deadline in
  Mutex.lock t.m;
  t.closed <- true;
  (* Wait for every in-flight submitter to finish enqueueing AND
     settle (or give up): only then is it safe to queue Stops — the
     fix for the shutdown/submit race where a submitter that passed
     the closed check enqueued jobs behind the Stops and waited on
     its batch forever. *)
  let rec wait_idle () =
    if t.joined then `Joined
    else if t.stopping then `Stopping
    else if t.inflight > 0 then
      match dl with
      | None ->
          Condition.wait t.settled t.m;
          wait_idle ()
      | Some d ->
          if now () >= d then `Deadline
          else begin
            Mutex.unlock t.m;
            Unix.sleepf poll_interval;
            Mutex.lock t.m;
            wait_idle ()
          end
    else `Idle
  in
  match wait_idle () with
  | `Joined ->
      Mutex.unlock t.m;
      true
  | `Deadline ->
      Mutex.unlock t.m;
      false
  | `Idle ->
      t.stopping <- true;
      Mutex.unlock t.m;
      (* Stops queue behind any still-draining cancelled jobs; one per
         worker. *)
      for _ = 1 to t.n_domains do
        Bounded_queue.push t.queue Stop
      done;
      Array.iter Domain.join t.workers;
      Mutex.lock t.m;
      t.joined <- true;
      Condition.broadcast t.settled;
      Mutex.unlock t.m;
      true
  | `Stopping ->
      (* Another caller is already joining the workers; wait for it. *)
      let rec wait_joined () =
        if t.joined then true
        else
          match dl with
          | None ->
              Condition.wait t.settled t.m;
              wait_joined ()
          | Some d ->
              if now () >= d then false
              else begin
                Mutex.unlock t.m;
                Unix.sleepf poll_interval;
                Mutex.lock t.m;
                wait_joined ()
              end
      in
      let r = wait_joined () in
      Mutex.unlock t.m;
      r

let shutdown t = ignore (drain t : bool)

type 'a t = {
  buf : 'a Queue.t;
  capacity : int;
  m : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable hwm : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    buf = Queue.create ();
    capacity;
    m = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    hwm = 0;
  }

let capacity q = q.capacity

let push q v =
  Mutex.lock q.m;
  while Queue.length q.buf >= q.capacity do
    Condition.wait q.not_full q.m
  done;
  Queue.push v q.buf;
  if Queue.length q.buf > q.hwm then q.hwm <- Queue.length q.buf;
  Condition.signal q.not_empty;
  Mutex.unlock q.m

let pop q =
  Mutex.lock q.m;
  while Queue.is_empty q.buf do
    Condition.wait q.not_empty q.m
  done;
  let v = Queue.pop q.buf in
  Condition.signal q.not_full;
  Mutex.unlock q.m;
  v

let length q =
  Mutex.lock q.m;
  let n = Queue.length q.buf in
  Mutex.unlock q.m;
  n

let hwm q =
  Mutex.lock q.m;
  let n = q.hwm in
  Mutex.unlock q.m;
  n

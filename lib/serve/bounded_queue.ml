type 'a t = {
  buf : 'a Queue.t;
  capacity : int;
  m : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable hwm : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    buf = Queue.create ();
    capacity;
    m = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    hwm = 0;
  }

let capacity q = q.capacity

let push q v =
  Mutex.lock q.m;
  while Queue.length q.buf >= q.capacity do
    Condition.wait q.not_full q.m
  done;
  Queue.push v q.buf;
  if Queue.length q.buf > q.hwm then q.hwm <- Queue.length q.buf;
  Condition.signal q.not_empty;
  Mutex.unlock q.m

let try_push q v =
  Mutex.lock q.m;
  let ok = Queue.length q.buf < q.capacity in
  if ok then begin
    Queue.push v q.buf;
    if Queue.length q.buf > q.hwm then q.hwm <- Queue.length q.buf;
    Condition.signal q.not_empty
  end;
  Mutex.unlock q.m;
  ok

let try_push_evict q v ~evictable =
  Mutex.lock q.m;
  let outcome =
    if Queue.length q.buf < q.capacity then begin
      Queue.push v q.buf;
      `Pushed
    end
    else begin
      (* Rebuild the queue without its oldest evictable element; FIFO
         order of the survivors is preserved. *)
      let tmp = Queue.create () in
      let victim = ref None in
      Queue.iter
        (fun x ->
          if !victim = None && evictable x then victim := Some x
          else Queue.push x tmp)
        q.buf;
      match !victim with
      | None -> `Full
      | Some x ->
          Queue.clear q.buf;
          Queue.transfer tmp q.buf;
          Queue.push v q.buf;
          `Evicted x
    end
  in
  (match outcome with
  | `Pushed | `Evicted _ ->
      if Queue.length q.buf > q.hwm then q.hwm <- Queue.length q.buf;
      Condition.signal q.not_empty
  | `Full -> ());
  Mutex.unlock q.m;
  outcome

let pop q =
  Mutex.lock q.m;
  while Queue.is_empty q.buf do
    Condition.wait q.not_empty q.m
  done;
  let v = Queue.pop q.buf in
  Condition.signal q.not_full;
  Mutex.unlock q.m;
  v

let length q =
  Mutex.lock q.m;
  let n = Queue.length q.buf in
  Mutex.unlock q.m;
  n

let hwm q =
  Mutex.lock q.m;
  let n = q.hwm in
  Mutex.unlock q.m;
  n

(** A blocking bounded FIFO shared between domains — the submission
    queue of {!Serve}, exposed on its own so the backpressure contract
    is testable in isolation.

    A full queue {e blocks} the producer until a consumer pops; no
    element is ever dropped or reordered. The high-water mark records
    the deepest the queue has ever been — the backpressure signal
    {!Serve.stats} reports. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Blocks while the queue holds [capacity] elements. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking push: [false] (and no change) when the queue is full
    — the primitive behind {!Serve}'s [Reject] admission policy and
    its best-effort worker wake-ups. *)

val try_push_evict :
  'a t -> 'a -> evictable:('a -> bool) -> [ `Pushed | `Evicted of 'a | `Full ]
(** Non-blocking push that may make room by dropping the {e oldest}
    element satisfying [evictable] ([Shed_oldest] admission).
    [`Pushed]: there was room. [`Evicted v]: the queue was full, [v]
    was removed (FIFO order of the survivors preserved) and the new
    element entered. [`Full]: full and nothing evictable — no change.
    [evictable] runs under the queue lock; it must not block or touch
    the queue. *)

val pop : 'a t -> 'a
(** Blocks while the queue is empty. *)

val length : 'a t -> int
(** Current depth (a snapshot — other domains keep moving). *)

val hwm : 'a t -> int
(** Deepest the queue has ever been. *)

(** A blocking bounded FIFO shared between domains — the submission
    queue of {!Serve}, exposed on its own so the backpressure contract
    is testable in isolation.

    A full queue {e blocks} the producer until a consumer pops; no
    element is ever dropped or reordered. The high-water mark records
    the deepest the queue has ever been — the backpressure signal
    {!Serve.stats} reports. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Blocks while the queue holds [capacity] elements. *)

val pop : 'a t -> 'a
(** Blocks while the queue is empty. *)

val length : 'a t -> int
(** Current depth (a snapshot — other domains keep moving). *)

val hwm : 'a t -> int
(** Deepest the queue has ever been. *)

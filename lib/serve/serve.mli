(** Domain-parallel batched match service, with fault tolerance.

    The paper's multi-threaded evaluation (§VI-C2) distributes {e
    automata} over a thread pool; this module adds the dual,
    data-parallel axis needed to serve heavy traffic: one automaton,
    many inputs, sharded across OCaml 5 domains. A {!t} owns a pool of
    worker domains, each holding its {e own} compiled replica of the
    selected engine — compiled engines carry mutable scratch (state
    vectors, caches) and must never be shared across domains — plus a
    bounded submission queue in front of the pool.

    {!match_batch} pushes every input of a batch into the queue, the
    workers drain it greedily, and the results are aggregated in
    submission order: element [i] of the result is exactly
    [Engine_sig.run replica inputs.(i)], byte-identical to sequential
    execution. A job that raises does not wedge the pool: the workers
    keep draining, and {!Job_error} is re-raised by [match_batch]
    once its batch has settled (the same drain-then-raise contract as
    {!Mfsa_engine.Pool.run}).

    {2 Fault tolerance}

    Serving hardens the pool in four ways:

    - {e Deadlines.} [match_batch ?deadline] bounds the wall-clock
      time a batch may take, submission included; an expired deadline
      cancels the batch's unexecuted jobs and surfaces {!Timeout}.
    - {e Retries.} A job that fails with a transient fault (by
      default {!Mfsa_engine.Faulty.Transient_fault}) is retried up to
      [retries] times with exponential backoff before the failure is
      reported to the submitter.
    - {e Supervision.} A fault that poisons a replica (by default
      {!Mfsa_engine.Faulty.Replica_poisoned}) triggers a respawn: the
      worker recompiles a fresh engine from the model and carries on;
      the job follows the retry policy.
    - {e Admission control.} A full submission queue can {!Block} the
      submitter (backpressure, the default), {!Reject} the batch, or
      shed the oldest queued job of another batch ({!Shed_oldest}).

    All outcomes are typed ({!error}); {!try_match_batch} returns them
    as a [result], {!match_batch} raises them as {!Error}.

    {[
      let srv = Serve.create ~engine:"hybrid" ~domains:4 ~retries:2 z in
      match Serve.try_match_batch ~deadline:0.050 srv packets with
      | Ok results -> (* results.(i) are packets.(i)'s matches *) ...
      | Error (Timeout { settled; pending }) -> ...
      | Error e -> failwith (Serve.error_to_string e)
    ]} *)

type t

(** What happens when a submission finds the bounded queue full. *)
type admission =
  | Block  (** Wait for room — backpressure, never drops (default). *)
  | Reject
      (** Fail the batch immediately with {!Rejected}; jobs of the
          batch already queued are drained without execution. *)
  | Shed_oldest
      (** Evict the oldest queued job belonging to {e another} batch
          (whose submitter gets [Rejected {shed = true}]) and enter.
          Falls back to waiting when everything queued is the
          submitter's own batch. *)

(** Why a batch produced no results. *)
type error =
  | Closed  (** The service was shut down ({!drain}/{!shutdown}). *)
  | Rejected of { queue_capacity : int; shed : bool }
      (** Refused admission: [shed = false] — the queue was full under
          {!Reject}; [shed = true] — another submitter's
          {!Shed_oldest} push evicted one of this batch's queued
          jobs. *)
  | Timeout of { settled : int; pending : int }
      (** The deadline expired with [settled] jobs finished and
          [pending] still queued (the latter drain without
          executing). *)

exception Error of error
(** Raised by {!match_batch}; {!try_match_batch} returns the payload
    instead. *)

exception Job_error of { slot : int; error : exn }
(** A job raised [error] (after exhausting any retries) while
    processing input [slot] of its batch. Re-raised to the submitter
    with the {e original} backtrace
    ([Printexc.raise_with_backtrace]) once the batch has drained. *)

val error_to_string : error -> string

type stats = {
  domains : int;
  batches : int;  (** Batches completed. *)
  inputs : int;  (** Inputs processed. *)
  bytes : int;  (** Input bytes processed. *)
  elapsed : float;
      (** Wall-clock seconds spent inside {!match_batch} (submission
          to last result), {e including} batches still in flight at
          the moment of the {!stats} call — each contributes the time
          since its submission, so throughput and utilisation read
          sensibly mid-batch instead of 0 (or the last settled value)
          until the batch returns. *)
  queue_hwm : int;
      (** Submission-queue depth high-water mark — how hard the
          backpressure bound was pushed. *)
  queue_capacity : int;
  per_domain_jobs : int array;  (** Jobs executed per worker domain. *)
  per_domain_busy : float array;
      (** Seconds each worker spent executing jobs. *)
  timeouts : int;  (** Batches whose deadline expired. *)
  rejected : int;  (** Batches refused admission (rejected or shed). *)
  retries : int;  (** Job attempts retried after a fault. *)
  restarts : int;  (** Replicas respawned after a poison fault. *)
}

val create :
  ?engine:string ->
  ?domains:int ->
  ?queue_capacity:int ->
  ?admission:admission ->
  ?retries:int ->
  ?backoff:float ->
  ?is_transient:(exn -> bool) ->
  ?is_poison:(exn -> bool) ->
  Mfsa_model.Mfsa.t ->
  t
(** Compile [domains] replicas (default
    {!Mfsa_engine.Pool.available_parallelism}) of the named engine
    (default ["imfant"], any {!Mfsa_engine.Registry} name — including
    [faulty{...}:<engine>] wrappers) and spawn one worker domain per
    replica. [queue_capacity] (default [2 * domains]) bounds the
    submission queue; [admission] (default {!Block}) picks the
    full-queue policy.

    [retries] (default 0) is the number of {e extra} attempts a job
    gets after a transient or poison fault; the [n]-th retry is
    preceded by a [backoff * 2^n] seconds sleep (default base 1 ms).
    [is_transient] and [is_poison] classify exceptions (defaults:
    {!Mfsa_engine.Faulty.Transient_fault} and
    {!Mfsa_engine.Faulty.Replica_poisoned}); a poison fault always
    respawns the replica, retried or not.

    @raise Invalid_argument on an unknown engine name, [domains < 1],
    [queue_capacity < 1], [retries < 0] or [backoff < 0]. *)

val create_tables :
  ?engine:string ->
  ?domains:int ->
  ?queue_capacity:int ->
  ?admission:admission ->
  ?retries:int ->
  ?backoff:float ->
  ?is_transient:(exn -> bool) ->
  ?is_poison:(exn -> bool) ->
  Mfsa_engine.Tables.t ->
  t
(** {!create} from a persisted table bundle (one element of an
    artifact load): every replica — initial and respawned — adopts the
    shared read-only bundle through the engine's
    {!Mfsa_engine.Engine_sig.S.of_tables} capability in O(1), so a
    service comes up (and supervises poisoned replicas) without ever
    re-running the compile pipeline. Per-replica mutable scratch stays
    private; sharing the bundle across domains is safe.

    @raise Invalid_argument additionally when the engine has no table
    loader (the message lists the capable engines). *)

val create_source :
  ?engine:string ->
  ?domains:int ->
  ?queue_capacity:int ->
  ?admission:admission ->
  ?retries:int ->
  ?backoff:float ->
  ?is_transient:(exn -> bool) ->
  ?is_poison:(exn -> bool) ->
  Mfsa_engine.Source.t ->
  t
(** {!create} from a unified {!Mfsa_engine.Source}: rules compile
    through the pipeline; a binary artifact loads once and every
    replica (initial and respawned) adopts the shared read-only table
    bundle through the engine's
    {!Mfsa_engine.Engine_sig.S.of_tables} capability — per-replica
    mutable scratch stays private, so the sharing is safe. The source
    must yield exactly one automaton.

    @raise Invalid_argument additionally when the source yields zero
    or several automata, or when the engine cannot load artifacts and
    the source is one. Source-level failures propagate as their typed
    exceptions ({!Mfsa_core.Pipeline.Compile_error}, the artifact
    library's error, [Source.Error]). *)

val engine : t -> string

val domains : t -> int

val try_match_batch :
  ?deadline:float ->
  t ->
  string array ->
  (Mfsa_engine.Engine_sig.match_event list array, error) result
(** Shard the batch across the worker domains and wait for every
    result. [Ok results] has [results.(i)] equal to
    [Engine_sig.run e inputs.(i)] for a fresh engine [e] — aggregated
    in submission order regardless of completion order. Safe to call
    from several client threads at once.

    [deadline] is a relative bound in seconds covering the whole call
    (submission {e and} execution); when it expires the batch is
    cancelled — jobs already queued drain without executing — and
    [Error (Timeout _)] is returned. Without a deadline a full queue
    blocks indefinitely under {!Block}.

    Failed jobs follow the service retry policy; an exhausted failure
    raises {!Job_error} (with the original backtrace) after the batch
    has drained — job failures are a property of the {e batch}, not an
    admission outcome, so they raise from [try_match_batch] too. *)

val match_batch :
  ?deadline:float ->
  t ->
  string array ->
  Mfsa_engine.Engine_sig.match_event list array
(** {!try_match_batch}, raising {!Error} instead of returning
    [result]. @raise Error on shutdown, rejection or timeout.
    @raise Job_error as {!try_match_batch}. *)

val stats : t -> stats
(** Cumulative counters since {!create}. *)

val throughput_mbps : stats -> float
(** [bytes / elapsed], in MB/s; 0 before any batch. *)

val utilisation : stats -> float array
(** Per-domain busy fraction of the elapsed serving time ([1.0] =
    that worker never waited); an empty-history service reports 0. *)

val snapshot : t -> Mfsa_obs.Snapshot.t
(** The full metric view of the service: {!stats} as
    [mfsa_serve_domains], [mfsa_serve_batches_total],
    [mfsa_serve_inputs_total], [mfsa_serve_bytes_total],
    [mfsa_serve_elapsed_seconds_total], [mfsa_serve_throughput_mbps],
    [mfsa_serve_queue_depth_hwm] and [mfsa_serve_queue_capacity]; the
    fault-tolerance counters [mfsa_serve_timeouts_total],
    [mfsa_serve_rejected_total], [mfsa_serve_retries_total] and
    [mfsa_serve_replica_restarts_total]; per-domain
    [mfsa_serve_jobs_total], [mfsa_serve_busy_seconds_total] and
    [mfsa_serve_utilisation] (labelled [domain=<i>]); the latency
    histograms [mfsa_serve_batch_seconds] and
    [mfsa_serve_job_seconds{domain=<i>}]; and each replica's own
    engine metrics tagged with its domain.

    Replica engine counters are owned by their worker domains
    ({!Mfsa_engine.Engine_sig.S.stats} is domain-confined), so they
    are {e not} read directly: each worker publishes its own replica's
    snapshot at a quiescent point between jobs, nudged awake by a
    best-effort queue ping when idle. The call therefore waits for
    every worker to reach such a point — under sustained load the
    figures are exact as of each worker's most recent job boundary. *)

val drain : ?deadline:float -> t -> bool
(** Graceful shutdown: refuse new batches, wait for every in-flight
    batch to settle, then stop and join the workers. [true] once the
    workers are joined; [false] if [deadline] (relative seconds)
    expired first — the service stays closed and draining, and
    [drain] may be called again to keep waiting. Concurrent callers
    are safe: one joins, the rest wait for it. *)

val shutdown : t -> unit
(** [drain] without a deadline, result ignored. Idempotent; in-flight
    batches drain first, {e then} the stop messages are queued — a
    submitter that was admitted before the close can never strand its
    jobs behind a stop (the historical shutdown/submit race). *)

(** Domain-parallel batched match service.

    The paper's multi-threaded evaluation (§VI-C2) distributes {e
    automata} over a thread pool; this module adds the dual,
    data-parallel axis needed to serve heavy traffic: one automaton,
    many inputs, sharded across OCaml 5 domains. A {!t} owns a pool of
    worker domains, each holding its {e own} compiled replica of the
    selected engine — compiled engines carry mutable scratch (state
    vectors, caches) and must never be shared across domains — plus a
    bounded submission queue in front of the pool.

    {!match_batch} pushes every input of a batch into the queue (the
    push {e blocks} when the queue is full — backpressure, not drops),
    the workers drain it greedily, and the results are aggregated in
    submission order: element [i] of the result is exactly
    [Engine_sig.run replica inputs.(i)], byte-identical to sequential
    execution. A job that raises does not wedge the pool: the workers
    keep draining, and the exception is re-raised by [match_batch]
    once its batch has settled (the same drain-then-raise contract as
    {!Mfsa_engine.Pool.run}).

    {[
      let srv = Serve.create ~engine:"hybrid" ~domains:4 z in
      let results = Serve.match_batch srv packets in
      (* results.(i) are packets.(i)'s matches, in order *)
      Serve.shutdown srv
    ]} *)

type t

type stats = {
  domains : int;
  batches : int;  (** Batches completed. *)
  inputs : int;  (** Inputs processed. *)
  bytes : int;  (** Input bytes processed. *)
  elapsed : float;
      (** Wall-clock seconds spent inside {!match_batch} (submission
          to last result), {e including} batches still in flight at
          the moment of the {!stats} call — each contributes the time
          since its submission, so throughput and utilisation read
          sensibly mid-batch instead of 0 (or the last settled value)
          until the batch returns. *)
  queue_hwm : int;
      (** Submission-queue depth high-water mark — how hard the
          backpressure bound was pushed. *)
  queue_capacity : int;
  per_domain_jobs : int array;  (** Jobs executed per worker domain. *)
  per_domain_busy : float array;
      (** Seconds each worker spent executing jobs. *)
}

val create :
  ?engine:string -> ?domains:int -> ?queue_capacity:int -> Mfsa_model.Mfsa.t -> t
(** Compile [domains] replicas (default
    {!Mfsa_engine.Pool.available_parallelism}) of the named engine
    (default ["imfant"], any {!Mfsa_engine.Registry} name) and spawn
    one worker domain per replica. [queue_capacity] (default
    [2 * domains]) bounds the submission queue.
    @raise Invalid_argument on an unknown engine name, [domains < 1]
    or [queue_capacity < 1]. *)

val engine : t -> string

val domains : t -> int

val match_batch : t -> string array -> Mfsa_engine.Engine_sig.match_event list array
(** Shard the batch across the worker domains and wait for every
    result. [(match_batch t inputs).(i)] equals
    [Engine_sig.run e inputs.(i)] for a fresh engine [e] — results are
    aggregated in submission order regardless of completion order.
    Safe to call from several client threads at once; a full
    submission queue blocks the submitter. Re-raises the first
    exception any of the batch's jobs raised, after the batch has
    drained. @raise Invalid_argument after {!shutdown}. *)

val stats : t -> stats
(** Cumulative counters since {!create}. *)

val throughput_mbps : stats -> float
(** [bytes / elapsed], in MB/s; 0 before any batch. *)

val utilisation : stats -> float array
(** Per-domain busy fraction of the elapsed serving time ([1.0] =
    that worker never waited); an empty-history service reports 0. *)

val snapshot : t -> Mfsa_obs.Snapshot.t
(** The full metric view of the service: {!stats} as
    [mfsa_serve_domains], [mfsa_serve_batches_total],
    [mfsa_serve_inputs_total], [mfsa_serve_bytes_total],
    [mfsa_serve_elapsed_seconds_total], [mfsa_serve_throughput_mbps],
    [mfsa_serve_queue_depth_hwm] and [mfsa_serve_queue_capacity];
    per-domain [mfsa_serve_jobs_total], [mfsa_serve_busy_seconds_total]
    and [mfsa_serve_utilisation] (labelled [domain=<i>]); the
    latency histograms [mfsa_serve_batch_seconds] and
    [mfsa_serve_job_seconds{domain=<i>}]; and each replica's own
    engine metrics tagged with its domain. The service-level series
    are mutex-consistent; replica engine counters are read without
    stopping the workers, so they are exact only when no batch is in
    flight (always memory-safe, possibly a few jobs stale
    otherwise). *)

val shutdown : t -> unit
(** Stop the workers and join them. Idempotent; in-flight batches
    drain first. *)

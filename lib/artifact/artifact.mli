(** Versioned binary MFSA artifacts (compile once, load in O(size)).

    An artifact persists everything {!Mfsa_engine.Imfant.compile}
    derives from a merged automaton — the COO vectors, the byte-class
    partition, the class-indexed transition tables, the (state, class)
    CSR index, the unanchored activation table, the literal-prefilter
    automaton and the {!Mfsa_engine.Tuning} snapshot — as a flat,
    offset-based binary blob: an 8-byte magic
    ({!Mfsa_engine.Source.artifact_magic}), a version word, and a
    checksummed section directory followed by the raw payloads.
    Loading is sequential reads plus validation; nothing is
    re-derived, so artifact-capable engines
    ({!Mfsa_engine.Registry.table_capable_names}) come up in time
    proportional to the file size rather than to the compile
    pipeline's cost. Lazy structures (the hybrid engine's pair-class
    cache) stay lazy.

    Linking this library installs the {!Mfsa_engine.Source} artifact
    loader hook, which is how [Registry.compile] resolves
    [Artifact_file]/[Artifact_bytes] sources. Executables that only
    reach artifacts through [Source] should call {!link} once to keep
    the module (and hence the registration) from being dropped. *)

val version : int
(** The format version this build writes and reads (currently [1]).
    Readers reject any other version with {!Bad_version} — the format
    is versioned precisely so old binaries fail loudly instead of
    misparsing newer layouts. *)

(** {2 Errors}

    Every way a load can fail maps to one constructor, so callers
    (CLIs, the serving admin plane) render a one-line diagnosis
    without pattern-matching on message strings. *)

type error =
  | Bad_magic  (** Not an artifact at all. *)
  | Bad_version of int  (** An artifact, but a version we don't read. *)
  | Truncated of string
      (** A section ends before its payload does; carries the section
          name. *)
  | Checksum of string
      (** Stored CRC-32 disagrees with the payload; carries the
          section name. *)
  | Malformed of string
      (** Checksums pass but the structure is inconsistent (indices
          out of range, dimensions disagreeing across sections). *)
  | Io of string  (** File-system failure, message verbatim. *)

val error_to_string : error -> string

exception Error of error
(** Raised by every reader and writer below (registered with
    [Printexc] for readable uncaught output). *)

(** {2 Compile and persist} *)

val export : Mfsa_model.Mfsa.t list -> Mfsa_engine.Tables.t list
(** Compile each automaton with the transition-centric engine under
    the current {!Mfsa_engine.Tuning} and export its table bundle —
    the "compile" half of compile-then-{!save}. The CSR index is
    forced (artifacts exist to make loads cheap).
    @raise Invalid_argument on an empty list. *)

val to_string : Mfsa_engine.Tables.t list -> string
(** Serialize table bundles to the binary artifact format.
    @raise Invalid_argument on an empty list. *)

val save : string -> Mfsa_engine.Tables.t list -> unit
(** {!to_string} written to a file. @raise Error on I/O failure. *)

(** {2 Load} *)

val of_string : string -> Mfsa_engine.Tables.t list
(** Validate (magic, version, directory bounds, every section
    checksum, structural invariants) and reconstruct the table
    bundles. @raise Error on anything invalid. *)

val load : string -> Mfsa_engine.Tables.t list
(** {!of_string} over a file's contents. @raise Error on I/O
    failure or invalid contents. *)

(** {2 Inspection}

    Header-level metadata without full reconstruction — what
    [mfsa-inspect] prints for [.mfsa] files. Payload checksums of the
    sections actually peeked into are still verified. *)

type section_info = {
  si_name : string;  (** e.g. ["AUTO[0]"], ["META"]. *)
  si_bytes : int;  (** Payload size. *)
}

type info = {
  in_version : int;
  in_bytes : int;  (** Total artifact size. *)
  in_mfsas : int;
  in_rules : int array;  (** Merged FSAs per automaton. *)
  in_states : int array;
  in_classes : int array;  (** Byte classes per automaton. *)
  in_prefiltered : bool array;  (** Whether a prefilter was stored. *)
  in_tuning : Mfsa_engine.Tuning.t;  (** Snapshot taken at save time. *)
  in_sections : section_info list;
}

val describe : string -> info
(** @raise Error as {!load}'s validation would. *)

val describe_string : string -> info

val link : unit -> unit
(** No-op whose call forces this module's initialisation — i.e. the
    {!Mfsa_engine.Source.set_artifact_loader} registration — into any
    executable that would otherwise not reference the library. *)

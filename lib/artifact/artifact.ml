(* Versioned binary MFSA artifacts: the speed-oriented counterpart of
   the extended-ANML interchange format. An artifact stores the merged
   automaton *and* every expensive engine-side derivation — the
   class-indexed transition tables, the (state, class) CSR index, the
   activation table, the byte-class partition, the literal-prefilter
   automaton and the tuning snapshot — in a flat, offset-based layout,
   so loading is O(size) sequential reads plus validation, never a
   re-run of the compile pipeline.

   Layout (all integers little-endian, fixed width):

     0   "MFSAART\x00"            8-byte magic (Source.artifact_magic)
     8   u32 version              format version (see [version])
     12  u32 n_mfsas
     16  u32 n_sections
     20  directory                n_sections x 24 bytes:
           u32 tag                4CC ("META", "AUTO", ...)
           u32 mfsa_index         0xFFFF_FFFF for global sections
           u64 offset             payload start, from file start
           u32 length             payload bytes
           u32 crc32              CRC-32 of the payload
     ...  payloads                directory order, no re-derivation
                                  needed to find anything

   Sections: one global META (tuning snapshot), then per automaton
   AUTO (COO vectors, anchors, patterns), CLS (byte-class partition),
   TBC (per-class transition lists), CSR ((state, class) index,
   optional), INI (unanchored activation table) and PFX (prefilter
   automaton, present only when one was compiled). Every section is
   independently checksummed; the reader validates magic, version,
   directory bounds and every checksum before structural parsing, and
   the structural parse bounds-checks every read, so a truncated or
   bit-flipped file surfaces as a typed [Error], never a crash. *)

module Mfsa = Mfsa_model.Mfsa
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset
module Tables = Mfsa_engine.Tables
module Tuning = Mfsa_engine.Tuning
module Source = Mfsa_engine.Source
module Imfant = Mfsa_engine.Imfant
module Prefilter = Mfsa_engine.Prefilter
module Aho_corasick = Mfsa_engine.Aho_corasick

(* Version 2 appended a u32 [cache_size] to META; everything else is
   unchanged, so version-1 artifacts still load (the reader defaults
   the missing field). *)
let version = 2

let min_version = 1

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated of string
  | Checksum of string
  | Malformed of string
  | Io of string

let error_to_string = function
  | Bad_magic -> "not an MFSA artifact (bad magic)"
  | Bad_version v ->
      Printf.sprintf
        "unsupported artifact version %d (this build reads versions %d-%d)" v
        min_version version
  | Truncated what -> Printf.sprintf "truncated artifact (%s)" what
  | Checksum what -> Printf.sprintf "checksum mismatch in %s" what
  | Malformed what -> Printf.sprintf "malformed artifact: %s" what
  | Io msg -> msg

exception Error of error

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Artifact.Error: %s" (error_to_string e))
    | _ -> None)

let fail e = raise (Error e)

(* ------------------------------------------------------------ CRC32 *)

(* The standard reflected CRC-32 (polynomial 0xEDB88320), slicing-by-8
   — dependency-free, and fast enough that checksumming every section
   stays a small fraction of load time even on multi-megabyte
   artifacts. Table k extends table k-1 by one zero byte, so eight
   lookups advance the CRC over eight input bytes at once. *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let t = Array.make 8 t0 in
     for k = 1 to 7 do
       t.(k) <-
         Array.map (fun prev -> t0.(prev land 0xff) lxor (prev lsr 8)) t.(k - 1)
     done;
     t)

let crc32 s ~pos ~len =
  let t = Lazy.force crc_tables in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let c = ref 0xFFFFFFFF in
  let i = ref pos in
  let stop = pos + len in
  (* Words are composed from unsafe byte reads: [String.get_int32_le]
     would box an [Int32] per call, and this loop runs over every byte
     of the artifact. *)
  let byte k = Char.code (String.unsafe_get s k) in
  while !i + 8 <= stop do
    let k = !i in
    let w1 =
      !c
      lxor (byte k
           lor (byte (k + 1) lsl 8)
           lor (byte (k + 2) lsl 16)
           lor (byte (k + 3) lsl 24))
    and w2 =
      byte (k + 4)
      lor (byte (k + 5) lsl 8)
      lor (byte (k + 6) lsl 16)
      lor (byte (k + 7) lsl 24)
    in
    c :=
      t7.(w1 land 0xff)
      lxor t6.((w1 lsr 8) land 0xff)
      lxor t5.((w1 lsr 16) land 0xff)
      lxor t4.(w1 lsr 24)
      lxor t3.(w2 land 0xff)
      lxor t2.((w2 lsr 8) land 0xff)
      lxor t1.((w2 lsr 16) land 0xff)
      lxor t0.(w2 lsr 24);
    i := !i + 8
  done;
  while !i < stop do
    c := t0.((!c lxor Char.code (String.unsafe_get s !i)) land 0xff)
         lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

(* ----------------------------------------------------------- Writer *)

let add_u8 b v = Buffer.add_uint8 b v
let add_u16 b v = Buffer.add_uint16_le b v
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_int_array b a =
  add_u32 b (Array.length a);
  Array.iter (fun v -> add_u32 b v) a

(* Bitsets are packed LSB-first, 8 members per byte. *)
let add_bitset b set n =
  let nbytes = (n + 7) / 8 in
  let packed = Bytes.make nbytes '\x00' in
  Bitset.iter
    (fun j ->
      let byte = j / 8 in
      Bytes.set packed byte
        (Char.chr (Char.code (Bytes.get packed byte) lor (1 lsl (j mod 8)))))
    set;
  Buffer.add_bytes b packed

let add_bools b flags =
  let n = Array.length flags in
  let set = Bitset.create (max n 1) in
  Array.iteri (fun j f -> if f then Bitset.add set j) flags;
  add_bitset b set n

let add_string32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let meta_payload (tuning : Tuning.t) =
  let b = Buffer.create 8 in
  add_u8 b (if tuning.Tuning.classes then 1 else 0);
  add_u8 b (if tuning.Tuning.prefilter then 1 else 0);
  add_u8 b tuning.Tuning.stride;
  add_u8 b 0;
  (* Version 2: the hybrid cache's base capacity. *)
  add_u32 b tuning.Tuning.cache_size;
  Buffer.contents b

let auto_payload (z : Mfsa.t) =
  let nt = Mfsa.n_transitions z in
  let b = Buffer.create (64 * nt) in
  add_u32 b z.Mfsa.n_states;
  add_u32 b z.Mfsa.n_fsas;
  add_u32 b nt;
  Array.iter (fun v -> add_u32 b v) z.Mfsa.row;
  Array.iter (fun v -> add_u32 b v) z.Mfsa.col;
  Array.iter
    (fun cc ->
      let ranges = Charclass.to_ranges cc in
      add_u16 b (List.length ranges);
      List.iter
        (fun (lo, hi) ->
          add_u8 b (Char.code lo);
          add_u8 b (Char.code hi))
        ranges)
    z.Mfsa.idx;
  Array.iter (fun set -> add_bitset b set z.Mfsa.n_fsas) z.Mfsa.bel;
  Array.iter (fun q -> add_u32 b q) z.Mfsa.init_of;
  Array.iter (fun set -> add_bitset b set z.Mfsa.n_fsas) z.Mfsa.final_sets;
  add_bools b z.Mfsa.anchored_start;
  add_bools b z.Mfsa.anchored_end;
  Array.iter (fun p -> add_string32 b p) z.Mfsa.patterns;
  Buffer.contents b

let cls_payload (cls : Mfsa.classes) =
  let b = Buffer.create (300 + (4 * cls.Mfsa.n_classes)) in
  add_u32 b cls.Mfsa.n_classes;
  Buffer.add_bytes b cls.Mfsa.class_of_byte;
  Array.iter (fun v -> add_u32 b v) cls.Mfsa.class_repr;
  Buffer.contents b

let tbc_payload trans_by_cls =
  let b = Buffer.create 1024 in
  add_u32 b (Array.length trans_by_cls);
  Array.iter (fun row -> add_int_array b row) trans_by_cls;
  Buffer.contents b

let csr_payload (off, tr) =
  let b = Buffer.create (4 * (Array.length off + Array.length tr)) in
  add_int_array b off;
  add_int_array b tr;
  Buffer.contents b

let ini_payload init_unanch n_fsas =
  let b = Buffer.create 1024 in
  add_u32 b (Array.length init_unanch);
  add_u32 b n_fsas;
  Array.iter (fun set -> add_bitset b set n_fsas) init_unanch;
  Buffer.contents b

let pfx_payload pf =
  let tb = Prefilter.export pf in
  let ac = tb.Prefilter.pf_ac in
  let b =
    Buffer.create (4 * Array.length ac.Aho_corasick.ac_next)
  in
  add_u32 b ac.Aho_corasick.ac_states;
  (* The dense next table is by far the largest vector in an artifact;
     entries are state ids, so 16 bits suffice below 65536 AC states.
     The reader derives the width from [ac_states] — no format flag. *)
  if ac.Aho_corasick.ac_states <= 0xFFFF then
    Array.iter (fun v -> add_u16 b v) ac.Aho_corasick.ac_next
  else Array.iter (fun v -> add_u32 b v) ac.Aho_corasick.ac_next;
  add_int_array b ac.Aho_corasick.ac_out_off;
  add_int_array b ac.Aho_corasick.ac_out_ids;
  add_int_array b tb.Prefilter.pf_lens;
  add_u32 b tb.Prefilter.pf_maxlen;
  Buffer.contents b

let tag_meta = "META"
let tag_auto = "AUTO"
let tag_cls = "CLS\x00"
let tag_tbc = "TBC\x00"
let tag_csr = "CSR\x00"
let tag_ini = "INI\x00"
let tag_pfx = "PFX\x00"

let global_index = 0xFFFFFFFF

let to_string (tables : Tables.t list) =
  if tables = [] then invalid_arg "Artifact.to_string: empty table list";
  let sections = ref [] in
  let push tag mfsa_index payload =
    sections := (tag, mfsa_index, payload) :: !sections
  in
  push tag_meta global_index (meta_payload (List.hd tables).Tables.tuning);
  List.iteri
    (fun i (tb : Tables.t) ->
      let z = tb.Tables.z in
      push tag_auto i (auto_payload z);
      (* The byte-class partition travels even when class compression
         was tuned off: it also seeds [Mfsa.classes]'s memo on load. *)
      push tag_cls i
        (cls_payload
           { Mfsa.class_of_byte = tb.Tables.class_of;
             n_classes = tb.Tables.n_classes;
             class_repr =
               (if tb.Tables.n_classes = 256 then Array.init 256 Fun.id
                else (Mfsa.classes z).Mfsa.class_repr) });
      push tag_tbc i (tbc_payload tb.Tables.trans_by_cls);
      (match tb.Tables.csr with
      | Some csr -> push tag_csr i (csr_payload csr)
      | None -> ());
      push tag_ini i (ini_payload tb.Tables.init_unanch z.Mfsa.n_fsas);
      match tb.Tables.prefilter with
      | Some pf -> push tag_pfx i (pfx_payload pf)
      | None -> ())
    tables;
  let sections = List.rev !sections in
  let n_sections = List.length sections in
  let header_len = 20 + (24 * n_sections) in
  let dir = Buffer.create header_len in
  Buffer.add_string dir Source.artifact_magic;
  add_u32 dir version;
  add_u32 dir (List.length tables);
  add_u32 dir n_sections;
  let offset = ref header_len in
  List.iter
    (fun (tag, mfsa_index, payload) ->
      Buffer.add_string dir tag;
      add_u32 dir mfsa_index;
      add_u64 dir !offset;
      add_u32 dir (String.length payload);
      add_u32 dir (crc32 payload ~pos:0 ~len:(String.length payload));
      offset := !offset + String.length payload)
    sections;
  let out = Buffer.create !offset in
  Buffer.add_buffer out dir;
  List.iter (fun (_, _, payload) -> Buffer.add_string out payload) sections;
  Buffer.contents out

(* ----------------------------------------------------------- Reader *)

(* A bounds-checked cursor over one section's payload. Every primitive
   names the section in its [Truncated] error so corruption reports
   point somewhere useful. *)
type cursor = { s : string; limit : int; sec : string; mutable pos : int }

let cursor ~sec s pos len = { s; limit = pos + len; sec; pos }

let need cur n =
  if cur.pos + n > cur.limit then fail (Truncated cur.sec)

let u8 cur =
  need cur 1;
  let v = Char.code (String.unsafe_get cur.s cur.pos) in
  cur.pos <- cur.pos + 1;
  v

let u16 cur =
  need cur 2;
  let v = String.get_uint16_le cur.s cur.pos in
  cur.pos <- cur.pos + 2;
  v

let u32 cur =
  need cur 4;
  let v = Int32.to_int (String.get_int32_le cur.s cur.pos) land 0xFFFFFFFF in
  cur.pos <- cur.pos + 4;
  v

let u64 cur =
  need cur 8;
  let v = Int64.to_int (String.get_int64_le cur.s cur.pos) in
  cur.pos <- cur.pos + 8;
  if v < 0 then fail (Malformed (cur.sec ^ ": offset overflows"));
  v

let raw cur n =
  need cur n;
  let v = String.sub cur.s cur.pos n in
  cur.pos <- cur.pos + n;
  v

(* Array length fields are attacker-controlled until the checksum has
   passed — and the checksum only proves integrity, not honesty — so
   cap every count by what the remaining bytes could possibly hold. *)
let counted cur ~width n what =
  if n < 0 || n * width > cur.limit - cur.pos then
    fail (Malformed (Printf.sprintf "%s: %s count %d exceeds section" cur.sec
                       what n));
  n

(* Bulk u32 reads bypass the per-element cursor bookkeeping: one
   bounds check, then a tight offset loop — the AUTO/CSR/TBC vectors
   are where most of a large artifact's bytes live. *)
let u32_array cur n =
  need cur (4 * n);
  let a = Array.make (max n 1) 0 in
  let base = cur.pos in
  let s = cur.s in
  (* Unsafe byte composition, not [get_int32_le]: the latter boxes an
     [Int32] per element, which dominates bulk decoding of the large
     AUTO/CSR vectors. Bounds were established by [need] above. *)
  for i = 0 to n - 1 do
    let k = base + (4 * i) in
    Array.unsafe_set a i
      (Char.code (String.unsafe_get s k)
      lor (Char.code (String.unsafe_get s (k + 1)) lsl 8)
      lor (Char.code (String.unsafe_get s (k + 2)) lsl 16)
      lor (Char.code (String.unsafe_get s (k + 3)) lsl 24))
  done;
  cur.pos <- base + (4 * n);
  if n = 0 then [||] else a

let u16_array cur n =
  need cur (2 * n);
  let a = Array.make (max n 1) 0 in
  let base = cur.pos in
  let s = cur.s in
  for i = 0 to n - 1 do
    let k = base + (2 * i) in
    Array.unsafe_set a i
      (Char.code (String.unsafe_get s k)
      lor (Char.code (String.unsafe_get s (k + 1)) lsl 8))
  done;
  cur.pos <- base + (2 * n);
  if n = 0 then [||] else a

let int_array cur what =
  let n = counted cur ~width:4 (u32 cur) what in
  u32_array cur n

let bitset cur n_bits =
  let nbytes = (n_bits + 7) / 8 in
  need cur nbytes;
  let set = Bitset.create n_bits in
  (* Byte-wise with a zero-skip: belonging and activation sets are
     sparse, so most bytes contribute nothing. *)
  for b = 0 to nbytes - 1 do
    let byte = Char.code (String.unsafe_get cur.s (cur.pos + b)) in
    if byte <> 0 then
      for k = 0 to 7 do
        let j = (b * 8) + k in
        (* Padding bits past [n_bits] in the last byte are ignored,
           exactly as the bit-indexed reader did. *)
        if byte land (1 lsl k) <> 0 && j < n_bits then Bitset.add set j
      done
  done;
  cur.pos <- cur.pos + nbytes;
  set

let bools cur n =
  let set = bitset cur (max n 1) in
  Array.init n (fun j -> Bitset.mem set j)

let parse_meta cur =
  let classes = u8 cur in
  let prefilter = u8 cur in
  let stride = u8 cur in
  let _reserved = u8 cur in
  if classes > 1 || prefilter > 1 || stride < 1 || stride > 2 then
    fail (Malformed "META: tuning flags out of range");
  (* Version-1 artifacts stop here; version 2 appended the hybrid
     cache's base capacity. Absent means the old default. *)
  let cache_size =
    if cur.limit - cur.pos >= 4 then u32 cur
    else Tuning.default.Tuning.cache_size
  in
  if cache_size < 1 then fail (Malformed "META: cache_size out of range");
  { Tuning.classes = classes = 1; prefilter = prefilter = 1; stride; cache_size }

let parse_auto cur =
  let n_states = u32 cur in
  let n_fsas = u32 cur in
  let nt = counted cur ~width:8 (u32 cur) "transition" in
  let row = u32_array cur nt in
  let col = u32_array cur nt in
  let idx =
    Array.init nt (fun _ ->
        let n_ranges = u16 cur in
        let ranges =
          List.init n_ranges (fun _ ->
              let lo = u8 cur in
              let hi = u8 cur in
              if lo > hi then fail (Malformed "AUTO: inverted class range");
              (Char.chr lo, Char.chr hi))
        in
        Charclass.of_ranges ranges)
  in
  if n_fsas <= 0 || n_fsas > 0x100000 then
    fail (Malformed "AUTO: FSA count out of range");
  let bel = Array.init nt (fun _ -> bitset cur n_fsas) in
  let init_of = Array.init n_fsas (fun _ -> u32 cur) in
  if n_states <= 0 || n_states > (cur.limit - cur.pos) * 8 + 8 then
    fail (Malformed "AUTO: state count out of range");
  let final_sets = Array.init n_states (fun _ -> bitset cur n_fsas) in
  let anchored_start = bools cur n_fsas in
  let anchored_end = bools cur n_fsas in
  let patterns =
    Array.init n_fsas (fun _ ->
        let len = counted cur ~width:1 (u32 cur) "pattern byte" in
        raw cur len)
  in
  (* of_arrays re-validates the structural invariants (ranges, the
     init/final/belonging shapes); its message becomes the typed
     error. *)
  match
    Mfsa.of_arrays ~n_states ~n_fsas ~row ~col ~idx ~bel ~init_of ~final_sets
      ~anchored_start ~anchored_end ~patterns
  with
  | z -> z
  | exception Invalid_argument msg -> fail (Malformed msg)

let parse_cls cur (z : Mfsa.t) =
  let k = u32 cur in
  if k < 1 || k > 256 then fail (Malformed "CLS: class count out of range");
  let class_of = Bytes.of_string (raw cur 256) in
  Bytes.iter
    (fun c ->
      if Char.code c >= k then fail (Malformed "CLS: class id out of range"))
    class_of;
  let class_repr = Array.init k (fun _ -> u32 cur) in
  Array.iter
    (fun r -> if r > 255 then fail (Malformed "CLS: representative not a byte"))
    class_repr;
  let cls = { Mfsa.class_of_byte = class_of; n_classes = k; class_repr } in
  (* Seed the automaton's memo so later [Mfsa.classes] callers (e.g. a
     generation refresh recompiling an engine) skip the partition
     computation too. The identity partition is what tuned-off tables
     store; the memo must keep meaning "the real partition". *)
  if k <> 256 then Atomic.set z.Mfsa.classes_memo (Some cls);
  cls

let parse_tbc cur (z : Mfsa.t) k =
  let stored_k = u32 cur in
  if stored_k <> k then
    fail (Malformed "TBC: class count disagrees with CLS");
  let nt = Mfsa.n_transitions z in
  Array.init k (fun _ ->
      let row = int_array cur "transition" in
      Array.iter
        (fun t ->
          if t >= nt then
            fail (Malformed "TBC: transition index out of range"))
        row;
      row)

let parse_csr cur (z : Mfsa.t) k =
  let off = int_array cur "offset" in
  let tr = int_array cur "transition" in
  let nt = Mfsa.n_transitions z in
  let n_cells = z.Mfsa.n_states * k in
  if Array.length off <> n_cells + 1 then
    fail (Malformed "CSR: offset table size mismatch");
  if off.(0) <> 0 || off.(n_cells) <> Array.length tr then
    fail (Malformed "CSR: offsets do not cover the transition table");
  for cell = 0 to n_cells - 1 do
    if off.(cell) > off.(cell + 1) then
      fail (Malformed "CSR: offsets not monotone")
  done;
  Array.iter
    (fun t ->
      if t >= nt then fail (Malformed "CSR: transition index out of range"))
    tr;
  (off, tr)

let parse_ini cur (z : Mfsa.t) =
  let n_states = u32 cur in
  let n_fsas = u32 cur in
  if n_states <> z.Mfsa.n_states || n_fsas <> z.Mfsa.n_fsas then
    fail (Malformed "INI: dimensions disagree with AUTO");
  Array.init n_states (fun _ -> bitset cur n_fsas)

let parse_pfx cur =
  let ac_states = counted cur ~width:512 (u32 cur) "AC state" in
  let ac_next =
    if ac_states <= 0xFFFF then u16_array cur (ac_states * 256)
    else u32_array cur (ac_states * 256)
  in
  let ac_out_off = int_array cur "AC output offset" in
  let ac_out_ids = int_array cur "AC output id" in
  let pf_lens = int_array cur "literal length" in
  let pf_maxlen = u32 cur in
  match
    (* ~copy:false: these arrays were parsed lines above and belong to
       nobody else — adopting them spares the loader a second pass
       over the artifact's largest vector. *)
    Prefilter.import ~copy:false
      {
        Prefilter.pf_ac =
          { Aho_corasick.ac_states; ac_next; ac_out_off; ac_out_ids };
        pf_lens;
        pf_maxlen;
      }
  with
  | Ok pf -> pf
  | Error msg -> fail (Malformed msg)

(* Directory parsing, shared by the full reader and [describe]. *)
type section = { tag : string; mfsa_index : int; offset : int; length : int;
                 crc : int }

let parse_directory s =
  let len = String.length s in
  let magic_len = String.length Source.artifact_magic in
  if len < magic_len then fail Bad_magic;
  if not (Source.is_artifact_string s) then fail Bad_magic;
  if len < 20 then fail (Truncated "header");
  let hdr = cursor ~sec:"header" s magic_len (len - magic_len) in
  let v = u32 hdr in
  if v < min_version || v > version then fail (Bad_version v);
  let n_mfsas = u32 hdr in
  let n_sections = u32 hdr in
  if n_mfsas < 1 then fail (Malformed "header: no automata");
  if n_sections < 1 || 20 + (24 * n_sections) > len then
    fail (Truncated "section directory");
  let sections =
    List.init n_sections (fun _ ->
        let tag = raw hdr 4 in
        let mfsa_index = u32 hdr in
        let offset = u64 hdr in
        let length = u32 hdr in
        let crc = u32 hdr in
        if offset < 0 || length < 0 || offset + length > len then
          fail (Truncated ("section " ^ String.trim tag));
        { tag; mfsa_index; offset; length; crc })
  in
  (v, n_mfsas, sections)

let section_name sec =
  let tag =
    String.concat ""
      (List.filter_map
         (fun c -> if c = '\x00' then None else Some (String.make 1 c))
         (List.init 4 (String.get sec.tag)))
  in
  if sec.mfsa_index = global_index then tag
  else Printf.sprintf "%s[%d]" tag sec.mfsa_index


let of_string s =
  let _v, n_mfsas, sections = parse_directory s in
  List.iter
    (fun sec ->
      if crc32 s ~pos:sec.offset ~len:sec.length <> sec.crc then
        fail (Checksum ("section " ^ section_name sec)))
    sections;
  let find_global tag =
    List.find_opt (fun sec -> sec.tag = tag && sec.mfsa_index = global_index)
      sections
  in
  let find tag i =
    List.find_opt (fun sec -> sec.tag = tag && sec.mfsa_index = i) sections
  in
  let payload sec = cursor ~sec:(section_name sec) s sec.offset sec.length in
  let require tag i =
    match find tag i with
    | Some sec -> payload sec
    | None ->
        fail
          (Malformed
             (Printf.sprintf "missing section %s[%d]" (String.trim tag) i))
  in
  let tuning =
    match find_global tag_meta with
    | Some sec -> parse_meta (payload sec)
    | None -> fail (Malformed "missing META section")
  in
  List.init n_mfsas (fun i ->
      let z = parse_auto (require tag_auto i) in
      let cls = parse_cls (require tag_cls i) z in
      let trans_by_cls = parse_tbc (require tag_tbc i) z cls.Mfsa.n_classes in
      let csr =
        Option.map
          (fun sec -> parse_csr (payload sec) z cls.Mfsa.n_classes)
          (find tag_csr i)
      in
      let init_unanch = parse_ini (require tag_ini i) z in
      let prefilter =
        Option.map (fun sec -> parse_pfx (payload sec)) (find tag_pfx i)
      in
      {
        Tables.z;
        tuning;
        n_classes = cls.Mfsa.n_classes;
        class_of = cls.Mfsa.class_of_byte;
        trans_by_cls;
        csr;
        init_unanch;
        prefilter;
      })

(* --------------------------------------------------------- File I/O *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> fail (Io msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try really_input_string ic (in_channel_length ic)
          with Sys_error msg -> fail (Io msg))

let load path = of_string (read_file path)

let save path tables =
  let data = to_string tables in
  match open_out_bin path with
  | exception Sys_error msg -> fail (Io msg)
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          try output_string oc data with Sys_error msg -> fail (Io msg))

(* ------------------------------------------------------ Compilation *)

(* The save side reuses the transition-centric engine's compile: the
   artifact is by definition "what Imfant.compile derives", exported.
   The CSR index is forced — artifacts exist to make loads cheap. *)
let export mfsas =
  if mfsas = [] then invalid_arg "Artifact.export: no automata";
  List.map (fun z -> Imfant.export_tables (Imfant.compile z)) mfsas

(* ------------------------------------------------------- Inspection *)

type section_info = {
  si_name : string;  (** e.g. ["AUTO[0]"], ["META"]. *)
  si_bytes : int;
}

type info = {
  in_version : int;
  in_bytes : int;
  in_mfsas : int;
  in_rules : int array;
  in_states : int array;
  in_classes : int array;
  in_prefiltered : bool array;
  in_tuning : Tuning.t;
  in_sections : section_info list;
}

let describe_string s =
  let read_version, n_mfsas, sections = parse_directory s in
  (* Header metadata only: the per-automaton counts live in the first
     few fields of AUTO/CLS, so inspection reads a handful of bytes
     per section — after checking their checksums, since the counts
     come from inside the payloads. *)
  let payload sec = cursor ~sec:(section_name sec) s sec.offset sec.length in
  let checked sec =
    if crc32 s ~pos:sec.offset ~len:sec.length <> sec.crc then
      fail (Checksum ("section " ^ section_name sec));
    payload sec
  in
  let find tag i =
    List.find_opt (fun sec -> sec.tag = tag && sec.mfsa_index = i) sections
  in
  let tuning =
    match find tag_meta global_index with
    | Some sec -> parse_meta (checked sec)
    | None -> fail (Malformed "missing META section")
  in
  let rules = Array.make n_mfsas 0 in
  let states = Array.make n_mfsas 0 in
  let classes = Array.make n_mfsas 0 in
  let prefiltered = Array.make n_mfsas false in
  for i = 0 to n_mfsas - 1 do
    (match find tag_auto i with
    | None -> fail (Malformed (Printf.sprintf "missing section AUTO[%d]" i))
    | Some sec ->
        let cur = checked sec in
        states.(i) <- u32 cur;
        rules.(i) <- u32 cur);
    (match find tag_cls i with
    | None -> ()
    | Some sec -> classes.(i) <- u32 (checked sec));
    prefiltered.(i) <- find tag_pfx i <> None
  done;
  {
    in_version = read_version;
    in_bytes = String.length s;
    in_mfsas = n_mfsas;
    in_rules = rules;
    in_states = states;
    in_classes = classes;
    in_prefiltered = prefiltered;
    in_tuning = tuning;
    in_sections =
      List.map
        (fun sec -> { si_name = section_name sec; si_bytes = sec.length })
        sections;
  }

let describe path = describe_string (read_file path)

(* -------------------------------------------- Source registration *)

let () =
  Source.set_artifact_loader (function
    | `File path -> load path
    | `Bytes bytes -> of_string bytes)

(* Referencing this forces the linker to keep the module (and hence
   the loader registration above) in executables that only consume
   artifacts through [Source]. *)
let link () = ()

(** Synthetic input streams (paper §VI-C: a 1 MB data stream per
    dataset).

    The paper matches each compiled ruleset against a 1 MB stream
    drawn from the benchmark suites. This generator synthesises a
    stream for a ruleset by interleaving random payload bytes with
    {e planted fragments} — literal runs extracted from the rules
    themselves (whole and truncated) — so the engines see the mix of
    partial and complete matches that drives realistic active-set
    sizes (Table II) and throughput (Fig. 9/10). Deterministic in the
    seed. *)

val sample : Mfsa_util.Prng.t -> Mfsa_frontend.Ast.t -> string
(** A random member of the pattern's language: alternation branches
    picked uniformly, stars/plus iterated 0–2/1–2 times, class members
    sampled uniformly. Bounded quantifiers use their lower bound plus
    at most two repeats. *)

val literals_of_rules : string array -> string array
(** The literal runs (length ≥ 2) of every parseable rule, via
    {!Mfsa_frontend.Ast.literals}; rules that fail to parse are
    skipped. *)

val generate :
  ?seed:int ->
  ?density:float ->
  ?payload:string ->
  size:int ->
  string array ->
  string
(** [generate ~size rules] builds a [size]-byte stream. [payload]
    is the alphabet random filler bytes are drawn from (default: the
    printable bytes; a Protomata-like ruleset should pass the
    amino-acid alphabet so its classes see realistic traffic).
    [density]
    (default 0.05) is the per-byte probability of starting a planted
    fragment instead of emitting a random printable payload byte; with
    typical fragment lengths the planted fraction of the stream is a
    few times larger. Plants are a mix of rule-literal runs (whole and
    truncated — partial-match pressure) and full random members of
    rule languages via {!sample} (guaranteed full matches). A ruleset
    with no parseable rules yields pure random payload. *)

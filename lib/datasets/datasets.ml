module Prng = Mfsa_util.Prng
module Charclass = Mfsa_charset.Charclass

type t = {
  name : string;
  abbr : string;
  rules : string array;
  seed : int;
  payload : string;
}

let scaled scale n = max 2 (int_of_float (ceil (float_of_int n *. scale)))

(* ---------------------------------------------------------------- *)
(* BRO — HTTP signatures: family prefixes ("GET /cgi-bin/", ...)     *)
(* shared verbatim across many rules create long mergeable chains;  *)
(* short suffixes differentiate the rules. Avg FSA ≈ 13 states.     *)

let bro217 ?(scale = 1.0) () =
  let seed = 0xB50 in
  let g = Prng.create seed in
  let prefixes =
    [|
      "GET /"; "POST /"; "HEAD /"; "/cgi-bin/"; "/scripts/"; "Host: ";
      "User-Agent: "; "Cookie: "; "/admin/"; "/icons/";
    |]
  in
  let suffix_vocab =
    Rulegen.vocab g ~n:60 ~min_len:3 ~max_len:8 ~alphabet:Rulegen.alpha_lower
  in
  let n = scaled scale 217 in
  let rules =
    Array.init n (fun _ ->
        let prefix = Prng.choose g prefixes in
        let s1 = Prng.choose g suffix_vocab in
        let body =
          match Prng.int g 4 with
          | 0 -> Rulegen.escape_literal (prefix ^ s1)
          | 1 ->
              let s2 = Prng.choose g suffix_vocab in
              Rulegen.escape_literal (prefix ^ s1)
              ^ "\\."
              ^ Rulegen.escape_literal s2
          | 2 -> Rulegen.escape_literal prefix ^ "[a-z]+" ^ Rulegen.escape_literal ("." ^ s1)
          | _ ->
              Rulegen.escape_literal (prefix ^ Rulegen.mutate g ~edits:2 s1)
        in
        body)
  in
  { name = "Bro217"; abbr = "BRO"; rules; seed; payload = Rulegen.printable }

(* ---------------------------------------------------------------- *)
(* DS9 — dot-star patterns: tokenA.*tokenB with tokens from a       *)
(* shared vocabulary. Long tokens give the ≈43-state average.       *)

let dotstar09 ?(scale = 1.0) () =
  let seed = 0xD59 in
  let g = Prng.create seed in
  let vocab =
    Rulegen.vocab g ~n:80 ~min_len:13 ~max_len:24 ~alphabet:Rulegen.alpha_lower
  in
  let n = scaled scale 299 in
  let rules =
    Array.init n (fun _ ->
        let t1 = Prng.choose g vocab and t2 = Prng.choose g vocab in
        let sep = if Prng.chance g 0.3 then "[^\\n]*" else ".*" in
        let tail =
          if Prng.chance g 0.25 then sep ^ Rulegen.escape_literal (Prng.choose g vocab)
          else ""
        in
        Rulegen.escape_literal (Rulegen.mutate g ~edits:1 t1)
        ^ sep
        ^ Rulegen.escape_literal t2
        ^ tail)
  in
  { name = "Dotstar09"; abbr = "DS9"; rules; seed;
    payload = Rulegen.alpha_lower ^ " " ^ Rulegen.digits }

(* ---------------------------------------------------------------- *)
(* PEN — PowerEN-like: medium literal chains, very few classes,     *)
(* occasional single-character alternation. Avg ≈ 15.75 states.     *)

let poweren ?(scale = 1.0) () =
  let seed = 0x9E2 in
  let g = Prng.create seed in
  let vocab =
    Rulegen.vocab g ~n:70 ~min_len:5 ~max_len:9
      ~alphabet:(Rulegen.alpha_lower ^ Rulegen.digits)
  in
  let n = scaled scale 300 in
  let rules =
    Array.init n (fun _ ->
        let a = Prng.choose g vocab and b = Prng.choose g vocab in
        match Prng.int g 5 with
        | 0 -> Rulegen.escape_literal (a ^ b)
        | 1 -> Rulegen.escape_literal a ^ "(" ^ Rulegen.escape_literal b ^ ")?"
        | 2 ->
            let c1 = Rulegen.word g ~alphabet:Rulegen.alpha_lower ~len:1 in
            let c2 = Rulegen.word g ~alphabet:Rulegen.alpha_lower ~len:1 in
            Rulegen.escape_literal a ^ "(" ^ c1 ^ "|" ^ c2 ^ ")"
            ^ Rulegen.escape_literal b
        | 3 -> Rulegen.escape_literal (Rulegen.mutate g ~edits:2 (a ^ b))
        | _ -> Rulegen.escape_literal a ^ Rulegen.escape_literal b ^ "s?")
  in
  { name = "PowerEN"; abbr = "PEN"; rules; seed; payload = Rulegen.printable }

(* ---------------------------------------------------------------- *)
(* PRO — PROSITE-style protein motifs: bracket classes of amino     *)
(* acids and bounded gaps dominate; the Table I CC statistics of    *)
(* Protomata (≈12 states, very high total CC length) come from      *)
(* these classes. A small pool of classes is shared across motifs.  *)

let protomata ?(scale = 1.0) () =
  let seed = 0x960 in
  let g = Prng.create seed in
  let class_pool =
    Array.init 24 (fun _ ->
        let size = Prng.int_in g 2 6 in
        let cls = ref Charclass.empty in
        for _ = 1 to size do
          cls :=
            Charclass.add !cls
              Rulegen.amino_acids.[Prng.int g (String.length Rulegen.amino_acids)]
        done;
        !cls)
  in
  let n = scaled scale 300 in
  let rules =
    Array.init n (fun _ ->
        let len = Prng.int_in g 6 11 in
        let buf = Buffer.create 32 in
        for k = 0 to len - 1 do
          (match Prng.int g 5 with
          | 0 | 1 -> Buffer.add_string buf (Rulegen.pick_class g class_pool)
          | 2 | 3 ->
              Buffer.add_char buf
                Rulegen.amino_acids.[Prng.int g (String.length Rulegen.amino_acids)]
          | _ ->
              let lo = Prng.int_in g 1 2 in
              let hi = lo + Prng.int_in g 0 2 in
              Buffer.add_string buf (Printf.sprintf ".{%d,%d}" lo hi));
          ignore k
        done;
        Buffer.contents buf)
  in
  { name = "Protomata"; abbr = "PRO"; rules; seed; payload = Rulegen.amino_acids }

(* ---------------------------------------------------------------- *)
(* RG1 — range-class-heavy synthetic rules: long chains of ranges   *)
(* and literals from a shared pool, ≈43 states on average.          *)

let ranges1 ?(scale = 1.0) () =
  let seed = 0x261 in
  let g = Prng.create seed in
  let range_pool =
    [|
      Charclass.range 'a' 'f'; Charclass.range 'a' 'z'; Charclass.range '0' '9';
      Charclass.range 'g' 'p'; Charclass.range 'A' 'F'; Charclass.range '0' '4';
      Charclass.range 'q' 'z'; Charclass.range 'A' 'Z';
    |]
  in
  let vocab =
    Rulegen.vocab g ~n:50 ~min_len:6 ~max_len:12 ~alphabet:Rulegen.alpha_lower
  in
  let n = scaled scale 299 in
  let rules =
    Array.init n (fun _ ->
        let segments = Prng.int_in g 3 5 in
        let buf = Buffer.create 48 in
        for _ = 1 to segments do
          Buffer.add_string buf (Rulegen.escape_literal (Prng.choose g vocab));
          let reps = Prng.int_in g 2 5 in
          Buffer.add_string buf (Rulegen.pick_class g range_pool);
          Buffer.add_string buf (Printf.sprintf "{%d}" reps)
        done;
        Buffer.contents buf)
  in
  { name = "Ranges1"; abbr = "RG1"; rules; seed;
    payload = Rulegen.alpha_lower ^ Rulegen.alpha_upper ^ Rulegen.digits }

(* ---------------------------------------------------------------- *)
(* TCP — payload signatures: binary escapes, keywords and decimal   *)
(* fields; families share protocol keywords. Avg ≈ 30 states.       *)

let tcp ?(scale = 1.0) () =
  let seed = 0x7C9 in
  let g = Prng.create seed in
  let keywords =
    [|
      "SMB"; "USER "; "PASS "; "RETR "; "LIST"; "EXEC "; "LOGIN"; "admin";
      "root"; "shell"; "HELO "; "MAIL FROM"; "RCPT TO"; "\x01\x00";
      "\xff\xfe";
    |]
  in
  let vocab =
    Rulegen.vocab g ~n:60 ~min_len:6 ~max_len:12
      ~alphabet:(Rulegen.alpha_lower ^ Rulegen.digits)
  in
  let n = scaled scale 300 in
  let rules =
    Array.init n (fun _ ->
        let k = Prng.choose g keywords in
        let a = Prng.choose g vocab and b = Prng.choose g vocab in
        match Prng.int g 5 with
        | 0 ->
            Rulegen.escape_literal k ^ ".*" ^ Rulegen.escape_literal (a ^ b)
        | 1 ->
            Rulegen.escape_literal (k ^ b) ^ "[0-9]{1,4}"
            ^ Rulegen.escape_literal a
        | 2 ->
            Rulegen.escape_literal (k ^ a)
            ^ "\\x0d\\x0a"
            ^ Rulegen.escape_literal b
        | 3 ->
            Rulegen.escape_literal k
            ^ Rulegen.escape_literal (Rulegen.mutate g ~edits:2 (a ^ b))
            ^ "[a-z]+"
        | _ ->
            Rulegen.escape_literal (a ^ b) ^ "\\d+"
            ^ Rulegen.escape_literal (Prng.choose g vocab))
  in
  { name = "TCP-ex. Homenet"; abbr = "TCP"; rules; seed; payload = Rulegen.printable }

let all ?(scale = 1.0) () =
  [
    bro217 ~scale (); dotstar09 ~scale (); poweren ~scale (); protomata ~scale ();
    ranges1 ~scale (); tcp ~scale ();
  ]

let find ?(scale = 1.0) abbr =
  let target = String.uppercase_ascii abbr in
  List.find_opt (fun d -> d.abbr = target) (all ~scale ())

module Prng = Mfsa_util.Prng
module Parser = Mfsa_frontend.Parser
module Ast = Mfsa_frontend.Ast

let rec sample g ast =
  match ast with
  | Ast.Empty -> ""
  | Ast.Char c -> String.make 1 c
  | Ast.Class cls -> (
      (* Uniform member via the class's byte list. *)
      match Mfsa_charset.Charclass.to_list cls with
      | [] -> ""
      | members -> String.make 1 (List.nth members (Prng.int g (List.length members))))
  | Ast.Concat (a, b) -> sample g a ^ sample g b
  | Ast.Alt (a, b) -> if Prng.bool g then sample g a else sample g b
  | Ast.Star a ->
      String.concat "" (List.init (Prng.int g 3) (fun _ -> sample g a))
  | Ast.Plus a ->
      String.concat "" (List.init (1 + Prng.int g 2) (fun _ -> sample g a))
  | Ast.Opt a -> if Prng.bool g then sample g a else ""
  | Ast.Repeat (a, m, bound) ->
      let extra =
        match bound with
        | Some n -> Prng.int g (min 3 (n - m + 1))
        | None -> Prng.int g 3
      in
      String.concat "" (List.init (m + extra) (fun _ -> sample g a))

let literals_of_rules rules =
  Array.to_list rules
  |> List.concat_map (fun pattern ->
         match Parser.parse pattern with
         | Ok rule ->
             List.filter (fun l -> String.length l >= 2) (Ast.literals rule.Ast.ast)
         | Error _ -> [])
  |> Array.of_list

let generate ?(seed = 7) ?(density = 0.05) ?(payload = Rulegen.printable) ~size
    rules =
  if String.length payload = 0 then
    invalid_arg "Stream_gen.generate: empty payload alphabet";
  let g = Prng.create seed in
  let fragments = literals_of_rules rules in
  let asts =
    Array.to_list rules
    |> List.filter_map (fun pattern ->
           match Parser.parse pattern with
           | Ok rule -> Some rule.Ast.ast
           | Error _ -> None)
    |> Array.of_list
  in
  let buf = Buffer.create size in
  let add_payload () =
    Buffer.add_char buf payload.[Prng.int g (String.length payload)]
  in
  while Buffer.length buf < size do
    if
      (Array.length fragments > 0 || Array.length asts > 0)
      && Prng.chance g density
    then begin
      if Array.length asts > 0 && (Array.length fragments = 0 || Prng.chance g 0.4)
      then
        (* A full random member of some rule's language: a guaranteed
           complete match. *)
        Buffer.add_string buf (sample g (Prng.choose g asts))
      else begin
        (* A literal run, whole or truncated — partial-match pressure
           that activates rules and lets most die. *)
        let frag = Prng.choose g fragments in
        let take =
          if Prng.bool g then String.length frag
          else 1 + Prng.int g (String.length frag)
        in
        Buffer.add_string buf (String.sub frag 0 take)
      end
    end
    else add_payload ()
  done;
  Buffer.sub buf 0 size

module Prng = Mfsa_util.Prng
module Charclass = Mfsa_charset.Charclass

let alpha_lower = "abcdefghijklmnopqrstuvwxyz"
let alpha_upper = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
let digits = "0123456789"
let amino_acids = "ACDEFGHIKLMNPQRSTVWY"
let printable = String.init 95 (fun i -> Char.chr (0x20 + i))

let escape_literal s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '*' | '+' | '?' | '.'
      | '^' | '$' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | c when Char.code c >= 32 && Char.code c <= 126 -> Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c)))
    s;
  Buffer.contents buf

let word g ~alphabet ~len =
  String.init len (fun _ -> alphabet.[Prng.int g (String.length alphabet)])

let vocab g ~n ~min_len ~max_len ~alphabet =
  Array.init n (fun _ -> word g ~alphabet ~len:(Prng.int_in g min_len max_len))

let mutate g ~edits s =
  let s = ref s in
  for _ = 1 to edits do
    let cur = !s in
    let n = String.length cur in
    if n > 1 && Prng.bool g then begin
      (* deletion *)
      let i = Prng.int g n in
      s := String.sub cur 0 i ^ String.sub cur (i + 1) (n - i - 1)
    end
    else begin
      (* insertion of a byte already used in the string, to stay
         within the dataset's alphabet *)
      let c = if n = 0 then 'a' else cur.[Prng.int g n] in
      let i = Prng.int g (n + 1) in
      s := String.sub cur 0 i ^ String.make 1 c ^ String.sub cur i (n - i)
    end
  done;
  if !s = "" then "a" else !s

let pick_class g pool = Charclass.to_spec (Prng.choose g pool)

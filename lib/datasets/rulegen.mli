(** Shared machinery for the synthetic ruleset generators.

    The six dataset generators of {!Datasets} reproduce the structural
    statistics of the paper's Table I by composing three ingredients
    this module provides: (1) seeded {e vocabularies} of token strings
    shared across the rules of a dataset — the sharing is what creates
    the INDEL similarity of Fig. 1 and the mergeable sub-paths the MFSA
    exploits; (2) {e mutation} of tokens (character insertions and
    deletions) to spread similarity below identity; (3) {e escaping} of
    literal bytes so the emitted rule text round-trips through the
    POSIX ERE front-end. *)

val escape_literal : string -> string
(** Escape every ERE metacharacter and non-printable byte of a literal
    so it parses back to exactly that byte sequence. *)

val word : Mfsa_util.Prng.t -> alphabet:string -> len:int -> string
(** Random word over the given byte alphabet. *)

val vocab :
  Mfsa_util.Prng.t ->
  n:int ->
  min_len:int ->
  max_len:int ->
  alphabet:string ->
  string array
(** [n] random words with independent lengths in [\[min_len, max_len\]]. *)

val mutate : Mfsa_util.Prng.t -> edits:int -> string -> string
(** Apply up to [edits] random single-character insertions/deletions —
    the INDEL edit model of the similarity metric. Never returns the
    empty string. *)

val pick_class :
  Mfsa_util.Prng.t -> Mfsa_charset.Charclass.t array -> string
(** Render a random class of the pool as a bracket expression. *)

val alpha_lower : string
val alpha_upper : string
val digits : string
val amino_acids : string
(** The 20 standard amino-acid one-letter codes, for the
    Protomata-like generator. *)

val printable : string
(** Bytes 0x20–0x7e. *)

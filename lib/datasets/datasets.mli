(** Synthetic reproductions of the paper's six benchmark rulesets
    (Table I).

    The original rule files (Becchi et al.'s Bro217/Dotstar09/Ranges1/
    TCP, ANMLZoo's PowerEN/Protomata) are not redistributable inside
    this sealed build environment, so each generator synthesises a
    ruleset with the same {e structural statistics} — number of REs,
    average automaton size, character-class density, morphological
    similarity regime — which is what the merging algorithm and the
    engines actually observe (DESIGN.md, substitution 1). All
    generators are deterministic in their seed.

    - [bro217]: HTTP/ids signatures; short literal-heavy patterns in
      families sharing request-line prefixes.
    - [dotstar09]: pairs/triples of long tokens separated by [.*].
    - [poweren]: medium literal patterns, few classes, light
      alternation.
    - [protomata]: PROSITE-style protein motifs — bracket classes of
      amino acids and bounded [.{m,n}] gaps.
    - [ranges1]: range-class-heavy patterns ([\[a-f\]] etc.).
    - [tcp]: payload signatures mixing binary escapes, decimal fields
      and keywords. *)

type t = {
  name : string;  (** Full name, e.g. "Bro217". *)
  abbr : string;  (** Table I abbreviation, e.g. "BRO". *)
  rules : string array;  (** The REs, parseable by {!Mfsa_frontend.Parser}. *)
  seed : int;  (** Seed the ruleset was generated from. *)
  payload : string;
      (** Alphabet for the dataset's stream filler bytes
          ({!Stream_gen.generate}'s [payload]): amino acids for PRO,
          printable bytes elsewhere. *)
}

val bro217 : ?scale:float -> unit -> t
val dotstar09 : ?scale:float -> unit -> t
val poweren : ?scale:float -> unit -> t
val protomata : ?scale:float -> unit -> t
val ranges1 : ?scale:float -> unit -> t
val tcp : ?scale:float -> unit -> t
(** [scale] multiplies the number of rules (default 1.0 = the paper's
    ruleset size, e.g. 217 rules for BRO); at least 2 rules are always
    produced. *)

val all : ?scale:float -> unit -> t list
(** The six datasets in the paper's order: BRO, DS9, PEN, PRO, RG1,
    TCP. *)

val find : ?scale:float -> string -> t option
(** Lookup by abbreviation (case-insensitive). *)

type labels = (string * string) list

type histogram = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value = Counter of float | Gauge of float | Histogram of histogram

type sample = { name : string; help : string; labels : labels; value : value }

type t = sample list

(* ----------------------------------------------------- Constructors *)

let norm_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let sample ?(help = "") ?(labels = []) name value =
  { name; help; labels = norm_labels labels; value }

let counter ?help ?labels name v = sample ?help ?labels name (Counter v)

let counter_i ?help ?labels name v = counter ?help ?labels name (float_of_int v)

let gauge ?help ?labels name v = sample ?help ?labels name (Gauge v)

let gauge_i ?help ?labels name v = gauge ?help ?labels name (float_of_int v)

let histogram ?help ?labels name ~bounds ~counts ~sum =
  if Array.length counts <> Array.length bounds + 1 then
    invalid_arg "Snapshot.histogram: need one count cell per bound plus overflow";
  let count = Array.fold_left ( + ) 0 counts in
  sample ?help ?labels name (Histogram { bounds; counts; sum; count })

(* ------------------------------------------------------ Combinators *)

let compare_sample a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else compare a.labels b.labels

let normalize t = List.stable_sort compare_sample t

let merge ts = normalize (List.concat ts)

let with_labels extra t =
  let extra = norm_labels extra in
  List.map
    (fun s ->
      let added =
        List.filter (fun (k, _) -> not (List.mem_assoc k s.labels)) extra
      in
      { s with labels = norm_labels (s.labels @ added) })
    t

let without_label key t =
  List.map
    (fun s -> { s with labels = List.remove_assoc key s.labels })
    t

let find ?labels t name =
  List.find_opt
    (fun s ->
      s.name = name
      && match labels with None -> true | Some l -> s.labels = norm_labels l)
    t

let number ?labels t name =
  match find ?labels t name with
  | Some { value = Counter v | Gauge v; _ } -> Some v
  | Some { value = Histogram _; _ } | None -> None

let equal a b =
  (* Help strings describe, they don't identify: two snapshots of the
     same counters are equal even if one carries help text. *)
  let strip t = List.map (fun s -> { s with help = "" }) (normalize t) in
  strip a = strip b

let quantile h q =
  if h.count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (Float.ceil (q *. float_of_int h.count)) in
    let rank = max 1 (min h.count rank) in
    let n = Array.length h.counts in
    let rec go i acc =
      if i >= n then infinity
      else
        let acc = acc + h.counts.(i) in
        if acc >= rank then
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        else go (i + 1) acc
    in
    go 0 0
  end

(* ------------------------------------------------------- Rendering *)

(* Numbers in a form both Prometheus parsers and the cram tests'
   [0-9.]* scrubbing accept: integral values without a point or
   exponent, the rest in plain decimal. *)
let fmt_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let fmt_bound v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let pp ppf t =
  List.iter
    (fun s ->
      let v =
        match s.value with
        | Counter v -> fmt_number v
        | Gauge v -> fmt_number v
        | Histogram h ->
            Printf.sprintf "histogram(count=%d, sum=%s)" h.count
              (fmt_number h.sum)
      in
      Format.fprintf ppf "%s%s = %s@." s.name (render_labels s.labels) v)
    (normalize t)

(* ------------------------------------------------------ Prometheus *)

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let to_prometheus t =
  let t = normalize t in
  let buf = Buffer.create 1024 in
  let last_header = ref "" in
  List.iter
    (fun s ->
      (* One HELP/TYPE header per name; normalization grouped the
         samples, so emit it at each name change. *)
      if s.name <> !last_header then begin
        last_header := s.name;
        if s.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.name s.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name (type_name s.value))
      end;
      match s.value with
      | Counter v | Gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name
               (render_labels s.labels)
               (fmt_number v))
      | Histogram h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i bound ->
              cumulative := !cumulative + h.counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (render_labels (s.labels @ [ ("le", fmt_bound bound) ]))
                   !cumulative))
            h.bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" s.name
               (render_labels (s.labels @ [ ("le", "+Inf") ]))
               h.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name
               (render_labels s.labels)
               (fmt_number h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name
               (render_labels s.labels)
               h.count))
    t;
  Buffer.contents buf

(* ------------------------------------------------------------ JSON *)

let json_escape v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let to_json t =
  let t = normalize t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  let last = List.length t - 1 in
  List.iteri
    (fun i s ->
      let prefix =
        Printf.sprintf "  {\"name\": \"%s\", \"type\": \"%s\", \"labels\": %s"
          (json_escape s.name) (type_name s.value) (json_labels s.labels)
      in
      Buffer.add_string buf prefix;
      (match s.value with
      | Counter v | Gauge v ->
          Buffer.add_string buf (Printf.sprintf ", \"value\": %s" (fmt_number v))
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf ", \"count\": %d, \"sum\": %s, \"buckets\": ["
               h.count (fmt_number h.sum));
          Array.iteri
            (fun k bound ->
              Buffer.add_string buf
                (Printf.sprintf "%s{\"le\": \"%s\", \"count\": %d}"
                   (if k = 0 then "" else ", ")
                   (fmt_bound bound) h.counts.(k)))
            h.bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s{\"le\": \"+Inf\", \"count\": %d}]"
               (if Array.length h.bounds = 0 then "" else ", ")
               h.counts.(Array.length h.bounds)));
      Buffer.add_string buf
        (Printf.sprintf "}%s\n" (if i = last then "" else ",")))
    t;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* ----------------------------------------------------------- to_kv *)

let to_kv ?(drop_labels = []) t =
  List.concat_map
    (fun s ->
      let labels =
        List.filter (fun (k, _) -> not (List.mem k drop_labels)) s.labels
      in
      let key suffix =
        s.name ^ suffix
        ^
        match labels with
        | [] -> ""
        | _ ->
            "{"
            ^ String.concat ","
                (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
            ^ "}"
      in
      match s.value with
      | Counter v | Gauge v -> [ (key "", fmt_number v) ]
      | Histogram h ->
          [
            (key "_count", string_of_int h.count);
            (key "_sum", fmt_number h.sum);
          ])
    (normalize t)

module Clock = Mfsa_util.Clock

type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  bounds : float array;
  counts : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  sum : float Atomic.t;
  total : int Atomic.t;
}

type metric = MCounter of counter | MGauge of gauge | MHist of histogram

type t = {
  lock : Mutex.t;
  tbl : (string * Snapshot.labels, string * metric) Hashtbl.t;
      (* (name, labels) -> (help, metric) *)
}

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32 }

let default = create ()

let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* 2^-20 s (~1 µs) .. 2^4 s: 25 log2 buckets. *)
let latency_buckets = Array.init 25 (fun i -> Float.pow 2. (float_of_int (i - 20)))

let norm_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | MCounter _ -> "counter"
  | MGauge _ -> "gauge"
  | MHist _ -> "histogram"

(* Get-or-create under the registry lock; only registration takes it,
   updates go straight to the atomics. *)
let intern registry help labels name make match_metric =
  let key = (name, norm_labels labels) in
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () ->
      match Hashtbl.find_opt registry.tbl key with
      | Some (_, m) -> (
          match match_metric m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Obs: %s is already registered as a %s" name (kind_name m)))
      | None ->
          let v, m = make () in
          Hashtbl.replace registry.tbl key (help, m);
          v)

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  intern registry help labels name
    (fun () ->
      let c = Atomic.make 0 in
      (c, MCounter c))
    (function MCounter c -> Some c | _ -> None)

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  intern registry help labels name
    (fun () ->
      let g = Atomic.make 0. in
      (g, MGauge g))
    (function MGauge g -> Some g | _ -> None)

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(bounds = latency_buckets) name =
  intern registry help labels name
    (fun () ->
      let h =
        {
          bounds;
          counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
          total = Atomic.make 0;
        }
      in
      (h, MHist h))
    (function MHist h -> Some h | _ -> None)

(* --------------------------------------------------------- Updates *)

let add c by = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c by)

let inc c = add c 1

let set g v = if Atomic.get enabled_flag then Atomic.set g v

let rec atomic_add_float a x =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. x)) then atomic_add_float a x

let gauge_add g delta = if Atomic.get enabled_flag then atomic_add_float g delta

(* Binary search for the first bound >= v; the overflow bucket when
   none is. *)
let bucket_of bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.counts.(bucket_of h.bounds v) 1);
    ignore (Atomic.fetch_and_add h.total 1);
    atomic_add_float h.sum v
  end

let time h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> observe h (Clock.now () -. t0)) f
  end

(* ---------------------------------------------- Process gauges *)

(* Captured when the library is loaded — for the processes that serve
   metrics (the daemon, the CLIs) that is the process start for every
   practical purpose, and it needs no /proc parsing. *)
let process_t0 = Unix.gettimeofday ()

let process_start_time ?registry () =
  let g =
    gauge ?registry ~help:"Unix time the process started, in seconds"
      "mfsa_process_start_time_seconds"
  in
  (* Bypass [set]: the start time must survive set_enabled false and
     re-appear after an Obs.reset-then-register. *)
  Atomic.set g process_t0;
  g

let process_connections_active ?registry () =
  gauge ?registry ~help:"Currently open client connections"
    "mfsa_process_connections_active"

(* --------------------------------------------------------- Reading *)

let counter_value c = Atomic.get c

let gauge_value g = Atomic.get g

let snapshot registry =
  Mutex.lock registry.lock;
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.tbl []
  in
  Mutex.unlock registry.lock;
  Snapshot.normalize
    (List.map
       (fun ((name, labels), (help, m)) ->
         match m with
         | MCounter c ->
             Snapshot.counter_i ~help ~labels name (Atomic.get c)
         | MGauge g -> Snapshot.gauge ~help ~labels name (Atomic.get g)
         | MHist h ->
             Snapshot.histogram ~help ~labels name ~bounds:h.bounds
               ~counts:(Array.map Atomic.get h.counts)
               ~sum:(Atomic.get h.sum))
       entries)

let reset registry =
  Mutex.lock registry.lock;
  Hashtbl.iter
    (fun _ (_, m) ->
      match m with
      | MCounter c -> Atomic.set c 0
      | MGauge g -> Atomic.set g 0.
      | MHist h ->
          Array.iter (fun cell -> Atomic.set cell 0) h.counts;
          Atomic.set h.sum 0.;
          Atomic.set h.total 0)
    registry.tbl;
  Mutex.unlock registry.lock

(** Typed metric snapshots and their exporters.

    A snapshot is an immutable, self-describing list of metric
    samples: what {!Obs.snapshot} captures from a live registry, what
    {!Mfsa_engine.Engine_sig.S.stats} returns from an engine's
    internal counters, and what the exporters below turn into
    Prometheus text or JSON. Snapshots from different sources compose
    by list concatenation ({!merge}), so one scrape can cover the
    compile pipeline, every engine replica and the serving layer.

    Samples are plain data: snapshots taken from deterministic
    counters compare with {!equal} (the reset-reproducibility property
    suite relies on this). *)

type labels = (string * string) list
(** Label pairs, e.g. [[("engine", "imfant"); ("domain", "0")]].
    Normalised to ascending key order by the constructors. *)

type histogram = {
  bounds : float array;
      (** Ascending upper bounds (inclusive, seconds for latency
          histograms). *)
  counts : int array;
      (** Per-bucket (non-cumulative) counts; length
          [Array.length bounds + 1], the last cell being the overflow
          (+Inf) bucket. *)
  sum : float;  (** Sum of all observed values. *)
  count : int;  (** Total observations. *)
}

type value = Counter of float | Gauge of float | Histogram of histogram

type sample = {
  name : string;
      (** Prometheus-style metric name: [a-zA-Z_:] followed by
          alphanumerics, underscores and colons. *)
  help : string;  (** One-line description ([# HELP]). *)
  labels : labels;
  value : value;
}

type t = sample list

(** {2 Constructors} *)

val counter : ?help:string -> ?labels:labels -> string -> float -> sample
val counter_i : ?help:string -> ?labels:labels -> string -> int -> sample
val gauge : ?help:string -> ?labels:labels -> string -> float -> sample
val gauge_i : ?help:string -> ?labels:labels -> string -> int -> sample

val histogram :
  ?help:string ->
  ?labels:labels ->
  string ->
  bounds:float array ->
  counts:int array ->
  sum:float ->
  sample
(** @raise Invalid_argument if [counts] is not one longer than
    [bounds]. *)

(** {2 Combinators} *)

val merge : t list -> t
(** Concatenation plus {!normalize}. *)

val normalize : t -> t
(** Sort samples by (name, labels) — the canonical order every
    exporter and {!equal} work on. *)

val with_labels : labels -> t -> t
(** Add the given labels to every sample (existing keys win over the
    added ones). *)

val without_label : string -> t -> t
(** Drop one label key from every sample — e.g. the [engine] label
    when the context already names the engine. *)

val find : ?labels:labels -> t -> string -> sample option
(** First sample with that name (and, when given, those exact
    labels). *)

val number : ?labels:labels -> t -> string -> float option
(** The numeric value of a counter or gauge sample found by {!find};
    [None] for histograms or absent samples. *)

val equal : t -> t -> bool
(** Structural equality up to sample order. *)

val quantile : histogram -> float -> float
(** Upper-bound estimate of the [q]-th quantile ([0 <= q <= 1]) from
    the bucket counts: the upper bound of the bucket holding the
    [ceil (q * count)]-th observation — with the default log2 latency
    buckets, within a factor of 2 of the true value. [0.] for an
    empty histogram; [infinity] when the quantile lands in the
    overflow bucket. [q] is clamped to [\[0, 1\]]. *)

val pp : Format.formatter -> t -> unit

(** {2 Exporters} *)

val to_prometheus : t -> string
(** Prometheus text exposition format: one [# HELP]/[# TYPE] header
    per metric name, histograms as cumulative [_bucket]/[_sum]/
    [_count] series with [le] labels. Samples sharing a name are
    grouped under one header; label values are escaped. *)

val to_json : t -> string
(** A JSON array, one object per sample:
    [{"name": ..., "type": "counter"|"gauge"|"histogram",
      "labels": {...}, "value": ...}] — histograms carry
    ["count"], ["sum"] and ["buckets": [{"le": "...", "count": n}]]
    with the overflow bucket's bound serialized as ["+Inf"]. *)

val to_kv : ?drop_labels:string list -> t -> (string * string) list
(** Compact human-readable pairs, for one-line status output: the
    sample name (suffixed [{k=v,...}] when labels remain after
    [drop_labels]), with integral values rendered without a decimal
    point and histograms flattened to [name_count]/[name_sum]. *)

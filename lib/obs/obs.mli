(** Low-overhead runtime metrics registry.

    The paper's evaluation is offline instrumentation; a serving
    deployment needs the same quantities at run time. This registry
    holds counters, gauges and log-bucketed latency histograms behind
    get-or-create handles: registration takes a lock once, after which
    every update is a handful of atomic operations — safe to call from
    any domain (the {!Mfsa_serve.Serve} workers do), cheap enough for
    per-batch accounting on hot paths. {!snapshot} freezes the whole
    registry into a {!Snapshot.t} for the exporters.

    {!default} is the process-wide registry: the compile pipeline's
    stage spans land there, and the CLIs scrape it. Subsystems that
    want isolation (one {!Mfsa_serve.Serve} instance per registry, so
    two services never collide on a series) {!create} their own.

    Updates can be disabled globally ({!set_enabled}) for overhead
    A/B runs; registration and snapshots still work, observations
    become no-ops. *)

type t
(** A metrics registry. *)

val create : unit -> t

val default : t
(** The process-wide registry. *)

val set_enabled : bool -> unit
(** Globally enable (default) or disable metric updates. *)

val enabled : unit -> bool

type counter
type gauge
type histogram

(** {2 Registration}

    Get-or-create: the same (name, labels) pair always returns the
    same handle, so call sites need no coordination.
    @raise Invalid_argument when the name/labels pair is already
    registered with a different metric kind. *)

val counter : ?registry:t -> ?help:string -> ?labels:Snapshot.labels -> string -> counter
val gauge : ?registry:t -> ?help:string -> ?labels:Snapshot.labels -> string -> gauge

val histogram :
  ?registry:t ->
  ?help:string ->
  ?labels:Snapshot.labels ->
  ?bounds:float array ->
  string ->
  histogram
(** [bounds] default to {!latency_buckets}. *)

val latency_buckets : float array
(** Power-of-two seconds from 2{^-20} (≈1 µs) to 2{^4} (16 s) — the
    default histogram bucketing, wide enough for compile stages and
    batch latencies alike. *)

(** {2 Updates} *)

val inc : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val gauge_add : gauge -> float -> unit
(** Atomically add [delta] (possibly negative) to the gauge — the
    increment/decrement idiom for level gauges such as
    {!process_connections_active}, safe from any domain. *)

val observe : histogram -> float -> unit
(** Record one value (seconds, for latency histograms). *)

val time : histogram -> (unit -> 'a) -> 'a
(** A span: run the thunk and {!observe} its wall-clock duration
    (observed even when the thunk raises). *)

(** {2 Process-level gauges}

    The two series stock Prometheus tooling expects from any
    long-running scrape target, named in the shared [mfsa_process_*]
    namespace so every exporter in the process agrees on them. Both
    are get-or-create like the plain constructors. *)

val process_start_time : ?registry:t -> unit -> gauge
(** [mfsa_process_start_time_seconds]: the Unix time this process
    started (captured when the library is loaded), already {!set} on
    the returned gauge — registering it is enough to make a scrape
    carry it. *)

val process_connections_active : ?registry:t -> unit -> gauge
(** [mfsa_process_connections_active]: currently open client
    connections, starting at 0. The serving daemon raises and lowers
    it around each accepted connection with {!gauge_add}. *)

(** {2 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> float

val snapshot : t -> Snapshot.t
(** Freeze every registered metric, in canonical (name, labels)
    order. *)

val reset : t -> unit
(** Zero every registered metric (handles stay valid) — for tests and
    measurement-window restarts. *)

(** Multi-threaded ruleset execution (paper §VI-C2).

    The paper's multi-threaded evaluation distributes the (M)FSAs of a
    benchmark over a pool of a fixed number of threads; each thread
    repeatedly takes the next remaining automaton and executes it
    against the whole input stream, and the measured latency is the
    time for the whole ruleset. This module reproduces that executor
    with OCaml 5 domains: a shared atomic cursor hands out job indices
    in order; the pool's makespan and each job's own execution time are
    reported. *)

type 'a result = {
  values : 'a array;  (** Per-job results, in job order. *)
  job_times : float array;  (** Per-job wall-clock seconds. *)
  makespan : float;  (** Wall-clock seconds for the whole pool. *)
}

val run : threads:int -> jobs:(unit -> 'a) array -> 'a result
(** [run ~threads ~jobs] executes every job exactly once on a pool of
    [threads] domains (the calling domain counts as one; [threads - 1]
    are spawned). Jobs must not raise — a raising job aborts the run
    with the same exception after the pool drains.
    @raise Invalid_argument if [threads < 1]. *)

val available_parallelism : unit -> int
(** [Domain.recommended_domain_count ()]; the hardware bound the
    paper's Fig. 10 marks at 8 threads on its i7-6700. *)

module Prng = Mfsa_util.Prng
module Snapshot = Mfsa_obs.Snapshot

exception Transient_fault of string

exception Replica_poisoned of string

type config = {
  seed : int;
  fail_every : int;
  poison_every : int;
  delay_every : int;
  delay_ms : float;
  fail_p : float;
  poison_p : float;
  delay_p : float;
}

let default =
  {
    seed = 42;
    fail_every = 5;
    poison_every = 0;
    delay_every = 0;
    delay_ms = 1.;
    fail_p = 0.;
    poison_p = 0.;
    delay_p = 0.;
  }

(* ----------------------------------------------------- Spec parsing *)

let prefix = "faulty"

let starts_with ~p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let parse_param cfg kv =
  match String.index_opt kv '=' with
  | None -> Error (Printf.sprintf "parameter %S is not key=value" kv)
  | Some i -> (
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      let int_v () =
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "%s wants a non-negative integer, got %S" key v)
      in
      let prob_v () =
        match float_of_string_opt v with
        | Some p when p >= 0. && p <= 1. -> Ok p
        | _ -> Error (Printf.sprintf "%s wants a probability in [0,1], got %S" key v)
      in
      let float_v () =
        match float_of_string_opt v with
        | Some f when f >= 0. -> Ok f
        | _ -> Error (Printf.sprintf "%s wants a non-negative number, got %S" key v)
      in
      match key with
      | "seed" -> (
          match int_of_string_opt v with
          | Some n -> Ok { cfg with seed = n }
          | None -> Error (Printf.sprintf "seed wants an integer, got %S" v))
      | "fail_every" -> Result.map (fun n -> { cfg with fail_every = n }) (int_v ())
      | "poison_every" ->
          Result.map (fun n -> { cfg with poison_every = n }) (int_v ())
      | "delay_every" ->
          Result.map (fun n -> { cfg with delay_every = n }) (int_v ())
      | "delay_ms" -> Result.map (fun f -> { cfg with delay_ms = f }) (float_v ())
      | "fail" -> Result.map (fun p -> { cfg with fail_p = p }) (prob_v ())
      | "poison" -> Result.map (fun p -> { cfg with poison_p = p }) (prob_v ())
      | "delay" -> Result.map (fun p -> { cfg with delay_p = p }) (prob_v ())
      | _ ->
          Error
            (Printf.sprintf
               "unknown parameter %S (expected seed, fail_every, poison_every, \
                delay_every, delay_ms, fail, poison, delay)"
               key))

let parse_params s =
  if s = "" then Ok default
  else
    List.fold_left
      (fun acc kv -> Result.bind acc (fun cfg -> parse_param cfg (String.trim kv)))
      (Ok default)
      (String.split_on_char ',' s)

let split_spec name =
  if not (starts_with ~p:prefix name) then None
  else
    let rest =
      String.sub name (String.length prefix)
        (String.length name - String.length prefix)
    in
    if rest = "" then None
    else if rest.[0] = ':' then
      let inner = String.sub rest 1 (String.length rest - 1) in
      if inner = "" then Some (Error "missing inner engine after ':'")
      else Some (Ok (default, inner))
    else if rest.[0] = '{' then
      match String.index_opt rest '}' with
      | None -> Some (Error "unterminated '{' in parameters")
      | Some j ->
          let params = String.sub rest 1 (j - 1) in
          let tail = String.sub rest (j + 1) (String.length rest - j - 1) in
          if String.length tail < 2 || tail.[0] <> ':' then
            Some (Error "faulty{...} must be followed by ':<engine>'")
          else
            Some
              (Result.map
                 (fun cfg -> (cfg, String.sub tail 1 (String.length tail - 1)))
                 (parse_params params))
    else None

(* ------------------------------------------------------ The wrapper *)

let make ~name:full_name cfg (module E : Engine_sig.S) : (module Engine_sig.S) =
  (module struct
    let name = full_name

    let doc =
      Printf.sprintf
        "deterministic fault injection (seed %d) over the %s engine" cfg.seed
        E.name

    type compiled = {
      inner : E.compiled;
      mutable g : Prng.t;
      mutable attempts : int;  (* run/count entry calls since compile/reset *)
      mutable transients : int;
      mutable delays : int;
      mutable poisons : int;
      mutable poisoned : bool;  (* sticky until a fresh compile (or reset) *)
    }

    (* Never loads artifacts: fault injection exists to exercise the
       compile-from-source recovery paths, and a wrapper silently
       passing tables through would mask capability errors of the
       wrapped engine. *)
    let of_tables = None

    (* Exporting would be harmless, but a wrapper that cannot load
       tables should not offer them either: Serve keys replica
       spawning on the pair, and fault tests rely on the
       compile-from-source path staying exercised. *)
    let to_tables _ = None

    let compile z =
      {
        inner = E.compile z;
        g = Prng.create cfg.seed;
        attempts = 0;
        transients = 0;
        delays = 0;
        poisons = 0;
        poisoned = false;
      }

    let mfsa c = E.mfsa c.inner

    (* The schedule: each batch entry point counts as one attempt; an
       attempt whose ordinal hits a *_every multiple (or whose seeded
       coin comes up for a *_p probability) injects that fault. Faults
       fire *before* the inner engine touches the input, so a retried
       attempt replays cleanly. A poisoned replica fails every call
       until it is recompiled — the signal replica supervision keys
       on. *)
    let inject c =
      if c.poisoned then raise (Replica_poisoned full_name);
      c.attempts <- c.attempts + 1;
      let hit every p =
        (every > 0 && c.attempts mod every = 0)
        || (p > 0. && Prng.chance c.g p)
      in
      if hit cfg.delay_every cfg.delay_p then begin
        c.delays <- c.delays + 1;
        if cfg.delay_ms > 0. then Unix.sleepf (cfg.delay_ms /. 1000.)
      end;
      if hit cfg.poison_every cfg.poison_p then begin
        c.poisons <- c.poisons + 1;
        c.poisoned <- true;
        raise (Replica_poisoned full_name)
      end;
      if hit cfg.fail_every cfg.fail_p then begin
        c.transients <- c.transients + 1;
        raise (Transient_fault full_name)
      end

    let run c input =
      inject c;
      E.run c.inner input

    let count c input =
      inject c;
      E.count c.inner input

    let count_per_fsa c input =
      inject c;
      E.count_per_fsa c.inner input

    let stats c =
      let labels = [ ("engine", full_name) ] in
      Snapshot.merge
        [
          [
            Snapshot.counter_i ~labels
              ~help:"Batch entry calls seen by the fault injector"
              "mfsa_engine_fault_attempts_total" c.attempts;
            Snapshot.counter_i ~labels ~help:"Transient faults injected"
              "mfsa_engine_fault_transient_total" c.transients;
            Snapshot.counter_i ~labels ~help:"Delays injected"
              "mfsa_engine_fault_delays_total" c.delays;
            Snapshot.counter_i ~labels ~help:"Poison faults injected"
              "mfsa_engine_fault_poisons_total" c.poisons;
            Snapshot.gauge_i ~labels
              ~help:"1 while the replica is poisoned (every call fails)"
              "mfsa_engine_fault_poisoned" (if c.poisoned then 1 else 0);
          ];
          E.stats c.inner;
        ]

    (* Reset replays the whole fault schedule from the start — the
       metric-reproducibility contract of Engine_sig. *)
    let reset_stats c =
      c.g <- Prng.create cfg.seed;
      c.attempts <- 0;
      c.transients <- 0;
      c.delays <- 0;
      c.poisons <- 0;
      c.poisoned <- false;
      E.reset_stats c.inner

    (* The fault schedule is position-dependent state, not a warm
       cache: a counters-only reset still replays it, so both resets
       coincide here. *)
    let reset_counters = reset_stats

    (* Streaming sessions delegate without injection: faults model
       per-request serving failures, and a mid-stream fault would
       desynchronise the session position from the stream. *)
    type session = E.session

    let session c = E.session c.inner

    let feed = E.feed

    let finish = E.finish

    let reset = E.reset

    let position = E.position
  end)

(** Static per-ruleset engine planning — the brain of the [auto:]
    meta-engine.

    No single execution strategy dominates across rulesets
    (BENCH_engines.json): the lazy-DFA hybrid wins literal-heavy
    rulesets by an order of magnitude, the per-rule scanning DFAs win
    small rulesets where determinisation is cheap, and the merged
    transition-centric iMFAnt is the never-pathological fallback. The
    planner picks between them from cheap static features that the
    compile pipeline already computes — nothing here runs the input.

    The decision is a heuristic over thresholds fitted to the bundled
    benchmark datasets (documented in DESIGN.md); it can be wrong on
    adversarial rulesets, which is what the online escape hatch
    ({!demote_window}/{!demote_below_rate}, enforced by the [auto]
    registry engine via {!Hybrid.demote}) is for. *)

type features = {
  f_states : int;  (** States in the merged automaton. *)
  f_fsas : int;  (** Merged rules. *)
  f_transitions : int;
  f_classes : int;  (** Byte-equivalence classes of the alphabet. *)
  f_density : float;
      (** Mean [|bel(t)| / n_fsas] over transitions: how much the
          rules' structure actually shares. *)
  f_literal_share : float;
      (** Fraction of rules with a usable required literal prefix
          ({!Prefilter.prefix_set}). *)
  f_prefilter : bool;
      (** Whether the Aho–Corasick prefilter engages (every unanchored
          rule literal-covered) — the single strongest predictor of a
          hybrid win. *)
}
(** The hybrid decision keys on [f_prefilter] alone: prefilter
    coverage predicts that the cache only sees hot regions where
    configurations repeat. Static automaton size does not predict
    cacheability (PRO's 86 merged states yield a ~44k-configuration
    working set; TCP's 119 cache fully), so no size threshold gates
    the choice — pathological churn is caught online by the demotion
    monitor instead. *)

val features_of_mfsa : Mfsa_model.Mfsa.t -> features

val features_of_tables : Tables.t -> features
(** Features from a persisted bundle; [f_prefilter] reflects whether
    the bundle actually carries a prefilter (the tuning it was
    compiled under may have disabled it). *)

val choose : features -> string
(** Registry name of the planned engine: ["hybrid"], ["dfa"] or
    ["imfant"]. *)

val choose_tables : features -> string
(** As {!choose}, restricted to table-capable engines (["hybrid"] or
    ["imfant"]): per-rule DFAs cannot come up from a table bundle. *)

val dfa_max_fsas : int
(** Largest rule count at which the per-rule DFAs are considered. *)

val dfa_max_states : int
(** Largest merged state count at which the per-rule DFAs are
    considered. *)

val demote_window : int
(** Steps per online-monitoring window (65536). *)

val demote_below_rate : float
(** A windowed hybrid hit rate below this (0.5) demotes to iMFAnt. *)

type t = { classes : bool; prefilter : bool; stride : int }

let default = { classes = true; prefilter = true; stride = 2 }

let current = Atomic.make default

let get () = Atomic.get current

let check t =
  if t.stride < 1 || t.stride > 2 then
    invalid_arg "Tuning.set: stride must be 1 or 2"

let set t =
  check t;
  Atomic.set current t

let with_tuning t f =
  check t;
  let saved = Atomic.get current in
  Atomic.set current t;
  Fun.protect ~finally:(fun () -> Atomic.set current saved) f

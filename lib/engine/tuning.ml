type t = { classes : bool; prefilter : bool; stride : int; cache_size : int }

let default = { classes = true; prefilter = true; stride = 2; cache_size = 4096 }

let current = Atomic.make default

let get () = Atomic.get current

let check t =
  if t.stride < 1 || t.stride > 2 then
    invalid_arg "Tuning.set: stride must be 1 or 2";
  if t.cache_size < 1 then
    invalid_arg "Tuning.set: cache_size must be at least 1"

let set t =
  check t;
  Atomic.set current t

let with_tuning t f =
  check t;
  let saved = Atomic.get current in
  Atomic.set current t;
  Fun.protect ~finally:(fun () -> Atomic.set current saved) f

let project ~threads times =
  if threads < 1 then invalid_arg "Schedule.project: need at least one thread";
  Array.iter
    (fun t -> if t < 0. then invalid_arg "Schedule.project: negative duration")
    times;
  let n = Array.length times in
  if n = 0 then 0.
  else begin
    (* Workers' next-free times; jobs are taken in order by whichever
       worker frees first — the dynamic greedy queue of the pool. *)
    let free = Array.make (min threads n) 0. in
    for i = 0 to n - 1 do
      (* Find the earliest-free worker (linear scan: thread counts in
         the sweep are at most 128). *)
      let w = ref 0 in
      for k = 1 to Array.length free - 1 do
        if free.(k) < free.(!w) then w := k
      done;
      free.(!w) <- free.(!w) +. times.(i)
    done;
    Array.fold_left max 0. free
  end

let speedup ~threads times =
  let serial = project ~threads:1 times in
  if serial = 0. then 1. else serial /. project ~threads times

let best_threads_within ~tolerance ~target times =
  let n = max 1 (Array.length times) in
  let rec go t =
    if t >= n then n
    else if project ~threads:t times <= target *. (1. +. tolerance) then t
    else go (t + 1)
  in
  go 1

(** Required-literal prefix analysis and the merged Aho–Corasick
    prefilter (the RE2/Hyperscan idiom).

    For each rule the front-end AST is analysed for a {e mandatory
    prefix set}: a small set of literals such that every match of the
    rule starts with one of them. When every unanchored rule in an
    MFSA has a usable set (all members at least {!min_prefix_len}
    bytes), the union of the sets is compiled into one Aho–Corasick
    automaton; scanning the input with it yields the {e candidate}
    positions — the only offsets where any match can begin. Engines
    exploit this soundly in two ways: never inject initial states at
    non-candidate offsets, and when the active configuration is empty,
    jump straight to the next candidate instead of stepping the full
    automaton byte by byte. Position 0 is always treated as a
    candidate by the engines (anchored-start rules need no literal).

    The analysis runs at engine-compile time from the automaton's
    stored source patterns, so Live generations and Serve replicas
    carry their prefilter with them; its cost is traced as the
    [literal_prefilter] stage of [mfsa_compile_stage_seconds]. *)

type t

val min_prefix_len : int
(** Minimum usable literal length (2): 1-byte literals fire on too
    many positions to pay for the scan, and a 0-byte "literal" would
    make every position a candidate. *)

val analyze : Mfsa_model.Mfsa.t -> t option
(** [None] when some unanchored rule has no usable mandatory prefix
    set (or fails to re-parse) — engines then run unfiltered. *)

val candidates : t -> string -> int array
(** Sorted, duplicate-free start offsets in the input at which some
    required literal occurs — the only offsets where a match of an
    unanchored rule can begin. *)

val scan_chunk : t -> state:int -> string -> int array * int
(** Streaming variant: resumes the literal scan from an explicit
    Aho–Corasick state (see {!start_state}) and returns chunk-relative
    candidate offsets (negative starts — occurrences begun in an
    earlier chunk — are dropped: their bytes were already processed)
    plus the state after the chunk. *)

val start_state : t -> int
(** Initial scanner state for {!scan_chunk}. *)

val max_len : t -> int
(** Longest literal in the filter (at least 1). Sessions must not
    skip into the final [max_len - 1] bytes of a chunk: a literal
    straddling the chunk boundary can still start there. *)

val n_literals : t -> int
val ac_states : t -> int

(** {2 Table round trip}

    The compiled filter as plain arrays for the binary artifact layer
    — the Aho–Corasick tables plus per-literal lengths. A loaded
    filter behaves exactly like the one {!analyze} built: the literal
    {e strings} are not stored, only the automaton that scans for
    them. *)

type tables = {
  pf_ac : Aho_corasick.tables;
  pf_lens : int array;  (** Length of literal [id] (ends → starts). *)
  pf_maxlen : int;
}

val export : t -> tables

val import : ?copy:bool -> tables -> (t, string) result
(** Validates via {!Aho_corasick.import} plus the length invariants.
    [copy] as in {!Aho_corasick.import}: [~copy:false] adopts the
    caller's arrays instead of duplicating them. *)

(** {2 Per-rule analyses} (exposed for the [ac] engine and tests) *)

val prefix_set : Mfsa_frontend.Ast.t -> string list option
(** The usable mandatory prefix set of one rule: every match starts
    with a member; members are truncated, deduplicated and at least
    {!min_prefix_len} bytes. [None] when no usable set exists (e.g.
    leading [.*], or a nullable pattern). *)

val exact_strings : Mfsa_frontend.Ast.t -> string list option
(** [Some l] iff the rule's language is exactly the finite set [l]
    (small caps on set size and string length) — the shape the [ac]
    engine accepts. Never truncates: this is an exact language, not a
    prefix approximation. *)

type 'a result = {
  values : 'a array;
  job_times : float array;
  makespan : float;
}

let available_parallelism () = Domain.recommended_domain_count ()

(* Monotonic: NTP steps must not skew job_times/makespan. *)
let now () = Mfsa_util.Clock.now ()

let run ~threads ~jobs =
  if threads < 1 then invalid_arg "Pool.run: need at least one thread";
  let n = Array.length jobs in
  let values = Array.make n None in
  let job_times = Array.make n 0. in
  let cursor = Atomic.make 0 in
  let failure = Atomic.make None in
  (* Worker: greedily pull the next job index, as in the paper
     ("each thread manages different automata asynchronously,
     selecting an MFSA at a time from the remaining ones"). *)
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add cursor 1 in
      if i >= n then continue := false
      else begin
        let t0 = now () in
        (match jobs.(i) () with
        | v ->
            values.(i) <- Some v;
            job_times.(i) <- now () -. t0
        | exception e ->
            job_times.(i) <- now () -. t0;
            ignore (Atomic.compare_and_set failure None (Some e)))
      end
    done
  in
  let t0 = now () in
  let spawned =
    Array.init (min (threads - 1) (max 0 (n - 1))) (fun _ ->
        Domain.spawn worker)
  in
  worker ();
  Array.iter Domain.join spawned;
  let makespan = now () -. t0 in
  (match Atomic.get failure with Some e -> raise e | None -> ());
  let values =
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.run: job produced no value")
      values
  in
  { values; job_times; makespan }

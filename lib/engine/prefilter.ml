module Ast = Mfsa_frontend.Ast
module Parser = Mfsa_frontend.Parser
module Charclass = Mfsa_charset.Charclass
module Mfsa = Mfsa_model.Mfsa
module Vec = Mfsa_util.Vec
module Obs = Mfsa_obs.Obs

let min_prefix_len = 2
let max_set = 32
let max_prefix_len = 12
let max_class = 16

(* A prefix set for an AST node [a] is a string list [l] such that
   every word of L(a) starts with some member of [l]. [Exact l]
   additionally promises L(a) = l exactly (used to keep Concat
   precise); [Pref] is the general sound form. Caps keep the sets
   small: any overflow degrades to a still-sound shorter set, at
   worst [Pref [""]] ("no usable prefix"). *)
type pset = Exact of string list | Pref of string list

let strings = function Exact l | Pref l -> l
let dedup l = List.sort_uniq String.compare l

let cross la lb = List.concat_map (fun a -> List.map (fun b -> a ^ b) lb) la

let class_strings cls =
  if Charclass.cardinal cls <= max_class then
    Some (List.map (String.make 1) (Charclass.to_list cls))
  else None

let rec pset (ast : Ast.t) : pset =
  match ast with
  | Empty -> Exact [ "" ]
  | Char c -> Exact [ String.make 1 c ]
  | Class cls -> (
      match class_strings cls with Some l -> Exact l | None -> Pref [ "" ])
  | Concat (a, b) -> concat_ps (pset a) (fun () -> pset b)
  | Alt (a, b) -> (
      let sa = pset a and sb = pset b in
      let la = strings sa and lb = strings sb in
      if List.length la + List.length lb > max_set then Pref [ "" ]
      else
        match (sa, sb) with
        | Exact _, Exact _ -> Exact (dedup (la @ lb))
        | _ -> Pref (dedup (la @ lb)))
  | Star _ | Opt _ -> Pref [ "" ]
  | Plus a -> Pref (strings (pset a))
  | Repeat (_, 0, _) -> Pref [ "" ]
  | Repeat (a, m, _) ->
      (* The first repetition is mandatory and complete, so chaining
         the body's prefix set through Concat is sound; unrolling is
         capped — deeper copies only lengthen prefixes past the
         truncation limit anyway. *)
      let base = pset a in
      let rec go k =
        if k = 0 then Pref [ "" ] else concat_ps base (fun () -> go (k - 1))
      in
      go (min m 3)

and concat_ps sa sb =
  match sa with
  | Pref pa -> Pref pa
  | Exact la ->
      if List.for_all (fun s -> String.length s >= max_prefix_len) la then
        Pref la
      else
        let s2 = sb () in
        let lb = strings s2 in
        if List.length la * List.length lb > max_set then Pref la
        else
          let prod = dedup (cross la lb) in
          (match s2 with Exact _ -> Exact prod | Pref _ -> Pref prod)

let truncate s =
  if String.length s > max_prefix_len then String.sub s 0 max_prefix_len else s

let prefix_set ast =
  let l = dedup (List.map truncate (strings (pset ast))) in
  if
    l <> []
    && List.length l <= max_set
    && List.for_all (fun s -> String.length s >= min_prefix_len) l
  then Some l
  else None

(* The exact finite language of an AST when it is small — what the
   [ac] engine accepts as a rule. Unlike {!pset} this never truncates:
   [Some l] means L(ast) = l. *)

let exact_max_set = 16
let exact_max_len = 64

let ( let* ) = Option.bind

let capped l =
  if
    List.length l <= exact_max_set
    && List.for_all (fun s -> String.length s <= exact_max_len) l
  then Some l
  else None

let rec exact_strings (ast : Ast.t) : string list option =
  match ast with
  | Empty -> Some [ "" ]
  | Char c -> Some [ String.make 1 c ]
  | Class cls ->
      let* l = class_strings cls in
      capped l
  | Concat (a, b) ->
      let* la = exact_strings a in
      let* lb = exact_strings b in
      capped (dedup (cross la lb))
  | Alt (a, b) ->
      let* la = exact_strings a in
      let* lb = exact_strings b in
      capped (dedup (la @ lb))
  | Opt a ->
      let* la = exact_strings a in
      capped (dedup ("" :: la))
  | Star _ | Plus _ -> None
  | Repeat (_, _, None) -> None
  | Repeat (a, m, Some n) ->
      let* la = exact_strings a in
      let rec power k =
        if k = 0 then Some [ "" ]
        else
          let* rest = power (k - 1) in
          capped (dedup (cross la rest))
      in
      let rec tails k acc =
        if k > n then Some acc
        else
          let* p = power k in
          let* acc = capped (dedup (p @ acc)) in
          tails (k + 1) acc
      in
      tails m []

type t = {
  ac : Aho_corasick.t;
  lens : int array;  (* length of literal [id], to turn ends into starts *)
  maxlen : int;
  n_literals : int;
}

(* Drop any literal that has another literal as a proper prefix: an
   occurrence of the longer one implies an occurrence of the shorter
   at the same start. After sorting, checking against the last kept
   element suffices (strings between a prefix and its extension share
   that prefix). *)
let prefix_minimal l =
  let rec go kept = function
    | [] -> List.rev kept
    | s :: rest -> (
        match kept with
        | k :: _
          when String.length k <= String.length s
               && String.equal k (String.sub s 0 (String.length k)) ->
            go kept rest
        | _ -> go (s :: kept) rest)
  in
  go [] (List.sort String.compare l)

(* Same series as the pipeline's per-stage spans: literal extraction
   is a compile stage, it just runs at engine-compile time. *)
let stage_seconds =
  lazy
    (Obs.histogram ~registry:Obs.default
       ~help:"Compile-pipeline stage latency in seconds, per compile call"
       ~labels:[ ("stage", "literal_prefilter") ]
       "mfsa_compile_stage_seconds")

let build literals =
  let lits = prefix_minimal literals in
  let arr = Array.of_list lits in
  {
    ac = Aho_corasick.build arr;
    lens = Array.map String.length arr;
    maxlen = Array.fold_left (fun m s -> max m (String.length s)) 1 arr;
    n_literals = Array.length arr;
  }

let analyze (z : Mfsa.t) =
  Obs.time (Lazy.force stage_seconds) @@ fun () ->
  let n = Array.length z.Mfsa.patterns in
  let rec collect j acc =
    if j >= n then Some acc
    else if z.Mfsa.anchored_start.(j) then
      (* Anchored-start rules only ever match from position 0, which
         engines always treat as a candidate — no literal needed. *)
      collect (j + 1) acc
    else
      match Parser.parse z.Mfsa.patterns.(j) with
      | Error _ -> None
      | Ok rule -> (
          match prefix_set rule.Ast.ast with
          | Some ps -> collect (j + 1) (ps @ acc)
          | None -> None)
  in
  match collect 0 [] with
  | None -> None
  | Some lits -> Some (build (dedup lits))

let n_literals t = t.n_literals
let max_len t = t.maxlen
let ac_states t = Aho_corasick.n_states t.ac
let start_state t = ignore t; Aho_corasick.start_state

let sorted_dedup v =
  let n = Vec.length v in
  if n = 0 then [||]
  else begin
    let a = Array.init n (Vec.get v) in
    Array.sort compare a;
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    Array.sub a 0 !w
  end

type tables = {
  pf_ac : Aho_corasick.tables;
  pf_lens : int array;
  pf_maxlen : int;
}

let export t =
  { pf_ac = Aho_corasick.export t.ac; pf_lens = Array.copy t.lens;
    pf_maxlen = t.maxlen }

let import ?(copy = true) tb =
  match Aho_corasick.import ~copy tb.pf_ac with
  | Error _ as e -> e
  | Ok ac ->
      if Array.exists (fun l -> l < 1) tb.pf_lens then
        Error "Prefilter tables: literal length < 1"
      else if tb.pf_maxlen < Array.fold_left max 1 tb.pf_lens then
        Error "Prefilter tables: maxlen below a literal's length"
      else
        Ok
          {
            ac;
            lens = (if copy then Array.copy tb.pf_lens else tb.pf_lens);
            maxlen = tb.pf_maxlen;
            n_literals = Array.length tb.pf_lens;
          }

let scan_chunk t ~state chunk =
  let v = Vec.create () in
  let state' =
    Aho_corasick.scan_from t.ac ~state chunk ~on_match:(fun id e ->
        let s = e - t.lens.(id) in
        if s >= 0 then Vec.push v s)
  in
  (sorted_dedup v, state')

let candidates t input = fst (scan_chunk t ~state:Aho_corasick.start_state input)

(** The iNFAnt execution algorithm for plain FSAs — the paper's
    baseline engine (§V, [32]).

    iNFAnt links each of the 256 alphabet symbols to the packed list of
    transitions that symbol enables and maintains a state vector [sv]
    marking the currently active states. For every input byte it scans
    exactly the transitions the byte enables: a transition fires when
    its source is active or initial (unanchored matching re-enables the
    initial state at every position), and a match is reported whenever
    a final state becomes active. This engine executes a single FSA;
    running a ruleset means running one engine per rule — precisely the
    multiple-FSA configuration the MFSA approach is compared against. *)

type t
(** A compiled (pre-processed) automaton: the symbol-first transition
    table plus reusable state vectors. Compile once, run many. *)

val compile : Mfsa_automata.Nfa.t -> t
(** @raise Invalid_argument unless the automaton is ε-free. *)

val run : t -> string -> int list
(** Match end positions (ascending, deduplicated), honouring the
    automaton's anchoring flags; non-empty matches only. Behaviour is
    specified to agree exactly with
    {!Mfsa_automata.Simulate.match_ends}. *)

val count : t -> string -> int
(** Number of match end positions, without materialising the list. *)

val n_states : t -> int

val n_classes : t -> int
(** Byte-equivalence classes indexing the symbol-first table
    ({!Mfsa_charset.Charclass.partition} over the rule's transition
    labels; 256 when class compression was tuned off at compile
    time). *)

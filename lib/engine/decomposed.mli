(** Decomposition-based matching — the Hyperscan-style alternative the
    paper positions MFSAs against (§I: "A different approach exploits
    regex decomposition to split complex patterns into disjoint sets
    of string and FSA components, thus alleviating the computation
    load by delaying FSA execution until the string matching analysis
    is required"; §VII, Wang et al.).

    Each rule is decomposed into a {e mandatory literal prefix} (a
    byte string every match must start with) and its full automaton.
    The prefixes of all such rules go into one Aho–Corasick
    pre-filter; the stream is scanned once with it, and a rule's
    automaton runs only from positions where its prefix hit —
    start-anchored, so each confirmation is a single deterministic-ish
    sweep. Rules without a usable literal prefix fall back to a
    conventional full scan with iNFAnt.

    The engine is exact: its match set is specified to equal the union
    of per-rule {!Infant} runs (the property suite checks it). Its
    performance profile is the decomposition trade-off — nearly free
    when literals are selective, degrading toward the dense-automaton
    cost when they are not — which the benchmark harness contrasts
    with the MFSA approach. *)

type t

type match_event = { rule : int; end_pos : int }

val compile : Mfsa_automata.Nfa.t array -> t
(** Decompose a ruleset of ε-free automata (the rules' source patterns
    are re-analysed for literal prefixes via their [pattern] field;
    unparseable or prefix-less rules use the fallback path).
    @raise Invalid_argument on ε-arcs. *)

val n_prefiltered : t -> int
(** Rules handled through the literal pre-filter. *)

val n_fallback : t -> int
(** Rules scanned conventionally. *)

val run : t -> string -> match_event list
(** All matches, ordered by end position (rule within ties). *)

val count : t -> string -> int

val literal_prefix : Mfsa_frontend.Ast.t -> string
(** The mandatory literal prefix of an AST ([""] when none): the
    longest byte string [s] such that every match of the pattern
    starts with [s]. Exposed for tests. *)

module Nfa = Mfsa_automata.Nfa
module Charclass = Mfsa_charset.Charclass
module Vec = Mfsa_util.Vec

type t = {
  n_states : int;
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  k : int;  (* byte-class count (256 when compression is tuned off) *)
  class_of : bytes;
  (* Symbol-first layout over the class alphabet: [table.(cls)] holds
     the (src, dst) pairs of every transition enabled by the bytes of
     class [cls], packed as two parallel int arrays for cache-friendly
     scanning. Bytes of one class enable exactly the same transitions
     (that is what the partition means), so one row per class stores
     each transition once instead of once per byte. *)
  src_table : int array array;
  dst_table : int array array;
}

let compile (a : Nfa.t) =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Infant.compile: automaton must be ε-free";
  let classes =
    Array.to_list a.Nfa.transitions
    |> List.filter_map (fun tr ->
           match tr.Nfa.label with
           | Nfa.Eps -> assert false
           | Nfa.Cls cls -> Some cls)
  in
  let class_of, k =
    if (Tuning.get ()).Tuning.classes then Charclass.partition classes
    else (Bytes.init 256 Char.chr, 256)
  in
  let srcs = Array.init k (fun _ -> Vec.create ()) in
  let dsts = Array.init k (fun _ -> Vec.create ()) in
  (* Dedupe per (transition, class): a transition's charclass may
     contain many bytes of one class. *)
  let stamp = Array.make k (-1) in
  Array.iteri
    (fun ti tr ->
      match tr.Nfa.label with
      | Nfa.Eps -> assert false
      | Nfa.Cls cls ->
          Charclass.iter
            (fun c ->
              let id = Char.code (Bytes.get class_of (Char.code c)) in
              if stamp.(id) <> ti then begin
                stamp.(id) <- ti;
                Vec.push srcs.(id) tr.Nfa.src;
                Vec.push dsts.(id) tr.Nfa.dst
              end)
            cls)
    a.Nfa.transitions;
  {
    n_states = a.Nfa.n_states;
    start = a.Nfa.start;
    finals = Array.copy a.Nfa.finals;
    anchored_start = a.Nfa.anchored_start;
    anchored_end = a.Nfa.anchored_end;
    k;
    class_of;
    src_table = Array.map Vec.to_array srcs;
    dst_table = Array.map Vec.to_array dsts;
  }

let n_states t = t.n_states

let n_classes t = t.k

(* Core loop shared by [run] and [count]: [on_match] sees each match
   end position once, in increasing order. *)
let execute t input ~on_match =
  let n = t.n_states in
  let cur = Array.make n false in
  let next = Array.make n false in
  let len = String.length input in
  let i = ref 0 in
  let live = ref true in
  while !live && !i < len do
    let c = Char.code (String.unsafe_get input !i) in
    let cls = Char.code (Bytes.unsafe_get t.class_of c) in
    let srcs = t.src_table.(cls) and dsts = t.dst_table.(cls) in
    let inject_start = (not t.anchored_start) || !i = 0 in
    let matched = ref false in
    let any = ref false in
    for k = 0 to Array.length srcs - 1 do
      let s = srcs.(k) in
      if cur.(s) || (inject_start && s = t.start) then begin
        let d = dsts.(k) in
        if not next.(d) then begin
          next.(d) <- true;
          any := true;
          if t.finals.(d) then matched := true
        end
      end
    done;
    if !matched && ((not t.anchored_end) || !i = len - 1) then on_match (!i + 1);
    (* Swap and clear: [cur] becomes the scratch for the next round.
       A start-anchored scan whose active set empties can never match
       again — stop early (this is what makes anchored confirmation
       runs cheap in the decomposition engine). *)
    Array.blit next 0 cur 0 n;
    Array.fill next 0 n false;
    if t.anchored_start && not !any then live := false;
    incr i
  done

let run t input =
  let acc = ref [] in
  execute t input ~on_match:(fun e -> acc := e :: !acc);
  List.rev !acc

let count t input =
  let c = ref 0 in
  execute t input ~on_match:(fun _ -> incr c);
  !c

module Nfa = Mfsa_automata.Nfa
module Charclass = Mfsa_charset.Charclass
module Vec = Mfsa_util.Vec

type t = {
  n_states : int;
  start : int;
  finals : bool array;
  anchored_start : bool;
  anchored_end : bool;
  (* Symbol-first layout: [table.(c)] holds the (src, dst) pairs of
     every transition byte [c] enables, packed as two parallel int
     arrays for cache-friendly scanning. *)
  src_table : int array array;
  dst_table : int array array;
}

let compile (a : Nfa.t) =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Infant.compile: automaton must be ε-free";
  let srcs = Array.init 256 (fun _ -> Vec.create ()) in
  let dsts = Array.init 256 (fun _ -> Vec.create ()) in
  Array.iter
    (fun tr ->
      match tr.Nfa.label with
      | Nfa.Eps -> assert false
      | Nfa.Cls cls ->
          Charclass.iter
            (fun c ->
              let i = Char.code c in
              Vec.push srcs.(i) tr.Nfa.src;
              Vec.push dsts.(i) tr.Nfa.dst)
            cls)
    a.Nfa.transitions;
  {
    n_states = a.Nfa.n_states;
    start = a.Nfa.start;
    finals = Array.copy a.Nfa.finals;
    anchored_start = a.Nfa.anchored_start;
    anchored_end = a.Nfa.anchored_end;
    src_table = Array.map Vec.to_array srcs;
    dst_table = Array.map Vec.to_array dsts;
  }

let n_states t = t.n_states

(* Core loop shared by [run] and [count]: [on_match] sees each match
   end position once, in increasing order. *)
let execute t input ~on_match =
  let n = t.n_states in
  let cur = Array.make n false in
  let next = Array.make n false in
  let len = String.length input in
  let i = ref 0 in
  let live = ref true in
  while !live && !i < len do
    let c = Char.code input.[!i] in
    let srcs = t.src_table.(c) and dsts = t.dst_table.(c) in
    let inject_start = (not t.anchored_start) || !i = 0 in
    let matched = ref false in
    let any = ref false in
    for k = 0 to Array.length srcs - 1 do
      let s = srcs.(k) in
      if cur.(s) || (inject_start && s = t.start) then begin
        let d = dsts.(k) in
        if not next.(d) then begin
          next.(d) <- true;
          any := true;
          if t.finals.(d) then matched := true
        end
      end
    done;
    if !matched && ((not t.anchored_end) || !i = len - 1) then on_match (!i + 1);
    (* Swap and clear: [cur] becomes the scratch for the next round.
       A start-anchored scan whose active set empties can never match
       again — stop early (this is what makes anchored confirmation
       runs cheap in the decomposition engine). *)
    Array.blit next 0 cur 0 n;
    Array.fill next 0 n false;
    if t.anchored_start && not !any then live := false;
    incr i
  done

let run t input =
  let acc = ref [] in
  execute t input ~on_match:(fun e -> acc := e :: !acc);
  List.rev !acc

let count t input =
  let c = ref 0 in
  execute t input ~on_match:(fun _ -> incr c);
  !c
